module loglens

go 1.22
