// Intake front-door throughput: the per-line cost of the wire hot path —
// RFC 6587 framing, syslog header parse, and tenant admission — measured
// over an in-memory stream so allocs/op stays deterministic for the
// benchguard gate (real sockets would add scheduler- and buffer-dependent
// allocations).
//
// Rerun with:
//
//	go test -run='^$' -bench=BenchmarkIntakeThroughput -benchmem -count=5 .
package loglens

import (
	"fmt"
	"testing"

	"loglens/internal/clock"
	"loglens/internal/intake"
)

// loopReader replays one byte buffer forever: an endless in-memory wire
// stream for the frame scanner.
type loopReader struct {
	data []byte
	off  int
}

func (r *loopReader) Read(p []byte) (int, error) {
	n := copy(p, r.data[r.off:])
	r.off += n
	if r.off == len(r.data) {
		r.off = 0
	}
	return n, nil
}

// benchIntakeStream scans, parses, and admits b.N frames produced by
// frame (which must emit complete wire frames, terminator included).
func benchIntakeStream(b *testing.B, frame func(i int) string) {
	var data []byte
	for i := 0; i < 512; i++ {
		data = append(data, frame(i)...)
	}
	lim := intake.NewLimiter(clock.New(), 0, 0) // unlimited, but still on the path
	sc := intake.NewFrameScanner(&loopReader{data: data}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sc.Scan() {
			b.Fatal(sc.Err())
		}
		m, err := intake.ParseSyslog(sc.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		tenant := m.Hostname
		if tenant == "" {
			tenant = intake.DefaultTenant
		}
		if ok, _ := lim.Take(tenant); !ok {
			b.Fatal("unlimited limiter refused a line")
		}
	}
}

// BenchmarkIntakeThroughput is the guarded front-door benchmark: ns/op is
// the framing+parse+admission cost per log line on each RFC 6587
// transport.
func BenchmarkIntakeThroughput(b *testing.B) {
	b.Run("newline3164", func(b *testing.B) {
		benchIntakeStream(b, func(i int) string {
			return fmt.Sprintf("<13>Feb  5 17:32:18 web%02d sshd[4721]: session %d opened for user app\n", i%8, i)
		})
	})
	b.Run("octet5424", func(b *testing.B) {
		benchIntakeStream(b, func(i int) string {
			body := fmt.Sprintf("<165>1 2003-10-11T22:14:15.003Z host%02d su 1234 ID47 - request %d served", i%8, i)
			return fmt.Sprintf("%d %s", len(body), body)
		})
	})
}
