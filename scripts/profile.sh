#!/bin/sh
# profile: capture CPU and block profiles of the pipeline throughput
# benchmark, the raw material for hot-path and contention work on the
# per-partition sharded engine.
#
# Usage:
#   scripts/profile.sh [case] [outdir]
#
#   case    benchmark sub-case regex, default p4 (p1, p4, p8, ...)
#   outdir  where the profiles land, default ./profiles
#
# Writes <outdir>/cpu_<case>.pprof, <outdir>/block_<case>.pprof and the
# matching test binary <outdir>/bench.test (pprof needs the binary for
# symbolization). Inspect with:
#   go tool pprof -top profiles/bench.test profiles/cpu_p4.pprof
#   go tool pprof -top profiles/bench.test profiles/block_p4.pprof
#
# The block profile is the one that shows barrier/queue contention: time
# partition workers spend parked on their queues, the barrier lock, or
# the batch semaphore.
set -eu
cd "$(dirname "$0")/.."

CASE="${1:-p4}"
OUT="${2:-profiles}"
mkdir -p "$OUT"

go test -run='^$' -bench="^BenchmarkPipelineThroughput\$/^${CASE}\$" \
	-benchmem -count=1 \
	-cpuprofile "$OUT/cpu_${CASE}.pprof" \
	-blockprofile "$OUT/block_${CASE}.pprof" \
	-o "$OUT/bench.test" .

echo "profile: wrote $OUT/cpu_${CASE}.pprof and $OUT/block_${CASE}.pprof"
echo "profile: top CPU consumers:"
go tool pprof -top -nodecount=15 "$OUT/bench.test" "$OUT/cpu_${CASE}.pprof" | sed -n '1,20p'
