#!/bin/sh
# recoverylint: checkpoint durability is only as good as its writes.
#
# Every byte the recovery subsystem persists — checkpoint manifests, the
# CURRENT pointer, store snapshots — must go through the fsx.FS
# abstraction, whose WriteFile is atomic (temp file + rename) and whose
# faults the chaos harness can inject. A direct os.WriteFile / os.Create
# in the recovery path would reintroduce torn-write windows the crash
# tests cannot see, so this grep gate fails CI when one appears.
#
# Scope: the recovery package itself, the store persistence layer it
# snapshots through, and the core recovery wiring. fsx is the one place
# allowed to touch the real filesystem.
set -eu

cd "$(dirname "$0")/.."

paths='internal/recovery internal/store internal/core/recovery.go'

violations=$(grep -rn --include='*.go' -E 'os\.(WriteFile|Create|OpenFile|Rename)\(' \
    $paths 2>/dev/null \
    | grep -v '_test\.go:' || true)

if [ -n "$violations" ]; then
    echo "recoverylint: direct file write in the recovery path (route it through fsx.FS for atomicity and fault injection):" >&2
    echo "$violations" >&2
    exit 1
fi
echo "recoverylint: ok"
