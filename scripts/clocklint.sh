#!/bin/sh
# clocklint: forbid raw wall-clock reads outside the injectable clock.
#
# Every runtime component must take its time from internal/clock so the
# paper's temporal guarantees (heartbeat expiry, rebroadcast barriers,
# batch cadence) stay drivable by clock.Fake in tests. A raw time.Now()
# or time.Since() in product code silently breaks that determinism, so
# this grep gate fails CI when one appears outside the allowlist.
#
# Allowlist rationale:
#   internal/clock/        the Real clock is the one legitimate caller
#   internal/core/pipeline.go  Drain/Stop poll real deadlines: they bound
#                          how long the test process itself waits, and
#                          must elapse even when fake time stands still
#   internal/core/recovery.go  the checkpoint barrier timeout is the same
#                          kind of real deadline as Drain's
#   internal/testutil/wait.go  same: WaitUntil's failure deadline is real
#   internal/netbus/       socket Set{Read,Write}Deadline needs absolute
#                          wall-clock times; all retry/backoff pacing in
#                          the package still runs on the injected clock
#   cmd/loadtest/          measures real wall-clock throughput by design
#   examples/datacenter/   demo binary, wall-clock phase timing only
#
# Test files (_test.go) are exempt: tests own their clocks.
set -eu

cd "$(dirname "$0")/.."

allowlist='^internal/clock/|^internal/core/pipeline\.go|^internal/core/recovery\.go|^internal/testutil/wait\.go|^internal/netbus/|^cmd/loadtest/|^examples/datacenter/'

violations=$(grep -rn --include='*.go' -E 'time\.(Now|Since)\(' \
    internal cmd examples 2>/dev/null \
    | grep -v '_test\.go:' \
    | grep -vE "$allowlist" || true)

if [ -n "$violations" ]; then
    echo "clocklint: raw wall-clock read outside internal/clock (use the injected clock.Clock):" >&2
    echo "$violations" >&2
    exit 1
fi
echo "clocklint: ok"
