#!/bin/sh
# benchguard: benchmark-regression gate for the hot-path benchmarks.
#
# Runs the guarded end-to-end throughput benchmarks with -count=5 and
# compares the per-benchmark minimum against the checked-in baseline
# (scripts/bench_baseline.txt):
#
#   - ns/op may not regress more than 10% (override with
#     BENCHGUARD_TOLERANCE, e.g. 0.25 on a noisy shared runner);
#   - allocs/op may not increase at all, on any guarded benchmark;
#   - the partition-scaling ratio (p4 lines/sec over p1 lines/sec) may
#     not fall below a floor. With more than one core the persistent
#     per-partition workers must make p4 at least match p1 (floor 1.0);
#     on a single-core runner parallel speedup is physically impossible
#     and p4 only pays sharding overhead, so the floor relaxes to 0.55.
#     Override with BENCHGUARD_SCALE_MIN.
#
# Raw ns/op is machine-dependent, so the baseline also records
# BenchmarkCalibration — a fixed, product-independent workload — from
# the machine that recorded it. The guard reruns the calibration here
# and scales the ns/op budget by the ratio, which makes the gate
# portable across hardware while staying strict on the machine that
# recorded the baseline. Minimum-of-5 on both sides keeps scheduler
# noise out of the comparison; allocs/op is deterministic and compared
# exactly.
#
# After an intentional perf change, re-record the baseline per the
# instructions in scripts/bench_baseline.txt.
set -eu
cd "$(dirname "$0")/.."

TOL="${BENCHGUARD_TOLERANCE:-0.10}"
SCALE_MIN="${BENCHGUARD_SCALE_MIN:-}"
BASELINE=scripts/bench_baseline.txt
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

go test -run='^$' -bench='^BenchmarkCalibration$|^BenchmarkPipelineThroughput$|^BenchmarkIntakeThroughput$|^BenchmarkNetbusRoundTrip$' \
	-benchmem -count=5 . | tee "$OUT"

awk -v tol="$TOL" -v baseline="$BASELINE" -v scale_min="$SCALE_MIN" '
BEGIN {
	while ((getline line < baseline) > 0) {
		if (line ~ /^[ \t]*(#|$)/) continue
		split(line, f, " ")
		if (f[1] == "calibration") { cal_base = f[2]; continue }
		base_ns[f[1]] = f[2]
		base_allocs[f[1]] = f[3]
	}
	close(baseline)
}
/^Benchmark/ {
	name = $1
	if (match(name, /-[0-9]+$/)) gomaxprocs = substr(name, RSTART + 1) + 0
	sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
	ns = -1; allocs = -1; ls = -1
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
		if ($i == "lines/sec") ls = $(i - 1)
	}
	if (ns >= 0 && (!(name in min_ns) || ns < min_ns[name])) min_ns[name] = ns
	if (allocs > max_allocs[name]) max_allocs[name] = allocs
	if (ls > best_ls[name]) best_ls[name] = ls
}
END {
	if (gomaxprocs + 0 < 1) gomaxprocs = 1  # no -N suffix means GOMAXPROCS=1
	if (cal_base + 0 <= 0) {
		print "benchguard: no calibration entry in " baseline; exit 1
	}
	if (!("BenchmarkCalibration" in min_ns)) {
		print "benchguard: calibration benchmark did not run"; exit 1
	}
	scale = min_ns["BenchmarkCalibration"] / cal_base
	printf "benchguard: machine scale %.3f (calibration %.0f ns/op vs baseline %.0f)\n", \
		scale, min_ns["BenchmarkCalibration"], cal_base
	fail = 0
	for (name in base_ns) {
		if (!(name in min_ns)) {
			printf "benchguard: FAIL %s: guarded benchmark did not run\n", name
			fail = 1
			continue
		}
		budget = base_ns[name] * scale * (1 + tol)
		printf "benchguard: %s ns/op %.0f (budget %.0f), allocs/op %d (budget %d)\n", \
			name, min_ns[name], budget, max_allocs[name], base_allocs[name]
		if (min_ns[name] > budget) {
			printf "benchguard: FAIL %s: ns/op %.0f exceeds budget %.0f (baseline %.0f, scale %.3f, tolerance %.0f%%)\n", \
				name, min_ns[name], budget, base_ns[name], scale, tol * 100
			fail = 1
		}
		if (max_allocs[name] > base_allocs[name] + 0) {
			printf "benchguard: FAIL %s: allocs/op %d exceeds baseline %d\n", \
				name, max_allocs[name], base_allocs[name]
			fail = 1
		}
	}
	# Partition-scaling gate: the sharded pipeline must not scale
	# backwards. Best-of-5 lines/sec keeps scheduler noise out, same as
	# the ns/op minima.
	p1 = best_ls["BenchmarkPipelineThroughput/p1"]
	p4 = best_ls["BenchmarkPipelineThroughput/p4"]
	if (p1 > 0 && p4 > 0) {
		floor = (scale_min != "") ? scale_min + 0 : (gomaxprocs > 1 ? 1.0 : 0.55)
		ratio = p4 / p1
		printf "benchguard: scaling p4/p1 = %.2f (floor %.2f at GOMAXPROCS=%d)\n", \
			ratio, floor, gomaxprocs
		if (ratio < floor) {
			printf "benchguard: FAIL scaling: p4 %.0f lines/sec is %.2fx p1 %.0f lines/sec (floor %.2f)\n", \
				p4, ratio, p1, floor
			fail = 1
		}
	} else {
		print "benchguard: FAIL scaling: p1/p4 lines/sec metrics missing"
		fail = 1
	}
	if (fail) exit 1
	print "benchguard: OK"
}
' "$OUT"
