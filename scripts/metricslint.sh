#!/bin/sh
# metricslint: the metric namespace is an API — name it once, name it well.
#
# Dashboards, alerts, and the Prometheus exposition all key off metric
# names, so drift (a counter without _total, a histogram without a unit,
# a camelCase label) is a breaking change that no compiler catches. This
# grep gate enforces the house conventions over every registration site:
#
#   - counters end in _total (rate()-able without reading the code);
#   - histograms end in a unit suffix, _seconds or _ms;
#   - metric names and label literals are lowercase snake_case;
#   - every registered metric name appears in DESIGN.md's metrics table,
#     so the catalog cannot silently fall behind the code.
#
# Scope: non-test Go files under internal/ and cmd/. Only literal names
# are checked — the registry has no dynamic-name call sites today.
set -eu

cd "$(dirname "$0")/.."

# stream_batch_size predates the unit-suffix rule and is a dimensionless
# record count; renaming it would break recorded dashboards.
histogram_allow='stream_batch_size'

fail=0

sites=$(grep -rnoE '\.(Counter|Gauge|Histogram)\("[a-zA-Z_0-9]+"' \
    --include='*.go' internal cmd | grep -v '_test\.go:' || true)

bad=$(echo "$sites" | grep '\.Counter("' | grep -v '_total"$' || true)
if [ -n "$bad" ]; then
    echo "metricslint: counter names must end in _total:" >&2
    echo "$bad" >&2
    fail=1
fi

bad=$(echo "$sites" | grep '\.Histogram("' \
    | grep -vE '_(seconds|ms)"$' | grep -v "\"$histogram_allow\"" || true)
if [ -n "$bad" ]; then
    echo "metricslint: histogram names must carry a unit suffix (_seconds or _ms):" >&2
    echo "$bad" >&2
    fail=1
fi

bad=$(echo "$sites" | grep -E '"[^"]*[A-Z]' || true)
if [ -n "$bad" ]; then
    echo "metricslint: metric names must be lowercase snake_case:" >&2
    echo "$bad" >&2
    fail=1
fi

# Label keys and literal label values live on the same call lines as the
# registration; any uppercase string literal there is a convention break.
bad=$(grep -rnE '\.(Counter|Gauge|Histogram)\("' --include='*.go' internal cmd \
    | grep -v '_test\.go:' | grep -E '"[a-z_0-9]*[A-Z][a-zA-Z_0-9]*"' || true)
if [ -n "$bad" ]; then
    echo "metricslint: label keys and literal label values must be lowercase:" >&2
    echo "$bad" >&2
    fail=1
fi

# Catalog completeness: every registered name must be documented in the
# DESIGN.md metrics table.
names=$(echo "$sites" | sed 's/.*("\(.*\)"/\1/' | sort -u)
for name in $names; do
    if ! grep -q "$name" DESIGN.md; then
        echo "metricslint: $name is registered but missing from the DESIGN.md metrics table" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "metricslint: ok"
