package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"loglens/internal/clock"
)

func TestMaterializeAllDatasets(t *testing.T) {
	for _, tc := range []struct {
		dataset string
		phase   string
		want    int // 0 = just non-empty
	}{
		{"D1", "train", 16000},
		{"D1", "test", 16000},
		{"D2", "train", 18000},
		{"D3", "test", 0},
		{"D4", "train", 0},
		{"D5", "test", 0},
		{"D6", "train", 0},
		{"ss7", "train", 0},
		{"ss7", "test", 0},
		{"customapp", "train", 36700},
	} {
		lines, err := materialize(tc.dataset, tc.phase, 0.005, 1)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.dataset, tc.phase, err)
		}
		if tc.want > 0 && len(lines) != tc.want {
			t.Errorf("%s/%s: %d lines, want %d", tc.dataset, tc.phase, len(lines), tc.want)
		}
		if len(lines) == 0 {
			t.Errorf("%s/%s: empty", tc.dataset, tc.phase)
		}
	}
}

func TestMaterializeErrors(t *testing.T) {
	if _, err := materialize("bogus", "test", 1, 1); err == nil {
		t.Error("unknown dataset must fail")
	}
	if _, err := materialize("D1", "bogus", 1, 1); err == nil {
		t.Error("unknown phase must fail")
	}
}

func TestReplayUnpaced(t *testing.T) {
	lines := []string{"alpha", "beta", "gamma"}
	var buf bytes.Buffer
	if err := replay(&buf, lines, 0, 0, clock.NewFake()); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), strings.Join(lines, "\n")+"\n"; got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestReplaySpeedPacing(t *testing.T) {
	fc := clock.NewFake()
	base := fc.Now()
	lines := []string{
		"2016/02/23 09:00:00.000 task a start prio 1",
		"2016/02/23 09:00:10.000 task a done code 0",
		"no embedded timestamp on this line",
		"2016/02/23 09:00:30.000 task b start prio 1",
	}
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- replay(&buf, lines, 0, 2, fc) }()

	// The first timestamped line emits immediately. The 10s embedded gap
	// to the second replays as 5s at -speed 2.
	fc.BlockUntil(1)
	if d := fc.Deadlines(); len(d) != 1 || !d[0].Equal(base.Add(5*time.Second)) {
		t.Fatalf("first sleep deadlines = %v, want [%v]", d, base.Add(5*time.Second))
	}
	fc.Advance(5 * time.Second)

	// The untimed line ships without sleeping; the 20s gap between the
	// second and fourth timestamps replays as 10s.
	fc.BlockUntil(1)
	if d := fc.Deadlines(); len(d) != 1 || !d[0].Equal(base.Add(15*time.Second)) {
		t.Fatalf("second sleep deadlines = %v, want [%v]", d, base.Add(15*time.Second))
	}
	fc.Advance(10 * time.Second)

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), strings.Join(lines, "\n")+"\n"; got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
	if elapsed := fc.Now().Sub(base); elapsed != 15*time.Second {
		t.Errorf("replay took %v of fake time, want 15s", elapsed)
	}
}

func TestReplayRateTicker(t *testing.T) {
	fc := clock.NewFake()
	lines := []string{"one", "two"}
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- replay(&buf, lines, 10, 0, fc) }()

	// Each line waits one 100ms tick at -rate 10.
	fc.BlockUntil(1)
	fc.Advance(100 * time.Millisecond)
	fc.BlockUntil(1)
	fc.Advance(100 * time.Millisecond)

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "one\ntwo\n"; got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}
