package main

import (
	"testing"
)

func TestMaterializeAllDatasets(t *testing.T) {
	for _, tc := range []struct {
		dataset string
		phase   string
		want    int // 0 = just non-empty
	}{
		{"D1", "train", 16000},
		{"D1", "test", 16000},
		{"D2", "train", 18000},
		{"D3", "test", 0},
		{"D4", "train", 0},
		{"D5", "test", 0},
		{"D6", "train", 0},
		{"ss7", "train", 0},
		{"ss7", "test", 0},
		{"customapp", "train", 36700},
	} {
		lines, err := materialize(tc.dataset, tc.phase, 0.005, 1)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.dataset, tc.phase, err)
		}
		if tc.want > 0 && len(lines) != tc.want {
			t.Errorf("%s/%s: %d lines, want %d", tc.dataset, tc.phase, len(lines), tc.want)
		}
		if len(lines) == 0 {
			t.Errorf("%s/%s: empty", tc.dataset, tc.phase)
		}
	}
}

func TestMaterializeErrors(t *testing.T) {
	if _, err := materialize("bogus", "test", 1, 1); err == nil {
		t.Error("unknown dataset must fail")
	}
	if _, err := materialize("D1", "bogus", 1, 1); err == nil {
		t.Error("unknown phase must fail")
	}
}
