// Command logreplay materializes the evaluation corpora and replays them
// as a log stream on stdout — the replay agent of §VI ("we have developed
// an agent, which emulates the log streaming behavior"). Pipe it into
// cmd/loglens or redirect to files:
//
//	logreplay -dataset D1 -phase train > d1-train.log
//	logreplay -dataset D1 -phase test | loglens -train d1-train.log -stream -
//	logreplay -dataset D4 -scale 0.05 -rate 10000 > d4.log
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"loglens/internal/datagen"
)

func main() {
	dataset := flag.String("dataset", "D1", "dataset: D1, D2, D3, D4, D5, D6, ss7, customapp")
	phase := flag.String("phase", "test", "phase: train or test")
	scale := flag.Float64("scale", 0.05, "corpus scale for D3-D6 and ss7")
	seed := flag.Int64("seed", 42, "generator seed")
	rate := flag.Int("rate", 0, "replay rate in logs/sec (0 = as fast as possible)")
	flag.Parse()

	lines, err := materialize(*dataset, *phase, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "logreplay:", err)
		os.Exit(1)
	}
	if err := replay(lines, *rate); err != nil {
		fmt.Fprintln(os.Stderr, "logreplay:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "replayed %d %s/%s lines\n", len(lines), *dataset, *phase)
}

func materialize(dataset, phase string, scale float64, seed int64) ([]string, error) {
	var c datagen.Corpus
	switch dataset {
	case "D1":
		c = datagen.D1(seed)
	case "D2":
		c = datagen.D2(seed)
	case "D3", "D4", "D5", "D6":
		for _, spec := range datagen.TableIVSpecs {
			if spec.Name == dataset {
				c = datagen.TableIVCorpus(spec, scale, seed)
			}
		}
	case "ss7":
		s := datagen.SS7(scale, seed)
		c = datagen.Corpus{Train: s.Train, Test: s.Test}
	case "customapp":
		c = datagen.CustomApp(36700, seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	switch phase {
	case "train":
		return c.Train, nil
	case "test":
		return c.Test, nil
	default:
		return nil, fmt.Errorf("unknown phase %q", phase)
	}
}

func replay(lines []string, rate int) error {
	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	var ticker *time.Ticker
	if rate > 0 {
		ticker = time.NewTicker(time.Second / time.Duration(rate))
		defer ticker.Stop()
	}
	for _, line := range lines {
		if ticker != nil {
			<-ticker.C
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
