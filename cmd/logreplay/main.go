// Command logreplay materializes the evaluation corpora and replays them
// as a log stream on stdout — the replay agent of §VI ("we have developed
// an agent, which emulates the log streaming behavior"). Pipe it into
// cmd/loglens or redirect to files:
//
//	logreplay -dataset D1 -phase train > d1-train.log
//	logreplay -dataset D1 -phase test | loglens -train d1-train.log -stream -
//	logreplay -dataset D4 -scale 0.05 -rate 10000 > d4.log
//	logreplay -dataset D1 -speed 10 | loglens -train d1-train.log -stream -
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"loglens/internal/clock"
	"loglens/internal/datagen"
	"loglens/internal/preprocess"
)

func main() {
	dataset := flag.String("dataset", "D1", "dataset: D1, D2, D3, D4, D5, D6, ss7, customapp")
	phase := flag.String("phase", "test", "phase: train or test")
	scale := flag.Float64("scale", 0.05, "corpus scale for D3-D6 and ss7")
	seed := flag.Int64("seed", 42, "generator seed")
	rate := flag.Int("rate", 0, "replay rate in logs/sec (0 = as fast as possible)")
	speed := flag.Float64("speed", 0, "timed replay: pace lines by their embedded timestamps, N× real time (0 = off; mutually exclusive with -rate)")
	flag.Parse()

	if *rate > 0 && *speed > 0 {
		fmt.Fprintln(os.Stderr, "logreplay: -rate and -speed are mutually exclusive")
		os.Exit(1)
	}
	if *speed < 0 {
		fmt.Fprintln(os.Stderr, "logreplay: -speed must be positive")
		os.Exit(1)
	}
	lines, err := materialize(*dataset, *phase, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "logreplay:", err)
		os.Exit(1)
	}
	if err := replay(os.Stdout, lines, *rate, *speed, clock.New()); err != nil {
		fmt.Fprintln(os.Stderr, "logreplay:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "replayed %d %s/%s lines\n", len(lines), *dataset, *phase)
}

func materialize(dataset, phase string, scale float64, seed int64) ([]string, error) {
	var c datagen.Corpus
	switch dataset {
	case "D1":
		c = datagen.D1(seed)
	case "D2":
		c = datagen.D2(seed)
	case "D3", "D4", "D5", "D6":
		for _, spec := range datagen.TableIVSpecs {
			if spec.Name == dataset {
				c = datagen.TableIVCorpus(spec, scale, seed)
			}
		}
	case "ss7":
		s := datagen.SS7(scale, seed)
		c = datagen.Corpus{Train: s.Train, Test: s.Test}
	case "customapp":
		c = datagen.CustomApp(36700, seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	switch phase {
	case "train":
		return c.Train, nil
	case "test":
		return c.Test, nil
	default:
		return nil, fmt.Errorf("unknown phase %q", phase)
	}
}

// replay streams lines to w, paced three ways: -rate meters a fixed
// lines/sec cadence, -speed replays the embedded-timestamp gaps between
// consecutive lines divided by the speedup factor (10s apart at
// -speed 2 → 5s apart on the wire), and neither writes flat out. Time
// comes from the injected clock, so pacing is testable on a fake.
func replay(w io.Writer, lines []string, rate int, speed float64, clk clock.Clock) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()
	var ticker clock.Ticker
	if rate > 0 {
		ticker = clk.NewTicker(time.Second / time.Duration(rate))
		defer ticker.Stop()
	}
	pp := preprocess.New(nil, nil)
	var last time.Time
	for _, line := range lines {
		if ticker != nil {
			<-ticker.C()
		}
		if speed > 0 {
			// Lines without a parseable timestamp (and regressions in
			// the embedded timeline) ship immediately after their
			// predecessor rather than stalling the replay.
			if r := pp.Process(line); r.HasTime {
				if !last.IsZero() && r.Time.After(last) {
					// Flush so downstream sees everything emitted
					// before this gap, then sleep it out.
					if err := bw.Flush(); err != nil {
						return err
					}
					clk.Sleep(time.Duration(float64(r.Time.Sub(last)) / speed))
				}
				last = r.Time
			}
		}
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return nil
}
