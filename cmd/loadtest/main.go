// Command loadtest measures end-to-end pipeline throughput — the paper's
// deployment goal of handling "high volume and high velocity of the log
// streams in real-time" (§II-A). It trains a model on D1, then pushes the
// test corpus through the full service (agent → bus → log manager → engine
// → detectors → anomaly storage) repeatedly, reporting logs/second at each
// partition count.
//
//	loadtest -partitions 1,2,4,8 -logs 200000
//
// The network mode drives the intake front door instead of the in-process
// bus: N concurrent syslog-TCP or HTTP clients against a pipeline with
// listeners enabled, at a target aggregate rate, reporting accepted /
// published / shed splits.
//
//	loadtest -mode tcp -conns 64 -rate 50000 -duration 15s
//	loadtest -mode http -conns 16 -tenant-rate 1000
//
// The bus mode measures the netbus transport itself: N concurrent TCP
// publishers against a broker (an in-process one by default, or an
// external `loglens broker` via -bus), reporting publish round-trips/s.
//
//	loadtest -mode bus -conns 32 -duration 10s
//	loadtest -mode bus -bus broker-host:7070 -conns 32
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"loglens/internal/bus"
	"loglens/internal/core"
	"loglens/internal/datagen"
	"loglens/internal/experiments"
	"loglens/internal/intake"
	"loglens/internal/netbus"
)

func main() {
	mode := flag.String("mode", "pipeline", "pipeline (in-process bus sweep), tcp (syslog TCP clients), or http (bulk JSON clients)")
	partList := flag.String("partitions", "1,2,4", "comma-separated partition counts to sweep (pipeline mode)")
	logCount := flag.Int("logs", 100000, "logs to stream per configuration (pipeline mode)")
	sources := flag.Int("sources", 4, "number of concurrent log sources (partition parallelism comes from sources)")
	staged := flag.Bool("staged", false, "run the staged topology (parser and detector as separate stages over the bus)")
	seed := flag.Int64("seed", 42, "dataset seed")
	conns := flag.Int("conns", 16, "concurrent client connections (tcp/http modes)")
	rate := flag.Int("rate", 0, "target aggregate lines/s across all clients, 0 = unpaced (tcp/http modes)")
	duration := flag.Duration("duration", 10*time.Second, "load duration (tcp/http modes)")
	tenantRate := flag.Int("tenant-rate", 0, "per-tenant admission limit lines/s, 0 = unlimited (tcp/http modes)")
	busAddr := flag.String("bus", "", "external broker address for -mode bus (default: in-process broker)")
	flag.Parse()

	var err error
	switch *mode {
	case "pipeline":
		err = run(*partList, *logCount, *sources, *staged, *seed)
	case "tcp", "http":
		err = runNet(*mode, *conns, *rate, *duration, *tenantRate, *seed)
	case "bus":
		err = runBusLoad(*busAddr, *conns, *rate, *duration, *seed)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
}

// runNet drives the intake front door with conns concurrent clients for
// dur, pacing the aggregate offered load to rate lines/s (0 = as fast as
// the sockets take it), and reports the accepted/published/shed split.
func runNet(mode string, conns, rate int, dur time.Duration, tenantRate int, seed int64) error {
	if conns <= 0 {
		return fmt.Errorf("need at least one connection")
	}
	corpus := datagen.D1(seed)
	icfg := intake.Config{TenantRate: tenantRate}
	if mode == "tcp" {
		icfg.SyslogTCP = "127.0.0.1:0"
	} else {
		icfg.HTTP = "127.0.0.1:0"
	}
	p, err := core.New(core.Config{
		DisableHeartbeat:      true,
		DisableAnomalyStorage: true,
		Intake:                icfg,
	})
	if err != nil {
		return err
	}
	if _, _, err := p.Train("lt", experiments.ToLogs("lt", corpus.Train)); err != nil {
		return err
	}
	if err := p.Start(); err != nil {
		return err
	}
	svc := p.Intake()

	var sent atomic.Uint64
	deadline := time.Now().Add(dur)
	perConnRate := 0
	if rate > 0 {
		perConnRate = rate / conns
	}
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var cerr error
			if mode == "tcp" {
				cerr = tcpClient(svc.TCPAddr(), id, perConnRate, deadline, corpus.Test, &sent)
			} else {
				cerr = httpClient(svc.HTTPAddr(), id, perConnRate, deadline, corpus.Test, &sent)
			}
			if cerr != nil {
				errs <- fmt.Errorf("client %d: %w", id, cerr)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		fmt.Fprintln(os.Stderr, "loadtest:", e)
	}
	if err := p.Drain(5 * time.Minute); err != nil {
		return err
	}
	elapsed := time.Since(start)
	st := svc.Stats()
	if err := p.Stop(); err != nil {
		return err
	}

	fmt.Printf("%-8s %-7s %-12s %-10s %-10s %-10s %-10s %-10s %-12s\n",
		"mode", "conns", "elapsed", "sent", "accepted", "published", "shed", "malformed", "lines/sec")
	fmt.Printf("%-8s %-7d %-12v %-10d %-10d %-10d %-10d %-10d %-12.0f\n",
		mode, conns, elapsed.Round(time.Millisecond), sent.Load(),
		st.Accepted, st.Published, st.Shed, st.Malformed,
		float64(st.Published)/elapsed.Seconds())
	for _, ts := range st.Tenants {
		fmt.Printf("  tenant %-10s accepted %-10d published %-10d shed %d (rate %d, queue %d)\n",
			ts.Tenant, ts.Accepted, ts.Published, ts.Shed, ts.ShedRate, ts.ShedQueue)
	}
	return nil
}

// runBusLoad hammers a netbus broker with conns concurrent TCP
// publishers, each on its own connection with its own (source, seq)
// identity, and reports publish round-trips per second. With -bus it
// targets an external `loglens broker`; otherwise it spins one up
// in-process so the numbers isolate the transport.
func runBusLoad(busAddr string, conns, rate int, dur time.Duration, seed int64) error {
	if conns <= 0 {
		return fmt.Errorf("need at least one connection")
	}
	corpus := datagen.D1(seed)
	if busAddr == "" {
		srv := netbus.NewServer(bus.New())
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Close()
		busAddr = addr
	}

	const topic = "loadtest"
	var sent, failed atomic.Uint64
	deadline := time.Now().Add(dur)
	perConnRate := 0
	if rate > 0 {
		perConnRate = rate / conns
	}
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := busClient(busAddr, topic, id, perConnRate, deadline, corpus.Test, &sent, &failed); err != nil {
				errs <- fmt.Errorf("publisher %d: %w", id, err)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		fmt.Fprintln(os.Stderr, "loadtest:", e)
	}
	elapsed := time.Since(start)

	// Count what actually landed, straight from the broker.
	check := netbus.Dial(busAddr, netbus.Options{})
	defer check.Close()
	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	cerr := check.WaitConnected(cctx)
	ccancel()
	if cerr != nil {
		return fmt.Errorf("verify landed count: %w", cerr)
	}
	var landed int64
	if parts, err := check.Partitions(topic); err == nil {
		for pi := 0; pi < parts; pi++ {
			if off, err := check.EndOffset(topic, pi); err == nil {
				landed += off
			}
		}
	}

	fmt.Printf("%-8s %-7s %-12s %-10s %-10s %-10s %-12s\n",
		"mode", "conns", "elapsed", "sent", "failed", "landed", "publish/sec")
	fmt.Printf("%-8s %-7d %-12v %-10d %-10d %-10d %-12.0f\n",
		"bus", conns, elapsed.Round(time.Millisecond), sent.Load(), failed.Load(),
		landed, float64(sent.Load())/elapsed.Seconds())
	return nil
}

// busClient publishes lines over one netbus connection until deadline.
// Every publish is a full round-trip (the broker acks each frame), so
// the reported rate is end-to-end RPC throughput, not socket bandwidth.
func busClient(addr, topic string, id, rate int, deadline time.Time, lines []string, sent, failed *atomic.Uint64) error {
	client := netbus.Dial(addr, netbus.Options{Role: "loadtest"})
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err := client.WaitConnected(ctx)
	cancel()
	if err != nil {
		return err
	}
	if err := client.CreateTopic(topic, 4); err != nil {
		return err
	}
	source := fmt.Sprintf("lt-%d", id)
	i := 0
	next := time.Now()
	for time.Now().Before(deadline) {
		for j := 0; j < clientBatch; j++ {
			line := lines[i%len(lines)]
			i++
			if _, _, err := client.Publish(topic, source, []byte(line), map[string]string{"source": source}); err != nil {
				failed.Add(1)
				continue
			}
			sent.Add(1)
		}
		pace(&next, rate)
	}
	return nil
}

const clientBatch = 100

// pace sleeps so that a client sending clientBatch lines per iteration
// holds rate lines/s. next is the running schedule pointer.
func pace(next *time.Time, rate int) {
	if rate <= 0 {
		return
	}
	*next = next.Add(time.Duration(clientBatch) * time.Second / time.Duration(rate))
	if d := time.Until(*next); d > 0 {
		time.Sleep(d)
	}
}

// tcpClient streams newline-framed RFC 3164 syslog over one connection
// until deadline.
func tcpClient(addr string, id, rate int, deadline time.Time, lines []string, sent *atomic.Uint64) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	var buf bytes.Buffer
	i := 0
	next := time.Now()
	for time.Now().Before(deadline) {
		buf.Reset()
		for j := 0; j < clientBatch; j++ {
			fmt.Fprintf(&buf, "<14>Jan  2 15:04:05 lt sshd[%d]: %s\n", id, lines[i%len(lines)])
			i++
		}
		if _, err := conn.Write(buf.Bytes()); err != nil {
			return err
		}
		sent.Add(clientBatch)
		pace(&next, rate)
	}
	return nil
}

// httpClient posts bulk JSON batches until deadline. Shed responses (429
// and 503) are load-shedding working as intended, not client errors.
func httpClient(addr string, id, rate int, deadline time.Time, lines []string, sent *atomic.Uint64) error {
	url := "http://" + addr + "/api/ingest"
	client := &http.Client{Timeout: 30 * time.Second}
	i := 0
	next := time.Now()
	for time.Now().Before(deadline) {
		req := intake.IngestRequest{Tenant: "lt"}
		for j := 0; j < clientBatch; j++ {
			req.Lines = append(req.Lines, lines[i%len(lines)])
			i++
		}
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK &&
			resp.StatusCode != http.StatusTooManyRequests &&
			resp.StatusCode != http.StatusServiceUnavailable {
			return fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
		}
		sent.Add(clientBatch)
		pace(&next, rate)
	}
	return nil
}

func run(partList string, logCount, sources int, staged bool, seed int64) error {
	corpus := datagen.D1(seed)
	// Materialize the stream: the test corpus repeated to the target
	// size.
	lines := make([]string, 0, logCount)
	for len(lines) < logCount {
		n := logCount - len(lines)
		if n > len(corpus.Test) {
			n = len(corpus.Test)
		}
		lines = append(lines, corpus.Test[:n]...)
	}

	fmt.Printf("%-12s %-10s %-14s %-12s %-10s\n", "partitions", "logs", "elapsed", "logs/sec", "anomalies")
	for _, ps := range strings.Split(partList, ",") {
		parts, err := strconv.Atoi(strings.TrimSpace(ps))
		if err != nil || parts <= 0 {
			return fmt.Errorf("bad partition count %q", ps)
		}
		elapsed, anomalies, err := runOne(corpus, lines, parts, sources, staged)
		if err != nil {
			return err
		}
		fmt.Printf("%-12d %-10d %-14v %-12.0f %-10d\n",
			parts, len(lines), elapsed.Round(time.Millisecond),
			float64(len(lines))/elapsed.Seconds(), anomalies)
	}
	return nil
}

func runOne(corpus datagen.Corpus, lines []string, partitions, sources int, staged bool) (time.Duration, uint64, error) {
	p, err := core.New(core.Config{
		Partitions:            partitions,
		DisableHeartbeat:      true,
		DisableAnomalyStorage: true,
		Staged:                staged,
	})
	if err != nil {
		return 0, 0, err
	}
	// One model shared by every synthetic source (they all speak D1).
	if _, _, err := p.Train("lt", experiments.ToLogs("lt", corpus.Train)); err != nil {
		return 0, 0, err
	}
	if err := p.Start(); err != nil {
		return 0, 0, err
	}

	agents := make([]interface{ Send(string) error }, sources)
	for i := range agents {
		ag, err := p.Agent(fmt.Sprintf("src-%d", i), 0)
		if err != nil {
			return 0, 0, err
		}
		agents[i] = ag
	}

	// Route whole corpus copies to one source each, so event traces stay
	// intact within a source and the detector exercises its normal path.
	chunk := len(corpus.Test)
	start := time.Now()
	for i, line := range lines {
		if err := agents[(i/chunk)%sources].Send(line); err != nil {
			return 0, 0, err
		}
	}
	if err := p.Drain(10 * time.Minute); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	anomalies := p.AnomalyCount()
	if err := p.Stop(); err != nil {
		return 0, 0, err
	}
	return elapsed, anomalies, nil
}
