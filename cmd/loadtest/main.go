// Command loadtest measures end-to-end pipeline throughput — the paper's
// deployment goal of handling "high volume and high velocity of the log
// streams in real-time" (§II-A). It trains a model on D1, then pushes the
// test corpus through the full service (agent → bus → log manager → engine
// → detectors → anomaly storage) repeatedly, reporting logs/second at each
// partition count.
//
//	loadtest -partitions 1,2,4,8 -logs 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"loglens/internal/core"
	"loglens/internal/datagen"
	"loglens/internal/experiments"
)

func main() {
	partList := flag.String("partitions", "1,2,4", "comma-separated partition counts to sweep")
	logCount := flag.Int("logs", 100000, "logs to stream per configuration")
	sources := flag.Int("sources", 4, "number of concurrent log sources (partition parallelism comes from sources)")
	staged := flag.Bool("staged", false, "run the staged topology (parser and detector as separate stages over the bus)")
	seed := flag.Int64("seed", 42, "dataset seed")
	flag.Parse()

	if err := run(*partList, *logCount, *sources, *staged, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
}

func run(partList string, logCount, sources int, staged bool, seed int64) error {
	corpus := datagen.D1(seed)
	// Materialize the stream: the test corpus repeated to the target
	// size.
	lines := make([]string, 0, logCount)
	for len(lines) < logCount {
		n := logCount - len(lines)
		if n > len(corpus.Test) {
			n = len(corpus.Test)
		}
		lines = append(lines, corpus.Test[:n]...)
	}

	fmt.Printf("%-12s %-10s %-14s %-12s %-10s\n", "partitions", "logs", "elapsed", "logs/sec", "anomalies")
	for _, ps := range strings.Split(partList, ",") {
		parts, err := strconv.Atoi(strings.TrimSpace(ps))
		if err != nil || parts <= 0 {
			return fmt.Errorf("bad partition count %q", ps)
		}
		elapsed, anomalies, err := runOne(corpus, lines, parts, sources, staged)
		if err != nil {
			return err
		}
		fmt.Printf("%-12d %-10d %-14v %-12.0f %-10d\n",
			parts, len(lines), elapsed.Round(time.Millisecond),
			float64(len(lines))/elapsed.Seconds(), anomalies)
	}
	return nil
}

func runOne(corpus datagen.Corpus, lines []string, partitions, sources int, staged bool) (time.Duration, uint64, error) {
	p, err := core.New(core.Config{
		Partitions:            partitions,
		DisableHeartbeat:      true,
		DisableAnomalyStorage: true,
		Staged:                staged,
	})
	if err != nil {
		return 0, 0, err
	}
	// One model shared by every synthetic source (they all speak D1).
	if _, _, err := p.Train("lt", experiments.ToLogs("lt", corpus.Train)); err != nil {
		return 0, 0, err
	}
	if err := p.Start(); err != nil {
		return 0, 0, err
	}

	agents := make([]interface{ Send(string) error }, sources)
	for i := range agents {
		ag, err := p.Agent(fmt.Sprintf("src-%d", i), 0)
		if err != nil {
			return 0, 0, err
		}
		agents[i] = ag
	}

	// Route whole corpus copies to one source each, so event traces stay
	// intact within a source and the detector exercises its normal path.
	chunk := len(corpus.Test)
	start := time.Now()
	for i, line := range lines {
		if err := agents[(i/chunk)%sources].Send(line); err != nil {
			return 0, 0, err
		}
	}
	if err := p.Drain(10 * time.Minute); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	anomalies := p.AnomalyCount()
	if err := p.Stop(); err != nil {
		return 0, 0, err
	}
	return elapsed, anomalies, nil
}
