// Command modeltool implements the model manager's expert workflow (§II,
// §III-A4): inspecting stored models and editing them — renaming fields,
// specializing/generalizing tokens, changing datatypes, deleting patterns
// or automata — before handing them back to a running service.
//
//	modeltool -model m.json inspect
//	modeltool -model m.json -out m2.json rename -pattern 1 -field P1F1 -to logTime
//	modeltool -model m.json -out m2.json specialize -pattern 1 -field P1F2 -value 127.0.0.1
//	modeltool -model m.json -out m2.json generalize -pattern 1 -value user1 -type NOTSPACE -name userName
//	modeltool -model m.json -out m2.json settype -pattern 1 -field sql -type ANYDATA
//	modeltool -model m.json -out m2.json delete-pattern -pattern 3
//	modeltool -model m.json -out m2.json delete-automaton -automaton 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"loglens/internal/datatype"
	"loglens/internal/grok"
	"loglens/internal/logmine"
	"loglens/internal/modelmgr"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modeltool:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("modeltool", flag.ContinueOnError)
	modelPath := global.String("model", "", "model JSON file (required)")
	outPath := global.String("out", "", "output file for edits (default: overwrite input)")

	// Split global flags from the subcommand.
	var cmdIdx int
	for cmdIdx = 0; cmdIdx < len(args); cmdIdx++ {
		if len(args[cmdIdx]) > 0 && args[cmdIdx][0] != '-' {
			break
		}
		if args[cmdIdx] == "-model" || args[cmdIdx] == "-out" {
			cmdIdx++ // skip the value
		}
	}
	if err := global.Parse(args[:cmdIdx]); err != nil {
		return err
	}
	if cmdIdx >= len(args) {
		return fmt.Errorf("no command; want inspect, diff, accept, rename, specialize, generalize, settype, delete-pattern, or delete-automaton")
	}
	cmd, rest := args[cmdIdx], args[cmdIdx+1:]
	if *modelPath == "" {
		return fmt.Errorf("-model is required")
	}
	if *outPath == "" {
		*outPath = *modelPath
	}

	model, err := load(*modelPath)
	if err != nil {
		return err
	}

	switch cmd {
	case "inspect":
		inspect(model)
		return nil
	case "hierarchy":
		hierarchy(model)
		return nil
	case "diff":
		return diff(model, rest)
	case "accept":
		if err := accept(model, rest); err != nil {
			return err
		}
		return save(model, *outPath)
	case "rename", "specialize", "generalize", "settype", "delete-pattern", "delete-automaton":
		if err := edit(model, cmd, rest); err != nil {
			return err
		}
		return save(model, *outPath)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// hierarchy prints the LogMine pattern tree: the model's patterns
// re-clustered level by level into progressively more general shapes.
func hierarchy(m *modelmgr.Model) {
	levels := logmine.BuildHierarchy(m.Patterns, logmine.HierarchyConfig{})
	for lvl, l := range levels {
		fmt.Printf("level %d (%d patterns):\n", lvl, l.Patterns.Len())
		for _, p := range l.Patterns.Patterns() {
			fmt.Printf("  %3d: %s\n", p.ID, p)
		}
	}
}

// diff prints how another model differs from this one.
func diff(m *modelmgr.Model, args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	with := fs.String("with", "", "model JSON file to compare against (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *with == "" {
		return fmt.Errorf("diff: -with is required")
	}
	other, err := load(*with)
	if err != nil {
		return err
	}
	fmt.Print(modelmgr.DiffModels(m, other).String())
	return nil
}

// accept folds operator-approved log lines into the model as new patterns
// (the §VIII feedback loop).
func accept(m *modelmgr.Model, args []string) error {
	fs := flag.NewFlagSet("accept", flag.ContinueOnError)
	logsPath := fs.String("logs", "", "file of accepted log lines (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logsPath == "" {
		return fmt.Errorf("accept: -logs is required")
	}
	data, err := os.ReadFile(*logsPath)
	if err != nil {
		return err
	}
	lines := strings.Split(string(data), "\n")
	added, err := m.AcceptNormal(lines, nil, logmine.Config{})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "added %d pattern(s) from %d accepted lines\n", added, len(lines))
	return nil
}

func load(path string) (*modelmgr.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m modelmgr.Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &m, nil
}

func save(m *modelmgr.Model, path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func inspect(m *modelmgr.Model) {
	fmt.Printf("model %q created %s\n", m.ID, m.CreatedAt.Format("2006-01-02 15:04:05"))
	fmt.Printf("\npatterns (%d):\n", m.Patterns.Len())
	for _, p := range m.Patterns.Patterns() {
		idField := ""
		if f, ok := m.Sequence.IDFields[p.ID]; ok {
			idField = "  [event ID: " + f + "]"
		}
		fmt.Printf("  %3d: %s%s\n", p.ID, p.String(), idField)
	}
	if shadowed := grok.FindShadowed(m.Patterns); len(shadowed) > 0 {
		fmt.Printf("\nwarnings:\n")
		for _, sp := range shadowed {
			fmt.Printf("  pattern %d is shadowed by pattern %d and can never match\n", sp.Shadowed, sp.By)
		}
	}
	fmt.Printf("\nautomata (%d):\n", len(m.Sequence.Automata))
	for _, a := range m.Sequence.Automata {
		fmt.Printf("  %3d: key %s  begin=%d end=%d  duration [%v, %v]  traces %d\n",
			a.ID, a.Key, a.BeginPattern, a.EndPattern, a.MinDuration, a.MaxDuration, a.Traces)
		for _, s := range a.States {
			fmt.Printf("        state pattern %d: occurrences [%d, %d]\n", s.PatternID, s.MinOcc, s.MaxOcc)
		}
	}
}

func edit(m *modelmgr.Model, cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	patternID := fs.Int("pattern", 0, "pattern ID")
	field := fs.String("field", "", "field name")
	to := fs.String("to", "", "new field name (rename)")
	value := fs.String("value", "", "token value (specialize/generalize)")
	typeName := fs.String("type", "", "datatype (generalize/settype)")
	name := fs.String("name", "", "field name for the generalized token")
	automatonID := fs.Int("automaton", 0, "automaton ID (delete-automaton)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if cmd == "delete-automaton" {
		if !m.Sequence.Delete(*automatonID) {
			return fmt.Errorf("no automaton %d", *automatonID)
		}
		return nil
	}
	if cmd == "delete-pattern" {
		if !m.Patterns.Delete(*patternID) {
			return fmt.Errorf("no pattern %d", *patternID)
		}
		delete(m.Sequence.IDFields, *patternID)
		return nil
	}

	p, ok := m.Patterns.Get(*patternID)
	if !ok {
		return fmt.Errorf("no pattern %d", *patternID)
	}
	switch cmd {
	case "rename":
		if err := p.RenameField(*field, *to); err != nil {
			return err
		}
		// Keep the sequence model's ID-field mapping consistent.
		if m.Sequence.IDFields[*patternID] == *field {
			m.Sequence.IDFields[*patternID] = *to
		}
		return nil
	case "specialize":
		return p.Specialize(*field, *value)
	case "generalize":
		typ, err := datatype.Parse(*typeName)
		if err != nil {
			return err
		}
		return p.GeneralizeValue(*value, typ, *name)
	case "settype":
		typ, err := datatype.Parse(*typeName)
		if err != nil {
			return err
		}
		return p.SetFieldType(*field, typ)
	}
	return fmt.Errorf("unknown command %q", cmd)
}
