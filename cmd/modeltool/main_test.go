package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"loglens/internal/experiments"
	"loglens/internal/modelmgr"
)

// writeModel builds a small model file for the tool to edit.
func writeModel(t *testing.T) string {
	t.Helper()
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	var lines []string
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("ev-%04d", i)
		t0 := base.Add(time.Duration(i*10) * time.Second)
		lines = append(lines,
			fmt.Sprintf("%s task %s start prio %d", t0.Format("2006/01/02 15:04:05.000"), id, i%5),
			fmt.Sprintf("%s task %s done code %d", t0.Add(2*time.Second).Format("2006/01/02 15:04:05.000"), id, i%3))
	}
	m, _, err := modelmgr.NewBuilder(modelmgr.BuilderConfig{}).Build("demo", experiments.ToLogs("t", lines))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func loadFile(t *testing.T, path string) *modelmgr.Model {
	t.Helper()
	m, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunInspect(t *testing.T) {
	path := writeModel(t)
	if err := run([]string{"-model", path, "inspect"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRenameKeepsIDFields(t *testing.T) {
	path := writeModel(t)
	out := filepath.Join(t.TempDir(), "out.json")
	// P1F2 carries the event ID; renaming it must update the sequence
	// model's mapping too.
	if err := run([]string{"-model", path, "-out", out, "rename", "-pattern", "1", "-field", "P1F2", "-to", "taskId"}); err != nil {
		t.Fatal(err)
	}
	m := loadFile(t, out)
	p, _ := m.Patterns.Get(1)
	if p.Field("taskId") < 0 {
		t.Errorf("rename not applied: %s", p)
	}
	if m.Sequence.IDFields[1] != "taskId" {
		t.Errorf("ID-field mapping stale: %v", m.Sequence.IDFields)
	}
}

func TestRunEdits(t *testing.T) {
	path := writeModel(t)
	out := filepath.Join(t.TempDir(), "out.json")
	steps := [][]string{
		{"-model", path, "-out", out, "specialize", "-pattern", "1", "-field", "P1F3", "-value", "3"},
		{"-model", out, "settype", "-pattern", "2", "-field", "P2F3", "-type", "NOTSPACE"},
		{"-model", out, "generalize", "-pattern", "1", "-value", "task", "-type", "WORD", "-name", "kind"},
		{"-model", out, "delete-automaton", "-automaton", "1"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	m := loadFile(t, out)
	p1, _ := m.Patterns.Get(1)
	if p1.Field("kind") < 0 {
		t.Errorf("generalize lost: %s", p1)
	}
	if len(m.Sequence.Automata) != 0 {
		t.Errorf("automaton not deleted")
	}
	// delete-pattern.
	if err := run([]string{"-model", out, "delete-pattern", "-pattern", "2"}); err != nil {
		t.Fatal(err)
	}
	m = loadFile(t, out)
	if m.Patterns.Len() != 1 {
		t.Errorf("patterns = %d", m.Patterns.Len())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeModel(t)
	for _, args := range [][]string{
		{"inspect"},               // no -model
		{"-model", path},          // no command
		{"-model", path, "bogus"}, // unknown command
		{"-model", "/nope/missing", "inspect"},
		{"-model", path, "rename", "-pattern", "9", "-field", "x", "-to", "y"},
		{"-model", path, "delete-automaton", "-automaton", "42"},
		{"-model", path, "generalize", "-pattern", "1", "-value", "task", "-type", "BOGUS"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunDiffAndAccept(t *testing.T) {
	path := writeModel(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "out.json")

	// accept: new shape folds in.
	logsFile := filepath.Join(dir, "accepted.log")
	if err := os.WriteFile(logsFile, []byte("gc pause 12 ms\ngc pause 9 ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", path, "-out", out, "accept", "-logs", logsFile}); err != nil {
		t.Fatal(err)
	}
	m := loadFile(t, out)
	if m.Patterns.Len() != 3 {
		t.Fatalf("patterns after accept = %d, want 3", m.Patterns.Len())
	}

	// diff: original vs edited shows the added pattern.
	if err := run([]string{"-model", path, "diff", "-with", out}); err != nil {
		t.Fatal(err)
	}
	d := modelmgr.DiffModels(loadFile(t, path), m)
	if len(d.PatternsAdded) != 1 {
		t.Errorf("diff = %+v", d)
	}

	// Error paths.
	if err := run([]string{"-model", path, "diff"}); err == nil {
		t.Error("diff without -with must fail")
	}
	if err := run([]string{"-model", path, "accept"}); err == nil {
		t.Error("accept without -logs must fail")
	}
}
