package main

import "testing"

// TestRunSelectedExperiments executes the cheap experiments end to end —
// the same code paths `-exp figure4 -exp figure5 -exp table5` run.
func TestRunSelectedExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := map[string]bool{"figure4": true, "figure5": true, "table5": true}
	if err := runAll(run, false, 0.01, 0, 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	if err := runAll(map[string]bool{"nonexistent": true}, false, 0.01, 0, 7); err != nil {
		t.Fatal(err)
	}
}
