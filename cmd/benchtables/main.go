// Command benchtables regenerates every table and figure of the paper's
// evaluation (§VI) and case studies (§VII) from the reproduction harness:
//
//	benchtables -exp all
//	benchtables -exp table4 -scale 0.05 -budget 30s
//	benchtables -exp figure4 -exp figure5
//
// Experiments: timestamp (§VI-A), table4 (LogLens vs Logstash), figure4
// (detection recall), figure5 (heartbeat ablation), table5 (model-update
// deletion), figure6 (SS7 case study), casestudy_a (pattern discovery),
// rebroadcast (§V-A overhead).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"loglens/internal/datagen"
	"loglens/internal/experiments"
	"loglens/internal/seqdetect"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var exps multiFlag
	flag.Var(&exps, "exp", "experiment to run (repeatable): all, timestamp, table4, figure4, figure5, table5, figure6, casestudy_a, heartbeat, reorder, rebroadcast")
	scale := flag.Float64("scale", 0.05, "corpus scale for table4/figure6 (1.0 = the paper's full sizes)")
	budget := flag.Duration("budget", 60*time.Second, "wall-clock budget for the Logstash baseline per dataset before declaring DNF")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	if len(exps) == 0 {
		exps = multiFlag{"all"}
	}
	run := map[string]bool{}
	for _, e := range exps {
		run[e] = true
	}
	all := run["all"]

	if err := runAll(run, all, *scale, *budget, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func runAll(run map[string]bool, all bool, scale float64, budget time.Duration, seed int64) error {
	if all || run["timestamp"] {
		section("§VI-A Timestamp identification (caching + filtering vs linear scan)")
		res := experiments.RunTimestamp(200000, seed)
		fmt.Print(res.Format())
	}

	if all || run["table4"] {
		section(fmt.Sprintf("Table IV: LogLens vs Logstash (scale %.2f, baseline budget %v)", scale, budget))
		var rows []*experiments.ParserComparison
		for _, spec := range datagen.TableIVSpecs {
			fmt.Printf("  generating %s (%d patterns, %d logs at scale %.2f)...\n",
				spec.Name, spec.Patterns, int(float64(spec.Logs)*scale), scale)
			c := datagen.TableIVCorpus(spec, scale, seed)
			row, err := experiments.RunTableIV(c, budget)
			if err != nil {
				return err
			}
			if row.Patterns != row.ExpectedPatterns {
				fmt.Printf("  WARNING: %s discovered %d patterns, expected %d\n", spec.Name, row.Patterns, row.ExpectedPatterns)
			}
			rows = append(rows, row)
		}
		fmt.Print(experiments.FormatTableIV(rows))
		fmt.Println("  (paper: D3 4074% and D5 1629% improvement; D4/D6 DNF after 48h — shape, not absolute times)")
	}

	if all || run["figure4"] {
		section("Figure 4: log sequence anomaly detection accuracy")
		for _, c := range []datagen.Corpus{datagen.D1(seed), datagen.D2(seed)} {
			res, err := experiments.RunSequence(c, experiments.SeqOptions{WithHeartbeat: true})
			if err != nil {
				return err
			}
			fmt.Printf("  %s: ground truth %d, detected %d (recall %.0f%%, false positives %d), unparsed %d, train %v, detect %v\n",
				c.Name, c.Truth.TotalAnomalies, res.Detected,
				100*float64(res.TruePositives)/float64(c.Truth.TotalAnomalies), res.FalsePositives,
				res.Unparsed, res.TrainTime.Round(time.Millisecond), res.DetectTime.Round(time.Millisecond))
		}
		fmt.Println("  (paper: D1 21/21, D2 13/13 — 100% recall)")
	}

	if all || run["figure5"] {
		section("Figure 5: anomaly detection with and without heartbeats")
		for _, c := range []datagen.Corpus{datagen.D1(seed), datagen.D2(seed)} {
			with, err := experiments.RunSequence(c, experiments.SeqOptions{WithHeartbeat: true})
			if err != nil {
				return err
			}
			without, err := experiments.RunSequence(c, experiments.SeqOptions{WithHeartbeat: false})
			if err != nil {
				return err
			}
			fmt.Printf("  %s: ground truth %d | w/o HB %d | w/ HB %d (recovered %d missing-end)\n",
				c.Name, c.Truth.TotalAnomalies, without.Detected, with.Detected, with.Detected-without.Detected)
		}
		fmt.Println("  (paper: D1 20 vs 21, D2 10 vs 13)")
	}

	if all || run["table5"] {
		section("Table V: anomaly detection using model updates (automaton deletion)")
		type row struct {
			corpus datagen.Corpus
			del    string
		}
		for _, r := range []row{{datagen.D1(seed), "volume"}, {datagen.D2(seed), "backup"}} {
			full, err := experiments.RunSequence(r.corpus, experiments.SeqOptions{WithHeartbeat: true})
			if err != nil {
				return err
			}
			deleted, err := experiments.RunSequence(r.corpus, experiments.SeqOptions{WithHeartbeat: true, DeleteType: r.del})
			if err != nil {
				return err
			}
			fmt.Printf("  %s: automata %d -> %d, anomalies %d -> %d (deleted the %q automaton)\n",
				r.corpus.Name, full.AutomataBefore, deleted.AutomataAfter, full.Detected, deleted.Detected, r.del)
		}
		fmt.Println("  (paper: D1 2->1 automata, 21->13 anomalies; D2 3->2, 13->9)")
	}

	if all || run["figure6"] {
		section(fmt.Sprintf("Figures 6-7: SS7 spoofing-attack case study (scale %.2f)", scale))
		c := datagen.SS7(scale, seed)
		fmt.Printf("  corpus: %d training + %d detection logs (2h train / 1h detect)\n", len(c.Train), len(c.Test))
		res, err := experiments.RunSS7(c, 5*time.Minute)
		if err != nil {
			return err
		}
		fmt.Printf("  anomalies: %d (expected %d), all missing InvokeUpdateLocation: %v\n",
			res.Anomalies, c.Truth.Anomalies, res.SpoofingSignature == res.Anomalies)
		fmt.Printf("  clusters: %d (expected %d)\n", len(res.Clusters), c.Truth.Clusters)
		for i, cl := range res.Clusters {
			fmt.Printf("    cluster %d: %s .. %s  %d anomalies\n",
				i+1, cl.Start.Format("15:04:05"), cl.End.Format("15:04:05"), cl.Count())
		}
		fmt.Printf("  train %v, detect %v (paper: 5 minutes vs 2 expert-days = 576x)\n",
			res.TrainTime.Round(time.Millisecond), res.DetectTime.Round(time.Millisecond))
	}

	if all || run["casestudy_a"] {
		section("§VII-A: custom application SQL log pattern discovery")
		c := datagen.CustomApp(36700, seed)
		res, err := experiments.RunCaseA(c)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}

	if all || run["heartbeat"] {
		section("§V-B: heartbeat-interval sensitivity (time to detect missing-end anomalies)")
		c := datagen.D1(seed)
		intervals := []time.Duration{time.Second, 10 * time.Second, 30 * time.Second, 60 * time.Second}
		rows, err := experiments.RunHeartbeatLatency(c, intervals, seqdetect.Config{})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatHeartbeatLatency(c.Truth.TotalAnomalies, rows))
	}

	if all || run["reorder"] {
		section("Beyond the paper: out-of-order delivery sensitivity (D1)")
		c := datagen.D1(seed)
		jitters := []time.Duration{0, 200 * time.Millisecond, time.Second, 5 * time.Second, 10 * time.Second}
		rows, err := experiments.RunReorder(c, jitters, seed)
		if err != nil {
			return err
		}
		fmt.Printf("  %-10s %-8s %-10s\n", "jitter", "truth", "detected")
		for _, r := range rows {
			fmt.Printf("  %-10v %-8d %-10d\n", r.Jitter, r.GroundTruth, r.Detected)
		}
		fmt.Println("  (events step every 1-3s: jitter within the step gap is harmless; beyond it, traces split)")
	}

	if all || run["rebroadcast"] {
		section("§V-A: zero-downtime model updates (rebroadcast)")
		res, err := experiments.RunRebroadcast(200000, 10, 4)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}
	return nil
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
