// Command shiplogs is the remote log agent (§II): it reads log lines from
// a file or stdin and ships them to a LogLens service over TCP.
//
//	shiplogs -addr loglens-host:5044 -source web-1 -file access.log
//	tail -f app.log | shiplogs -addr :5044 -source app
//
// With -bus it ships to a broker (`loglens broker`) over the netbus
// protocol instead, writing every line through a bounded CRC-framed disk
// spool first so broker outages shorter than the spool cap lose nothing:
//
//	shiplogs -bus broker-host:7070 -source web-1 -file access.log
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"loglens/internal/agent"
	"loglens/internal/clock"
	"loglens/internal/fsx"
	"loglens/internal/netbus"
	"loglens/internal/wire"
)

func main() {
	addr := flag.String("addr", "", "LogLens service address (mutually exclusive with -bus)")
	busAddr := flag.String("bus", "", "broker address to publish through (see `loglens broker`)")
	source := flag.String("source", "", "log source name (required)")
	file := flag.String("file", "-", "log file to ship ('-' for stdin)")
	rate := flag.Int("rate", 0, "ship rate in logs/sec (0 = unthrottled)")
	spoolDir := flag.String("spool-dir", "", "directory for the -bus disk spool (default: os temp dir)")
	spoolMax := flag.Int64("spool-max-bytes", netbus.DefaultSpoolMaxBytes, "spool capacity; oldest lines shed beyond this")
	flag.Parse()

	if err := run(*addr, *busAddr, *source, *file, *rate, *spoolDir, *spoolMax); err != nil {
		fmt.Fprintln(os.Stderr, "shiplogs:", err)
		os.Exit(1)
	}
}

func run(addr, busAddr, source, file string, rate int, spoolDir string, spoolMax int64) error {
	if (addr == "") == (busAddr == "") {
		return fmt.Errorf("exactly one of -addr or -bus is required, plus -source")
	}
	if source == "" {
		return fmt.Errorf("-source is required")
	}
	in := os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	if busAddr != "" {
		return runBus(busAddr, source, file, in, rate, spoolDir, spoolMax)
	}

	client, err := wire.Dial(addr, source)
	if err != nil {
		return err
	}
	defer client.Close()

	var limiter *time.Ticker
	if rate > 0 {
		limiter = time.NewTicker(time.Second / time.Duration(rate))
		defer limiter.Stop()
	}

	scanner := newLineScanner(in)
	ctx := context.Background()
	var n uint64
	for scanner.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		line := scanner.Text()
		if line == "" {
			continue
		}
		if limiter != nil {
			<-limiter.C
		}
		if err := client.Send(line); err != nil {
			return err
		}
		n++
		if n%1024 == 0 {
			if err := client.Flush(); err != nil {
				return err
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if err := client.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shipped %d logs from %s as source %q\n", n, file, source)
	return nil
}

// runBus ships through a netbus broker: every line lands in the disk
// spool first, the publisher drains it to the broker in order, and the
// (source, seq) identity makes replays after a crash or reconnect
// idempotent on the broker side.
func runBus(busAddr, source, file string, in io.Reader, rate int, spoolDir string, spoolMax int64) error {
	if spoolDir == "" {
		spoolDir = os.TempDir()
	}
	spoolPath := filepath.Join(spoolDir, "shiplogs-"+source+".spool")
	spool, err := netbus.OpenSpool(netbus.SpoolOptions{
		FS:       fsx.OS{},
		Path:     spoolPath,
		MaxBytes: spoolMax,
	})
	if err != nil {
		return fmt.Errorf("open spool %s: %w", spoolPath, err)
	}

	// The broker dedups on (source, seq) with a max-based high-water
	// mark, so a restarted agent that counted from 1 again would have
	// every fresh line silently swallowed as a replay. The seq file
	// persists the counter across incarnations (block-reserved, so a
	// crash skips numbers but never reuses them).
	seqFile, err := netbus.OpenSeqFile(fsx.OS{}, spoolPath+".seq", 0)
	if err != nil {
		return fmt.Errorf("open seq file: %w", err)
	}

	client := netbus.Dial(busAddr, netbus.Options{Clock: clock.New(), Role: "agent"})
	defer client.Close()
	pub := netbus.NewPublisher(client, agent.LogsTopic, spool)
	defer pub.Close()

	var limiter *time.Ticker
	if rate > 0 {
		limiter = time.NewTicker(time.Second / time.Duration(rate))
		defer limiter.Stop()
	}

	scanner := newLineScanner(in)
	var n uint64
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" {
			continue
		}
		if limiter != nil {
			<-limiter.C
		}
		seq, err := seqFile.Next()
		if err != nil {
			return fmt.Errorf("reserve seq: %w", err)
		}
		if err := pub.Send(source, seq, line); err != nil {
			return fmt.Errorf("spool %s: %w", spoolPath, err)
		}
		n++
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := pub.Drain(ctx); err != nil {
		return fmt.Errorf("drain spool (%d lines still queued): %w", spool.Len(), err)
	}
	fmt.Fprintf(os.Stderr, "shipped %d logs from %s as source %q via broker %s (%d shed)\n",
		n, file, source, busAddr, spool.Shed())
	return nil
}

func newLineScanner(in io.Reader) *bufio.Scanner {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 64*1024), wire.MaxFrameBytes)
	return scanner
}
