// Command shiplogs is the remote log agent (§II): it reads log lines from
// a file or stdin and ships them to a LogLens service over TCP.
//
//	shiplogs -addr loglens-host:5044 -source web-1 -file access.log
//	tail -f app.log | shiplogs -addr :5044 -source app
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"loglens/internal/wire"
)

func main() {
	addr := flag.String("addr", "", "LogLens service address (required)")
	source := flag.String("source", "", "log source name (required)")
	file := flag.String("file", "-", "log file to ship ('-' for stdin)")
	rate := flag.Int("rate", 0, "ship rate in logs/sec (0 = unthrottled)")
	flag.Parse()

	if err := run(*addr, *source, *file, *rate); err != nil {
		fmt.Fprintln(os.Stderr, "shiplogs:", err)
		os.Exit(1)
	}
}

func run(addr, source, file string, rate int) error {
	if addr == "" || source == "" {
		return fmt.Errorf("-addr and -source are required")
	}
	in := os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	client, err := wire.Dial(addr, source)
	if err != nil {
		return err
	}
	defer client.Close()

	var limiter *time.Ticker
	if rate > 0 {
		limiter = time.NewTicker(time.Second / time.Duration(rate))
		defer limiter.Stop()
	}

	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 64*1024), wire.MaxFrameBytes)
	ctx := context.Background()
	var n uint64
	for scanner.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		line := scanner.Text()
		if line == "" {
			continue
		}
		if limiter != nil {
			<-limiter.C
		}
		if err := client.Send(line); err != nil {
			return err
		}
		n++
		if n%1024 == 0 {
			if err := client.Flush(); err != nil {
				return err
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if err := client.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shipped %d logs from %s as source %q\n", n, file, source)
	return nil
}
