package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"loglens/internal/bus"
	"loglens/internal/metrics"
	"loglens/internal/netbus"
)

// brokerMain is the `loglens broker` subcommand: a standalone bus node
// serving the netbus RPC protocol. Agents point `shiplogs -bus` at it
// and workers point `loglens -bus` at it, giving the paper's Figure 1
// deployment shape — components communicating through a broker instead
// of an in-process channel.
func brokerMain(args []string) int {
	fs := flag.NewFlagSet("broker", flag.ExitOnError)
	listen := fs.String("listen", ":7070", "TCP address to serve the bus protocol on")
	dumpMetrics := fs.Bool("metrics", false, "dump the metrics registry to stderr on exit")
	fs.Parse(args)

	srv := netbus.NewServer(bus.New())
	reg := metrics.NewRegistry()
	srv.SetMetrics(reg)

	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loglens broker:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "broker serving on %s (loglens -bus %s / shiplogs -bus %s)\n", addr, addr, addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "broker draining...")
	srv.Close()
	if *dumpMetrics {
		fmt.Fprintln(os.Stderr, "--- metrics ---")
		reg.Snapshot().WriteText(os.Stderr)
	}
	return 0
}
