package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"loglens/internal/clock"
	"loglens/internal/watch"
)

// watchMain is the `loglens watch` subcommand: a live ANSI terminal
// dashboard over a running LogLens dashboard server. It subscribes to
// the SSE metrics stream and re-renders one frame per server tick,
// polling the flight recorder and health probes alongside.
//
//	loglens watch -addr localhost:8080
func watchMain(args []string) int {
	fs := flag.NewFlagSet("loglens watch", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "dashboard server address or base URL")
	interval := fs.Duration("interval", time.Second, "refresh cadence (the SSE stream interval)")
	frames := fs.Int("frames", 0, "exit after this many frames (0 = run until interrupted)")
	fs.Parse(args)
	if err := runWatch(*addr, *interval, *frames, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loglens watch:", err)
		return 1
	}
	return 0
}

// runWatch drives the dashboard loop against a live server, writing one
// ANSI frame to out per SSE tick until the stream ends or maxFrames is
// reached.
func runWatch(addr string, interval time.Duration, maxFrames int, out io.Writer) error {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(base + "/api/metrics/stream?interval=" + interval.String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics stream: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fmt.Errorf("metrics stream: unexpected Content-Type %q", ct)
	}

	// Events come from the flight recorder, health from the probe
	// registry; both tolerate error responses (503 healthz still carries
	// the per-probe body), so fetch failures just leave the previous
	// section contents in place.
	fetch := func(path string) ([]byte, bool) {
		r, err := http.Get(base + path)
		if err != nil {
			return nil, false
		}
		defer r.Body.Close()
		body, err := io.ReadAll(r.Body)
		return body, err == nil
	}

	m := watch.NewModel(clock.New())
	n := 0
	return watch.ReadStream(resp.Body, func(data []byte) bool {
		if err := m.ApplyMetrics(data); err != nil {
			return true // tolerate one bad frame, keep streaming
		}
		if body, ok := fetch("/api/events?limit=8"); ok {
			m.ApplyEvents(body)
		}
		if body, ok := fetch("/healthz"); ok {
			m.ApplyHealth(body)
		}
		fmt.Fprint(out, watch.ClearScreen)
		m.Render(out)
		n++
		return maxFrames == 0 || n < maxFrames
	})
}
