// Command loglens runs the LogLens service on files: it learns models from
// a training log (the system's "correct" behaviour), then streams a
// production log through the full pipeline and reports anomalies.
//
//	loglens -train normal.log -stream production.log
//	loglens -train normal.log -stream - -dashboard :8080
//
// With -dashboard the visualization server stays up after the stream ends
// (Ctrl-C to exit); -final-heartbeat injects a trailing heartbeat so
// events that never completed are reported as missing-end anomalies. On
// SIGINT/SIGTERM the dashboard drains in-flight requests and the flight
// recorder is flushed to stderr; -trace-out writes the retained span
// window as Chrome trace-event JSON at exit.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/bus"
	"loglens/internal/clock"
	"loglens/internal/core"
	"loglens/internal/dashboard"
	"loglens/internal/heartbeat"
	"loglens/internal/intake"
	"loglens/internal/logtypes"
	"loglens/internal/modelmgr"
	"loglens/internal/netbus"
	"loglens/internal/obs"
	"loglens/internal/preprocess"
)

type options struct {
	trainPath    string
	streamPath   string
	source       string
	dashAddr     string
	hbInterval   time.Duration
	finalHB      bool
	rate         int
	quiet        bool
	loadModel    string
	saveModel    string
	volumeWindow time.Duration
	stateDir     string
	listen       string
	metrics      bool
	traceOut     string
	ckptDir      string
	ckptInterval time.Duration
	dataDir      string
	retention    time.Duration
	syslogUDP    string
	syslogTCP    string
	listenHTTP   string
	tenantRate   int
	intakeQueue  int
	sloE2EMs     int
	busAddr      string
}

func main() {
	// Subcommands dispatch before flag parsing; everything else is the
	// classic train-and-stream invocation.
	if len(os.Args) > 1 && os.Args[1] == "watch" {
		os.Exit(watchMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "broker" {
		os.Exit(brokerMain(os.Args[2:]))
	}
	var o options
	flag.StringVar(&o.trainPath, "train", "", "training log file (required unless -load-model)")
	flag.StringVar(&o.streamPath, "stream", "", "log file to analyze ('-' for stdin; required)")
	flag.StringVar(&o.source, "source", "default", "log source name")
	flag.StringVar(&o.dashAddr, "dashboard", "", "serve the dashboard on this address (e.g. :8080)")
	flag.DurationVar(&o.hbInterval, "heartbeat", time.Second, "heartbeat controller interval (0 disables)")
	flag.BoolVar(&o.finalHB, "final-heartbeat", true, "inject a trailing heartbeat at end of stream")
	flag.IntVar(&o.rate, "rate", 0, "replay rate in logs/sec (0 = unthrottled)")
	flag.BoolVar(&o.quiet, "quiet", false, "suppress per-anomaly output")
	flag.StringVar(&o.loadModel, "load-model", "", "load a model JSON file instead of training")
	flag.StringVar(&o.saveModel, "save-model", "", "write the trained model to this JSON file")
	flag.DurationVar(&o.volumeWindow, "volume-window", 0, "also learn a per-pattern rate profile with this window (enables the volume detector)")
	flag.StringVar(&o.stateDir, "state-dir", "", "persist log/model/anomaly storage to this directory at exit (and restore at startup)")
	flag.StringVar(&o.listen, "listen", "", "also accept remote shiplogs agents on this TCP address (e.g. :5044)")
	flag.BoolVar(&o.metrics, "metrics", false, "dump the metrics registry (expvar-style text) to stderr after the stream ends")
	flag.StringVar(&o.traceOut, "trace-out", "", "write the retained span window as Chrome trace JSON to this file at exit")
	flag.StringVar(&o.ckptDir, "checkpoint-dir", "", "enable crash recovery: write periodic checkpoints to this directory and restore from it at startup")
	flag.DurationVar(&o.ckptInterval, "checkpoint-interval", 30*time.Second, "periodic checkpoint cadence when -checkpoint-dir is set (0 = only explicit/final checkpoints)")
	flag.StringVar(&o.dataDir, "data-dir", "", "persist storage to this directory with the segment engine (WAL + immutable segments; survives restarts without -state-dir snapshots)")
	flag.DurationVar(&o.retention, "retention", 0, "with -data-dir: age log/anomaly segments out after this duration (0 keeps everything; models are always kept)")
	flag.StringVar(&o.syslogUDP, "listen-syslog-udp", "", "accept syslog datagrams (RFC3164/RFC5424) on this UDP address (e.g. :5514)")
	flag.StringVar(&o.syslogTCP, "listen-syslog-tcp", "", "accept syslog streams (newline or octet-counted framing) on this TCP address (e.g. :5514)")
	flag.StringVar(&o.listenHTTP, "listen-http", "", "accept JSON log batches via POST /api/ingest on this address (e.g. :5515)")
	flag.IntVar(&o.tenantRate, "tenant-rate", 0, "per-tenant intake rate limit in lines/sec (0 = unlimited); TCP senders over it are slowed, UDP/HTTP lines shed")
	flag.IntVar(&o.intakeQueue, "intake-queue", 0, "bounded intake queue depth between the listeners and the bus (0 = default 8192)")
	flag.IntVar(&o.sloE2EMs, "slo-e2e-ms", 0, "end-to-end latency SLO in milliseconds: lines slower than this count in latency_slo_breach_total and /api/latency (0 disables)")
	flag.StringVar(&o.busAddr, "bus", "", "run against an external broker at this address (see `loglens broker`) instead of the in-process bus")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "loglens:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if (o.trainPath == "" && o.loadModel == "") || o.streamPath == "" {
		return fmt.Errorf("-stream and one of -train/-load-model are required")
	}

	clk := clock.New()
	ops := obs.New(clk)

	// First SIGINT/SIGTERM starts an orderly drain; stop() restores the
	// default disposition so a second signal force-kills.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	var extBus bus.Broker
	if o.busAddr != "" {
		client := netbus.Dial(o.busAddr, netbus.Options{Clock: clk, Role: "worker"})
		defer client.Close()
		wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
		err := client.WaitConnected(wctx)
		wcancel()
		if err != nil {
			return fmt.Errorf("connect to broker %s: %w", o.busAddr, err)
		}
		fmt.Fprintf(os.Stderr, "connected to broker %s\n", o.busAddr)
		extBus = client
	}

	p, err := core.New(core.Config{
		Bus:              extBus,
		Clock:            clk,
		Ops:              ops,
		DisableHeartbeat: o.hbInterval <= 0,
		Heartbeat:        heartbeat.Config{Interval: o.hbInterval},
		ArchiveLogs:      true,
		SLOE2E:           time.Duration(o.sloE2EMs) * time.Millisecond,
		Builder:          modelmgr.BuilderConfig{VolumeWindow: o.volumeWindow},
		Recovery:         core.RecoveryConfig{Dir: o.ckptDir, Interval: o.ckptInterval},
		Intake: intake.Config{
			SyslogUDP:   o.syslogUDP,
			SyslogTCP:   o.syslogTCP,
			HTTP:        o.listenHTTP,
			TenantRate:  o.tenantRate,
			QueueDepth:  o.intakeQueue,
			IdleTimeout: 5 * time.Minute,
		},
		Storage: core.StorageConfig{
			Dir:       o.dataDir,
			Retention: o.retention,
			// Real deployment cadence: flush every 30s, consider
			// compaction every 5m, age segments out every minute.
			FlushInterval:     30 * time.Second,
			CompactInterval:   5 * time.Minute,
			RetentionInterval: time.Minute,
		},
	})
	if err != nil {
		return err
	}
	if o.ckptDir != "" {
		restored, err := p.Restore()
		if err != nil {
			return fmt.Errorf("restore checkpoint: %w", err)
		}
		if restored {
			fmt.Fprintf(os.Stderr, "restored from checkpoint in %s\n", o.ckptDir)
		}
	}
	if o.stateDir != "" {
		if _, err := os.Stat(o.stateDir); err == nil {
			if err := p.Store().LoadDir(o.stateDir); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "restored storage from %s\n", o.stateDir)
		}
	}

	var model *modelmgr.Model
	if o.loadModel != "" {
		data, err := os.ReadFile(o.loadModel)
		if err != nil {
			return err
		}
		model = &modelmgr.Model{}
		if err := json.Unmarshal(data, model); err != nil {
			return fmt.Errorf("parse %s: %w", o.loadModel, err)
		}
		if err := p.Manager().Save(model); err != nil {
			return err
		}
		p.InstallModel(model)
		fmt.Fprintf(os.Stderr, "loaded model %q: %d patterns, %d automata\n",
			model.ID, model.Patterns.Len(), len(model.Sequence.Automata))
	} else {
		trainLogs, err := readLogs(o.trainPath, o.source, clk)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "training on %d logs from %s...\n", len(trainLogs), o.trainPath)
		start := clk.Now()
		var report *modelmgr.BuildReport
		model, report, err = p.Train("file-model", trainLogs)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "model %q: %d patterns, %d automata, %d/%d patterns with event IDs (%v)\n",
			model.ID, report.Patterns, report.Automata, report.CoveredPatterns, report.Patterns, clk.Since(start).Round(time.Millisecond))
	}
	if o.saveModel != "" {
		data, err := json.MarshalIndent(model, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.saveModel, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "model written to %s\n", o.saveModel)
	}

	source, dashAddr, rate, quiet, finalHB, streamPath := o.source, o.dashAddr, o.rate, o.quiet, o.finalHB, o.streamPath

	var lastLogTime time.Time
	p.OnAnomaly(func(r anomaly.Record) {
		if quiet {
			return
		}
		fmt.Printf("ANOMALY %-26s severity=%-8s source=%s event=%s  %s\n",
			r.Type, r.Severity, r.Source, r.EventID, r.Reason)
	})

	if err := p.Start(); err != nil {
		return err
	}
	defer p.Stop()

	if o.listen != "" {
		bound, err := p.Listen(o.listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "accepting remote agents on %s (shiplogs -addr %s -source ...)\n", bound, bound)
	}
	if svc := p.Intake(); svc != nil {
		if a := svc.UDPAddr(); a != "" {
			fmt.Fprintf(os.Stderr, "accepting syslog datagrams on udp %s\n", a)
		}
		if a := svc.TCPAddr(); a != "" {
			fmt.Fprintf(os.Stderr, "accepting syslog streams on tcp %s\n", a)
		}
		if a := svc.HTTPAddr(); a != "" {
			fmt.Fprintf(os.Stderr, "accepting JSON batches on http://%s/api/ingest\n", a)
		}
	}

	var httpSrv *http.Server
	if dashAddr != "" {
		httpSrv = &http.Server{Addr: dashAddr, Handler: dashboard.New(p)}
		go func() {
			fmt.Fprintf(os.Stderr, "dashboard on http://%s/\n", dashAddr)
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "dashboard:", err)
			}
		}()
	}

	ag, err := p.Agent(source, rate)
	if err != nil {
		return err
	}

	in := os.Stdin
	if streamPath != "-" {
		f, err := os.Open(streamPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	pp := preprocess.New(nil, nil)
	n := 0
	// Scan on a separate goroutine: a blocked read (stdin in serve mode)
	// must not keep a signal from reaching the drain-and-flush path.
	lines := make(chan string)
	scanErr := make(chan error, 1)
	go func() {
		defer close(lines)
		for scanner.Scan() {
			select {
			case lines <- scanner.Text():
			case <-ctx.Done():
				return
			}
		}
		scanErr <- scanner.Err()
	}()
stream:
	for {
		var line string
		var ok bool
		select {
		case <-ctx.Done():
			break stream
		case line, ok = <-lines:
			if !ok {
				break stream
			}
		}
		if line == "" {
			continue
		}
		if err := ag.Send(line); err != nil {
			return err
		}
		n++
		if r := pp.Process(line); r.HasTime && r.Time.After(lastLogTime) {
			lastLogTime = r.Time
		}
	}
	select {
	case err := <-scanErr:
		if err != nil {
			return err
		}
	default: // reader still blocked mid-scan; shutdown abandons it
	}
	// A signal bounds the drain tightly — flushing the flight recorder
	// promptly beats emptying the bus.
	drainBudget := 5 * time.Minute
	if ctx.Err() != nil {
		drainBudget = 10 * time.Second
	}
	// The front door drains before anything else winds down: in-flight
	// intake connections finish, the intake queue empties into the bus —
	// so the Drain below (and the final checkpoint after it) sees every
	// acked line. Before this ordering, SIGTERM only drained stdin and
	// acked network lines could die in the intake queue.
	if svc := p.Intake(); svc != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := svc.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "intake drain:", err)
		}
		cancel()
	}
	if err := p.Drain(drainBudget); err != nil {
		if ctx.Err() == nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	if finalHB && ctx.Err() == nil {
		t := lastLogTime
		if t.IsZero() {
			t = clk.Now()
		}
		p.InjectHeartbeat(source, t.Add(24*time.Hour))
		clk.Sleep(100 * time.Millisecond)
		if err := p.Drain(time.Minute); err != nil {
			return err
		}
	}

	if o.ckptDir != "" {
		gen, err := p.Checkpoint()
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkpoint:", err)
		} else {
			fmt.Fprintf(os.Stderr, "checkpoint generation %d written to %s\n", gen, o.ckptDir)
		}
	}

	fmt.Fprintf(os.Stderr, "processed %d logs: %d anomalies (%d unparsed)\n",
		n, p.AnomalyCount(), p.UnparsedCount())

	if o.metrics {
		fmt.Fprintln(os.Stderr, "--- metrics ---")
		p.Metrics().Snapshot().WriteText(os.Stderr)
	}

	if o.stateDir != "" {
		if err := p.Store().SaveDir(o.stateDir); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "storage persisted to %s\n", o.stateDir)
	}

	if dashAddr != "" && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "stream done; dashboard still serving (Ctrl-C to exit)")
		<-ctx.Done()
	}
	if ctx.Err() != nil {
		// Orderly shutdown: note it in the black box, drain the HTTP
		// server, then flush the recorder so the last events of the
		// incident land on stderr.
		ops.Events.Record(obs.EventShutdown, "loglens", "signal received, draining", 0)
		drainServer(httpSrv)
		fmt.Fprintln(os.Stderr, "--- flight recorder ---")
		if _, err := ops.Events.WriteTo(os.Stderr); err != nil {
			return err
		}
	} else {
		drainServer(httpSrv)
	}
	return writeTrace(o.traceOut, ops)
}

// drainServer shuts the dashboard server down gracefully, bounding the
// in-flight-request drain at five seconds.
func drainServer(srv *http.Server) {
	if srv == nil {
		return
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "dashboard shutdown:", err)
	}
}

// writeTrace exports the retained span window as Chrome trace JSON.
func writeTrace(path string, ops *obs.Ops) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ops.Spans.WriteChromeTrace(f, time.Time{}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace written to %s\n", path)
	return nil
}

func readLogs(path, source string, clk clock.Clock) ([]logtypes.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []logtypes.Log
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	seq := uint64(0)
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" {
			continue
		}
		seq++
		out = append(out, logtypes.Log{Source: source, Seq: seq, Arrival: clk.Now(), Raw: line})
	}
	return out, scanner.Err()
}
