package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeCorpus(t *testing.T, dir string) (trainPath, testPath string) {
	t.Helper()
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	var train, stream []byte
	for i := 0; i < 150; i++ {
		t0 := base.Add(time.Duration(i*10) * time.Second)
		id := fmt.Sprintf("ev-%04d", i)
		train = append(train, []byte(fmt.Sprintf("%s task %s start prio %d\n", t0.Format("2006/01/02 15:04:05.000"), id, i%5))...)
		train = append(train, []byte(fmt.Sprintf("%s task %s done code %d\n", t0.Add(2*time.Second).Format("2006/01/02 15:04:05.000"), id, i%3))...)
	}
	tt := base.Add(time.Hour)
	stream = append(stream, []byte(fmt.Sprintf("%s task ok-1 start prio 1\n", tt.Format("2006/01/02 15:04:05.000")))...)
	stream = append(stream, []byte(fmt.Sprintf("%s task ok-1 done code 0\n", tt.Add(2*time.Second).Format("2006/01/02 15:04:05.000")))...)
	stream = append(stream, []byte(fmt.Sprintf("%s task bad-1 done code 0\n", tt.Add(3*time.Second).Format("2006/01/02 15:04:05.000")))...)
	stream = append(stream, []byte("garbage line\n")...)

	trainPath = filepath.Join(dir, "train.log")
	testPath = filepath.Join(dir, "stream.log")
	os.WriteFile(trainPath, train, 0o644)
	os.WriteFile(testPath, stream, 0o644)
	return
}

func TestRunTrainAndStream(t *testing.T) {
	dir := t.TempDir()
	trainPath, streamPath := writeCorpus(t, dir)
	modelPath := filepath.Join(dir, "model.json")
	stateDir := filepath.Join(dir, "state")

	o := options{
		trainPath:  trainPath,
		streamPath: streamPath,
		source:     "tasks",
		hbInterval: 0, // deterministic
		finalHB:    true,
		quiet:      true,
		saveModel:  modelPath,
		stateDir:   stateDir,
		metrics:    true,
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Errorf("model not saved: %v", err)
	}
	if _, err := os.Stat(filepath.Join(stateDir, "anomalies.index.json")); err != nil {
		t.Errorf("state not persisted: %v", err)
	}

	// Second run: load the saved model and restore the state dir.
	o2 := options{
		loadModel:  modelPath,
		streamPath: streamPath,
		source:     "tasks",
		hbInterval: 0,
		quiet:      true,
		stateDir:   stateDir,
	}
	if err := run(o2); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run(options{streamPath: "-"}); err == nil {
		t.Error("missing -train/-load-model must fail")
	}
	if err := run(options{trainPath: "x"}); err == nil {
		t.Error("missing -stream must fail")
	}
	if err := run(options{trainPath: "/nope/missing", streamPath: "-"}); err == nil {
		t.Error("unreadable train file must fail")
	}
}
