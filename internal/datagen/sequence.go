package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// seqType describes one event type of a sequence dataset: its step
// templates, which step may repeat, and the gap distribution between
// steps. Step templates take (id, timestamp) and render one line; variable
// slots must never be pure-word values, so value variation does not split
// patterns.
type seqType struct {
	label      string
	idPrefix   string
	steps      []func(rng *rand.Rand, id string, t time.Time) string
	repeatStep int // index that may occur twice in normal traces (-1 = none)
	minGap     int // seconds
	maxGap     int // seconds
}

// timedLine is a rendered log line with its embedded timestamp, for global
// time-ordering before emission.
type timedLine struct {
	t    time.Time
	line string
}

// anomalyKind enumerates the injectable violations.
type anomalyKind int

const (
	anomNone anomalyKind = iota
	anomMissingIntermediate
	anomOccurrence
	anomDurationSlow
	anomDurationFast
	anomMissingBegin
	anomMissingEnd
)

// emitTrace renders one event trace. gapsOverride, when non-nil, fixes the
// per-step gaps (seconds).
func (et *seqType) emitTrace(rng *rand.Rand, id string, start time.Time, kind anomalyKind, repeats int) []timedLine {
	// Build the step index sequence.
	var seq []int
	for i := range et.steps {
		seq = append(seq, i)
		if i == et.repeatStep {
			for r := 1; r < repeats; r++ {
				seq = append(seq, i)
			}
		}
	}
	switch kind {
	case anomMissingIntermediate:
		// Drop one required middle step.
		mid := len(et.steps) / 2
		var trimmed []int
		for _, s := range seq {
			if s != mid || mid == 0 || mid == len(et.steps)-1 {
				trimmed = append(trimmed, s)
			}
		}
		seq = trimmed
	case anomOccurrence:
		// The repeating step occurs far beyond the learned max.
		step := et.repeatStep
		if step < 0 {
			step = len(et.steps) / 2
		}
		var burst []int
		for _, s := range seq {
			burst = append(burst, s)
			if s == step {
				for r := 0; r < 4; r++ {
					burst = append(burst, s)
				}
			}
		}
		seq = dedupeRuns(burst, step, 5)
	case anomMissingBegin:
		seq = seq[1:]
	case anomMissingEnd:
		seq = seq[:len(seq)-1]
	}

	// Gap schedule.
	gap := func() time.Duration {
		return time.Duration(et.minGap+rng.Intn(et.maxGap-et.minGap+1)) * time.Second
	}
	switch kind {
	case anomDurationSlow:
		// Stretch every gap to 2x the normal maximum: total duration
		// far above the learned max yet inside the expiry window.
		gap = func() time.Duration { return time.Duration(et.maxGap*2) * time.Second }
	case anomDurationFast:
		gap = func() time.Duration { return 0 }
	case anomMissingIntermediate:
		// Keep the duration unquestionably normal so the missing
		// state is the only violation.
		mid := time.Duration(et.minGap+1) * time.Second
		gap = func() time.Duration { return mid }
	case anomOccurrence:
		g := time.Duration(et.minGap) * time.Second
		gap = func() time.Duration { return g }
	}

	out := make([]timedLine, 0, len(seq))
	t := start
	for i, s := range seq {
		if i > 0 {
			t = t.Add(gap())
		}
		out = append(out, timedLine{t: t, line: et.steps[s](rng, id, t)})
	}
	return out
}

// dedupeRuns caps runs of step in seq at n occurrences total.
func dedupeRuns(seq []int, step, n int) []int {
	count := 0
	var out []int
	for _, s := range seq {
		if s == step {
			count++
			if count > n {
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// boundaryTraces emits deterministic traces pinning the learned min/max
// statistics: all-min gaps without repeats, and all-max gaps with the
// normal maximum repeats.
func (et *seqType) boundaryTraces(rng *rand.Rand, idSeq *int, start time.Time) []timedLine {
	var out []timedLine
	for r := 0; r < 20; r++ {
		// All-min, no repeat.
		id := fmt.Sprintf("%s%06d", et.idPrefix, *idSeq)
		*idSeq++
		t := start.Add(time.Duration(r*40) * time.Second)
		seq := make([]int, len(et.steps))
		for i := range seq {
			seq[i] = i
		}
		tt := t
		for i, s := range seq {
			if i > 0 {
				tt = tt.Add(time.Duration(et.minGap) * time.Second)
			}
			out = append(out, timedLine{t: tt, line: et.steps[s](rng, id, tt)})
		}
		// All-max, with repeat (when the type has one).
		id = fmt.Sprintf("%s%06d", et.idPrefix, *idSeq)
		*idSeq++
		t = start.Add(time.Duration(r*40+20) * time.Second)
		var rseq []int
		for i := range et.steps {
			rseq = append(rseq, i)
			if i == et.repeatStep {
				rseq = append(rseq, i)
			}
		}
		tt = t
		for i, s := range rseq {
			if i > 0 {
				tt = tt.Add(time.Duration(et.maxGap) * time.Second)
			}
			out = append(out, timedLine{t: tt, line: et.steps[s](rng, id, tt)})
		}
	}
	return out
}

// seqDataset renders a full sequence dataset: training (normal traces plus
// boundary traces) and testing (normal traces plus the injected anomaly
// schedule), both padded with filler lines to the exact target sizes.
type anomalySpec struct {
	typeIdx int
	kind    anomalyKind
}

func buildSequenceCorpus(name string, types []*seqType, trainLines, testLines int, anomalies []anomalySpec, filler func(rng *rand.Rand, t time.Time) string, base time.Time, seed int64) Corpus {
	rng := rand.New(rand.NewSource(seed))
	idSeq := 1

	truth := &SequenceTruth{
		ByType:          make(map[string]TypeTruth),
		AnomalousEvents: make(map[string]bool),
	}

	// Reserve ~3% of each phase for filler lines, so the filler pattern
	// is always present in both phases (otherwise test fillers would
	// surface as spurious unparsed-log anomalies).
	trainTarget := trainLines - trainLines/33
	testTarget := testLines - testLines/33

	// Training: boundary traces then random normal traces.
	var train []timedLine
	for _, et := range types {
		train = append(train, et.boundaryTraces(rng, &idSeq, base)...)
	}
	cursor := base.Add(20 * time.Minute)
	for len(train) < trainTarget-1 {
		et := types[rng.Intn(len(types))]
		id := fmt.Sprintf("%s%06d", et.idPrefix, idSeq)
		idSeq++
		repeats := 1
		if et.repeatStep >= 0 && rng.Intn(2) == 0 {
			repeats = 2
		}
		tr := et.emitTrace(rng, id, cursor, anomNone, repeats)
		if len(train)+len(tr) > trainTarget {
			break
		}
		train = append(train, tr...)
		cursor = cursor.Add(time.Duration(1+rng.Intn(3)) * time.Second)
	}
	train = padAndSort(train, trainLines, filler, rng)

	// Testing: the anomalous traces are generated first (they are
	// short), then normal traces fill the remaining budget, and the two
	// streams interleave by timestamp.
	testBase := base.Add(24 * time.Hour)
	var test []timedLine

	// Anomalous traces, spread evenly across the test span.
	span := time.Duration(testLines/4) * time.Second
	for i, spec := range anomalies {
		et := types[spec.typeIdx]
		id := fmt.Sprintf("%s%06d", et.idPrefix, idSeq)
		idSeq++
		start := testBase.Add(span * time.Duration(i+1) / time.Duration(len(anomalies)+1))
		tr := et.emitTrace(rng, id, start, spec.kind, 1)
		test = append(test, tr...)
		truth.AnomalousEvents[id] = true
		tt := truth.ByType[et.label]
		tt.Anomalies++
		if spec.kind == anomMissingEnd {
			tt.MissingEnd++
			truth.MissingEnd++
		}
		truth.ByType[et.label] = tt
		truth.TotalAnomalies++
	}

	// Normal traces fill the rest of the budget.
	probes := make(map[string]string)
	cursor = testBase
	for {
		et := types[rng.Intn(len(types))]
		id := fmt.Sprintf("%s%06d", et.idPrefix, idSeq)
		idSeq++
		repeats := 1
		if et.repeatStep >= 0 && rng.Intn(2) == 0 {
			repeats = 2
		}
		tr := et.emitTrace(rng, id, cursor, anomNone, repeats)
		if len(test)+len(tr) > testTarget {
			break
		}
		test = append(test, tr...)
		if probes[et.label] == "" {
			probes[et.label] = tr[0].line
		}
		cursor = cursor.Add(time.Duration(1+rng.Intn(3)) * time.Second)
		if cursor.After(testBase.Add(span)) {
			cursor = testBase.Add(time.Duration(rng.Int63n(int64(span))))
		}
	}
	test = padAndSort(test, testLines, filler, rng)

	for _, et := range types {
		tt := truth.ByType[et.label]
		tt.ProbeLine = probes[et.label]
		if tt.ProbeLine == "" {
			// No normal trace of this type fit the budget: render a
			// detached probe (never added to the corpus).
			id := fmt.Sprintf("%sprobe", et.idPrefix)
			tt.ProbeLine = et.steps[0](rng, id, testBase)
		}
		truth.ByType[et.label] = tt
	}
	if len(test) > 0 {
		truth.LastLogTime = maxTime(test)
	}

	return Corpus{
		Name:             name,
		Train:            lines(train),
		Test:             lines(test),
		ExpectedPatterns: totalPatterns(types) + 1, // +1 for the filler pattern
		Truth:            truth,
	}
}

func totalPatterns(types []*seqType) int {
	n := 0
	for _, et := range types {
		n += len(et.steps)
	}
	return n
}

// padAndSort fills the line budget with filler lines woven through the
// time span, then sorts everything by timestamp (stable: emission order
// breaks ties).
func padAndSort(ls []timedLine, target int, filler func(rng *rand.Rand, t time.Time) string, rng *rand.Rand) []timedLine {
	if len(ls) == 0 {
		ls = append(ls, timedLine{t: time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)})
		ls = ls[:0]
	}
	span := maxTime(ls).Sub(minTime(ls))
	start := minTime(ls)
	for len(ls) < target {
		off := time.Duration(rng.Int63n(int64(span) + 1))
		t := start.Add(off)
		ls = append(ls, timedLine{t: t, line: filler(rng, t)})
	}
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].t.Before(ls[j].t) })
	return ls
}

func minTime(ls []timedLine) time.Time {
	m := ls[0].t
	for _, l := range ls {
		if l.t.Before(m) {
			m = l.t
		}
	}
	return m
}

func maxTime(ls []timedLine) time.Time {
	m := ls[0].t
	for _, l := range ls {
		if l.t.After(m) {
			m = l.t
		}
	}
	return m
}

func lines(ls []timedLine) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = l.line
	}
	return out
}
