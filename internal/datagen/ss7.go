package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// SS7Truth extends the sequence truth with the expected burst structure of
// Figure 6.
type SS7Truth struct {
	// Anomalies is the expected anomaly count (994 in §VII-B).
	Anomalies int
	// Clusters is the number of attack bursts (4 in Figure 6).
	Clusters int
	// ClusterStarts are the burst start times.
	ClusterStarts []time.Time
	// TrainEnd separates the 2h training window from the 1h detection
	// window.
	TrainEnd time.Time
	// LastLogTime is the latest test timestamp (for the final
	// heartbeat).
	LastLogTime time.Time
}

// SS7Corpus is the Signaling System No. 7 security dataset of §VII-B: the
// full corpus spans 3 hours (2016/05/09 10:00–13:00), the first two hours
// are training, and the final hour contains spoofing attacks — sequences
// following "InvokePurgeMs -> InvokeSendAuthenticationInfo" without the
// terminating "InvokeUpdateLocation", arriving in 4 intensive bursts
// totalling exactly 994 anomalous sequences.
type SS7Corpus struct {
	Train []string
	Test  []string
	Truth SS7Truth
}

// SS7 generates the dataset. scale in (0,1] shrinks the normal-traffic
// volume (the paper's corpus is 2.7M logs); the 994 attack sequences and
// 4 bursts are generated at full count regardless of scale, since they are
// the case study's findings.
func SS7(scale float64, seed int64) SS7Corpus {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	start := time.Date(2016, 5, 9, 10, 0, 0, 0, time.UTC)
	trainEnd := start.Add(2 * time.Hour)
	testEnd := start.Add(3 * time.Hour)

	const fullLogs = 2_700_000
	total := int(float64(fullLogs) * scale)
	trainLogs := total * 2 / 3
	testLogs := total - trainLogs

	vlrs := ipPool(12)
	imsi := func(n int) string { return fmt.Sprintf("4046855%08d", n) }
	render := func(op string, id string, t time.Time, rng *rand.Rand) string {
		return fmt.Sprintf("%s SS7 %s imsi %s vlr %s tcap %d", ts(t), op, id, pick(rng, vlrs), rng.Intn(1<<20))
	}

	// Normal sequences: PurgeMs -> SendAuthenticationInfo ->
	// UpdateLocation, gaps of 1-3 seconds.
	emitNormal := func(n int, lo, hi time.Time, idBase int) []timedLine {
		span := hi.Sub(lo)
		var out []timedLine
		seqLines := 3
		count := n / seqLines
		for i := 0; i < count; i++ {
			id := imsi(idBase + i)
			t := lo.Add(time.Duration(rng.Int63n(int64(span) - int64(10*time.Second))))
			out = append(out, timedLine{t, render("InvokePurgeMs", id, t, rng)})
			t = t.Add(time.Duration(1+rng.Intn(3)) * time.Second)
			out = append(out, timedLine{t, render("InvokeSendAuthenticationInfo", id, t, rng)})
			t = t.Add(time.Duration(1+rng.Intn(3)) * time.Second)
			out = append(out, timedLine{t, render("InvokeUpdateLocation", id, t, rng)})
		}
		return out
	}

	train := emitNormal(trainLogs, start, trainEnd, 0)
	sort.SliceStable(train, func(i, j int) bool { return train[i].t.Before(train[j].t) })

	// Test: normal background plus 4 attack bursts. Attack sequences
	// miss the final InvokeUpdateLocation — the spoofing signature of
	// Figure 7.
	attackCounts := []int{250, 250, 250, 244} // 994 total
	burstStarts := []time.Time{
		trainEnd.Add(8 * time.Minute),
		trainEnd.Add(22 * time.Minute),
		trainEnd.Add(37 * time.Minute),
		trainEnd.Add(51 * time.Minute),
	}
	attackLines := 0
	for _, c := range attackCounts {
		attackLines += c * 2
	}
	normalTest := testLogs - attackLines
	if normalTest < 0 {
		normalTest = 0
	}
	test := emitNormal(normalTest, trainEnd, testEnd, 10_000_000)

	idBase := 20_000_000
	for b, count := range attackCounts {
		for i := 0; i < count; i++ {
			id := imsi(idBase + b*10000 + i)
			// Each burst spans ~90 seconds: intensive spoofing.
			t := burstStarts[b].Add(time.Duration(rng.Int63n(int64(90 * time.Second))))
			test = append(test, timedLine{t, render("InvokePurgeMs", id, t, rng)})
			t = t.Add(time.Duration(1+rng.Intn(2)) * time.Second)
			test = append(test, timedLine{t, render("InvokeSendAuthenticationInfo", id, t, rng)})
		}
	}
	sort.SliceStable(test, func(i, j int) bool { return test[i].t.Before(test[j].t) })

	return SS7Corpus{
		Train: lines(train),
		Test:  lines(test),
		Truth: SS7Truth{
			Anomalies:     994,
			Clusters:      4,
			ClusterStarts: burstStarts,
			TrainEnd:      trainEnd,
			LastLogTime:   test[len(test)-1].t,
		},
	}
}
