// Package datagen generates the evaluation corpora of §VI–§VII. The
// original datasets (Table III) are proprietary or unavailable, so each
// generator reproduces the published corpus *statistics* that the
// experiments depend on: log counts, pattern-set cardinality, event
// structure, timestamp-format mix, and — for the sequence datasets — the
// exact ground-truth anomaly counts (D1: 21, D2: 13, SS7: 994).
package datagen

import (
	"fmt"
	"math/rand"
	"time"
)

// Corpus is one generated dataset.
type Corpus struct {
	// Name is the dataset label (D1..D6, ss7, customapp).
	Name string
	// Train and Test are the raw log lines of each phase. Datasets used
	// only for parsing benchmarks put the same lines in both (the
	// paper's train==test sanity methodology for Table IV).
	Train []string
	Test  []string
	// ExpectedPatterns is the number of GROK patterns discovery should
	// find (Table IV's "Total Patterns" column).
	ExpectedPatterns int
	// Truth carries sequence-anomaly ground truth (nil for parsing-only
	// corpora).
	Truth *SequenceTruth
}

// SequenceTruth is the injected ground truth of a sequence dataset.
type SequenceTruth struct {
	// TotalAnomalies is the number of anomalous event sequences
	// (Figure 4's ground truth).
	TotalAnomalies int
	// MissingEnd is how many of them never reach their end state and
	// are only detectable with heartbeats (Figure 5's gap).
	MissingEnd int
	// ByType records per-event-type truth, keyed by type label.
	ByType map[string]TypeTruth
	// AnomalousEvents holds the event IDs of every injected anomalous
	// trace, so harnesses can verify detections event by event
	// (precision as well as recall).
	AnomalousEvents map[string]bool
	// LastLogTime is the latest embedded timestamp in the test stream;
	// harnesses inject the final heartbeat after it.
	LastLogTime time.Time
}

// TypeTruth is the ground truth of one event type.
type TypeTruth struct {
	// Anomalies is the number of anomalous sequences of this type.
	Anomalies int
	// MissingEnd is how many of them are missing-end anomalies.
	MissingEnd int
	// ProbeLine is a sample line of this type's begin state, used by
	// harnesses to locate the corresponding learned automaton (parse
	// the probe, look up the automaton containing its pattern).
	ProbeLine string
}

// ts renders a timestamp in the unified DATETIME format the generators
// emit.
func ts(t time.Time) string {
	return t.Format("2006/01/02 15:04:05.000")
}

// alphaWord encodes n as a lower-case letter string ("a".."z", "ba", ...),
// producing WORD-typed tokens that are unique per n. Distinct WORD
// literals are the strongest template separators for pattern discovery.
func alphaWord(n int) string {
	if n == 0 {
		return "a"
	}
	var buf []byte
	for n > 0 {
		buf = append(buf, byte('a'+n%26))
		n /= 26
	}
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return string(buf)
}

// pick returns a pseudo-random element of pool.
func pick[T any](rng *rand.Rand, pool []T) T {
	return pool[rng.Intn(len(pool))]
}

// ipPool builds n distinct IPv4 addresses.
func ipPool(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.%d.%d.%d", (i/250)%250, i%250, i%200+1)
	}
	return out
}
