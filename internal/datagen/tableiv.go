package datagen

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// TableIVSpec describes one of the parsing datasets of Table III/IV.
type TableIVSpec struct {
	// Name is the dataset label.
	Name string
	// Patterns is the template-population size (Table IV "Total
	// Patterns").
	Patterns int
	// Logs is the corpus size (Table III "Total logs").
	Logs int
}

// TableIVSpecs lists the four parsing datasets with the published corpus
// statistics: D3 storage server (301 patterns, 792,176 logs), D4 OpenStack
// (3,234 / 400,000), D5 PCAP (243 / 246,500), D6 network (2,012 /
// 1,000,000).
var TableIVSpecs = []TableIVSpec{
	{Name: "D3", Patterns: 301, Logs: 792176},
	{Name: "D4", Patterns: 3234, Logs: 400000},
	{Name: "D5", Patterns: 243, Logs: 246500},
	{Name: "D6", Patterns: 2012, Logs: 1000000},
}

// TableIVCorpus generates one parsing dataset: a population of distinct
// log templates emitted round-robin (so every template occurs) with
// variable-slot values re-drawn per line. Train and Test are the same
// lines — the paper's sanity methodology: "a correct parser does not
// produce any anomalies for these datasets". scale in (0,1] shrinks the
// log count for quick runs; the template population always stays at full
// size, since Table IV's effect is driven by pattern-set cardinality.
func TableIVCorpus(spec TableIVSpec, scale float64, seed int64) Corpus {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := int(float64(spec.Logs) * scale)
	if n < spec.Patterns {
		n = spec.Patterns
	}
	rng := rand.New(rand.NewSource(seed))
	templates := makeTemplates(spec.Patterns, rng)

	base := time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC)
	out := make([]string, n)
	for i := range out {
		tpl := templates[i%len(templates)]
		t := base.Add(time.Duration(i) * 37 * time.Millisecond)
		out[i] = tpl.render(rng, t)
	}
	return Corpus{
		Name:             spec.Name,
		Train:            out,
		Test:             out,
		ExpectedPatterns: spec.Patterns,
	}
}

// template is one log shape: literal words interleaved with typed slots.
type template struct {
	parts []part
}

type part struct {
	literal string // non-empty for literals
	slot    slotKind
}

type slotKind int

const (
	slotNone slotKind = iota
	slotTimestamp
	slotIP
	slotNumber
	slotHexID
)

func (tpl template) render(rng *rand.Rand, t time.Time) string {
	var b strings.Builder
	for i, p := range tpl.parts {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch p.slot {
		case slotTimestamp:
			b.WriteString(ts(t))
		case slotIP:
			fmt.Fprintf(&b, "10.%d.%d.%d", rng.Intn(200), rng.Intn(250), rng.Intn(250)+1)
		case slotNumber:
			fmt.Fprintf(&b, "%d", rng.Intn(1_000_000))
		case slotHexID:
			fmt.Fprintf(&b, "x%08x", rng.Uint32())
		default:
			b.WriteString(p.literal)
		}
	}
	return b.String()
}

// makeTemplates builds k structurally distinct templates. Every template
// carries two unique WORD literals (alpha-encoded indices), which the
// clustering distance treats as strong separators, plus a varying number
// of shared structural literals and typed slots — so same-template lines
// merge and distinct templates never do.
func makeTemplates(k int, rng *rand.Rand) []template {
	verbs := []string{"read", "write", "open", "close", "sync", "flush", "bind", "route", "drop", "accept"}
	nouns := []string{"block", "page", "conn", "sess", "pkt", "vol", "req", "txn", "buf", "node"}
	out := make([]template, k)
	for i := range out {
		var parts []part
		parts = append(parts, part{slot: slotTimestamp})
		parts = append(parts, part{slot: slotIP})
		// The two unique separator words.
		parts = append(parts, part{literal: "svc" + alphaWord(i)})
		parts = append(parts, part{literal: verbs[i%len(verbs)] + alphaWord(i*7+13)})
		// Shared structure with typed slots; the mix and count vary by
		// template index so token counts differ too.
		extra := 2 + i%5
		for j := 0; j < extra; j++ {
			parts = append(parts, part{literal: nouns[(i+j)%len(nouns)]})
			switch (i + j) % 3 {
			case 0:
				parts = append(parts, part{slot: slotNumber})
			case 1:
				parts = append(parts, part{slot: slotHexID})
			default:
				parts = append(parts, part{slot: slotIP})
			}
		}
		parts = append(parts, part{literal: "rc"})
		parts = append(parts, part{slot: slotNumber})
		out[i] = template{parts: parts}
	}
	return out
}
