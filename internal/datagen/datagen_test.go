package datagen

import (
	"strings"
	"testing"
	"time"

	"loglens/internal/logtypes"
	"loglens/internal/modelmgr"
)

func TestAlphaWord(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		w := alphaWord(i)
		if w == "" {
			t.Fatalf("alphaWord(%d) empty", i)
		}
		for j := 0; j < len(w); j++ {
			if w[j] < 'a' || w[j] > 'z' {
				t.Fatalf("alphaWord(%d) = %q not a pure word", i, w)
			}
		}
		if seen[w] {
			t.Fatalf("alphaWord(%d) = %q repeats", i, w)
		}
		seen[w] = true
	}
}

func TestD1Shape(t *testing.T) {
	c := D1(42)
	if len(c.Train) != 16000 || len(c.Test) != 16000 {
		t.Fatalf("sizes = %d/%d, want 16000/16000 (Table III)", len(c.Train), len(c.Test))
	}
	if c.Truth.TotalAnomalies != 21 {
		t.Errorf("ground truth = %d, want 21 (Figure 4)", c.Truth.TotalAnomalies)
	}
	if c.Truth.MissingEnd != 1 {
		t.Errorf("missing-end = %d, want 1 (Figure 5: 20 vs 21)", c.Truth.MissingEnd)
	}
	if got := c.Truth.ByType["job"].Anomalies; got != 13 {
		t.Errorf("job anomalies = %d, want 13 (Table V)", got)
	}
	if got := c.Truth.ByType["volume"].Anomalies; got != 8 {
		t.Errorf("volume anomalies = %d, want 8 (Table V)", got)
	}
	for label, tt := range c.Truth.ByType {
		if tt.ProbeLine == "" {
			t.Errorf("type %s has no probe line", label)
		}
	}
	if c.Truth.LastLogTime.IsZero() {
		t.Error("LastLogTime unset")
	}
}

func TestD2Shape(t *testing.T) {
	c := D2(42)
	if len(c.Train) != 18000 || len(c.Test) != 18000 {
		t.Fatalf("sizes = %d/%d, want 18000/18000 (Table III)", len(c.Train), len(c.Test))
	}
	if c.Truth.TotalAnomalies != 13 {
		t.Errorf("ground truth = %d, want 13 (Figure 4)", c.Truth.TotalAnomalies)
	}
	if c.Truth.MissingEnd != 3 {
		t.Errorf("missing-end = %d, want 3 (Figure 5: 10 vs 13)", c.Truth.MissingEnd)
	}
	if got := c.Truth.ByType["backup"].Anomalies; got != 4 {
		t.Errorf("backup anomalies = %d, want 4 (Table V: 13 -> 9)", got)
	}
}

func TestTimeOrdering(t *testing.T) {
	for _, c := range []Corpus{D1(7), D2(7)} {
		checkOrdered(t, c.Name+"/train", c.Train)
		checkOrdered(t, c.Name+"/test", c.Test)
	}
}

func checkOrdered(t *testing.T, name string, lines []string) {
	t.Helper()
	var prev time.Time
	for i, line := range lines {
		f := strings.Fields(line)
		if len(f) < 2 {
			t.Fatalf("%s: line %d malformed: %q", name, i, line)
		}
		stamp, err := time.Parse("2006/01/02 15:04:05.000", f[0]+" "+f[1])
		if err != nil {
			t.Fatalf("%s: line %d bad timestamp: %q", name, i, line)
		}
		if stamp.Before(prev) {
			t.Fatalf("%s: line %d out of order", name, i)
		}
		prev = stamp
	}
}

// TestD1ModelDiscovery runs the real model builder over D1 training data
// and checks the discovered structures match the corpus design: 6 patterns
// (3 job steps, 2 volume steps, 1 filler) and 2 automata.
func TestD1ModelDiscovery(t *testing.T) {
	c := D1(1)
	logs := toLogs(c.Train)
	builder := modelmgr.NewBuilder(modelmgr.BuilderConfig{})
	m, report, err := builder.Build("d1", logs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Patterns != c.ExpectedPatterns {
		for _, p := range m.Patterns.Patterns() {
			t.Logf("pattern %d: %s", p.ID, p.String())
		}
		t.Fatalf("discovered %d patterns, want %d", report.Patterns, c.ExpectedPatterns)
	}
	if report.UnparsedTraining != 0 {
		t.Errorf("unparsed training logs = %d, want 0", report.UnparsedTraining)
	}
	if report.Automata != 2 {
		for _, a := range m.Sequence.Automata {
			t.Logf("automaton %d key %s traces %d", a.ID, a.Key, a.Traces)
		}
		t.Fatalf("automata = %d, want 2 (Table V)", report.Automata)
	}
}

func TestD2ModelDiscovery(t *testing.T) {
	c := D2(1)
	builder := modelmgr.NewBuilder(modelmgr.BuilderConfig{})
	m, report, err := builder.Build("d2", toLogs(c.Train))
	if err != nil {
		t.Fatal(err)
	}
	if report.Patterns != c.ExpectedPatterns {
		for _, p := range m.Patterns.Patterns() {
			t.Logf("pattern %d: %s", p.ID, p.String())
		}
		t.Fatalf("discovered %d patterns, want %d", report.Patterns, c.ExpectedPatterns)
	}
	if report.Automata != 3 {
		for _, a := range m.Sequence.Automata {
			t.Logf("automaton %d key %s traces %d", a.ID, a.Key, a.Traces)
		}
		t.Fatalf("automata = %d, want 3 (Table V)", report.Automata)
	}
}

func TestTableIVCorpusShape(t *testing.T) {
	spec := TableIVSpec{Name: "mini", Patterns: 40, Logs: 4000}
	c := TableIVCorpus(spec, 1, 9)
	if len(c.Train) != 4000 {
		t.Fatalf("logs = %d", len(c.Train))
	}
	// Every template occurs.
	distinct := map[string]bool{}
	for _, line := range c.Train {
		f := strings.Fields(line)
		// Token 3 is the unique svc word (after the 2-token
		// timestamp).
		distinct[f[3]] = true
	}
	if len(distinct) != 40 {
		t.Fatalf("distinct templates seen = %d, want 40", len(distinct))
	}
}

// TestTableIVDiscoveryExact verifies pattern discovery recovers exactly
// the template population on a scaled-down corpus.
func TestTableIVDiscoveryExact(t *testing.T) {
	spec := TableIVSpec{Name: "mini", Patterns: 120, Logs: 6000}
	c := TableIVCorpus(spec, 1, 3)
	builder := modelmgr.NewBuilder(modelmgr.BuilderConfig{SkipSequence: true})
	_, report, err := builder.Build("mini", toLogs(c.Train))
	if err != nil {
		t.Fatal(err)
	}
	if report.Patterns != 120 {
		t.Fatalf("discovered %d patterns, want 120", report.Patterns)
	}
	if report.UnparsedTraining != 0 {
		t.Errorf("unparsed = %d", report.UnparsedTraining)
	}
}

func TestSS7Shape(t *testing.T) {
	c := SS7(0.01, 5)
	if c.Truth.Anomalies != 994 {
		t.Errorf("anomalies = %d, want 994", c.Truth.Anomalies)
	}
	if c.Truth.Clusters != 4 || len(c.Truth.ClusterStarts) != 4 {
		t.Errorf("clusters = %d", c.Truth.Clusters)
	}
	// Attack sequences: exactly 994 ids with 2 lines and no
	// InvokeUpdateLocation.
	byID := map[string][]string{}
	for _, line := range c.Test {
		f := strings.Fields(line)
		// f: date time SS7 <op> imsi <id> vlr ...
		byID[f[5]] = append(byID[f[5]], f[3])
	}
	attacks := 0
	for _, ops := range byID {
		hasEnd := false
		for _, op := range ops {
			if op == "InvokeUpdateLocation" {
				hasEnd = true
			}
		}
		if !hasEnd {
			attacks++
		}
	}
	if attacks != 994 {
		t.Errorf("attack sequences in corpus = %d, want 994", attacks)
	}
	checkOrdered(t, "ss7/test", c.Test)
}

func TestCustomAppShape(t *testing.T) {
	c := CustomApp(7340, 2)
	if len(c.Train) != 7340 {
		t.Fatalf("logs = %d", len(c.Train))
	}
	if c.ExpectedPatterns != 367 {
		t.Fatalf("expected patterns = %d", c.ExpectedPatterns)
	}
}

// TestCustomAppDiscoveryExact verifies the §VII-A claim shape: discovery
// yields exactly 367 patterns.
func TestCustomAppDiscoveryExact(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := CustomApp(3670, 2)
	builder := modelmgr.NewBuilder(modelmgr.BuilderConfig{SkipSequence: true})
	_, report, err := builder.Build("customapp", toLogs(c.Train))
	if err != nil {
		t.Fatal(err)
	}
	if report.Patterns != 367 {
		t.Fatalf("discovered %d patterns, want 367 (§VII-A)", report.Patterns)
	}
}

func toLogs(lines []string) []logtypes.Log {
	out := make([]logtypes.Log, len(lines))
	for i, line := range lines {
		out[i] = logtypes.Log{Source: "test", Seq: uint64(i + 1), Raw: line}
	}
	return out
}

func TestAnomalousEventIDsRecorded(t *testing.T) {
	for _, c := range []Corpus{D1(3), D2(3)} {
		if len(c.Truth.AnomalousEvents) != c.Truth.TotalAnomalies {
			t.Errorf("%s: %d anomalous IDs recorded, want %d",
				c.Name, len(c.Truth.AnomalousEvents), c.Truth.TotalAnomalies)
		}
		// Every recorded ID appears in the test stream.
		joined := strings.Join(c.Test, "\n")
		for id := range c.Truth.AnomalousEvents {
			if !strings.Contains(joined, id) {
				t.Errorf("%s: anomalous event %s missing from the stream", c.Name, id)
			}
		}
	}
}
