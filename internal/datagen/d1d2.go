package datagen

import (
	"fmt"
	"math/rand"
	"time"
)

// d1Base and d2Base anchor the embedded timestamps.
var (
	d1Base = time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	d2Base = time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)
)

// fillerLine renders the padding pattern shared by the sequence datasets:
// a health log that belongs to no event workflow.
func fillerLine(pool []string) func(rng *rand.Rand, t time.Time) string {
	return func(rng *rand.Rand, t time.Time) string {
		return fmt.Sprintf("%s %s sys health ok mem %d kb", ts(t), pick(rng, pool), 1000+rng.Intn(900000))
	}
}

// D1 generates the trace-log dataset of Table III: 16,000 training and
// 16,000 testing lines, two event types (job and volume workflows — two
// automata, as in Table V), and exactly 21 anomalous sequences in the test
// stream of which 1 is a missing-end anomaly (Figures 4 and 5: 21 vs 20).
//
// Per-type ground truth (Table V: deleting the volume automaton leaves
// 13): job = 13 anomalies (4 missing-intermediate, 4 occurrence, 4
// duration, 1 missing-end), volume = 8 (4 missing-begin, 4 duration).
func D1(seed int64) Corpus {
	ips := ipPool(6)
	job := &seqType{
		label:    "job",
		idPrefix: "jb-",
		steps: []func(rng *rand.Rand, id string, t time.Time) string{
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s job %s submitted queue q%d", ts(t), pick(rng, ips), id, rng.Intn(4)+1)
			},
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s job %s scheduled on host h%d", ts(t), pick(rng, ips), id, rng.Intn(40)+1)
			},
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s job %s completed rc %d", ts(t), pick(rng, ips), id, rng.Intn(3))
			},
		},
		repeatStep: 1,
		minGap:     1,
		maxGap:     3,
	}
	volume := &seqType{
		label:    "volume",
		idPrefix: "vl-",
		steps: []func(rng *rand.Rand, id string, t time.Time) string{
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s volume %s attach requested size %d gb", ts(t), pick(rng, ips), id, 8*(rng.Intn(32)+1))
			},
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s volume %s attach completed lun %d", ts(t), pick(rng, ips), id, rng.Intn(64))
			},
		},
		repeatStep: -1,
		minGap:     1,
		maxGap:     3,
	}

	anomalies := []anomalySpec{}
	for i := 0; i < 4; i++ {
		anomalies = append(anomalies,
			anomalySpec{0, anomMissingIntermediate},
			anomalySpec{0, anomOccurrence},
			anomalySpec{0, anomDurationSlow},
			anomalySpec{1, anomMissingBegin},
			anomalySpec{1, anomDurationSlow},
		)
	}
	anomalies = append(anomalies, anomalySpec{0, anomMissingEnd})

	return buildSequenceCorpus("D1", []*seqType{job, volume},
		16000, 16000, anomalies, fillerLine(ips), d1Base, seed)
}

// D2 generates the synthetic dataset of Table III: 18,000/18,000 lines,
// three event types (three automata, as in Table V), and exactly 13
// anomalous test sequences of which 3 are missing-end anomalies (Figures 4
// and 5: 13 vs 10).
//
// Per-type ground truth (Table V: deleting the backup automaton leaves 9):
// deploy = 5 (2 missing-end, 1 missing-intermediate, 1 occurrence, 1
// duration-fast), migrate = 4 (1 missing-end, 1 missing-intermediate, 1
// occurrence, 1 duration), backup = 4 (2 missing-begin, 2 duration).
func D2(seed int64) Corpus {
	ips := ipPool(5)
	deploy := &seqType{
		label:    "deploy",
		idPrefix: "dp-",
		steps: []func(rng *rand.Rand, id string, t time.Time) string{
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s deploy %s requested build b%d", ts(t), pick(rng, ips), id, rng.Intn(500)+1)
			},
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s deploy %s pushing image layer %d", ts(t), pick(rng, ips), id, rng.Intn(12)+1)
			},
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s deploy %s activated replicas %d", ts(t), pick(rng, ips), id, rng.Intn(8)+1)
			},
		},
		repeatStep: 1,
		minGap:     1,
		maxGap:     3,
	}
	migrate := &seqType{
		label:    "migrate",
		idPrefix: "mg-",
		steps: []func(rng *rand.Rand, id string, t time.Time) string{
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s migrate %s precopy started pages %d", ts(t), pick(rng, ips), id, rng.Intn(90000)+1000)
			},
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s migrate %s memory sync round %d", ts(t), pick(rng, ips), id, rng.Intn(9)+1)
			},
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s migrate %s switchover pause %d ms", ts(t), pick(rng, ips), id, rng.Intn(400)+20)
			},
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s migrate %s finished on node n%d", ts(t), pick(rng, ips), id, rng.Intn(30)+1)
			},
		},
		repeatStep: 1,
		minGap:     1,
		maxGap:     3,
	}
	backup := &seqType{
		label:    "backup",
		idPrefix: "bk-",
		steps: []func(rng *rand.Rand, id string, t time.Time) string{
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s backup %s snapshot taken bytes %d", ts(t), pick(rng, ips), id, rng.Intn(1<<28)+1024)
			},
			func(rng *rand.Rand, id string, t time.Time) string {
				return fmt.Sprintf("%s %s backup %s uploaded chunks %d", ts(t), pick(rng, ips), id, rng.Intn(2000)+1)
			},
		},
		repeatStep: -1,
		minGap:     1,
		maxGap:     3,
	}

	anomalies := []anomalySpec{
		{0, anomMissingEnd},
		{0, anomMissingEnd},
		{0, anomMissingIntermediate},
		{0, anomOccurrence},
		{0, anomDurationFast},
		{1, anomMissingEnd},
		{1, anomMissingIntermediate},
		{1, anomOccurrence},
		{1, anomDurationSlow},
		{2, anomMissingBegin},
		{2, anomMissingBegin},
		{2, anomDurationSlow},
		{2, anomDurationSlow},
	}

	return buildSequenceCorpus("D2", []*seqType{deploy, migrate, backup},
		18000, 18000, anomalies, fillerLine(ips), d2Base, seed)
}
