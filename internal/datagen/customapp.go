package datagen

import (
	"fmt"
	"math/rand"
)

// CustomAppPatterns is the pattern count the discovery run must produce
// for the §VII-A case study ("LogLens generated 367 patterns in 50
// seconds").
const CustomAppPatterns = 367

// CustomApp generates the custom-application SQL log corpus of §VII-A:
// machine-generated SQL statements in the application's logging wrapper
// format (Table VI), drawn from 367 distinct query templates. Each
// template differs from every other in at least three identifier words
// (function, column, and index names), as distinct generated queries do;
// within a template only GUIDs and numeric literals vary. Manually writing
// patterns for these logs took the paper's users one week; the case study
// measures unsupervised discovery time and pattern count.
func CustomApp(logs int, seed int64) Corpus {
	rng := rand.New(rand.NewSource(seed))

	tables := []string{
		"tblFormControl", "tblContent", "tblFormData", "tblFormInstance",
		"tblPerm", "tblMembership", "tblAudit", "tblUsers", "tblSession",
		"tblConfig", "tblWorkflow", "tblAttachment", "tblIndex", "tblQueue",
	}

	type sqlTemplate struct {
		fn    string // unique function-name word
		col   string // unique column-name word
		index string // unique index-name word
		table string
		shape int
	}
	templates := make([]sqlTemplate, CustomAppPatterns)
	for i := range templates {
		templates[i] = sqlTemplate{
			fn:    "Get" + alphaWord(i*3+7),
			col:   "col" + alphaWord(i*5+11),
			index: "ix" + alphaWord(i*7+13),
			table: tables[i%len(tables)],
			shape: i % 5,
		}
	}

	guid := func() string {
		return fmt.Sprintf("%08x-%04x-%04x-%04x-%012x",
			rng.Uint32(), rng.Intn(1<<16), rng.Intn(1<<16), rng.Intn(1<<16), rng.Int63n(1<<48))
	}

	out := make([]string, logs)
	for i := range out {
		tpl := templates[i%len(templates)]
		head := fmt.Sprintf("(0): %s ():2[25 21:%02d:%02d] SQL SELECT TABLE: %s WHERE:",
			tpl.fn, rng.Intn(60), rng.Intn(60), tpl.table)
		var where string
		switch tpl.shape {
		case 0:
			where = fmt.Sprintf("oFCID = '%s'", guid())
		case 1:
			where = fmt.Sprintf("oPID = '%s' AND oID IN ( '%s' )", guid(), guid())
		case 2:
			where = fmt.Sprintf("oFORMINSTID = '%s' AND nType != %d", guid(), rng.Intn(20))
		case 3:
			where = fmt.Sprintf("oGrantID = '%s' AND fRead = %d", guid(), rng.Intn(2))
		default:
			where = fmt.Sprintf("tValue > %d AND tValue < %d", rng.Intn(1000), 1000+rng.Intn(1000))
		}
		tail := fmt.Sprintf("AND %s != %d ORDER BY %s USE INDEX %s",
			tpl.col, rng.Intn(100), tpl.col, tpl.index)
		out[i] = head + " " + where + " " + tail
	}
	return Corpus{
		Name:             "customapp",
		Train:            out,
		Test:             out,
		ExpectedPatterns: CustomAppPatterns,
	}
}
