package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	c := New()
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("real Now = %v, way before %v", now, before)
	}
	if c.Since(before) < 0 {
		t.Error("real Since went negative")
	}
	timer := c.NewTimer(time.Millisecond)
	defer timer.Stop()
	select {
	case <-timer.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real timer never fired")
	}
	ticker := c.NewTicker(time.Millisecond)
	defer ticker.Stop()
	select {
	case <-ticker.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real ticker never fired")
	}
}

func TestFakeNowFrozenUntilAdvance(t *testing.T) {
	f := NewFake()
	start := f.Now()
	if !f.Now().Equal(start) {
		t.Fatal("fake time moved on its own")
	}
	f.Advance(time.Hour)
	if got := f.Now().Sub(start); got != time.Hour {
		t.Fatalf("advanced %v, want 1h", got)
	}
	if got := f.Since(start); got != time.Hour {
		t.Fatalf("Since = %v", got)
	}
}

func TestFakeTimerFiresAtDeadline(t *testing.T) {
	f := NewFake()
	timer := f.NewTimer(10 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("timer fired before its deadline")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("timer fired one second early")
	default:
	}
	f.Advance(time.Second)
	select {
	case at := <-timer.C():
		if got := at.Sub(f.Now()); got != 0 {
			t.Errorf("fired at %v, clock now %v", at, f.Now())
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestFakeTimersFireInDeadlineOrder(t *testing.T) {
	f := NewFake()
	start := f.Now()
	late := f.NewTimer(3 * time.Second)
	early := f.NewTimer(time.Second)
	mid := f.NewTimer(2 * time.Second)
	// One big Advance crosses all three deadlines; each channel receives
	// the clock reading at its own firing, so the timeline must be the
	// deadlines in order regardless of registration order.
	f.Advance(5 * time.Second)
	te, tm, tl := <-early.C(), <-mid.C(), <-late.C()
	if !te.Equal(start.Add(1*time.Second)) || !tm.Equal(start.Add(2*time.Second)) || !tl.Equal(start.Add(3*time.Second)) {
		t.Fatalf("fire times %v %v %v not the ordered deadlines", te, tm, tl)
	}
}

func TestFakeFiringTimesAreDeadlines(t *testing.T) {
	f := NewFake()
	start := f.Now()
	a := f.NewTimer(time.Second)
	b := f.NewTimer(2 * time.Second)
	f.Advance(10 * time.Second)
	ta := <-a.C()
	tb := <-b.C()
	if !ta.Equal(start.Add(time.Second)) {
		t.Errorf("a fired at %v, want deadline %v", ta, start.Add(time.Second))
	}
	if !tb.Equal(start.Add(2 * time.Second)) {
		t.Errorf("b fired at %v, want deadline %v", tb, start.Add(2*time.Second))
	}
	if !f.Now().Equal(start.Add(10 * time.Second)) {
		t.Errorf("clock ended at %v", f.Now())
	}
}

func TestFakeTimerStopAndReset(t *testing.T) {
	f := NewFake()
	timer := f.NewTimer(time.Second)
	if !timer.Stop() {
		t.Fatal("stop of a pending timer must report true")
	}
	if timer.Stop() {
		t.Fatal("second stop must report false")
	}
	f.Advance(2 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("stopped timer fired")
	default:
	}
	timer.Reset(time.Second)
	f.Advance(time.Second)
	select {
	case <-timer.C():
	default:
		t.Fatal("reset timer did not fire")
	}
}

func TestFakeTickerRearms(t *testing.T) {
	f := NewFake()
	ticker := f.NewTicker(time.Second)
	defer ticker.Stop()
	for i := 0; i < 5; i++ {
		f.Advance(time.Second)
		select {
		case <-ticker.C():
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
	// A large jump delivers what the buffer holds and drops the rest,
	// like time.Ticker.
	f.Advance(10 * time.Second)
	n := 0
	for {
		select {
		case <-ticker.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("buffered ticks = %d, want 1 (buffer size)", n)
	}
}

func TestFakeAfterAndSleep(t *testing.T) {
	f := NewFake()
	ch := f.After(time.Minute)
	done := make(chan struct{})
	go func() {
		f.Sleep(30 * time.Second)
		close(done)
	}()
	// Both the After and the Sleep register as waiters.
	f.BlockUntil(2)
	f.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep never woke")
	}
	select {
	case <-ch:
	default:
		t.Fatal("After never fired")
	}
	// Zero and negative waits complete immediately.
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) must fire immediately")
	}
}

func TestFakeSetTime(t *testing.T) {
	f := NewFake()
	timer := f.NewTimer(time.Hour)
	target := f.Now().Add(2 * time.Hour)
	f.SetTime(target)
	if !f.Now().Equal(target) {
		t.Fatalf("now = %v, want %v", f.Now(), target)
	}
	select {
	case <-timer.C():
	default:
		t.Fatal("SetTime did not fire crossed deadline")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backwards SetTime must panic")
		}
	}()
	f.SetTime(target.Add(-time.Second))
}

func TestFakeWaitersAndBlockUntil(t *testing.T) {
	f := NewFake()
	if f.Waiters() != 0 {
		t.Fatal("fresh clock has waiters")
	}
	timer := f.NewTimer(time.Second)
	ticker := f.NewTicker(time.Second)
	if f.Waiters() != 2 {
		t.Fatalf("waiters = %d", f.Waiters())
	}
	if len(f.Deadlines()) != 2 {
		t.Fatalf("deadlines = %v", f.Deadlines())
	}
	timer.Stop()
	ticker.Stop()
	if f.Waiters() != 0 {
		t.Fatalf("waiters after stop = %d", f.Waiters())
	}
}

// TestFakeConcurrentAdvance hammers the clock from several goroutines to
// back the race-detector guarantee.
func TestFakeConcurrentAdvance(t *testing.T) {
	f := NewFake()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				timer := f.NewTimer(time.Duration(j) * time.Millisecond)
				f.Advance(time.Millisecond)
				timer.Stop()
				f.Now()
			}
		}()
	}
	wg.Wait()
}
