// Package clock is the injectable time source used across the LogLens
// runtime. The paper's headline guarantees are temporal — timely expiry of
// open automata states via the external heartbeat controller (§V-B) and
// zero-downtime model rebroadcast between micro-batches (§V-A) — so the
// components that keep time (bus, stream engine, heartbeat controller,
// model manager, agents) take a Clock instead of calling the time package
// directly. Production code uses Real (the zero-configuration default);
// tests and the chaos harness use Fake, whose Advance fires pending timers
// deterministically in deadline order, so temporal invariants can be
// checked in milliseconds of wall time.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the time source interface. Real forwards to the time package;
// Fake is driven manually by Advance.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// After returns a channel that receives the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
	// NewTimer returns a one-shot timer firing after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a repeating ticker firing every d.
	NewTicker(d time.Duration) Ticker
}

// Timer is a one-shot timer.
type Timer interface {
	// C is the firing channel.
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
	// Reset re-arms the timer for d from now, reporting whether it was
	// still pending.
	Reset(d time.Duration) bool
}

// Ticker is a repeating timer.
type Ticker interface {
	// C is the firing channel.
	C() <-chan time.Time
	// Stop cancels the ticker.
	Stop()
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

// New returns the wall clock.
func New() Clock { return Real{} }

func (Real) Now() time.Time                         { return time.Now() }
func (Real) Since(t time.Time) time.Duration        { return time.Since(t) }
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (Real) Sleep(d time.Duration)                  { time.Sleep(d) }

func (Real) NewTimer(d time.Duration) Timer   { return realTimer{time.NewTimer(d)} }
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time        { return t.t.C }
func (t realTimer) Stop() bool                 { return t.t.Stop() }
func (t realTimer) Reset(d time.Duration) bool { return t.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

// Fake is a manually driven clock. Time stands still until Advance (or
// SetTime) moves it; pending timers whose deadlines are crossed fire in
// deadline order (creation order breaks ties), and tickers re-arm after
// every firing so a large Advance delivers every elapsed tick the buffered
// channel can hold. Fake is safe for concurrent use.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	seq     uint64
	waiters []*fakeWaiter
	// waitCond signals changes to the pending-waiter count for BlockUntil.
	waitCond *sync.Cond
}

// fakeWaiter is one pending timer, ticker, or sleeper.
type fakeWaiter struct {
	deadline time.Time
	period   time.Duration // 0 for one-shot timers
	seq      uint64        // creation order, for deterministic ties
	ch       chan time.Time
}

// NewFake returns a Fake clock starting at a fixed, arbitrary epoch
// (2020-01-01 UTC) so scenario schedules are reproducible byte for byte.
func NewFake() *Fake {
	return NewFakeAt(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
}

// NewFakeAt returns a Fake clock starting at start.
func NewFakeAt(start time.Time) *Fake {
	f := &Fake{now: start}
	f.waitCond = sync.NewCond(&f.mu)
	return f
}

func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.addWaiter(d, 0).ch
}

// Sleep blocks until another goroutine advances the clock past d.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

func (f *Fake) NewTimer(d time.Duration) Timer {
	return &fakeTimer{clock: f, w: f.addWaiter(d, 0)}
}

func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	return &fakeTicker{clock: f, w: f.addWaiter(d, d)}
}

func (f *Fake) addWaiter(d time.Duration, period time.Duration) *fakeWaiter {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	w := &fakeWaiter{
		deadline: f.now.Add(d),
		period:   period,
		seq:      f.seq,
		// Buffered so firing never blocks Advance; ticks beyond the
		// buffer are dropped, exactly like time.Ticker.
		ch: make(chan time.Time, 1),
	}
	if d <= 0 && period == 0 {
		// An already-due one-shot fires immediately.
		w.ch <- f.now
		return w
	}
	f.waiters = append(f.waiters, w)
	f.waitCond.Broadcast()
	return w
}

func (f *Fake) removeWaiter(w *fakeWaiter) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, other := range f.waiters {
		if other == w {
			f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
			f.waitCond.Broadcast()
			return true
		}
	}
	return false
}

// Advance moves the clock forward by d, firing every timer and ticker
// whose deadline is crossed, in deadline order. Tickers re-arm and may
// fire multiple times during one Advance.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		w := f.nextDueLocked(target)
		if w == nil {
			break
		}
		// Time jumps to the waiter's deadline so a firing handler that
		// reads Now sees a consistent, monotone timeline.
		if w.deadline.After(f.now) {
			f.now = w.deadline
		}
		select {
		case w.ch <- f.now:
		default: // receiver lagging: drop the tick, like time.Ticker
		}
		if w.period > 0 {
			w.deadline = w.deadline.Add(w.period)
		} else {
			f.removeLocked(w)
		}
	}
	f.now = target
	f.mu.Unlock()
}

// SetTime jumps the clock to t (which must not move time backwards),
// firing crossed deadlines exactly as Advance does.
func (f *Fake) SetTime(t time.Time) {
	f.mu.Lock()
	d := t.Sub(f.now)
	f.mu.Unlock()
	if d < 0 {
		panic("clock: SetTime would move time backwards")
	}
	f.Advance(d)
}

// nextDueLocked returns the pending waiter with the earliest deadline not
// after target, breaking ties by creation order; nil if none is due.
func (f *Fake) nextDueLocked(target time.Time) *fakeWaiter {
	var due *fakeWaiter
	for _, w := range f.waiters {
		if w.deadline.After(target) {
			continue
		}
		if due == nil || w.deadline.Before(due.deadline) ||
			(w.deadline.Equal(due.deadline) && w.seq < due.seq) {
			due = w
		}
	}
	return due
}

func (f *Fake) removeLocked(w *fakeWaiter) {
	for i, other := range f.waiters {
		if other == w {
			f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
			f.waitCond.Broadcast()
			return
		}
	}
}

// Waiters returns the number of pending timers, tickers, and sleepers.
func (f *Fake) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

// BlockUntil blocks until at least n timers, tickers, or sleepers are
// pending on the clock — the synchronization point between a test and a
// goroutine that is about to wait on fake time (start goroutine,
// BlockUntil(1), then Advance).
func (f *Fake) BlockUntil(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.waiters) < n {
		f.waitCond.Wait()
	}
}

// Deadlines returns the pending deadlines in firing order — the fake
// clock's introspection hook, used by seed-reproducibility assertions.
func (f *Fake) Deadlines() []time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]time.Time, 0, len(f.waiters))
	for _, w := range f.waiters {
		out = append(out, w.deadline)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

type fakeTimer struct {
	clock *Fake
	mu    sync.Mutex
	w     *fakeWaiter
}

func (t *fakeTimer) C() <-chan time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.ch
}

func (t *fakeTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock.removeWaiter(t.w)
}

func (t *fakeTimer) Reset(d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	pending := t.clock.removeWaiter(t.w)
	t.w = t.clock.addWaiter(d, 0)
	return pending
}

type fakeTicker struct {
	clock *Fake
	w     *fakeWaiter
}

func (t *fakeTicker) C() <-chan time.Time { return t.w.ch }
func (t *fakeTicker) Stop()               { t.clock.removeWaiter(t.w) }
