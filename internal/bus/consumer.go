package bus

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// Consumer reads messages from one or more topics with per-partition
// offsets. Consumers created with the same group name share offsets, so
// each message is delivered to one member of the group. A Consumer is safe
// for concurrent use.
type Consumer struct {
	bus       *Bus
	group     *group
	groupName string
	topics    []string
	// instr caches per-topic-partition consume instruments; guarded by
	// group.mu (only touched inside TryPoll).
	instr map[topicPartition]*consumeInstr
}

// consumeInstr is the per-(group, topic, partition) observability handle:
// messages consumed and the committed-offset lag behind the partition end.
type consumeInstr struct {
	consumed *metrics.Counter
	lag      *metrics.Gauge
}

type group struct {
	mu      sync.Mutex
	offsets map[topicPartition]int64
}

type topicPartition struct {
	topic     string
	partition int
}

// NewConsumer creates a consumer in the named group subscribed to the
// given topics, starting at the group's committed offsets (zero for a new
// group).
func (b *Bus) NewConsumer(groupName string, topics ...string) (*Consumer, error) {
	if len(topics) == 0 {
		return nil, fmt.Errorf("bus: consumer group %q: no topics", groupName)
	}
	for _, t := range topics {
		if _, err := b.topic(t); err != nil {
			return nil, err
		}
	}
	b.groupsMu.Lock()
	defer b.groupsMu.Unlock()
	g, ok := b.groups[groupName]
	if !ok {
		g = &group{offsets: make(map[topicPartition]int64)}
		b.groups[groupName] = g
	}
	return &Consumer{
		bus:       b,
		group:     g,
		groupName: groupName,
		topics:    topics,
		instr:     make(map[topicPartition]*consumeInstr),
	}, nil
}

// Poll returns up to max pending messages across the subscription,
// blocking until at least one message is available or the context is done.
// Offsets advance past everything returned (auto-commit).
func (c *Consumer) Poll(ctx context.Context, max int) ([]Message, error) {
	for {
		if msgs := c.TryPoll(max); len(msgs) > 0 {
			return msgs, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Block on the first subscribed partition until something
		// arrives anywhere; cheap because partitions broadcast on
		// publish. A short re-check loop keeps multiple-topic
		// subscriptions live.
		if err := c.waitAny(ctx); err != nil {
			return nil, err
		}
	}
}

// waitAny blocks until any subscribed partition has data past the
// committed offset or ctx is done.
func (c *Consumer) waitAny(ctx context.Context) error {
	// Wait on the first partition of the first topic with a deadline
	// re-check; other partitions are caught by the TryPoll retry.
	t, err := c.bus.topic(c.topics[0])
	if err != nil {
		return err
	}
	c.group.mu.Lock()
	off := c.group.offsets[topicPartition{c.topics[0], 0}]
	c.group.mu.Unlock()
	waitCtx, cancel := context.WithTimeout(ctx, pollInterval)
	defer cancel()
	_, err = t.partitions[0].read(waitCtx, off, 1)
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// TryPoll returns pending messages without blocking. Offsets advance past
// everything returned.
func (c *Consumer) TryPoll(max int) []Message {
	c.group.mu.Lock()
	defer c.group.mu.Unlock()
	var out []Message
	budget := max
	for _, topicName := range c.topics {
		t, err := c.bus.topic(topicName)
		if err != nil {
			continue
		}
		for pi, p := range t.partitions {
			if max > 0 && budget <= 0 {
				return out
			}
			tp := topicPartition{topicName, pi}
			msgs := p.tryRead(c.group.offsets[tp], budget)
			if len(msgs) == 0 {
				continue
			}
			c.group.offsets[tp] = msgs[len(msgs)-1].Offset + 1
			if mi := c.instrFor(tp); mi != nil {
				mi.consumed.Add(uint64(len(msgs)))
				p.mu.Lock()
				end := int64(len(p.log))
				p.mu.Unlock()
				mi.lag.Set(end - c.group.offsets[tp])
			}
			out = append(out, msgs...)
			if max > 0 {
				budget -= len(msgs)
			}
		}
	}
	return out
}

// instrFor resolves (and caches) the consume instruments for a partition;
// nil when the bus is uninstrumented. Caller holds group.mu.
func (c *Consumer) instrFor(tp topicPartition) *consumeInstr {
	if mi, ok := c.instr[tp]; ok {
		return mi
	}
	c.bus.mu.RLock()
	reg := c.bus.reg
	c.bus.mu.RUnlock()
	if reg == nil {
		// Not cached: the bus may be instrumented later in wiring.
		return nil
	}
	labels := []string{"group", c.groupName, "topic", tp.topic, "partition", strconv.Itoa(tp.partition)}
	mi := &consumeInstr{
		consumed: reg.Counter("bus_consumed_total", labels...),
		lag:      reg.Gauge("bus_lag", labels...),
	}
	c.instr[tp] = mi
	return mi
}

// Seek rewinds (or forwards) the group's offset for one partition —
// log replay (§II: stored logs "can also be used for future log
// replaying").
func (c *Consumer) Seek(topicName string, partition int, offset int64) error {
	if _, err := c.bus.topic(topicName); err != nil {
		return err
	}
	c.group.mu.Lock()
	c.group.offsets[topicPartition{topicName, partition}] = offset
	c.group.mu.Unlock()
	c.bus.recorder().Record(obs.EventBusSeek, c.groupName,
		fmt.Sprintf("%s/%d seek", topicName, partition), offset)
	return nil
}

// Lag returns the total number of unconsumed messages across the
// subscription.
func (c *Consumer) Lag() int64 {
	c.group.mu.Lock()
	defer c.group.mu.Unlock()
	var lag int64
	for _, topicName := range c.topics {
		t, err := c.bus.topic(topicName)
		if err != nil {
			continue
		}
		for pi, p := range t.partitions {
			p.mu.Lock()
			end := int64(len(p.log))
			p.mu.Unlock()
			lag += end - c.group.offsets[topicPartition{topicName, pi}]
		}
	}
	return lag
}
