package bus

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// Consumer reads messages from one or more topics with per-partition
// offsets. Consumers created with the same group name share offsets, so
// each message is delivered to one member of the group. A Consumer is safe
// for concurrent use.
//
// Each group tracks two positions per partition:
//
//   - the read offset — how far polls have advanced; the next Poll
//     resumes here, and
//   - the committed offset — how far processing is durably acknowledged;
//     a crash/restart resumes here.
//
// By default the two move together: every poll commits what it returns
// (auto-commit, the pre-recovery behavior). A consumer that calls
// DisableAutoCommit takes over the committed position with explicit
// Commit calls after its batches are fully processed, turning redelivery
// of the read-but-uncommitted suffix into the at-least-once contract.
// Seek and Lag are expressed against the committed position — Lag is
// "messages a restart would have to reprocess", not "messages not yet
// polled" (see Consumer.Lag).
type Consumer struct {
	bus       *Bus
	group     *group
	groupName string
	topics    []string
	// manual disables auto-commit for polls issued through this member
	// of the group.
	manual bool
	// instr caches per-topic-partition consume instruments; guarded by
	// group.mu (only touched inside TryPoll).
	instr map[topicPartition]*consumeInstr
}

// consumeInstr is the per-(group, topic, partition) observability handle:
// messages consumed, the committed-offset lag behind the partition end,
// and the delivery delay (publish stamp → poll) of the newest message
// per poll batch.
type consumeInstr struct {
	consumed *metrics.Counter
	lag      *metrics.Gauge
	delay    *metrics.Histogram
}

type group struct {
	mu sync.Mutex
	// read is the poll frontier; committed is the durable acknowledgment
	// frontier. committed <= read except transiently across a Seek.
	read      map[topicPartition]int64
	committed map[topicPartition]int64
}

func newGroup() *group {
	return &group{
		read:      make(map[topicPartition]int64),
		committed: make(map[topicPartition]int64),
	}
}

type topicPartition struct {
	topic     string
	partition int
}

// NewConsumer creates a consumer in the named group subscribed to the
// given topics, starting at the group's committed offsets (zero for a new
// group).
func (b *Bus) NewConsumer(groupName string, topics ...string) (*Consumer, error) {
	if len(topics) == 0 {
		return nil, fmt.Errorf("bus: consumer group %q: no topics", groupName)
	}
	for _, t := range topics {
		if _, err := b.topic(t); err != nil {
			return nil, err
		}
	}
	return &Consumer{
		bus:       b,
		group:     b.groupByName(groupName),
		groupName: groupName,
		topics:    topics,
		instr:     make(map[topicPartition]*consumeInstr),
	}, nil
}

// groupByName returns (creating if needed) the named offset group.
func (b *Bus) groupByName(name string) *group {
	b.groupsMu.Lock()
	defer b.groupsMu.Unlock()
	g, ok := b.groups[name]
	if !ok {
		g = newGroup()
		b.groups[name] = g
	}
	return g
}

// DisableAutoCommit switches this consumer to manual commits: polls still
// advance the group's read offsets (so members do not re-read each
// other's in-flight batches), but the committed offsets move only on
// explicit Commit calls.
func (c *Consumer) DisableAutoCommit() {
	c.group.mu.Lock()
	c.manual = true
	c.group.mu.Unlock()
}

// Commit acknowledges processing of one partition up to (but excluding)
// offset — the position a restart should resume from. Commits never
// regress the committed offset; use Seek for deliberate rewinds.
func (c *Consumer) Commit(topicName string, partition int, offset int64) error {
	if _, err := c.bus.topic(topicName); err != nil {
		return err
	}
	tp := topicPartition{topicName, partition}
	c.group.mu.Lock()
	defer c.group.mu.Unlock()
	if offset > c.group.committed[tp] {
		c.group.committed[tp] = offset
	}
	if mi := c.instrFor(tp); mi != nil {
		mi.lag.Set(c.lagLocked(tp))
	}
	return nil
}

// Poll returns up to max pending messages across the subscription,
// blocking until at least one message is available or the context is done.
// Read offsets advance past everything returned; with auto-commit (the
// default) committed offsets follow.
func (c *Consumer) Poll(ctx context.Context, max int) ([]Message, error) {
	for {
		if msgs := c.TryPoll(max); len(msgs) > 0 {
			return msgs, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Block on the first subscribed partition until something
		// arrives anywhere; cheap because partitions broadcast on
		// publish. A short re-check loop keeps multiple-topic
		// subscriptions live.
		if err := c.waitAny(ctx); err != nil {
			return nil, err
		}
	}
}

// waitAny blocks until any subscribed partition has data past the read
// offset or ctx is done.
func (c *Consumer) waitAny(ctx context.Context) error {
	// Wait on the first partition of the first topic with a deadline
	// re-check; other partitions are caught by the TryPoll retry.
	t, err := c.bus.topic(c.topics[0])
	if err != nil {
		return err
	}
	c.group.mu.Lock()
	off := c.group.read[topicPartition{c.topics[0], 0}]
	c.group.mu.Unlock()
	waitCtx, cancel := context.WithTimeout(ctx, pollInterval)
	defer cancel()
	_, err = t.partitions[0].read(waitCtx, off, 1)
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// TryPoll returns pending messages without blocking. Read offsets advance
// past everything returned; committed offsets follow unless auto-commit is
// disabled.
func (c *Consumer) TryPoll(max int) []Message {
	c.group.mu.Lock()
	defer c.group.mu.Unlock()
	var out []Message
	budget := max
	for _, topicName := range c.topics {
		t, err := c.bus.topic(topicName)
		if err != nil {
			continue
		}
		for pi, p := range t.partitions {
			if max > 0 && budget <= 0 {
				return out
			}
			tp := topicPartition{topicName, pi}
			msgs := p.tryRead(c.group.read[tp], budget)
			if len(msgs) == 0 {
				continue
			}
			c.group.read[tp] = msgs[len(msgs)-1].Offset + 1
			if !c.manual {
				c.group.committed[tp] = c.group.read[tp]
			}
			if mi := c.instrFor(tp); mi != nil {
				mi.consumed.Add(uint64(len(msgs)))
				mi.lag.Set(c.lagLocked(tp))
				// One delay observation per poll batch — the newest
				// message — keeps the histogram off the per-message
				// path while still bounding every message's delay from
				// above (the batch head waited at least as long).
				mi.delay.Observe(c.bus.clk.Now().Sub(msgs[len(msgs)-1].Time).Seconds())
			}
			out = append(out, msgs...)
			if max > 0 {
				budget -= len(msgs)
			}
		}
	}
	return out
}

// lagLocked computes the committed-offset lag for one partition. Caller
// holds group.mu.
func (c *Consumer) lagLocked(tp topicPartition) int64 {
	t, err := c.bus.topic(tp.topic)
	if err != nil || tp.partition >= len(t.partitions) {
		return 0
	}
	p := t.partitions[tp.partition]
	return p.end() - c.group.committed[tp]
}

// instrFor resolves (and caches) the consume instruments for a partition;
// nil when the bus is uninstrumented. Caller holds group.mu.
func (c *Consumer) instrFor(tp topicPartition) *consumeInstr {
	if mi, ok := c.instr[tp]; ok {
		return mi
	}
	c.bus.mu.RLock()
	reg := c.bus.reg
	c.bus.mu.RUnlock()
	if reg == nil {
		// Not cached: the bus may be instrumented later in wiring.
		return nil
	}
	labels := []string{"group", c.groupName, "topic", tp.topic, "partition", strconv.Itoa(tp.partition)}
	mi := &consumeInstr{
		consumed: reg.Counter("bus_consumed_total", labels...),
		lag:      reg.Gauge("bus_lag", labels...),
		delay:    reg.Histogram("bus_consume_delay_seconds", nil, labels...),
	}
	c.instr[tp] = mi
	return mi
}

// Seek rewinds (or forwards) the group's position for one partition —
// log replay (§II: stored logs "can also be used for future log
// replaying"). Seek moves the read and committed offsets together: the
// next poll resumes at offset, and a restart would too.
func (c *Consumer) Seek(topicName string, partition int, offset int64) error {
	if _, err := c.bus.topic(topicName); err != nil {
		return err
	}
	tp := topicPartition{topicName, partition}
	c.group.mu.Lock()
	c.group.read[tp] = offset
	c.group.committed[tp] = offset
	c.group.mu.Unlock()
	c.bus.recorder().Record(obs.EventBusSeek, c.groupName,
		fmt.Sprintf("%s/%d seek", topicName, partition), offset)
	return nil
}

// Lag returns the total number of messages past the committed offsets
// across the subscription — the amount of work a crash/restart would
// replay. Under auto-commit this equals the unpolled backlog; under
// manual commits it also counts polled-but-unacknowledged messages, so
// Lag can be nonzero even when every message has been read.
func (c *Consumer) Lag() int64 {
	c.group.mu.Lock()
	defer c.group.mu.Unlock()
	var lag int64
	for _, topicName := range c.topics {
		t, err := c.bus.topic(topicName)
		if err != nil {
			continue
		}
		for pi, p := range t.partitions {
			lag += p.end() - c.group.committed[topicPartition{topicName, pi}]
		}
	}
	return lag
}

// ReadLag returns the total number of unpolled messages across the
// subscription — the backlog measured at the read frontier. The drain
// path uses it to decide the bus is empty even while commits trail.
func (c *Consumer) ReadLag() int64 {
	c.group.mu.Lock()
	defer c.group.mu.Unlock()
	var lag int64
	for _, topicName := range c.topics {
		t, err := c.bus.topic(topicName)
		if err != nil {
			continue
		}
		for pi, p := range t.partitions {
			lag += p.end() - c.group.read[topicPartition{topicName, pi}]
		}
	}
	return lag
}
