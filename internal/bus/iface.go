package bus

import "context"

// Broker is the transport-neutral surface of the bus: everything the
// pipeline, the log manager, the agents, and the recovery subsystem need
// from a Kafka-style broker. The in-process *Bus implements it directly;
// internal/netbus implements it over TCP so the same components run
// unchanged in a multi-node deployment (the paper's Kafka split).
//
// Publish keeps the ownership-transfer contract of (*Bus).Publish: the
// broker retains value and headers without copying, so callers must not
// modify either after publishing.
type Broker interface {
	CreateTopic(name string, partitions int) error
	Partitions(topic string) (int, error)
	Publish(topic, key string, value []byte, headers map[string]string) (partition int, offset int64, err error)
	PublishTo(topic string, partition int, key string, value []byte, headers map[string]string) (int64, error)
	Broadcast(topic, key string, value []byte, headers map[string]string) error
	EndOffset(topic string, partition int) (int64, error)
	// Subscribe creates a reader in the named consumer group; readers
	// sharing a group share offsets (each message goes to one member).
	Subscribe(group string, topics ...string) (Reader, error)
	// GroupOffsets / SeekGroup / ReadFrom are the checkpoint-and-restore
	// surface (see recovery.go).
	GroupOffsets(group string) map[string]int64
	SeekGroup(group, topic string, partition int, offset int64)
	ReadFrom(topic string, partition int, offset int64, max int) ([]Message, error)
}

// Reader is the consumer surface of Broker — what (*Bus).NewConsumer
// returns, abstracted so a networked consumer can stand in.
type Reader interface {
	Poll(ctx context.Context, max int) ([]Message, error)
	TryPoll(max int) []Message
	Commit(topic string, partition int, offset int64) error
	Seek(topic string, partition int, offset int64) error
	DisableAutoCommit()
	Lag() int64
	ReadLag() int64
}

// Subscribe implements Broker for the in-process bus by wrapping
// NewConsumer.
func (b *Bus) Subscribe(group string, topics ...string) (Reader, error) {
	return b.NewConsumer(group, topics...)
}

// ResetReadToCommitted rewinds a group's read frontier back to its
// committed offsets, so everything read but not yet committed is
// redelivered. This is the at-least-once resume a networked broker
// applies when a remote consumer reconnects: in-flight batches that died
// with the connection come back on the next poll.
func (b *Bus) ResetReadToCommitted(groupName string) {
	b.groupsMu.Lock()
	g, ok := b.groups[groupName]
	b.groupsMu.Unlock()
	if !ok {
		return
	}
	g.mu.Lock()
	for tp := range g.read {
		g.read[tp] = g.committed[tp]
	}
	g.mu.Unlock()
}

var _ Broker = (*Bus)(nil)
var _ Reader = (*Consumer)(nil)
