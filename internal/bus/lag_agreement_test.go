package bus

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"loglens/internal/metrics"
)

// gaugeLagSum totals every bus_lag gauge in the snapshot.
func gaugeLagSum(snap metrics.Snapshot) int64 {
	var sum int64
	for key, v := range snap.Gauges {
		if strings.HasPrefix(key, "bus_lag{") || key == "bus_lag" {
			sum += v
		}
	}
	return sum
}

// TestLagAndGaugeAgree: Consumer.Lag() walks the partition logs live,
// while the bus_lag gauge is written on the TryPoll consume path — two
// independent computations of the same quantity. At every quiescent
// point (no publish racing a poll) they must agree exactly.
func TestLagAndGaugeAgree(t *testing.T) {
	reg := metrics.NewRegistry()
	b := New()
	b.SetMetrics(reg)
	if err := b.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	c, err := b.NewConsumer("g", "t")
	if err != nil {
		t.Fatal(err)
	}

	// Quiescent partial consumption: 30 in, 10 out. Lag() and the gauge
	// must both say 20.
	for i := 0; i < 30; i++ {
		if _, _, err := b.Publish("t", "k"+strconv.Itoa(i), []byte("x"), nil); err != nil {
			t.Fatal(err)
		}
	}
	consumed := len(c.TryPoll(10))
	if consumed != 10 {
		t.Fatalf("TryPoll(10) returned %d messages", consumed)
	}
	if lag := c.Lag(); lag != 20 {
		t.Fatalf("Lag() = %d, want 20", lag)
	}
	// The gauge only covers partitions the consumer has polled; drain
	// the rest so every partition's gauge is fresh, then both paths must
	// land on zero together.
	consumed += len(c.TryPoll(0))
	if consumed != 30 {
		t.Fatalf("consumed %d messages total, want 30", consumed)
	}
	if lag, gauge := c.Lag(), gaugeLagSum(reg.Snapshot()); lag != 0 || gauge != 0 {
		t.Fatalf("after full drain: Lag() = %d, gauge sum = %d, want 0/0", lag, gauge)
	}

	// Concurrent produce/consume: four producers race one polling
	// consumer. Mid-flight the two paths may disagree transiently (the
	// gauge trails the partition end), but once the producers stop and a
	// final poll drains the backlog, both must read exactly zero again.
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	var polled int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for polled < producers*perProducer {
			polled += len(c.TryPoll(64))
		}
	}()
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				key := "p" + strconv.Itoa(g) + "-" + strconv.Itoa(i)
				if _, _, err := b.Publish("t", key, []byte("y"), nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	<-done
	if polled != producers*perProducer {
		t.Fatalf("consumed %d of %d concurrent messages", polled, producers*perProducer)
	}
	// One more quiescent poll refreshes the gauges now that publishing
	// has stopped.
	if extra := len(c.TryPoll(0)); extra != 0 {
		t.Fatalf("unexpected %d stragglers after the drain loop", extra)
	}
	if lag, gauge := c.Lag(), gaugeLagSum(reg.Snapshot()); lag != 0 || gauge != lag {
		t.Fatalf("after concurrent run: Lag() = %d, gauge sum = %d, want both 0", lag, gauge)
	}
}
