package bus

import (
	"testing"

	"loglens/internal/clock"
	"loglens/internal/obs"
)

// TestSeekRecordsFlightEvent: consumer-group offset seeks (replay,
// chaos-injected restarts) land in the installed flight recorder.
func TestSeekRecordsFlightEvent(t *testing.T) {
	b := New()
	f := obs.NewFlightRecorder(clock.NewFake(), 8)
	b.SetRecorder(f)
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	c, err := b.NewConsumer("replay", "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Seek("t", 1, 7); err != nil {
		t.Fatal(err)
	}
	evs := f.Events(obs.EventQuery{Type: obs.EventBusSeek})
	if len(evs) != 1 || evs[0].Source != "replay" || evs[0].Value != 7 ||
		evs[0].Detail != "t/1 seek" {
		t.Fatalf("seek events = %+v", evs)
	}
	// Seeking a topic the bus does not know fails without recording.
	if err := c.Seek("nope", 0, 0); err == nil {
		t.Fatal("seek on unknown topic must fail")
	}
	if got := len(f.Events(obs.EventQuery{})); got != 1 {
		t.Fatalf("events after failed seek = %d, want 1", got)
	}
}
