package bus

import (
	"fmt"
	"strconv"

	"loglens/internal/obs"
)

// This file is the broker surface the recovery subsystem checkpoints and
// restores: committed group offsets out, seeks back in, plus a
// side-effect-free peek for inspecting quarantined messages.

// PartitionKey formats the "topic/partition" key used by GroupOffsets
// and checkpoints.
func PartitionKey(topic string, partition int) string {
	return topic + "/" + strconv.Itoa(partition)
}

// SplitPartitionKey parses a key produced by PartitionKey.
func SplitPartitionKey(key string) (topic string, partition int, err error) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			p, perr := strconv.Atoi(key[i+1:])
			if perr != nil {
				return "", 0, fmt.Errorf("bus: bad partition key %q", key)
			}
			return key[:i], p, nil
		}
	}
	return "", 0, fmt.Errorf("bus: bad partition key %q", key)
}

// GroupOffsets returns the committed offsets of one consumer group,
// keyed "topic/partition" — the positions a checkpoint records and a
// restart resumes from. Unknown groups return an empty map.
func (b *Bus) GroupOffsets(groupName string) map[string]int64 {
	b.groupsMu.Lock()
	g, ok := b.groups[groupName]
	b.groupsMu.Unlock()
	out := make(map[string]int64)
	if !ok {
		return out
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for tp, off := range g.committed {
		out[PartitionKey(tp.topic, tp.partition)] = off
	}
	return out
}

// GroupNames lists the consumer groups the broker knows about.
func (b *Bus) GroupNames() []string {
	b.groupsMu.Lock()
	defer b.groupsMu.Unlock()
	out := make([]string, 0, len(b.groups))
	for name := range b.groups {
		out = append(out, name)
	}
	return out
}

// SeekGroup positions one partition of a consumer group — read and
// committed offsets together — creating the group if it does not exist
// yet. This is the restore path: checkpointed offsets are installed
// before the group's consumers are recreated, so their first poll
// resumes exactly where the checkpoint left off. The topic need not be
// declared yet for the same reason.
func (b *Bus) SeekGroup(groupName, topicName string, partition int, offset int64) {
	g := b.groupByName(groupName)
	tp := topicPartition{topicName, partition}
	g.mu.Lock()
	g.read[tp] = offset
	g.committed[tp] = offset
	g.mu.Unlock()
	b.recorder().Record(obs.EventBusSeek, groupName,
		fmt.Sprintf("%s/%d restore-seek", topicName, partition), offset)
}

// CommitGroup advances one partition's committed offset for a consumer
// group, creating the group if needed. Like Consumer.Commit it never
// regresses; unlike it, no subscribed consumer instance is required —
// the networked broker commits on behalf of remote readers.
func (b *Bus) CommitGroup(groupName, topicName string, partition int, offset int64) {
	g := b.groupByName(groupName)
	tp := topicPartition{topicName, partition}
	g.mu.Lock()
	if offset > g.committed[tp] {
		g.committed[tp] = offset
	}
	g.mu.Unlock()
}

// ReadFrom returns up to max messages of one partition starting at
// offset without touching any group state — a side-effect-free peek used
// by the deadletter API and tests.
func (b *Bus) ReadFrom(topicName string, partition int, offset int64, max int) ([]Message, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return nil, fmt.Errorf("bus: topic %q has no partition %d", topicName, partition)
	}
	return t.partitions[partition].tryRead(offset, max), nil
}
