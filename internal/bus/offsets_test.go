package bus

import (
	"fmt"
	"sync"
	"testing"
)

// Consumer-group offsets must never regress: with producers and several
// group members running concurrently, every member sees strictly
// increasing offsets per partition, and across the group every offset is
// delivered exactly once. This is the plain-bus half of the chaos
// scenario suite's offset invariant (internal/chaos/scenarios_test.go
// adds producer faults on top).
func TestGroupOffsetsNeverRegress(t *testing.T) {
	b := New()
	const partitions, producers, each, members = 4, 4, 250, 3
	if err := b.CreateTopic("t", partitions); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	produced := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Publish("t", fmt.Sprintf("p%d-%d", p, i), []byte("x"), nil)
			}
		}(p)
	}
	go func() { wg.Wait(); close(produced) }()

	var mu sync.Mutex
	counts := make(map[int]map[int64]int) // partition -> offset -> deliveries
	var cwg sync.WaitGroup
	for m := 0; m < members; m++ {
		c, err := b.NewConsumer("g", "t")
		if err != nil {
			t.Fatal(err)
		}
		cwg.Add(1)
		go func(c *Consumer) {
			defer cwg.Done()
			last := make(map[int]int64) // this member's per-partition frontier
			for {
				msgs := c.TryPoll(32)
				if len(msgs) == 0 {
					select {
					case <-produced:
						if c.Lag() == 0 {
							return
						}
					default:
					}
					continue
				}
				mu.Lock()
				for _, msg := range msgs {
					if front, ok := last[msg.Partition]; ok && msg.Offset <= front {
						t.Errorf("partition %d offset regressed: %d after %d", msg.Partition, msg.Offset, front)
					}
					last[msg.Partition] = msg.Offset
					if counts[msg.Partition] == nil {
						counts[msg.Partition] = make(map[int64]int)
					}
					counts[msg.Partition][msg.Offset]++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	cwg.Wait()

	delivered := 0
	for part, offs := range counts {
		end, err := b.EndOffset("t", part)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(offs)) != end {
			t.Errorf("partition %d: %d distinct offsets delivered, end %d", part, len(offs), end)
		}
		for off, n := range offs {
			if n != 1 {
				t.Errorf("partition %d offset %d delivered %d times within the group", part, off, n)
			}
		}
		delivered += len(offs)
	}
	if delivered != producers*each {
		t.Errorf("delivered %d distinct messages, want %d", delivered, producers*each)
	}
}
