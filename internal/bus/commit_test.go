package bus

import (
	"testing"
)

func publishN(t *testing.T, b *Bus, topic string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := b.PublishTo(topic, 0, "k", []byte{byte(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestManualCommitSplitsReadFromCommitted(t *testing.T) {
	b := New()
	if err := b.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	publishN(t, b, "logs", 5)

	c, err := b.NewConsumer("g", "logs")
	if err != nil {
		t.Fatal(err)
	}
	c.DisableAutoCommit()

	msgs := c.TryPoll(0)
	if len(msgs) != 5 {
		t.Fatalf("polled %d, want 5", len(msgs))
	}
	// Read frontier advanced; committed did not.
	if got := c.ReadLag(); got != 0 {
		t.Errorf("ReadLag = %d, want 0", got)
	}
	if got := c.Lag(); got != 5 {
		t.Errorf("Lag = %d, want 5 (nothing committed)", got)
	}
	if got := b.GroupOffsets("g")["logs/0"]; got != 0 {
		t.Errorf("committed offset = %d, want 0", got)
	}

	// A second poll does not redeliver the in-flight batch.
	if again := c.TryPoll(0); len(again) != 0 {
		t.Fatalf("redelivered %d messages without a seek", len(again))
	}

	if err := c.Commit("logs", 0, 3); err != nil {
		t.Fatal(err)
	}
	if got := c.Lag(); got != 2 {
		t.Errorf("Lag after Commit(3) = %d, want 2", got)
	}
	if got := b.GroupOffsets("g")["logs/0"]; got != 3 {
		t.Errorf("committed offset = %d, want 3", got)
	}

	// Commits never regress.
	if err := c.Commit("logs", 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := b.GroupOffsets("g")["logs/0"]; got != 3 {
		t.Errorf("committed offset after regressive commit = %d, want 3", got)
	}
}

func TestAutoCommitKeepsOffsetsTogether(t *testing.T) {
	b := New()
	if err := b.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	publishN(t, b, "logs", 4)
	c, err := b.NewConsumer("g", "logs")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.TryPoll(0)); got != 4 {
		t.Fatalf("polled %d, want 4", got)
	}
	if got := c.Lag(); got != 0 {
		t.Errorf("Lag = %d, want 0 under auto-commit", got)
	}
	if got := b.GroupOffsets("g")["logs/0"]; got != 4 {
		t.Errorf("committed offset = %d, want 4", got)
	}
}

func TestSeekGroupBeforeTopicCreation(t *testing.T) {
	b := New()
	// Restore path: offsets installed before the topic exists.
	b.SeekGroup("g", "logs", 0, 7)
	if err := b.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	publishN(t, b, "logs", 10)
	c, err := b.NewConsumer("g", "logs")
	if err != nil {
		t.Fatal(err)
	}
	msgs := c.TryPoll(0)
	if len(msgs) != 3 {
		t.Fatalf("polled %d, want 3 (resume at restored offset 7)", len(msgs))
	}
	if msgs[0].Offset != 7 {
		t.Fatalf("first offset = %d, want 7", msgs[0].Offset)
	}
}

func TestSeekMovesBothPositions(t *testing.T) {
	b := New()
	if err := b.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	publishN(t, b, "logs", 5)
	c, err := b.NewConsumer("g", "logs")
	if err != nil {
		t.Fatal(err)
	}
	c.DisableAutoCommit()
	c.TryPoll(0)
	if err := c.Seek("logs", 0, 2); err != nil {
		t.Fatal(err)
	}
	if got := b.GroupOffsets("g")["logs/0"]; got != 2 {
		t.Errorf("committed after Seek = %d, want 2", got)
	}
	msgs := c.TryPoll(0)
	if len(msgs) != 3 || msgs[0].Offset != 2 {
		t.Fatalf("post-seek poll = %d msgs from %d, want 3 from 2", len(msgs), msgs[0].Offset)
	}
}

func TestReadFromIsSideEffectFree(t *testing.T) {
	b := New()
	if err := b.CreateTopic("deadletter", 1); err != nil {
		t.Fatal(err)
	}
	publishN(t, b, "deadletter", 3)
	c, err := b.NewConsumer("g", "deadletter")
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := b.ReadFrom("deadletter", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].Offset != 1 {
		t.Fatalf("ReadFrom = %d msgs from %d, want 2 from 1", len(msgs), msgs[0].Offset)
	}
	if got := c.Lag(); got != 3 {
		t.Errorf("Lag = %d after peek, want 3 (peek commits nothing)", got)
	}
	if _, err := b.ReadFrom("deadletter", 5, 0, 0); err == nil {
		t.Error("ReadFrom bad partition: want error")
	}
}

func TestPartitionKeyRoundTrip(t *testing.T) {
	key := PartitionKey("parsed/logs", 12)
	topic, part, err := SplitPartitionKey(key)
	if err != nil || topic != "parsed/logs" || part != 12 {
		t.Fatalf("round trip = %q %d %v", topic, part, err)
	}
	if _, _, err := SplitPartitionKey("nopartition"); err == nil {
		t.Error("want error for key without separator")
	}
}
