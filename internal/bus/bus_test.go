package bus

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPublishConsume(t *testing.T) {
	b := New()
	if err := b.CreateTopic("logs", 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := b.Publish("logs", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.NewConsumer("g1", "logs")
	if err != nil {
		t.Fatal(err)
	}
	msgs := c.TryPoll(0)
	if len(msgs) != 10 {
		t.Fatalf("got %d messages, want 10", len(msgs))
	}
	if c.TryPoll(0) != nil {
		t.Error("second poll must be empty (offsets advanced)")
	}
	if c.Lag() != 0 {
		t.Errorf("lag = %d", c.Lag())
	}
}

func TestKeyOrdering(t *testing.T) {
	b := New()
	b.CreateTopic("t", 4)
	for i := 0; i < 20; i++ {
		b.Publish("t", "same-key", []byte(fmt.Sprintf("%d", i)), nil)
	}
	c, _ := b.NewConsumer("g", "t")
	msgs := c.TryPoll(0)
	if len(msgs) != 20 {
		t.Fatalf("got %d", len(msgs))
	}
	// Same key -> same partition -> strict order.
	part := msgs[0].Partition
	for i, m := range msgs {
		if m.Partition != part {
			t.Fatalf("key split across partitions")
		}
		if string(m.Value) != fmt.Sprintf("%d", i) {
			t.Fatalf("order violated at %d: %s", i, m.Value)
		}
		if m.Offset != int64(i) {
			t.Fatalf("offset %d at position %d", m.Offset, i)
		}
	}
}

func TestConsumerGroupsIndependent(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	b.Publish("t", "", []byte("x"), nil)
	c1, _ := b.NewConsumer("g1", "t")
	c2, _ := b.NewConsumer("g2", "t")
	if len(c1.TryPoll(0)) != 1 || len(c2.TryPoll(0)) != 1 {
		t.Error("each group must see the message once")
	}
	// Same group shares offsets.
	b.Publish("t", "", []byte("y"), nil)
	c3, _ := b.NewConsumer("g1", "t")
	got := len(c1.TryPoll(0)) + len(c3.TryPoll(0))
	if got != 1 {
		t.Errorf("same-group consumers saw the message %d times", got)
	}
}

func TestBroadcastToAllPartitions(t *testing.T) {
	b := New()
	b.CreateTopic("t", 3)
	if err := b.Broadcast("t", "hb", []byte("heartbeat"), map[string]string{"type": "hb"}); err != nil {
		t.Fatal(err)
	}
	c, _ := b.NewConsumer("g", "t")
	msgs := c.TryPoll(0)
	if len(msgs) != 3 {
		t.Fatalf("broadcast reached %d partitions, want 3", len(msgs))
	}
	seen := map[int]bool{}
	for _, m := range msgs {
		seen[m.Partition] = true
		if m.Headers["type"] != "hb" {
			t.Error("headers lost")
		}
	}
	if len(seen) != 3 {
		t.Errorf("partitions hit: %v", seen)
	}
}

func TestSeekReplay(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	for i := 0; i < 5; i++ {
		b.Publish("t", "", []byte{byte(i)}, nil)
	}
	c, _ := b.NewConsumer("g", "t")
	c.TryPoll(0)
	if err := c.Seek("t", 0, 2); err != nil {
		t.Fatal(err)
	}
	msgs := c.TryPoll(0)
	if len(msgs) != 3 || msgs[0].Offset != 2 {
		t.Fatalf("replay from 2: %v", msgs)
	}
}

func TestBlockingPoll(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	c, _ := b.NewConsumer("g", "t")

	done := make(chan []Message, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		msgs, err := c.Poll(ctx, 0)
		if err != nil {
			t.Errorf("poll: %v", err)
		}
		done <- msgs
	}()
	// No sleep needed for synchronization: whether Poll is already
	// blocked or not yet started, the publish signal (or the first
	// TryPoll check) delivers the message.
	b.Publish("t", "", []byte("late"), nil)
	select {
	case msgs := <-done:
		if len(msgs) != 1 || string(msgs[0].Value) != "late" {
			t.Fatalf("got %v", msgs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poll never woke")
	}
}

func TestPollContextCancel(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	c, _ := b.NewConsumer("g", "t")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Poll(ctx, 0); err == nil {
		t.Fatal("cancelled poll must fail")
	}
	// And a cancellation racing a blocked poll must also wake it.
	ctx2, cancel2 := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Poll(ctx2, 0)
		errc <- err
	}()
	cancel2()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled poll must fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled poll never returned")
	}
}

func TestTopicErrors(t *testing.T) {
	b := New()
	if err := b.CreateTopic("t", 0); err == nil {
		t.Error("zero partitions must fail")
	}
	b.CreateTopic("t", 2)
	if err := b.CreateTopic("t", 2); err != nil {
		t.Errorf("idempotent create failed: %v", err)
	}
	if err := b.CreateTopic("t", 3); err == nil {
		t.Error("partition count change must fail")
	}
	if _, _, err := b.Publish("missing", "", nil, nil); err == nil {
		t.Error("publish to unknown topic must fail")
	}
	if _, err := b.PublishTo("t", 9, "", nil, nil); err == nil {
		t.Error("publish to invalid partition must fail")
	}
	if _, err := b.NewConsumer("g"); err == nil {
		t.Error("consumer without topics must fail")
	}
	if _, err := b.NewConsumer("g", "missing"); err == nil {
		t.Error("consumer on unknown topic must fail")
	}
}

func TestConcurrentProducers(t *testing.T) {
	b := New()
	b.CreateTopic("t", 4)
	var wg sync.WaitGroup
	const producers, each = 8, 100
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Publish("t", fmt.Sprintf("p%d", p), []byte("x"), nil)
			}
		}(p)
	}
	wg.Wait()
	c, _ := b.NewConsumer("g", "t")
	if got := len(c.TryPoll(0)); got != producers*each {
		t.Fatalf("got %d messages, want %d", got, producers*each)
	}
}

func TestEndOffset(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	if off, _ := b.EndOffset("t", 0); off != 0 {
		t.Errorf("empty end offset = %d", off)
	}
	b.Publish("t", "", []byte("a"), nil)
	if off, _ := b.EndOffset("t", 0); off != 1 {
		t.Errorf("end offset = %d", off)
	}
}

func TestMaxPoll(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	for i := 0; i < 10; i++ {
		b.Publish("t", "", []byte{byte(i)}, nil)
	}
	c, _ := b.NewConsumer("g", "t")
	if got := len(c.TryPoll(3)); got != 3 {
		t.Fatalf("TryPoll(3) = %d", got)
	}
	if got := len(c.TryPoll(0)); got != 7 {
		t.Fatalf("remainder = %d", got)
	}
}
