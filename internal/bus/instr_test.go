package bus

import (
	"context"
	"testing"
	"time"

	"loglens/internal/metrics"
)

// TestMetricsProduceConsumeLag: the bus mirrors per-partition produce and
// consume counts plus consumer lag into the registry, for topics declared
// both before and after SetMetrics.
func TestMetricsProduceConsumeLag(t *testing.T) {
	reg := metrics.NewRegistry()
	b := New()
	b.CreateTopic("early", 1) // instrumented retroactively
	b.SetMetrics(reg)
	b.CreateTopic("late", 2) // instrumented at creation

	for i := 0; i < 4; i++ {
		if _, _, err := b.Publish("early", "k", []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, _, err := b.Publish("late", "k", []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counter("bus_produced_total", "topic", "early", "partition", "0"); got != 4 {
		t.Errorf("early produced = %d, want 4", got)
	}
	if got := snap.CounterSum("bus_produced_total"); got != 10 {
		t.Errorf("produced sum = %d, want 10", got)
	}

	// Consume half the early topic via Seek-free polling, then check lag.
	c, err := b.NewConsumer("g1", "early")
	if err != nil {
		t.Fatal(err)
	}
	if msgs := c.TryPoll(0); len(msgs) != 4 {
		t.Fatalf("polled %d, want 4", len(msgs))
	}
	snap = reg.Snapshot()
	labels := []string{"group", "g1", "topic", "early", "partition", "0"}
	if got := snap.Counter("bus_consumed_total", labels...); got != 4 {
		t.Errorf("consumed = %d, want 4", got)
	}
	if got := snap.Gauge("bus_lag", labels...); got != 0 {
		t.Errorf("lag = %d, want 0", got)
	}

	// Publish two more without polling: lag gauge refreshes on next poll.
	b.Publish("early", "k", []byte("v"), nil)
	b.Publish("early", "k", []byte("v"), nil)
	c.TryPoll(1)
	if got := reg.Snapshot().Gauge("bus_lag", labels...); got != 1 {
		t.Errorf("lag after partial poll = %d, want 1", got)
	}
}

// TestTopicsAndPartitions covers the inventory accessors.
func TestTopicsAndPartitions(t *testing.T) {
	b := New()
	b.CreateTopic("a", 1)
	b.CreateTopic("b", 3)
	if got := b.Topics(); len(got) != 2 {
		t.Errorf("topics = %v", got)
	}
	n, err := b.Partitions("b")
	if err != nil || n != 3 {
		t.Errorf("partitions(b) = %d, %v", n, err)
	}
	if _, err := b.Partitions("nope"); err == nil {
		t.Error("unknown topic must fail")
	}
}

// TestBlockingPollWakesOnPublish: a consumer blocked in Poll wakes when a
// message arrives (the waitAny path).
func TestBlockingPollWakesOnPublish(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	c, err := b.NewConsumer("g", "t")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		b.Publish("t", "k", []byte("wake"), nil)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	msgs, err := c.Poll(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Value) != "wake" {
		t.Fatalf("msgs = %v", msgs)
	}
}
