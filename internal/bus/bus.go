// Package bus is the in-process message bus LogLens ships logs and
// control messages over — the substitution for Apache Kafka (§II uses
// Kafka "for shipping logs and communicating among different components").
// It preserves the Kafka semantics the system depends on: named topics
// split into partitions, strict ordering and monotone offsets within a
// partition, key-hash partitioning, consumer groups with shared offsets,
// and offset seeking for replay.
package bus

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"loglens/internal/clock"
	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// Message is one bus record.
type Message struct {
	// Topic and Partition locate the message; Offset is its position
	// within the partition.
	Topic     string
	Partition int
	Offset    int64
	// Key routes the message to a partition (same key, same partition).
	Key string
	// Value is the payload.
	Value []byte
	// Headers carry optional metadata (e.g. the heartbeat tag of §V-B).
	Headers map[string]string
	// Time is the publish wall-clock time.
	Time time.Time
}

// pollInterval bounds how long a blocking Poll waits before re-checking
// all subscribed partitions and its context.
const pollInterval = 50 * time.Millisecond

// Bus is the broker. It is safe for concurrent use.
type Bus struct {
	clk clock.Clock

	mu     sync.RWMutex
	topics map[string]*topic
	reg    *metrics.Registry
	events *obs.FlightRecorder

	groupsMu sync.Mutex
	groups   map[string]*group
}

type topic struct {
	name       string
	partitions []*partition
	rr         int // round-robin cursor for keyless publishes
}

// logChunkShift sizes the partition log's chunks (1<<logChunkShift
// messages each). A chunked append-only log never moves published
// messages: growth allocates a fresh chunk instead of doubling one huge
// slice, so a hot topic does not re-copy (and re-zero) its whole history
// every time the backing array fills.
const (
	logChunkShift = 10
	logChunkSize  = 1 << logChunkShift
	logChunkMask  = logChunkSize - 1
)

type partition struct {
	mu   sync.Mutex
	cond *sync.Cond
	// chunks is the partition log: offset o lives at
	// chunks[o>>logChunkShift][o&logChunkMask], and length is the next
	// offset to be assigned.
	chunks [][]Message
	length int64
	// produced counts appends; nil until the bus is instrumented.
	produced *metrics.Counter
}

// appendLocked appends one message to the chunked log. Caller holds p.mu.
func (p *partition) appendLocked(m Message) {
	ci := int(p.length >> logChunkShift)
	if ci == len(p.chunks) {
		p.chunks = append(p.chunks, make([]Message, 0, logChunkSize))
	}
	p.chunks[ci] = append(p.chunks[ci], m)
	p.length++
}

// copyRange returns a fresh slice holding offsets [offset, end). Caller
// holds p.mu and guarantees the range is within the log.
func (p *partition) copyRange(offset, end int64) []Message {
	out := make([]Message, 0, end-offset)
	for offset < end {
		chunk := p.chunks[offset>>logChunkShift]
		lo := offset & logChunkMask
		hi := int64(len(chunk))
		if rest := end - (offset - lo); rest < hi {
			hi = rest
		}
		out = append(out, chunk[lo:hi]...)
		offset += hi - lo
	}
	return out
}

// end returns the partition's end offset (the next to be assigned).
func (p *partition) end() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.length
}

func newPartition() *partition {
	p := &partition{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// New creates an empty broker on the wall clock.
func New() *Bus {
	return NewWithClock(clock.New())
}

// NewWithClock creates an empty broker stamping publish times from clk —
// the deterministic configuration used by tests and the chaos harness.
func NewWithClock(clk clock.Clock) *Bus {
	return &Bus{
		clk:    clk,
		topics: make(map[string]*topic),
		groups: make(map[string]*group),
	}
}

// SetMetrics installs the observability registry: per topic-partition
// produce counters (bus_produced_total), with consume counters and lag
// gauges added by consumers as they poll. Topics declared before or after
// the call are both instrumented. Call it during wiring, before traffic.
func (b *Bus) SetMetrics(reg *metrics.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reg = reg
	for _, t := range b.topics {
		t.instrument(reg)
	}
}

// SetRecorder installs a flight recorder capturing offset seeks (replay
// and chaos-injected restarts) at the source; nil disables.
func (b *Bus) SetRecorder(f *obs.FlightRecorder) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = f
}

// recorder returns the installed flight recorder (nil when disabled).
func (b *Bus) recorder() *obs.FlightRecorder {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.events
}

// instrument binds the produce counter of every partition. Caller holds
// b.mu.
func (t *topic) instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for i, p := range t.partitions {
		c := reg.Counter("bus_produced_total", "topic", t.name, "partition", strconv.Itoa(i))
		p.mu.Lock()
		p.produced = c
		p.mu.Unlock()
	}
}

// CreateTopic declares a topic with the given partition count. Creating an
// existing topic with the same partition count is a no-op; changing the
// count is an error.
func (b *Bus) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("bus: topic %q: partitions must be positive", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.topics[name]; ok {
		if len(t.partitions) != partitions {
			return fmt.Errorf("bus: topic %q exists with %d partitions", name, len(t.partitions))
		}
		return nil
	}
	t := &topic{name: name}
	for i := 0; i < partitions; i++ {
		t.partitions = append(t.partitions, newPartition())
	}
	t.instrument(b.reg)
	b.topics[name] = t
	return nil
}

// Topics lists the declared topic names.
func (b *Bus) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	return out
}

// Partitions returns a topic's partition count.
func (b *Bus) Partitions(topicName string) (int, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	return len(t.partitions), nil
}

func (b *Bus) topic(name string) (*topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("bus: unknown topic %q", name)
	}
	return t, nil
}

// Publish appends a message, choosing the partition by key hash (or round
// robin for the empty key). It returns the partition and offset assigned.
// The bus retains value and headers without copying (as a Kafka producer
// serializes them at send time); callers must not modify either after
// publishing.
func (b *Bus) Publish(topicName, key string, value []byte, headers map[string]string) (int, int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, 0, err
	}
	var pi int
	if key == "" {
		b.mu.Lock()
		pi = t.rr % len(t.partitions)
		t.rr++
		b.mu.Unlock()
	} else {
		// Inline FNV-1a: a hash.Hash32 per publish would allocate on
		// the hot producer path.
		h := uint32(2166136261)
		for i := 0; i < len(key); i++ {
			h ^= uint32(key[i])
			h *= 16777619
		}
		pi = int(h) % len(t.partitions)
	}
	off, err := b.publishTo(t, pi, key, value, headers)
	return pi, off, err
}

// PublishTo appends a message to an explicit partition — the custom
// partitioner hook used to fan heartbeat messages to every partition
// (§V-B).
func (b *Bus) PublishTo(topicName string, partition int, key string, value []byte, headers map[string]string) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, fmt.Errorf("bus: topic %q has no partition %d", topicName, partition)
	}
	return b.publishTo(t, partition, key, value, headers)
}

// Broadcast appends a copy of the message to every partition of the topic.
func (b *Bus) Broadcast(topicName, key string, value []byte, headers map[string]string) error {
	t, err := b.topic(topicName)
	if err != nil {
		return err
	}
	for i := range t.partitions {
		if _, err := b.publishTo(t, i, key, value, headers); err != nil {
			return err
		}
	}
	return nil
}

func (b *Bus) publishTo(t *topic, pi int, key string, value []byte, headers map[string]string) (int64, error) {
	p := t.partitions[pi]
	p.mu.Lock()
	defer p.mu.Unlock()
	// Value and headers are retained as passed — the Publish contract
	// transfers ownership, so no per-message defensive copies here.
	m := Message{
		Topic:     t.name,
		Partition: pi,
		Offset:    p.length,
		Key:       key,
		Value:     value,
		Headers:   headers,
		Time:      b.clk.Now(),
	}
	p.appendLocked(m)
	if p.produced != nil {
		p.produced.Inc()
	}
	p.cond.Broadcast()
	return m.Offset, nil
}

// EndOffset returns the next offset that will be assigned in a partition.
func (b *Bus) EndOffset(topicName string, partition int) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, fmt.Errorf("bus: topic %q has no partition %d", topicName, partition)
	}
	return t.partitions[partition].end(), nil
}

// read returns up to max messages from offset, blocking until at least one
// is available or the context is done.
func (p *partition) read(ctx context.Context, offset int64, max int) ([]Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.length <= offset {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Wake periodically so context cancellation is honored even
		// without new messages.
		done := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
			case <-done:
			}
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}()
		p.cond.Wait()
		close(done)
	}
	end := p.length
	if int64(max) > 0 && offset+int64(max) < end {
		end = offset + int64(max)
	}
	return p.copyRange(offset, end), nil
}

// tryRead returns up to max messages from offset without blocking.
func (p *partition) tryRead(offset int64, max int) []Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.length <= offset {
		return nil
	}
	end := p.length
	if max > 0 && offset+int64(max) < end {
		end = offset + int64(max)
	}
	return p.copyRange(offset, end)
}
