// Package bus is the in-process message bus LogLens ships logs and
// control messages over — the substitution for Apache Kafka (§II uses
// Kafka "for shipping logs and communicating among different components").
// It preserves the Kafka semantics the system depends on: named topics
// split into partitions, strict ordering and monotone offsets within a
// partition, key-hash partitioning, consumer groups with shared offsets,
// and offset seeking for replay.
package bus

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"loglens/internal/clock"
	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// Message is one bus record.
type Message struct {
	// Topic and Partition locate the message; Offset is its position
	// within the partition.
	Topic     string
	Partition int
	Offset    int64
	// Key routes the message to a partition (same key, same partition).
	Key string
	// Value is the payload.
	Value []byte
	// Headers carry optional metadata (e.g. the heartbeat tag of §V-B).
	Headers map[string]string
	// Time is the publish wall-clock time.
	Time time.Time
}

// pollInterval bounds how long a blocking Poll waits before re-checking
// all subscribed partitions and its context.
const pollInterval = 50 * time.Millisecond

// Bus is the broker. It is safe for concurrent use.
type Bus struct {
	clk clock.Clock

	mu     sync.RWMutex
	topics map[string]*topic
	reg    *metrics.Registry
	events *obs.FlightRecorder

	groupsMu sync.Mutex
	groups   map[string]*group
}

type topic struct {
	name       string
	partitions []*partition
	rr         int // round-robin cursor for keyless publishes
}

type partition struct {
	mu   sync.Mutex
	cond *sync.Cond
	log  []Message
	// produced counts appends; nil until the bus is instrumented.
	produced *metrics.Counter
}

func newPartition() *partition {
	p := &partition{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// New creates an empty broker on the wall clock.
func New() *Bus {
	return NewWithClock(clock.New())
}

// NewWithClock creates an empty broker stamping publish times from clk —
// the deterministic configuration used by tests and the chaos harness.
func NewWithClock(clk clock.Clock) *Bus {
	return &Bus{
		clk:    clk,
		topics: make(map[string]*topic),
		groups: make(map[string]*group),
	}
}

// SetMetrics installs the observability registry: per topic-partition
// produce counters (bus_produced_total), with consume counters and lag
// gauges added by consumers as they poll. Topics declared before or after
// the call are both instrumented. Call it during wiring, before traffic.
func (b *Bus) SetMetrics(reg *metrics.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reg = reg
	for _, t := range b.topics {
		t.instrument(reg)
	}
}

// SetRecorder installs a flight recorder capturing offset seeks (replay
// and chaos-injected restarts) at the source; nil disables.
func (b *Bus) SetRecorder(f *obs.FlightRecorder) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = f
}

// recorder returns the installed flight recorder (nil when disabled).
func (b *Bus) recorder() *obs.FlightRecorder {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.events
}

// instrument binds the produce counter of every partition. Caller holds
// b.mu.
func (t *topic) instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for i, p := range t.partitions {
		c := reg.Counter("bus_produced_total", "topic", t.name, "partition", strconv.Itoa(i))
		p.mu.Lock()
		p.produced = c
		p.mu.Unlock()
	}
}

// CreateTopic declares a topic with the given partition count. Creating an
// existing topic with the same partition count is a no-op; changing the
// count is an error.
func (b *Bus) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("bus: topic %q: partitions must be positive", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.topics[name]; ok {
		if len(t.partitions) != partitions {
			return fmt.Errorf("bus: topic %q exists with %d partitions", name, len(t.partitions))
		}
		return nil
	}
	t := &topic{name: name}
	for i := 0; i < partitions; i++ {
		t.partitions = append(t.partitions, newPartition())
	}
	t.instrument(b.reg)
	b.topics[name] = t
	return nil
}

// Topics lists the declared topic names.
func (b *Bus) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	return out
}

// Partitions returns a topic's partition count.
func (b *Bus) Partitions(topicName string) (int, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	return len(t.partitions), nil
}

func (b *Bus) topic(name string) (*topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("bus: unknown topic %q", name)
	}
	return t, nil
}

// Publish appends a message, choosing the partition by key hash (or round
// robin for the empty key). It returns the partition and offset assigned.
func (b *Bus) Publish(topicName, key string, value []byte, headers map[string]string) (int, int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, 0, err
	}
	var pi int
	if key == "" {
		b.mu.Lock()
		pi = t.rr % len(t.partitions)
		t.rr++
		b.mu.Unlock()
	} else {
		h := fnv.New32a()
		h.Write([]byte(key))
		pi = int(h.Sum32()) % len(t.partitions)
	}
	off, err := b.publishTo(t, pi, key, value, headers)
	return pi, off, err
}

// PublishTo appends a message to an explicit partition — the custom
// partitioner hook used to fan heartbeat messages to every partition
// (§V-B).
func (b *Bus) PublishTo(topicName string, partition int, key string, value []byte, headers map[string]string) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, fmt.Errorf("bus: topic %q has no partition %d", topicName, partition)
	}
	return b.publishTo(t, partition, key, value, headers)
}

// Broadcast appends a copy of the message to every partition of the topic.
func (b *Bus) Broadcast(topicName, key string, value []byte, headers map[string]string) error {
	t, err := b.topic(topicName)
	if err != nil {
		return err
	}
	for i := range t.partitions {
		if _, err := b.publishTo(t, i, key, value, headers); err != nil {
			return err
		}
	}
	return nil
}

func (b *Bus) publishTo(t *topic, pi int, key string, value []byte, headers map[string]string) (int64, error) {
	p := t.partitions[pi]
	p.mu.Lock()
	defer p.mu.Unlock()
	m := Message{
		Topic:     t.name,
		Partition: pi,
		Offset:    int64(len(p.log)),
		Key:       key,
		Value:     append([]byte(nil), value...),
		Time:      b.clk.Now(),
	}
	if len(headers) > 0 {
		m.Headers = make(map[string]string, len(headers))
		for k, v := range headers {
			m.Headers[k] = v
		}
	}
	p.log = append(p.log, m)
	if p.produced != nil {
		p.produced.Inc()
	}
	p.cond.Broadcast()
	return m.Offset, nil
}

// EndOffset returns the next offset that will be assigned in a partition.
func (b *Bus) EndOffset(topicName string, partition int) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, fmt.Errorf("bus: topic %q has no partition %d", topicName, partition)
	}
	p := t.partitions[partition]
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.log)), nil
}

// read returns up to max messages from offset, blocking until at least one
// is available or the context is done.
func (p *partition) read(ctx context.Context, offset int64, max int) ([]Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for int64(len(p.log)) <= offset {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Wake periodically so context cancellation is honored even
		// without new messages.
		done := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
			case <-done:
			}
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}()
		p.cond.Wait()
		close(done)
	}
	end := int64(len(p.log))
	if int64(max) > 0 && offset+int64(max) < end {
		end = offset + int64(max)
	}
	out := make([]Message, end-offset)
	copy(out, p.log[offset:end])
	return out, nil
}

// tryRead returns up to max messages from offset without blocking.
func (p *partition) tryRead(offset int64, max int) []Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int64(len(p.log)) <= offset {
		return nil
	}
	end := int64(len(p.log))
	if max > 0 && offset+int64(max) < end {
		end = offset + int64(max)
	}
	out := make([]Message, end-offset)
	copy(out, p.log[offset:end])
	return out
}
