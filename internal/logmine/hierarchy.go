package logmine

import (
	"loglens/internal/datatype"
	"loglens/internal/grok"
)

// The original LogMine algorithm is hierarchical: after level-0 clustering
// of raw logs, the discovered patterns themselves are clustered with
// progressively relaxed thresholds, producing a pattern tree from most
// specific to most general. Operators pick the granularity that fits the
// analysis; LogLens uses level 0 for parsing, but exposes the hierarchy
// for model review (a coarse level shows the corpus's broad shape).

// HierarchyConfig tunes hierarchical pattern merging.
type HierarchyConfig struct {
	// BaseDist is the level-1 distance threshold between patterns
	// (default 0.5).
	BaseDist float64
	// Relax multiplies the threshold per level (default 1.3).
	Relax float64
	// MaxLevels caps the hierarchy height above level 0 (default 4).
	MaxLevels int
}

func (c *HierarchyConfig) setDefaults() {
	if c.BaseDist == 0 {
		c.BaseDist = 0.5
	}
	if c.Relax == 0 {
		c.Relax = 1.3
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = 4
	}
}

// Level is one hierarchy level.
type Level struct {
	// Patterns are this level's merged patterns.
	Patterns *grok.Set
	// ParentOf maps a pattern ID of the level below to its pattern ID
	// at this level (nil for level 0).
	ParentOf map[int]int
}

// BuildHierarchy clusters the pattern set upward until everything merges
// into one pattern or MaxLevels is reached. Level 0 is the input set.
func BuildHierarchy(set *grok.Set, cfg HierarchyConfig) []Level {
	cfg.setDefaults()
	levels := []Level{{Patterns: set}}
	cur := set
	dist := cfg.BaseDist
	for lvl := 0; lvl < cfg.MaxLevels && cur.Len() > 1; lvl++ {
		next, parents, merged := clusterPatterns(cur, dist)
		if !merged {
			// Nothing merged at this threshold: relax and retry on
			// the same level (counted against MaxLevels).
			dist *= cfg.Relax
			continue
		}
		levels = append(levels, Level{Patterns: next, ParentOf: parents})
		cur = next
		dist *= cfg.Relax
	}
	return levels
}

// clusterPatterns one-pass clusters the set's patterns under the
// threshold, merging members into generalized patterns. It reports whether
// any merge happened.
func clusterPatterns(set *grok.Set, maxDist float64) (*grok.Set, map[int]int, bool) {
	type cluster struct {
		rep    *grok.Pattern
		merged []grok.Token
		member []int
	}
	var clusters []*cluster
	for _, p := range set.Patterns() {
		placed := false
		for _, cl := range clusters {
			if patternDistance(cl.rep, p) <= maxDist {
				cl.merged = mergePatternTokens(cl.merged, p.Tokens)
				cl.member = append(cl.member, p.ID)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, &cluster{
				rep:    p,
				merged: append([]grok.Token(nil), p.Tokens...),
				member: []int{p.ID},
			})
		}
	}

	out := grok.NewSet()
	parents := make(map[int]int)
	merged := false
	for _, cl := range clusters {
		toks := cl.merged
		if len(cl.member) > 1 {
			// Merged tokens carry names from several parents, which
			// can collide; strip them so the set renumbers cleanly.
			toks = append([]grok.Token(nil), toks...)
			for i := range toks {
				if toks[i].IsField {
					toks[i].Name = ""
				}
			}
		}
		np := &grok.Pattern{Tokens: toks}
		out.Add(np)
		for _, id := range cl.member {
			parents[id] = np.ID
		}
		if len(cl.member) > 1 {
			merged = true
		}
	}
	return out, parents, merged
}

// patternDistance is the clustering distance between two patterns,
// treating fields as variable tokens: equal literals score K1, any
// field/field pair of compatible kinds scores K2, field/literal pairs and
// incompatible types score K3, unequal WORD literals are penalized as in
// log clustering.
func patternDistance(a, b *grok.Pattern) float64 {
	const (
		k1, k2, k3, wordPenalty = 1.0, 0.8, 0.25, -2.0
	)
	n := len(a.Tokens)
	if len(b.Tokens) < n {
		n = len(b.Tokens)
	}
	maxLen := len(a.Tokens)
	if len(b.Tokens) > maxLen {
		maxLen = len(b.Tokens)
	}
	if maxLen == 0 {
		return 0
	}
	score := 0.0
	for i := 0; i < n; i++ {
		at, bt := a.Tokens[i], b.Tokens[i]
		switch {
		case !at.IsField && !bt.IsField:
			if at.Literal == bt.Literal {
				score += k1
			} else if datatype.Detect(at.Literal) == datatype.Word && datatype.Detect(bt.Literal) == datatype.Word {
				score += wordPenalty
			} else {
				score += k3
			}
		case at.IsField && bt.IsField:
			if at.Type == bt.Type {
				score += k1
			} else {
				score += k2
			}
		default:
			score += k3
		}
	}
	return 1 - score/float64(maxLen)
}

// mergePatternTokens generalizes two aligned pattern-token sequences via
// the same alignment machinery used for log merging: agreeing literals
// stay literal, disagreements become fields, gaps become wildcards.
func mergePatternTokens(a, b []grok.Token) []grok.Token {
	// Render b as pseudo-log tokens with types so the existing
	// alignment merge applies: fields render as their type's
	// placeholder with the field's type.
	tokens := make([]string, len(b))
	types := make([]datatype.Type, len(b))
	for i, t := range b {
		if t.IsField {
			tokens[i] = "%{" + t.Type.String() + "}"
			types[i] = t.Type
		} else {
			tokens[i] = t.Literal
			types[i] = datatype.Detect(t.Literal)
		}
	}
	out := mergeAligned(a, tokens, types)
	// Any literal "%{TYPE}" placeholders that survived the merge are
	// really fields.
	for i, t := range out {
		if !t.IsField && len(t.Literal) > 3 && t.Literal[0] == '%' && t.Literal[1] == '{' {
			if typ, err := datatype.Parse(t.Literal[2 : len(t.Literal)-1]); err == nil {
				out[i] = grok.FieldToken(typ, "")
			}
		}
	}
	return out
}
