package logmine

import (
	"fmt"
	"strings"
	"testing"

	"loglens/internal/datatype"
	"loglens/internal/grok"
	"loglens/internal/preprocess"
)

func addLine(c *Clusterer, pp *preprocess.Preprocessor, line string) {
	r := pp.Process(line)
	c.Add(r.Tokens, r.Types)
}

func TestClusterSimilarLogs(t *testing.T) {
	pp := preprocess.New(nil, nil)
	c := New(Config{})
	lines := []string{
		"2016/02/23 09:00:31 127.0.0.1 login user1",
		"2016/02/23 09:00:35 10.0.0.7 login user2",
		"2016/02/23 09:00:36 10.0.0.9 login admin9",
		"2016/02/23 09:01:02 127.0.0.1 logout user1",
		"2016/02/23 09:01:10 10.0.0.7 logout user2",
	}
	for _, l := range lines {
		addLine(c, pp, l)
	}
	if got := c.NumClusters(); got != 2 {
		t.Fatalf("NumClusters = %d, want 2 (login and logout)", got)
	}
	set := c.Patterns()
	if set.Len() != 2 {
		t.Fatalf("patterns = %d", set.Len())
	}
	p1, _ := set.Get(1)
	sig := p1.Signature()
	if sig != "DATETIME IP WORD NOTSPACE" && sig != "DATETIME IP NOTSPACE NOTSPACE" {
		t.Errorf("unexpected signature %q for %q", sig, p1.String())
	}
	// "login" stays literal within its cluster.
	if !strings.Contains(p1.String(), "login") {
		t.Errorf("pattern lost stable literal: %q", p1.String())
	}
}

func TestExactDuplicatesCount(t *testing.T) {
	pp := preprocess.New(nil, nil)
	c := New(Config{})
	for i := 0; i < 5; i++ {
		addLine(c, pp, "service heartbeat ok")
	}
	if c.NumClusters() != 1 {
		t.Fatalf("NumClusters = %d", c.NumClusters())
	}
	if got := c.ClusterSizes()[0]; got != 5 {
		t.Errorf("cluster size = %d, want 5", got)
	}
	if c.TotalLogs() != 5 {
		t.Errorf("TotalLogs = %d", c.TotalLogs())
	}
	// All-literal pattern: exact logs stay fully literal.
	p, _ := c.Patterns().Get(1)
	if p.FieldCount() != 0 {
		t.Errorf("identical logs must give an all-literal pattern, got %q", p.String())
	}
}

func TestDistinctStructuresSeparate(t *testing.T) {
	pp := preprocess.New(nil, nil)
	c := New(Config{})
	addLine(c, pp, "connection from 10.0.0.1 port 8080 established")
	addLine(c, pp, "disk sda1 usage 93.5 percent threshold exceeded alarm")
	addLine(c, pp, "user root executed shutdown")
	if c.NumClusters() != 3 {
		t.Fatalf("structurally distinct logs must not merge: %d clusters", c.NumClusters())
	}
}

func TestVariableFieldTyping(t *testing.T) {
	pp := preprocess.New(nil, nil)
	c := New(Config{})
	addLine(c, pp, "request took 15 ms")
	addLine(c, pp, "request took 92 ms")
	addLine(c, pp, "request took 3 ms")
	set := c.Patterns()
	if set.Len() != 1 {
		t.Fatalf("clusters = %d", set.Len())
	}
	p, _ := set.Get(1)
	// The varying token must be a NUMBER field; the rest literal.
	if p.FieldCount() != 1 {
		t.Fatalf("pattern %q, want exactly one field", p.String())
	}
	i := 2
	if !p.Tokens[i].IsField || p.Tokens[i].Type != datatype.Number {
		t.Errorf("token %d = %v, want NUMBER field (pattern %q)", i, p.Tokens[i], p.String())
	}
	if fields, ok := p.Match(strings.Fields("request took 77 ms")); !ok || fields[0].Value != "77" {
		t.Errorf("discovered pattern must parse unseen member: %v %v", fields, ok)
	}
}

func TestTypeWidening(t *testing.T) {
	pp := preprocess.New(nil, nil)
	c := New(Config{})
	// Mixed value kinds in the same slot: WORD vs NUMBER widens to
	// NOTSPACE.
	addLine(c, pp, "job alpha finished with status ok")
	addLine(c, pp, "job beta7 finished with status 1")
	set := c.Patterns()
	if set.Len() != 1 {
		t.Fatalf("clusters = %d", set.Len())
	}
	p, _ := set.Get(1)
	last := p.Tokens[len(p.Tokens)-1]
	if !last.IsField || last.Type != datatype.NotSpace {
		t.Errorf("status slot should widen to NOTSPACE: %q", p.String())
	}
}

func TestGapsBecomeAnyData(t *testing.T) {
	c := New(Config{MaxDist: 0.5})
	pp := preprocess.New(nil, nil)
	addLine(c, pp, "error while writing block 5 to disk sda")
	addLine(c, pp, "error while writing block 5 to disk sda retrying")
	if c.NumClusters() != 1 {
		t.Fatalf("clusters = %d, want 1", c.NumClusters())
	}
	p, _ := c.Patterns().Get(1)
	if !p.HasAnyData() {
		t.Errorf("length-varying cluster must contain ANYDATA: %q", p.String())
	}
	// Both member shapes must parse.
	for _, l := range []string{
		"error while writing block 5 to disk sda",
		"error while writing block 5 to disk sda retrying",
	} {
		if !p.Matches(strings.Fields(l)) {
			t.Errorf("merged pattern %q does not match member %q", p.String(), l)
		}
	}
}

func TestPatternsCoverMembers(t *testing.T) {
	// Property: every training log parses under the discovered set.
	pp := preprocess.New(nil, nil)
	c := New(Config{})
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines,
			fmt.Sprintf("2016/02/23 09:%02d:%02d 10.0.0.%d login user%d", i%60, (i*7)%60, i%250+1, i),
			fmt.Sprintf("cache evicted %d entries in %d ms", i*3, i%9+1),
			fmt.Sprintf("GET /api/v%d/items rc 200 bytes %d", i%3+1, 100+i),
		)
	}
	for _, l := range lines {
		addLine(c, pp, l)
	}
	set := c.Patterns()
	ppc := pp.Clone()
	for _, l := range lines {
		r := ppc.Process(l)
		matched := false
		for _, p := range set.Patterns() {
			if p.Matches(r.Tokens) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("training log %q not covered by discovered patterns", l)
		}
	}
	if set.Len() > 6 {
		t.Errorf("expected tight clustering, got %d patterns", set.Len())
	}
}

func TestHeuristicNamesApplied(t *testing.T) {
	pp := preprocess.New(nil, nil)
	c := New(Config{})
	addLine(c, pp, "stats PDU = 17 rc = 0")
	addLine(c, pp, "stats PDU = 23 rc = 1")
	p, _ := c.Patterns().Get(1)
	if p.Field("PDU") < 0 {
		t.Errorf("heuristic rename missing: %q", p.String())
	}
	if p.Field("rc") < 0 {
		t.Errorf("heuristic rename missing: %q", p.String())
	}
}

func TestMergeAlignedDirect(t *testing.T) {
	pat := []grok.Token{
		grok.LiteralToken("a"),
		grok.LiteralToken("b"),
		grok.LiteralToken("c"),
	}
	got := mergeAligned(pat, []string{"a", "x", "c"}, []datatype.Type{datatype.Word, datatype.Word, datatype.Word})
	if len(got) != 3 || got[0].Literal != "a" || !got[1].IsField || got[2].Literal != "c" {
		t.Errorf("merge = %v", got)
	}
	if got[1].Type != datatype.Word {
		t.Errorf("substituted slot type = %v, want WORD", got[1].Type)
	}
}

func TestMergeCollapsesAdjacentAnyData(t *testing.T) {
	pat := []grok.Token{grok.LiteralToken("start"), grok.LiteralToken("end")}
	toks := []string{"start", "x", "y", "z", "end"}
	typs := make([]datatype.Type, len(toks))
	for i, tk := range toks {
		typs[i] = datatype.Detect(tk)
	}
	got := mergeAligned(pat, toks, typs)
	anyCount := 0
	for _, tk := range got {
		if tk.IsField && tk.Type == datatype.AnyData {
			anyCount++
		}
	}
	if anyCount != 1 {
		t.Errorf("adjacent wildcards must collapse, got %v", got)
	}
}

func TestBuildHierarchy(t *testing.T) {
	pp := preprocess.New(nil, nil)
	c := New(Config{})
	// Four level-0 templates in two natural families: job lifecycle and
	// volume lifecycle.
	lines := []string{
		"job j-1 submitted queue q1",
		"job j-2 submitted queue q2",
		"job j-1 completed rc 0",
		"job j-2 completed rc 1",
		"volume v-1 attach requested size 8",
		"volume v-2 attach requested size 16",
		"volume v-1 attach completed lun 3",
		"volume v-2 attach completed lun 4",
	}
	for _, l := range lines {
		addLine(c, pp, l)
	}
	level0 := c.Patterns()
	if level0.Len() != 4 {
		for _, p := range level0.Patterns() {
			t.Logf("level0: %s", p)
		}
		t.Fatalf("level 0 = %d patterns, want 4", level0.Len())
	}

	levels := BuildHierarchy(level0, HierarchyConfig{})
	if len(levels) < 2 {
		t.Fatalf("hierarchy has %d levels, want merging to happen", len(levels))
	}
	top := levels[len(levels)-1].Patterns
	if top.Len() >= level0.Len() {
		t.Fatalf("top level has %d patterns, want fewer than %d", top.Len(), level0.Len())
	}
	// Every level-0 pattern has a parent chain to the top.
	for _, p := range level0.Patterns() {
		id := p.ID
		for lvl := 1; lvl < len(levels); lvl++ {
			parent, ok := levels[lvl].ParentOf[id]
			if !ok {
				t.Fatalf("pattern %d has no parent at level %d", id, lvl)
			}
			if _, ok := levels[lvl].Patterns.Get(parent); !ok {
				t.Fatalf("parent %d missing from level %d", parent, lvl)
			}
			id = parent
		}
	}
	// Generalized patterns still match their descendants' logs.
	ppc := pp.Clone()
	for _, line := range lines {
		r := ppc.Process(line)
		matched := false
		for _, p := range top.Patterns() {
			if p.Matches(r.Tokens) {
				matched = true
				break
			}
		}
		if !matched {
			for _, p := range top.Patterns() {
				t.Logf("top: %s", p)
			}
			t.Fatalf("top-level patterns do not cover %q", line)
		}
	}
}

func TestHierarchySinglePattern(t *testing.T) {
	pp := preprocess.New(nil, nil)
	c := New(Config{})
	addLine(c, pp, "only one shape 42")
	levels := BuildHierarchy(c.Patterns(), HierarchyConfig{})
	if len(levels) != 1 {
		t.Fatalf("single pattern must not grow a hierarchy: %d levels", len(levels))
	}
}
