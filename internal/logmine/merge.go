package logmine

import (
	"loglens/internal/datatype"
	"loglens/internal/grok"
)

// Alignment scores for merging a new member into a cluster pattern.
// Gaps are penalized more than substitutions so variable fields are
// preferred over ANYDATA wildcards.
const (
	scoreEqualLiteral = 4  // literal token identical to the log token
	scoreFieldMatch   = 2  // field whose datatype admits the log token
	scoreSameType     = 2  // literal of the same datatype as the log token
	scoreAnyData      = 1  // wildcard absorbs anything
	scoreWiden        = 1  // field whose datatype must widen to admit the token
	scoreSub          = -1 // incompatible substitution
	scoreGap          = -2 // insertion/deletion
)

// mergeAligned merges one log (tokens with datatypes) into the cluster's
// accumulated pattern using global sequence alignment (Needleman-Wunsch).
// Aligned equal literals stay literal; disagreeing alignments become
// variable fields typed with the datatype join; gaps become ANYDATA
// wildcards. Adjacent ANYDATA tokens collapse into one.
func mergeAligned(pattern []grok.Token, tokens []string, types []datatype.Type) []grok.Token {
	n, m := len(pattern), len(tokens)
	// score[i][j]: best alignment score of pattern[:i] vs tokens[:j].
	score := make([][]int, n+1)
	move := make([][]byte, n+1) // 'd' diag, 'u' up (pattern gap... pattern token unmatched), 'l' left (log token unmatched)
	for i := range score {
		score[i] = make([]int, m+1)
		move[i] = make([]byte, m+1)
	}
	for i := 1; i <= n; i++ {
		score[i][0] = score[i-1][0] + scoreGap
		move[i][0] = 'u'
	}
	for j := 1; j <= m; j++ {
		score[0][j] = score[0][j-1] + scoreGap
		move[0][j] = 'l'
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			diag := score[i-1][j-1] + pairScore(pattern[i-1], tokens[j-1], types[j-1])
			up := score[i-1][j] + scoreGap
			left := score[i][j-1] + scoreGap
			best, mv := diag, byte('d')
			if up > best {
				best, mv = up, 'u'
			}
			if left > best {
				best, mv = left, 'l'
			}
			score[i][j] = best
			move[i][j] = mv
		}
	}

	// Traceback, building the merged pattern back to front.
	out := make([]grok.Token, 0, n+2)
	i, j := n, m
	for i > 0 || j > 0 {
		switch move[i][j] {
		case 'd':
			out = append(out, mergePair(pattern[i-1], tokens[j-1], types[j-1]))
			i--
			j--
		case 'u':
			// Pattern token absent from this log: wildcard.
			out = append(out, grok.FieldToken(datatype.AnyData, fieldName(pattern[i-1])))
			i--
		default: // 'l'
			// Log token absent from the pattern: wildcard.
			out = append(out, grok.FieldToken(datatype.AnyData, ""))
			j--
		}
	}
	// Reverse into reading order, collapsing adjacent ANYDATA tokens.
	merged := make([]grok.Token, 0, len(out))
	for k := len(out) - 1; k >= 0; k-- {
		t := out[k]
		if t.IsField && t.Type == datatype.AnyData && len(merged) > 0 {
			last := merged[len(merged)-1]
			if last.IsField && last.Type == datatype.AnyData {
				continue
			}
		}
		merged = append(merged, t)
	}
	return merged
}

func pairScore(pt grok.Token, tok string, typ datatype.Type) int {
	if pt.IsField {
		if pt.Type == datatype.AnyData {
			return scoreAnyData
		}
		if datatype.Matches(pt.Type, tok) {
			return scoreFieldMatch
		}
		// A single-token field can always widen (via Join) to admit
		// the token; prefer that over a gap, below a clean match.
		return scoreWiden
	}
	if pt.Literal == tok {
		return scoreEqualLiteral
	}
	if datatype.Detect(pt.Literal) == typ {
		return scoreSameType
	}
	return scoreSub
}

// mergePair combines an aligned (pattern token, log token) pair into the
// merged pattern token.
func mergePair(pt grok.Token, tok string, typ datatype.Type) grok.Token {
	if !pt.IsField {
		if pt.Literal == tok {
			return pt
		}
		// Two different concrete values: becomes a variable field
		// typed by the join of both datatypes.
		return grok.FieldToken(datatype.Join(datatype.Detect(pt.Literal), typ), "")
	}
	if pt.Type == datatype.AnyData {
		return pt
	}
	joined := datatype.Join(pt.Type, typ)
	if joined == pt.Type {
		return pt
	}
	return grok.FieldToken(joined, fieldName(pt))
}

func fieldName(t grok.Token) string {
	if t.IsField {
		return t.Name
	}
	return ""
}
