// Package logmine implements pattern discovery by clustering similar logs
// (§III-A3), following the LogMine algorithm the paper builds on: a
// one-pass clustering of preprocessed logs under a normalized similarity
// distance, followed by merging each cluster's members into a single GROK
// pattern via sequence alignment. Aligned tokens that agree stay literal;
// tokens that disagree become variable fields typed by the join of their
// datatypes; alignment gaps become ANYDATA wildcards.
package logmine

import (
	"strings"

	"loglens/internal/datatype"
	"loglens/internal/grok"
)

// Config tunes the clusterer.
type Config struct {
	// MaxDist is the clustering distance threshold: a log joins the
	// first cluster whose representative is within MaxDist. Smaller
	// values produce more, tighter patterns. Defaults to 0.4.
	MaxDist float64

	// K1 is the per-token score for exactly equal tokens (default 1.0).
	K1 float64

	// K2 is the per-token score for unequal tokens of the same
	// variable-ish datatype — NUMBER, IP, DATETIME, NOTSPACE — which
	// are almost certainly two values of one variable field
	// (default 0.8).
	K2 float64

	// K3 is the per-token score for tokens of different datatypes,
	// which can still merge into a widened variable field
	// (default 0.25).
	K3 float64

	// WordMismatch is the per-token score for two unequal WORD tokens.
	// Distinct words are the strongest structural signal that two logs
	// come from different templates ("login" vs "logout"), so the
	// default is a penalty of -2.0. A zero value selects the default.
	WordMismatch float64
}

func (c *Config) setDefaults() {
	if c.MaxDist == 0 {
		c.MaxDist = 0.4
	}
	if c.K1 == 0 {
		c.K1 = 1.0
	}
	if c.K2 == 0 {
		c.K2 = 0.8
	}
	if c.K3 == 0 {
		c.K3 = 0.25
	}
	if c.WordMismatch == 0 {
		c.WordMismatch = -2.0
	}
}

// cluster is one discovered log group: the representative (first member)
// used for distance computation, and the merged pattern accumulated over
// all members.
type cluster struct {
	repTokens []string
	repTypes  []datatype.Type
	merged    []grok.Token
	count     int
}

// Clusterer performs one-pass clustering of preprocessed logs.
// It is not safe for concurrent use.
type Clusterer struct {
	cfg Config

	clusters []*cluster

	// byLen buckets cluster indices by representative token count: two
	// token sequences whose lengths differ enough can never be within
	// MaxDist, so only nearby lengths are candidates.
	byLen map[int][]int

	// exact maps a joined token string to its cluster index, to
	// short-circuit verbatim repeats.
	exact map[string]int
}

// New constructs a Clusterer.
func New(cfg Config) *Clusterer {
	cfg.setDefaults()
	return &Clusterer{
		cfg:   cfg,
		byLen: make(map[int][]int),
		exact: make(map[string]int),
	}
}

// NumClusters returns the number of clusters discovered so far.
func (c *Clusterer) NumClusters() int { return len(c.clusters) }

// TotalLogs returns the number of logs added so far.
func (c *Clusterer) TotalLogs() int {
	n := 0
	for _, cl := range c.clusters {
		n += cl.count
	}
	return n
}

// Add clusters one preprocessed log (tokens plus their datatypes; the two
// slices must have equal length). The log joins the first cluster within
// MaxDist of its representative, or founds a new cluster.
func (c *Clusterer) Add(tokens []string, types []datatype.Type) {
	key := strings.Join(tokens, "\x00")
	if idx, ok := c.exact[key]; ok {
		c.clusters[idx].count++
		return
	}

	best := c.findCluster(tokens, types)
	if best < 0 {
		cl := &cluster{
			repTokens: append([]string(nil), tokens...),
			repTypes:  append([]datatype.Type(nil), types...),
			merged:    tokensToPattern(tokens, types),
			count:     1,
		}
		c.clusters = append(c.clusters, cl)
		idx := len(c.clusters) - 1
		c.byLen[len(tokens)] = append(c.byLen[len(tokens)], idx)
		c.exact[key] = idx
		return
	}

	cl := c.clusters[best]
	cl.count++
	cl.merged = mergeAligned(cl.merged, tokens, types)
	c.exact[key] = best
}

// findCluster returns the index of the first cluster within MaxDist, or
// -1. Only clusters whose representative length could possibly be within
// the threshold are compared.
func (c *Clusterer) findCluster(tokens []string, types []datatype.Type) int {
	n := len(tokens)
	if n == 0 {
		return -1
	}
	// dist >= 1 - min(n,m)/max(n,m); bound the candidate lengths.
	lo := int(float64(n) * (1 - c.cfg.MaxDist))
	hi := n
	if c.cfg.MaxDist < 1 {
		hi = int(float64(n) / (1 - c.cfg.MaxDist))
	} else {
		hi = n * 4
	}
	for m := lo; m <= hi; m++ {
		for _, idx := range c.byLen[m] {
			cl := c.clusters[idx]
			if c.distance(tokens, types, cl.repTokens, cl.repTypes) <= c.cfg.MaxDist {
				return idx
			}
		}
	}
	return -1
}

// distance is the LogMine normalized similarity distance:
//
//	d(P,Q) = 1 - sum(score(p_i, q_i)) / max(|P|, |Q|)
//
// where score is K1 for equal tokens, WordMismatch for two unequal WORD
// tokens, K2 for other equal datatypes, and K3 otherwise. Positions beyond
// the shorter log contribute nothing.
func (c *Clusterer) distance(aTok []string, aTyp []datatype.Type, bTok []string, bTyp []datatype.Type) float64 {
	n := len(aTok)
	if len(bTok) < n {
		n = len(bTok)
	}
	maxLen := len(aTok)
	if len(bTok) > maxLen {
		maxLen = len(bTok)
	}
	if maxLen == 0 {
		return 0
	}
	score := 0.0
	for i := 0; i < n; i++ {
		switch {
		case aTok[i] == bTok[i]:
			score += c.cfg.K1
		case aTyp[i] == bTyp[i]:
			if aTyp[i] == datatype.Word {
				score += c.cfg.WordMismatch
			} else {
				score += c.cfg.K2
			}
		default:
			score += c.cfg.K3
		}
	}
	return 1 - score/(c.cfg.K1*float64(maxLen))
}

// tokensToPattern seeds a cluster's merged pattern from its first member:
// every token starts literal.
func tokensToPattern(tokens []string, types []datatype.Type) []grok.Token {
	out := make([]grok.Token, len(tokens))
	for i, tok := range tokens {
		out[i] = grok.LiteralToken(tok)
		_ = types[i]
	}
	return out
}

// Patterns finalizes clustering: each cluster's merged token sequence
// becomes a GROK pattern, added to a fresh Set (which assigns pattern and
// field IDs), with heuristic field names applied (§III-A4).
func (c *Clusterer) Patterns() *grok.Set {
	set := grok.NewSet()
	for _, cl := range c.clusters {
		p := &grok.Pattern{Tokens: append([]grok.Token(nil), cl.merged...)}
		set.Add(p)
		p.ApplyHeuristicNames()
	}
	return set
}

// ClusterSizes returns the member count of each cluster in discovery
// order, aligned with the pattern IDs assigned by Patterns (ID = index+1).
func (c *Clusterer) ClusterSizes() []int {
	out := make([]int, len(c.clusters))
	for i, cl := range c.clusters {
		out[i] = cl.count
	}
	return out
}
