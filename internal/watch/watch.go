// Package watch is the terminal operator dashboard behind the
// `loglens watch` subcommand: a dependency-free ANSI renderer over the
// dashboard server's public endpoints. It subscribes to the SSE metrics
// stream (GET /api/metrics/stream) for live snapshots and polls the
// flight recorder (GET /api/events) and health probes (GET /healthz)
// alongside, deriving everything it displays — throughput sparkline,
// per-stage latency percentiles, freshness watermark lag tables,
// per-tenant shed counts — client-side from the metrics snapshot, so it
// works against any LogLens build that serves the stream.
//
// The package splits the pure parts (SSE frame parsing, the Model state
// machine, frame rendering) from the network loop in cmd/loglens, so
// the whole dashboard is testable against a recorded SSE fixture with
// no live server.
package watch

import (
	"bufio"
	"bytes"
	"io"
)

// ReadStream parses a text/event-stream body, calling fn with the
// payload of each complete data frame. Multi-line data fields are
// joined with newlines per the SSE spec; comment and non-data fields
// are ignored. ReadStream returns when the stream ends, when fn returns
// false, or on a read error.
func ReadStream(r io.Reader, fn func(data []byte) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var data []byte
	have := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			// Blank line dispatches the accumulated frame.
			if have {
				if !fn(data) {
					return nil
				}
				data, have = nil, false
			}
			continue
		}
		rest, ok := bytes.CutPrefix(line, []byte("data:"))
		if !ok {
			continue // event:, id:, retry:, or a ":" comment
		}
		rest = bytes.TrimPrefix(rest, []byte(" "))
		if have {
			data = append(data, '\n')
		}
		data = append(data, rest...)
		have = true
	}
	if have && sc.Err() == nil {
		fn(data)
	}
	return sc.Err()
}
