package watch

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/core"
	"loglens/internal/dashboard"
	"loglens/internal/latency"
	"loglens/internal/obs"
)

// update re-records the testdata fixtures (the SSE stream, events, and
// health bodies captured from a live dashboard server) and the golden
// frame: go test ./internal/watch/ -run TestGoldenFrame -update
var update = flag.Bool("update", false, "re-record watch fixtures and golden frame")

func TestReadStream(t *testing.T) {
	in := strings.Join([]string{
		": comment",
		"event: message",
		"data: {\"a\":1}",
		"",
		"data: line1",
		"data: line2",
		"",
		"retry: 100",
		"data: tail-no-blank",
	}, "\n")
	var got []string
	err := ReadStream(strings.NewReader(in), func(data []byte) bool {
		got = append(got, string(data))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`{"a":1}`, "line1\nline2", "tail-no-blank"}
	if len(got) != len(want) {
		t.Fatalf("got %d frames %q, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("frame %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReadStreamStopsWhenFnReturnsFalse(t *testing.T) {
	in := "data: one\n\ndata: two\n\n"
	n := 0
	if err := ReadStream(strings.NewReader(in), func([]byte) bool {
		n++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("fn called %d times, want 1 (stop after false)", n)
	}
}

func TestParseKey(t *testing.T) {
	for _, tc := range []struct {
		key, name string
		labels    map[string]string
	}{
		{"core_lines_total", "core_lines_total", nil},
		{`freshness_event_lag_ms{partition="3"}`, "freshness_event_lag_ms",
			map[string]string{"partition": "3"}},
		{`intake_tenant_shed_total{reason="rate",tenant="web01"}`, "intake_tenant_shed_total",
			map[string]string{"reason": "rate", "tenant": "web01"}},
	} {
		name, labels := parseKey(tc.key)
		if name != tc.name {
			t.Errorf("parseKey(%q) name = %q, want %q", tc.key, name, tc.name)
		}
		if len(labels) != len(tc.labels) {
			t.Errorf("parseKey(%q) labels = %v, want %v", tc.key, labels, tc.labels)
		}
		for k, v := range tc.labels {
			if labels[k] != v {
				t.Errorf("parseKey(%q)[%s] = %q, want %q", tc.key, k, labels[k], v)
			}
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 5); got != "     " {
		t.Errorf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0, 50, 100}, 5)
	if want := "  ▁▄█"; got != want {
		t.Errorf("sparkline = %q, want %q", got, want)
	}
	// Window: only the trailing width samples render.
	if got := sparkline([]float64{1, 2, 100, 100}, 2); got != "██" {
		t.Errorf("windowed sparkline = %q", got)
	}
}

func TestFormatHelpers(t *testing.T) {
	for _, tc := range []struct{ got, want string }{
		{fmtSeconds(0.0000075), "7.5µs"},
		{fmtSeconds(0.0722), "72.20ms"},
		{fmtSeconds(2.5), "2.50s"},
		{fmtSeconds(0), "0"},
		{fmtLagMs(-1), "-"},
		{fmtLagMs(25), "25ms"},
		{fmtLagMs(1500), "1.5s"},
		{fmtCount(999), "999"},
		{fmtCount(12345), "12.3k"},
		{fmtCount(2_500_000), "2.50M"},
		{fmtRate(3.14), "3.1"},
		{fmtRate(1234), "1234"},
		{fmtRate(45000), "45.0k"},
	} {
		if tc.got != tc.want {
			t.Errorf("format = %q, want %q", tc.got, tc.want)
		}
	}
}

// TestModelThroughputSamples: frame deltas against the fake clock become
// lines/sec samples; the first frame only primes the baseline.
func TestModelThroughputSamples(t *testing.T) {
	fc := clock.NewFake()
	m := NewModel(fc)
	frame := func(lines int) []byte {
		return []byte(fmt.Sprintf(`{"counters":{"core_lines_total":%d},"gauges":{},"histograms":{}}`, lines))
	}
	if err := m.ApplyMetrics(frame(1000)); err != nil {
		t.Fatal(err)
	}
	if len(m.rates) != 0 {
		t.Fatalf("rates after priming frame = %v, want none", m.rates)
	}
	fc.Advance(2 * time.Second)
	if err := m.ApplyMetrics(frame(3000)); err != nil {
		t.Fatal(err)
	}
	if len(m.rates) != 1 || m.rates[0] != 1000 {
		t.Fatalf("rates = %v, want [1000] (2000 lines / 2s)", m.rates)
	}
	// A counter reset (restart) must not produce a negative sample.
	fc.Advance(time.Second)
	if err := m.ApplyMetrics(frame(0)); err != nil {
		t.Fatal(err)
	}
	if len(m.rates) != 1 {
		t.Fatalf("rates after reset = %v, want unchanged", m.rates)
	}
}

// recordFixtures captures the testdata files from a real dashboard
// server on a fake clock: a deterministic pipeline registry is driven
// between SSE ticks, so the recorded stream, events, and health bodies
// are reproducible byte for byte.
func recordFixtures(t *testing.T) {
	t.Helper()
	fc := clock.NewFake()
	ops := obs.New(fc)
	p, err := core.New(core.Config{
		Clock:            fc,
		Ops:              ops,
		DisableHeartbeat: true,
		Partitions:       2,
		SLOE2E:           50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := dashboard.New(p)
	srv.SetClock(fc)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	reg := p.Metrics()
	lines := reg.Counter("core_lines_total")
	parsed := reg.Counter("core_parsed_total")
	unparsed := reg.Counter("core_unparsed_total")
	anomalies := reg.Counter("core_anomalies_total", "type", "missing-end-state")
	shed := reg.Counter("intake_lines_shed_total", "reason", "rate")
	tenantShed := reg.Counter("intake_tenant_shed_total", "reason", "rate", "tenant", "web01")
	e2e := reg.Histogram("core_line_seconds", nil)

	lat := p.Latency()
	for i := 0; i < 90; i++ {
		lat.Observe(latency.StageIntake, 300*time.Microsecond)
		lat.Observe(latency.StageDeliver, 70*time.Millisecond)
		lat.Observe(latency.StageParse, 8*time.Microsecond)
		lat.Observe(latency.StageDetect, 12*time.Microsecond)
		e2e.Observe(0.0722)
		lat.CheckSLO(72 * time.Millisecond)
	}
	base := fc.Now()
	lat.NoteIngest(base)
	lat.Partition(0).Note(base.Add(-25*time.Millisecond).UnixNano(), base.Add(-25*time.Millisecond).UnixNano())
	lat.Partition(1).Note(base.Add(-100*time.Millisecond).UnixNano(), base.Add(-40*time.Millisecond).UnixNano())
	lat.Tenant("web01").Note(base.Add(-25*time.Millisecond).UnixNano(), base.Add(-25*time.Millisecond).UnixNano())
	lat.Tenant("db01").Note(base.Add(-2*time.Second).UnixNano(), base.Add(-2*time.Second).UnixNano())
	lat.Refresh()

	lines.Add(1000)
	parsed.Add(960)
	unparsed.Add(40)
	anomalies.Add(12)
	shed.Add(15)
	tenantShed.Add(15)

	ops.Events.Record(obs.EventIntakeShed, "web01", "rate", 15)
	fc.Advance(3 * time.Second)
	ops.Events.Record(obs.EventAnomaly, "tasks", "missing-end-state", 1)
	fc.Advance(2 * time.Second)
	ops.Events.Record(obs.EventHeartbeatExpiry, "db01", "event e42 expired", 1)

	// Capture four SSE frames, bumping the line counters between ticks
	// so the replayed sparkline has three distinct samples.
	resp, err := http.Get(ts.URL + "/api/metrics/stream?interval=1s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReaderSize(resp.Body, 1<<20)
	readFrame := func() []byte {
		var frame []byte
		for {
			line, err := br.ReadBytes('\n')
			if err != nil {
				t.Fatalf("reading SSE frame: %v", err)
			}
			frame = append(frame, line...)
			if bytes.Equal(line, []byte("\n")) {
				return frame
			}
		}
	}
	var stream []byte
	stream = append(stream, readFrame()...)
	for _, bump := range []uint64{12000, 15000, 9000} {
		lines.Add(bump)
		parsed.Add(bump)
		fc.BlockUntil(1)
		fc.Advance(time.Second)
		stream = append(stream, readFrame()...)
	}

	fetch := func(path string) []byte {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	events := fetch("/api/events?limit=8")
	health := fetch("/healthz")

	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"stream.sse", stream},
		{"events.json", events},
		{"healthz.json", health},
	} {
		if err := os.WriteFile(filepath.Join("testdata", f.name), f.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenFrame replays the recorded SSE stream, events, and health
// fixtures through the model under a fake clock and compares the
// rendered ANSI frame byte for byte against the checked-in golden —
// the `loglens watch` display with no live server anywhere.
func TestGoldenFrame(t *testing.T) {
	if *update {
		recordFixtures(t)
	}
	readFixture := func(name string) []byte {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	stream := readFixture("stream.sse")
	events := readFixture("events.json")
	health := readFixture("healthz.json")

	fc := clock.NewFake()
	m := NewModel(fc)
	frames := 0
	err := ReadStream(bytes.NewReader(stream), func(data []byte) bool {
		fc.Advance(time.Second)
		if err := m.ApplyMetrics(data); err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		frames++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if frames != 4 {
		t.Fatalf("fixture has %d frames, want 4", frames)
	}
	if err := m.ApplyEvents(events); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyHealth(health); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	m.Render(&buf)
	goldenPath := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("rendered frame differs from golden (rerun with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// Spot-check load-bearing content so the golden cannot silently rot
	// into an empty frame.
	out := buf.String()
	for _, want := range []string{
		"LOGLENS WATCH",
		"lines 37.0k",
		"SLO breaches 90",
		"partition 0",
		"web01",
		"intake-shed",
		"degraded", // pipeline not started in the recording
	} {
		if !strings.Contains(out, want) {
			t.Errorf("golden frame missing %q", want)
		}
	}
}
