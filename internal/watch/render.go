package watch

import (
	"fmt"
	"io"

	"loglens/internal/latency"
)

// ANSI fragments used by the renderer. Colors are deliberately minimal:
// bold section headers and a traffic-light health badge.
const (
	ansiReset = "\x1b[0m"
	ansiBold  = "\x1b[1m"
	ansiDim   = "\x1b[2m"
	ansiRed   = "\x1b[31m"
	ansiGreen = "\x1b[32m"
	ansiAmber = "\x1b[33m"

	// ClearScreen homes the cursor and erases the display — the live
	// loop writes it before every frame.
	ClearScreen = "\x1b[H\x1b[2J"
)

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders samples as a fixed-width block-element strip,
// left-padded while the ring is still filling, scaled to the window max.
func sparkline(samples []float64, width int) string {
	if len(samples) > width {
		samples = samples[len(samples)-width:]
	}
	var max float64
	for _, s := range samples {
		if s > max {
			max = s
		}
	}
	out := make([]rune, 0, width)
	for i := len(samples); i < width; i++ {
		out = append(out, ' ')
	}
	for _, s := range samples {
		i := 0
		if max > 0 {
			i = int(s / max * float64(len(sparkRunes)-1))
		}
		out = append(out, sparkRunes[i])
	}
	return string(out)
}

// fmtSeconds renders a latency in seconds with a magnitude-appropriate
// unit: microseconds below a millisecond, milliseconds below a second.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 0.001:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// fmtLagMs renders a freshness lag age; -1 means no data yet.
func fmtLagMs(ms int64) string {
	switch {
	case ms < 0:
		return "-"
	case ms < 1000:
		return fmt.Sprintf("%dms", ms)
	default:
		return fmt.Sprintf("%.1fs", float64(ms)/1000)
	}
}

// fmtCount renders a large count compactly.
func fmtCount(n uint64) string {
	switch {
	case n < 10_000:
		return fmt.Sprintf("%d", n)
	case n < 1_000_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	}
}

// fmtRate renders a lines/sec figure.
func fmtRate(r float64) string {
	switch {
	case r < 10:
		return fmt.Sprintf("%.1f", r)
	case r < 10_000:
		return fmt.Sprintf("%.0f", r)
	default:
		return fmt.Sprintf("%.1fk", r/1e3)
	}
}

// statusColor maps a health status to its badge color.
func statusColor(status string) string {
	switch status {
	case "healthy":
		return ansiGreen
	case "degraded":
		return ansiAmber
	case "":
		return ansiDim
	default:
		return ansiRed
	}
}

// Render writes one complete dashboard frame. The frame is a function
// of the model state and the injected clock only, so fixture-driven
// tests compare frames byte for byte.
func (m *Model) Render(w io.Writer) {
	status := m.health.Status
	if status == "" {
		status = "unknown"
	}
	fmt.Fprintf(w, "%sLOGLENS WATCH%s  %s  %s[%s]%s\n\n",
		ansiBold, ansiReset,
		m.clk.Now().UTC().Format("2006-01-02 15:04:05"),
		statusColor(m.health.Status), status, ansiReset)

	// Throughput: sparkline over the frame-delta samples plus totals.
	var current float64
	if len(m.rates) > 0 {
		current = m.rates[len(m.rates)-1]
	}
	fmt.Fprintf(w, "%sThroughput%s  %s %s lines/s\n", ansiBold, ansiReset,
		sparkline(m.rates, sparkWidth), fmtRate(current))
	fmt.Fprintf(w, "  lines %s  parsed %s  unparsed %s  anomalies %s  shed %s\n\n",
		fmtCount(m.snap.Counter("core_lines_total")),
		fmtCount(m.snap.Counter("core_parsed_total")),
		fmtCount(m.snap.Counter("core_unparsed_total")),
		fmtCount(m.snap.CounterSum("core_anomalies_total")),
		fmtCount(m.snap.CounterSum("intake_lines_shed_total")))

	// Per-stage latency percentiles, client-side from the snapshot's
	// histogram buckets.
	fmt.Fprintf(w, "%sLatency%s %13s %9s %9s %9s\n", ansiBold, ansiReset,
		"count", "p50", "p95", "p99")
	stageRow := func(label string, name string, labels ...string) {
		hv, ok := m.snap.Histogram(name, labels...)
		if !ok || hv.Count == 0 {
			fmt.Fprintf(w, "  %-10s %10s %9s %9s %9s\n", label, "0", "-", "-", "-")
			return
		}
		fmt.Fprintf(w, "  %-10s %10s %9s %9s %9s\n", label, fmtCount(hv.Count),
			fmtSeconds(hv.Quantile(0.50)),
			fmtSeconds(hv.Quantile(0.95)),
			fmtSeconds(hv.Quantile(0.99)))
	}
	for _, st := range latency.Stages() {
		stageRow(st, "latency_stage_seconds", "stage", st)
	}
	stageRow("e2e", "core_line_seconds")
	if breaches := m.snap.Counter("latency_slo_breach_total"); breaches > 0 {
		fmt.Fprintf(w, "  %sSLO breaches %d%s\n", ansiRed, breaches, ansiReset)
	}
	fmt.Fprintln(w)

	// Freshness watermark lag per partition.
	event := m.gaugeSeries("freshness_event_lag_ms", "partition")
	proc := m.gaugeSeries("freshness_proc_lag_ms", "partition")
	fmt.Fprintf(w, "%sFreshness%s %12s %10s\n", ansiBold, ansiReset, "event lag", "proc lag")
	for _, part := range sortedKeys(event) {
		fmt.Fprintf(w, "  partition %-3s %7s %10s\n", part,
			fmtLagMs(event[part]), fmtLagMs(proc[part]))
	}
	fmt.Fprintln(w)

	// Per-tenant freshness and shed accounting, merged over every
	// tenant either table knows about.
	tEvent := m.gaugeSeries("freshness_event_lag_ms", "tenant")
	tProc := m.gaugeSeries("freshness_proc_lag_ms", "tenant")
	shed := m.counterSumBy("intake_tenant_shed_total", "tenant")
	all := make(map[string]struct{})
	for t := range tEvent {
		all[t] = struct{}{}
	}
	for t := range shed {
		all[t] = struct{}{}
	}
	if len(all) > 0 {
		fmt.Fprintf(w, "%sTenants%s %14s %10s %9s\n", ansiBold, ansiReset,
			"event lag", "proc lag", "shed")
		for _, t := range sortedKeys(all) {
			ev, okE := tEvent[t]
			pr, okP := tProc[t]
			if !okE {
				ev = -1
			}
			if !okP {
				pr = -1
			}
			fmt.Fprintf(w, "  %-12s %8s %10s %9s\n", t,
				fmtLagMs(ev), fmtLagMs(pr), fmtCount(shed[t]))
		}
		fmt.Fprintln(w)
	}

	// Health probes.
	if len(m.health.Probes) > 0 {
		fmt.Fprintf(w, "%sProbes%s\n", ansiBold, ansiReset)
		for _, name := range sortedKeys(m.health.Probes) {
			p := m.health.Probes[name]
			fmt.Fprintf(w, "  %-10s %s%-9s%s %s\n", name,
				statusColor(p.Status), p.Status, ansiReset, p.Detail)
		}
		fmt.Fprintln(w)
	}

	// Recent flight-recorder events, newest first.
	if len(m.events) > 0 {
		fmt.Fprintf(w, "%sEvents%s\n", ansiBold, ansiReset)
		evs := m.events
		if len(evs) > 8 {
			evs = evs[:8]
		}
		for _, ev := range evs {
			fmt.Fprintf(w, "  %s  %-18s %-10s %s", ev.Time.UTC().Format("15:04:05"),
				ev.Type, ev.Source, ev.Detail)
			if ev.Value != 0 {
				fmt.Fprintf(w, " (%d)", ev.Value)
			}
			fmt.Fprintln(w)
		}
	}
}
