package watch

import (
	"encoding/json"
	"sort"
	"strconv"
	"strings"
	"time"

	"loglens/internal/clock"
	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// sparkWidth is how many throughput samples the sparkline keeps.
const sparkWidth = 30

// Model accumulates the dashboard's state from the server's responses.
// It is a pure state machine: feed it response bodies with the Apply
// methods (in any order, at any cadence) and render frames with Render.
// Time comes from the injected clock, so a test driving recorded
// fixtures under a fake clock produces byte-identical frames.
type Model struct {
	clk clock.Clock

	snap     metrics.Snapshot
	haveSnap bool

	// Throughput is derived by differencing core_lines_total between
	// metrics frames against the clock.
	lastLines uint64
	lastAt    time.Time
	rates     []float64

	health healthBody
	events []obs.Event
}

// healthBody mirrors the /healthz response.
type healthBody struct {
	Status string                `json:"status"`
	Probes map[string]probeState `json:"probes"`
}

type probeState struct {
	Status string `json:"status"`
	Detail string `json:"detail"`
}

// eventsBody mirrors the /api/events response.
type eventsBody struct {
	Events []obs.Event `json:"events"`
}

// NewModel builds an empty dashboard model on the given clock.
func NewModel(clk clock.Clock) *Model {
	if clk == nil {
		clk = clock.New()
	}
	return &Model{clk: clk}
}

// ApplyMetrics ingests one SSE metrics frame (a JSON-encoded
// metrics.Snapshot) and pushes a throughput sample derived from the
// core_lines_total delta since the previous frame.
func (m *Model) ApplyMetrics(data []byte) error {
	var snap metrics.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	now := m.clk.Now()
	lines := snap.Counter("core_lines_total")
	if m.haveSnap && lines >= m.lastLines {
		if dt := now.Sub(m.lastAt).Seconds(); dt > 0 {
			m.rates = append(m.rates, float64(lines-m.lastLines)/dt)
			if len(m.rates) > sparkWidth {
				m.rates = m.rates[len(m.rates)-sparkWidth:]
			}
		}
	}
	m.snap, m.haveSnap = snap, true
	m.lastLines, m.lastAt = lines, now
	return nil
}

// ApplyEvents ingests a /api/events response body (newest first).
func (m *Model) ApplyEvents(data []byte) error {
	var body eventsBody
	if err := json.Unmarshal(data, &body); err != nil {
		return err
	}
	m.events = body.Events
	return nil
}

// ApplyHealth ingests a /healthz (or /readyz) response body.
func (m *Model) ApplyHealth(data []byte) error {
	return json.Unmarshal(data, &m.health)
}

// parseKey splits a canonical metric key "name{k=\"v\",...}" into its
// name and label map. Keys without labels return a nil map.
func parseKey(key string) (string, map[string]string) {
	brace := strings.IndexByte(key, '{')
	if brace < 0 {
		return key, nil
	}
	name := key[:brace]
	body := strings.TrimSuffix(key[brace+1:], "}")
	labels := make(map[string]string)
	for _, pair := range strings.Split(body, "\",") {
		eq := strings.Index(pair, "=\"")
		if eq < 0 {
			continue
		}
		labels[pair[:eq]] = strings.TrimSuffix(pair[eq+2:], "\"")
	}
	return name, labels
}

// gaugeSeries collects every series of one gauge family keyed by the
// value of the given label, skipping series without it.
func (m *Model) gaugeSeries(family, label string) map[string]int64 {
	out := make(map[string]int64)
	for k, v := range m.snap.Gauges {
		name, labels := parseKey(k)
		if name != family {
			continue
		}
		if lv, ok := labels[label]; ok {
			out[lv] = v
		}
	}
	return out
}

// counterSumBy sums a counter family grouped by one label's value.
func (m *Model) counterSumBy(family, label string) map[string]uint64 {
	out := make(map[string]uint64)
	for k, v := range m.snap.Counters {
		name, labels := parseKey(k)
		if name != family {
			continue
		}
		if lv, ok := labels[label]; ok {
			out[lv] += v
		}
	}
	return out
}

// sortedKeys returns map keys sorted, numerically when all keys are
// integers (partition indices) and lexically otherwise.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	numeric := true
	for k := range m {
		keys = append(keys, k)
		if _, err := strconv.Atoi(k); err != nil {
			numeric = false
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if numeric {
			a, _ := strconv.Atoi(keys[i])
			b, _ := strconv.Atoi(keys[j])
			return a < b
		}
		return keys[i] < keys[j]
	})
	return keys
}
