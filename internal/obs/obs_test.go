package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"loglens/internal/clock"
)

func TestSpanRecorderRecordsAndExports(t *testing.T) {
	fake := clock.NewFake()
	r := NewSpanRecorder(fake, 16)

	driver := r.Thread("engine driver")
	worker := r.Thread("partition 0")
	if driver == worker {
		t.Fatalf("distinct labels share tid %d", driver)
	}
	if again := r.Thread("engine driver"); again != driver {
		t.Fatalf("Thread not stable: %d then %d", driver, again)
	}

	s := r.Start("stream", "batch", driver)
	fake.Advance(10 * time.Millisecond)
	inner := r.Start("stream", "p0 process", worker)
	fake.Advance(5 * time.Millisecond)
	inner.End()
	s.End()

	spans := r.Spans(time.Time{})
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "p0 process" || spans[0].Dur != 5*time.Millisecond {
		t.Fatalf("inner span wrong: %+v", spans[0])
	}
	if spans[1].Name != "batch" || spans[1].Dur != 15*time.Millisecond {
		t.Fatalf("outer span wrong: %+v", spans[1])
	}

	names := r.ThreadNames()
	if len(names) != 2 || names[driver] != "engine driver" || names[worker] != "partition 0" {
		t.Fatalf("thread names wrong: %v", names)
	}
}

func TestSpanRecorderSinceFilterAndRingWrap(t *testing.T) {
	fake := clock.NewFake()
	r := NewSpanRecorder(fake, 4)
	for i := 0; i < 6; i++ {
		s := r.Start("c", "s", 0)
		fake.Advance(time.Second)
		s.End()
	}
	spans := r.Spans(time.Time{})
	if len(spans) != 4 {
		t.Fatalf("ring of 4 retained %d spans", len(spans))
	}
	// The two oldest spans (start epochs +0s, +1s) were overwritten.
	if got := spans[0].Start; got != fake.Now().Add(-4*time.Second) {
		t.Fatalf("oldest retained span starts at %v", got)
	}
	cut := fake.Now().Add(-2 * time.Second)
	if got := r.Spans(cut); len(got) != 2 {
		t.Fatalf("since filter kept %d spans, want 2", len(got))
	}
}

func TestSpanRecorderChromeTraceIsValid(t *testing.T) {
	fake := clock.NewFake()
	r := NewSpanRecorder(fake, 8)
	tid := r.Thread("sweep")
	s := r.Start("heartbeat", "sweep", tid)
	fake.Advance(3 * time.Millisecond)
	s.End()

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, time.Time{}); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want metadata + span", len(doc.TraceEvents))
	}
	meta, span := doc.TraceEvents[0], doc.TraceEvents[1]
	if meta.Ph != "M" || meta.Name != "thread_name" || meta.Args["name"] != "sweep" {
		t.Fatalf("metadata event wrong: %+v", meta)
	}
	if span.Ph != "X" || span.Name != "sweep" || span.Dur != 3000 || span.Tid != tid {
		t.Fatalf("span event wrong: %+v", span)
	}
}

func TestDisabledSpanRecorderIsInert(t *testing.T) {
	var r *SpanRecorder
	if tid := r.Thread("x"); tid != 0 {
		t.Fatalf("nil Thread = %d", tid)
	}
	s := r.Start("c", "n", 0)
	s.End() // must not panic
	if got := r.Spans(time.Time{}); got != nil {
		t.Fatalf("nil Spans = %v", got)
	}
	if got := r.ThreadNames(); got != nil {
		t.Fatalf("nil ThreadNames = %v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, time.Time{}); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("nil trace output %q", buf.String())
	}
}

func TestFlightRecorderQueryFilters(t *testing.T) {
	fake := clock.NewFake()
	f := NewFlightRecorder(fake, 16)
	f.Record(EventAnomaly, "web", "pattern 3", 1)
	fake.Advance(time.Minute)
	f.Record(EventHeartbeatExpiry, "db", "state aged out", 2)
	fake.Advance(time.Minute)
	f.Record(EventAnomaly, "web", "pattern 9", 1)

	if n := f.Len(); n != 3 {
		t.Fatalf("Len = %d", n)
	}

	all := f.Events(EventQuery{})
	if len(all) != 3 || all[0].Detail != "pattern 9" || all[2].Detail != "pattern 3" {
		t.Fatalf("events not newest-first: %+v", all)
	}
	for i, ev := range all {
		if want := uint64(2 - i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}

	byType := f.Events(EventQuery{Type: EventAnomaly})
	if len(byType) != 2 || byType[0].Detail != "pattern 9" {
		t.Fatalf("type filter: %+v", byType)
	}
	since := f.Events(EventQuery{Since: fake.Now().Add(-time.Minute)})
	if len(since) != 2 || since[1].Type != EventHeartbeatExpiry {
		t.Fatalf("since filter: %+v", since)
	}
	limited := f.Events(EventQuery{Limit: 1})
	if len(limited) != 1 || limited[0].Detail != "pattern 9" {
		t.Fatalf("limit filter: %+v", limited)
	}
}

func TestFlightRecorderRingWrapAndWriteTo(t *testing.T) {
	f := NewFlightRecorder(clock.NewFake(), 3)
	for i := 0; i < 5; i++ {
		f.Record(EventRecordsDropped, "engine", "", int64(i))
	}
	evs := f.Events(EventQuery{})
	if len(evs) != 3 || evs[0].Value != 4 || evs[2].Value != 2 {
		t.Fatalf("wrapped ring: %+v", evs)
	}

	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("WriteTo emitted %d lines", len(lines))
	}
	// Oldest first for a chronological stderr dump.
	if !strings.Contains(lines[0], "#2") || !strings.Contains(lines[2], "#4") {
		t.Fatalf("WriteTo order wrong:\n%s", buf.String())
	}
}

func TestDisabledFlightRecorderIsInert(t *testing.T) {
	var f *FlightRecorder
	f.Record(EventShutdown, "", "", 0) // must not panic
	if f.Len() != 0 {
		t.Fatal("nil Len != 0")
	}
	if got := f.Events(EventQuery{}); got != nil {
		t.Fatalf("nil Events = %v", got)
	}
	var buf bytes.Buffer
	if n, err := f.WriteTo(&buf); n != 0 || err != nil {
		t.Fatalf("nil WriteTo = %d, %v", n, err)
	}
}

func TestFlightRecorderConcurrentRecord(t *testing.T) {
	f := NewFlightRecorder(clock.NewFake(), 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.Record(EventAnomaly, "src", "", 1)
			}
		}()
	}
	wg.Wait()
	if f.Len() != 800 {
		t.Fatalf("Len = %d, want 800", f.Len())
	}
}

func TestHealthWorstOfAggregation(t *testing.T) {
	h := NewHealth()
	h.Register("bus", func() ProbeResult { return ProbeResult{Status: Healthy, Detail: "lag 0"} })
	h.Register("heartbeat", func() ProbeResult { return ProbeResult{Status: Healthy} })

	if overall, res := h.Check(); overall != Healthy || len(res) != 2 {
		t.Fatalf("all-healthy check = %v, %v", overall, res)
	}

	state := Degraded
	h.Register("pipeline", func() ProbeResult { return ProbeResult{Status: state, Detail: "flaky"} })
	overall, res := h.Check()
	if overall != Degraded {
		t.Fatalf("overall = %v, want degraded", overall)
	}
	if res["pipeline"].Detail != "flaky" {
		t.Fatalf("probe detail lost: %+v", res)
	}

	state = Unhealthy
	if overall, _ := h.Check(); overall != Unhealthy {
		t.Fatalf("overall = %v, want unhealthy", overall)
	}
	state = Healthy
	if overall, _ := h.Check(); overall != Healthy {
		t.Fatalf("overall = %v, want healthy again", overall)
	}
}

func TestHealthNilAndReplace(t *testing.T) {
	var h *Health
	h.Register("x", func() ProbeResult { return ProbeResult{Status: Unhealthy} })
	if overall, res := h.Check(); overall != Healthy || res != nil {
		t.Fatalf("nil health check = %v, %v", overall, res)
	}

	real := NewHealth()
	real.Register("", nil) // nil probe ignored
	real.Register("p", func() ProbeResult { return ProbeResult{Status: Unhealthy} })
	real.Register("p", func() ProbeResult { return ProbeResult{Status: Healthy} })
	overall, res := real.Check()
	if overall != Healthy || len(res) != 1 {
		t.Fatalf("replaced probe check = %v, %v", overall, res)
	}
}

func TestStatusJSON(t *testing.T) {
	for s, want := range map[Status]string{Healthy: `"healthy"`, Degraded: `"degraded"`, Unhealthy: `"unhealthy"`} {
		b, err := json.Marshal(s)
		if err != nil || string(b) != want {
			t.Fatalf("marshal %v = %s, %v", s, b, err)
		}
	}
}

func TestOpsBundleAccessors(t *testing.T) {
	o := New(nil)
	if o.Spans == nil || o.Events == nil || o.Health == nil {
		t.Fatalf("New left nil facilities: %+v", o)
	}
	if SpansOf(o) != o.Spans || EventsOf(o) != o.Events {
		t.Fatal("accessors do not pass through")
	}
	if SpansOf(nil) != nil || EventsOf(nil) != nil {
		t.Fatal("nil bundle accessors not nil")
	}
}
