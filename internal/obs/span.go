package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"loglens/internal/clock"
)

// DefaultSpanCapacity is the span ring size when NewSpanRecorder is given
// zero: at the default 10ms micro-batch cadence with a handful of spans
// per batch it holds on the order of a minute of recent history.
const DefaultSpanCapacity = 8192

// SpanEvent is one completed span: a named duration on a logical thread.
type SpanEvent struct {
	// Name is the span label ("batch", "p0 process", "rebroadcast").
	Name string `json:"name"`
	// Cat is the component category ("stream/main", "heartbeat").
	Cat string `json:"cat"`
	// Tid is the logical thread the span ran on (see Thread).
	Tid int `json:"tid"`
	// Start is the span's begin time on the recorder's clock.
	Start time.Time `json:"start"`
	// Dur is the span's duration.
	Dur time.Duration `json:"dur"`
}

// SpanRecorder accumulates completed spans in a bounded ring. It is safe
// for concurrent use. A nil *SpanRecorder is a valid disabled recorder:
// Start returns an inert Span and every method no-ops, so components
// need no nil checks beyond the ones the calls themselves perform.
type SpanRecorder struct {
	clk clock.Clock

	mu      sync.Mutex
	ring    []SpanEvent
	next    uint64 // total spans recorded; next%cap is the write slot
	threads map[string]int
	names   []string // thread names by tid
}

// NewSpanRecorder returns a recorder of the given ring capacity (0 =
// DefaultSpanCapacity) stamping times from clk.
func NewSpanRecorder(clk clock.Clock, capacity int) *SpanRecorder {
	if clk == nil {
		clk = clock.New()
	}
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanRecorder{
		clk:     clk,
		ring:    make([]SpanEvent, capacity),
		threads: make(map[string]int),
	}
}

// Thread resolves (registering if needed) a stable logical-thread ID for
// a label. Components claim one tid per execution lane at wiring time —
// the engine's driver loop, each partition worker, the heartbeat sweep —
// so the exported trace nests spans the way the runtime actually ran
// them. A nil recorder returns 0.
func (r *SpanRecorder) Thread(label string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if tid, ok := r.threads[label]; ok {
		return tid
	}
	tid := len(r.names)
	r.threads[label] = tid
	r.names = append(r.names, label)
	return tid
}

// Span is one in-flight span. The zero Span (from a disabled recorder)
// is inert: End is a no-op.
type Span struct {
	rec   *SpanRecorder
	start time.Time
	name  string
	cat   string
	tid   int
}

// Start opens a span on a logical thread. The returned Span is a value;
// call End to record it. On a nil recorder this is one predictable
// branch and no allocation — the disabled hot-path cost. The enabled
// path lives in open so Start itself stays inlinable.
func (r *SpanRecorder) Start(cat, name string, tid int) Span {
	if r == nil {
		return Span{}
	}
	return r.open(cat, name, tid)
}

//go:noinline
func (r *SpanRecorder) open(cat, name string, tid int) Span {
	return Span{rec: r, start: r.clk.Now(), name: name, cat: cat, tid: tid}
}

// End records the span. No-op for the zero Span.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	s.rec.record(s)
}

//go:noinline
func (r *SpanRecorder) record(s Span) {
	dur := r.clk.Since(s.start)
	r.mu.Lock()
	slot := &r.ring[r.next%uint64(len(r.ring))]
	slot.Name, slot.Cat, slot.Tid, slot.Start, slot.Dur = s.name, s.cat, s.tid, s.start, dur
	r.next++
	r.mu.Unlock()
}

// Spans returns the recorded spans whose start time is not before since
// (zero since = everything retained), oldest first.
func (r *SpanRecorder) Spans(since time.Time) []SpanEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	capacity := uint64(len(r.ring))
	start := uint64(0)
	if n > capacity {
		start = n - capacity
	}
	out := make([]SpanEvent, 0, n-start)
	for i := start; i < n; i++ {
		ev := r.ring[i%capacity]
		if !since.IsZero() && ev.Start.Before(since) {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// ThreadNames returns the registered thread labels indexed by tid.
func (r *SpanRecorder) ThreadNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto): complete events ("ph":"X") carry
// microsecond timestamps and durations; metadata events ("ph":"M") name
// the threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the spans recorded since the given time as
// Chrome trace-event JSON ({"traceEvents":[...]}), loadable in
// chrome://tracing or Perfetto. Spans are emitted in start order;
// thread_name metadata events map tids back to their labels.
func (r *SpanRecorder) WriteChromeTrace(w io.Writer, since time.Time) error {
	spans := r.Spans(since)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	events := make([]chromeEvent, 0, len(spans)+8)
	for tid, label := range r.ThreadNames() {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": label},
		})
	}
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   s.Start.UnixMicro(),
			Dur:  s.Dur.Microseconds(),
			Pid:  1,
			Tid:  s.Tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
