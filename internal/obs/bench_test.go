package obs

import (
	"testing"

	"loglens/internal/clock"
)

// The disabled path is the price every component pays when the ops plane
// is off — it must stay in the low single-digit nanoseconds with zero
// allocations (ISSUE 3 acceptance: ≤ 5ns/op, 0 allocs).

func BenchmarkSpanDisabled(b *testing.B) {
	var r *SpanRecorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := r.Start("stream", "batch", 0)
		s.End()
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	var f *FlightRecorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(EventAnomaly, "src", "detail", 1)
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	r := NewSpanRecorder(clock.New(), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := r.Start("stream", "batch", 0)
		s.End()
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	f := NewFlightRecorder(clock.New(), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(EventAnomaly, "src", "detail", 1)
	}
}
