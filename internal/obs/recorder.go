package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"loglens/internal/clock"
)

// DefaultEventCapacity is the flight-recorder ring size when
// NewFlightRecorder is given zero. Events are rare (anomalies,
// rebroadcasts, crashes), so 4096 slots hold hours of history.
const DefaultEventCapacity = 4096

// EventType classifies a flight-recorder event. The taxonomy is the set
// of facts an operator reconstructs an incident from (DESIGN.md "Ops
// plane"); components record them at the source.
type EventType string

const (
	// EventAnomaly: an anomaly record reached the sink (core).
	EventAnomaly EventType = "anomaly"
	// EventHeartbeatExpiry: a heartbeat expired an open event state
	// (seqdetect, §V-B).
	EventHeartbeatExpiry EventType = "heartbeat-expiry"
	// EventRebroadcastApplied: a queued model rebroadcast was installed
	// at a micro-batch barrier (stream, §V-A).
	EventRebroadcastApplied EventType = "rebroadcast-applied"
	// EventRebroadcastFailed: a control instruction could not be applied
	// (core/modelmgr) — e.g. the announced model failed to load.
	EventRebroadcastFailed EventType = "rebroadcast-failed"
	// EventWorkerCrash: an operator panicked on a record; the partition
	// survived and the record was dropped (stream).
	EventWorkerCrash EventType = "worker-crash"
	// EventRecordsDropped: the engine abandoned accepted records at
	// cancellation (stream).
	EventRecordsDropped EventType = "records-dropped"
	// EventStorageError: a storage operation failed (modelmgr).
	EventStorageError EventType = "storage-error"
	// EventBusSeek: a consumer group offset was rewound or forwarded
	// explicitly — replay, or a chaos-injected crash/restart (bus).
	EventBusSeek EventType = "bus-seek"
	// EventSourceForgotten: the heartbeat controller dropped a source
	// that stayed silent past the activity window (heartbeat).
	EventSourceForgotten EventType = "source-forgotten"
	// EventShutdown: the process began an orderly shutdown (cmd).
	EventShutdown EventType = "shutdown"
	// EventQuarantine: a poison record exhausted its redelivery strikes
	// and was routed to the deadletter topic (recovery).
	EventQuarantine EventType = "quarantine"
	// EventCheckpoint: a checkpoint generation was saved or restored
	// (recovery).
	EventCheckpoint EventType = "checkpoint"
	// EventIntakeShed: the intake admission layer refused lines — Source
	// is the tenant, Detail the shed reason, Value the line count
	// (intake).
	EventIntakeShed EventType = "intake-shed"
	// EventIntakeConnRejected: a TCP connection was refused at the
	// concurrency cap (intake).
	EventIntakeConnRejected EventType = "intake-conn-rejected"
	// EventNetbusReconnect: the broker link state changed — Source is the
	// client role, Detail says lost vs re-established, Value the number of
	// consumer groups resumed (netbus).
	EventNetbusReconnect EventType = "netbus-reconnect"
	// EventSpoolShed: the publisher disk spool hit its byte cap and
	// dropped its oldest unacked lines — Source is the spool path, Value
	// the lines shed (netbus).
	EventSpoolShed EventType = "spool-shed"
)

// Event is one flight-recorder entry. All fields are fixed-shape so
// recording is allocation-free: strings are stored by header copy.
type Event struct {
	// Seq is the global record sequence number (monotone; gaps mean the
	// ring wrapped).
	Seq uint64 `json:"seq"`
	// Time is the recorder-clock time of the event.
	Time time.Time `json:"time"`
	// Type classifies the event.
	Type EventType `json:"type"`
	// Source is the log source or component the event concerns.
	Source string `json:"source,omitempty"`
	// Detail is a short human-readable qualifier.
	Detail string `json:"detail,omitempty"`
	// Value is an event-type-specific magnitude (records dropped, model
	// version, lag).
	Value int64 `json:"value,omitempty"`
}

// FlightRecorder is a bounded ring of recent structured events — the
// black box an operator reads after (or during) an incident. It is safe
// for concurrent use; a nil *FlightRecorder is a valid disabled recorder
// whose Record is a single branch.
type FlightRecorder struct {
	clk clock.Clock

	mu   sync.Mutex
	ring []Event
	next uint64
}

// NewFlightRecorder returns a recorder of the given ring capacity (0 =
// DefaultEventCapacity) stamping times from clk.
func NewFlightRecorder(clk clock.Clock, capacity int) *FlightRecorder {
	if clk == nil {
		clk = clock.New()
	}
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &FlightRecorder{clk: clk, ring: make([]Event, capacity)}
}

// Record appends one event. On a nil recorder it is a single branch;
// enabled it is a clock read and a slot write under a short mutex — no
// allocation either way.
func (f *FlightRecorder) Record(t EventType, source, detail string, value int64) {
	if f == nil {
		return
	}
	now := f.clk.Now()
	f.mu.Lock()
	slot := &f.ring[f.next%uint64(len(f.ring))]
	slot.Seq = f.next
	slot.Time = now
	slot.Type = t
	slot.Source = source
	slot.Detail = detail
	slot.Value = value
	f.next++
	f.mu.Unlock()
}

// Len returns the total number of events ever recorded (not the retained
// count).
func (f *FlightRecorder) Len() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// EventQuery filters a flight-recorder read.
type EventQuery struct {
	// Type restricts to one event type ("" = all).
	Type EventType
	// Since restricts to events at or after this time (zero = all).
	Since time.Time
	// Limit caps the result to the most recent N matches (0 = all
	// retained).
	Limit int
}

// Events returns the retained events matching q, newest first — the
// order an operator reads an incident in.
func (f *FlightRecorder) Events(q EventQuery) []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	capacity := uint64(len(f.ring))
	start := uint64(0)
	if f.next > capacity {
		start = f.next - capacity
	}
	var out []Event
	for i := f.next; i > start; i-- {
		ev := f.ring[(i-1)%capacity]
		if q.Type != "" && ev.Type != q.Type {
			continue
		}
		if !q.Since.IsZero() && ev.Time.Before(q.Since) {
			continue
		}
		out = append(out, ev)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

// WriteTo dumps the retained events oldest first, one line each — the
// shutdown flush target (cmd/loglens writes it to stderr on SIGTERM).
func (f *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	evs := f.Events(EventQuery{})
	var total int64
	for i := len(evs) - 1; i >= 0; i-- {
		ev := evs[i]
		n, err := fmt.Fprintf(w, "%s #%d %-20s source=%s value=%d %s\n",
			ev.Time.Format(time.RFC3339Nano), ev.Seq, ev.Type, ev.Source, ev.Value, ev.Detail)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
