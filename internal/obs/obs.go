// Package obs is the ops plane of LogLens: the subsystem that lets an
// operator ask a *running* deployment why it is misbehaving. PR 2's
// metrics registry answers "how much"; this package answers "where does
// the time go" (hierarchical spans exportable as Chrome trace-event
// JSON), "what just happened" (a bounded flight recorder of structured
// events — anomalies, heartbeat expiries, rebroadcasts, worker crashes,
// drops, storage errors), and "is it serving" (per-component health
// probes aggregated into /healthz and /readyz).
//
// Design rules, shared with internal/metrics:
//
//   - A nil receiver is a valid disabled instrument. Every recording
//     method no-ops on nil, so components hold plain pointer fields and
//     pay only a nil check when the ops plane is off — the disabled path
//     is benchmarked at low single-digit nanoseconds with zero
//     allocations (BENCH_PR3.txt).
//   - Storage is bounded. Spans and events land in fixed-capacity rings;
//     a deployment that misbehaves for a week still holds the most
//     recent window, never an unbounded backlog.
//   - Time comes from the injected clock (internal/clock), so the chaos
//     scenarios drive health-state flips and span timelines
//     deterministically on a clock.Fake.
package obs

import "loglens/internal/clock"

// Ops bundles the three ops-plane facilities a component may need. The
// zero value (all nil) is fully disabled; New returns an enabled bundle.
type Ops struct {
	// Spans records hierarchical timing spans for trace export.
	Spans *SpanRecorder
	// Events is the flight recorder of structured runtime events.
	Events *FlightRecorder
	// Health aggregates per-component probes.
	Health *Health
}

// New returns an enabled Ops bundle on clk with default ring capacities.
func New(clk clock.Clock) *Ops {
	if clk == nil {
		clk = clock.New()
	}
	return &Ops{
		Spans:  NewSpanRecorder(clk, 0),
		Events: NewFlightRecorder(clk, 0),
		Health: NewHealth(),
	}
}

// spans returns the bundle's span recorder (nil-safe).
func (o *Ops) spans() *SpanRecorder {
	if o == nil {
		return nil
	}
	return o.Spans
}

// events returns the bundle's flight recorder (nil-safe).
func (o *Ops) events() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Events
}

// SpansOf returns ops.Spans, tolerating a nil bundle — the accessor
// components use at wiring time so a disabled ops plane yields nil
// instrument fields.
func SpansOf(o *Ops) *SpanRecorder { return o.spans() }

// EventsOf returns ops.Events, tolerating a nil bundle.
func EventsOf(o *Ops) *FlightRecorder { return o.events() }
