package obs

import "sync"

// Status is a probe's verdict, ordered by severity: aggregation takes
// the worst status across probes.
type Status int

const (
	// Healthy: the component is operating within thresholds.
	Healthy Status = iota
	// Degraded: the component works but is outside its comfort zone
	// (lag building, a source gone quiet). /readyz fails; /healthz does
	// not — an orchestrator should stop routing new load, not restart.
	Degraded
	// Unhealthy: the component cannot do its job. /healthz returns 503.
	Unhealthy
)

// String returns the lowercase status name used in JSON payloads.
func (s Status) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	default:
		return "unhealthy"
	}
}

// MarshalJSON encodes the status as its string form.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// ProbeResult is one probe's current verdict with human-readable detail.
type ProbeResult struct {
	Status Status `json:"status"`
	Detail string `json:"detail,omitempty"`
}

// Probe inspects one component and reports its state. Probes must be
// cheap and non-blocking: they run on every /healthz and /readyz hit.
type Probe func() ProbeResult

// Health aggregates named per-component probes into one overall status.
// A nil *Health accepts registrations as no-ops and reports Healthy with
// no probes, so wiring code needs no nil checks.
type Health struct {
	mu     sync.Mutex
	names  []string // registration order, for stable output
	probes map[string]Probe
}

// NewHealth returns an empty probe registry.
func NewHealth() *Health {
	return &Health{probes: make(map[string]Probe)}
}

// Register adds (or replaces) a named probe. Nil-safe.
func (h *Health) Register(name string, p Probe) {
	if h == nil || p == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.probes[name]; !ok {
		h.names = append(h.names, name)
	}
	h.probes[name] = p
}

// Check runs every probe and returns the worst status plus per-probe
// results keyed by name. A nil or empty Health is Healthy.
func (h *Health) Check() (Status, map[string]ProbeResult) {
	if h == nil {
		return Healthy, nil
	}
	h.mu.Lock()
	names := append([]string(nil), h.names...)
	probes := make([]Probe, len(names))
	for i, n := range names {
		probes[i] = h.probes[n]
	}
	h.mu.Unlock()

	overall := Healthy
	results := make(map[string]ProbeResult, len(names))
	for i, n := range names {
		res := probes[i]()
		results[n] = res
		if res.Status > overall {
			overall = res.Status
		}
	}
	return overall, results
}
