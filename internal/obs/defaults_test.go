package obs

import (
	"testing"
	"time"
)

// TestConstructorDefaults: nil clocks fall back to the real clock and
// non-positive capacities to the package defaults, so zero-config wiring
// still yields working recorders.
func TestConstructorDefaults(t *testing.T) {
	f := NewFlightRecorder(nil, 0)
	f.Record(EventShutdown, "x", "", 0)
	evs := f.Events(EventQuery{})
	if len(evs) != 1 || evs[0].Time.IsZero() {
		t.Fatalf("default flight recorder events = %+v", evs)
	}

	s := NewSpanRecorder(nil, -1)
	tid := s.Thread("lane")
	sp := s.Start("cat", "op", tid)
	sp.End()
	spans := s.Spans(time.Time{})
	if len(spans) != 1 || spans[0].Name != "op" {
		t.Fatalf("default span recorder spans = %+v", spans)
	}

	// New with a nil clock is the same fallback one level up.
	o := New(nil)
	if o.Spans == nil || o.Events == nil || o.Health == nil {
		t.Fatalf("New(nil) bundle = %+v", o)
	}
}
