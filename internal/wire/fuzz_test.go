package wire

import (
	"testing"
	"time"
	"unicode/utf8"
)

// FuzzDecode throws arbitrary bytes at the wire decoder. Decode must
// never panic, and any line it accepts must survive an encode/decode
// round trip losslessly — the canonical-form property the server and
// client rely on.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{"source":"web-1","seq":42,"raw":"2016/02/23 09:00:31.000 task t-1 start"}`))
	f.Add([]byte(`{"source":"db","hb":true,"time":"2016-02-23T09:00:31Z"}`))
	f.Add([]byte(`{"source":""}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"source":"s","seq":-1}`))
	f.Add([]byte(`{"source":"s","time":"not-a-time"}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		frame, err := Decode(line)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		if frame.Source == "" {
			t.Fatalf("Decode accepted a frame without a source: %q", line)
		}
		encoded, err := Encode(frame)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v (input %q)", err, line)
		}
		again, err := Decode(encoded)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v (wire %q)", err, encoded)
		}
		assertFramesEqual(t, frame, again)
	})
}

// FuzzRoundTrip drives Encode -> Decode with arbitrary frame contents:
// every encodable frame must come back field-for-field identical.
func FuzzRoundTrip(f *testing.F) {
	f.Add("web-1", uint64(42), "2016/02/23 09:00:31.000 task t-1 start", false, int64(1456218031), int64(0))
	f.Add("db", uint64(0), "", true, int64(1456218031), int64(999999999))
	f.Add("s", uint64(1<<63), "line with \x00 and \xff bytes", false, int64(0), int64(0))
	f.Fuzz(func(t *testing.T, source string, seq uint64, raw string, hb bool, sec, nsec int64) {
		if source == "" {
			return // unattributable frames are rejected by design
		}
		if !utf8.ValidString(source) || !utf8.ValidString(raw) {
			// JSON coerces invalid UTF-8 to U+FFFD; only valid UTF-8
			// frames are lossless by contract.
			return
		}
		in := Frame{Source: source, Seq: seq, Raw: raw, HB: hb, Time: time.Unix(sec, nsec).UTC()}
		encoded, err := Encode(in)
		if err != nil {
			return // unencodable (e.g. time outside JSON's year range): fine
		}
		out, err := Decode(encoded)
		if err != nil {
			t.Fatalf("encodable frame failed to decode: %v (wire %q)", err, encoded)
		}
		assertFramesEqual(t, in, out)
	})
}

func assertFramesEqual(t *testing.T, a, b Frame) {
	t.Helper()
	if a.Source != b.Source || a.Seq != b.Seq || a.HB != b.HB {
		t.Fatalf("frame fields changed in round trip: %+v vs %+v", a, b)
	}
	if a.Raw != b.Raw {
		t.Fatalf("raw changed in round trip: %q vs %q", a.Raw, b.Raw)
	}
	if !a.Time.Equal(b.Time) {
		t.Fatalf("time changed in round trip: %v vs %v", a.Time, b.Time)
	}
}
