package wire

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func collectServer(t *testing.T) (*Server, string, *[]Frame, *sync.Mutex) {
	t.Helper()
	var mu sync.Mutex
	var frames []Frame
	srv := NewServer(func(f Frame) {
		mu.Lock()
		frames = append(frames, f)
		mu.Unlock()
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, &frames, &mu
}

func waitFrames(t *testing.T, mu *sync.Mutex, frames *[]Frame, n int) []Frame {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := len(*frames)
		mu.Unlock()
		if got >= n {
			mu.Lock()
			defer mu.Unlock()
			out := make([]Frame, len(*frames))
			copy(out, *frames)
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d frames, want %d", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClientServerRoundTrip(t *testing.T) {
	_, addr, frames, mu := collectServer(t)
	c, err := Dial(addr, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Send("line one")
	c.Send("line two")
	c.SendHeartbeat(time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got := waitFrames(t, mu, frames, 3)
	if got[0].Source != "web-1" || got[0].Seq != 1 || got[0].Raw != "line one" {
		t.Errorf("frame 0 = %+v", got[0])
	}
	if got[1].Seq != 2 {
		t.Errorf("frame 1 = %+v", got[1])
	}
	if !got[2].HB || got[2].Time.Year() != 2016 {
		t.Errorf("heartbeat frame = %+v", got[2])
	}
}

func TestStream(t *testing.T) {
	srv, addr, frames, mu := collectServer(t)
	c, err := Dial(addr, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lines := make([]string, 3000)
	for i := range lines {
		lines[i] = fmt.Sprintf("log line %d", i)
	}
	lines[100] = "" // skipped
	n, err := c.Stream(context.Background(), lines)
	if err != nil || n != 2999 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	waitFrames(t, mu, frames, 2999)
	if srv.Frames() != 2999 {
		t.Errorf("server frames = %d", srv.Frames())
	}
}

func TestMalformedFramesDropped(t *testing.T) {
	srv, addr, frames, mu := collectServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("this is not json\n"))
	conn.Write([]byte(`{"seq":1,"raw":"missing source"}` + "\n"))
	conn.Write([]byte(`{"source":"ok","seq":1,"raw":"good"}` + "\n"))
	got := waitFrames(t, mu, frames, 1)
	if len(got) != 1 || got[0].Raw != "good" {
		t.Errorf("frames = %+v", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Errors() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Errors() != 2 {
		t.Errorf("errors = %d, want 2", srv.Errors())
	}
}

func TestMultipleClients(t *testing.T) {
	_, addr, frames, mu := collectServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, fmt.Sprintf("src-%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				c.Send("x")
			}
			c.Flush()
		}(i)
	}
	wg.Wait()
	got := waitFrames(t, mu, frames, 200)
	// Per-source sequence numbers are contiguous.
	maxSeq := map[string]uint64{}
	for _, f := range got {
		if f.Seq != maxSeq[f.Source]+1 {
			t.Fatalf("source %s sequence jumped to %d", f.Source, f.Seq)
		}
		maxSeq[f.Source] = f.Seq
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "s"); err == nil {
		t.Error("dial to closed port must fail")
	}
	_, addr, _, _ := collectServer(t)
	if _, err := Dial(addr, ""); err == nil {
		t.Error("empty source must fail")
	}
}

func TestServerCloseDropsConnections(t *testing.T) {
	srv, addr, _, _ := collectServer(t)
	c, err := Dial(addr, "s")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Writes eventually fail once the server side is gone.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.Send("x")
		if err := c.Flush(); err != nil {
			return // expected
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("writes never failed after server close")
}
