// Package wire is the network transport between remote log agents and the
// LogLens service (§II: "Agent is a daemon process which collects
// heterogeneous logs from multiple sources and sends them to the log
// manager"). The protocol is newline-delimited JSON frames over TCP —
// simple enough to emit from anything, structured enough to carry the
// source identity and sequence numbers the log manager needs:
//
//	{"source":"web-1","seq":42,"raw":"2016/02/23 09:00:31.000 ..."}
//
// A frame with "hb":true carries a heartbeat timestamp instead of a log
// line.
package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Frame is one protocol message.
type Frame struct {
	// Source identifies the log origin.
	Source string `json:"source"`
	// Seq is the agent's per-source sequence number.
	Seq uint64 `json:"seq,omitempty"`
	// Raw is the log line (log frames).
	Raw string `json:"raw,omitempty"`
	// HB marks a heartbeat frame; Time carries its synthesized log
	// time.
	HB   bool      `json:"hb,omitempty"`
	Time time.Time `json:"time,omitempty"`
}

// MaxFrameBytes bounds a single frame (16 MiB), matching the agent's
// maximum log-line length.
const MaxFrameBytes = 16 << 20

// Encode serializes one frame to its wire form: a single JSON line,
// without the trailing newline the transport adds.
func Encode(f Frame) ([]byte, error) {
	data, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	return data, nil
}

// Decode parses one wire line into a Frame. Frames without a source are
// rejected: the log manager cannot attribute them ("organizes logs based
// on the log source information", §II).
func Decode(line []byte) (Frame, error) {
	var f Frame
	if err := json.Unmarshal(line, &f); err != nil {
		return Frame{}, fmt.Errorf("wire: decode: %w", err)
	}
	if f.Source == "" {
		return Frame{}, fmt.Errorf("wire: decode: frame has no source")
	}
	return f, nil
}

// Server accepts agent connections and hands every received frame to a
// callback. It is safe for concurrent use.
type Server struct {
	handler func(Frame)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	frames atomic.Uint64
	errors atomic.Uint64
}

// NewServer constructs a Server delivering frames to handler.
func NewServer(handler func(Frame)) *Server {
	return &Server{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Frames returns the number of frames received.
func (s *Server) Frames() uint64 { return s.frames.Load() }

// Errors returns the number of malformed frames dropped.
func (s *Server) Errors() uint64 { return s.errors.Load() }

// Listen starts accepting connections on addr and returns the bound
// address (useful with ":0"). Serving happens on background goroutines
// until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("wire: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), MaxFrameBytes)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		f, err := Decode(line)
		if err != nil {
			s.errors.Add(1)
			continue
		}
		s.frames.Add(1)
		s.handler(f)
	}
}

// Close stops the listener and drops every open connection.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	return nil
}

// Client ships frames to a remote server. It is safe for concurrent use;
// writes are serialized.
type Client struct {
	source string

	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
	seq  uint64
	addr string
}

// Dial connects a Client for the given source.
func Dial(addr, source string) (*Client, error) {
	if source == "" {
		return nil, fmt.Errorf("wire: source must be set")
	}
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{source: source, conn: conn, w: bufio.NewWriterSize(conn, 64*1024), addr: addr}, nil
}

// Send ships one log line.
func (c *Client) Send(raw string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.writeLocked(Frame{Source: c.source, Seq: c.seq, Raw: raw})
}

// SendHeartbeat ships a heartbeat frame with an explicit log time.
func (c *Client) SendHeartbeat(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeLocked(Frame{Source: c.source, HB: true, Time: t})
}

func (c *Client) writeLocked(f Frame) error {
	data, err := Encode(f)
	if err != nil {
		return err
	}
	if _, err := c.w.Write(data); err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	return nil
}

// Flush pushes buffered frames to the socket.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Close flushes and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Flush()
	return c.conn.Close()
}

// Stream ships every line from lines, flushing periodically, until done or
// the context ends. It returns the number of lines shipped.
func (c *Client) Stream(ctx context.Context, lines []string) (uint64, error) {
	var n uint64
	for _, line := range lines {
		if err := ctx.Err(); err != nil {
			c.Flush()
			return n, err
		}
		if line == "" {
			continue
		}
		if err := c.Send(line); err != nil {
			return n, err
		}
		n++
		if n%1024 == 0 {
			if err := c.Flush(); err != nil {
				return n, err
			}
		}
	}
	return n, c.Flush()
}
