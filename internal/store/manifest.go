// Manifests: the persistent store's commit points. A manifest generation
// is one immutable JSON file (MANIFEST-<gen>.json, written atomically)
// naming every segment file of every index plus the WAL that carries
// mutations since the cut; the CURRENT file — written last, atomically —
// points at the live generation. The layout deliberately mirrors
// internal/recovery's checkpoint-<gen>.json + CURRENT scheme: a pipeline
// checkpoint just records the store generation it cut, and restore means
// re-pointing at that generation — segments are referenced, never
// re-copied.
//
// Crash invariant: every file a manifest references is fully written and
// closed before the manifest is written, and the manifest is fully
// written before CURRENT moves. A crash anywhere in between leaves the
// previous generation (and its WAL) untouched.
package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"time"
)

// manifestSegment is one referenced segment file.
type manifestSegment struct {
	File   string    `json:"file"`
	Bytes  int64     `json:"bytes"`
	CRC    uint32    `json:"crc"`
	Count  int       `json:"count"`
	Bucket time.Time `json:"bucket"`
}

// manifestIndex is the durable state of one index at the cut: counters
// that cannot be rebuilt from segments alone, plus the segment list in
// scan order (oldest first).
type manifestIndex struct {
	Name      string            `json:"name"`
	Seq       uint64            `json:"seq,omitempty"`
	Evicted   uint64            `json:"evicted,omitempty"`
	Retention int               `json:"retention,omitempty"`
	Watermark uint64            `json:"watermark,omitempty"`
	NextOrd   uint64            `json:"next_ord,omitempty"`
	Segments  []manifestSegment `json:"segments,omitempty"`
}

// manifest is one generation of the store.
type manifest struct {
	Generation uint64          `json:"generation"`
	WAL        string          `json:"wal"`
	NextSeg    uint64          `json:"next_seg"`
	// Pins carries checkpoint-referenced generations forward so they
	// survive GC across a process restart (recovery re-pins on restore,
	// but GC must not outrun it).
	Pins    []uint64        `json:"pins,omitempty"`
	Indices []manifestIndex `json:"indices,omitempty"`
}

// manifestEnvelope wraps the payload with a checksum so a damaged
// manifest is detected (and rejected) rather than half-trusted.
type manifestEnvelope struct {
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

func encodeManifest(m *manifest) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("store: manifest: encode: %w", err)
	}
	return json.Marshal(manifestEnvelope{CRC: crc32.ChecksumIEEE(payload), Payload: payload})
}

// decodeManifest validates envelope, checksum, and structural sanity.
// Arbitrary bytes (the fuzz surface) must come back as an error, never a
// panic or a half-valid manifest.
func decodeManifest(data []byte) (*manifest, error) {
	var env manifestEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("store: manifest: decode: %w", err)
	}
	if crc32.ChecksumIEEE(env.Payload) != env.CRC {
		return nil, fmt.Errorf("store: manifest: %w", errBadCheck)
	}
	var m manifest
	if err := json.Unmarshal(env.Payload, &m); err != nil {
		return nil, fmt.Errorf("store: manifest: decode payload: %w", err)
	}
	if m.Generation == 0 {
		return nil, fmt.Errorf("store: manifest: missing generation")
	}
	if m.WAL != "" && (strings.Contains(m.WAL, "/") || strings.Contains(m.WAL, "\\")) {
		return nil, fmt.Errorf("store: manifest: invalid wal name %q", m.WAL)
	}
	seen := make(map[string]bool, len(m.Indices))
	for i := range m.Indices {
		ix := &m.Indices[i]
		if ix.Name == "" || seen[ix.Name] {
			return nil, fmt.Errorf("store: manifest: bad index entry %q", ix.Name)
		}
		seen[ix.Name] = true
		for j := range ix.Segments {
			sg := &ix.Segments[j]
			if sg.File == "" || strings.Contains(sg.File, "..") || sg.Bytes <= 0 || sg.Count < 0 {
				return nil, fmt.Errorf("store: manifest: bad segment entry %q", sg.File)
			}
		}
	}
	return &m, nil
}

// sortIndices puts the manifest's index list in name order so manifests
// are byte-deterministic for a given state.
func (m *manifest) sortIndices() {
	sort.Slice(m.Indices, func(i, j int) bool { return m.Indices[i].Name < m.Indices[j].Name })
}

func manifestName(gen uint64) string {
	return fmt.Sprintf("MANIFEST-%06d.json", gen)
}

func walName(gen uint64) string {
	return fmt.Sprintf("wal-%06d.log", gen)
}

// parseManifestGen extracts the generation from a manifest file name,
// returning false for names that are not manifests.
func parseManifestGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "MANIFEST-") || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	gen, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "MANIFEST-"), ".json"), 10, 64)
	if err != nil || gen == 0 {
		return 0, false
	}
	return gen, true
}
