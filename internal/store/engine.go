// The persistent engine: an append-only segment-file store behind the
// unchanged Index API. Architecture (bitcask-meets-LSM, sized for the
// LogLens workload of append-heavy logs/anomalies plus small hot model
// documents):
//
//   - Every mutation is framed into the current WAL (wal.go) and applied
//     to a per-index memtable. Sync() is the durability point.
//   - Seals move memtables into immutable segment files (segment.go),
//     written atomically, then commit a new manifest generation and move
//     CURRENT (manifest.go). A crash at any step leaves the previous
//     generation plus its WAL fully intact.
//   - Queries read the merged view: memtable documents plus segment
//     documents fetched by directory offset, in the exact insertion order
//     the in-memory engine would use, with footer statistics skipping
//     segments that provably cannot match.
//   - Compaction and age-based retention (compact.go, retention.go)
//     replace whole segments in the next manifest; checkpoint restore
//     re-points at a pinned older generation (incremental checkpoints).
//
// Locking: engine.mu is the write lock (all mutations, seals, GC), taken
// before any Index lock; Index locks alone guard reads. lastErr lives
// under its own leaf mutex so read paths can record disk errors without
// touching engine.mu.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/url"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"loglens/internal/clock"
	"loglens/internal/fsx"
)

// Options configures a persistent store opened with Open.
type Options struct {
	// Dir is the data directory (created if missing).
	Dir string
	// FS is the filesystem seam (fsx.OS when nil); chaos.FaultFS in the
	// crash tests.
	FS fsx.FS
	// Clock drives seal-time bucket stamps and the background loops.
	Clock clock.Clock
	// Retention, when positive, drops whole segments older than this age
	// (by bucket) at retention ticks. Zero keeps everything.
	Retention time.Duration
	// RetentionExempt lists index names age-based retention never
	// touches (model storage must outlive log storage).
	RetentionExempt []string
	// BucketDuration is the segment time-bucket width (default 1h).
	BucketDuration time.Duration
	// FlushBytes seals the WAL into segments once it grows past this
	// (default 4 MiB).
	FlushBytes int64
	// WALBufferBytes is how many encoded bytes may sit in memory before
	// an append reaches the file (default 32 KiB). Sync always drains.
	WALBufferBytes int
	// MaxSegments per index before a seal compacts instead of appending
	// (default 8).
	MaxSegments int
	// CompactFrac is the dead-document fraction past which a seal
	// compacts an index (default 0.5).
	CompactFrac float64
	// Keep is how many manifest generations survive GC beyond pinned
	// checkpoint generations (default 4).
	Keep int
	// FlushInterval / CompactInterval / RetentionInterval enable the
	// background loops when positive; zero leaves the engine purely
	// caller-driven (tests drive it via Sync/Flush/ticks).
	FlushInterval     time.Duration
	CompactInterval   time.Duration
	RetentionInterval time.Duration
}

func (o *Options) defaults() {
	if o.FS == nil {
		o.FS = fsx.OS{}
	}
	if o.Clock == nil {
		o.Clock = clock.New()
	}
	if o.BucketDuration <= 0 {
		o.BucketDuration = time.Hour
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = 4 << 20
	}
	if o.WALBufferBytes <= 0 {
		o.WALBufferBytes = 32 << 10
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 8
	}
	if o.CompactFrac <= 0 {
		o.CompactFrac = 0.5
	}
	if o.Keep <= 0 {
		o.Keep = 4
	}
}

// ref locates one live document: in the memtable (seg nil) or framed at
// [off, off+length) of a sealed segment.
type ref struct {
	ord    uint64
	seg    *segment
	off    int64
	length int32
}

// persistIndex is the per-index persistent state hanging off an Index.
type persistIndex struct {
	eng  *engine
	refs map[string]ref
	mem  map[string]Document
	segs []*segment
	// dead collects ids deleted since the last manifest whose older
	// copies may live in segments; sealed as tombstones.
	dead map[string]bool
	// watermark: every ord below it has been evicted (count-cap FIFO or
	// Load replacement); segment entries below it are dropped at open.
	watermark uint64
	nextOrd   uint64
	// dropped marks a detached (DeleteIndex'd) index: stale handles keep
	// working in memory but no longer log to the WAL.
	dropped bool
}

type engine struct {
	fs   fsx.FS
	dir  string
	clk  clock.Clock
	opts Options
	st   *Store

	mu        sync.Mutex
	indices   []*Index
	byName    map[string]*Index
	gen       uint64
	nextSeg   uint64
	walFile   string
	walOps    []walRecord
	walPend   []byte
	walOnDisk int64
	walDirty  bool
	manifests map[uint64]*manifest
	pins      []uint64

	flushes     uint64
	compactions uint64
	segsDropped uint64

	segsSkipped atomic.Uint64
	readErrs    atomic.Uint64

	errMu   sync.Mutex
	lastErr error

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Open opens (or creates) a persistent store in opts.Dir. The returned
// Store serves the same API as New(); Close seals and releases it.
func Open(opts Options) (*Store, error) {
	opts.defaults()
	if opts.Dir == "" {
		return nil, errors.New("store: open: empty data dir")
	}
	e := &engine{
		fs:        opts.FS,
		dir:       opts.Dir,
		clk:       opts.Clock,
		opts:      opts,
		byName:    make(map[string]*Index),
		manifests: make(map[uint64]*manifest),
		stop:      make(chan struct{}),
	}
	s := &Store{indices: make(map[string]*Index), eng: e}
	e.st = s
	if err := e.fs.MkdirAll(e.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", e.dir, err)
	}
	if err := e.fs.MkdirAll(filepath.Join(e.dir, "seg"), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", e.dir, err)
	}
	if err := e.load(); err != nil {
		return nil, err
	}
	e.startLoops()
	return s, nil
}

func (e *engine) path(rel string) string {
	return filepath.Join(e.dir, filepath.FromSlash(rel))
}

// load reads CURRENT, rebuilds state from the live manifest, and replays
// the WAL tail. Called single-threaded from Open.
func (e *engine) load() error {
	cur, err := e.fs.ReadFile(e.path("CURRENT"))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("store: open: CURRENT: %w", err)
		}
		return e.bootstrap()
	}
	gen, ok := parseManifestGen(strings.TrimSpace(string(cur)))
	if !ok {
		return fmt.Errorf("store: open: CURRENT names no manifest: %q", cur)
	}
	e.scanManifests()
	m := e.manifests[gen]
	if m == nil {
		return fmt.Errorf("store: open: current manifest %s missing or corrupt", manifestName(gen))
	}
	e.gen = gen
	e.nextSeg = m.NextSeg
	e.walFile = m.WAL
	e.pins = append([]uint64(nil), m.Pins...)
	for i := range m.Indices {
		mi := &m.Indices[i]
		ix := e.ensureIndexLocked(mi.Name)
		if err := e.loadIndex(ix, mi); err != nil {
			return err
		}
	}
	return e.replayWAL()
}

// bootstrap writes the first (empty) generation so every later path can
// assume a live manifest exists.
func (e *engine) bootstrap() error {
	m := &manifest{Generation: 1, WAL: walName(1), NextSeg: 1}
	data, err := encodeManifest(m)
	if err != nil {
		return err
	}
	if err := fsx.WriteFileAtomic(e.fs, e.path(manifestName(1)), data, 0o644); err != nil {
		return fmt.Errorf("store: bootstrap: %w", err)
	}
	if err := fsx.WriteFileAtomic(e.fs, e.path("CURRENT"), []byte(manifestName(1)+"\n"), 0o644); err != nil {
		return fmt.Errorf("store: bootstrap: %w", err)
	}
	e.gen, e.nextSeg, e.walFile = 1, 1, walName(1)
	e.manifests[1] = m
	return nil
}

// scanManifests decodes every manifest file on disk into e.manifests;
// undecodable non-current files are simply GC fodder.
func (e *engine) scanManifests() {
	entries, err := e.fs.ReadDir(e.dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		gen, ok := parseManifestGen(ent.Name())
		if !ok {
			continue
		}
		data, err := e.fs.ReadFile(e.path(ent.Name()))
		if err != nil {
			continue
		}
		m, err := decodeManifest(data)
		if err != nil || m.Generation != gen {
			continue
		}
		e.manifests[gen] = m
	}
}

// loadIndex rebuilds one index's directory from its manifest entry:
// segments processed oldest to newest, newer entries shadowing older
// ones, tombstones erasing, watermarked ords dropped.
func (e *engine) loadIndex(ix *Index, mi *manifestIndex) error {
	pe := ix.pe
	ix.seq = mi.Seq
	ix.evicted = mi.Evicted
	ix.retention = mi.Retention
	pe.watermark = mi.Watermark
	pe.nextOrd = mi.NextOrd
	pe.segs = pe.segs[:0]
	pe.refs = make(map[string]ref)
	pe.mem = make(map[string]Document)
	pe.dead = make(map[string]bool)
	for j := range mi.Segments {
		sg, err := e.openSegment(mi.Segments[j])
		if err != nil {
			return fmt.Errorf("store: open index %q: %w", ix.name, err)
		}
		for k := range sg.footer.Entries {
			en := &sg.footer.Entries[k]
			if en.Del {
				sg.tombs++
				if old, ok := pe.refs[en.ID]; ok {
					if old.seg != nil {
						old.seg.live--
					}
					delete(pe.refs, en.ID)
				}
				continue
			}
			if en.Ord < pe.watermark {
				continue
			}
			if old, ok := pe.refs[en.ID]; ok && old.seg != nil {
				old.seg.live--
			}
			pe.refs[en.ID] = ref{ord: en.Ord, seg: sg, off: en.Off, length: en.Len}
			sg.live++
		}
		pe.segs = append(pe.segs, sg)
	}
	rebuildOrder(ix)
	return nil
}

// rebuildOrder derives the scan order (ascending ord) from the directory.
func rebuildOrder(ix *Index) {
	pe := ix.pe
	ix.order = ix.order[:0]
	for id := range pe.refs {
		ix.order = append(ix.order, id)
	}
	sort.Slice(ix.order, func(i, j int) bool {
		return pe.refs[ix.order[i]].ord < pe.refs[ix.order[j]].ord
	})
}

// openSegment opens a sealed segment file and decodes its footer via the
// trailer, without reading document records.
func (e *engine) openSegment(ms manifestSegment) (*segment, error) {
	fh, err := e.fs.Open(e.path(ms.File))
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", ms.File, err)
	}
	var magic [8]byte
	if _, err := fh.ReadAt(magic[:], 0); err != nil || string(magic[:]) != segMagic {
		fh.Close()
		return nil, fmt.Errorf("store: segment %s: %w", ms.File, errBadMagic)
	}
	tailLen := int64(64 << 10)
	if tailLen > ms.Bytes {
		tailLen = ms.Bytes
	}
	tail := make([]byte, tailLen)
	if _, err := fh.ReadAt(tail, ms.Bytes-tailLen); err != nil {
		fh.Close()
		return nil, fmt.Errorf("store: segment %s: read trailer: %w", ms.File, err)
	}
	ft, ftOff, err := decodeFooter(ms.Bytes, tail, ms.Bytes-tailLen)
	if errors.Is(err, errShortTail) {
		tail = make([]byte, ms.Bytes-ftOff)
		if _, rerr := fh.ReadAt(tail, ftOff); rerr != nil {
			fh.Close()
			return nil, fmt.Errorf("store: segment %s: read footer: %w", ms.File, rerr)
		}
		ft, _, err = decodeFooter(ms.Bytes, tail, ftOff)
	}
	if err != nil {
		fh.Close()
		return nil, fmt.Errorf("store: segment %s: %w", ms.File, err)
	}
	return &segment{
		file: ms.File, bytes: ms.Bytes, crc: ms.CRC, bucket: ms.Bucket,
		footer: ft, fh: fh,
	}, nil
}

// replayWAL applies the valid prefix of the current WAL on top of the
// manifest state; a torn tail marks the WAL dirty for atomic rewrite.
func (e *engine) replayWAL() error {
	data, err := e.fs.ReadFile(e.path(e.walFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: open: wal %s: %w", e.walFile, err)
	}
	recs, valid := decodeWAL(data)
	e.walOps = recs
	e.walOnDisk = int64(valid)
	e.walDirty = valid < len(data)
	for i := range recs {
		e.applyRecord(&recs[i])
	}
	return nil
}

// applyRecord replays one WAL record. Mutation helpers are shared with
// the live write path so replay is bit-identical.
func (e *engine) applyRecord(rec *walRecord) {
	switch rec.Op {
	case walMkIx:
		e.ensureIndexLocked(rec.Ix)
	case walDelIx:
		if ix := e.byName[rec.Ix]; ix != nil {
			e.detachLocked(ix)
			delete(e.st.indices, rec.Ix)
		}
	case walPut:
		ix := e.ensureIndexLocked(rec.Ix)
		var doc Document
		if err := json.Unmarshal(rec.Doc, &doc); err != nil {
			return
		}
		ix.pe.applyPut(ix, rec.ID, rec.Ord, doc)
		ix.seq = rec.Seq
	case walDel:
		if ix := e.byName[rec.Ix]; ix != nil {
			ix.pe.applyDelete(ix, rec.ID)
		}
	case walRetn:
		if ix := e.byName[rec.Ix]; ix != nil {
			ix.pe.applyWatermark(ix, rec.W, rec.Ev)
		}
	case walCap:
		if ix := e.byName[rec.Ix]; ix != nil {
			ix.retention = rec.Cap
			ix.pe.enforceRetentionLocked(ix, false)
		}
	case walLoad:
		ix := e.ensureIndexLocked(rec.Ix)
		var docs map[string]Document
		if err := json.Unmarshal(rec.Doc, &docs); err != nil {
			return
		}
		ix.pe.applyLoad(ix, docs)
	}
}

// ensureIndexLocked returns the named index, creating and registering it
// (engine + store maps) if missing. Caller holds e.mu (or is
// single-threaded in Open); s.mu must already be held or uncontended.
func (e *engine) ensureIndexLocked(name string) *Index {
	if ix := e.byName[name]; ix != nil {
		return ix
	}
	ix := newIndex(name)
	e.attachLocked(ix)
	e.st.indices[name] = ix
	return ix
}

// attachLocked wires a freshly created Index into the engine.
func (e *engine) attachLocked(ix *Index) {
	ix.pe = &persistIndex{
		eng:  e,
		refs: make(map[string]ref),
		mem:  make(map[string]Document),
		dead: make(map[string]bool),
	}
	e.indices = append(e.indices, ix)
	e.byName[ix.name] = ix
}

// detachLocked removes an index from the engine (DeleteIndex / delix
// replay). Stale handles keep serving their in-memory view but stop
// logging; segment handles stay open so in-flight readers are unharmed
// (GC may unlink the files underneath, which POSIX reads tolerate).
func (e *engine) detachLocked(ix *Index) {
	for i, other := range e.indices {
		if other == ix {
			e.indices = append(e.indices[:i], e.indices[i+1:]...)
			break
		}
	}
	delete(e.byName, ix.name)
	ix.mu.Lock()
	ix.pe.dropped = true
	ix.mu.Unlock()
}

// setErr / takeErr manage the sticky last-error surfaced by Stats and
// the storage health probe. Leaf lock: safe from any path.
func (e *engine) setErr(err error) {
	e.errMu.Lock()
	e.lastErr = err
	e.errMu.Unlock()
}

func (e *engine) getErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.lastErr
}

func (e *engine) noteReadErr(err error) {
	e.readErrs.Add(1)
	e.setErr(err)
}

// logLocked frames a record into the WAL buffer, spilling to disk past
// the buffer threshold. Append errors mark the WAL dirty (repaired by
// atomic rewrite at the next flush) — the mutation itself stays applied;
// durability is only promised at Sync.
func (e *engine) logLocked(rec walRecord) {
	e.walOps = append(e.walOps, rec)
	var err error
	e.walPend, err = encodeWAL(e.walPend, e.walOps[len(e.walOps)-1:])
	if err != nil {
		e.setErr(err)
		return
	}
	if len(e.walPend) >= e.opts.WALBufferBytes {
		if err := e.flushWALLocked(); err == nil {
			e.setErr(nil)
		}
	}
}

// flushWALLocked makes every logged record durable in the WAL file:
// append the pending buffer, or — after a torn append — rewrite the whole
// file atomically from the in-memory record log.
func (e *engine) flushWALLocked() error {
	if e.walDirty {
		return e.rewriteWALLocked()
	}
	if len(e.walPend) == 0 {
		return nil
	}
	if err := e.fs.Append(e.path(e.walFile), e.walPend, 0o644); err != nil {
		// The file may now hold a torn tail; only an atomic rewrite can
		// be trusted after this.
		e.walDirty = true
		e.setErr(err)
		return err
	}
	e.walOnDisk += int64(len(e.walPend))
	e.walPend = nil
	return nil
}

func (e *engine) rewriteWALLocked() error {
	buf, err := encodeWAL(nil, e.walOps)
	if err != nil {
		e.setErr(err)
		return err
	}
	if err := fsx.WriteFileAtomic(e.fs, e.path(e.walFile), buf, 0o644); err != nil {
		e.setErr(err)
		return err
	}
	e.walOnDisk = int64(len(buf))
	e.walPend = nil
	e.walDirty = false
	return nil
}

// maybeSealLocked triggers a seal when the WAL outgrows FlushBytes.
func (e *engine) maybeSealLocked() {
	if e.walOnDisk+int64(len(e.walPend)) < e.opts.FlushBytes {
		return
	}
	if err := e.sealLocked(sealPlan{}); err != nil {
		e.setErr(err)
	}
}

// segFileName mints the next segment file name (relative, slash-form).
func (e *engine) segFileName(ixName string) string {
	name := fmt.Sprintf("seg/%06d-%s.seg", e.nextSeg, url.PathEscape(ixName))
	e.nextSeg++
	return name
}

// gcLocked drops manifest generations beyond Keep (sparing pins), then
// sweeps files no retained manifest references. Best-effort: a failed
// remove is retried at the next GC.
func (e *engine) gcLocked() {
	gens := make([]uint64, 0, len(e.manifests))
	for g := range e.manifests {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	retained := make(map[uint64]bool, len(gens))
	for i, g := range gens {
		if i < e.opts.Keep {
			retained[g] = true
		}
	}
	for _, g := range e.pins {
		if _, ok := e.manifests[g]; ok {
			retained[g] = true
		}
	}
	for g := range e.manifests {
		if !retained[g] {
			delete(e.manifests, g)
		}
	}
	refFiles := map[string]bool{e.walFile: true}
	for _, m := range e.manifests {
		refFiles[m.WAL] = true
		for i := range m.Indices {
			for _, sg := range m.Indices[i].Segments {
				refFiles[sg.File] = true
			}
		}
	}
	if entries, err := e.fs.ReadDir(e.dir); err == nil {
		for _, ent := range entries {
			name := ent.Name()
			switch {
			case strings.HasSuffix(name, ".tmp"):
				e.fs.Remove(e.path(name))
			case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") && !refFiles[name]:
				e.fs.Remove(e.path(name))
			default:
				if gen, ok := parseManifestGen(name); ok && e.manifests[gen] == nil {
					e.fs.Remove(e.path(name))
				}
			}
		}
	}
	if entries, err := e.fs.ReadDir(filepath.Join(e.dir, "seg")); err == nil {
		for _, ent := range entries {
			rel := "seg/" + ent.Name()
			if !refFiles[rel] {
				e.fs.Remove(e.path(rel))
			}
		}
	}
}

// pinLocked remembers gen as checkpoint-referenced; the last two pins are
// kept, mirroring recovery's keep-2 checkpoint GC.
func (e *engine) pinLocked(gen uint64) {
	e.pins = append(e.pins, gen)
	if len(e.pins) > 2 {
		e.pins = e.pins[len(e.pins)-2:]
	}
}

func (e *engine) startLoops() {
	if e.opts.FlushInterval <= 0 && e.opts.CompactInterval <= 0 &&
		(e.opts.RetentionInterval <= 0 || e.opts.Retention <= 0) {
		return
	}
	e.wg.Add(1)
	go e.loop()
}

// loop is the background maintenance goroutine on the injected clock:
// periodic WAL flush, compaction-policy seals, and age-based retention.
func (e *engine) loop() {
	defer e.wg.Done()
	var flushC, compactC, retainC <-chan time.Time
	if e.opts.FlushInterval > 0 {
		t := e.clk.NewTicker(e.opts.FlushInterval)
		defer t.Stop()
		flushC = t.C()
	}
	if e.opts.CompactInterval > 0 {
		t := e.clk.NewTicker(e.opts.CompactInterval)
		defer t.Stop()
		compactC = t.C()
	}
	if e.opts.RetentionInterval > 0 && e.opts.Retention > 0 {
		t := e.clk.NewTicker(e.opts.RetentionInterval)
		defer t.Stop()
		retainC = t.C()
	}
	for {
		select {
		case <-e.stop:
			return
		case <-flushC:
			e.mu.Lock()
			if err := e.flushWALLocked(); err == nil {
				e.setErr(nil)
			}
			e.mu.Unlock()
		case <-compactC:
			e.mu.Lock()
			if err := e.sealLocked(sealPlan{policy: true}); err != nil {
				e.setErr(err)
			}
			e.mu.Unlock()
		case <-retainC:
			e.mu.Lock()
			if err := e.retentionTickLocked(e.clk.Now()); err != nil {
				e.setErr(err)
			}
			e.mu.Unlock()
		}
	}
}

func (e *engine) stopLoops() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
}

// canonicalize JSON round-trips a document so memtable and segment copies
// have identical dynamic types (float64 numbers, RFC3339 strings) — the
// property the oracle-equivalence tests lean on.
func canonicalize(doc Document) (json.RawMessage, Document, error) {
	raw, err := json.Marshal(doc)
	if err != nil {
		return nil, nil, fmt.Errorf("store: unencodable document: %w", err)
	}
	var cdoc Document
	if err := json.Unmarshal(raw, &cdoc); err != nil {
		return nil, nil, fmt.Errorf("store: canonicalize: %w", err)
	}
	return raw, cdoc, nil
}

// --- persistent Index mutations -------------------------------------

// put is the persistent Put/PutAuto body.
func (pe *persistIndex) put(ix *Index, id string, doc Document, auto bool) string {
	e := pe.eng
	raw, cdoc, cerr := canonicalize(doc)
	e.mu.Lock()
	ix.mu.Lock()
	if auto {
		ix.seq++
		id = ix.name + "-" + strconv.FormatUint(ix.seq, 10)
	}
	var ord uint64
	if old, ok := pe.refs[id]; ok {
		ord = old.ord
	} else {
		ord = pe.nextOrd
	}
	if cerr != nil {
		// Unencodable document: stays queryable in memory, cannot be
		// made durable. Surface through Stats/health.
		pe.applyPut(ix, id, ord, cloneDoc(doc))
		e.setErr(cerr)
	} else {
		pe.applyPut(ix, id, ord, cdoc)
		if !pe.dropped {
			e.logLocked(walRecord{Op: walPut, Ix: ix.name, ID: id, Ord: ord, Seq: ix.seq, Doc: raw})
		}
	}
	pe.enforceRetentionLocked(ix, !pe.dropped)
	ix.mu.Unlock()
	e.maybeSealLocked()
	e.mu.Unlock()
	return id
}

// applyPut installs a canonical document into the memtable, preserving
// the scan-order slot (and ord) of a replaced id. Shared with replay.
func (pe *persistIndex) applyPut(ix *Index, id string, ord uint64, doc Document) {
	if old, ok := pe.refs[id]; ok {
		if old.seg != nil {
			old.seg.live--
		}
		pe.refs[id] = ref{ord: old.ord}
	} else {
		pe.refs[id] = ref{ord: ord}
		ix.order = append(ix.order, id)
	}
	pe.mem[id] = doc
	if ord >= pe.nextOrd {
		pe.nextOrd = ord + 1
	}
}

// del is the persistent Delete body.
func (pe *persistIndex) del(ix *Index, id string) bool {
	e := pe.eng
	e.mu.Lock()
	ix.mu.Lock()
	ok := pe.applyDelete(ix, id)
	if ok && !pe.dropped {
		e.logLocked(walRecord{Op: walDel, Ix: ix.name, ID: id})
	}
	ix.mu.Unlock()
	e.mu.Unlock()
	return ok
}

func (pe *persistIndex) applyDelete(ix *Index, id string) bool {
	r, ok := pe.refs[id]
	if !ok {
		return false
	}
	delete(pe.refs, id)
	delete(pe.mem, id)
	if r.seg != nil {
		r.seg.live--
	}
	if len(pe.segs) > 0 {
		// An older copy may live in some segment; a tombstone at the
		// next seal keeps it dead across reopen.
		pe.dead[id] = true
	}
	for i, oid := range ix.order {
		if oid == id {
			ix.order = append(ix.order[:i], ix.order[i+1:]...)
			break
		}
	}
	return true
}

// enforceRetentionLocked applies the count cap exactly like the oracle:
// FIFO eviction off the order front, watermark advanced past the evicted
// ords, one retn record summarizing the batch.
func (pe *persistIndex) enforceRetentionLocked(ix *Index, logIt bool) {
	if ix.retention <= 0 {
		return
	}
	evictedAny := false
	for len(ix.order) > ix.retention {
		id := ix.order[0]
		ix.order = ix.order[1:]
		r := pe.refs[id]
		delete(pe.refs, id)
		delete(pe.mem, id)
		delete(pe.dead, id)
		if r.seg != nil {
			r.seg.live--
		}
		ix.evicted++
		pe.watermark = r.ord + 1
		evictedAny = true
	}
	if evictedAny && logIt && !pe.dropped {
		pe.eng.logLocked(walRecord{Op: walRetn, Ix: ix.name, W: pe.watermark, Ev: ix.evicted})
	}
}

// applyWatermark replays a retn record: evict every ord below w.
func (pe *persistIndex) applyWatermark(ix *Index, w, ev uint64) {
	for len(ix.order) > 0 {
		id := ix.order[0]
		r := pe.refs[id]
		if r.ord >= w {
			break
		}
		ix.order = ix.order[1:]
		delete(pe.refs, id)
		delete(pe.mem, id)
		delete(pe.dead, id)
		if r.seg != nil {
			r.seg.live--
		}
	}
	if w > pe.watermark {
		pe.watermark = w
	}
	ix.evicted = ev
}

// setRetention is the persistent SetRetention body.
func (pe *persistIndex) setRetention(ix *Index, max int) {
	e := pe.eng
	e.mu.Lock()
	ix.mu.Lock()
	ix.retention = max
	if !pe.dropped {
		e.logLocked(walRecord{Op: walCap, Ix: ix.name, Cap: max})
	}
	pe.enforceRetentionLocked(ix, !pe.dropped)
	ix.mu.Unlock()
	e.mu.Unlock()
}

// load is the persistent Load body: replace the index wholesale. The
// watermark jumps past every pre-existing ord, which is what keeps old
// segment entries dead across reopen without tombstoning each one.
func (pe *persistIndex) load(ix *Index, data []byte, docs map[string]Document) {
	e := pe.eng
	e.mu.Lock()
	ix.mu.Lock()
	pe.applyLoad(ix, docs)
	if !pe.dropped {
		e.logLocked(walRecord{Op: walLoad, Ix: ix.name, Doc: json.RawMessage(data)})
	}
	ix.mu.Unlock()
	e.maybeSealLocked()
	e.mu.Unlock()
}

func (pe *persistIndex) applyLoad(ix *Index, docs map[string]Document) {
	for _, r := range pe.refs {
		if r.seg != nil {
			r.seg.live--
		}
	}
	pe.refs = make(map[string]ref, len(docs))
	pe.mem = make(map[string]Document, len(docs))
	pe.dead = make(map[string]bool)
	pe.watermark = pe.nextOrd
	ix.order = ix.order[:0]
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ord := pe.nextOrd
		pe.nextOrd++
		pe.refs[id] = ref{ord: ord}
		pe.mem[id] = docs[id]
		ix.order = append(ix.order, id)
	}
}

// --- persistent Index reads ------------------------------------------

// fetch resolves one ref to its document. Memtable documents are cloned
// when the caller may retain them; segment fetches are always fresh
// allocations. A failed (corrupt) segment read counts as a read error
// and the document is skipped — detected, never silent.
func (pe *persistIndex) fetch(id string, r ref, retain bool) (Document, bool) {
	if r.seg == nil {
		d := pe.mem[id]
		if retain {
			return cloneDoc(d), true
		}
		return d, true
	}
	d, err := r.seg.fetchDoc(r)
	if err != nil {
		pe.eng.noteReadErr(err)
		return nil, false
	}
	return d, true
}

// skipSet returns the segments the footer statistics prove cannot match
// q; nil when nothing is skippable.
func (pe *persistIndex) skipSet(q Query) map[*segment]bool {
	if len(q.Term) == 0 && q.RangeField == "" {
		return nil
	}
	var m map[*segment]bool
	for _, sg := range pe.segs {
		if sg.footer.skippable(q) {
			if m == nil {
				m = make(map[*segment]bool)
			}
			m[sg] = true
			pe.eng.segsSkipped.Add(1)
		}
	}
	return m
}

// scanLocked walks the merged view in scan order, yielding matching
// documents. Caller holds ix.mu (read side).
func (pe *persistIndex) scanLocked(ix *Index, q Query, retain bool, fn func(id string, doc Document)) {
	skip := pe.skipSet(q)
	for _, id := range ix.order {
		r := pe.refs[id]
		if r.seg != nil && skip[r.seg] {
			continue
		}
		doc, ok := pe.fetch(id, r, retain)
		if !ok {
			continue
		}
		if matches(doc, q) {
			fn(id, doc)
		}
	}
}
