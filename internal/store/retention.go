// Age-based retention: whole time-bucketed segments are dropped once
// their bucket falls behind the retention horizon — the cheap tiered
// eviction the paper's deployment needs for "millions of logs per day"
// (count-cap FIFO retention lives with the write path in engine.go; this
// file is the clock-driven tier). Because buckets are stamped at seal
// time from the injected clock and segments are appended in time order,
// the victims of any tick form a prefix of each index's segment list,
// which keeps the drop shadow-safe: nothing in a dropped prefix can be
// the surviving copy of a later re-put, and the drop itself is just a
// manifest commit — crash-safe like every other seal.
package store

import "time"

// retentionTickLocked drops segments whose bucket window ended before
// now-Retention, committing a new generation when anything is
// droppable. Caller holds e.mu.
func (e *engine) retentionTickLocked(now time.Time) error {
	if e.opts.Retention <= 0 {
		return nil
	}
	cutoff := now.Add(-e.opts.Retention)
	var plan sealPlan
	for _, ix := range e.indices {
		if e.retentionExempt(ix.name) {
			continue
		}
		for _, sg := range ix.pe.segs {
			if sg.bucket.Add(e.opts.BucketDuration).After(cutoff) {
				// Buckets are monotone within an index: the first young
				// segment ends the droppable prefix.
				break
			}
			if plan.drop == nil {
				plan.drop = make(map[*Index]map[*segment]bool)
			}
			if plan.drop[ix] == nil {
				plan.drop[ix] = make(map[*segment]bool)
			}
			plan.drop[ix][sg] = true
		}
	}
	if plan.drop == nil {
		return nil
	}
	return e.sealLocked(plan)
}

func (e *engine) retentionExempt(name string) bool {
	for _, ex := range e.opts.RetentionExempt {
		if ex == name {
			return true
		}
	}
	return false
}
