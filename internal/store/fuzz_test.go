package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// corruptSegmentFile flips one byte inside the first record of the only
// segment file under dir, in place (same inode, so the store's open
// handle sees the corruption).
func corruptSegmentFile(t *testing.T, dir string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg", "*.seg"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one segment file, got %v (%v)", matches, err)
	}
	f, err := os.OpenFile(matches[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(len(segMagic) + 9) // one byte into the first record's JSON
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// fuzzSeedSegment builds a small valid segment for the corpus.
func fuzzSeedSegment() []byte {
	docs := []segDoc{
		{ID: "dead", Del: true},
		{ID: "a", Ord: 1, Doc: Document{"n": float64(1), "s": "x", "time": "2020-01-01T00:00:00Z"}},
		{ID: "b", Ord: 2, Doc: Document{"n": float64(2), "flag": true}},
	}
	data, _, err := encodeSegment(docs)
	if err != nil {
		panic(err)
	}
	return data
}

// FuzzSegmentRoundTrip throws arbitrary bytes at the segment decoder.
// decodeSegment must never panic; corrupt or truncated input must come
// back as an error (the checksums catching it), and any segment it
// accepts must re-encode into a byte-identical file — segments are
// canonical by construction.
func FuzzSegmentRoundTrip(f *testing.F) {
	valid := fuzzSeedSegment()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(valid[:len(valid)/2])           // truncated mid-body
	f.Add(valid[:len(valid)-3])           // truncated trailer
	f.Add(append([]byte("x"), valid...))  // shifted
	flip := append([]byte(nil), valid...) // single bit flip in a record
	flip[len(segMagic)+6] ^= 0x40
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, docs, err := decodeSegment(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		live := 0
		for _, d := range docs {
			if !d.Del {
				live++
			}
		}
		if ft.Count != live {
			t.Fatalf("accepted segment disagrees with itself: Count=%d, %d live docs", ft.Count, live)
		}
		again, ft2, err := encodeSegment(docs)
		if err != nil {
			t.Fatalf("accepted segment failed to re-encode: %v", err)
		}
		if !reflect.DeepEqual(ft.Entries, ft2.Entries) {
			t.Fatalf("re-encode changed the directory:\nwas  %+v\nnow %+v", ft.Entries, ft2.Entries)
		}
		_, docs2, err := decodeSegment(again)
		if err != nil {
			t.Fatalf("re-encoded segment failed to decode: %v", err)
		}
		aj, _ := json.Marshal(docs)
		bj, _ := json.Marshal(docs2)
		if string(aj) != string(bj) {
			t.Fatalf("round trip lost documents:\nwas %s\nnow %s", aj, bj)
		}
	})
}

// FuzzSegmentBitFlips complements the byte-level fuzz with a targeted
// corruption sweep: a valid segment with any single byte flipped must be
// detected — either rejected outright or, when the flip lands in one
// record's body, caught by that record's checksum at fetch time. Silent
// acceptance of changed bytes is the one forbidden outcome.
func FuzzSegmentBitFlips(f *testing.F) {
	valid := fuzzSeedSegment()
	for i := 0; i < len(valid); i += 7 {
		f.Add(i, byte(1<<uint(i%8)))
	}
	f.Fuzz(func(t *testing.T, pos int, mask byte) {
		if pos < 0 || pos >= len(valid) || mask == 0 {
			return
		}
		data := append([]byte(nil), valid...)
		data[pos] ^= mask
		ft, docs, err := decodeSegment(data)
		if err != nil {
			return // detected at decode
		}
		// decodeSegment re-verifies every record, so surviving a flip
		// means the mutation landed in JSON content whose bytes still
		// checksum... which is impossible for a single flip: CRC32 detects
		// all 1-bit errors. The only acceptable success is pos inside the
		// footer's JSON payload producing semantically identical output.
		origFt, origDocs, _ := decodeSegment(valid)
		aj, _ := json.Marshal(struct {
			F *segFooter
			D []segDoc
		}{ft, docs})
		bj, _ := json.Marshal(struct {
			F *segFooter
			D []segDoc
		}{origFt, origDocs})
		if string(aj) != string(bj) {
			t.Fatalf("flip at %d/%#x silently changed the decoded segment:\nwas %s\nnow %s", pos, mask, bj, aj)
		}
	})
}

// FuzzManifestDecode: arbitrary bytes must never panic the manifest
// decoder, and anything it accepts must be structurally sane and survive
// an encode/decode round trip.
func FuzzManifestDecode(f *testing.F) {
	good, err := encodeManifest(&manifest{
		Generation: 3,
		WAL:        walName(3),
		NextSeg:    7,
		Pins:       []uint64{1},
		Indices: []manifestIndex{{
			Name: "logs", Seq: 2, Watermark: 1, NextOrd: 9,
			Segments: []manifestSegment{{File: "seg/000001-logs.seg", Bytes: 128, CRC: 42, Count: 3}},
		}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte(`{"crc":0,"payload":{}}`))
	f.Add([]byte(`{"crc":1,"payload":{"generation":1}}`))
	f.Add(good[:len(good)-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		if m.Generation == 0 {
			t.Fatal("decodeManifest accepted generation 0")
		}
		seen := map[string]bool{}
		for _, ix := range m.Indices {
			if ix.Name == "" || seen[ix.Name] {
				t.Fatalf("decodeManifest accepted bad index list: %+v", m.Indices)
			}
			seen[ix.Name] = true
			for _, sg := range ix.Segments {
				if sg.File == "" || sg.Bytes <= 0 {
					t.Fatalf("decodeManifest accepted bad segment entry: %+v", sg)
				}
			}
		}
		enc, err := encodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest failed to re-encode: %v", err)
		}
		m2, err := decodeManifest(enc)
		if err != nil {
			t.Fatalf("re-encoded manifest failed to decode: %v", err)
		}
		aj, _ := json.Marshal(m)
		bj, _ := json.Marshal(m2)
		if string(aj) != string(bj) {
			t.Fatalf("manifest round trip drifted:\nwas %s\nnow %s", aj, bj)
		}
	})
}

// FuzzWALDecode: the WAL decoder must never panic, must only ever accept
// a prefix of what encodeWAL wrote, and the valid-prefix length it
// reports must never exceed the input.
func FuzzWALDecode(f *testing.F) {
	recs := []walRecord{
		{Op: walPut, Ix: "logs", ID: "a", Ord: 1, Doc: json.RawMessage(`{"n":1}`)},
		{Op: walDel, Ix: "logs", ID: "a"},
		{Op: walRetn, Ix: "logs", W: 3, Ev: 2},
	}
	good, err := encodeWAL(nil, recs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-2]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, valid := decodeWAL(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("decodeWAL reported valid prefix %d of %d bytes", valid, len(data))
		}
		// Re-encoding the accepted records must reproduce the valid
		// prefix byte for byte.
		enc, err := encodeWAL(nil, decoded)
		if err != nil {
			t.Fatalf("accepted WAL records failed to re-encode: %v", err)
		}
		if len(enc) != valid {
			t.Fatalf("re-encoded %d bytes, valid prefix was %d", len(enc), valid)
		}
		for i := range enc {
			if enc[i] != data[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}

// TestSegmentDecodeRejectsCorruptionTable is the deterministic spine of
// the fuzz targets: a fixed set of corruptions with the reason each must
// fail, so a checksum regression fails loudly in ordinary test runs
// where the fuzz engine never executes.
func TestSegmentDecodeRejectsCorruptionTable(t *testing.T) {
	valid := fuzzSeedSegment()
	mutate := func(m func([]byte) []byte) []byte {
		return m(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"magic-only", []byte(segMagic)},
		{"bad-magic", mutate(func(b []byte) []byte { b[0] ^= 0xff; return b })},
		{"truncated-half", valid[:len(valid)/2]},
		{"truncated-trailer", valid[:len(valid)-5]},
		{"record-flip", mutate(func(b []byte) []byte { b[len(segMagic)+9] ^= 1; return b })},
		{"footer-flip", mutate(func(b []byte) []byte { b[len(b)-20] ^= 1; return b })},
		{"trailer-flip", mutate(func(b []byte) []byte { b[len(b)-10] ^= 1; return b })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := decodeSegment(tc.data); err == nil {
				t.Fatalf("decodeSegment accepted %s", tc.name)
			}
		})
	}
	if _, _, err := decodeSegment(valid); err != nil {
		t.Fatalf("decodeSegment rejected the valid segment: %v", err)
	}
}

// TestSegmentFetchDetectsRecordCorruption covers the read path the fuzz
// targets cannot reach: a flipped byte inside a sealed record must fail
// the per-record checksum at fetch time, count as a read error, and skip
// the document rather than serve garbage.
func TestSegmentFetchDetectsRecordCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	defer s.Close()
	ix := s.Index("logs")
	for i := 0; i < 4; i++ {
		ix.Put(fmt.Sprintf("d%d", i), Document{"n": i, "pad": "xxxxxxxxxxxxxxxx"})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt one record byte in the (only) segment file on disk.
	st := s.Stats()
	if len(st.Indices) != 1 || st.Indices[0].Segments != 1 {
		t.Fatalf("unexpected layout: %+v", st.Indices)
	}
	corruptSegmentFile(t, dir)

	found := 0
	for i := 0; i < 4; i++ {
		if _, ok := ix.Get(fmt.Sprintf("d%d", i)); ok {
			found++
		}
	}
	if found == 4 {
		t.Fatal("corrupted record served as if intact")
	}
	after := s.Stats()
	if after.ReadErrors == 0 {
		t.Fatal("record corruption not counted as a read error")
	}
	if after.LastError == "" {
		t.Fatal("record corruption not surfaced in LastError")
	}
}
