package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"loglens/internal/clock"
)

// TestPropertyEngineMatchesOracle drives the segment engine and the
// in-memory engine through the same seeded random operation sequence —
// puts, deletes, retention caps, flushes, compactions, reopens — and
// requires every query (Search, CountWhere, Histogram, Terms, Get,
// Count, Dump) to return identical results. The in-memory engine is the
// oracle: it predates the segment engine and its behavior is pinned by
// the rest of the suite.
func TestPropertyEngineMatchesOracle(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runPropertyOps(t, seed, 6000)
		})
	}
}

func runPropertyOps(t *testing.T, seed int64, nops int) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	clk := clock.NewFake()
	opts := func(o *Options) {
		// Small thresholds so the op budget exercises WAL spills, size
		// seals, and policy compactions many times over.
		o.WALBufferBytes = 256
		o.FlushBytes = 4 << 10
		o.MaxSegments = 4
	}
	eng := openTest(t, dir, clk, opts)
	oracle := New()
	defer func() { eng.Close() }()

	names := []string{"alpha", "beta"}
	name := func() string { return names[rng.Intn(len(names))] }
	id := func() string { return fmt.Sprintf("id%02d", rng.Intn(40)) }

	randDoc := func() Document {
		doc := Document{
			"n": rng.Intn(100),
			"s": fmt.Sprintf("v%d", rng.Intn(6)),
		}
		if rng.Intn(2) == 0 {
			doc["f"] = rng.Float64() * 100
		}
		if rng.Intn(3) == 0 {
			doc["time"] = clk.Now().Add(time.Duration(rng.Intn(7200)) * time.Second).Format(time.RFC3339Nano)
		}
		if rng.Intn(5) == 0 {
			doc["flag"] = rng.Intn(2) == 0
		}
		return doc
	}
	randQuery := func() Query {
		var q Query
		if rng.Intn(2) == 0 {
			q.Term = map[string]any{"s": fmt.Sprintf("v%d", rng.Intn(8))}
		}
		if rng.Intn(3) == 0 {
			lo, hi := rng.Intn(100), rng.Intn(120)
			q.RangeField, q.RangeMin, q.RangeMax = "n", lo, hi
		}
		switch rng.Intn(4) {
		case 0:
			q.SortBy = "n"
		case 1:
			q.SortBy, q.Desc = "s", true
		case 2:
			q.SortBy = "time"
		}
		if rng.Intn(3) == 0 {
			q.Limit = 1 + rng.Intn(10)
		}
		return q
	}

	mustEq := func(op string, a, b any) {
		t.Helper()
		aj, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("%s: marshal engine result: %v", op, err)
		}
		bj, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("%s: marshal oracle result: %v", op, err)
		}
		if !bytes.Equal(aj, bj) {
			t.Fatalf("%s diverged:\nengine: %s\noracle: %s", op, aj, bj)
		}
	}
	checkDump := func(n string) {
		t.Helper()
		ed, err := eng.Index(n).Dump()
		if err != nil {
			t.Fatalf("engine dump %q: %v", n, err)
		}
		od, err := oracle.Index(n).Dump()
		if err != nil {
			t.Fatalf("oracle dump %q: %v", n, err)
		}
		var em, om map[string]Document
		if err := json.Unmarshal(ed, &em); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(od, &om); err != nil {
			t.Fatal(err)
		}
		mustEq("dump "+n, em, om)
	}

	for i := 0; i < nops; i++ {
		n := name()
		switch r := rng.Intn(100); {
		case r < 35: // put
			d, doc := id(), randDoc()
			eng.Index(n).Put(d, doc)
			oracle.Index(n).Put(d, doc)
		case r < 45: // put auto
			doc := randDoc()
			ei := eng.Index(n).PutAuto(doc)
			oi := oracle.Index(n).PutAuto(doc)
			if ei != oi {
				t.Fatalf("op %d: PutAuto ids diverged: engine %q oracle %q", i, ei, oi)
			}
		case r < 55: // delete
			d := id()
			ed := eng.Index(n).Delete(d)
			od := oracle.Index(n).Delete(d)
			if ed != od {
				t.Fatalf("op %d: Delete(%s/%s) diverged: engine %v oracle %v", i, n, d, ed, od)
			}
		case r < 58: // retention cap
			cap := 5 + rng.Intn(40)
			eng.Index(n).SetRetention(cap)
			oracle.Index(n).SetRetention(cap)
		case r < 70: // search
			q := randQuery()
			mustEq(fmt.Sprintf("op %d Search %s %+v", i, n, q),
				eng.Index(n).Search(q), oracle.Index(n).Search(q))
		case r < 76: // count-where
			q := randQuery()
			if eg, og := eng.Index(n).CountWhere(q), oracle.Index(n).CountWhere(q); eg != og {
				t.Fatalf("op %d: CountWhere diverged: engine %d oracle %d (%+v)", i, eg, og, q)
			}
		case r < 80: // histogram
			q := randQuery()
			et, ec := eng.Index(n).Histogram(q, "time", 10*time.Minute)
			ot, oc := oracle.Index(n).Histogram(q, "time", 10*time.Minute)
			mustEq(fmt.Sprintf("op %d Histogram times", i), et, ot)
			mustEq(fmt.Sprintf("op %d Histogram counts", i), ec, oc)
		case r < 84: // terms
			q := randQuery()
			limit := rng.Intn(4)
			mustEq(fmt.Sprintf("op %d Terms", i),
				eng.Index(n).Terms(q, "s", limit), oracle.Index(n).Terms(q, "s", limit))
		case r < 88: // get + counters
			d := id()
			edoc, eok := eng.Index(n).Get(d)
			odoc, ook := oracle.Index(n).Get(d)
			if eok != ook {
				t.Fatalf("op %d: Get(%s/%s) presence diverged: engine %v oracle %v", i, n, d, eok, ook)
			}
			mustEq(fmt.Sprintf("op %d Get %s/%s", i, n, d), edoc, odoc)
			if ec, oc := eng.Index(n).Count(), oracle.Index(n).Count(); ec != oc {
				t.Fatalf("op %d: Count diverged: engine %d oracle %d", i, ec, oc)
			}
			if ee, oe := eng.Index(n).Evicted(), oracle.Index(n).Evicted(); ee != oe {
				t.Fatalf("op %d: Evicted diverged: engine %d oracle %d", i, ee, oe)
			}
		case r < 92: // flush / sync
			if rng.Intn(2) == 0 {
				if err := eng.Flush(); err != nil {
					t.Fatalf("op %d: Flush: %v", i, err)
				}
			} else if err := eng.Sync(); err != nil {
				t.Fatalf("op %d: Sync: %v", i, err)
			}
		case r < 94: // compact
			if err := eng.Compact(); err != nil {
				t.Fatalf("op %d: Compact: %v", i, err)
			}
		case r < 96: // advance time (shifts seal buckets)
			clk.Advance(time.Duration(1+rng.Intn(90)) * time.Minute)
		case r < 98: // delete a whole index
			en := eng.DeleteIndex(n)
			on := oracle.DeleteIndex(n)
			if en != on {
				t.Fatalf("op %d: DeleteIndex(%s) diverged: engine %v oracle %v", i, n, en, on)
			}
		default: // reopen: close cleanly, open again, state must survive
			if err := eng.Close(); err != nil {
				t.Fatalf("op %d: Close: %v", i, err)
			}
			eng = openTest(t, dir, clk, opts)
			for _, nm := range names {
				checkDump(nm)
			}
		}
		if i%500 == 499 {
			for _, nm := range names {
				checkDump(nm)
			}
		}
	}
	for _, nm := range names {
		checkDump(nm)
		if ec, oc := eng.Index(nm).Count(), oracle.Index(nm).Count(); ec != oc {
			t.Fatalf("final Count(%s) diverged: engine %d oracle %d", nm, ec, oc)
		}
	}
}
