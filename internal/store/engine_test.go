package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/testutil"
)

// openTest opens a persistent store on dir with a fake clock, failing the
// test on error.
func openTest(t *testing.T, dir string, clk clock.Clock, mut ...func(*Options)) *Store {
	t.Helper()
	opts := Options{Dir: dir, Clock: clk}
	for _, m := range mut {
		m(&opts)
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEngineBasicPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake()
	s := openTest(t, dir, clk)
	if !s.Persistent() {
		t.Fatal("Open returned a non-persistent store")
	}
	ix := s.Index("logs")
	ix.Put("a", Document{"raw": "one", "n": 1})
	ix.Put("b", Document{"raw": "two", "n": 2})
	ix.Put("a", Document{"raw": "one-updated", "n": 3})
	if got, _ := ix.Get("a"); got["raw"] != "one-updated" {
		t.Fatalf("Get after re-put = %v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, clk)
	ix2 := s2.Index("logs")
	if n := ix2.Count(); n != 2 {
		t.Fatalf("Count after reopen = %d, want 2", n)
	}
	doc, ok := ix2.Get("a")
	if !ok || doc["raw"] != "one-updated" {
		t.Fatalf("Get(a) after reopen = %v, %v", doc, ok)
	}
	// Numbers come back as canonical JSON float64 either way.
	if doc["n"] != float64(3) {
		t.Fatalf("numeric field after reopen = %v (%T)", doc["n"], doc["n"])
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineSyncSurvivesAbort(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, clock.NewFake())
	s.Index("logs").Put("a", Document{"raw": "durable"})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Index("logs").Put("b", Document{"raw": "unsynced"})
	s.Abort() // crash: b never reached the WAL file

	s2 := openTest(t, dir, clock.NewFake())
	defer s2.Close()
	if _, ok := s2.Index("logs").Get("a"); !ok {
		t.Fatal("synced document lost by crash")
	}
}

func TestEngineFlushMovesDocsToSegments(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, clock.NewFake())
	ix := s.Index("logs")
	for i := 0; i < 10; i++ {
		ix.Put(fmt.Sprintf("d%02d", i), Document{"n": i})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st.Indices) != 1 || st.Indices[0].Segments != 1 || st.Indices[0].MemDocs != 0 {
		t.Fatalf("after flush: %+v", st.Indices)
	}
	// Segment-backed reads serve the same documents.
	for i := 0; i < 10; i++ {
		doc, ok := ix.Get(fmt.Sprintf("d%02d", i))
		if !ok || doc["n"] != float64(i) {
			t.Fatalf("Get(d%02d) = %v, %v", i, doc, ok)
		}
	}
	// Deleting a sealed doc tombstones it; the tombstone survives reopen.
	ix.Delete("d03")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, clock.NewFake())
	defer s2.Close()
	if _, ok := s2.Index("logs").Get("d03"); ok {
		t.Fatal("deleted document resurrected after reopen")
	}
	if n := s2.Index("logs").Count(); n != 9 {
		t.Fatalf("Count after tombstoned reopen = %d, want 9", n)
	}
}

func TestEngineCompactResolvesGarbage(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, clock.NewFake())
	ix := s.Index("logs")
	for round := 0; round < 3; round++ {
		for i := 0; i < 6; i++ {
			ix.Put(fmt.Sprintf("d%d", i), Document{"round": round, "n": i})
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ix.Delete("d5")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Indices[0].Segments != 1 || st.Indices[0].DeadDocs != 0 {
		t.Fatalf("after compact: %+v", st.Indices[0])
	}
	if n := ix.Count(); n != 5 {
		t.Fatalf("Count after compact = %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		doc, _ := ix.Get(fmt.Sprintf("d%d", i))
		if doc["round"] != float64(2) {
			t.Fatalf("d%d = %v, want round 2", i, doc)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, clock.NewFake())
	defer s2.Close()
	if n := s2.Index("logs").Count(); n != 5 {
		t.Fatalf("Count after compact+reopen = %d, want 5", n)
	}
}

func TestEngineCountCapRetentionAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, clock.NewFake())
	ix := s.Index("logs")
	ix.SetRetention(5)
	for i := 0; i < 8; i++ {
		ix.Put(fmt.Sprintf("d%d", i), Document{"n": i})
		if i == 3 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n, ev := ix.Count(), ix.Evicted(); n != 5 || ev != 3 {
		t.Fatalf("Count, Evicted = %d, %d; want 5, 3", n, ev)
	}
	if _, ok := ix.Get("d2"); ok {
		t.Fatal("FIFO-evicted doc still visible")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Watermark persists: sealed copies of evicted docs stay dead.
	s2 := openTest(t, dir, clock.NewFake())
	defer s2.Close()
	ix2 := s2.Index("logs")
	if n, ev := ix2.Count(), ix2.Evicted(); n != 5 || ev != 3 {
		t.Fatalf("after reopen: Count, Evicted = %d, %d; want 5, 3", n, ev)
	}
	if _, ok := ix2.Get("d7"); !ok {
		t.Fatal("retained doc lost")
	}
}

// TestEngineRetentionDeterminism drives the fake clock through a golden
// scenario: hourly buckets, 3h retention, one segment sealed per hour.
// The evicted counts and segment counts at every step are fixed by the
// engine's design; any drift is a behavior change.
func TestEngineRetentionDeterminism(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake()
	s := openTest(t, dir, clk, func(o *Options) {
		o.Retention = 3 * time.Hour
		o.RetentionExempt = []string{"models"}
		o.MaxSegments = 100 // keep compaction out of this test
	})
	ix := s.Index("logs")
	mod := s.Index("models")
	var gotSegs, gotEvicted []string
	for hour := 0; hour < 8; hour++ {
		ix.Put(fmt.Sprintf("h%d", hour), Document{"hour": hour})
		mod.Put(fmt.Sprintf("m%d", hour), Document{"hour": hour})
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Hour)
		if err := s.ApplyRetention(); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		var logs, models IndexStats
		for _, is := range st.Indices {
			switch is.Name {
			case "logs":
				logs = is
			case "models":
				models = is
			}
		}
		gotSegs = append(gotSegs, fmt.Sprintf("%d/%d", logs.Segments, models.Segments))
		gotEvicted = append(gotEvicted, fmt.Sprintf("%d", ix.Evicted()))
	}
	// Hour h seals bucket h; after advancing to h+1, buckets whose window
	// ended at or before h+1-3 are dropped: the steady state holds three
	// hourly segments, evicting one doc per tick from hour 3 on. Models
	// are exempt and accrete forever.
	wantSegs := []string{"1/1", "2/2", "3/3", "3/4", "3/5", "3/6", "3/7", "3/8"}
	wantEvicted := []string{"0", "0", "0", "1", "2", "3", "4", "5"}
	if !reflect.DeepEqual(gotSegs, wantSegs) {
		t.Errorf("segment counts per tick = %v, want %v", gotSegs, wantSegs)
	}
	if !reflect.DeepEqual(gotEvicted, wantEvicted) {
		t.Errorf("evicted counts per tick = %v, want %v", gotEvicted, wantEvicted)
	}
	if n := ix.Count(); n != 3 {
		t.Errorf("logs Count = %d, want 3", n)
	}
	if n := mod.Count(); n != 8 {
		t.Errorf("models Count = %d, want 8 (exempt)", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The aged-out state is durable.
	s2 := openTest(t, dir, clk)
	defer s2.Close()
	if n, ev := s2.Index("logs").Count(), s2.Index("logs").Evicted(); n != 3 || ev != 5 {
		t.Fatalf("after reopen: Count, Evicted = %d, %d; want 3, 5", n, ev)
	}
}

func TestEngineCheckpointLoadGeneration(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, clock.NewFake())
	defer s.Close()
	ix := s.Index("logs")
	ix.Put("a", Document{"v": 1})
	auto1 := ix.PutAuto(Document{"v": 2})
	gen, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if gen == 0 {
		t.Fatal("Checkpoint returned generation 0")
	}

	// Post-checkpoint traffic: mutate, delete, add an index.
	ix.Put("a", Document{"v": 10})
	ix.Delete(auto1)
	s.Index("extra").Put("x", Document{"v": 99})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := s.LoadGeneration(gen); err != nil {
		t.Fatal(err)
	}
	if doc, _ := s.Index("logs").Get("a"); doc["v"] != float64(1) {
		t.Fatalf("restored a = %v, want v=1", doc)
	}
	if _, ok := s.Index("logs").Get(auto1); !ok {
		t.Fatal("restored store lost the checkpointed auto doc")
	}
	if n := s.Index("extra").Count(); n != 0 {
		t.Fatalf("post-checkpoint index survived restore with %d docs", n)
	}
	// The sequence counter restores with the generation: new auto ids
	// continue past the checkpointed ones instead of colliding.
	auto2 := s.Index("logs").PutAuto(Document{"v": 2})
	if auto2 != "logs-2" {
		t.Fatalf("PutAuto after restore = %q, want %q (auto1 was %q)", auto2, "logs-2", auto1)
	}
}

func TestEngineLoadGenerationSurvivesGC(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, clock.NewFake(), func(o *Options) { o.Keep = 2 })
	ix := s.Index("logs")
	ix.Put("pinned", Document{"v": 1})
	gen, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Burn through many generations past the keep window.
	for i := 0; i < 10; i++ {
		ix.Put(fmt.Sprintf("later%d", i), Document{"v": i})
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The pin is recorded in the manifest, so a fresh process still
	// honors it.
	s2 := openTest(t, dir, clock.NewFake(), func(o *Options) { o.Keep = 2 })
	defer s2.Close()
	for i := 0; i < 5; i++ {
		s2.Index("logs").Put(fmt.Sprintf("even-later%d", i), Document{"v": i})
		if err := s2.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.LoadGeneration(gen); err != nil {
		t.Fatalf("pinned generation GC'd: %v", err)
	}
	if n := s2.Index("logs").Count(); n != 1 {
		t.Fatalf("restored Count = %d, want 1", n)
	}
}

func TestEngineDeleteIndex(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, clock.NewFake())
	s.Index("gone").Put("a", Document{"v": 1})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !s.DeleteIndex("gone") {
		t.Fatal("DeleteIndex returned false")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, clock.NewFake())
	defer s2.Close()
	for _, name := range s2.Indices() {
		if name == "gone" {
			t.Fatal("deleted index resurrected after reopen")
		}
	}
}

func TestEngineDumpLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, clock.NewFake())
	ix := s.Index("logs")
	ix.Put("a", Document{"v": 1})
	ix.Put("b", Document{"v": 2})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	ix.Put("c", Document{"v": 3})
	dump, err := ix.Dump()
	if err != nil {
		t.Fatal(err)
	}
	ix.Put("d", Document{"v": 4})
	if err := ix.Load(dump); err != nil {
		t.Fatal(err)
	}
	if n := ix.Count(); n != 3 {
		t.Fatalf("Count after Load = %d, want 3", n)
	}
	if _, ok := ix.Get("d"); ok {
		t.Fatal("Load did not replace contents")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Loaded state survives reopen; pre-Load sealed copies stay dead.
	s2 := openTest(t, dir, clock.NewFake())
	defer s2.Close()
	var got map[string]Document
	data, err := s2.Index("logs").Dump()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got["a"]["v"] != float64(1) || got["c"]["v"] != float64(3) {
		t.Fatalf("after reopen: %v", got)
	}
}

func TestEngineWALTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, clock.NewFake())
	s.Index("logs").Put("a", Document{"v": 1})
	s.Index("logs").Put("b", Document{"v": 2})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	gen := s.Generation()
	s.Abort()

	// Tear the WAL mid-frame, as a crash during append would.
	walPath := filepath.Join(dir, walName(gen))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, clock.NewFake())
	defer s2.Close()
	// The valid prefix (a) replays; the torn record (b) is lost — but the
	// store opens and keeps working.
	if _, ok := s2.Index("logs").Get("a"); !ok {
		t.Fatal("valid WAL prefix not replayed")
	}
	if _, ok := s2.Index("logs").Get("b"); ok {
		t.Fatal("torn WAL record replayed")
	}
	s2.Index("logs").Put("c", Document{"v": 3})
	if err := s2.Sync(); err != nil {
		t.Fatalf("Sync after torn-tail repair: %v", err)
	}
}

func TestEngineSkipStatsStayConservative(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake()
	s := openTest(t, dir, clk)
	defer s.Close()
	ix := s.Index("logs")
	base := clk.Now()
	for i := 0; i < 20; i++ {
		ix.Put(fmt.Sprintf("d%02d", i), Document{
			"n":    i,
			"tag":  fmt.Sprintf("t%d", i%3),
			"time": base.Add(time.Duration(i) * time.Minute),
		})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 25; i++ {
		ix.Put(fmt.Sprintf("d%02d", i), Document{"n": i, "tag": "t9"})
	}

	if n := ix.CountWhere(Query{Term: map[string]any{"tag": "t1"}}); n != 7 {
		t.Fatalf("CountWhere(tag=t1) = %d, want 7", n)
	}
	// A term no segment holds: the segment must be skipped, not scanned.
	before := s.Stats().SegmentsSkipped
	if n := ix.CountWhere(Query{Term: map[string]any{"tag": "t9"}}); n != 5 {
		t.Fatalf("CountWhere(tag=t9) = %d, want 5", n)
	}
	if after := s.Stats().SegmentsSkipped; after <= before {
		t.Fatalf("segment not skipped for impossible term (skips %d -> %d)", before, after)
	}
	hits := ix.Search(Query{RangeField: "n", RangeMin: 18, RangeMax: 21, SortBy: "n"})
	if len(hits) != 4 || hits[0].ID != "d18" || hits[3].ID != "d21" {
		t.Fatalf("range straddling memtable/segment = %v", hits)
	}
	times, counts := ix.Histogram(Query{}, "time", time.Hour)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 20 || len(times) == 0 {
		t.Fatalf("Histogram total = %d over %d buckets, want 20", total, len(times))
	}
}

func TestEngineRejectsCorruptCURRENT(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, clock.NewFake())
	s.Index("logs").Put("a", Document{"v": 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "CURRENT"), []byte("MANIFEST-999999.json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Clock: clock.NewFake()}); err == nil {
		t.Fatal("Open accepted a CURRENT pointing at a missing manifest")
	}
	// A garbage manifest is rejected too, with the path in the error.
	if err := os.WriteFile(filepath.Join(dir, "CURRENT"), []byte("MANIFEST-000001.json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST-000001.json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(Options{Dir: dir, Clock: clock.NewFake()})
	if err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("Open on corrupt manifest: %v", err)
	}
}

// TestEngineBackgroundLoops drives the maintenance goroutine on the fake
// clock: the flush ticker spills the WAL buffer, the compact ticker
// applies the seal policy, and the retention ticker ages a whole bucket
// of segments out — no wall-clock waits, ticks fire on Advance.
func TestEngineBackgroundLoops(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake()
	s := openTest(t, dir, clk, func(o *Options) {
		o.FlushInterval = time.Second
		o.CompactInterval = 2 * time.Second
		o.RetentionInterval = 3 * time.Second
		o.Retention = 30 * time.Minute
		o.BucketDuration = time.Minute
		o.RetentionExempt = []string{"models"}
	})
	defer s.Close()
	ix := s.Index("logs")
	ix.Put("a", Document{"n": 1})
	s.Index("models").Put("m", Document{"kind": "model"})

	// Flush tick: the buffered WAL record lands on disk. Re-advance in
	// the poll loop so a tick isn't lost to the loop goroutine still
	// starting up when the first Advance lands.
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		clk.Advance(time.Second)
		data, err := os.ReadFile(filepath.Join(dir, walName(s.Generation())))
		return err == nil && len(data) > 0
	}, "flush tick never spilled the WAL")

	// Force segments to exist, then age them past the horizon; the
	// retention tick must drop the logs bucket but spare the exempt index.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		clk.Advance(31 * time.Minute) // fires all three tickers
		for _, st := range s.Stats().Indices {
			if st.Name == "logs" && st.Segments == 0 {
				return true
			}
		}
		return false
	}, "retention tick never dropped the aged bucket")
	if _, ok := ix.Get("a"); ok {
		t.Fatal("document survived age-based retention")
	}
	if _, ok := s.Index("models").Get("m"); !ok {
		t.Fatal("exempt index lost its document to age-based retention")
	}
	after := s.Stats()
	if after.Generation <= before.Generation {
		t.Fatalf("retention did not commit a generation: %d -> %d", before.Generation, after.Generation)
	}
	// The compact ticker keeps running without error on an idle store.
	clk.Advance(4 * time.Second)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineWALReplayAllOps covers the crash-replay path for every WAL
// record type at once: caps, watermarks, index deletion, and bulk loads
// must all reconstruct from the log alone (no flush before the abort).
func TestEngineWALReplayAllOps(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake()
	s := openTest(t, dir, clk)
	logs := s.Index("logs")
	logs.SetRetention(3)
	for i := 0; i < 6; i++ {
		logs.Put(fmt.Sprintf("d%d", i), Document{"n": i}) // evicts d0..d2 via cap
	}
	logs.Delete("d4")
	doomed := s.Index("doomed")
	doomed.Put("x", Document{"n": 1})
	s.DeleteIndex("doomed")
	loaded := s.Index("loaded")
	if err := loaded.Load([]byte(`{"l1":{"v":"one"},"l2":{"v":"two"}}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Abort() // crash: only the WAL survives

	s2 := openTest(t, dir, clk)
	defer s2.Close()
	l2 := s2.Index("logs")
	if n := l2.Count(); n != 2 {
		t.Fatalf("replayed Count = %d, want 2 (cap 3, one deleted)", n)
	}
	if ev := l2.Evicted(); ev != 3 {
		t.Fatalf("replayed Evicted = %d, want 3", ev)
	}
	for _, gone := range []string{"d0", "d1", "d2", "d4"} {
		if _, ok := l2.Get(gone); ok {
			t.Fatalf("%s resurrected by WAL replay", gone)
		}
	}
	if _, ok := l2.Get("d5"); !ok {
		t.Fatal("d5 lost in WAL replay")
	}
	// Cap replays too: pushing past the cap still evicts the oldest.
	l2.Put("d6", Document{"n": 6})
	l2.Put("d7", Document{"n": 7})
	if _, ok := l2.Get("d3"); ok {
		t.Fatal("replayed retention cap not enforced on new puts")
	}
	if n := l2.Count(); n != 3 {
		t.Fatalf("Count after pushing past the cap = %d, want 3", n)
	}
	for _, name := range s2.Indices() {
		if name == "doomed" {
			t.Fatal("deleted index resurrected by WAL replay")
		}
	}
	if doc, ok := s2.Index("loaded").Get("l2"); !ok || doc["v"] != "two" {
		t.Fatalf("bulk load lost in WAL replay: %v %v", doc, ok)
	}
}
