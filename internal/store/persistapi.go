// Store-level surface of the persistent engine: durability (Sync/Flush),
// checkpoint generations (Checkpoint/LoadGeneration — the incremental
// hooks internal/recovery drives), lifecycle (Close/Abort), manual
// maintenance (Compact/ApplyRetention), and observability (Stats, served
// by the dashboard at /api/storage). Every method is a cheap no-op or
// ErrNotPersistent on an in-memory store, so callers can hold one *Store
// type either way.
package store

import (
	"errors"
	"fmt"
	"sort"

	"loglens/internal/fsx"
)

// ErrNotPersistent is returned by persistence-only operations on an
// in-memory store.
var ErrNotPersistent = errors.New("store: not a persistent store")

// Persistent reports whether the store is backed by the segment engine.
func (s *Store) Persistent() bool { return s.eng != nil }

// Generation returns the current manifest generation (0 when in-memory).
func (s *Store) Generation() uint64 {
	if s.eng == nil {
		return 0
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	return s.eng.gen
}

// Sync makes every acknowledged mutation durable in the WAL. This is the
// engine's fsync point: a crash after a successful Sync replays every
// mutation made before it.
func (s *Store) Sync() error {
	if s.eng == nil {
		return nil
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	err := s.eng.flushWALLocked()
	if err == nil {
		s.eng.setErr(nil)
	}
	return err
}

// Flush seals memtables into segments and commits a new manifest
// generation (a no-op when nothing changed since the last commit).
func (s *Store) Flush() error {
	if s.eng == nil {
		return nil
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	return s.eng.sealLocked(sealPlan{})
}

// Compact rewrites every index into a single segment each, resolving
// tombstones and shadowed documents.
func (s *Store) Compact() error {
	if s.eng == nil {
		return nil
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	return s.eng.sealLocked(sealPlan{compactAll: true})
}

// ApplyRetention runs one age-based retention pass at the engine clock's
// current time (the background loop's tick, callable manually).
func (s *Store) ApplyRetention() error {
	if s.eng == nil {
		return nil
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	return s.eng.retentionTickLocked(s.eng.clk.Now())
}

// Checkpoint seals the store (compaction policy applied) and returns the
// committed generation, pinning it so GC keeps it restorable. This is
// what makes pipeline checkpoints incremental: the checkpoint records
// the generation number; the immutable segment files are shared, not
// copied.
func (s *Store) Checkpoint() (uint64, error) {
	if s.eng == nil {
		return 0, ErrNotPersistent
	}
	e := s.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.sealLocked(sealPlan{policy: true}); err != nil {
		return 0, err
	}
	e.pinLocked(e.gen)
	return e.gen, nil
}

// LoadGeneration rewinds the store to a pinned manifest generation — the
// restore half of Checkpoint. The restored state is committed as a fresh
// generation (same segments, empty WAL) so the on-disk lineage converges
// with memory: replayed post-checkpoint traffic lands in the new WAL and
// regenerates identical auto-assigned ids from the restored sequence
// counters.
func (s *Store) LoadGeneration(gen uint64) error {
	if s.eng == nil {
		return ErrNotPersistent
	}
	e := s.eng
	s.mu.Lock()
	defer s.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.manifests[gen]
	if m == nil {
		data, err := e.fs.ReadFile(e.path(manifestName(gen)))
		if err != nil {
			return fmt.Errorf("store: load generation %d: %w", gen, err)
		}
		if m, err = decodeManifest(data); err != nil {
			return fmt.Errorf("store: load generation %d: %w", gen, err)
		}
		e.manifests[gen] = m
	}
	// Reset every live index, then rebuild the ones the generation
	// knows; indices born after the cut come back empty.
	for _, ix := range e.indices {
		ix.mu.Lock()
		for _, sg := range ix.pe.segs {
			sg.close()
		}
		pe := ix.pe
		pe.segs, pe.watermark, pe.nextOrd = nil, 0, 0
		pe.refs = make(map[string]ref)
		pe.mem = make(map[string]Document)
		pe.dead = make(map[string]bool)
		ix.order = ix.order[:0]
		ix.seq, ix.retention, ix.evicted = 0, 0, 0
		ix.mu.Unlock()
	}
	for i := range m.Indices {
		mi := &m.Indices[i]
		ix := e.ensureIndexLocked(mi.Name)
		ix.mu.Lock()
		err := e.loadIndex(ix, mi)
		ix.mu.Unlock()
		if err != nil {
			return err
		}
	}
	// Commit the restored state as a new generation past everything the
	// store has ever written, so stale future lineages cannot resurface.
	newGen := e.gen + 1
	for g := range e.manifests {
		if g >= newGen {
			newGen = g + 1
		}
	}
	e.pinLocked(gen)
	nextSeg := e.nextSeg
	if m.NextSeg > nextSeg {
		nextSeg = m.NextSeg
	}
	m2 := &manifest{
		Generation: newGen,
		WAL:        walName(newGen),
		NextSeg:    nextSeg,
		Pins:       append([]uint64(nil), e.pins...),
		Indices:    append([]manifestIndex(nil), m.Indices...),
	}
	data, err := encodeManifest(m2)
	if err != nil {
		return err
	}
	if err := fsx.WriteFileAtomic(e.fs, e.path(manifestName(newGen)), data, 0o644); err != nil {
		return fmt.Errorf("store: load generation %d: %w", gen, err)
	}
	if err := fsx.WriteFileAtomic(e.fs, e.path("CURRENT"), []byte(manifestName(newGen)+"\n"), 0o644); err != nil {
		return fmt.Errorf("store: load generation %d: %w", gen, err)
	}
	e.gen = newGen
	e.nextSeg = nextSeg
	e.fs.Remove(e.path(walName(newGen)))
	e.walFile = m2.WAL
	e.walOps, e.walPend, e.walOnDisk, e.walDirty = nil, nil, 0, false
	e.manifests[newGen] = m2
	e.setErr(nil)
	e.gcLocked()
	return nil
}

// Close seals outstanding state and releases the engine. The store must
// not be used afterwards.
func (s *Store) Close() error {
	if s.eng == nil {
		return nil
	}
	e := s.eng
	e.stopLoops()
	e.mu.Lock()
	defer e.mu.Unlock()
	err := e.sealLocked(sealPlan{})
	for _, ix := range e.indices {
		for _, sg := range ix.pe.segs {
			sg.close()
		}
	}
	return err
}

// Abort releases the engine without flushing anything — the crash-
// simulation half of Close, used by Pipeline.Kill. Unsynced mutations
// are lost, exactly as a real crash would lose them.
func (s *Store) Abort() {
	if s.eng == nil {
		return
	}
	e := s.eng
	e.stopLoops()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ix := range e.indices {
		for _, sg := range ix.pe.segs {
			sg.close()
		}
	}
}

// IndexStats is the per-index slice of Stats.
type IndexStats struct {
	Name         string `json:"name"`
	Docs         int    `json:"docs"`
	MemDocs      int    `json:"mem_docs,omitempty"`
	Segments     int    `json:"segments,omitempty"`
	SegmentBytes int64  `json:"segment_bytes,omitempty"`
	DeadDocs     int    `json:"dead_docs,omitempty"`
	Evicted      uint64 `json:"evicted,omitempty"`
	Retention    int    `json:"retention,omitempty"`
}

// Stats is the storage health snapshot served at /api/storage and fed to
// the storage health probe.
type Stats struct {
	Persistent      bool         `json:"persistent"`
	Dir             string       `json:"dir,omitempty"`
	Generation      uint64       `json:"generation,omitempty"`
	WALBytes        int64        `json:"wal_bytes,omitempty"`
	WALPending      int          `json:"wal_pending_bytes,omitempty"`
	WALDirty        bool         `json:"wal_dirty,omitempty"`
	Flushes         uint64       `json:"flushes,omitempty"`
	Compactions     uint64       `json:"compactions,omitempty"`
	SegmentsDropped uint64       `json:"segments_dropped,omitempty"`
	SegmentsSkipped uint64       `json:"segments_skipped,omitempty"`
	ReadErrors      uint64       `json:"read_errors,omitempty"`
	LastError       string       `json:"last_error,omitempty"`
	Indices         []IndexStats `json:"indices,omitempty"`
}

// Stats snapshots storage health for both modes.
func (s *Store) Stats() Stats {
	if s.eng == nil {
		st := Stats{}
		s.mu.RLock()
		names := make([]string, 0, len(s.indices))
		for name := range s.indices {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ix := s.indices[name]
			ix.mu.RLock()
			st.Indices = append(st.Indices, IndexStats{
				Name: name, Docs: len(ix.docs), Evicted: ix.evicted, Retention: ix.retention,
			})
			ix.mu.RUnlock()
		}
		s.mu.RUnlock()
		return st
	}
	e := s.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{
		Persistent:      true,
		Dir:             e.dir,
		Generation:      e.gen,
		WALBytes:        e.walOnDisk,
		WALPending:      len(e.walPend),
		WALDirty:        e.walDirty,
		Flushes:         e.flushes,
		Compactions:     e.compactions,
		SegmentsDropped: e.segsDropped,
		SegmentsSkipped: e.segsSkipped.Load(),
		ReadErrors:      e.readErrs.Load(),
	}
	if err := e.getErr(); err != nil {
		st.LastError = err.Error()
	}
	ordered := append([]*Index(nil), e.indices...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].name < ordered[j].name })
	for _, ix := range ordered {
		pe := ix.pe
		is := IndexStats{
			Name: ix.name, Docs: len(ix.order), MemDocs: len(pe.mem),
			Segments: len(pe.segs), Evicted: ix.evicted, Retention: ix.retention,
		}
		for _, sg := range pe.segs {
			is.SegmentBytes += sg.bytes
			is.DeadDocs += sg.footer.Count - sg.live
		}
		st.Indices = append(st.Indices, is)
	}
	return st
}
