package store

import (
	"encoding/json"
	"fmt"
	"net/url"
	"path/filepath"
	"strings"

	"loglens/internal/fsx"
)

// validateDump checks that a snapshot payload parses as a Dump without
// mutating anything — the pre-flight pass behind LoadDirFS's
// all-or-nothing guarantee.
func validateDump(data []byte) error {
	var docs map[string]Document
	return json.Unmarshal(data, &docs)
}

// SaveDir snapshots every index into dir, one JSON file per index
// (Elasticsearch persists to disk; our in-memory store offers explicit
// snapshots so a service restart does not lose the archived logs, models,
// and anomalies). Existing snapshot files for indices that no longer exist
// are removed.
func (s *Store) SaveDir(dir string) error {
	return s.SaveDirFS(fsx.OS{}, dir)
}

// SaveDirFS is SaveDir against an explicit filesystem — the seam the
// chaos harness injects storage faults through. Every snapshot file is
// written atomically (temp + rename), so a crash or injected fault
// mid-save never leaves a torn snapshot at a live path; at worst the
// directory holds a mix of old and new generations of different indices,
// each individually consistent.
func (s *Store) SaveDirFS(fsys fsx.FS, dir string) error {
	if fsys == nil {
		fsys = fsx.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	live := make(map[string]bool)
	for _, name := range s.Indices() {
		data, err := s.Index(name).Dump()
		if err != nil {
			return fmt.Errorf("store: save index %q: %w", name, err)
		}
		file := indexFile(name)
		live[file] = true
		if err := fsx.WriteFileAtomic(fsys, filepath.Join(dir, file), data, 0o644); err != nil {
			return fmt.Errorf("store: save index %q: %w", name, err)
		}
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".index.json") && !live[e.Name()] {
			fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return nil
}

// LoadDir restores every index snapshot found in dir, replacing the
// contents of indices with matching names and creating missing ones.
func (s *Store) LoadDir(dir string) error {
	return s.LoadDirFS(fsx.OS{}, dir)
}

// LoadDirFS is LoadDir against an explicit filesystem. The load is
// all-or-nothing: every snapshot file is read and parsed before any
// index is touched, so a corrupt or truncated snapshot leaves the store
// exactly as it was — never half-replaced.
func (s *Store) LoadDirFS(fsys fsx.FS, dir string) error {
	if fsys == nil {
		fsys = fsx.OS{}
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: load: %w", err)
	}
	// Phase 1: read and validate everything without mutating the store.
	type pending struct {
		name string
		data []byte
	}
	var loads []pending
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".index.json") {
			continue
		}
		name, err := indexName(e.Name())
		if err != nil {
			return err
		}
		data, err := fsys.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("store: load index %q: %w", name, err)
		}
		if err := validateDump(data); err != nil {
			return fmt.Errorf("store: load index %q: %w", name, err)
		}
		loads = append(loads, pending{name: name, data: data})
	}
	// Phase 2: install. Every payload already validated, so Load cannot
	// fail halfway through the set.
	for _, p := range loads {
		if err := s.Index(p.name).Load(p.data); err != nil {
			return err
		}
	}
	return nil
}

// indexFile maps an index name to a safe file name.
func indexFile(name string) string {
	return url.PathEscape(name) + ".index.json"
}

// indexName reverses indexFile.
func indexName(file string) (string, error) {
	base := strings.TrimSuffix(file, ".index.json")
	name, err := url.PathUnescape(base)
	if err != nil {
		return "", fmt.Errorf("store: load: bad snapshot file %q: %w", file, err)
	}
	return name, nil
}
