package store

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
)

// SaveDir snapshots every index into dir, one JSON file per index
// (Elasticsearch persists to disk; our in-memory store offers explicit
// snapshots so a service restart does not lose the archived logs, models,
// and anomalies). Existing snapshot files for indices that no longer exist
// are removed.
func (s *Store) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	live := make(map[string]bool)
	for _, name := range s.Indices() {
		data, err := s.Index(name).Dump()
		if err != nil {
			return fmt.Errorf("store: save index %q: %w", name, err)
		}
		file := indexFile(name)
		live[file] = true
		if err := os.WriteFile(filepath.Join(dir, file), data, 0o644); err != nil {
			return fmt.Errorf("store: save index %q: %w", name, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".index.json") && !live[e.Name()] {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return nil
}

// LoadDir restores every index snapshot found in dir, replacing the
// contents of indices with matching names and creating missing ones.
func (s *Store) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: load: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".index.json") {
			continue
		}
		name, err := indexName(e.Name())
		if err != nil {
			return err
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("store: load index %q: %w", name, err)
		}
		if err := s.Index(name).Load(data); err != nil {
			return err
		}
	}
	return nil
}

// indexFile maps an index name to a safe file name.
func indexFile(name string) string {
	return url.PathEscape(name) + ".index.json"
}

// indexName reverses indexFile.
func indexName(file string) (string, error) {
	base := strings.TrimSuffix(file, ".index.json")
	name, err := url.PathUnescape(base)
	if err != nil {
		return "", fmt.Errorf("store: load: bad snapshot file %q: %w", file, err)
	}
	return name, nil
}
