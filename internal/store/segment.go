// Segment files: the immutable, sorted building block of the persistent
// store. A segment is written once (atomically, via fsx.WriteFileAtomic),
// then only ever read or dropped — compaction and retention replace whole
// segments in the manifest instead of mutating them, which is what makes
// checkpoints incremental: a checkpoint references segment files, it never
// re-copies documents.
//
// On-disk layout (all integers little-endian):
//
//	[8]  magic "LLSEGv1\n"
//	[..] document records, each [4 len][4 crc32(payload)][payload JSON]
//	[..] footer JSON (segFooter)
//	[4]  footer length
//	[4]  crc32 of footer JSON
//	[8]  magic again (trailer sentinel)
//
// The footer carries the per-document directory (id → offset/length/ord)
// plus sparse per-field statistics, so opening a segment reads only the
// trailer and queries can skip segments that provably cannot match. Every
// document fetch re-verifies the record checksum, so a flipped bit on disk
// surfaces as a detected read error, never as silent corruption or a panic.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"loglens/internal/fsx"
)

const segMagic = "LLSEGv1\n"

// maxRecordLen bounds a single framed record; anything larger is treated
// as corruption (the fuzz targets feed arbitrary lengths here).
const maxRecordLen = 1 << 28

// maxStatVals caps the distinct-value set tracked per field; past it the
// stat is marked overflowed and term-skipping falls back to ranges.
const maxStatVals = 16

// maxStatFields caps how many fields a segment footer indexes; past it
// the footer is marked overflowed and missing-field skips are disabled.
const maxStatFields = 32

var (
	errBadMagic   = errors.New("store: segment: bad magic")
	errTruncated  = errors.New("store: segment: truncated")
	errBadCheck   = errors.New("store: segment: checksum mismatch")
	errBadRecord  = errors.New("store: segment: malformed record")
	errBadFooter  = errors.New("store: segment: malformed footer")
	errOutOfRange = errors.New("store: segment: directory entry out of range")
)

// appendRecord frames payload as [len][crc][payload] onto dst. The frame
// is shared by segment records and WAL records.
func appendRecord(dst []byte, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readRecord decodes one frame at off, returning the payload and the
// offset of the next frame. Any framing or checksum violation is an
// error; callers decide whether that is corruption (segments) or a torn
// tail (WAL replay).
func readRecord(data []byte, off int) (payload []byte, next int, err error) {
	if off < 0 || off+8 > len(data) {
		return nil, 0, errTruncated
	}
	n := binary.LittleEndian.Uint32(data[off : off+4])
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n > maxRecordLen || off+8+int(n) > len(data) {
		return nil, 0, errTruncated
	}
	payload = data[off+8 : off+8+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, errBadCheck
	}
	return payload, off + 8 + int(n), nil
}

// segDoc is one record payload: a document pinned to its id and scan
// order, or a tombstone (Del) that erases the id from older segments when
// the directory is rebuilt at open.
type segDoc struct {
	ID  string   `json:"id"`
	Ord uint64   `json:"ord,omitempty"`
	Del bool     `json:"del,omitempty"`
	Doc Document `json:"doc,omitempty"`
}

// segEntry is one footer directory row: where the record for ID lives.
// Off/Len frame the whole record (header included) so a fetch can verify
// the checksum without touching neighboring bytes.
type segEntry struct {
	ID  string `json:"id"`
	Ord uint64 `json:"ord,omitempty"`
	Off int64  `json:"off"`
	Len int32  `json:"len"`
	Del bool   `json:"del,omitempty"`
}

// fieldStat is the sparse per-field index in a segment footer: enough to
// prove "no document in this segment can match", never to prove a match.
type fieldStat struct {
	// Count is how many live documents carry the field.
	Count int `json:"count"`
	// NumCount / TimeCount say how many of those values are numeric or
	// time-like; the min/max bounds cover exactly those values.
	NumCount  int       `json:"num_count,omitempty"`
	NumMin    float64   `json:"num_min,omitempty"`
	NumMax    float64   `json:"num_max,omitempty"`
	TimeCount int       `json:"time_count,omitempty"`
	TimeMin   time.Time `json:"time_min,omitempty"`
	TimeMax   time.Time `json:"time_max,omitempty"`
	// Vals is the complete distinct set of fmt.Sprint forms, unless Over
	// reports the set overflowed maxStatVals and is absent.
	Vals []string `json:"vals,omitempty"`
	Over bool     `json:"over,omitempty"`
}

// segFooter is the segment trailer: directory plus field statistics.
type segFooter struct {
	// Count is the number of live (non-tombstone) entries.
	Count   int        `json:"count"`
	Entries []segEntry `json:"entries"`
	// Fields indexes live documents' fields; FieldsOver reports the map
	// was capped and may be missing fields entirely.
	Fields     map[string]*fieldStat `json:"fields,omitempty"`
	FieldsOver bool                  `json:"fields_over,omitempty"`
	MinOrd     uint64                `json:"min_ord,omitempty"`
	MaxOrd     uint64                `json:"max_ord,omitempty"`
}

// segment is an open sealed segment: immutable bytes on disk plus the
// decoded footer and a live-document count maintained by the engine as
// newer writes shadow this segment's entries.
type segment struct {
	file   string // path relative to the data dir, e.g. "seg/000001-logs.seg"
	bytes  int64
	crc    uint32 // checksum of the full file, recorded in the manifest
	bucket time.Time
	footer *segFooter
	// live is how many directory refs still point here; maintained under
	// the owning index's lock. Zero-live tombstone-free segments are
	// dropped at the next manifest commit.
	live  int
	tombs int // tombstone entries; they pin the segment until compaction

	openMu sync.Mutex
	fh     fsx.File
}

// encodeSegment serializes docs (already in scan order, tombstones first)
// into the segment format, returning the bytes and the footer it embedded.
func encodeSegment(docs []segDoc) ([]byte, *segFooter, error) {
	buf := make([]byte, 0, 1024)
	buf = append(buf, segMagic...)
	ft := &segFooter{Fields: make(map[string]*fieldStat)}
	vals := make(map[string]map[string]bool)
	for i := range docs {
		sd := &docs[i]
		payload, err := json.Marshal(sd)
		if err != nil {
			return nil, nil, fmt.Errorf("store: segment: encode doc %q: %w", sd.ID, err)
		}
		off := int64(len(buf))
		buf = appendRecord(buf, payload)
		ft.Entries = append(ft.Entries, segEntry{
			ID: sd.ID, Ord: sd.Ord, Off: off, Len: int32(int64(len(buf)) - off), Del: sd.Del,
		})
		if sd.Del {
			continue
		}
		ft.Count++
		if ft.Count == 1 || sd.Ord < ft.MinOrd {
			ft.MinOrd = sd.Ord
		}
		if sd.Ord > ft.MaxOrd {
			ft.MaxOrd = sd.Ord
		}
		statFields(ft, vals, sd.Doc)
	}
	if len(ft.Fields) == 0 {
		ft.Fields = nil
	}
	footerJSON, err := json.Marshal(ft)
	if err != nil {
		return nil, nil, fmt.Errorf("store: segment: encode footer: %w", err)
	}
	buf = append(buf, footerJSON...)
	var tail [16]byte
	binary.LittleEndian.PutUint32(tail[0:4], uint32(len(footerJSON)))
	binary.LittleEndian.PutUint32(tail[4:8], crc32.ChecksumIEEE(footerJSON))
	copy(tail[8:16], segMagic)
	buf = append(buf, tail[:]...)
	return buf, ft, nil
}

// statFields folds one live document into the footer's field statistics.
func statFields(ft *segFooter, vals map[string]map[string]bool, doc Document) {
	for field, v := range doc {
		st, ok := ft.Fields[field]
		if !ok {
			if len(ft.Fields) >= maxStatFields {
				ft.FieldsOver = true
				continue
			}
			st = &fieldStat{}
			ft.Fields[field] = st
			vals[field] = make(map[string]bool)
		}
		st.Count++
		if n, ok := asFloat(v); ok {
			if st.NumCount == 0 || n < st.NumMin {
				st.NumMin = n
			}
			if st.NumCount == 0 || n > st.NumMax {
				st.NumMax = n
			}
			st.NumCount++
		}
		if t, ok := asTime(v); ok {
			if st.TimeCount == 0 || t.Before(st.TimeMin) {
				st.TimeMin = t
			}
			if st.TimeCount == 0 || t.After(st.TimeMax) {
				st.TimeMax = t
			}
			st.TimeCount++
		}
		if !st.Over {
			s := fmt.Sprint(v)
			if !vals[field][s] {
				if len(vals[field]) >= maxStatVals {
					st.Over = true
					st.Vals = nil
				} else {
					vals[field][s] = true
					st.Vals = append(st.Vals, s)
				}
			}
		}
	}
}

// decodeFooter validates the trailer and footer of a segment given the
// full file length and the tail bytes (at least the last 16, ideally
// more). It returns the footer and the offset where the footer JSON
// starts. Corruption is an error, never a panic.
func decodeFooter(size int64, tail []byte, tailOff int64) (*segFooter, int64, error) {
	if size < int64(len(segMagic))+16 {
		return nil, 0, errTruncated
	}
	if tailOff+int64(len(tail)) != size || len(tail) < 16 {
		return nil, 0, errTruncated
	}
	t := tail[len(tail)-16:]
	if string(t[8:16]) != segMagic {
		return nil, 0, errBadMagic
	}
	ftLen := int64(binary.LittleEndian.Uint32(t[0:4]))
	ftCRC := binary.LittleEndian.Uint32(t[4:8])
	ftOff := size - 16 - ftLen
	if ftLen > maxRecordLen || ftOff < int64(len(segMagic)) {
		return nil, 0, errTruncated
	}
	if ftOff < tailOff {
		// Caller's tail window doesn't cover the footer; report where it
		// starts so the caller can re-read.
		return nil, ftOff, errShortTail
	}
	footerJSON := tail[ftOff-tailOff : int64(len(tail))-16]
	if crc32.ChecksumIEEE(footerJSON) != ftCRC {
		return nil, 0, errBadCheck
	}
	var ft segFooter
	if err := json.Unmarshal(footerJSON, &ft); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", errBadFooter, err)
	}
	if ft.Count < 0 || len(ft.Entries) > maxRecordLen {
		return nil, 0, errBadFooter
	}
	for i := range ft.Entries {
		e := &ft.Entries[i]
		if e.Off < int64(len(segMagic)) || e.Len < 8 || e.Off+int64(e.Len) > ftOff {
			return nil, 0, errOutOfRange
		}
	}
	return &ft, ftOff, nil
}

// errShortTail signals decodeFooter was handed too small a tail window.
var errShortTail = errors.New("store: segment: tail window too small")

// decodeSegment fully validates segment bytes: magic, trailer, footer
// checksum, every directory entry in bounds, every record checksum, every
// payload well-formed and consistent with its entry. This is the fuzz
// surface and the deep-verify path; the runtime open path reads only the
// trailer (openSegment) and verifies records lazily on fetch.
func decodeSegment(data []byte) (*segFooter, []segDoc, error) {
	if len(data) < len(segMagic)+16 {
		return nil, nil, errTruncated
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, nil, errBadMagic
	}
	ft, _, err := decodeFooter(int64(len(data)), data, 0)
	if err != nil {
		return nil, nil, err
	}
	docs := make([]segDoc, 0, len(ft.Entries))
	for i := range ft.Entries {
		e := &ft.Entries[i]
		payload, _, err := readRecord(data, int(e.Off))
		if err != nil {
			return nil, nil, err
		}
		if int64(len(payload))+8 != int64(e.Len) {
			return nil, nil, errBadRecord
		}
		var sd segDoc
		if err := json.Unmarshal(payload, &sd); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", errBadRecord, err)
		}
		if sd.ID != e.ID || sd.Ord != e.Ord || sd.Del != e.Del {
			return nil, nil, errBadRecord
		}
		docs = append(docs, sd)
	}
	return ft, docs, nil
}

// fetchDoc reads and verifies one record from the open segment file.
func (sg *segment) fetchDoc(e ref) (Document, error) {
	buf := make([]byte, e.length)
	if _, err := sg.fh.ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("store: segment %s: read: %w", sg.file, err)
	}
	payload, _, err := readRecord(buf, 0)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", sg.file, err)
	}
	var sd segDoc
	if err := json.Unmarshal(payload, &sd); err != nil {
		return nil, fmt.Errorf("store: segment %s: %w: %v", sg.file, errBadRecord, err)
	}
	return sd.Doc, nil
}

func (sg *segment) close() {
	sg.openMu.Lock()
	if sg.fh != nil {
		sg.fh.Close()
		sg.fh = nil
	}
	sg.openMu.Unlock()
}

// skippable reports whether no document in the segment can possibly match
// q — the only claim the sparse footer stats are allowed to make. Every
// branch errs toward "might match": value comparison in queries falls
// back to string forms across mixed types, so skipping is only safe when
// the numeric range, the time range, and the complete distinct-value set
// all rule a match out.
func (ft *segFooter) skippable(q Query) bool {
	if ft.Count == 0 {
		// Tombstone-only segments hold nothing searchable.
		return true
	}
	for field, want := range q.Term {
		if fmt.Sprint(want) == "<nil>" {
			// A nil-printing term matches documents lacking the field;
			// the stats cannot rule that out.
			return false
		}
		st, ok := ft.Fields[field]
		if !ok {
			if ft.FieldsOver {
				continue // field may exist but was uncounted; no claim
			}
			return true // no live document carries the field
		}
		if !termPossible(st, want) {
			return true
		}
	}
	if q.RangeField != "" {
		st, ok := ft.Fields[q.RangeField]
		if !ok {
			if !ft.FieldsOver {
				return true // range queries require the field present
			}
		} else if !rangePossible(st, q.RangeMin, q.RangeMax) {
			return true
		}
	}
	return false
}

// termPossible reports whether some value summarized by st could compare
// equal to want under compareValues (time, then numeric, then string
// form).
func termPossible(st *fieldStat, want any) bool {
	if st.Over {
		return true // distinct set incomplete: string-path equality unknown
	}
	ws := fmt.Sprint(want)
	for _, v := range st.Vals {
		if v == ws {
			return true // exact string-form collision
		}
	}
	if wt, ok := asTime(want); ok {
		if st.TimeCount > 0 && !wt.Before(st.TimeMin) && !wt.After(st.TimeMax) {
			return true // a chronologically equal value may exist
		}
	}
	if wf, ok := asFloat(want); ok {
		if st.NumCount > 0 && wf >= st.NumMin && wf <= st.NumMax {
			return true // a numerically equal value may exist
		}
	}
	return false
}

// rangePossible reports whether some value summarized by st could fall in
// [lo, hi]. Only type-pure cases make a claim: mixed-type fields compare
// by string form, which min/max bounds cannot reason about.
func rangePossible(st *fieldStat, lo, hi any) bool {
	if st.Count == 0 {
		return false
	}
	if st.NumCount == st.Count {
		lf, lok := asFloat(lo)
		hf, hok := asFloat(hi)
		if (lo == nil || lok) && (hi == nil || hok) {
			if lo != nil && st.NumMax < lf {
				return false
			}
			if hi != nil && st.NumMin > hf {
				return false
			}
			return true
		}
	}
	if st.TimeCount == st.Count {
		lt, lok := asTime(lo)
		ht, hok := asTime(hi)
		if (lo == nil || lok) && (hi == nil || hok) {
			if lo != nil && st.TimeMax.Before(lt) {
				return false
			}
			if hi != nil && st.TimeMin.After(ht) {
				return false
			}
			return true
		}
	}
	return true
}
