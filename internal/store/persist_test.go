package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadDir(t *testing.T) {
	dir := t.TempDir()
	s := New()
	s.Index("logs-web/prod").Put("a", Document{"raw": "line one"})
	s.Index("anomalies").Put("x", Document{"type": "missing-end-state"})
	s.Index("models").Put("m1", Document{"body": "{}"})
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	s2 := New()
	if err := s2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := s2.Indices(); len(got) != 3 {
		t.Fatalf("indices = %v", got)
	}
	doc, ok := s2.Index("logs-web/prod").Get("a")
	if !ok || doc["raw"] != "line one" {
		t.Errorf("doc = %v/%v (slash in index name must round-trip)", doc, ok)
	}
	if s2.Index("anomalies").Count() != 1 {
		t.Error("anomalies lost")
	}
}

func TestSaveDirPrunesDeletedIndices(t *testing.T) {
	dir := t.TempDir()
	s := New()
	s.Index("a").Put("1", Document{"x": 1})
	s.Index("b").Put("1", Document{"x": 1})
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	s.DeleteIndex("b")
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := s2.Indices(); len(got) != 1 || got[0] != "a" {
		t.Errorf("indices after prune = %v", got)
	}
}

func TestLoadDirIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a snapshot"), 0o644)
	s := New()
	s.Index("a").Put("1", Document{"x": 1})
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if len(s2.Indices()) != 1 {
		t.Errorf("indices = %v", s2.Indices())
	}
}

func TestLoadDirMissing(t *testing.T) {
	s := New()
	if err := s.LoadDir("/nonexistent/path/zz"); err == nil {
		t.Error("missing dir must fail")
	}
}

func TestLoadDirCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "bad.index.json"), []byte("{not json"), 0o644)
	s := New()
	if err := s.LoadDir(dir); err == nil {
		t.Error("corrupt snapshot must fail")
	}
}
