package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	ix := s.Index("logs")
	ix.Put("a", Document{"msg": "hello", "n": 1})
	doc, ok := ix.Get("a")
	if !ok || doc["msg"] != "hello" {
		t.Fatalf("Get = %v/%v", doc, ok)
	}
	// Returned documents are copies.
	doc["msg"] = "mutated"
	doc2, _ := ix.Get("a")
	if doc2["msg"] != "hello" {
		t.Error("Get must return a copy")
	}
	if !ix.Delete("a") || ix.Delete("a") {
		t.Error("Delete semantics")
	}
	if ix.Count() != 0 {
		t.Errorf("count = %d", ix.Count())
	}
}

func TestPutAuto(t *testing.T) {
	s := New()
	ix := s.Index("anomalies")
	id1 := ix.PutAuto(Document{"x": 1})
	id2 := ix.PutAuto(Document{"x": 2})
	if id1 == id2 {
		t.Fatal("auto IDs must be unique")
	}
	if ix.Count() != 2 {
		t.Errorf("count = %d", ix.Count())
	}
}

func TestTermSearch(t *testing.T) {
	s := New()
	ix := s.Index("t")
	for i := 0; i < 10; i++ {
		ix.PutAuto(Document{"source": fmt.Sprintf("s%d", i%2), "n": i})
	}
	hits := ix.Search(Query{Term: map[string]any{"source": "s1"}})
	if len(hits) != 5 {
		t.Fatalf("hits = %d, want 5", len(hits))
	}
	for _, h := range hits {
		if h.Doc["source"] != "s1" {
			t.Errorf("wrong hit %v", h.Doc)
		}
	}
	if n := ix.CountWhere(Query{Term: map[string]any{"source": "s0"}}); n != 5 {
		t.Errorf("CountWhere = %d", n)
	}
}

func TestRangeAndSort(t *testing.T) {
	s := New()
	ix := s.Index("t")
	for i := 0; i < 10; i++ {
		ix.PutAuto(Document{"n": i})
	}
	hits := ix.Search(Query{RangeField: "n", RangeMin: 3, RangeMax: 7, SortBy: "n", Desc: true})
	if len(hits) != 5 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0].Doc["n"] != 7 || hits[4].Doc["n"] != 3 {
		t.Errorf("sort order wrong: %v ... %v", hits[0].Doc, hits[4].Doc)
	}
	// Open-ended range.
	hits = ix.Search(Query{RangeField: "n", RangeMin: 8})
	if len(hits) != 2 {
		t.Errorf("open range hits = %d", len(hits))
	}
	// Limit.
	hits = ix.Search(Query{SortBy: "n", Limit: 3})
	if len(hits) != 3 || hits[2].Doc["n"] != 2 {
		t.Errorf("limit: %v", hits)
	}
}

func TestTimeRange(t *testing.T) {
	s := New()
	ix := s.Index("t")
	base := time.Date(2016, 5, 9, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		ix.PutAuto(Document{"ts": base.Add(time.Duration(i) * time.Hour)})
	}
	hits := ix.Search(Query{RangeField: "ts", RangeMin: base.Add(2 * time.Hour), RangeMax: base.Add(4 * time.Hour)})
	if len(hits) != 3 {
		t.Fatalf("time range hits = %d, want 3", len(hits))
	}
}

func TestHistogram(t *testing.T) {
	s := New()
	ix := s.Index("anomalies")
	base := time.Date(2016, 5, 9, 12, 0, 0, 0, time.UTC)
	// Two bursts: 3 anomalies at +0..2 min, 2 anomalies at +60..61 min.
	for i := 0; i < 3; i++ {
		ix.PutAuto(Document{"ts": base.Add(time.Duration(i) * time.Minute), "type": "missing-end-state"})
	}
	for i := 0; i < 2; i++ {
		ix.PutAuto(Document{"ts": base.Add(time.Duration(60+i) * time.Minute), "type": "missing-end-state"})
	}
	times, counts := ix.Histogram(Query{}, "ts", 10*time.Minute)
	if len(times) != 2 {
		t.Fatalf("buckets = %d (%v %v)", len(times), times, counts)
	}
	if counts[0] != 3 || counts[1] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if !times[0].Before(times[1]) {
		t.Error("buckets must be sorted")
	}
}

func TestDumpLoad(t *testing.T) {
	s := New()
	ix := s.Index("models")
	ix.Put("m1", Document{"grok": "%{WORD} x", "v": float64(1)})
	data, err := ix.Dump()
	if err != nil {
		t.Fatal(err)
	}
	s2 := New()
	ix2 := s2.Index("models")
	if err := ix2.Load(data); err != nil {
		t.Fatal(err)
	}
	doc, ok := ix2.Get("m1")
	if !ok || doc["grok"] != "%{WORD} x" {
		t.Fatalf("round trip: %v/%v", doc, ok)
	}
}

func TestIndices(t *testing.T) {
	s := New()
	s.Index("b")
	s.Index("a")
	got := s.Indices()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Indices = %v", got)
	}
	if !s.DeleteIndex("a") || s.DeleteIndex("a") {
		t.Error("DeleteIndex semantics")
	}
	// Index returns the same instance for the same name.
	if s.Index("b") != s.Index("b") {
		t.Error("Index must be stable")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	ix := s.Index("t")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ix.PutAuto(Document{"g": g, "i": i})
				ix.Search(Query{Term: map[string]any{"g": g}})
				ix.Count()
			}
		}(g)
	}
	wg.Wait()
	if ix.Count() != 800 {
		t.Errorf("count = %d", ix.Count())
	}
}

func TestMixedNumericComparison(t *testing.T) {
	s := New()
	ix := s.Index("t")
	ix.Put("a", Document{"n": int64(5)})
	// Query with int against stored int64; float against int.
	if n := ix.CountWhere(Query{Term: map[string]any{"n": 5}}); n != 1 {
		t.Errorf("int/int64 equality failed: %d", n)
	}
	if n := ix.CountWhere(Query{RangeField: "n", RangeMin: 4.5, RangeMax: 5.5}); n != 1 {
		t.Errorf("float range over int64 failed: %d", n)
	}
}

func TestTermsAggregation(t *testing.T) {
	s := New()
	ix := s.Index("anomalies")
	for i := 0; i < 7; i++ {
		ix.PutAuto(Document{"type": "missing-end-state", "source": "d1"})
	}
	for i := 0; i < 3; i++ {
		ix.PutAuto(Document{"type": "duration-violation", "source": "d1"})
	}
	ix.PutAuto(Document{"type": "duration-violation", "source": "d2"})
	ix.PutAuto(Document{"source": "d2"}) // no type field: excluded

	buckets := ix.Terms(Query{}, "type", 0)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %v", buckets)
	}
	if buckets[0].Value != "missing-end-state" || buckets[0].Count != 7 {
		t.Errorf("top bucket = %+v", buckets[0])
	}
	if buckets[1].Value != "duration-violation" || buckets[1].Count != 4 {
		t.Errorf("second bucket = %+v", buckets[1])
	}
	// Filtered aggregation.
	buckets = ix.Terms(Query{Term: map[string]any{"source": "d2"}}, "type", 0)
	if len(buckets) != 1 || buckets[0].Count != 1 {
		t.Errorf("filtered buckets = %v", buckets)
	}
	// Limit.
	if got := len(ix.Terms(Query{}, "type", 1)); got != 1 {
		t.Errorf("limited buckets = %d", got)
	}
}

func TestRetention(t *testing.T) {
	s := New()
	ix := s.Index("logs")
	ix.SetRetention(5)
	for i := 0; i < 12; i++ {
		ix.Put(fmt.Sprintf("d%02d", i), Document{"n": i})
	}
	if ix.Count() != 5 {
		t.Fatalf("count = %d, want 5", ix.Count())
	}
	if ix.Evicted() != 7 {
		t.Errorf("evicted = %d, want 7", ix.Evicted())
	}
	// Oldest gone, newest kept.
	if _, ok := ix.Get("d00"); ok {
		t.Error("oldest doc survived retention")
	}
	if _, ok := ix.Get("d11"); !ok {
		t.Error("newest doc evicted")
	}
	// Applying retention to an already-full index trims immediately.
	ix.SetRetention(2)
	if ix.Count() != 2 {
		t.Errorf("count after tightening = %d", ix.Count())
	}
	// Zero disables.
	ix.SetRetention(0)
	for i := 0; i < 10; i++ {
		ix.PutAuto(Document{"n": i})
	}
	if ix.Count() != 12 {
		t.Errorf("count with retention off = %d", ix.Count())
	}
}

// TestSearchAgainstReference property-tests Search against a naive
// reference filter on randomized documents and queries.
func TestSearchAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New()
	ix := s.Index("t")
	type doc struct {
		id string
		n  int
		k  string
	}
	var docs []doc
	kinds := []string{"a", "b", "c"}
	for i := 0; i < 300; i++ {
		d := doc{id: fmt.Sprintf("d%03d", i), n: rng.Intn(50), k: kinds[rng.Intn(3)]}
		docs = append(docs, d)
		ix.Put(d.id, Document{"n": d.n, "k": d.k})
	}
	for trial := 0; trial < 200; trial++ {
		q := Query{Term: map[string]any{}}
		var wantKind string
		if rng.Intn(2) == 0 {
			wantKind = kinds[rng.Intn(3)]
			q.Term["k"] = wantKind
		}
		lo, hi := rng.Intn(50), rng.Intn(50)
		if lo > hi {
			lo, hi = hi, lo
		}
		useRange := rng.Intn(2) == 0
		if useRange {
			q.RangeField, q.RangeMin, q.RangeMax = "n", lo, hi
		}
		want := 0
		for _, d := range docs {
			if wantKind != "" && d.k != wantKind {
				continue
			}
			if useRange && (d.n < lo || d.n > hi) {
				continue
			}
			want++
		}
		if got := len(ix.Search(q)); got != want {
			t.Fatalf("trial %d: Search=%d reference=%d (query %+v)", trial, got, want, q)
		}
		if got := ix.CountWhere(q); got != want {
			t.Fatalf("trial %d: CountWhere=%d reference=%d", trial, got, want)
		}
	}
}
