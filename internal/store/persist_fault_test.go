package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loglens/internal/chaos"
	"loglens/internal/fsx"
)

// seedStore builds a store with a few indices and saves it to dir.
func seedStore(t *testing.T, dir string) *Store {
	t.Helper()
	s := New()
	s.Index("anomalies").Put("a1", Document{"type": "missing-end-state"})
	s.Index("models").Put("m1", Document{"body": "{}"})
	s.Index("logs-web").Put("l1", Document{"raw": "line"})
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLoadDirCorruptSnapshotLeavesStoreUntouched: the all-or-nothing
// guarantee — a corrupt file among valid ones must not half-replace the
// store.
func TestLoadDirCorruptSnapshotLeavesStoreUntouched(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	// Corrupt one of the three snapshots.
	if err := os.WriteFile(filepath.Join(dir, indexFile("models")), []byte(`{"m1": {truncat`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New()
	s2.Index("anomalies").Put("old", Document{"type": "pre-existing"})
	if err := s2.LoadDir(dir); err == nil {
		t.Fatal("corrupt snapshot must fail the load")
	}
	// Nothing was replaced: the pre-existing doc survives and no index
	// was partially installed.
	if _, ok := s2.Index("anomalies").Get("old"); !ok {
		t.Error("load failure replaced the anomalies index (half-applied load)")
	}
	if _, ok := s2.Index("anomalies").Get("a1"); ok {
		t.Error("load failure installed snapshot contents despite the error")
	}
	for _, name := range s2.Indices() {
		if name == "logs-web" {
			t.Error("load failure created the logs-web index (half-applied load)")
		}
	}
}

// TestLoadDirTruncatedMidWrite: a snapshot torn by a crash mid-write
// (simulated by the chaos filesystem's short write) must fail the load
// without half-replacing the store.
func TestLoadDirTruncatedMidWrite(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)

	// Re-save through a chaos filesystem that tears one write. SaveDirFS
	// goes through the atomic writer, so the torn temp file must never
	// land on a live snapshot path.
	ffs := chaos.NewFaultFS(fsx.OS{}, chaos.FSConfig{Seed: 11, ShortWrite: 0.5}, nil)
	err := s.SaveDirFS(ffs, dir)
	if st := ffs.Stats(); st.ShortWrites == 0 {
		t.Fatalf("chaos plan injected no short writes (stats %+v)", st)
	}
	if err == nil {
		t.Fatal("save through tearing filesystem must report the error")
	}

	// Every live snapshot still parses: torn bytes only ever hit .tmp
	// paths, and a reload sees a consistent (if older) generation.
	s2 := New()
	if err := s2.LoadDir(dir); err != nil {
		t.Fatalf("LoadDir after torn save: %v", err)
	}
	if _, ok := s2.Index("anomalies").Get("a1"); !ok {
		t.Error("previous generation lost after torn save")
	}

	// Now plant a genuinely torn file at a live path (the pre-atomic
	// failure mode) and confirm the all-or-nothing load rejects it.
	full, err := os.ReadFile(filepath.Join(dir, indexFile("models")))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFile("models")), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := New()
	s3.Index("marker").Put("x", Document{"keep": true})
	if err := s3.LoadDir(dir); err == nil {
		t.Fatal("truncated snapshot must fail the load")
	}
	if _, ok := s3.Index("marker").Get("x"); !ok {
		t.Error("failed load mutated unrelated index")
	}
	if len(s3.Indices()) != 1 {
		t.Errorf("failed load installed indices: %v", s3.Indices())
	}
}

// TestSaveDirWriteErrorSurfacesAndKeepsOldSnapshot: an injected write
// error fails the save loudly while the previous on-disk generation
// stays loadable.
func TestSaveDirWriteErrorSurfacesAndKeepsOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	s.Index("anomalies").Put("a2", Document{"type": "new-generation"})

	ffs := chaos.NewFaultFS(fsx.OS{}, chaos.FSConfig{Seed: 5, WriteError: 1}, nil)
	err := s.SaveDirFS(ffs, dir)
	if !errors.Is(err, chaos.ErrInjectedWrite) {
		t.Fatalf("err = %v, want ErrInjectedWrite", err)
	}
	s2 := New()
	if err := s2.LoadDir(dir); err != nil {
		t.Fatalf("old generation unloadable after failed save: %v", err)
	}
	if _, ok := s2.Index("anomalies").Get("a1"); !ok {
		t.Error("old generation lost")
	}
}

// TestSaveDirENOSPCMidSave: the disk filling up mid-save errors out, and
// whatever subset of indices was rewritten is individually consistent —
// a reload parses every file.
func TestSaveDirENOSPCMidSave(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	ffs := chaos.NewFaultFS(fsx.OS{}, chaos.FSConfig{Seed: 9, ENOSPCAfter: 40}, nil)
	err := s.SaveDirFS(ffs, dir)
	if !errors.Is(err, chaos.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	s2 := New()
	if err := s2.LoadDir(dir); err != nil {
		t.Fatalf("store unloadable after ENOSPC save: %v", err)
	}
	if len(s2.Indices()) != 3 {
		t.Errorf("indices after ENOSPC reload = %v", s2.Indices())
	}
}

// TestSaveDirStaleCleanupSkipsTempFiles: the stale-index sweep removes
// obsolete snapshots but leaves non-snapshot names (e.g. in-flight .tmp
// files from a concurrent saver) alone.
func TestSaveDirStaleCleanupSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	tmp := filepath.Join(dir, indexFile("other")+".tmp")
	if err := os.WriteFile(tmp, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.DeleteIndex("logs-web")
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Error("stale sweep removed an in-flight temp file")
	}
	if _, err := os.Stat(filepath.Join(dir, indexFile("logs-web"))); err == nil {
		t.Error("stale snapshot survived the sweep")
	}
	entries, _ := os.ReadDir(dir)
	var snaps int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".index.json") {
			snaps++
		}
	}
	if snaps != 2 {
		t.Errorf("snapshot count = %d, want 2", snaps)
	}
}
