package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loglens/internal/chaos"
	"loglens/internal/fsx"
)

// seedStore builds a store with a few indices and saves it to dir.
func seedStore(t *testing.T, dir string) *Store {
	t.Helper()
	s := New()
	s.Index("anomalies").Put("a1", Document{"type": "missing-end-state"})
	s.Index("models").Put("m1", Document{"body": "{}"})
	s.Index("logs-web").Put("l1", Document{"raw": "line"})
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLoadDirCorruptSnapshotLeavesStoreUntouched: the all-or-nothing
// guarantee — a corrupt file among valid ones must not half-replace the
// store.
func TestLoadDirCorruptSnapshotLeavesStoreUntouched(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	// Corrupt one of the three snapshots.
	if err := os.WriteFile(filepath.Join(dir, indexFile("models")), []byte(`{"m1": {truncat`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New()
	s2.Index("anomalies").Put("old", Document{"type": "pre-existing"})
	if err := s2.LoadDir(dir); err == nil {
		t.Fatal("corrupt snapshot must fail the load")
	}
	// Nothing was replaced: the pre-existing doc survives and no index
	// was partially installed.
	if _, ok := s2.Index("anomalies").Get("old"); !ok {
		t.Error("load failure replaced the anomalies index (half-applied load)")
	}
	if _, ok := s2.Index("anomalies").Get("a1"); ok {
		t.Error("load failure installed snapshot contents despite the error")
	}
	for _, name := range s2.Indices() {
		if name == "logs-web" {
			t.Error("load failure created the logs-web index (half-applied load)")
		}
	}
}

// TestLoadDirTruncatedMidWrite: a snapshot torn by a crash mid-write
// (simulated by the chaos filesystem's short write) must fail the load
// without half-replacing the store.
func TestLoadDirTruncatedMidWrite(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)

	// Re-save through a chaos filesystem that tears one write. SaveDirFS
	// goes through the atomic writer, so the torn temp file must never
	// land on a live snapshot path.
	ffs := chaos.NewFaultFS(fsx.OS{}, chaos.FSConfig{Seed: 11, ShortWrite: 0.5}, nil)
	err := s.SaveDirFS(ffs, dir)
	if st := ffs.Stats(); st.ShortWrites == 0 {
		t.Fatalf("chaos plan injected no short writes (stats %+v)", st)
	}
	if err == nil {
		t.Fatal("save through tearing filesystem must report the error")
	}

	// Every live snapshot still parses: torn bytes only ever hit .tmp
	// paths, and a reload sees a consistent (if older) generation.
	s2 := New()
	if err := s2.LoadDir(dir); err != nil {
		t.Fatalf("LoadDir after torn save: %v", err)
	}
	if _, ok := s2.Index("anomalies").Get("a1"); !ok {
		t.Error("previous generation lost after torn save")
	}

	// Now plant a genuinely torn file at a live path (the pre-atomic
	// failure mode) and confirm the all-or-nothing load rejects it.
	full, err := os.ReadFile(filepath.Join(dir, indexFile("models")))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFile("models")), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := New()
	s3.Index("marker").Put("x", Document{"keep": true})
	if err := s3.LoadDir(dir); err == nil {
		t.Fatal("truncated snapshot must fail the load")
	}
	if _, ok := s3.Index("marker").Get("x"); !ok {
		t.Error("failed load mutated unrelated index")
	}
	if len(s3.Indices()) != 1 {
		t.Errorf("failed load installed indices: %v", s3.Indices())
	}
}

// TestSaveDirWriteErrorSurfacesAndKeepsOldSnapshot: an injected write
// error fails the save loudly while the previous on-disk generation
// stays loadable.
func TestSaveDirWriteErrorSurfacesAndKeepsOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	s.Index("anomalies").Put("a2", Document{"type": "new-generation"})

	ffs := chaos.NewFaultFS(fsx.OS{}, chaos.FSConfig{Seed: 5, WriteError: 1}, nil)
	err := s.SaveDirFS(ffs, dir)
	if !errors.Is(err, chaos.ErrInjectedWrite) {
		t.Fatalf("err = %v, want ErrInjectedWrite", err)
	}
	s2 := New()
	if err := s2.LoadDir(dir); err != nil {
		t.Fatalf("old generation unloadable after failed save: %v", err)
	}
	if _, ok := s2.Index("anomalies").Get("a1"); !ok {
		t.Error("old generation lost")
	}
}

// TestSaveDirENOSPCMidSave: the disk filling up mid-save errors out, and
// whatever subset of indices was rewritten is individually consistent —
// a reload parses every file.
func TestSaveDirENOSPCMidSave(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	ffs := chaos.NewFaultFS(fsx.OS{}, chaos.FSConfig{Seed: 9, ENOSPCAfter: 40}, nil)
	err := s.SaveDirFS(ffs, dir)
	if !errors.Is(err, chaos.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	s2 := New()
	if err := s2.LoadDir(dir); err != nil {
		t.Fatalf("store unloadable after ENOSPC save: %v", err)
	}
	if len(s2.Indices()) != 3 {
		t.Errorf("indices after ENOSPC reload = %v", s2.Indices())
	}
}

// TestSaveDirStaleCleanupSkipsTempFiles: the stale-index sweep removes
// obsolete snapshots but leaves non-snapshot names (e.g. in-flight .tmp
// files from a concurrent saver) alone.
func TestSaveDirStaleCleanupSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	tmp := filepath.Join(dir, indexFile("other")+".tmp")
	if err := os.WriteFile(tmp, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.DeleteIndex("logs-web")
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Error("stale sweep removed an in-flight temp file")
	}
	if _, err := os.Stat(filepath.Join(dir, indexFile("logs-web"))); err == nil {
		t.Error("stale snapshot survived the sweep")
	}
	entries, _ := os.ReadDir(dir)
	var snaps int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".index.json") {
			snaps++
		}
	}
	if snaps != 2 {
		t.Errorf("snapshot count = %d, want 2", snaps)
	}
}

// --- Segment-engine crash matrix -------------------------------------
//
// The tests below walk a deterministic fault across every write site of
// the segment engine's flush/compact/manifest-swap sequences: one run
// per (fault kind, write index) cell. The invariant in every cell is the
// engine's durability contract: after the fault and a simulated crash,
// reopening on a healthy disk loses no acknowledged (Sync'd) mutation,
// keeps the pre-fault generation fully readable, and leaves the store
// writable.

// crashBaseline seeds dir with a committed generation: five log docs and
// one model, sealed into segments.
func crashBaseline(t *testing.T, dir string) {
	t.Helper()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Index("logs").Put(fmt.Sprintf("b%d", i), Document{"phase": "baseline", "n": i})
	}
	s.Index("models").Put("m0", Document{"body": "{}"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// crashWorkload runs the faulted phase: a write mix crossing WAL appends,
// seals, a compaction, and the manifest swaps between them. It returns
// the set of acknowledged documents (present with this exact content
// after any crash) and whether the delete of b1 was acknowledged.
func crashWorkload(t *testing.T, dir string, fsys fsx.FS) (acked map[string]Document, delAcked bool) {
	t.Helper()
	s, err := Open(Options{Dir: dir, FS: fsys})
	if err != nil {
		// The engine never writes while opening an existing store; an
		// open failure here is a test-harness bug, not a crash cell.
		t.Fatalf("faulted open: %v", err)
	}
	defer s.Abort() // crash at the end of the workload, whatever happened

	acked = make(map[string]Document)
	written := make(map[string]Document)
	put := func(id string, doc Document) {
		s.Index("logs").Put(id, doc)
		written[id] = doc
	}
	sync := func() {
		if s.Sync() == nil {
			for id, doc := range written {
				acked[id] = doc
			}
		}
	}

	put("w1", Document{"phase": "wal", "n": 101})
	put("w2", Document{"phase": "wal", "n": 102})
	sync()
	deleted := s.Index("logs").Delete("b1")
	put("w3", Document{"phase": "wal", "n": 103})
	if s.Sync() == nil {
		delAcked = deleted
		for id, doc := range written {
			acked[id] = doc
		}
	}
	s.Flush() // seal: segment write + manifest + CURRENT swap
	put("w4", Document{"phase": "post-flush", "n": 104})
	sync()
	s.Compact() // full rewrite: segment + manifest + CURRENT swap
	put("w5", Document{"phase": "post-compact", "n": 105})
	sync()
	s.Flush()
	return acked, delAcked
}

// crashVerify reopens dir on a healthy filesystem and checks the
// durability contract.
func crashVerify(t *testing.T, dir string, acked map[string]Document, delAcked bool) {
	t.Helper()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close after verify: %v", err)
		}
	}()
	ix := s.Index("logs")
	// Baseline generation intact (b1 may be legitimately gone only once
	// its delete happened; resurrected-after-acked-delete is a failure).
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("b%d", i)
		doc, ok := ix.Get(id)
		if id == "b1" {
			if delAcked && ok {
				t.Errorf("acknowledged delete of b1 rolled back (doc %v)", doc)
			}
			continue
		}
		if !ok || doc["phase"] != "baseline" {
			t.Errorf("baseline doc %s lost or changed: %v, %v", id, doc, ok)
		}
	}
	if _, ok := s.Index("models").Get("m0"); !ok {
		t.Error("baseline model lost")
	}
	// Every acknowledged mutation survived.
	for id, want := range acked {
		doc, ok := ix.Get(id)
		if !ok {
			t.Errorf("acknowledged doc %s lost", id)
			continue
		}
		if fmt.Sprint(doc["n"]) != fmt.Sprint(want["n"]) || doc["phase"] != want["phase"] {
			t.Errorf("acknowledged doc %s changed: got %v want %v", id, doc, want)
		}
	}
	// The store is fully writable after recovery.
	ix.Put("postcrash", Document{"phase": "verify"})
	if err := s.Sync(); err != nil {
		t.Errorf("Sync after recovery: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Errorf("Flush after recovery: %v", err)
	}
	if _, ok := ix.Get("postcrash"); !ok {
		t.Error("post-recovery write not visible")
	}
}

// TestEngineCrashMatrix: meter the healthy workload's write-op count,
// then replay it once per (kind, write index) with that single write
// faulted and the process crashed at the end.
func TestEngineCrashMatrix(t *testing.T) {
	meterDir := t.TempDir()
	crashBaseline(t, meterDir)
	meter := chaos.NewFaultFS(nil, chaos.FSConfig{}, nil)
	acked, delAcked := crashWorkload(t, meterDir, meter)
	crashVerify(t, meterDir, acked, delAcked)
	total := int64(meter.Stats().Writes)
	if total < 8 {
		t.Fatalf("workload crossed only %d write sites; the matrix has lost its coverage", total)
	}
	for _, kind := range []string{"error", "short", "enospc"} {
		for at := int64(1); at <= total; at++ {
			kind, at := kind, at
			t.Run(fmt.Sprintf("%s-at-%d", kind, at), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				crashBaseline(t, dir)
				ffs := chaos.NewFaultFS(nil, chaos.FSConfig{FailAt: at, FailKind: kind}, nil)
				acked, delAcked := crashWorkload(t, dir, ffs)
				if st := ffs.Stats(); st.WriteErrors+st.ShortWrites+st.NoSpace != 1 {
					t.Fatalf("fault plan fired %d faults, want exactly 1 (%+v)", st.WriteErrors+st.ShortWrites+st.NoSpace, st)
				}
				crashVerify(t, dir, acked, delAcked)
			})
		}
	}
}
