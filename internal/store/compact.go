// Seal and compaction: the single commit path of the persistent engine.
// Every durable state change beyond a WAL append — memtable seals,
// compaction rewrites, age-based segment drops — funnels through
// sealLocked, which stages new segment files, writes the next manifest
// generation, moves CURRENT, and only then mutates in-memory state and
// GCs. The crash invariant falls out of the ordering: any failure before
// the CURRENT swap leaves generation G and wal-G fully authoritative,
// and stray staged files are swept by a later GC.
package store

import (
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"loglens/internal/fsx"
)

// sealPlan parameterizes one commit.
type sealPlan struct {
	// policy applies the compaction policy per index (too many segments
	// or too many dead documents → rewrite instead of append).
	policy bool
	// compactAll forces a full rewrite of every index (manual Compact).
	compactAll bool
	// drop lists age-retention victim segments per index; always a
	// prefix of the index's segment list (buckets are monotone).
	drop map[*Index]map[*segment]bool
}

// stagedIndex is the per-index outcome computed during staging.
type stagedIndex struct {
	ix      *Index
	newSeg  *segment // nil when nothing was written
	data    []byte   // encoded newSeg bytes (written before manifest)
	compact bool     // newSeg replaces all segments
	memIDs  []string // ids sealed out of the memtable (incremental)
	evicted uint64   // age-drop eviction delta
	segs    []manifestSegment
	keep    []*segment // surviving old segments, in order
}

// needsCompact reports whether the compaction policy wants a rewrite.
func (e *engine) needsCompact(pe *persistIndex, addingSeg bool) bool {
	total, live, tombs := 0, 0, 0
	for _, sg := range pe.segs {
		total += sg.footer.Count
		live += sg.live
		tombs += sg.tombs
	}
	n := len(pe.segs)
	if addingSeg {
		n++
	}
	if n > e.opts.MaxSegments {
		return true
	}
	dead := total - live
	if total > 0 && float64(dead)/float64(total) >= e.opts.CompactFrac {
		return true
	}
	// Tombstone-only garbage with nothing live pinning it.
	if total > 0 && live == 0 && tombs > 0 {
		return true
	}
	return false
}

// sealLocked is the commit path. Caller holds e.mu. The in-memory state
// is only mutated after CURRENT points at the new generation.
func (e *engine) sealLocked(plan sealPlan) error {
	if err := e.flushWALLocked(); err != nil {
		return err
	}
	changed := len(e.walOps) > 0
	for _, victims := range plan.drop {
		if len(victims) > 0 {
			changed = true
		}
	}
	if !changed {
		return nil
	}

	now := e.clk.Now().Truncate(e.opts.BucketDuration)
	ordered := append([]*Index(nil), e.indices...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].name < ordered[j].name })

	newGen := e.gen + 1
	m := &manifest{
		Generation: newGen,
		WAL:        walName(newGen),
		Pins:       append([]uint64(nil), e.pins...),
	}
	var staged []*stagedIndex
	for _, ix := range ordered {
		st, err := e.stageIndex(ix, plan, now)
		if err != nil {
			e.setErr(err)
			return err
		}
		staged = append(staged, st)
		m.Indices = append(m.Indices, manifestIndex{
			Name:      ix.name,
			Seq:       ix.seq,
			Evicted:   ix.evicted + st.evicted,
			Retention: ix.retention,
			Watermark: ix.pe.watermark,
			NextOrd:   ix.pe.nextOrd,
			Segments:  st.segs,
		})
	}
	m.NextSeg = e.nextSeg

	// Write staged segment files, then the manifest, then CURRENT.
	for _, st := range staged {
		if st.newSeg == nil {
			continue
		}
		if err := fsx.WriteFileAtomic(e.fs, e.path(st.newSeg.file), st.data, 0o644); err != nil {
			e.setErr(err)
			return err
		}
	}
	data, err := encodeManifest(m)
	if err != nil {
		e.setErr(err)
		return err
	}
	if err := fsx.WriteFileAtomic(e.fs, e.path(manifestName(newGen)), data, 0o644); err != nil {
		e.setErr(err)
		return err
	}
	if err := fsx.WriteFileAtomic(e.fs, e.path("CURRENT"), []byte(manifestName(newGen)+"\n"), 0o644); err != nil {
		e.setErr(err)
		return err
	}

	// Committed: fold the staged state in under each index's write lock.
	for _, st := range staged {
		e.commitIndex(st)
	}
	e.gen = newGen
	e.manifests[newGen] = m
	// A GC'd past lineage may have left a stale WAL under the new name.
	e.fs.Remove(e.path(walName(newGen)))
	e.walFile = m.WAL
	e.walOps = nil
	e.walPend = nil
	e.walOnDisk = 0
	e.walDirty = false
	e.flushes++
	e.setErr(nil)
	e.gcLocked()
	return nil
}

// stageIndex computes one index's next segment list without mutating
// anything. e.mu excludes all writers, so pe state is stable to read.
func (e *engine) stageIndex(ix *Index, plan sealPlan, bucket time.Time) (*stagedIndex, error) {
	pe := ix.pe
	st := &stagedIndex{ix: ix}
	victims := plan.drop[ix]
	for _, sg := range pe.segs {
		if victims[sg] {
			st.evicted += uint64(sg.live)
		}
	}

	compact := plan.compactAll || (plan.policy && e.needsCompact(pe, len(pe.mem) > 0 || len(pe.dead) > 0))
	if compact {
		st.compact = true
		docs := make([]segDoc, 0, len(ix.order))
		for _, id := range ix.order {
			r := pe.refs[id]
			if r.seg != nil && victims[r.seg] {
				continue
			}
			var doc Document
			if r.seg == nil {
				doc = pe.mem[id]
			} else {
				var err error
				doc, err = r.seg.fetchDoc(r)
				if err != nil {
					return nil, fmt.Errorf("store: compact %q: %w", ix.name, err)
				}
			}
			docs = append(docs, segDoc{ID: id, Ord: r.ord, Doc: doc})
		}
		if len(docs) > 0 {
			if err := e.stageSegment(st, docs, bucket); err != nil {
				return nil, err
			}
		}
		e.compactions++
		return st, nil
	}

	// Incremental: survivors keep their slots; memtable + tombstones
	// seal into one appended segment.
	for _, sg := range pe.segs {
		if victims[sg] {
			continue
		}
		if sg.live == 0 && sg.tombs == 0 {
			// Fully shadowed and pinning nothing: drop from the new
			// generation.
			continue
		}
		st.keep = append(st.keep, sg)
		st.segs = append(st.segs, manifestSegment{
			File: sg.file, Bytes: sg.bytes, CRC: sg.crc, Count: sg.footer.Count, Bucket: sg.bucket,
		})
	}
	if len(pe.mem) > 0 || len(pe.dead) > 0 {
		var docs []segDoc
		for id := range pe.dead {
			if _, back := pe.mem[id]; !back {
				docs = append(docs, segDoc{ID: id, Del: true})
			}
		}
		sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
		st.memIDs = make([]string, 0, len(pe.mem))
		for id := range pe.mem {
			st.memIDs = append(st.memIDs, id)
		}
		sort.Slice(st.memIDs, func(i, j int) bool {
			return pe.refs[st.memIDs[i]].ord < pe.refs[st.memIDs[j]].ord
		})
		for _, id := range st.memIDs {
			docs = append(docs, segDoc{ID: id, Ord: pe.refs[id].ord, Doc: pe.mem[id]})
		}
		if len(docs) > 0 {
			if err := e.stageSegment(st, docs, bucket); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// stageSegment encodes docs into a new segment file (not yet written).
func (e *engine) stageSegment(st *stagedIndex, docs []segDoc, bucket time.Time) error {
	data, ft, err := encodeSegment(docs)
	if err != nil {
		return err
	}
	sg := &segment{
		file:   e.segFileName(st.ix.name),
		bytes:  int64(len(data)),
		crc:    crc32.ChecksumIEEE(data),
		bucket: bucket,
		footer: ft,
	}
	for i := range docs {
		if docs[i].Del {
			sg.tombs++
		}
	}
	st.newSeg = sg
	st.data = data
	st.segs = append(st.segs, manifestSegment{
		File: sg.file, Bytes: sg.bytes, CRC: sg.crc, Count: ft.Count, Bucket: sg.bucket,
	})
	return nil
}

// commitIndex folds a staged result into live state under the index's
// write lock: victims evicted, shadowed segments dropped, memtable refs
// re-pointed into the new segment.
func (e *engine) commitIndex(st *stagedIndex) {
	ix := st.ix
	pe := ix.pe
	ix.mu.Lock()
	defer ix.mu.Unlock()

	if st.newSeg != nil {
		fh, err := e.fs.Open(e.path(st.newSeg.file))
		if err != nil {
			// The file was just written; failure to reopen is a disk
			// fault. Refs below still point at it; reads will error and
			// be counted.
			e.noteReadErr(err)
		} else {
			st.newSeg.fh = fh
		}
	}

	old := pe.segs
	if st.compact {
		if st.newSeg != nil {
			st.newSeg.live = st.newSeg.footer.Count
			for i := range st.newSeg.footer.Entries {
				en := &st.newSeg.footer.Entries[i]
				pe.refs[en.ID] = ref{ord: en.Ord, seg: st.newSeg, off: en.Off, length: en.Len}
			}
			pe.segs = []*segment{st.newSeg}
		} else {
			pe.segs = nil
		}
		// Every live id was merged into newSeg; anything still pointing
		// at an old segment was an age-retention victim — evict it.
		evictOrphansLocked(ix, func(r ref) bool { return r.seg == nil || r.seg == st.newSeg })
		pe.mem = make(map[string]Document)
		pe.dead = make(map[string]bool)
		e.segsDropped += uint64(len(old))
		for _, sg := range old {
			sg.close()
		}
		return
	}

	keepSet := make(map[*segment]bool, len(st.keep)+1)
	for _, sg := range st.keep {
		keepSet[sg] = true
	}
	if st.newSeg != nil {
		for i := range st.newSeg.footer.Entries {
			en := &st.newSeg.footer.Entries[i]
			if en.Del {
				continue
			}
			pe.refs[en.ID] = ref{ord: en.Ord, seg: st.newSeg, off: en.Off, length: en.Len}
			st.newSeg.live++
		}
		keepSet[st.newSeg] = true
	}
	evictOrphansLocked(ix, func(r ref) bool { return r.seg == nil || keepSet[r.seg] })
	newSegs := make([]*segment, 0, len(st.keep)+1)
	newSegs = append(newSegs, st.keep...)
	if st.newSeg != nil {
		newSegs = append(newSegs, st.newSeg)
	}
	for _, sg := range old {
		if !keepSet[sg] {
			e.segsDropped++
			sg.close()
		}
	}
	pe.segs = newSegs
	pe.mem = make(map[string]Document)
	pe.dead = make(map[string]bool)
}

// evictOrphansLocked drops every id whose ref fails keep — the ids whose
// only copy sat in an age-dropped segment. They leave the scan order and
// count as evicted, exactly like FIFO retention.
func evictOrphansLocked(ix *Index, keep func(ref) bool) {
	pe := ix.pe
	out := ix.order[:0]
	for _, id := range ix.order {
		r := pe.refs[id]
		if keep(r) {
			out = append(out, id)
			continue
		}
		delete(pe.refs, id)
		delete(pe.mem, id)
		delete(pe.dead, id)
		ix.evicted++
	}
	ix.order = out
}
