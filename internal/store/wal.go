// Write-ahead log: every mutation of the persistent store is framed and
// checksummed into wal-<generation>.log before (or with) its
// acknowledgement, so a crash between manifest commits replays to exactly
// the acknowledged state. The WAL is the only append-in-place file in the
// engine — everything else goes through atomic temp+rename — so it is
// also the only place a torn tail can appear. Replay stops at the first
// frame whose length or checksum fails: the torn suffix is discarded (it
// was never acknowledged), and the writer repairs the file by an atomic
// rewrite from its in-memory record log before appending again.
package store

import (
	"encoding/json"
	"fmt"
)

// WAL operation codes.
const (
	walPut   = "put"  // store a document: Ix, ID, Ord, Seq, Doc
	walDel   = "del"  // delete a document: Ix, ID
	walRetn  = "retn" // count-cap eviction: Ix, W (watermark), Ev (total)
	walCap   = "cap"  // SetRetention: Ix, Cap
	walLoad  = "load" // Load replaces the index: Ix, Doc ({"id": doc} map)
	walMkIx  = "mkix" // index created: Ix
	walDelIx = "delix" // index dropped: Ix
)

// walRecord is one logged mutation. Doc stays raw so replay re-decodes
// it into exactly the canonical (JSON round-tripped) form queries see.
type walRecord struct {
	Op  string          `json:"op"`
	Ix  string          `json:"ix"`
	ID  string          `json:"id,omitempty"`
	Ord uint64          `json:"ord,omitempty"`
	Seq uint64          `json:"seq,omitempty"`
	Doc json.RawMessage `json:"doc,omitempty"`
	W   uint64          `json:"w,omitempty"`
	Ev  uint64          `json:"ev,omitempty"`
	Cap int             `json:"cap,omitempty"`
}

// encodeWAL frames records into WAL bytes.
func encodeWAL(dst []byte, recs []walRecord) ([]byte, error) {
	for i := range recs {
		payload, err := json.Marshal(&recs[i])
		if err != nil {
			return dst, fmt.Errorf("store: wal: encode %s: %w", recs[i].Op, err)
		}
		dst = appendRecord(dst, payload)
	}
	return dst, nil
}

// decodeWAL replays WAL bytes up to the first torn or corrupt frame,
// returning the decoded records and how many bytes formed the valid
// prefix. A short valid length is not an error — it is the expected shape
// of a crash mid-append — but the caller must treat the file as dirty and
// rewrite it before appending.
func decodeWAL(data []byte) (recs []walRecord, valid int) {
	off := 0
	for off < len(data) {
		payload, next, err := readRecord(data, off)
		if err != nil {
			return recs, off
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Op == "" {
			return recs, off
		}
		recs = append(recs, rec)
		off = next
	}
	return recs, off
}
