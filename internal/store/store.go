// Package store is the in-memory document store backing LogLens's three
// storage components — log storage, model storage, and anomaly storage —
// the substitution for Elasticsearch (§II). It offers the surface LogLens
// actually uses: named indices of JSON-like documents, term and range
// queries with sorting and limits, counts, and time-histogram aggregations
// for the dashboard.
package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Document is one stored record. Values should be JSON-representable
// (string, float64, int, int64, bool, time.Time, nested maps/slices).
type Document map[string]any

// Hit is one search result.
type Hit struct {
	// ID is the document identifier within its index.
	ID string
	// Doc is the stored document.
	Doc Document
}

// Store is a collection of named indices. It is safe for concurrent use.
// New gives the in-memory engine; Open (engine.go) the persistent one —
// both serve the identical API, which is what lets the in-memory engine
// double as the correctness oracle for the segment engine's tests.
type Store struct {
	mu      sync.RWMutex
	indices map[string]*Index
	// eng is the persistent segment engine; nil means in-memory.
	eng *engine
}

// New creates an empty in-memory store.
func New() *Store {
	return &Store{indices: make(map[string]*Index)}
}

// Index returns the named index, creating it on first use (as
// Elasticsearch auto-creates indices on write).
func (s *Store) Index(name string) *Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, ok := s.indices[name]
	if !ok {
		ix = newIndex(name)
		if s.eng != nil {
			s.eng.mu.Lock()
			s.eng.attachLocked(ix)
			s.eng.logLocked(walRecord{Op: walMkIx, Ix: name})
			s.eng.mu.Unlock()
		}
		s.indices[name] = ix
	}
	return ix
}

// Indices lists existing index names, sorted.
func (s *Store) Indices() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.indices))
	for name := range s.indices {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DeleteIndex drops an index and reports whether it existed.
func (s *Store) DeleteIndex(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, ok := s.indices[name]
	if !ok {
		return false
	}
	if s.eng != nil {
		s.eng.mu.Lock()
		s.eng.logLocked(walRecord{Op: walDelIx, Ix: name})
		s.eng.detachLocked(ix)
		s.eng.mu.Unlock()
	}
	delete(s.indices, name)
	return true
}

// Index is one named document collection. It is safe for concurrent use.
type Index struct {
	name string
	mu   sync.RWMutex
	docs map[string]Document
	// order preserves insertion order for stable unsorted scans and
	// FIFO retention. In persistent mode it is the merged scan order
	// (ascending ord across memtable and segments).
	order     []string
	seq       uint64
	retention int
	evicted   uint64
	// pe is the persistent-engine state; nil means in-memory.
	pe *persistIndex
}

// SetRetention caps the index at max documents: the oldest documents are
// evicted as new ones arrive (log storage retention — the paper's system
// archives millions of logs per day and cannot keep them forever). Zero
// disables retention.
func (ix *Index) SetRetention(max int) {
	if ix.pe != nil {
		ix.pe.setRetention(ix, max)
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.retention = max
	ix.enforceRetentionLocked()
}

// Evicted returns how many documents retention has dropped.
func (ix *Index) Evicted() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.evicted
}

// enforceRetentionLocked drops the oldest documents past the cap.
func (ix *Index) enforceRetentionLocked() {
	if ix.retention <= 0 {
		return
	}
	for len(ix.order) > ix.retention {
		oldest := ix.order[0]
		ix.order = ix.order[1:]
		delete(ix.docs, oldest)
		ix.evicted++
	}
}

func newIndex(name string) *Index {
	return &Index{name: name, docs: make(map[string]Document)}
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Put stores a document under the given ID, replacing any previous
// version.
func (ix *Index) Put(id string, doc Document) {
	if ix.pe != nil {
		ix.pe.put(ix, id, doc, false)
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, exists := ix.docs[id]; !exists {
		ix.order = append(ix.order, id)
	}
	ix.docs[id] = cloneDoc(doc)
	ix.enforceRetentionLocked()
}

// PutAuto stores a document under a generated ID and returns the ID.
func (ix *Index) PutAuto(doc Document) string {
	if ix.pe != nil {
		return ix.pe.put(ix, "", doc, true)
	}
	ix.mu.Lock()
	ix.seq++
	id := ix.name + "-" + strconv.FormatUint(ix.seq, 10)
	if _, exists := ix.docs[id]; !exists {
		ix.order = append(ix.order, id)
	}
	ix.docs[id] = cloneDoc(doc)
	ix.enforceRetentionLocked()
	ix.mu.Unlock()
	return id
}

// Get retrieves a document by ID.
func (ix *Index) Get(id string) (Document, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.pe != nil {
		r, ok := ix.pe.refs[id]
		if !ok {
			return nil, false
		}
		return ix.pe.fetch(id, r, true)
	}
	doc, ok := ix.docs[id]
	if !ok {
		return nil, false
	}
	return cloneDoc(doc), true
}

// Delete removes a document and reports whether it existed.
func (ix *Index) Delete(id string) bool {
	if ix.pe != nil {
		return ix.pe.del(ix, id)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docs[id]; !ok {
		return false
	}
	delete(ix.docs, id)
	for i, oid := range ix.order {
		if oid == id {
			ix.order = append(ix.order[:i], ix.order[i+1:]...)
			break
		}
	}
	return true
}

// Count returns the number of documents.
func (ix *Index) Count() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.pe != nil {
		return len(ix.pe.refs)
	}
	return len(ix.docs)
}

// Query selects documents. Zero-valued criteria are ignored.
type Query struct {
	// Term requires exact equality on every listed field.
	Term map[string]any

	// RangeField, when set, constrains a numeric or time field to
	// [RangeMin, RangeMax] (either bound may be nil for open ranges).
	RangeField string
	RangeMin   any
	RangeMax   any

	// SortBy orders results by a field (ascending unless Desc).
	SortBy string
	Desc   bool

	// Limit caps the number of hits (0 = unlimited).
	Limit int
}

// Search returns the matching documents.
func (ix *Index) Search(q Query) []Hit {
	ix.mu.RLock()
	var hits []Hit
	if ix.pe != nil {
		ix.pe.scanLocked(ix, q, true, func(id string, doc Document) {
			hits = append(hits, Hit{ID: id, Doc: doc})
		})
	} else {
		for _, id := range ix.order {
			doc := ix.docs[id]
			if matches(doc, q) {
				hits = append(hits, Hit{ID: id, Doc: cloneDoc(doc)})
			}
		}
	}
	ix.mu.RUnlock()
	return sortAndLimitHits(hits, q)
}

// sortAndLimitHits applies the query's sort and limit to gathered hits —
// shared by both engines so ordering semantics cannot drift.
func sortAndLimitHits(hits []Hit, q Query) []Hit {
	if q.SortBy != "" {
		sort.SliceStable(hits, func(i, j int) bool {
			less := compareValues(hits[i].Doc[q.SortBy], hits[j].Doc[q.SortBy]) < 0
			if q.Desc {
				return !less
			}
			return less
		})
	}
	if q.Limit > 0 && len(hits) > q.Limit {
		hits = hits[:q.Limit]
	}
	return hits
}

// CountWhere returns the number of matching documents without
// materializing them.
func (ix *Index) CountWhere(q Query) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	if ix.pe != nil {
		ix.pe.scanLocked(ix, q, false, func(string, Document) { n++ })
		return n
	}
	for _, doc := range ix.docs {
		if matches(doc, q) {
			n++
		}
	}
	return n
}

// Histogram buckets matching documents by a time field into fixed
// intervals, returning bucket start times (sorted) and counts — the
// aggregation behind the dashboard's anomaly timeline (Figure 6).
func (ix *Index) Histogram(q Query, timeField string, interval time.Duration) ([]time.Time, []int) {
	if interval <= 0 {
		return nil, nil
	}
	ix.mu.RLock()
	counts := make(map[int64]int)
	tally := func(_ string, doc Document) {
		t, ok := asTime(doc[timeField])
		if !ok {
			return
		}
		bucket := t.UnixNano() / int64(interval)
		counts[bucket]++
	}
	if ix.pe != nil {
		ix.pe.scanLocked(ix, q, false, tally)
	} else {
		for _, doc := range ix.docs {
			if matches(doc, q) {
				tally("", doc)
			}
		}
	}
	ix.mu.RUnlock()

	buckets := make([]int64, 0, len(counts))
	for b := range counts {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
	times := make([]time.Time, len(buckets))
	out := make([]int, len(buckets))
	for i, b := range buckets {
		times[i] = time.Unix(0, b*int64(interval)).UTC()
		out[i] = counts[b]
	}
	return times, out
}

// TermBucket is one result row of a Terms aggregation.
type TermBucket struct {
	// Value is the field value (stringified).
	Value string
	// Count is how many matching documents carry it.
	Count int
}

// Terms aggregates matching documents by the distinct values of a field,
// most frequent first (the Elasticsearch terms aggregation the dashboard
// uses for per-type anomaly counts).
func (ix *Index) Terms(q Query, field string, limit int) []TermBucket {
	ix.mu.RLock()
	counts := make(map[string]int)
	tally := func(_ string, doc Document) {
		v, ok := doc[field]
		if !ok {
			return
		}
		counts[fmt.Sprint(v)]++
	}
	if ix.pe != nil {
		ix.pe.scanLocked(ix, q, false, tally)
	} else {
		for _, doc := range ix.docs {
			if matches(doc, q) {
				tally("", doc)
			}
		}
	}
	ix.mu.RUnlock()

	out := make([]TermBucket, 0, len(counts))
	for v, n := range counts {
		out = append(out, TermBucket{Value: v, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Dump serializes the index to JSON ({"id": doc, ...}).
func (ix *Index) Dump() ([]byte, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.pe != nil {
		docs := make(map[string]Document, len(ix.pe.refs))
		for id, r := range ix.pe.refs {
			doc, ok := ix.pe.fetch(id, r, false)
			if !ok {
				return nil, fmt.Errorf("store: dump index %q: unreadable document %q", ix.name, id)
			}
			docs[id] = doc
		}
		return json.Marshal(docs)
	}
	return json.Marshal(ix.docs)
}

// Load replaces the index contents from a Dump.
func (ix *Index) Load(data []byte) error {
	var docs map[string]Document
	if err := json.Unmarshal(data, &docs); err != nil {
		return fmt.Errorf("store: load index %q: %w", ix.name, err)
	}
	if ix.pe != nil {
		ix.pe.load(ix, data, docs)
		return nil
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.docs = docs
	ix.order = ix.order[:0]
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ix.order = ids
	// Rebase the auto-ID sequence past every loaded generated ID, so
	// PutAuto after a snapshot restore never reuses (and silently
	// overwrites) an ID the snapshot already holds — matching the
	// persistent engine, which restores its sequence counters.
	ix.seq = 0
	prefix := ix.name + "-"
	for id := range docs {
		suffix, ok := strings.CutPrefix(id, prefix)
		if !ok {
			continue
		}
		if n, err := strconv.ParseUint(suffix, 10, 64); err == nil && n > ix.seq {
			ix.seq = n
		}
	}
	return nil
}

func matches(doc Document, q Query) bool {
	for field, want := range q.Term {
		if compareValues(doc[field], want) != 0 {
			return false
		}
	}
	if q.RangeField != "" {
		v, ok := doc[q.RangeField]
		if !ok {
			return false
		}
		if q.RangeMin != nil && compareValues(v, q.RangeMin) < 0 {
			return false
		}
		if q.RangeMax != nil && compareValues(v, q.RangeMax) > 0 {
			return false
		}
	}
	return true
}

// compareValues imposes a total order across the value kinds the store
// accepts: numbers compare numerically, times chronologically, everything
// else by string form.
func compareValues(a, b any) int {
	if ta, ok := asTime(a); ok {
		if tb, ok := asTime(b); ok {
			switch {
			case ta.Before(tb):
				return -1
			case ta.After(tb):
				return 1
			default:
				return 0
			}
		}
	}
	if na, ok := asFloat(a); ok {
		if nb, ok := asFloat(b); ok {
			switch {
			case na < nb:
				return -1
			case na > nb:
				return 1
			default:
				return 0
			}
		}
	}
	sa, sb := fmt.Sprint(a), fmt.Sprint(b)
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	default:
		return 0
	}
}

func asFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	default:
		return 0, false
	}
}

func asTime(v any) (time.Time, bool) {
	switch t := v.(type) {
	case time.Time:
		return t, true
	case string:
		if parsed, err := time.Parse(time.RFC3339Nano, t); err == nil {
			return parsed, true
		}
	}
	return time.Time{}, false
}

func cloneDoc(doc Document) Document {
	out := make(Document, len(doc))
	for k, v := range doc {
		out[k] = v
	}
	return out
}
