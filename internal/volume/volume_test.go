package volume

import (
	"encoding/json"
	"testing"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/logtypes"
)

var t0 = time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)

// steady emits `perWindow` logs of the pattern in every 10s window across
// `windows` windows.
func steady(pattern, perWindow, windows int) []*logtypes.ParsedLog {
	var out []*logtypes.ParsedLog
	for w := 0; w < windows; w++ {
		for i := 0; i < perWindow; i++ {
			out = append(out, &logtypes.ParsedLog{
				Log:          logtypes.Log{Source: "s"},
				PatternID:    pattern,
				Timestamp:    t0.Add(time.Duration(w)*10*time.Second + time.Duration(i)*time.Millisecond),
				HasTimestamp: true,
			})
		}
	}
	return out
}

func TestLearnProfile(t *testing.T) {
	logs := steady(1, 20, 30)
	logs = append(logs, steady(2, 5, 30)...)
	p := Learn(logs, 10*time.Second)
	s1 := p.Stats[1]
	if s1.Mean < 19.9 || s1.Mean > 20.1 {
		t.Errorf("pattern 1 mean = %v", s1.Mean)
	}
	if s1.Std > 1 {
		t.Errorf("steady pattern std = %v", s1.Std)
	}
	if s1.Max != 20 || s1.Windows != 30 {
		t.Errorf("stats = %+v", s1)
	}
	if p.Stats[2].Mean < 4.9 || p.Stats[2].Mean > 5.1 {
		t.Errorf("pattern 2 mean = %v", p.Stats[2].Mean)
	}
}

func TestLearnCountsEmptyWindows(t *testing.T) {
	// A pattern logging only in the first of 10 windows must learn a
	// mean near count/10, not count.
	logs := steady(1, 10, 1)
	logs = append(logs, steady(2, 1, 10)...) // stretches the span
	p := Learn(logs, 10*time.Second)
	if m := p.Stats[1].Mean; m > 1.5 {
		t.Errorf("sparse pattern mean = %v, want ~1", m)
	}
}

func TestLearnEmpty(t *testing.T) {
	p := Learn(nil, 10*time.Second)
	if len(p.Stats) != 0 {
		t.Error("empty corpus must give empty profile")
	}
}

func TestSpikeDetection(t *testing.T) {
	profile := Learn(steady(1, 20, 30), 10*time.Second)
	d := New(profile, Config{})

	// One normal window, then a 10x burst, then a closing log.
	var recs []anomaly.Record
	feed := func(logs []*logtypes.ParsedLog, shift time.Duration) {
		for _, l := range logs {
			l.Timestamp = l.Timestamp.Add(shift)
			recs = append(recs, d.Process(l)...)
		}
	}
	day := 24 * time.Hour
	feed(steady(1, 20, 1), day)
	feed(steady(1, 200, 1), day+10*time.Second)
	feed(steady(1, 20, 1), day+20*time.Second)
	// The burst window closes when the next window's log arrives.
	recs = append(recs, d.Advance(t0.Add(day+40*time.Second))...)

	spikes := 0
	for _, r := range recs {
		if r.Type == anomaly.VolumeSpike {
			spikes++
		}
	}
	if spikes != 1 {
		t.Fatalf("spikes = %d, want 1 (records: %+v)", spikes, recs)
	}
}

func TestDropDetectionNeedsHeartbeat(t *testing.T) {
	profile := Learn(steady(1, 20, 30), 10*time.Second)
	d := New(profile, Config{})

	day := 24 * time.Hour
	var recs []anomaly.Record
	for _, l := range steady(1, 20, 2) {
		l.Timestamp = l.Timestamp.Add(day)
		recs = append(recs, d.Process(l)...)
	}
	if len(recs) != 0 {
		t.Fatalf("normal windows flagged: %+v", recs)
	}
	// The source goes silent. Without time advancing, nothing fires.
	// A heartbeat 3 windows later closes the quiet windows as drops.
	recs = d.Advance(t0.Add(day + 50*time.Second))
	drops := 0
	for _, r := range recs {
		if r.Type == anomaly.VolumeDrop {
			drops++
		}
	}
	if drops < 2 {
		t.Fatalf("drops = %d, want the quiet windows flagged: %+v", drops, recs)
	}
}

func TestNormalVariationNotFlagged(t *testing.T) {
	// Training with variation 15..25/window; test within the envelope.
	var train []*logtypes.ParsedLog
	for w := 0; w < 40; w++ {
		n := 15 + (w*7)%11
		for i := 0; i < n; i++ {
			train = append(train, &logtypes.ParsedLog{
				PatternID:    1,
				Timestamp:    t0.Add(time.Duration(w)*10*time.Second + time.Duration(i)*time.Millisecond),
				HasTimestamp: true,
			})
		}
	}
	profile := Learn(train, 10*time.Second)
	d := New(profile, Config{})
	day := 24 * time.Hour
	var recs []anomaly.Record
	for w := 0; w < 20; w++ {
		n := 15 + (w*5)%11
		for i := 0; i < n; i++ {
			recs = append(recs, d.Process(&logtypes.ParsedLog{
				PatternID:    1,
				Timestamp:    t0.Add(day + time.Duration(w)*10*time.Second + time.Duration(i)*time.Millisecond),
				HasTimestamp: true,
			})...)
		}
	}
	if len(recs) != 0 {
		t.Fatalf("normal variation flagged: %+v", recs)
	}
}

func TestGapCapBoundsFlushDrops(t *testing.T) {
	profile := Learn(steady(1, 20, 30), 10*time.Second)
	d := New(profile, Config{})
	d.Process(&logtypes.ParsedLog{PatternID: 1, Timestamp: t0.Add(24 * time.Hour), HasTimestamp: true})
	// A flush heartbeat a year later must not report thousands of
	// drops.
	recs := d.Advance(t0.Add(24*time.Hour + 365*24*time.Hour))
	if len(recs) > 20 {
		t.Fatalf("gap produced %d records", len(recs))
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p := Learn(steady(1, 20, 10), 10*time.Second)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var p2 Profile
	if err := json.Unmarshal(data, &p2); err != nil {
		t.Fatal(err)
	}
	if p2.Window != p.Window || p2.Stats[1].Mean != p.Stats[1].Mean {
		t.Errorf("round trip: %+v vs %+v", p2, p)
	}
}

func TestNilProfileSafe(t *testing.T) {
	d := New(nil, Config{})
	if recs := d.Process(&logtypes.ParsedLog{PatternID: 1, Timestamp: t0, HasTimestamp: true}); recs != nil {
		t.Error("nil profile must be inert")
	}
}
