package volume

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"loglens/internal/logtypes"
)

func plog(pid int, t time.Time) *logtypes.ParsedLog {
	return &logtypes.ParsedLog{
		Log:          logtypes.Log{Source: "s"},
		PatternID:    pid,
		Timestamp:    t,
		HasTimestamp: true,
	}
}

// TestVolumeSaveRestoreRoundTrip: a restored detector must evaluate the
// open window exactly as the original would have.
func TestVolumeSaveRestoreRoundTrip(t *testing.T) {
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	var train []*logtypes.ParsedLog
	for w := 0; w < 20; w++ {
		for i := 0; i < 10; i++ {
			train = append(train, plog(1, base.Add(time.Duration(w)*time.Minute+time.Duration(i)*time.Second)))
		}
	}
	prof := Learn(train, time.Minute)
	cfg := Config{Sigma: 3}

	d1 := New(prof, cfg)
	now := base.Add(time.Hour)
	for i := 0; i < 40; i++ { // mid-window spike in progress
		d1.Process(plog(1, now.Add(time.Duration(i)*time.Second)))
	}

	data, err := json.Marshal(d1.SaveState())
	if err != nil {
		t.Fatal(err)
	}
	var loaded SavedState
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	d2 := New(prof, cfg)
	d2.RestoreState(loaded)

	// Finish the window identically on both.
	finish := func(d *Detector) []string {
		var out []string
		for i := 40; i < 60; i++ {
			for _, r := range d.Process(plog(1, now.Add(time.Duration(i)*time.Second))) {
				out = append(out, r.Reason)
			}
		}
		for _, r := range d.Advance(now.Add(5 * time.Minute)) {
			out = append(out, r.Reason)
		}
		return out
	}
	r1, r2 := finish(d1), finish(d2)
	if len(r1) == 0 {
		t.Fatal("expected the spiked window to report an anomaly")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("restored detector diverges:\n%v\n%v", r1, r2)
	}
}

func TestVolumeRestoreUnprimed(t *testing.T) {
	d := New(&Profile{Window: time.Minute, Stats: map[int]PatternStats{}}, Config{})
	d.RestoreState(SavedState{})
	if d.primed {
		t.Fatal("restored zero state must stay unprimed")
	}
}
