package volume

// SavedState is the serializable form of a volume detector's open
// window — the mutable state a checkpoint must carry so a restarted
// pipeline evaluates the same windows the dead one would have.
type SavedState struct {
	Bucket int64       `json:"bucket"`
	Counts map[int]int `json:"counts,omitempty"`
	Source string      `json:"source,omitempty"`
	Primed bool        `json:"primed"`
}

// SaveState snapshots the open window.
func (d *Detector) SaveState() SavedState {
	counts := make(map[int]int, len(d.counts))
	for k, v := range d.counts {
		counts[k] = v
	}
	return SavedState{Bucket: d.bucket, Counts: counts, Source: d.source, Primed: d.primed}
}

// RestoreState replaces the open window with a saved snapshot. The
// profile is not part of the state — it travels with the model.
func (d *Detector) RestoreState(s SavedState) {
	d.bucket = s.Bucket
	d.source = s.Source
	d.primed = s.Primed
	d.counts = make(map[int]int, len(s.Counts))
	for k, v := range s.Counts {
		d.counts[k] = v
	}
}
