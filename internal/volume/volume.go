// Package volume is a third exemplary log-analytics application built on
// the LogLens parser, demonstrating the system's extensibility beyond the
// two reference detectors (§I: parsed outputs "can be used as a building
// block for designing various log analysis features"; §VIII: LogLens is
// "an extensible system").
//
// The detector learns, per log pattern, the distribution of log volume in
// fixed event-time windows during normal runs, and flags windows whose
// counts deviate far above (spike) or below (drop) the learned profile.
// Like the sequence detector it is driven by event time and relies on
// heartbeats to close windows when a source goes quiet — a silent source
// is exactly the volume-drop case that can never be detected from log
// arrivals alone.
package volume

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/logtypes"
)

// PatternStats is a pattern's learned windowed-rate profile.
type PatternStats struct {
	// Mean and Std describe logs-per-window over the training span.
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	// Max is the largest training window observed.
	Max int `json:"max"`
	// Windows is the number of training windows profiled.
	Windows int `json:"windows"`
}

// Profile is the learned volume model.
type Profile struct {
	// Window is the bucketing interval.
	Window time.Duration `json:"windowNanos"`
	// Stats maps pattern ID to its rate profile.
	Stats map[int]PatternStats `json:"-"`
}

// profileJSON gives Stats a string-keyed encoding.
type profileJSON struct {
	Window time.Duration           `json:"windowNanos"`
	Stats  map[string]PatternStats `json:"stats"`
}

// MarshalJSON encodes the profile for the model storage.
func (p *Profile) MarshalJSON() ([]byte, error) {
	out := profileJSON{Window: p.Window, Stats: make(map[string]PatternStats, len(p.Stats))}
	for id, s := range p.Stats {
		out.Stats[strconv.Itoa(id)] = s
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a stored profile.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var in profileJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("volume: unmarshal profile: %w", err)
	}
	p.Window = in.Window
	p.Stats = make(map[int]PatternStats, len(in.Stats))
	for k, s := range in.Stats {
		id, err := strconv.Atoi(k)
		if err != nil {
			return fmt.Errorf("volume: unmarshal profile: bad pattern id %q", k)
		}
		p.Stats[id] = s
	}
	return nil
}

// Learn profiles per-pattern log volume from a training corpus. Windows
// are aligned to the corpus's own event time; windows inside the span with
// zero logs of a pattern count as zeros (a pattern that logs every window
// must learn a tight profile).
func Learn(logs []*logtypes.ParsedLog, window time.Duration) *Profile {
	p := &Profile{Window: window, Stats: make(map[int]PatternStats)}
	if len(logs) == 0 || window <= 0 {
		return p
	}

	var minT, maxT time.Time
	counts := make(map[int]map[int64]int) // pattern -> bucket -> count
	for _, l := range logs {
		t := l.EventTime()
		if minT.IsZero() || t.Before(minT) {
			minT = t
		}
		if t.After(maxT) {
			maxT = t
		}
		b := t.UnixNano() / int64(window)
		m := counts[l.PatternID]
		if m == nil {
			m = make(map[int64]int)
			counts[l.PatternID] = m
		}
		m[b]++
	}

	first := minT.UnixNano() / int64(window)
	last := maxT.UnixNano() / int64(window)
	total := int(last-first) + 1
	if total < 1 {
		total = 1
	}
	for pid, buckets := range counts {
		var sum, sumSq float64
		max := 0
		for b := first; b <= last; b++ {
			c := float64(buckets[b])
			sum += c
			sumSq += c * c
			if buckets[b] > max {
				max = buckets[b]
			}
		}
		mean := sum / float64(total)
		variance := sumSq/float64(total) - mean*mean
		if variance < 0 {
			variance = 0
		}
		p.Stats[pid] = PatternStats{
			Mean:    mean,
			Std:     math.Sqrt(variance),
			Max:     max,
			Windows: total,
		}
	}
	return p
}

// Config tunes the detector.
type Config struct {
	// Sigma is the deviation threshold in standard deviations
	// (default 6).
	Sigma float64
	// MinSpike is the minimum window count for a spike report
	// (default 10), suppressing noise on rare patterns.
	MinSpike int
	// MinDropMean is the minimum learned mean before a zero window can
	// be a drop (default 5): patterns that barely log cannot "drop".
	MinDropMean float64
}

func (c *Config) setDefaults() {
	if c.Sigma == 0 {
		c.Sigma = 6
	}
	if c.MinSpike == 0 {
		c.MinSpike = 10
	}
	if c.MinDropMean == 0 {
		c.MinDropMean = 5
	}
}

// Detector evaluates windows against a profile. It is NOT safe for
// concurrent use; the streaming engine runs one per partition.
type Detector struct {
	profile *Profile
	cfg     Config

	bucket int64 // current window (event-time)
	counts map[int]int
	source string
	primed bool
}

// New constructs a Detector.
func New(profile *Profile, cfg Config) *Detector {
	cfg.setDefaults()
	return &Detector{
		profile: profile,
		cfg:     cfg,
		counts:  make(map[int]int),
	}
}

// SetProfile swaps the learned profile (model update) without losing the
// open window.
func (d *Detector) SetProfile(p *Profile) { d.profile = p }

// Process feeds one parsed log; crossing a window boundary evaluates and
// reports the closed window(s).
func (d *Detector) Process(l *logtypes.ParsedLog) []anomaly.Record {
	if d.profile == nil || d.profile.Window <= 0 {
		return nil
	}
	d.source = l.Source
	out := d.Advance(l.EventTime())
	d.counts[l.PatternID]++
	return out
}

// Advance moves event time forward (from a log or a heartbeat), closing
// every window boundary crossed. Quiet gaps spanning multiple windows
// evaluate each — that is how a drop on a silent source surfaces.
func (d *Detector) Advance(t time.Time) []anomaly.Record {
	if d.profile == nil || d.profile.Window <= 0 {
		return nil
	}
	b := t.UnixNano() / int64(d.profile.Window)
	if !d.primed {
		d.bucket = b
		d.primed = true
		return nil
	}
	var out []anomaly.Record
	// Evaluate every completed window up to (not including) b. Cap the
	// number of evaluated empty windows so a huge time jump (e.g. a
	// final flush heartbeat) cannot report unbounded drops.
	const maxGapWindows = 16
	evaluated := 0
	for d.bucket < b {
		if evaluated < maxGapWindows {
			out = append(out, d.closeWindow()...)
			evaluated++
		} else {
			d.counts = make(map[int]int)
		}
		d.bucket++
	}
	return out
}

// closeWindow compares the finished window against the profile.
func (d *Detector) closeWindow() []anomaly.Record {
	var out []anomaly.Record
	winStart := time.Unix(0, d.bucket*int64(d.profile.Window)).UTC()

	ids := make([]int, 0, len(d.profile.Stats))
	for pid := range d.profile.Stats {
		ids = append(ids, pid)
	}
	sort.Ints(ids)
	for _, pid := range ids {
		st := d.profile.Stats[pid]
		c := d.counts[pid]
		hi := st.Mean + d.cfg.Sigma*st.Std
		lo := st.Mean - d.cfg.Sigma*st.Std
		switch {
		case float64(c) > hi && c >= d.cfg.MinSpike && c > st.Max:
			out = append(out, anomaly.Record{
				Type:     anomaly.VolumeSpike,
				Severity: anomaly.Warning,
				Reason: fmt.Sprintf("pattern %d logged %d times in window %s, learned %.1f±%.1f (max %d)",
					pid, c, d.profile.Window, st.Mean, st.Std, st.Max),
				Timestamp: winStart,
				Source:    d.source,
			})
		case float64(c) < lo && st.Mean >= d.cfg.MinDropMean:
			out = append(out, anomaly.Record{
				Type:     anomaly.VolumeDrop,
				Severity: anomaly.Warning,
				Reason: fmt.Sprintf("pattern %d logged %d times in window %s, learned %.1f±%.1f",
					pid, c, d.profile.Window, st.Mean, st.Std),
				Timestamp: winStart,
				Source:    d.source,
			})
		}
	}
	d.counts = make(map[int]int)
	return out
}
