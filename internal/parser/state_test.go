package parser

import (
	"encoding/json"
	"reflect"
	"testing"

	"loglens/internal/logtypes"
)

func TestParserSaveRestoreCounters(t *testing.T) {
	set := mustSet(t,
		"%{DATETIME} %{IP} login %{NOTSPACE}",
		"%{DATETIME} %{IP} logout %{NOTSPACE}",
	)
	logs := []logtypes.Log{
		raw("2016/02/23 09:00:31 127.0.0.1 login user1"),
		raw("2016/02/23 09:05:00 10.0.0.9 logout admin"),
		raw("2016/02/23 09:06:00 10.0.0.9 login admin"),
		raw("no pattern matches this line"),
	}
	p := New(set, nil)
	for _, l := range logs {
		p.Parse(l)
	}
	before := p.Stats()
	counts := p.PatternCounts()
	if before.Parsed != 3 || before.Unmatched != 1 {
		t.Fatalf("corpus stats = %+v", before)
	}

	data, err := json.Marshal(p.SaveState())
	if err != nil {
		t.Fatal(err)
	}
	var loaded SavedState
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}

	p2 := New(set, nil)
	p2.RestoreState(loaded)
	if p2.Stats() != before {
		t.Fatalf("restored stats = %+v, want %+v", p2.Stats(), before)
	}
	if !reflect.DeepEqual(p2.PatternCounts(), counts) {
		t.Fatalf("restored pattern counts = %v, want %v", p2.PatternCounts(), counts)
	}

	// Restored counters keep accumulating, continuing the original run.
	for _, l := range logs {
		p2.Parse(l)
	}
	if got, want := p2.Stats().Parsed, 2*before.Parsed; got != want {
		t.Fatalf("parsed after resume = %d, want %d", got, want)
	}
	if got := p2.PatternCounts()[1]; got != 2*counts[1] {
		t.Fatalf("pattern 1 count after resume = %d, want %d", got, 2*counts[1])
	}
}
