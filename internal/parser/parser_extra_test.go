package parser

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"loglens/internal/datatype"
	"loglens/internal/logtypes"
)

func TestGroupIndexEviction(t *testing.T) {
	set := mustSet(t, "stable %{NUMBER:n}")
	p := New(set, nil, WithMaxGroups(8))
	// Flood with logs of distinct signatures (anomalous traffic).
	for i := 0; i < 40; i++ {
		line := "junk"
		for j := 0; j <= i%13; j++ {
			line += fmt.Sprintf(" tok%d", j)
		}
		p.Parse(raw(line))
	}
	s := p.Stats()
	if s.GroupEvictions == 0 {
		t.Errorf("no evictions under flood: %+v", s)
	}
	// Parsing still works after evictions.
	if _, err := p.Parse(raw("stable 42")); err != nil {
		t.Errorf("parse after eviction: %v", err)
	}
	// The index stayed bounded.
	if len(p.groups) > 9 {
		t.Errorf("group index grew to %d entries past the cap", len(p.groups))
	}
}

func TestGroupSortAblation(t *testing.T) {
	// With sorting off, whichever pattern has the lower ID wins; the
	// WORD-specific pattern (ID 2) can be shadowed by NOTSPACE (ID 1).
	set := mustSet(t, "job %{NOTSPACE:v}", "job %{WORD:v}")
	p := New(set, nil, WithoutGroupSort())
	pl, err := p.Parse(raw("job alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if pl.PatternID != 1 {
		t.Errorf("unsorted group should scan in ID order, got pattern %d", pl.PatternID)
	}
}

func TestCloneKeepsOptions(t *testing.T) {
	set := mustSet(t, "a %{NUMBER}")
	p := New(set, nil, WithMaxGroups(3), WithoutGroupSort())
	c := p.Clone()
	if c.maxGroups != 3 || !c.sortOff {
		t.Error("Clone dropped options")
	}
	// Clone has an empty index.
	p.Parse(raw("a 1"))
	if len(c.groups) != 0 {
		t.Error("Clone shares the group index")
	}
}

// isMatchedRef is a brute-force reference for Algorithm 1: recursive
// backtracking with no memoization.
func isMatchedRef(logSig, patSig []datatype.Type) bool {
	if len(patSig) == 0 {
		return len(logSig) == 0
	}
	p := patSig[0]
	if p == datatype.AnyData {
		// Absorb zero..all log tokens.
		for k := 0; k <= len(logSig); k++ {
			if isMatchedRef(logSig[k:], patSig[1:]) {
				return true
			}
		}
		return false
	}
	if len(logSig) == 0 {
		return false
	}
	if logSig[0] == p || datatype.Covers(p, logSig[0]) {
		return isMatchedRef(logSig[1:], patSig[1:])
	}
	return false
}

// TestIsMatchedAgainstReference property-tests the DP against the
// brute-force reference on random signatures.
func TestIsMatchedAgainstReference(t *testing.T) {
	types := []datatype.Type{
		datatype.Word, datatype.Number, datatype.IP,
		datatype.DateTime, datatype.NotSpace,
	}
	rng := rand.New(rand.NewSource(7))
	gen := func(n int, wildcards bool) []datatype.Type {
		out := make([]datatype.Type, n)
		for i := range out {
			if wildcards && rng.Intn(4) == 0 {
				out[i] = datatype.AnyData
			} else {
				out[i] = types[rng.Intn(len(types))]
			}
		}
		return out
	}
	for i := 0; i < 5000; i++ {
		logSig := gen(rng.Intn(8), false)
		patSig := gen(rng.Intn(8), true)
		got := IsMatched(logSig, patSig)
		want := isMatchedRef(logSig, patSig)
		if got != want {
			t.Fatalf("IsMatched(%v, %v) = %v, reference %v", logSig, patSig, got, want)
		}
	}
}

// TestIsMatchedProperties: identity and wildcard-absorption laws.
func TestIsMatchedProperties(t *testing.T) {
	types := []datatype.Type{datatype.Word, datatype.Number, datatype.IP, datatype.NotSpace}
	// A signature always matches itself.
	identity := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10)
		sig := make([]datatype.Type, n)
		for i := range sig {
			sig[i] = types[rng.Intn(len(types))]
		}
		return IsMatched(sig, sig)
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Error(err)
	}
	// Replacing any pattern position with ANYDATA preserves matching.
	widen := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(9) + 1
		sig := make([]datatype.Type, n)
		pat := make([]datatype.Type, n)
		for i := range sig {
			sig[i] = types[rng.Intn(len(types))]
			pat[i] = sig[i]
		}
		pat[rng.Intn(n)] = datatype.AnyData
		return IsMatched(sig, pat)
	}
	if err := quick.Check(widen, nil); err != nil {
		t.Error(err)
	}
}

func TestParseLinearStats(t *testing.T) {
	set := mustSet(t, "a %{NUMBER}", "b %{NUMBER}", "c %{NUMBER}")
	p := New(set, nil)
	if _, err := p.ParseLinear(logtypes.Log{Raw: "c 3"}); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().CandidateScans; got != 3 {
		t.Errorf("linear scans = %d, want 3", got)
	}
}
