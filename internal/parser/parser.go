// Package parser implements the LogLens stateless log parser (§III-B):
// logs are parsed against the discovered GROK pattern set via a
// log-signature index that reduces per-log cost from O(m) pattern scans to
// amortized O(1) group lookups. Logs that no pattern parses are stateless
// anomalies.
//
// The parser proceeds in the paper's three steps: (1) compute the log's
// signature (concatenated token datatypes) and look up its
// candidate-pattern-group; (2) on a miss, build the group by matching the
// log-signature against every pattern-signature with the dynamic
// programming of Algorithm 1 (wildcard-aware), sorting candidates in
// ascending datatype generality and length; (3) scan the group's patterns
// until one parses the log.
package parser

import (
	"errors"
	"sort"

	"loglens/internal/datatype"
	"loglens/internal/grok"
	"loglens/internal/logtypes"
	"loglens/internal/metrics"
	"loglens/internal/preprocess"
)

// ErrNoMatch reports that no pattern parses the log: the log is a
// stateless anomaly (§III-B step 3).
var ErrNoMatch = errors.New("parser: log matches no pattern")

// Stats counts parser work for the evaluation harness.
type Stats struct {
	// Parsed counts successfully parsed logs.
	Parsed uint64
	// Unmatched counts anomalies (ErrNoMatch).
	Unmatched uint64
	// GroupHits counts logs whose signature hit an existing group.
	GroupHits uint64
	// GroupBuilds counts candidate-pattern-group constructions (cache
	// misses, each costing one Algorithm-1 pass over all patterns).
	GroupBuilds uint64
	// GroupEvictions counts group-index entries evicted at the cap.
	GroupEvictions uint64
	// CandidateScans counts full pattern-match attempts inside groups.
	CandidateScans uint64
}

// DefaultMaxGroups caps the candidate-pattern-group index size. Anomalous
// traffic can mint unbounded fresh signatures (every unparsed log shape
// caches an empty group), so the index evicts its oldest entries beyond
// the cap rather than growing without bound.
const DefaultMaxGroups = 65536

// Parser is the stateless anomaly detector. It is NOT safe for concurrent
// use (the group index and preprocessor caches mutate on every Parse);
// create one per goroutine with Clone.
type Parser struct {
	set *grok.Set
	pp  *preprocess.Preprocessor

	// groups is the candidate-pattern-group index, keyed by an FNV-1a
	// hash of the log-signature type sequence. Hash collisions chain;
	// each entry carries an owned copy of its type sequence so lookups
	// verify the signature instead of trusting the hash. Hash keys keep
	// the group-hit path free of per-line signature-string allocations.
	groups map[uint64]*groupEntry
	// order is the FIFO eviction ring: insertion-ordered signature
	// hashes with the live window at order[head:]. Eviction advances
	// head (O(evicted)); the dead prefix is compacted away only once it
	// exceeds half the slice, keeping compaction amortized O(1).
	order []uint64
	head  int
	// count tracks live signatures (map entries undercount when chains
	// form).
	count int

	maxGroups int
	sortOff   bool
	stats     Stats
	perPat    map[int]uint64
	instr     *parserInstr

	// Per-goroutine hot-path scratch, reused across Parse calls.
	scratch preprocess.Scratch
	dpPrev  []bool
	dpCur   []bool
}

// groupEntry is one signature's candidate-pattern-group, chained on hash
// collision. types is an owned copy (the lookup key aliases per-line
// scratch); new entries append at the chain tail so FIFO eviction pops
// the oldest node first.
type groupEntry struct {
	types []datatype.Type
	group []*grok.Pattern
	next  *groupEntry
}

// fnv1aOffset and fnv1aPrime are the 64-bit FNV-1a parameters.
const (
	fnv1aOffset = 14695981039346656037
	fnv1aPrime  = 1099511628211
)

// sigHash is the FNV-1a hash of a log-signature type sequence.
func sigHash(types []datatype.Type) uint64 {
	h := uint64(fnv1aOffset)
	for _, t := range types {
		h ^= uint64(t)
		h *= fnv1aPrime
	}
	return h
}

func typesEqual(a, b []datatype.Type) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// parserInstr mirrors the per-Parse counters into a shared registry.
// Clones share the same handles: clones are the per-partition copies of
// one logical parser, so their registry counters aggregate.
type parserInstr struct {
	parsed    *metrics.Counter
	unmatched *metrics.Counter
	hits      *metrics.Counter
	builds    *metrics.Counter
	evictions *metrics.Counter
	scans     *metrics.Counter
}

// Option configures a Parser.
type Option func(*Parser)

// WithMaxGroups overrides the group-index cap (0 = unlimited).
func WithMaxGroups(n int) Option {
	return func(p *Parser) { p.maxGroups = n }
}

// WithoutGroupSort disables the ascending-generality candidate ordering —
// ablation only: groups are scanned in pattern-ID order, so a more general
// pattern can shadow a specific one.
func WithoutGroupSort() Option {
	return func(p *Parser) { p.sortOff = true }
}

// New constructs a Parser over the given pattern set. A nil preprocessor
// selects the defaults.
func New(set *grok.Set, pp *preprocess.Preprocessor, opts ...Option) *Parser {
	if pp == nil {
		pp = preprocess.New(nil, nil)
	}
	p := &Parser{
		set:       set,
		pp:        pp,
		groups:    make(map[uint64]*groupEntry),
		maxGroups: DefaultMaxGroups,
		perPat:    make(map[int]uint64),
	}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// Clone returns an independent Parser sharing the (read-only) pattern set
// but with its own group index and preprocessor caches. Registry
// instruments are shared, aggregating across clones.
func (p *Parser) Clone() *Parser {
	c := New(p.set, p.pp.Clone())
	c.maxGroups = p.maxGroups
	c.sortOff = p.sortOff
	c.instr = p.instr
	return c
}

// Instrument mirrors the parser's work counters into reg under the
// parser_* names (signature-index hits/misses, candidate scans, parse
// verdicts). Counter increments are atomic, so clones sharing the handles
// may run in different partitions.
func (p *Parser) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	p.instr = &parserInstr{
		parsed:    reg.Counter("parser_parsed_total"),
		unmatched: reg.Counter("parser_unparsed_total"),
		hits:      reg.Counter("parser_group_hits_total"),
		builds:    reg.Counter("parser_group_builds_total"),
		evictions: reg.Counter("parser_group_evictions_total"),
		scans:     reg.Counter("parser_candidate_scans_total"),
	}
}

// SetPatterns swaps in a new pattern set (a model update) and drops the
// group index, which is rebuilt lazily against the new model.
func (p *Parser) SetPatterns(set *grok.Set) {
	p.set = set
	p.groups = make(map[uint64]*groupEntry)
	p.order = p.order[:0]
	p.head = 0
	p.count = 0
}

// Patterns returns the active pattern set.
func (p *Parser) Patterns() *grok.Set { return p.set }

// Stats returns a snapshot of the work counters.
func (p *Parser) Stats() Stats { return p.stats }

// PatternCounts returns how many logs each pattern has parsed — the model
// reviewer's view of which patterns carry traffic (and which are dead).
func (p *Parser) PatternCounts() map[int]uint64 {
	out := make(map[int]uint64, len(p.perPat))
	for id, n := range p.perPat {
		out[id] = n
	}
	return out
}

// ResetStats zeroes the work counters.
func (p *Parser) ResetStats() { p.stats = Stats{} }

// Parse parses one log. On success it returns the structured form; if no
// pattern matches it returns ErrNoMatch and the caller reports the log as
// an anomaly.
func (p *Parser) Parse(l logtypes.Log) (*logtypes.ParsedLog, error) {
	pl := &logtypes.ParsedLog{}
	if err := p.ParseInto(l, pl); err != nil {
		return nil, err
	}
	return pl, nil
}

// ParseInto is Parse writing the structured form into a caller-owned
// ParsedLog, reusing its Fields buffer. A caller cycling one ParsedLog
// per goroutine pays zero allocations on the group-hit path (the field
// values alias the immutable raw line, so they stay valid after reuse).
// On ErrNoMatch *pl is left in an unspecified state.
func (p *Parser) ParseInto(l logtypes.Log, pl *logtypes.ParsedLog) error {
	res := p.pp.ProcessScratch(l.Raw, &p.scratch)
	h := sigHash(res.Types)

	entry := p.lookup(h, res.Types)
	if entry != nil {
		p.stats.GroupHits++
		if p.instr != nil {
			p.instr.hits.Inc()
		}
	} else {
		entry = p.cacheGroup(h, res.Types, p.buildGroup(res.Types))
		p.stats.GroupBuilds++
		if p.instr != nil {
			p.instr.builds.Inc()
		}
	}

	for _, pat := range entry.group {
		p.stats.CandidateScans++
		if p.instr != nil {
			p.instr.scans.Inc()
		}
		fields, ok := pat.AppendMatch(pl.Fields[:0], res.Tokens)
		if !ok {
			continue
		}
		p.stats.Parsed++
		if p.instr != nil {
			p.instr.parsed.Inc()
		}
		p.perPat[pat.ID]++
		*pl = logtypes.ParsedLog{
			Log:          l,
			PatternID:    pat.ID,
			Fields:       fields,
			Timestamp:    res.Time,
			HasTimestamp: res.HasTime,
		}
		return nil
	}
	p.stats.Unmatched++
	if p.instr != nil {
		p.instr.unmatched.Inc()
	}
	return ErrNoMatch
}

// lookup walks the hash bucket's collision chain, verifying the type
// sequence of each entry.
func (p *Parser) lookup(h uint64, types []datatype.Type) *groupEntry {
	for e := p.groups[h]; e != nil; e = e.next {
		if typesEqual(e.types, types) {
			return e
		}
	}
	return nil
}

// buildGroup assembles the candidate-pattern-group for a log-signature:
// all patterns whose pattern-signature can parse it (Algorithm 1), sorted
// in ascending datatype generality then token count, so the most specific
// pattern is tried first.
func (p *Parser) buildGroup(logSig []datatype.Type) []*grok.Pattern {
	var group []*grok.Pattern
	for _, pat := range p.set.Patterns() {
		if p.isMatched(logSig, pat.SignatureTypes()) {
			group = append(group, pat)
		}
	}
	if !p.sortOff {
		sort.SliceStable(group, func(i, j int) bool {
			gi, gj := group[i].Generality(), group[j].Generality()
			if gi != gj {
				return gi < gj
			}
			return len(group[i].Tokens) < len(group[j].Tokens)
		})
	}
	return group
}

// cacheGroup stores a group under its signature hash, evicting the
// oldest entries beyond the cap. The just-inserted entry is returned and
// can never be part of the eviction wave (eviction runs first).
func (p *Parser) cacheGroup(h uint64, types []datatype.Type, group []*grok.Pattern) *groupEntry {
	if p.maxGroups > 0 && p.count >= p.maxGroups {
		wave := p.count / 4
		if wave < 1 {
			wave = 1
		}
		for i := 0; i < wave && p.head < len(p.order); i++ {
			old := p.order[p.head]
			p.head++
			if e := p.groups[old]; e != nil {
				if e.next != nil {
					p.groups[old] = e.next
				} else {
					delete(p.groups, old)
				}
			}
			p.count--
			p.stats.GroupEvictions++
			if p.instr != nil {
				p.instr.evictions.Inc()
			}
		}
		if p.head > len(p.order)/2 {
			n := copy(p.order, p.order[p.head:])
			p.order = p.order[:n]
			p.head = 0
		}
	}
	owned := make([]datatype.Type, len(types))
	copy(owned, types)
	e := &groupEntry{types: owned, group: group}
	if head := p.groups[h]; head != nil {
		tail := head
		for tail.next != nil {
			tail = tail.next
		}
		tail.next = e
	} else {
		p.groups[h] = e
	}
	p.order = append(p.order, h)
	p.count++
	return e
}

// isMatched is IsMatched using the Parser's reusable DP rows, so group
// builds allocate nothing beyond the group slice itself.
func (p *Parser) isMatched(logSig, patSig []datatype.Type) bool {
	if !sigHasAnyData(patSig) {
		return isMatchedExact(logSig, patSig)
	}
	need := len(patSig) + 1
	if cap(p.dpPrev) < need {
		p.dpPrev = make([]bool, need)
		p.dpCur = make([]bool, need)
	}
	return isMatchedDP(logSig, patSig, p.dpPrev[:need], p.dpCur[:need])
}

// IsMatched is Algorithm 1: whether a log-signature can be parsed by a
// pattern-signature, where ANYDATA in the pattern-signature may absorb any
// number of log tokens and coverage follows the datatype lattice
// (isCovered(l, p) is true when p's RegEx language includes l's).
func IsMatched(logSig, patSig []datatype.Type) bool {
	if !sigHasAnyData(patSig) {
		return isMatchedExact(logSig, patSig)
	}
	s := len(patSig)
	return isMatchedDP(logSig, patSig, make([]bool, s+1), make([]bool, s+1))
}

func sigHasAnyData(patSig []datatype.Type) bool {
	for _, t := range patSig {
		if t == datatype.AnyData {
			return true
		}
	}
	return false
}

// isMatchedExact is the no-wildcard fast path: positions align one to
// one.
func isMatchedExact(logSig, patSig []datatype.Type) bool {
	if len(logSig) != len(patSig) {
		return false
	}
	for i := range logSig {
		if logSig[i] != patSig[i] && !datatype.Covers(patSig[i], logSig[i]) {
			return false
		}
	}
	return true
}

// isMatchedDP is the wildcard case: T[i][j] = log prefix i parsed by
// pattern prefix j. Two rolling rows keep it O(r*s) time, O(s) space.
// prev and cur must be len(patSig)+1; their contents are overwritten.
func isMatchedDP(logSig, patSig []datatype.Type, prev, cur []bool) bool {
	r, s := len(logSig), len(patSig)
	prev[0] = true
	for j := 1; j <= s; j++ {
		prev[j] = prev[j-1] && patSig[j-1] == datatype.AnyData
	}
	for i := 1; i <= r; i++ {
		cur[0] = false
		for j := 1; j <= s; j++ {
			pj := patSig[j-1]
			switch {
			case pj == datatype.AnyData:
				cur[j] = cur[j-1] || prev[j]
			case logSig[i-1] == pj || datatype.Covers(pj, logSig[i-1]):
				cur[j] = prev[j-1]
			default:
				cur[j] = false
			}
		}
		prev, cur = cur, prev
	}
	return prev[s]
}
