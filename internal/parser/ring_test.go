package parser

import (
	"fmt"
	"strings"
	"testing"

	"loglens/internal/datatype"
	"loglens/internal/logtypes"
)

// distinctSigLine builds a log line whose signature is unique per i (the
// token count varies), minting fresh group-index entries on demand.
func distinctSigLine(i int) string {
	return "junk" + strings.Repeat(" tok", i+1)
}

// TestEvictionRingFIFO: the eviction wave removes exactly the oldest
// signatures, and a just-inserted signature is never evicted — the
// insert happens after the wave, so re-parsing the newest line must hit.
func TestEvictionRingFIFO(t *testing.T) {
	set := mustSet(t, "stable %{NUMBER:n}")
	p := New(set, nil, WithMaxGroups(4))
	for i := 0; i < 4; i++ {
		p.Parse(raw(distinctSigLine(i)))
	}
	if p.Stats().GroupEvictions != 0 {
		t.Fatalf("evicted below the cap: %+v", p.Stats())
	}

	// The 5th insert evicts a wave of count/4 = 1: only the oldest.
	p.Parse(raw(distinctSigLine(4)))
	s := p.Stats()
	if s.GroupEvictions != 1 {
		t.Fatalf("GroupEvictions = %d, want 1", s.GroupEvictions)
	}
	builds := s.GroupBuilds
	// The just-inserted signature and the second-oldest survivor hit...
	p.Parse(raw(distinctSigLine(4)))
	p.Parse(raw(distinctSigLine(1)))
	if got := p.Stats().GroupBuilds; got != builds {
		t.Errorf("surviving signatures rebuilt their groups: builds %d -> %d", builds, got)
	}
	// ...while the evicted oldest rebuilds.
	p.Parse(raw(distinctSigLine(0)))
	if got := p.Stats().GroupBuilds; got != builds+1 {
		t.Errorf("evicted signature did not rebuild: builds %d -> %d", builds, got)
	}
}

// TestEvictionRingBounded: under sustained anomalous flood the head-
// indexed ring never copies more than the evicted prefix per wave, so
// its backing slice stays within a small constant factor of the cap
// (the old slice-copy eviction kept it tight too — the invariant checked
// here is that amortized compaction bounds the dead prefix).
func TestEvictionRingBounded(t *testing.T) {
	const cap_ = 8
	set := mustSet(t, "stable %{NUMBER:n}")
	p := New(set, nil, WithMaxGroups(cap_))
	for i := 0; i < 500; i++ {
		p.Parse(raw(distinctSigLine(i)))
		if p.count > cap_ {
			t.Fatalf("live signatures %d exceed cap %d", p.count, cap_)
		}
		if live := len(p.order) - p.head; live != p.count {
			t.Fatalf("ring window %d disagrees with count %d", live, p.count)
		}
		if len(p.order) > 4*cap_ {
			t.Fatalf("ring slice grew to %d entries; compaction is not amortizing", len(p.order))
		}
	}
	if p.Stats().GroupEvictions == 0 {
		t.Fatal("no evictions under flood")
	}
}

// TestSignatureHashCollision: two distinct type sequences forced into
// the same hash bucket chain, and lookups resolve each to its own group
// via the collision-verification compare.
func TestSignatureHashCollision(t *testing.T) {
	set := mustSet(t, "%{DATETIME:ts} ok", "%{NUMBER:a} %{NUMBER:b} %{NUMBER:c}")
	p := New(set, nil)
	typesA := []datatype.Type{datatype.DateTime, datatype.Word}
	typesB := []datatype.Type{datatype.Number, datatype.Number, datatype.Number}
	groupA := p.buildGroup(typesA)
	groupB := p.buildGroup(typesB)
	if len(groupA) != 1 || len(groupB) != 1 || groupA[0].ID == groupB[0].ID {
		t.Fatalf("fixture groups wrong: %v %v", groupA, groupB)
	}

	// Force both signatures into bucket sigHash(typesA).
	h := sigHash(typesA)
	p.cacheGroup(h, typesA, groupA)
	p.cacheGroup(h, typesB, groupB)

	eA := p.lookup(h, typesA)
	eB := p.lookup(h, typesB)
	if eA == nil || len(eA.group) != 1 || eA.group[0].ID != groupA[0].ID {
		t.Errorf("lookup(typesA) resolved to %+v, want pattern %d", eA, groupA[0].ID)
	}
	if eB == nil || len(eB.group) != 1 || eB.group[0].ID != groupB[0].ID {
		t.Errorf("lookup(typesB) resolved to %+v, want pattern %d", eB, groupB[0].ID)
	}

	// A sequence that hashes here but was never cached must miss.
	if e := p.lookup(h, []datatype.Type{datatype.IP}); e != nil {
		t.Errorf("lookup of an uncached sequence returned %+v", e)
	}

	// Entries own their type sequences: mutating the caller's slice must
	// not corrupt the index.
	typesA[0] = datatype.IP
	if e := p.lookup(h, []datatype.Type{datatype.DateTime, datatype.Word}); e == nil {
		t.Error("entry aliased the caller's type slice")
	}
}

// TestCollisionChainEvictionOrder: chained entries under one hash evict
// oldest-first, matching their positions in the FIFO ring.
func TestCollisionChainEvictionOrder(t *testing.T) {
	set := mustSet(t, "%{DATETIME:ts} ok")
	p := New(set, nil, WithMaxGroups(2))
	typesA := []datatype.Type{datatype.DateTime, datatype.Word}
	typesB := []datatype.Type{datatype.Number}
	h := sigHash(typesA)
	p.cacheGroup(h, typesA, nil)
	p.cacheGroup(h, typesB, nil) // same bucket, inserted second

	// Next insert is over the cap: wave of 1 evicts the chain head A.
	p.cacheGroup(sigHash([]datatype.Type{datatype.IP}), []datatype.Type{datatype.IP}, nil)
	if p.lookup(h, typesA) != nil {
		t.Error("oldest chain entry survived eviction")
	}
	if p.lookup(h, typesB) == nil {
		t.Error("newer chain entry was evicted with the oldest")
	}
}

// TestParseGroupHitZeroAllocs: the full steady-state line path —
// preprocess, signature hash, group lookup, pattern match, field
// extraction — allocates nothing when the signature hits and the
// timestamp is already in the unified layout. This is the PR-5
// allocation budget enforced in go test, not just in benchmarks.
func TestParseGroupHitZeroAllocs(t *testing.T) {
	set := mustSet(t, "%{DATETIME:ts} %{IP:ip} login %{NOTSPACE:user}")
	p := New(set, nil)
	l := raw("2016/02/23 09:00:31.000 127.0.0.1 login user1")
	var pl logtypes.ParsedLog
	if err := p.ParseInto(l, &pl); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.ParseInto(l, &pl); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("group-hit ParseInto allocates %v per line, want 0", allocs)
	}
	if pl.PatternID == 0 || len(pl.Fields) != 3 {
		t.Fatalf("unexpected parse result: %+v", pl)
	}
	if hits := p.Stats().GroupHits; hits == 0 {
		t.Fatal("fixture never hit the group index")
	}
}

// TestParseIntoMatchesParse: the scratch-reusing entry point returns the
// same structured logs as Parse.
func TestParseIntoMatchesParse(t *testing.T) {
	set := mustSet(t, "%{DATETIME:ts} %{IP:ip} login %{NOTSPACE:user}", "job %{NOTSPACE:id} rc %{NUMBER:rc}")
	p := New(set, nil)
	q := New(set, nil)
	lines := []string{
		"2016/02/23 09:00:31.000 127.0.0.1 login user1",
		"job jb-7 rc 0",
		"unparseable anomaly line ###",
	}
	var pl logtypes.ParsedLog
	for _, line := range lines {
		want, errWant := p.Parse(raw(line))
		errGot := q.ParseInto(raw(line), &pl)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("ParseInto(%q) err = %v, Parse err = %v", line, errGot, errWant)
		}
		if errWant != nil {
			continue
		}
		if pl.PatternID != want.PatternID || fmt.Sprint(pl.Fields) != fmt.Sprint(want.Fields) ||
			!pl.Timestamp.Equal(want.Timestamp) || pl.HasTimestamp != want.HasTimestamp {
			t.Errorf("ParseInto(%q) = %+v, Parse = %+v", line, pl, *want)
		}
	}
}
