package parser

import (
	"errors"
	"testing"

	"loglens/internal/datatype"
	"loglens/internal/metrics"
)

// TestParseEmptyLine: a line that tokenizes to nothing must come back as a
// clean ErrNoMatch anomaly (never a panic or a spurious parse), and the
// empty signature must cache a group like any other.
func TestParseEmptyLine(t *testing.T) {
	set := mustSet(t, "%{DATETIME} %{IP} login %{NOTSPACE}")
	p := New(set, nil)
	for _, line := range []string{"", "   ", "\t \t"} {
		if _, err := p.Parse(raw(line)); !errors.Is(err, ErrNoMatch) {
			t.Fatalf("Parse(%q) err = %v, want ErrNoMatch", line, err)
		}
	}
	s := p.Stats()
	if s.Unmatched != 3 || s.Parsed != 0 {
		t.Fatalf("stats = %+v, want 3 unmatched, 0 parsed", s)
	}
	// Whitespace-only lines share the empty signature: one group build,
	// then hits.
	if s.GroupBuilds != 1 || s.GroupHits != 2 {
		t.Fatalf("stats = %+v, want 1 build + 2 hits for the empty signature", s)
	}
}

// TestEqualSpecificityTieBreak: when two patterns have equal generality and
// equal token count, the stable group sort keeps registration order, so the
// earlier pattern wins deterministically.
func TestEqualSpecificityTieBreak(t *testing.T) {
	set := mustSet(t,
		"alpha %{NOTSPACE}", // pattern 1
		"%{NOTSPACE} beta",  // pattern 2: same generality, same length
	)
	p := New(set, nil)
	// "alpha beta" parses under both patterns; the tie must break to the
	// first-registered one, every time.
	for i := 0; i < 3; i++ {
		pl, err := p.Parse(raw("alpha beta"))
		if err != nil {
			t.Fatal(err)
		}
		if pl.PatternID != 1 {
			t.Fatalf("PatternID = %d, want 1 (registration order tie-break)", pl.PatternID)
		}
	}
	// Lines only one of them parses still reach the right pattern.
	pl, err := p.Parse(raw("gamma beta"))
	if err != nil {
		t.Fatal(err)
	}
	if pl.PatternID != 2 {
		t.Fatalf("PatternID = %d, want 2", pl.PatternID)
	}
}

// TestWildcardsExceedTokens: a pattern with more ANYDATA wildcards than the
// log has tokens must still match when the wildcards can absorb zero
// tokens, both in the Algorithm-1 signature match and the full parse.
func TestWildcardsExceedTokens(t *testing.T) {
	// Signature level: three wildcards against a single-token log.
	logSig := []datatype.Type{datatype.Word}
	patSig := []datatype.Type{datatype.AnyData, datatype.Word, datatype.AnyData}
	if !IsMatched(logSig, patSig) {
		t.Fatal("IsMatched = false: wildcards must be able to absorb zero tokens")
	}
	allWild := []datatype.Type{datatype.AnyData, datatype.AnyData}
	if !IsMatched(nil, allWild) {
		t.Fatal("IsMatched(empty log, all wildcards) = false, want true")
	}
	if IsMatched(logSig, []datatype.Type{datatype.AnyData, datatype.IP, datatype.AnyData}) {
		t.Fatal("IsMatched = true for a non-covering mandatory token")
	}

	// Full parse: two wildcards plus a literal against a one-token line.
	set := mustSet(t, "%{ANYDATA} x %{ANYDATA}")
	p := New(set, nil)
	pl, err := p.Parse(raw("x"))
	if err != nil {
		t.Fatalf("Parse(%q): %v", "x", err)
	}
	if pl.PatternID != 1 {
		t.Fatalf("PatternID = %d, want 1", pl.PatternID)
	}
}

// TestInstrumentMirrorsStats: registry counters must track the built-in
// Stats exactly, including across clones (which share handles).
func TestInstrumentMirrorsStats(t *testing.T) {
	reg := metrics.NewRegistry()
	set := mustSet(t, "%{DATETIME} %{IP} login %{NOTSPACE}")
	p := New(set, nil)
	p.Instrument(reg)
	c := p.Clone()

	if _, err := p.Parse(raw("2016/02/23 09:00:31 127.0.0.1 login user1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parse(raw("garbage that matches nothing here")); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v, want ErrNoMatch", err)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("parser_parsed_total"); got != 1 {
		t.Fatalf("parser_parsed_total = %d, want 1", got)
	}
	if got := snap.Counter("parser_unparsed_total"); got != 1 {
		t.Fatalf("parser_unparsed_total = %d, want 1", got)
	}
	// Each parser built its own group (indexes are per-clone).
	if got := snap.Counter("parser_group_builds_total"); got != 2 {
		t.Fatalf("parser_group_builds_total = %d, want 2", got)
	}
}
