package parser

import (
	"loglens/internal/logtypes"
)

// ParseLinear parses a log by scanning every pattern in ID order with no
// signature index — the naive O(m)-comparisons-per-log strategy the paper
// contrasts against (§III-B "Problem Definition"). It exists for the
// index-ablation benchmark and for differential testing of the index: both
// strategies must accept exactly the same logs.
func (p *Parser) ParseLinear(l logtypes.Log) (*logtypes.ParsedLog, error) {
	res := p.pp.Process(l.Raw)
	for _, pat := range p.set.Patterns() {
		p.stats.CandidateScans++
		fields, ok := pat.Match(res.Tokens)
		if !ok {
			continue
		}
		p.stats.Parsed++
		return &logtypes.ParsedLog{
			Log:          l,
			PatternID:    pat.ID,
			Fields:       fields,
			Timestamp:    res.Time,
			HasTimestamp: res.HasTime,
		}, nil
	}
	p.stats.Unmatched++
	return nil, ErrNoMatch
}
