package parser

import (
	"errors"
	"fmt"
	"testing"

	"loglens/internal/datatype"
	"loglens/internal/grok"
	"loglens/internal/logtypes"
)

func mustSet(t *testing.T, texts ...string) *grok.Set {
	t.Helper()
	set := grok.NewSet()
	for _, text := range texts {
		p, err := grok.ParsePattern(0, text)
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", text, err)
		}
		set.Add(p)
	}
	return set
}

func raw(line string) logtypes.Log { return logtypes.Log{Source: "test", Raw: line} }

func TestParseBasic(t *testing.T) {
	set := mustSet(t,
		"%{DATETIME} %{IP} login %{NOTSPACE}",
		"%{DATETIME} %{IP} logout %{NOTSPACE}",
	)
	p := New(set, nil)

	pl, err := p.Parse(raw("2016/02/23 09:00:31 127.0.0.1 login user1"))
	if err != nil {
		t.Fatal(err)
	}
	if pl.PatternID != 1 {
		t.Errorf("PatternID = %d, want 1", pl.PatternID)
	}
	if !pl.HasTimestamp || pl.Timestamp.Year() != 2016 {
		t.Errorf("timestamp not extracted: %+v", pl)
	}
	if v, _ := pl.FieldValue("P1F2"); v != "127.0.0.1" {
		t.Errorf("field P1F2 = %q", v)
	}

	pl, err = p.Parse(raw("2016/02/23 09:05:00 10.0.0.9 logout admin"))
	if err != nil {
		t.Fatal(err)
	}
	if pl.PatternID != 2 {
		t.Errorf("PatternID = %d, want 2", pl.PatternID)
	}
}

func TestParseAnomaly(t *testing.T) {
	set := mustSet(t, "%{DATETIME} %{IP} login %{NOTSPACE}")
	p := New(set, nil)
	_, err := p.Parse(raw("totally unexpected log line"))
	if !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v, want ErrNoMatch", err)
	}
	if s := p.Stats(); s.Unmatched != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestGroupCaching(t *testing.T) {
	set := mustSet(t, "%{DATETIME} %{IP} login %{NOTSPACE}")
	p := New(set, nil)
	for i := 0; i < 10; i++ {
		line := fmt.Sprintf("2016/02/23 09:00:%02d 10.0.0.%d login user%d", i, i+1, i)
		if _, err := p.Parse(raw(line)); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.GroupBuilds != 1 {
		t.Errorf("GroupBuilds = %d, want 1 (one distinct signature)", s.GroupBuilds)
	}
	if s.GroupHits != 9 {
		t.Errorf("GroupHits = %d, want 9", s.GroupHits)
	}
	// Unmatched signatures cache an empty group too.
	p.Parse(raw("zzz unknown zzz"))
	p.Parse(raw("zzz unknown zzz"))
	if s := p.Stats(); s.GroupBuilds != 2 || s.Unmatched != 2 {
		t.Errorf("empty group not cached: %+v", s)
	}
}

func TestMostSpecificPatternWins(t *testing.T) {
	set := mustSet(t,
		"job %{NOTSPACE:v}",
		"job %{WORD:v}",
	)
	p := New(set, nil)
	pl, err := p.Parse(raw("job alpha"))
	if err != nil {
		t.Fatal(err)
	}
	// Pattern 2 (WORD) is more specific than pattern 1 (NOTSPACE).
	if pl.PatternID != 2 {
		t.Errorf("PatternID = %d, want the more specific WORD pattern", pl.PatternID)
	}
	// A non-word value can only take the NOTSPACE pattern.
	pl, err = p.Parse(raw("job x-1"))
	if err != nil {
		t.Fatal(err)
	}
	if pl.PatternID != 1 {
		t.Errorf("PatternID = %d, want 1", pl.PatternID)
	}
}

func TestWildcardPatternInGroups(t *testing.T) {
	set := mustSet(t,
		"query %{ANYDATA:sql} rc %{NUMBER:rc}",
	)
	p := New(set, nil)
	pl, err := p.Parse(raw("query SELECT a FROM b WHERE c=2 rc 0"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := pl.FieldValue("sql"); v != "SELECT a FROM b WHERE c=2" {
		t.Errorf("sql = %q", v)
	}
	// Different token counts produce different signatures, but the same
	// wildcard pattern must appear in each group.
	pl, err = p.Parse(raw("query SELECT 1 rc 0"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := pl.FieldValue("sql"); v != "SELECT 1" {
		t.Errorf("sql = %q", v)
	}
}

func TestSetPatternsInvalidatesIndex(t *testing.T) {
	setA := mustSet(t, "alpha %{NUMBER:n}")
	p := New(setA, nil)
	if _, err := p.Parse(raw("alpha 1")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Parse(raw("beta 2")); !errors.Is(err, ErrNoMatch) {
		t.Fatal("beta must not parse under model A")
	}

	setB := mustSet(t, "alpha %{NUMBER:n}", "beta %{NUMBER:n}")
	p.SetPatterns(setB)
	if _, err := p.Parse(raw("beta 2")); err != nil {
		t.Errorf("beta must parse after the model update: %v", err)
	}
}

func TestIsMatched(t *testing.T) {
	W, N, S, D, A := datatype.Word, datatype.Number, datatype.NotSpace, datatype.DateTime, datatype.AnyData
	tests := []struct {
		log, pat []datatype.Type
		want     bool
	}{
		{[]datatype.Type{D, W, N}, []datatype.Type{D, W, N}, true},
		{[]datatype.Type{D, W, N}, []datatype.Type{D, S, N}, true},  // NOTSPACE covers WORD
		{[]datatype.Type{D, S, N}, []datatype.Type{D, W, N}, false}, // WORD does not cover NOTSPACE
		{[]datatype.Type{W}, []datatype.Type{W, W}, false},          // length mismatch
		{[]datatype.Type{W, W, W}, []datatype.Type{W, A, W}, true},  // wildcard absorbs one
		{[]datatype.Type{W, W}, []datatype.Type{W, A, W}, true},     // wildcard absorbs zero
		{[]datatype.Type{W, N, N, W}, []datatype.Type{W, A, W}, true},
		{[]datatype.Type{N, W}, []datatype.Type{A}, true}, // pure wildcard
		{nil, []datatype.Type{A}, true},                   // wildcard matches empty
		{nil, nil, true},
		{[]datatype.Type{W}, nil, false},
		{[]datatype.Type{W, N}, []datatype.Type{A, N, A}, true},
		{[]datatype.Type{N, N}, []datatype.Type{A, W, A}, false}, // W unsatisfied
	}
	for _, tt := range tests {
		if got := IsMatched(tt.log, tt.pat); got != tt.want {
			t.Errorf("IsMatched(%v, %v) = %v, want %v", tt.log, tt.pat, got, tt.want)
		}
	}
}

// TestIndexEquivalentToLinear differentially tests the signature index
// against the naive linear scan on a mixed workload: both must accept the
// same logs with the same pattern assignment.
func TestIndexEquivalentToLinear(t *testing.T) {
	set := mustSet(t,
		"%{DATETIME} %{IP} login %{NOTSPACE}",
		"%{DATETIME} %{IP} logout %{NOTSPACE}",
		"cache evicted %{NUMBER} entries in %{NUMBER} ms",
		"query %{ANYDATA:sql} rc %{NUMBER}",
		"job %{WORD:v}",
		"job %{NOTSPACE:v}",
	)
	indexed := New(set, nil)
	linear := New(set, nil)

	lines := []string{
		"2016/02/23 09:00:31 127.0.0.1 login user1",
		"2016/02/23 09:00:32 127.0.0.1 logout user1",
		"cache evicted 15 entries in 3 ms",
		"query SELECT x FROM y rc 0",
		"query a b c d e f g rc 12",
		"job alpha",
		"job x-9",
		"unparseable line here today",
		"cache evicted x entries in 3 ms",
	}
	for _, line := range lines {
		pa, errA := indexed.Parse(raw(line))
		pb, errB := linear.ParseLinear(raw(line))
		if (errA == nil) != (errB == nil) {
			t.Errorf("%q: indexed err=%v linear err=%v", line, errA, errB)
			continue
		}
		if errA == nil && pa.PatternID != pb.PatternID {
			t.Errorf("%q: indexed pattern %d, linear pattern %d", line, pa.PatternID, pb.PatternID)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	set := mustSet(t, "a %{NUMBER}", "b %{NUMBER}")
	p := New(set, nil)
	p.Parse(raw("a 1"))
	p.Parse(raw("b 2"))
	p.Parse(raw("c 3"))
	s := p.Stats()
	if s.Parsed != 2 || s.Unmatched != 1 {
		t.Errorf("stats = %+v", s)
	}
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Error("ResetStats failed")
	}
}
