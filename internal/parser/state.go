package parser

// SavedState is the serializable form of a parser's cumulative counters.
// The group index and preprocessor caches are warm-start optimizations
// that rebuild themselves; only the counters must survive a restart for
// the conservation invariant to hold across checkpoint/restore.
type SavedState struct {
	Stats         Stats          `json:"stats"`
	PatternCounts map[int]uint64 `json:"pattern_counts,omitempty"`
}

// SaveState snapshots the work counters and per-pattern match counts.
func (p *Parser) SaveState() SavedState {
	return SavedState{Stats: p.stats, PatternCounts: p.PatternCounts()}
}

// RestoreState replaces the counters with a saved snapshot. Caches are
// left untouched — they repopulate on the next Parse.
func (p *Parser) RestoreState(s SavedState) {
	p.stats = s.Stats
	p.perPat = make(map[int]uint64, len(s.PatternCounts))
	for id, n := range s.PatternCounts {
		p.perPat[id] = n
	}
}
