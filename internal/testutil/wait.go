// Package testutil holds small helpers shared by the test suites. Tests
// must not sleep for synchronization: where an asynchronous effect cannot
// be driven deterministically by a fake clock (internal/clock), they wait
// on an observable condition with a failure deadline instead.
package testutil

import (
	"testing"
	"time"
)

// WaitUntil blocks until cond returns true, failing the test if it does
// not within timeout. It polls with exponential backoff starting at 100µs
// (capped at 10ms), so fast conditions resolve in microseconds and slow
// ones don't spin. The timeout is a failure deadline, never a pace: a
// passing test waits exactly as long as the condition takes.
func WaitUntil(t testing.TB, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	backoff := 100 * time.Microsecond
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v: %s", timeout, msg)
		}
		time.Sleep(backoff)
		if backoff < 10*time.Millisecond {
			backoff *= 2
		}
	}
}
