package recovery

import (
	"fmt"
	"strconv"
	"sync"

	"loglens/internal/bus"
	"loglens/internal/obs"
)

// DeadLetterTopic is the bus topic quarantined poison records are routed
// to, with their error context in headers.
const DeadLetterTopic = "deadletter"

// Dead-letter message headers.
const (
	// HeaderDLSource is the original log source.
	HeaderDLSource = "source"
	// HeaderDLSeq is the original per-source sequence number.
	HeaderDLSeq = "seq"
	// HeaderDLError is the last panic/error message the record caused.
	HeaderDLError = "error"
	// HeaderDLStrikes is how many attempts the record poisoned before
	// quarantine.
	HeaderDLStrikes = "strikes"
)

// DefaultStrikes is the default K: a record that panics the operator K
// times across redeliveries is quarantined.
const DefaultStrikes = 3

// Quarantine tracks per-record panic strikes and routes records that
// keep poisoning the operator to the deadletter topic instead of letting
// them cycle (or silently dropping them). It is safe for concurrent use
// — operator panics surface from parallel partition workers.
type Quarantine struct {
	k      int
	bus    bus.Broker
	events *obs.FlightRecorder

	mu      sync.Mutex
	strikes map[string]int
	total   uint64
}

// NewQuarantine builds a quarantine with threshold k (DefaultStrikes
// when <= 0) publishing to b's deadletter topic. The topic is declared
// here so consumers and the dashboard can subscribe before the first
// poison record.
func NewQuarantine(k int, b bus.Broker, events *obs.FlightRecorder) (*Quarantine, error) {
	if k <= 0 {
		k = DefaultStrikes
	}
	if b != nil {
		if err := b.CreateTopic(DeadLetterTopic, 1); err != nil {
			return nil, err
		}
	}
	return &Quarantine{k: k, bus: b, events: events, strikes: make(map[string]int)}, nil
}

// K returns the strike threshold.
func (q *Quarantine) K() int { return q.k }

// Strike records one operator panic for the record identified by key
// (e.g. "source#seq"). On the K-th strike the record is published to the
// deadletter topic with its error context and Strike returns true: the
// caller must stop retrying it. Below K it returns false: the caller may
// redeliver.
func (q *Quarantine) Strike(key, source string, seq uint64, raw string, errCtx string) bool {
	q.mu.Lock()
	q.strikes[key]++
	n := q.strikes[key]
	if n < q.k {
		q.mu.Unlock()
		return false
	}
	delete(q.strikes, key)
	q.total++
	q.mu.Unlock()

	if q.bus != nil {
		q.bus.Publish(DeadLetterTopic, source, []byte(raw), map[string]string{
			HeaderDLSource:  source,
			HeaderDLSeq:     strconv.FormatUint(seq, 10),
			HeaderDLError:   errCtx,
			HeaderDLStrikes: strconv.Itoa(n),
		})
	}
	q.events.Record(obs.EventQuarantine, source,
		fmt.Sprintf("record seq=%d quarantined after %d strikes: %s", seq, n, errCtx), int64(n))
	return true
}

// Quarantined returns how many records have been routed to the
// deadletter topic.
func (q *Quarantine) Quarantined() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// Pending returns a copy of the in-flight strike counts (records that
// have panicked but not yet reached K) — checkpointed so redelivered
// poison records keep their strike history across a crash.
func (q *Quarantine) Pending() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.strikes))
	for k, v := range q.strikes {
		out[k] = v
	}
	return out
}

// Restore replaces the in-flight strike counts and the quarantined
// total from a checkpoint.
func (q *Quarantine) Restore(pending map[string]int, total uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.strikes = make(map[string]int, len(pending))
	for k, v := range pending {
		q.strikes[k] = v
	}
	q.total = total
}
