// Package recovery is the crash-recovery subsystem: periodic atomic
// checkpoints of pipeline state (committed bus offsets, per-partition
// operator state, model bindings, store snapshot generation), supervised
// restarts with exponential backoff and a circuit breaker, and a
// poison-record quarantine routing repeat offenders to a deadletter
// topic.
//
// The Spark substrate LogLens was designed on gets these for free from
// the engine (checkpointing, task re-execution, at-least-once delivery);
// internal/stream and internal/bus replace Spark and Kafka, so this
// package supplies the recovery contract the paper's deployment story
// (§VII: "LogLens in production") presumes.
//
// Checkpoint layout under the checkpoint directory:
//
//	checkpoint-<gen>.json   the serialized Checkpoint (atomic write)
//	store-<gen>/            the store snapshot backing that generation
//	CURRENT                 name of the newest complete checkpoint file
//
// CURRENT is written last, atomically: a crash mid-save leaves it
// pointing at the previous complete generation. Old generations beyond a
// small keep window are garbage-collected after CURRENT moves.
package recovery

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"loglens/internal/fsx"
	"loglens/internal/parser"
	"loglens/internal/seqdetect"
	"loglens/internal/store"
	"loglens/internal/volume"
)

// KeyState is one state-map entry of one partition: the per-source
// operator state under its "__op@<source>" key.
type KeyState struct {
	Key string `json:"key"`
	// ModelID names the model the state was built against; restore
	// re-resolves it from the restored model store.
	ModelID  string               `json:"model_id,omitempty"`
	Parser   *parser.SavedState   `json:"parser,omitempty"`
	Detector *seqdetect.SavedState `json:"detector,omitempty"`
	Volume   *volume.SavedState   `json:"volume,omitempty"`
}

// PartitionState is one partition's serialized state map.
type PartitionState struct {
	Index int        `json:"index"`
	Keys  []KeyState `json:"keys,omitempty"`
}

// EngineState is one stream engine's serialized partitions, labeled by
// engine name (the staged topology runs two engines).
type EngineState struct {
	Name       string           `json:"name"`
	Partitions []PartitionState `json:"partitions,omitempty"`
}

// Checkpoint is everything a restarted pipeline needs to resume as if
// uninterrupted: replay the bus from Offsets, rebuild operator state
// from Engines, and rebind models by ID against the restored store.
type Checkpoint struct {
	Generation uint64    `json:"generation"`
	SavedAt    time.Time `json:"saved_at"`
	// Offsets maps consumer group -> "topic/partition" -> committed
	// offset at the checkpoint barrier.
	Offsets map[string]map[string]int64 `json:"offsets,omitempty"`
	// Counters carries the pipeline's cumulative conservation counters
	// (lines/parsed/unparsed/quarantined/...), keyed by counter name.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// DefaultModelID and SourceModels rebind the active models by ID.
	DefaultModelID string            `json:"default_model_id,omitempty"`
	SourceModels   map[string]string `json:"source_models,omitempty"`
	Engines        []EngineState     `json:"engines,omitempty"`
	// Quarantine carries pending poison-record strike counts.
	Quarantine map[string]int `json:"quarantine,omitempty"`
	// StoreDir names the store snapshot directory of this generation,
	// relative to the checkpoint directory.
	StoreDir string `json:"store_dir,omitempty"`
	// StoreGen is the persistent store's manifest generation at the
	// checkpoint barrier. When set, the snapshot is incremental: the
	// store's immutable segment files back the checkpoint in place, and
	// restore re-points the store at that generation instead of reloading
	// a StoreDir copy.
	StoreGen uint64 `json:"store_gen,omitempty"`
}

// currentFile is the pointer to the newest complete checkpoint.
const currentFile = "CURRENT"

// DefaultKeep is how many complete generations Save retains.
const DefaultKeep = 2

// Manager reads and writes checkpoint generations in one directory.
type Manager struct {
	fs   fsx.FS
	dir  string
	keep int
}

// NewManager manages checkpoints under dir on fsys (fsx.OS when nil),
// keeping DefaultKeep generations.
func NewManager(fsys fsx.FS, dir string) *Manager {
	if fsys == nil {
		fsys = fsx.OS{}
	}
	return &Manager{fs: fsys, dir: dir, keep: DefaultKeep}
}

// SetKeep overrides how many generations Save retains (minimum 1).
func (m *Manager) SetKeep(n int) {
	if n >= 1 {
		m.keep = n
	}
}

// Dir returns the checkpoint directory.
func (m *Manager) Dir() string { return m.dir }

func (m *Manager) path(name string) string {
	return strings.TrimSuffix(m.dir, "/") + "/" + name
}

func checkpointFile(gen uint64) string {
	return "checkpoint-" + strconv.FormatUint(gen, 10) + ".json"
}

// parseGen extracts the generation from a checkpoint file or store dir
// name; ok is false for foreign names.
func parseGen(name string) (uint64, bool) {
	var num string
	switch {
	case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".json"):
		num = strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".json")
	case strings.HasPrefix(name, "store-"):
		num = strings.TrimPrefix(name, "store-")
	default:
		return 0, false
	}
	gen, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Load reads the newest complete checkpoint. ok is false when the
// directory holds no complete checkpoint (fresh start); err reports a
// checkpoint that exists but cannot be read.
func (m *Manager) Load() (cp *Checkpoint, ok bool, err error) {
	cur, rerr := m.fs.ReadFile(m.path(currentFile))
	if rerr != nil {
		return nil, false, nil
	}
	name := strings.TrimSpace(string(cur))
	if _, valid := parseGen(name); !valid {
		return nil, false, fmt.Errorf("recovery: corrupt CURRENT pointer %q", name)
	}
	data, rerr := m.fs.ReadFile(m.path(name))
	if rerr != nil {
		return nil, false, fmt.Errorf("recovery: read %s: %w", name, rerr)
	}
	cp = &Checkpoint{}
	if jerr := json.Unmarshal(data, cp); jerr != nil {
		return nil, false, fmt.Errorf("recovery: parse %s: %w", name, jerr)
	}
	return cp, true, nil
}

// nextGeneration determines the generation Save will write: one past the
// highest generation present on disk (complete or not), so a partially
// written generation from a crashed save is never reused as-is underneath
// a CURRENT pointer that might later claim it.
func (m *Manager) nextGeneration() uint64 {
	var max uint64
	entries, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return 1
	}
	for _, e := range entries {
		if gen, ok := parseGen(e.Name()); ok && gen > max {
			max = gen
		}
	}
	return max + 1
}

// Save writes one complete checkpoint generation: the store snapshot
// first, then the checkpoint JSON, then the CURRENT pointer — each
// atomically, so a crash at any point leaves the previous generation
// intact and discoverable. On success older generations beyond the keep
// window are garbage-collected.
func (m *Manager) Save(cp *Checkpoint, st *store.Store) (uint64, error) {
	if err := m.fs.MkdirAll(m.dir, 0o755); err != nil {
		return 0, fmt.Errorf("recovery: save: %w", err)
	}
	gen := m.nextGeneration()
	cp.Generation = gen
	cp.StoreDir, cp.StoreGen = "", 0
	switch {
	case st == nil:
	case st.Persistent():
		// Incremental: seal the store and pin the committed generation.
		// The checkpoint references the store's immutable segments rather
		// than copying every document.
		sg, err := st.Checkpoint()
		if err != nil {
			return 0, fmt.Errorf("recovery: checkpoint store: %w", err)
		}
		cp.StoreGen = sg
	default:
		cp.StoreDir = "store-" + strconv.FormatUint(gen, 10)
		if err := st.SaveDirFS(m.fs, m.path(cp.StoreDir)); err != nil {
			return 0, fmt.Errorf("recovery: save store snapshot: %w", err)
		}
	}
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("recovery: encode checkpoint: %w", err)
	}
	name := checkpointFile(gen)
	if err := fsx.WriteFileAtomic(m.fs, m.path(name), data, 0o644); err != nil {
		return 0, err
	}
	if err := fsx.WriteFileAtomic(m.fs, m.path(currentFile), []byte(name+"\n"), 0o644); err != nil {
		return 0, err
	}
	m.gc(gen)
	return gen, nil
}

// RestoreStore loads the checkpoint's store snapshot into st (no-op for
// checkpoints without one). Persistent-store checkpoints re-point the
// engine at the pinned manifest generation; in-memory checkpoints reload
// the copied StoreDir snapshot.
func (m *Manager) RestoreStore(cp *Checkpoint, st *store.Store) error {
	if st == nil {
		return nil
	}
	if cp.StoreGen > 0 {
		return st.LoadGeneration(cp.StoreGen)
	}
	if cp.StoreDir == "" {
		return nil
	}
	return st.LoadDirFS(m.fs, m.path(cp.StoreDir))
}

// gc removes generations older than the keep window. Best-effort: GC
// failures never fail a completed save.
func (m *Manager) gc(newest uint64) {
	if newest <= uint64(m.keep) {
		return
	}
	floor := newest - uint64(m.keep) + 1
	entries, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		gen, ok := parseGen(e.Name())
		if !ok || gen >= floor {
			continue
		}
		if e.IsDir() {
			m.fs.RemoveAll(m.path(e.Name()))
		} else {
			m.fs.Remove(m.path(e.Name()))
		}
	}
}

// Generations lists the checkpoint generations present (complete or
// partial), ascending.
func (m *Manager) Generations() []uint64 {
	entries, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return nil
	}
	seen := make(map[uint64]bool)
	for _, e := range entries {
		if gen, ok := parseGen(e.Name()); ok && strings.HasSuffix(e.Name(), ".json") {
			seen[gen] = true
		}
	}
	out := make([]uint64, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
