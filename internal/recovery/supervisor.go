package recovery

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"loglens/internal/clock"
	"loglens/internal/obs"
)

// SupervisorConfig tunes restart behavior. The zero value is usable.
type SupervisorConfig struct {
	// Clock drives backoff sleeps and the restart window (default wall
	// clock; tests inject clock.Fake for deterministic timelines).
	Clock clock.Clock
	// BackoffBase is the first restart delay (default 10ms); each
	// subsequent restart doubles it up to BackoffMax (default 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the deterministic jitter added to each backoff
	// (up to half the delay), decorrelating sibling restarts.
	Seed int64
	// Window and MaxRestarts define the circuit breaker: more than
	// MaxRestarts (default 5) restarts within Window (default 1m) trips
	// the breaker and the supervisor stops restarting.
	Window      time.Duration
	MaxRestarts int
	// RestartOnError also restarts tasks that return a non-context
	// error (panics always restart; clean returns and context
	// cancellation never do).
	RestartOnError bool
	// Events records worker-crash and restart events; nil disables.
	Events *obs.FlightRecorder
}

func (c *SupervisorConfig) setDefaults() {
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 5
	}
}

// splitmix64 is the SplitMix64 finalizer (same mixer the chaos harness
// uses) — deterministic jitter without a shared rand stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Supervisor restarts a dying task with exponential backoff and seeded
// jitter, tripping a circuit breaker after too many restarts in a
// sliding window. One Supervisor guards one task (a partition engine
// loop, the log-manager pump); its Probe plugs into the obs health
// registry so a restart storm degrades /readyz before the breaker takes
// the component down.
type Supervisor struct {
	name string
	cfg  SupervisorConfig

	mu       sync.Mutex
	recent   []time.Time // restart times within the window
	restarts uint64      // lifetime restarts
	lastErr  string

	tripped atomic.Bool
	running atomic.Bool
}

// NewSupervisor builds a supervisor for the named component.
func NewSupervisor(name string, cfg SupervisorConfig) *Supervisor {
	cfg.setDefaults()
	return &Supervisor{name: name, cfg: cfg}
}

// Run executes task, restarting it after panics (and after errors when
// RestartOnError is set) until the context is cancelled, the task
// returns cleanly, or the circuit breaker trips. Run returns the task's
// final error (nil after a clean return; the last failure once the
// breaker is open).
func (s *Supervisor) Run(ctx context.Context, task func(ctx context.Context) error) error {
	s.running.Store(true)
	defer s.running.Store(false)
	for attempt := uint64(0); ; attempt++ {
		err, panicked := s.invoke(ctx, task)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !panicked && (err == nil || !s.cfg.RestartOnError) {
			return err
		}

		// The task died. Record the restart and consult the breaker.
		now := s.cfg.Clock.Now()
		s.mu.Lock()
		s.restarts++
		s.lastErr = fmt.Sprint(err)
		keep := s.recent[:0]
		for _, t := range s.recent {
			if now.Sub(t) < s.cfg.Window {
				keep = append(keep, t)
			}
		}
		s.recent = append(keep, now)
		windowCount := len(s.recent)
		s.mu.Unlock()

		if windowCount > s.cfg.MaxRestarts {
			s.tripped.Store(true)
			s.cfg.Events.Record(obs.EventWorkerCrash, s.name,
				fmt.Sprintf("circuit breaker open after %d restarts in %v", windowCount, s.cfg.Window), int64(windowCount))
			return fmt.Errorf("recovery: %s: circuit breaker open after %d restarts in %v (last: %v)",
				s.name, windowCount, s.cfg.Window, err)
		}
		delay := s.backoff(attempt)
		s.cfg.Events.Record(obs.EventWorkerCrash, s.name,
			fmt.Sprintf("restarting after %v (attempt %d): %v", delay, attempt+1, err), int64(attempt+1))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.cfg.Clock.After(delay):
		}
	}
}

// invoke runs one attempt, containing panics.
func (s *Supervisor) invoke(ctx context.Context, task func(ctx context.Context) error) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovery: %s panicked: %v", s.name, r)
			panicked = true
		}
	}()
	return task(ctx), false
}

// backoff computes the delay before restart attempt (0-based):
// exponential from BackoffBase capped at BackoffMax, plus seeded jitter
// of up to half the delay.
func (s *Supervisor) backoff(attempt uint64) time.Duration {
	d := s.cfg.BackoffBase
	for i := uint64(0); i < attempt && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	if d > 1 {
		jitter := time.Duration(splitmix64(uint64(s.cfg.Seed)^attempt) % uint64(d/2+1))
		d += jitter
	}
	return d
}

// Tripped reports whether the circuit breaker is open.
func (s *Supervisor) Tripped() bool { return s.tripped.Load() }

// Restarts returns the lifetime restart count.
func (s *Supervisor) Restarts() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// Probe reports the supervisor's health: Healthy with no recent
// restarts, Degraded while restarts are occurring inside the window,
// Unhealthy once the breaker is open.
func (s *Supervisor) Probe() obs.ProbeResult {
	if s.tripped.Load() {
		s.mu.Lock()
		last := s.lastErr
		s.mu.Unlock()
		return obs.ProbeResult{Status: obs.Unhealthy,
			Detail: fmt.Sprintf("%s circuit breaker open (last: %s)", s.name, last)}
	}
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	n := 0
	for _, t := range s.recent {
		if now.Sub(t) < s.cfg.Window {
			n++
		}
	}
	total := s.restarts
	s.mu.Unlock()
	if n > 0 {
		return obs.ProbeResult{Status: obs.Degraded,
			Detail: fmt.Sprintf("%s restarted %d times in the last %v", s.name, n, s.cfg.Window)}
	}
	return obs.ProbeResult{Status: obs.Healthy,
		Detail: fmt.Sprintf("%s stable (%d lifetime restarts)", s.name, total)}
}
