package recovery

import (
	"testing"

	"loglens/internal/bus"
	"loglens/internal/clock"
	"loglens/internal/obs"
)

func TestQuarantineStrikesThenDeadletters(t *testing.T) {
	b := bus.New()
	rec := obs.NewFlightRecorder(clock.NewFake(), 16)
	q, err := NewQuarantine(3, b, rec)
	if err != nil {
		t.Fatal(err)
	}

	for i := 1; i <= 2; i++ {
		if q.Strike("web#12", "web", 12, "the raw line", "panic: bad parse") {
			t.Fatalf("strike %d quarantined before reaching K", i)
		}
	}
	if !q.Strike("web#12", "web", 12, "the raw line", "panic: bad parse") {
		t.Fatal("3rd strike must quarantine")
	}
	if q.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", q.Quarantined())
	}
	// Strikes cleared: a (hypothetical) fresh record under the same key
	// starts over.
	if len(q.Pending()) != 0 {
		t.Errorf("pending strikes after quarantine: %v", q.Pending())
	}

	msgs, err := b.ReadFrom(DeadLetterTopic, 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("deadletter topic has %d messages, want 1", len(msgs))
	}
	m := msgs[0]
	if string(m.Value) != "the raw line" {
		t.Errorf("deadletter payload = %q", m.Value)
	}
	if m.Headers[HeaderDLSource] != "web" || m.Headers[HeaderDLSeq] != "12" ||
		m.Headers[HeaderDLStrikes] != "3" || m.Headers[HeaderDLError] != "panic: bad parse" {
		t.Errorf("deadletter headers = %v", m.Headers)
	}
	if evs := rec.Events(obs.EventQuery{Type: obs.EventQuarantine}); len(evs) != 1 {
		t.Errorf("quarantine events = %d, want 1", len(evs))
	}
}

func TestQuarantineIndependentKeys(t *testing.T) {
	q, err := NewQuarantine(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	q.Strike("a#1", "a", 1, "x", "e")
	q.Strike("b#1", "b", 1, "y", "e")
	if q.Quarantined() != 0 {
		t.Fatal("single strikes on distinct keys must not quarantine")
	}
	if !q.Strike("a#1", "a", 1, "x", "e") {
		t.Error("2nd strike on a#1 must quarantine with K=2")
	}
	if got := q.Pending(); len(got) != 1 || got["b#1"] != 1 {
		t.Errorf("pending = %v, want b#1:1", got)
	}
}

func TestQuarantineDefaultK(t *testing.T) {
	q, err := NewQuarantine(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.K() != DefaultStrikes {
		t.Errorf("K = %d, want DefaultStrikes", q.K())
	}
}

func TestQuarantinePendingRestoreRoundTrip(t *testing.T) {
	q1, _ := NewQuarantine(3, nil, nil)
	q1.Strike("web#5", "web", 5, "l", "e")
	q1.Strike("web#5", "web", 5, "l", "e")
	q1.Strike("db#9", "db", 9, "l", "e")

	q2, _ := NewQuarantine(3, nil, nil)
	q2.Restore(q1.Pending(), q1.Quarantined())
	// web#5 carried 2 strikes across the "restart": one more quarantines.
	if !q2.Strike("web#5", "web", 5, "l", "e") {
		t.Error("restored strikes lost — poison record would cycle forever across restarts")
	}
	if q2.Strike("db#9", "db", 9, "l", "e") {
		t.Error("db#9 quarantined at 2 strikes with K=3")
	}
}
