package recovery

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/obs"
)

// pump advances the fake clock whenever the supervisor blocks in a
// backoff sleep, until stop is closed.
func pump(fc *clock.Fake, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if fc.Waiters() > 0 {
			fc.Advance(5 * time.Second)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSupervisorRestartsUntilSuccess(t *testing.T) {
	fc := clock.NewFake()
	s := NewSupervisor("worker", SupervisorConfig{Clock: fc, Seed: 1})
	stop := make(chan struct{})
	defer close(stop)
	go pump(fc, stop)

	var runs atomic.Int64
	err := s.Run(context.Background(), func(ctx context.Context) error {
		if runs.Add(1) < 3 {
			panic("boom")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run = %v, want nil after recovery", err)
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("task ran %d times, want 3", got)
	}
	if s.Restarts() != 2 {
		t.Errorf("Restarts = %d, want 2", s.Restarts())
	}
	if s.Tripped() {
		t.Error("breaker tripped on a recovering task")
	}
}

func TestSupervisorBreakerTripsAfterRestartStorm(t *testing.T) {
	fc := clock.NewFake()
	rec := obs.NewFlightRecorder(fc, 64)
	s := NewSupervisor("worker", SupervisorConfig{
		Clock: fc, MaxRestarts: 2, Window: time.Hour, Events: rec,
	})
	stop := make(chan struct{})
	defer close(stop)
	go pump(fc, stop)

	var runs atomic.Int64
	err := s.Run(context.Background(), func(ctx context.Context) error {
		runs.Add(1)
		panic("always")
	})
	if err == nil {
		t.Fatal("Run must return the breaker error")
	}
	if !s.Tripped() {
		t.Error("breaker not tripped")
	}
	// MaxRestarts=2: restarts 1 and 2 are tolerated, the 3rd trips.
	if got := runs.Load(); got != 3 {
		t.Errorf("task ran %d times, want 3", got)
	}
	if p := s.Probe(); p.Status != obs.Unhealthy {
		t.Errorf("probe after trip = %+v, want Unhealthy", p)
	}
	if evs := rec.Events(obs.EventQuery{Type: obs.EventWorkerCrash}); len(evs) == 0 {
		t.Error("no worker-crash events recorded")
	}
}

func TestSupervisorErrorReturnWithoutRestartOnError(t *testing.T) {
	s := NewSupervisor("worker", SupervisorConfig{Clock: clock.NewFake()})
	want := errors.New("fatal config error")
	var runs atomic.Int64
	err := s.Run(context.Background(), func(ctx context.Context) error {
		runs.Add(1)
		return want
	})
	if !errors.Is(err, want) {
		t.Errorf("Run = %v, want the task error", err)
	}
	if runs.Load() != 1 {
		t.Errorf("task restarted on error without RestartOnError (%d runs)", runs.Load())
	}
}

func TestSupervisorRestartOnError(t *testing.T) {
	fc := clock.NewFake()
	s := NewSupervisor("worker", SupervisorConfig{Clock: fc, RestartOnError: true})
	stop := make(chan struct{})
	defer close(stop)
	go pump(fc, stop)

	var runs atomic.Int64
	err := s.Run(context.Background(), func(ctx context.Context) error {
		if runs.Add(1) < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || runs.Load() != 2 {
		t.Errorf("Run = %v after %d runs; want nil after 2", err, runs.Load())
	}
}

func TestSupervisorContextCancelStopsCleanly(t *testing.T) {
	fc := clock.NewFake()
	s := NewSupervisor("worker", SupervisorConfig{Clock: fc})
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		done <- s.Run(ctx, func(ctx context.Context) error {
			<-ctx.Done()
			return ctx.Err()
		})
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if s.Restarts() != 0 {
		t.Errorf("cancellation counted as a restart (%d)", s.Restarts())
	}
}

func TestSupervisorBackoffExponentialCappedDeterministic(t *testing.T) {
	s := NewSupervisor("worker", SupervisorConfig{
		Clock: clock.NewFake(), BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond, Seed: 42,
	})
	prevBase := time.Duration(0)
	for attempt := uint64(0); attempt < 6; attempt++ {
		d := s.backoff(attempt)
		base := 10 * time.Millisecond << attempt
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if d < base || d > base+base/2 {
			t.Errorf("backoff(%d) = %v, want in [%v, %v]", attempt, d, base, base+base/2)
		}
		if d2 := s.backoff(attempt); d2 != d {
			t.Errorf("backoff(%d) not deterministic: %v vs %v", attempt, d, d2)
		}
		if base > prevBase {
			prevBase = base
		}
	}
}

func TestSupervisorProbeDegradedAfterRecentRestart(t *testing.T) {
	fc := clock.NewFake()
	s := NewSupervisor("worker", SupervisorConfig{Clock: fc, Window: time.Minute})
	stop := make(chan struct{})
	defer close(stop)
	go pump(fc, stop)

	var runs atomic.Int64
	if err := s.Run(context.Background(), func(ctx context.Context) error {
		if runs.Add(1) < 2 {
			panic("once")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// pump advances 5s per sleep, well inside the 1m window.
	if p := s.Probe(); p.Status != obs.Degraded {
		t.Errorf("probe right after a restart = %+v, want Degraded", p)
	}
	fc.Advance(2 * time.Minute)
	if p := s.Probe(); p.Status != obs.Healthy {
		t.Errorf("probe after window passed = %+v, want Healthy", p)
	}
}
