package recovery

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"loglens/internal/chaos"
	"loglens/internal/fsx"
	"loglens/internal/store"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Offsets: map[string]map[string]int64{
			"pipeline": {"logs/0": 42, "logs/1": 17},
		},
		Counters:       map[string]uint64{"lines": 59, "parsed": 50, "unparsed": 9},
		DefaultModelID: "model-7",
		SourceModels:   map[string]string{"web": "model-8"},
		Engines: []EngineState{{
			Name: "main",
			Partitions: []PartitionState{{
				Index: 0,
				Keys:  []KeyState{{Key: "__op@web", ModelID: "model-8"}},
			}},
		}},
		Quarantine: map[string]int{"web#12": 2},
	}
}

func sampleStore() *store.Store {
	s := store.New()
	s.Index("anomalies").Put("a1", store.Document{"type": "missing-end-state"})
	s.Index("models").Put("model-7", store.Document{"body": "{}"})
	return s
}

func TestManagerSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(nil, dir)

	gen, err := m.Save(sampleCheckpoint(), sampleStore())
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Errorf("first generation = %d, want 1", gen)
	}

	cp, ok, err := m.Load()
	if err != nil || !ok {
		t.Fatalf("Load = %v, %v", ok, err)
	}
	if cp.Generation != 1 || cp.Offsets["pipeline"]["logs/0"] != 42 {
		t.Errorf("round trip lost data: %+v", cp)
	}
	if cp.Counters["lines"] != 59 || cp.DefaultModelID != "model-7" {
		t.Errorf("round trip lost counters/model: %+v", cp)
	}
	if cp.Quarantine["web#12"] != 2 {
		t.Errorf("round trip lost quarantine strikes: %+v", cp.Quarantine)
	}

	st := store.New()
	if err := m.RestoreStore(cp, st); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Index("anomalies").Get("a1"); !ok {
		t.Error("store snapshot not restored")
	}
}

func TestManagerLoadEmptyDirIsFreshStart(t *testing.T) {
	m := NewManager(nil, t.TempDir())
	cp, ok, err := m.Load()
	if cp != nil || ok || err != nil {
		t.Fatalf("Load on empty dir = %v, %v, %v; want nil, false, nil", cp, ok, err)
	}
	// A directory that does not exist at all is also a fresh start.
	m2 := NewManager(nil, filepath.Join(t.TempDir(), "missing"))
	if _, ok, err := m2.Load(); ok || err != nil {
		t.Fatalf("Load on missing dir = %v, %v; want false, nil", ok, err)
	}
}

func TestManagerCorruptCurrentPointerErrors(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(nil, dir)
	if _, err := m.Save(sampleCheckpoint(), nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, currentFile), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Load(); err == nil {
		t.Fatal("corrupt CURRENT pointer must surface an error, not a silent fresh start")
	}
}

func TestManagerCorruptCheckpointErrors(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(nil, dir)
	if _, err := m.Save(sampleCheckpoint(), nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointFile(1)), []byte(`{"generation": tru`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Load(); err == nil {
		t.Fatal("corrupt checkpoint must surface an error")
	}
}

func TestManagerGCKeepsWindow(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(nil, dir)
	for i := 0; i < 4; i++ {
		if _, err := m.Save(sampleCheckpoint(), sampleStore()); err != nil {
			t.Fatal(err)
		}
	}
	gens := m.Generations()
	if len(gens) != 2 || gens[0] != 3 || gens[1] != 4 {
		t.Errorf("generations after GC = %v, want [3 4]", gens)
	}
	// The old store snapshot directories went with their checkpoints.
	if _, err := os.Stat(filepath.Join(dir, "store-1")); !os.IsNotExist(err) {
		t.Error("store-1 survived GC")
	}
	if _, err := os.Stat(filepath.Join(dir, "store-4")); err != nil {
		t.Error("newest store snapshot missing")
	}
}

// TestManagerCrashMidSaveKeepsPrevious: a save that dies partway (every
// write faulted) leaves CURRENT pointing at the previous complete
// generation, and the next successful save never reuses the partial
// generation number.
func TestManagerCrashMidSaveKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	good := NewManager(nil, dir)
	if _, err := good.Save(sampleCheckpoint(), sampleStore()); err != nil {
		t.Fatal(err)
	}

	ffs := chaos.NewFaultFS(fsx.OS{}, chaos.FSConfig{Seed: 3, WriteError: 1}, nil)
	bad := NewManager(ffs, dir)
	if _, err := bad.Save(sampleCheckpoint(), sampleStore()); !errors.Is(err, chaos.ErrInjectedWrite) {
		t.Fatalf("faulted save err = %v, want ErrInjectedWrite", err)
	}

	cp, ok, err := good.Load()
	if err != nil || !ok {
		t.Fatalf("Load after crashed save = %v, %v", ok, err)
	}
	if cp.Generation != 1 {
		t.Errorf("CURRENT moved to generation %d despite crashed save", cp.Generation)
	}
	st := store.New()
	if err := good.RestoreStore(cp, st); err != nil {
		t.Fatalf("previous store snapshot unloadable: %v", err)
	}

	gen, err := good.Save(sampleCheckpoint(), sampleStore())
	if err != nil {
		t.Fatal(err)
	}
	if gen < 2 {
		t.Errorf("recovered save reused generation %d", gen)
	}
	if cp2, ok, err := good.Load(); err != nil || !ok || cp2.Generation != gen {
		t.Errorf("Load after recovery = gen %d, %v, %v; want %d", cp2.Generation, ok, err, gen)
	}
}

// TestManagerENOSPCMidSave: the disk filling up during the store snapshot
// fails the save while the previous generation stays restorable.
func TestManagerENOSPCMidSave(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(nil, dir)
	if _, err := m.Save(sampleCheckpoint(), sampleStore()); err != nil {
		t.Fatal(err)
	}
	ffs := chaos.NewFaultFS(fsx.OS{}, chaos.FSConfig{Seed: 7, ENOSPCAfter: 64}, nil)
	if _, err := NewManager(ffs, dir).Save(sampleCheckpoint(), sampleStore()); !errors.Is(err, chaos.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	cp, ok, err := m.Load()
	if err != nil || !ok || cp.Generation != 1 {
		t.Fatalf("previous generation lost after ENOSPC: %v %v %+v", ok, err, cp)
	}
}
