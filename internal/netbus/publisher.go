package netbus

import (
	"context"
	"strconv"
	"sync"
	"time"

	"loglens/internal/agent"
	"loglens/internal/wire"
)

// publishRetryDelay paces the drainer's retries while the broker is
// unreachable.
const publishRetryDelay = 50 * time.Millisecond

// Publisher is the agent-side shipping path: lines land in the spool
// first (disk-backed when configured), and a single drainer goroutine
// moves them to the broker in order, surviving outages by simply
// retrying the head. Each line carries its per-source sequence as the
// broker's idempotence identity, so a re-send after a lost ack is
// acknowledged without being appended — at-least-once transport,
// exactly-once append.
type Publisher struct {
	c     *Client
	topic string
	spool *Spool

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	mu    sync.Mutex
	acked uint64
}

// NewPublisher wires a publisher to a client and starts its drainer.
func NewPublisher(c *Client, topic string, spool *Spool) *Publisher {
	p := &Publisher{
		c:     c,
		topic: topic,
		spool: spool,
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	p.wg.Add(1)
	go p.drain()
	if spool.Len() > 0 {
		p.nudge() // backlog replayed from disk: start shipping now
	}
	return p
}

// Send queues one log line. It returns once the line is spooled (and on
// disk, when the spool is file-backed) — broker delivery is the
// drainer's business.
func (p *Publisher) Send(source string, seq uint64, raw string) error {
	if err := p.spool.Append(wire.Frame{Source: source, Seq: seq, Raw: raw}); err != nil {
		return err
	}
	p.nudge()
	return nil
}

// SendHeartbeat queues a heartbeat-tagged message on the data channel
// (§V-B: heartbeats travel where the logs travel).
func (p *Publisher) SendHeartbeat(source string, t time.Time) error {
	if err := p.spool.Append(wire.Frame{Source: source, HB: true, Time: t}); err != nil {
		return err
	}
	p.nudge()
	return nil
}

// Acked returns the number of frames the broker has acknowledged.
func (p *Publisher) Acked() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acked
}

// Drain blocks until the spool is empty (every queued frame acked) or
// ctx is done.
func (p *Publisher) Drain(ctx context.Context) error {
	for p.spool.Len() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-p.c.clk.After(10 * time.Millisecond):
		}
	}
	return nil
}

// Close stops the drainer. Spooled frames stay put (and on disk), ready
// for the next session's replay.
func (p *Publisher) Close() {
	select {
	case <-p.done:
	default:
		close(p.done)
	}
	p.wg.Wait()
}

func (p *Publisher) nudge() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// drain ships the spool head until closed: ack pops it, any failure
// retries the same head after a pause. Order is preserved per spool by
// construction; the broker's sequence dedup absorbs re-sends.
func (p *Publisher) drain() {
	defer p.wg.Done()
	for {
		f, ok := p.spool.Head()
		if !ok {
			select {
			case <-p.done:
				return
			case <-p.kick:
				continue
			}
		}
		if err := p.ship(f); err != nil {
			select {
			case <-p.done:
				return
			case <-p.c.clk.After(publishRetryDelay):
			}
			continue
		}
		p.spool.AckHead()
		p.mu.Lock()
		p.acked++
		p.mu.Unlock()
	}
}

// ship publishes one frame with the agent header convention the log
// manager routes by.
func (p *Publisher) ship(f wire.Frame) error {
	if f.HB {
		return p.c.publishSeq(p.topic, f.Source, nil, map[string]string{
			agent.HeaderSource:    f.Source,
			agent.HeaderHeartbeat: f.Time.Format(time.RFC3339Nano),
		}, "", 0) // heartbeats are idempotent by content; no seq identity
	}
	return p.c.publishSeq(p.topic, f.Source, []byte(f.Raw), map[string]string{
		agent.HeaderSource: f.Source,
		agent.HeaderSeq:    strconv.FormatUint(f.Seq, 10),
	}, f.Source, f.Seq)
}
