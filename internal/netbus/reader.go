package netbus

import (
	"context"
	"sync"
	"time"

	"loglens/internal/bus"
)

// pollRetryDelay paces Poll's retries while the broker link is down.
const pollRetryDelay = 50 * time.Millisecond

// Reader is the client side of a consumer group, implementing
// bus.Reader over the RPC protocol. The broker holds the authoritative
// group offsets; the Reader adds a per-partition delivery frontier so
// the at-least-once redelivery that follows a reconnect (the broker
// rewinds to committed offsets) never hands the pipeline a message it
// already delivered on the old connection.
type Reader struct {
	c      *Client
	group  string
	topics []string

	mu     sync.Mutex
	manual bool
	// frontier maps "topic/partition" to the next offset this Reader has
	// yet to deliver; redelivered messages below it are dropped.
	frontier map[string]int64
}

// filter drops messages the frontier has already delivered and advances
// it past the rest.
func (r *Reader) filter(msgs []WireMessage) []bus.Message {
	if len(msgs) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]bus.Message, 0, len(msgs))
	for _, w := range msgs {
		key := bus.PartitionKey(w.Topic, w.Partition)
		if next, ok := r.frontier[key]; ok && w.Offset < next {
			continue // redelivered after a resume; already handed out
		}
		r.frontier[key] = w.Offset + 1
		out = append(out, fromWire(w))
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// resetFrontier realigns the dedup frontier after an explicit seek — the
// rewind is intentional, so redelivery below the old frontier must flow.
func (r *Reader) resetFrontier(topic string, partition int, offset int64) {
	r.mu.Lock()
	r.frontier[bus.PartitionKey(topic, partition)] = offset
	r.mu.Unlock()
}

func (r *Reader) pollReq(max int, waitMs int64) Request {
	r.mu.Lock()
	manual := r.manual
	r.mu.Unlock()
	return Request{
		Group:  r.group,
		Topics: r.topics,
		Max:    max,
		Manual: manual,
		WaitMs: waitMs,
	}
}

// Poll blocks until messages arrive or ctx is done. Broker-side it long
// polls in PollWait windows; transport errors (link down, mid-reconnect)
// are retried quietly — resilience is the Reader's job, not every
// caller's.
func (r *Reader) Poll(ctx context.Context, max int) ([]bus.Message, error) {
	waitMs := int64(r.c.opt.PollWait / time.Millisecond)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := r.c.call(OpPoll, r.pollReq(max, waitMs))
		if err != nil {
			if err == ErrClosed {
				return nil, err
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-r.c.clk.After(pollRetryDelay):
			}
			continue
		}
		if msgs := r.filter(resp.Msgs); msgs != nil {
			return msgs, nil
		}
	}
}

// TryPoll returns immediately with whatever is ready — nothing when the
// broker has nothing or the link is down.
func (r *Reader) TryPoll(max int) []bus.Message {
	resp, err := r.c.call(OpPoll, r.pollReq(max, 0))
	if err != nil {
		return nil
	}
	return r.filter(resp.Msgs)
}

// Commit advances the group's committed offset broker-side. A commit
// lost to a dead link is not retried here: commits are cumulative, so
// the tracker's next flush covers it (same self-healing contract as the
// in-process bus).
func (r *Reader) Commit(topic string, partition int, offset int64) error {
	_, err := r.c.call(OpCommit, Request{
		Group: r.group, Topic: topic, Partition: partition, Offset: offset,
	})
	return err
}

// Seek moves this group's read and committed position.
func (r *Reader) Seek(topic string, partition int, offset int64) error {
	_, err := r.c.call(OpSeek, Request{
		Group: r.group, Topics: r.topics,
		Topic: topic, Partition: partition, Offset: offset,
	})
	if err != nil {
		return err
	}
	r.resetFrontier(topic, partition, offset)
	return nil
}

// DisableAutoCommit switches the broker-side consumer to manual commits
// (the commit-gate mode the pipeline's trackers drive).
func (r *Reader) DisableAutoCommit() {
	r.mu.Lock()
	r.manual = true
	r.mu.Unlock()
	// Propagate eagerly (OpLag is side-effect-free but carries Manual, so
	// the broker-side consumer flips before the next poll can
	// auto-commit).
	r.c.call(OpLag, Request{Group: r.group, Topics: r.topics, Manual: true})
}

// Lag reports messages between the committed frontier and the end of the
// subscribed partitions; 0 when the link is down (lag is advisory).
func (r *Reader) Lag() int64 {
	resp, err := r.c.call(OpLag, Request{Group: r.group, Topics: r.topics, Manual: r.isManual()})
	if err != nil {
		return 0
	}
	return resp.Offset
}

// ReadLag reports messages between the read frontier and the end of the
// subscribed partitions; 0 when the link is down.
func (r *Reader) ReadLag() int64 {
	resp, err := r.c.call(OpReadLag, Request{Group: r.group, Topics: r.topics, Manual: r.isManual()})
	if err != nil {
		return 0
	}
	return resp.Offset
}

func (r *Reader) isManual() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.manual
}

var _ bus.Reader = (*Reader)(nil)
