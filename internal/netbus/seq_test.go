package netbus

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"loglens/internal/fsx"
)

// TestSeqFileNeverReuses pins the property the broker dedup depends on:
// across any sequence of reopens — clean or mid-block — no sequence
// number is handed out twice.
func TestSeqFileNeverReuses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pub.seq")
	seen := make(map[uint64]bool)
	var last uint64
	take := func(s *SeqFile, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			v, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if seen[v] {
				t.Fatalf("seq %d handed out twice", v)
			}
			if v <= last {
				t.Fatalf("seq went backwards: %d after %d", v, last)
			}
			seen[v] = true
			last = v
		}
	}

	s1, err := OpenSeqFile(fsx.OS{}, path, 8)
	if err != nil {
		t.Fatal(err)
	}
	take(s1, 3) // mid-block "crash": 4..8 reserved but unused

	s2, err := OpenSeqFile(fsx.OS{}, path, 8)
	if err != nil {
		t.Fatal(err)
	}
	take(s2, 20) // crosses several block boundaries

	s3, err := OpenSeqFile(fsx.OS{}, path, 8)
	if err != nil {
		t.Fatal(err)
	}
	take(s3, 1)
}

// TestSeqFileFreshStartsAtOne pins the first-incarnation contract.
func TestSeqFileFreshStartsAtOne(t *testing.T) {
	s, err := OpenSeqFile(fsx.OS{}, filepath.Join(t.TempDir(), "pub.seq"), 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Next()
	if err != nil || v != 1 {
		t.Fatalf("first seq = %d, err %v; want 1", v, err)
	}
}

// TestSeqFileCorruptRejected: garbage in the file is an error, not a
// silent restart from 1 (which would resurrect the reuse bug).
func TestSeqFileCorruptRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pub.seq")
	if err := (fsx.OS{}).WriteFile(path, []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSeqFile(fsx.OS{}, path, 0); err == nil {
		t.Fatal("corrupt seq file accepted")
	}
	if err := (fsx.OS{}).WriteFile(path, []byte("0"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSeqFile(fsx.OS{}, path, 0); err == nil {
		t.Fatal("zero seq file accepted")
	}
}

// TestPublisherRestartWithSeqFileShipsFreshLines is the end-to-end
// regression for the silent-drop trap: a publisher restarting with the
// same source must not have its NEW lines deduped as replays of the
// previous incarnation.
func TestPublisherRestartWithSeqFileShipsFreshLines(t *testing.T) {
	srv, client := startBroker(t, Options{})
	if err := client.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	seqPath := filepath.Join(dir, "pub.seq")

	shipRun := func(lines []string) {
		t.Helper()
		sf, err := OpenSeqFile(fsx.OS{}, seqPath, 4)
		if err != nil {
			t.Fatal(err)
		}
		sp := memSpool(t, 1<<20)
		pub := NewPublisher(client, "logs", sp)
		defer pub.Close()
		for _, l := range lines {
			seq, err := sf.Next()
			if err != nil {
				t.Fatal(err)
			}
			if err := pub.Send("agent-1", seq, l); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := pub.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}

	shipRun([]string{"run1-a", "run1-b", "run1-c"})
	shipRun([]string{"run2-a", "run2-b"}) // fresh incarnation, same source

	end, err := srv.Bus().EndOffset("logs", 0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 5 {
		t.Fatalf("broker log has %d lines, want 5 (second run deduped as replay?)", end)
	}
}
