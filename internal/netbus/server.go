package netbus

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"loglens/internal/bus"
	"loglens/internal/metrics"
)

// maxServerWait bounds how long one OpPoll may block broker-side, so a
// dead client cannot pin a handler goroutine forever even if its WaitMs
// is enormous.
const maxServerWait = 5 * time.Second

// Server is the broker: it owns an in-process bus (the authoritative
// log) and serves the RPC protocol over TCP. Stop tears down the
// listener and every connection while keeping the bus and the publisher
// dedup state — modeling a broker crash with a durable log, which is
// what the chaos BrokerKill primitive exercises. Listen again to
// "restart" it on the same state.
type Server struct {
	bus *bus.Bus

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	serving bool

	// consumers caches one server-side consumer per group; group offset
	// state lives in the bus, so the cache survives Stop/Listen cycles.
	consumersMu sync.Mutex
	consumers   map[string]*bus.Consumer

	// dedup is the idempotent-producer table: highest sequence appended
	// per (topic, source). A re-sent publish at or below it is
	// acknowledged without appending, so a spooling agent that lost an
	// ack cannot duplicate lines.
	dedupMu sync.Mutex
	dedup   map[dedupKey]uint64

	served *metrics.Counter // netbus_requests_served_total (nil = off)
}

type dedupKey struct {
	topic  string
	source string
}

// NewServer builds a broker around b.
func NewServer(b *bus.Bus) *Server {
	return &Server{
		bus:       b,
		conns:     make(map[net.Conn]struct{}),
		consumers: make(map[string]*bus.Consumer),
		dedup:     make(map[dedupKey]uint64),
	}
}

// Bus exposes the broker's authoritative bus (tests and the broker
// process's own dashboard).
func (s *Server) Bus() *bus.Bus { return s.bus }

// SetMetrics counts served requests into reg.
func (s *Server) SetMetrics(reg *metrics.Registry) {
	s.served = reg.Counter("netbus_requests_served_total")
}

// Listen starts accepting broker connections on addr and returns the
// bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("netbus: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.serving {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("netbus: server already listening")
	}
	s.serving = true
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" when stopped).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stop severs the network face — listener and every live connection —
// and waits for handlers to exit. Bus contents, group offsets, and the
// dedup table stay put, so a later Listen resumes the broker exactly
// where it died (the durable-log crash model).
func (s *Server) Stop() {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.serving = false
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Close is a permanent Stop (alias; the state-keeping distinction only
// matters to the chaos harness, which restarts via Listen).
func (s *Server) Close() { s.Stop() }

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if !s.serving {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// serveConn reads frames off one connection and dispatches each request
// on its own goroutine (polls block; publishes must not queue behind
// them). Responses are serialized by a per-connection write lock.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var wmu sync.Mutex
	var hwg sync.WaitGroup
	defer hwg.Wait()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		op, id, payload, err := readFrame(br)
		if err != nil {
			return // disconnect, or a protocol violation: drop the conn
		}
		var req Request
		if err := unmarshalStrictEnough(payload, &req); err != nil {
			s.respond(conn, &wmu, op, id, errResponse(err))
			continue
		}
		hwg.Add(1)
		go func(op byte, id uint64, req Request) {
			defer hwg.Done()
			resp := s.handle(op, req)
			s.respond(conn, &wmu, op, id, resp)
		}(op, id, req)
	}
}

// unmarshalStrictEnough decodes a request payload. JSON keeps the
// protocol debuggable; the CRC in the frame already guards integrity.
func unmarshalStrictEnough(payload []byte, req *Request) error {
	if err := json.Unmarshal(payload, req); err != nil {
		return fmt.Errorf("netbus: bad request payload: %w", err)
	}
	return nil
}

func (s *Server) respond(conn net.Conn, wmu *sync.Mutex, op byte, id uint64, resp Response) {
	frame, err := EncodeFrame(op, id, resp)
	if err != nil {
		frame, _ = EncodeFrame(op, id, Response{Err: err.Error()})
	}
	wmu.Lock()
	defer wmu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	conn.Write(frame)
}

// handle executes one request against the bus.
func (s *Server) handle(op byte, req Request) Response {
	if s.served != nil {
		s.served.Inc()
	}
	switch op {
	case OpPing:
		return Response{}
	case OpPublish:
		if req.Seq > 0 && req.Source != "" {
			key := dedupKey{req.Topic, req.Source}
			s.dedupMu.Lock()
			if req.Seq <= s.dedup[key] {
				s.dedupMu.Unlock()
				return Response{Dup: true}
			}
			// Claim the sequence before publishing: a concurrent re-send
			// of the same seq dedups against the claim. The publisher
			// drains serially per source, so a failed publish after a
			// claim cannot strand a gap.
			s.dedup[key] = req.Seq
			s.dedupMu.Unlock()
		}
		part, off, err := s.bus.Publish(req.Topic, req.Key, req.Value, req.Headers)
		if err != nil {
			return errResponse(err)
		}
		return Response{Partition: part, Offset: off}
	case OpPublishTo:
		off, err := s.bus.PublishTo(req.Topic, req.Partition, req.Key, req.Value, req.Headers)
		if err != nil {
			return errResponse(err)
		}
		return Response{Partition: req.Partition, Offset: off}
	case OpBroadcast:
		return errResponse(s.bus.Broadcast(req.Topic, req.Key, req.Value, req.Headers))
	case OpCreateTopic:
		return errResponse(s.bus.CreateTopic(req.Topic, req.Partitions))
	case OpPartitions:
		n, err := s.bus.Partitions(req.Topic)
		if err != nil {
			return errResponse(err)
		}
		return Response{Count: n}
	case OpEndOffset:
		off, err := s.bus.EndOffset(req.Topic, req.Partition)
		if err != nil {
			return errResponse(err)
		}
		return Response{Offset: off}
	case OpPoll:
		return s.handlePoll(req)
	case OpCommit:
		s.bus.CommitGroup(req.Group, req.Topic, req.Partition, req.Offset)
		return Response{}
	case OpSeek:
		c, err := s.consumer(req.Group, req.Topics, req.Manual)
		if err != nil {
			return errResponse(err)
		}
		return errResponse(c.Seek(req.Topic, req.Partition, req.Offset))
	case OpSeekGroup:
		s.bus.SeekGroup(req.Group, req.Topic, req.Partition, req.Offset)
		return Response{}
	case OpGroupOffsets:
		return Response{Offsets: s.bus.GroupOffsets(req.Group)}
	case OpLag:
		c, err := s.consumer(req.Group, req.Topics, req.Manual)
		if err != nil {
			return errResponse(err)
		}
		return Response{Offset: c.Lag()}
	case OpReadLag:
		c, err := s.consumer(req.Group, req.Topics, req.Manual)
		if err != nil {
			return errResponse(err)
		}
		return Response{Offset: c.ReadLag()}
	case OpReadFrom:
		msgs, err := s.bus.ReadFrom(req.Topic, req.Partition, req.Offset, req.Max)
		if err != nil {
			return errResponse(err)
		}
		return Response{Msgs: wireMsgs(msgs)}
	case OpResume:
		s.bus.ResetReadToCommitted(req.Group)
		return Response{}
	}
	return Response{Err: ErrBadOp.Error()}
}

func (s *Server) handlePoll(req Request) Response {
	c, err := s.consumer(req.Group, req.Topics, req.Manual)
	if err != nil {
		return errResponse(err)
	}
	if req.WaitMs <= 0 {
		return Response{Msgs: wireMsgs(c.TryPoll(req.Max))}
	}
	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait > maxServerWait {
		wait = maxServerWait
	}
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	msgs, err := c.Poll(ctx, req.Max)
	if err != nil {
		return Response{} // long-poll timeout: empty batch, client re-polls
	}
	return Response{Msgs: wireMsgs(msgs)}
}

// consumer resolves (creating on first use) the server-side consumer for
// a group. Offset state lives in the bus's group, so the instance is
// interchangeable across connections and broker restarts.
func (s *Server) consumer(group string, topics []string, manual bool) (*bus.Consumer, error) {
	if group == "" {
		return nil, fmt.Errorf("netbus: request names no consumer group")
	}
	s.consumersMu.Lock()
	defer s.consumersMu.Unlock()
	if c, ok := s.consumers[group]; ok {
		if manual {
			c.DisableAutoCommit()
		}
		return c, nil
	}
	if len(topics) == 0 {
		return nil, fmt.Errorf("netbus: group %q has no subscription on this broker", group)
	}
	c, err := s.bus.NewConsumer(group, topics...)
	if err != nil {
		return nil, err
	}
	if manual {
		c.DisableAutoCommit()
	}
	s.consumers[group] = c
	return c, nil
}

func wireMsgs(msgs []bus.Message) []WireMessage {
	if len(msgs) == 0 {
		return nil
	}
	out := make([]WireMessage, len(msgs))
	for i, m := range msgs {
		out[i] = toWire(m)
	}
	return out
}
