// Package netbus puts the bus on TCP: a broker server exposing the
// in-process bus's topic/partition/consumer-group API as a length-framed
// RPC protocol, and a resilient client implementing the same bus
// interfaces (bus.Broker, bus.Reader) so the pipeline, the log manager,
// and the intake tier run unchanged against a remote broker — the
// paper's Kafka deployment shape (§II) over our own wire format.
//
// Frame layout (little-endian, CRC-framed like the storage WAL):
//
//	[0:2]   magic "LB"
//	[2]     protocol version (1)
//	[3]     op code
//	[4:12]  request id (echoed in the response)
//	[12:16] payload length
//	[16:20] CRC32 (IEEE) of the payload
//	[20:..] JSON payload (Request on the way in, Response on the way out)
//
// The magic and version bytes are checked before anything else is
// touched, so a peer speaking a different protocol (or a future
// incompatible revision) fails with ErrProtoMismatch at decode time
// instead of mis-parsing garbage lengths.
package netbus

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"loglens/internal/bus"
)

// Protocol constants.
const (
	magic0  = 'L'
	magic1  = 'B'
	Version = 1

	// headerSize is the fixed frame header length.
	headerSize = 20

	// MaxPayloadBytes bounds one frame's payload (matching the wire
	// package's maximum log-line length, so any legal publish fits).
	MaxPayloadBytes = 16 << 20
)

// Op codes. Responses echo the request's op.
const (
	OpPublish byte = iota + 1
	OpPublishTo
	OpBroadcast
	OpCreateTopic
	OpPartitions
	OpEndOffset
	OpPoll
	OpCommit
	OpSeek
	OpSeekGroup
	OpGroupOffsets
	OpLag
	OpReadLag
	OpReadFrom
	// OpResume rewinds a group's read frontier to its committed offsets —
	// sent by a reconnecting client so in-flight batches that died with
	// the old connection are redelivered (at-least-once).
	OpResume
	// OpPing is the connection liveness probe.
	OpPing
	opMax
)

// opNames maps op codes to the metric label values of
// netbus_request_seconds{op}.
var opNames = [opMax]string{
	OpPublish:      "publish",
	OpPublishTo:    "publish_to",
	OpBroadcast:    "broadcast",
	OpCreateTopic:  "create_topic",
	OpPartitions:   "partitions",
	OpEndOffset:    "end_offset",
	OpPoll:         "poll",
	OpCommit:       "commit",
	OpSeek:         "seek",
	OpSeekGroup:    "seek_group",
	OpGroupOffsets: "group_offsets",
	OpLag:          "lag",
	OpReadLag:      "read_lag",
	OpReadFrom:     "read_from",
	OpResume:       "resume",
	OpPing:         "ping",
}

// Decode-time protocol errors.
var (
	// ErrProtoMismatch reports a frame whose magic or version byte does
	// not match this implementation.
	ErrProtoMismatch = errors.New("netbus: protocol magic/version mismatch")
	// ErrFrameTooBig reports a header announcing a payload beyond
	// MaxPayloadBytes.
	ErrFrameTooBig = errors.New("netbus: frame exceeds max payload size")
	// ErrChecksum reports a payload whose CRC32 does not match the header.
	ErrChecksum = errors.New("netbus: payload checksum mismatch")
	// ErrTruncated reports a buffer shorter than its header announces.
	ErrTruncated = errors.New("netbus: truncated frame")
	// ErrBadOp reports an op code outside the protocol's range.
	ErrBadOp = errors.New("netbus: unknown op code")
)

// Request is the RPC request payload. Fields are op-specific; unused
// ones stay at their zero value and are omitted from the JSON.
type Request struct {
	Topic      string            `json:"topic,omitempty"`
	Partition  int               `json:"partition,omitempty"`
	Partitions int               `json:"partitions,omitempty"`
	Key        string            `json:"key,omitempty"`
	Value      []byte            `json:"value,omitempty"`
	Headers    map[string]string `json:"headers,omitempty"`
	Group      string            `json:"group,omitempty"`
	Topics     []string          `json:"topics,omitempty"`
	Offset     int64             `json:"offset,omitempty"`
	Max        int               `json:"max,omitempty"`
	// Manual runs the server-side consumer with auto-commit disabled
	// (OpPoll).
	Manual bool `json:"manual,omitempty"`
	// WaitMs bounds how long an OpPoll may block broker-side before
	// returning an empty batch (0 = non-blocking TryPoll).
	WaitMs int64 `json:"waitMs,omitempty"`
	// Source and Seq carry the publisher's idempotence identity
	// (OpPublish): the broker drops a publish whose per-(topic, source)
	// sequence it has already appended, so a spooling agent may re-send
	// after a lost ack without duplicating lines. Seq 0 disables dedup.
	Source string `json:"source,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
}

// WireMessage is one bus message in transit.
type WireMessage struct {
	Topic     string            `json:"topic"`
	Partition int               `json:"partition"`
	Offset    int64             `json:"offset"`
	Key       string            `json:"key,omitempty"`
	Value     []byte            `json:"value,omitempty"`
	Headers   map[string]string `json:"headers,omitempty"`
	TimeNanos int64             `json:"time"`
}

// toWire converts a bus message for transit.
func toWire(m bus.Message) WireMessage {
	return WireMessage{
		Topic:     m.Topic,
		Partition: m.Partition,
		Offset:    m.Offset,
		Key:       m.Key,
		Value:     m.Value,
		Headers:   m.Headers,
		TimeNanos: m.Time.UnixNano(),
	}
}

// fromWire converts a transit message back to a bus message.
func fromWire(w WireMessage) bus.Message {
	return bus.Message{
		Topic:     w.Topic,
		Partition: w.Partition,
		Offset:    w.Offset,
		Key:       w.Key,
		Value:     w.Value,
		Headers:   w.Headers,
		Time:      time.Unix(0, w.TimeNanos),
	}
}

// Response is the RPC response payload.
type Response struct {
	// Err carries a broker-side error as text ("" = success).
	Err string `json:"err,omitempty"`
	// Partition/Offset answer publishes and offset queries; Offset also
	// carries lag answers.
	Partition int   `json:"partition,omitempty"`
	Offset    int64 `json:"offset,omitempty"`
	// Count answers OpPartitions.
	Count int `json:"count,omitempty"`
	// Offsets answers OpGroupOffsets.
	Offsets map[string]int64 `json:"offsets,omitempty"`
	// Msgs answers OpPoll/OpReadFrom.
	Msgs []WireMessage `json:"msgs,omitempty"`
	// Dup marks a publish the broker deduplicated (already-seen Seq):
	// acknowledged, nothing appended.
	Dup bool `json:"dup,omitempty"`
}

// errResponse wraps a broker-side error for transit.
func errResponse(err error) Response {
	if err == nil {
		return Response{}
	}
	return Response{Err: err.Error()}
}

// AppendFrame appends one framed message to dst and returns the extended
// slice.
func AppendFrame(dst []byte, op byte, id uint64, payload []byte) []byte {
	var h [headerSize]byte
	h[0], h[1], h[2], h[3] = magic0, magic1, Version, op
	binary.LittleEndian.PutUint64(h[4:12], id)
	binary.LittleEndian.PutUint32(h[12:16], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[16:20], crc32.ChecksumIEEE(payload))
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}

// EncodeFrame marshals v and frames it.
func EncodeFrame(op byte, id uint64, v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("netbus: encode op %d: %w", op, err)
	}
	if len(payload) > MaxPayloadBytes {
		return nil, ErrFrameTooBig
	}
	return AppendFrame(make([]byte, 0, headerSize+len(payload)), op, id, payload), nil
}

// DecodeFrame decodes one frame from the front of data, returning the
// remainder. The magic and version bytes are validated before anything
// else; a short buffer returns ErrTruncated (callers streaming from a
// socket read more and retry).
func DecodeFrame(data []byte) (op byte, id uint64, payload, rest []byte, err error) {
	if len(data) < 4 {
		// Not even magic+version+op yet: mismatch beats truncation so a
		// wrong-protocol peer fails fast on its first bytes.
		if len(data) >= 2 && (data[0] != magic0 || data[1] != magic1) {
			return 0, 0, nil, data, ErrProtoMismatch
		}
		return 0, 0, nil, data, ErrTruncated
	}
	if data[0] != magic0 || data[1] != magic1 || data[2] != Version {
		return 0, 0, nil, data, ErrProtoMismatch
	}
	op = data[3]
	if op == 0 || op >= opMax {
		return 0, 0, nil, data, ErrBadOp
	}
	if len(data) < headerSize {
		return 0, 0, nil, data, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(data[12:16])
	if n > MaxPayloadBytes {
		return 0, 0, nil, data, ErrFrameTooBig
	}
	if len(data) < headerSize+int(n) {
		return 0, 0, nil, data, ErrTruncated
	}
	payload = data[headerSize : headerSize+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[16:20]) {
		return 0, 0, nil, data, ErrChecksum
	}
	id = binary.LittleEndian.Uint64(data[4:12])
	return op, id, payload, data[headerSize+int(n):], nil
}

// readFrame reads one frame from a stream. Unlike DecodeFrame a short
// read is an I/O error: the connection died mid-frame.
func readFrame(r io.Reader) (op byte, id uint64, payload []byte, err error) {
	var h [headerSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, 0, nil, err
	}
	if h[0] != magic0 || h[1] != magic1 || h[2] != Version {
		return 0, 0, nil, ErrProtoMismatch
	}
	op = h[3]
	if op == 0 || op >= opMax {
		return 0, 0, nil, ErrBadOp
	}
	n := binary.LittleEndian.Uint32(h[12:16])
	if n > MaxPayloadBytes {
		return 0, 0, nil, ErrFrameTooBig
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(h[16:20]) {
		return 0, 0, nil, ErrChecksum
	}
	return op, binary.LittleEndian.Uint64(h[4:12]), payload, nil
}
