package netbus

import (
	"errors"
	"fmt"
	"io/fs"
	"strconv"
	"strings"
	"sync"

	"loglens/internal/fsx"
)

// DefaultSeqBlock is how many sequence numbers a SeqFile reserves per
// write. Larger blocks mean fewer fsyncs and bigger (harmless) gaps
// after a crash.
const DefaultSeqBlock = 1024

// SeqFile persists a publisher's sequence identity across process
// restarts. The broker's idempotence table remembers the highest seq it
// has accepted per (topic, source), so a restarted publisher that
// counts from 1 again would have every fresh line silently swallowed as
// a replay of the previous run. SeqFile hands out monotonic sequence
// numbers and persists a reservation ceiling BEFORE any number under it
// is used: a crash can waste the rest of a reserved block (harmless —
// the dedup table is max-based, gaps just advance it), but no sequence
// number is ever handed out twice across incarnations.
type SeqFile struct {
	fsys  fsx.FS
	path  string
	block uint64

	mu      sync.Mutex
	next    uint64 // next seq to hand out
	ceiling uint64 // highest seq covered by the persisted reservation
}

// OpenSeqFile opens (or starts) the sequence state at path. block <= 0
// uses DefaultSeqBlock. The file holds one decimal number: the first
// sequence the next incarnation may use.
func OpenSeqFile(fsys fsx.FS, path string, block uint64) (*SeqFile, error) {
	if fsys == nil {
		fsys = fsx.OS{}
	}
	if block == 0 {
		block = DefaultSeqBlock
	}
	s := &SeqFile{fsys: fsys, path: path, block: block, next: 1}
	data, err := fsys.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Fresh publisher: start at 1.
	case err != nil:
		return nil, fmt.Errorf("netbus: read seq file %s: %w", path, err)
	default:
		start, perr := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
		if perr != nil || start == 0 {
			return nil, fmt.Errorf("netbus: corrupt seq file %s: %q", path, data)
		}
		s.next = start
	}
	s.ceiling = s.next - 1 // nothing reserved yet; first Next reserves
	return s, nil
}

// Next returns the next sequence number, persisting a new reservation
// block first when the current one is exhausted. The write is atomic
// (temp + rename), so a crash mid-reservation leaves the previous
// ceiling intact and the numbers under it were never used.
func (s *SeqFile) Next() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next > s.ceiling {
		ceiling := s.next + s.block - 1
		data := []byte(strconv.FormatUint(ceiling+1, 10) + "\n")
		if err := fsx.WriteFileAtomic(s.fsys, s.path, data, 0o644); err != nil {
			return 0, fmt.Errorf("netbus: reserve seq block: %w", err)
		}
		s.ceiling = ceiling
	}
	v := s.next
	s.next++
	return v, nil
}
