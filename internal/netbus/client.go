package netbus

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"loglens/internal/bus"
	"loglens/internal/clock"
	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// Client errors.
var (
	// ErrNotConnected reports a request attempted while the broker link
	// is down; the reconnect loop is working on it.
	ErrNotConnected = errors.New("netbus: not connected to broker")
	// ErrTimeout reports a request that got no response within the
	// per-request deadline.
	ErrTimeout = errors.New("netbus: request timed out")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("netbus: client closed")
)

// Options tunes a Client. The zero value is usable.
type Options struct {
	// Clock drives backoff sleeps, request deadlines, and the request
	// histogram (default the wall clock; tests inject clock.Fake to
	// assert the exact backoff schedule).
	Clock clock.Clock
	// Dialer opens the broker connection (default net.Dial over TCP);
	// tests inject failures and in-memory pipes here.
	Dialer func(addr string) (net.Conn, error)
	// Role labels netbus_reconnect_total — "worker" for pipeline-side
	// clients, "agent" for publishers (default "worker").
	Role string
	// RequestTimeout bounds one RPC round trip (default 5s).
	RequestTimeout time.Duration
	// BackoffBase/BackoffMax bound the reconnect backoff (defaults 50ms
	// and 5s); Seed drives its deterministic jitter.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Seed        int64
	// PollWait is the long-poll window a blocking Poll asks the broker
	// to hold (default 250ms).
	PollWait time.Duration
}

func (o *Options) setDefaults() {
	if o.Clock == nil {
		o.Clock = clock.New()
	}
	if o.Dialer == nil {
		o.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if o.Role == "" {
		o.Role = "worker"
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.PollWait <= 0 {
		o.PollWait = 250 * time.Millisecond
	}
}

// callResult is one RPC completion.
type callResult struct {
	resp Response
	err  error
}

// Client is a resilient broker connection implementing bus.Broker. One
// TCP connection multiplexes every request by id; a background manager
// goroutine keeps it alive, reconnecting with exponential backoff and
// seeded jitter whenever it drops, and replaying each subscribed group's
// resume handshake so in-flight batches that died with the old
// connection are redelivered (at-least-once; the Reader's offset
// frontier drops the duplicates).
type Client struct {
	addr string
	opt  Options
	clk  clock.Clock

	wmu sync.Mutex // serializes frame writes to the current conn

	mu        sync.Mutex
	conn      net.Conn
	connected bool
	closed    bool
	nextID    uint64
	waiters   map[uint64]chan callResult
	readers   map[string]*Reader
	connCh    chan struct{} // closed when a connection is (re)established
	attempts  uint64        // consecutive failed dials since last connect
	sessions  uint64        // established connections (1 = first connect)

	events *obs.FlightRecorder

	instrMu    sync.Mutex
	reg        *metrics.Registry
	reconnects *metrics.Counter
	reqHist    map[byte]*metrics.Histogram

	done chan struct{} // closed by Close; stops the manager loop
}

// Dial starts a client for the broker at addr. It returns immediately;
// the connection is established (and re-established) in the background.
// Use WaitConnected to block until the link is up.
func Dial(addr string, opt Options) *Client {
	opt.setDefaults()
	c := &Client{
		addr:    addr,
		opt:     opt,
		clk:     opt.Clock,
		waiters: make(map[uint64]chan callResult),
		readers: make(map[string]*Reader),
		connCh:  make(chan struct{}),
		reqHist: make(map[byte]*metrics.Histogram),
		done:    make(chan struct{}),
	}
	go c.run()
	return c
}

// SetMetrics installs the observability registry
// (netbus_reconnect_total{role}, netbus_request_seconds{op}).
func (c *Client) SetMetrics(reg *metrics.Registry) {
	c.instrMu.Lock()
	defer c.instrMu.Unlock()
	c.reg = reg
	c.reconnects = reg.Counter("netbus_reconnect_total", "role", c.opt.Role)
}

// SetRecorder installs a flight recorder capturing connect/disconnect
// transitions; nil disables.
func (c *Client) SetRecorder(f *obs.FlightRecorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = f
}

func (c *Client) recorder() *obs.FlightRecorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

func (c *Client) histFor(op byte) *metrics.Histogram {
	c.instrMu.Lock()
	defer c.instrMu.Unlock()
	if c.reg == nil {
		return nil
	}
	h, ok := c.reqHist[op]
	if !ok {
		h = c.reg.Histogram("netbus_request_seconds", nil, "op", opNames[op])
		c.reqHist[op] = h
	}
	return h
}

// Close tears the client down: the connection drops, in-flight requests
// fail, the manager loop exits.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	close(c.done)
	if conn != nil {
		conn.Close()
	}
}

// Connected reports whether the broker link is currently up.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.connected
}

// WaitConnected blocks until the link is up or ctx is done.
func (c *Client) WaitConnected(ctx context.Context) error {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		if c.connected {
			c.mu.Unlock()
			return nil
		}
		ch := c.connCh
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Probe reports broker connectivity for the /healthz netbus probe.
func (c *Client) Probe() obs.ProbeResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.closed:
		return obs.ProbeResult{Status: obs.Unhealthy, Detail: "client closed"}
	case c.connected:
		return obs.ProbeResult{Status: obs.Healthy, Detail: "connected to " + c.addr}
	case c.attempts >= 5:
		return obs.ProbeResult{Status: obs.Unhealthy,
			Detail: fmt.Sprintf("broker %s unreachable (%d failed attempts)", c.addr, c.attempts)}
	}
	return obs.ProbeResult{Status: obs.Degraded,
		Detail: fmt.Sprintf("reconnecting to %s (attempt %d)", c.addr, c.attempts+1)}
}

// run is the connection manager: dial with backoff, serve until the
// connection dies, repeat.
func (c *Client) run() {
	for attempt := uint64(0); ; attempt++ {
		select {
		case <-c.done:
			return
		default:
		}
		conn, err := c.opt.Dialer(c.addr)
		if err != nil {
			c.mu.Lock()
			c.attempts++
			c.mu.Unlock()
			c.clk.Sleep(c.backoff(attempt))
			continue
		}
		attempt = 0
		if !c.install(conn) {
			conn.Close()
			return
		}
		c.readLoop(conn)
		c.teardown(conn)
		select {
		case <-c.done:
			return
		default:
		}
	}
}

// backoff computes the reconnect delay for one failed attempt:
// exponential from BackoffBase to BackoffMax, plus deterministic
// seeded jitter in [0, delay/2] (the supervisor's splitmix64 scheme —
// decorrelated without a shared rand stream).
func (c *Client) backoff(attempt uint64) time.Duration {
	d := c.opt.BackoffBase
	for i := uint64(0); i < attempt && d < c.opt.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opt.BackoffMax {
		d = c.opt.BackoffMax
	}
	jitter := time.Duration(splitmix64(uint64(c.opt.Seed)^attempt) % uint64(d/2+1))
	return d + jitter
}

// splitmix64 is the SplitMix64 finalizer (the same mixer the recovery
// supervisor and the chaos harness use).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// install publishes a fresh connection: waiting requests unblock, and
// every subscribed group is resumed from its committed offsets (the
// at-least-once redelivery handshake). Returns false when the client
// closed while dialing.
func (c *Client) install(conn net.Conn) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	c.conn = conn
	c.connected = true
	c.attempts = 0
	c.sessions++
	reconnect := c.sessions > 1
	close(c.connCh)
	groups := make([]string, 0, len(c.readers))
	for g := range c.readers {
		groups = append(groups, g)
	}
	c.mu.Unlock()
	if reconnect {
		c.instrMu.Lock()
		rc := c.reconnects
		c.instrMu.Unlock()
		if rc != nil {
			rc.Inc()
		}
		c.recorder().Record(obs.EventNetbusReconnect, c.opt.Role,
			"broker link re-established to "+c.addr, int64(len(groups)))
		// Resume every subscribed group: the broker rewinds its read
		// frontier to the committed offsets, so batches in flight on the
		// dead connection come back. The Reader frontier drops what was
		// already delivered. Off the manager goroutine — responses only
		// flow once readLoop runs, which starts after install returns. A
		// poll racing ahead of the resume is harmless: it reads from the
		// pre-rewind frontier and the dedup logic stays consistent.
		go func() {
			for _, g := range groups {
				c.call(OpResume, Request{Group: g})
			}
		}()
	}
	return true
}

// teardown retires a dead connection: in-flight requests fail with
// ErrNotConnected and the connect signal is re-armed.
func (c *Client) teardown(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		c.connected = false
		c.connCh = make(chan struct{})
	}
	waiters := c.waiters
	c.waiters = make(map[uint64]chan callResult)
	c.mu.Unlock()
	for _, ch := range waiters {
		ch <- callResult{err: ErrNotConnected}
	}
	c.recorder().Record(obs.EventNetbusReconnect, c.opt.Role,
		"broker link lost to "+c.addr, 0)
}

// readLoop dispatches responses to their waiters until the connection
// dies.
func (c *Client) readLoop(conn net.Conn) {
	for {
		_, id, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		var resp Response
		if err := json.Unmarshal(payload, &resp); err != nil {
			continue
		}
		c.mu.Lock()
		ch, ok := c.waiters[id]
		if ok {
			delete(c.waiters, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- callResult{resp: resp}
		}
	}
}

// call performs one RPC round trip under the per-request deadline.
func (c *Client) call(op byte, req Request) (Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Response{}, ErrClosed
	}
	if !c.connected {
		c.mu.Unlock()
		return Response{}, ErrNotConnected
	}
	c.nextID++
	id := c.nextID
	ch := make(chan callResult, 1)
	c.waiters[id] = ch
	conn := c.conn
	c.mu.Unlock()

	drop := func() {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
	}
	frame, err := EncodeFrame(op, id, req)
	if err != nil {
		drop()
		return Response{}, err
	}
	start := c.clk.Now()
	c.wmu.Lock()
	conn.SetWriteDeadline(time.Now().Add(c.opt.RequestTimeout))
	_, werr := conn.Write(frame)
	c.wmu.Unlock()
	if werr != nil {
		drop()
		conn.Close() // wake the read loop into reconnect
		return Response{}, ErrNotConnected
	}
	select {
	case res := <-ch:
		if h := c.histFor(op); h != nil {
			h.Observe(c.clk.Since(start).Seconds())
		}
		if res.err != nil {
			return Response{}, res.err
		}
		if res.resp.Err != "" {
			return Response{}, errors.New(res.resp.Err)
		}
		return res.resp, nil
	case <-c.clk.After(c.opt.RequestTimeout):
		drop()
		return Response{}, ErrTimeout
	case <-c.done:
		drop()
		return Response{}, ErrClosed
	}
}

// --- bus.Broker implementation ---

// CreateTopic declares a topic on the broker.
func (c *Client) CreateTopic(name string, partitions int) error {
	_, err := c.call(OpCreateTopic, Request{Topic: name, Partitions: partitions})
	return err
}

// Partitions returns a topic's partition count.
func (c *Client) Partitions(topic string) (int, error) {
	resp, err := c.call(OpPartitions, Request{Topic: topic})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Publish appends a message (key-hash partitioning broker-side).
func (c *Client) Publish(topic, key string, value []byte, headers map[string]string) (int, int64, error) {
	resp, err := c.call(OpPublish, Request{Topic: topic, Key: key, Value: value, Headers: headers})
	if err != nil {
		return 0, 0, err
	}
	return resp.Partition, resp.Offset, nil
}

// publishSeq is Publish with the idempotent-producer identity attached:
// the broker drops re-sends of an already-appended (source, seq). The
// spooling Publisher uses it so a lost ack cannot duplicate a line.
func (c *Client) publishSeq(topic, key string, value []byte, headers map[string]string, source string, seq uint64) error {
	_, err := c.call(OpPublish, Request{
		Topic: topic, Key: key, Value: value, Headers: headers,
		Source: source, Seq: seq,
	})
	return err
}

// PublishTo appends to an explicit partition.
func (c *Client) PublishTo(topic string, partition int, key string, value []byte, headers map[string]string) (int64, error) {
	resp, err := c.call(OpPublishTo, Request{Topic: topic, Partition: partition, Key: key, Value: value, Headers: headers})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Broadcast appends a copy to every partition.
func (c *Client) Broadcast(topic, key string, value []byte, headers map[string]string) error {
	_, err := c.call(OpBroadcast, Request{Topic: topic, Key: key, Value: value, Headers: headers})
	return err
}

// EndOffset returns the next offset of a partition.
func (c *Client) EndOffset(topic string, partition int) (int64, error) {
	resp, err := c.call(OpEndOffset, Request{Topic: topic, Partition: partition})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// GroupOffsets returns a group's committed offsets.
func (c *Client) GroupOffsets(group string) map[string]int64 {
	resp, err := c.call(OpGroupOffsets, Request{Group: group})
	if err != nil || resp.Offsets == nil {
		return map[string]int64{}
	}
	return resp.Offsets
}

// SeekGroup positions one partition of a group (restore path).
func (c *Client) SeekGroup(group, topic string, partition int, offset int64) {
	c.call(OpSeekGroup, Request{Group: group, Topic: topic, Partition: partition, Offset: offset})
	c.mu.Lock()
	r := c.readers[group]
	c.mu.Unlock()
	if r != nil {
		r.resetFrontier(topic, partition, offset)
	}
}

// ReadFrom peeks one partition without touching group state.
func (c *Client) ReadFrom(topic string, partition int, offset int64, max int) ([]bus.Message, error) {
	resp, err := c.call(OpReadFrom, Request{Topic: topic, Partition: partition, Offset: offset, Max: max})
	if err != nil {
		return nil, err
	}
	return busMsgs(resp.Msgs), nil
}

// Subscribe creates a reader in the named group. Topics are validated
// against the broker so unknown-topic errors surface here, as they do on
// the in-process bus.
func (c *Client) Subscribe(group string, topics ...string) (bus.Reader, error) {
	if len(topics) == 0 {
		return nil, fmt.Errorf("netbus: consumer group %q: no topics", group)
	}
	for _, t := range topics {
		if _, err := c.Partitions(t); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.readers[group]; ok {
		return r, nil
	}
	r := &Reader{
		c:        c,
		group:    group,
		topics:   topics,
		frontier: make(map[string]int64),
	}
	c.readers[group] = r
	return r, nil
}

func busMsgs(msgs []WireMessage) []bus.Message {
	if len(msgs) == 0 {
		return nil
	}
	out := make([]bus.Message, len(msgs))
	for i, m := range msgs {
		out[i] = fromWire(m)
	}
	return out
}

var _ bus.Broker = (*Client)(nil)
