package netbus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"sync"

	"loglens/internal/fsx"
	"loglens/internal/metrics"
	"loglens/internal/obs"
	"loglens/internal/wire"
)

// Spool record framing on disk (same idiom as the storage WAL):
//
//	[0:4] payload length (u32 LE)
//	[4:8] CRC32 (IEEE) of the payload (u32 LE)
//	[8:]  payload — one wire.Frame as JSON
//
// A torn tail (partial last record, bad CRC) is truncated away on open:
// the valid prefix is the spool. Everything replayed is treated as
// unacked and re-sent; the broker's per-(topic, source) sequence dedup
// makes the re-send harmless.
const spoolRecordHeader = 8

// DefaultSpoolMaxBytes caps the spool at 4 MiB of framed records unless
// configured otherwise.
const DefaultSpoolMaxBytes = 4 << 20

// compactSlack is how many acked (dead) bytes may accumulate at the
// head of the spool file before it is compacted by atomic rewrite.
const compactSlack = 1 << 20

// spoolEntry is one queued frame with its on-disk footprint.
type spoolEntry struct {
	frame wire.Frame
	size  int64 // framed record size on disk
}

// Spool is the publisher's bounded outage buffer: frames append at the
// tail, drain from the head, and when the byte cap is hit the OLDEST
// unacked frames are shed first — the newest data is the most valuable
// to an operator watching a live system, and the flight recorder keeps
// the audit trail of what was dropped. With a filesystem attached the
// queue is mirrored to one CRC-framed file so a crashed or restarted
// agent resumes with its backlog intact; with none it is memory-only.
type Spool struct {
	fsys fsx.FS // nil = memory-only
	path string
	max  int64

	mu      sync.Mutex
	entries []spoolEntry
	bytes   int64 // live (unacked) framed bytes
	dead    int64 // acked bytes still occupying the file head
	shed    uint64

	events    *obs.FlightRecorder
	bytesG    *metrics.Gauge
	shedTotal *metrics.Counter
}

// SpoolOptions configures a Spool.
type SpoolOptions struct {
	// FS and Path locate the backing file; leave FS nil for a
	// memory-only spool (tests, diskless agents).
	FS   fsx.FS
	Path string
	// MaxBytes caps the live framed bytes (default DefaultSpoolMaxBytes).
	MaxBytes int64
	// Events receives EventSpoolShed records; nil disables.
	Events *obs.FlightRecorder
}

// OpenSpool opens (or creates) a spool, replaying any valid record
// prefix left by a previous run and repairing a torn tail in place.
func OpenSpool(opt SpoolOptions) (*Spool, error) {
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = DefaultSpoolMaxBytes
	}
	s := &Spool{fsys: opt.FS, path: opt.Path, max: opt.MaxBytes, events: opt.Events}
	if s.fsys == nil {
		return s, nil
	}
	data, err := s.fsys.ReadFile(s.path)
	if err != nil {
		// Absent file: fresh spool. Anything else is a real I/O problem.
		if errors.Is(err, fs.ErrNotExist) {
			return s, nil
		}
		return nil, fmt.Errorf("netbus: open spool %s: %w", s.path, err)
	}
	valid := 0
	for len(data[valid:]) >= spoolRecordHeader {
		rec := data[valid:]
		n := int(binary.LittleEndian.Uint32(rec[0:4]))
		if n > wire.MaxFrameBytes || len(rec) < spoolRecordHeader+n {
			break // torn tail
		}
		payload := rec[spoolRecordHeader : spoolRecordHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rec[4:8]) {
			break // corrupt tail
		}
		f, err := wire.Decode(payload)
		if err != nil {
			break
		}
		s.entries = append(s.entries, spoolEntry{frame: f, size: int64(spoolRecordHeader + n)})
		s.bytes += int64(spoolRecordHeader + n)
		valid += spoolRecordHeader + n
	}
	if valid != len(data) {
		// Repair the torn tail now so a crash mid-session cannot stack a
		// second tear behind the first.
		if err := fsx.WriteFileAtomic(s.fsys, s.path, data[:valid], 0o644); err != nil {
			return nil, fmt.Errorf("netbus: repair spool %s: %w", s.path, err)
		}
	}
	s.enforceCapLocked()
	return s, nil
}

// SetMetrics installs spool_bytes and spool_lines_shed_total.
func (s *Spool) SetMetrics(reg *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesG = reg.Gauge("spool_bytes")
	s.shedTotal = reg.Counter("spool_lines_shed_total")
	s.bytesG.Set(s.bytes)
}

// Append queues one frame, shedding from the head if the cap would be
// exceeded. The disk write happens before the frame is visible to the
// drainer, so an acked line is always one that reached the file first.
func (s *Spool) Append(f wire.Frame) error {
	payload, err := wire.Encode(f)
	if err != nil {
		return err
	}
	rec := make([]byte, spoolRecordHeader, spoolRecordHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	if s.fsys != nil {
		if err := s.fsys.Append(s.path, rec, 0o644); err != nil {
			return fmt.Errorf("netbus: spool append: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, spoolEntry{frame: f, size: int64(len(rec))})
	s.bytes += int64(len(rec))
	s.enforceCapLocked()
	if s.bytesG != nil {
		s.bytesG.Set(s.bytes)
	}
	return nil
}

// enforceCapLocked sheds oldest-first until the live bytes fit the cap.
// Shed records stay in the file as dead bytes until the next compaction;
// the in-memory queue is the authority on what is live.
func (s *Spool) enforceCapLocked() {
	shed := 0
	for s.bytes > s.max && len(s.entries) > 0 {
		e := s.entries[0]
		s.entries = s.entries[1:]
		s.bytes -= e.size
		s.dead += e.size
		shed++
	}
	if shed == 0 {
		return
	}
	s.shed += uint64(shed)
	if s.shedTotal != nil {
		s.shedTotal.Add(uint64(shed))
	}
	s.events.Record(obs.EventSpoolShed, s.path,
		fmt.Sprintf("spool cap %d bytes: shed oldest", s.max), int64(shed))
}

// AckHead drops the head entry after a successful (or deduplicated)
// publish, compacting the file when enough dead bytes pile up.
func (s *Spool) AckHead() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return
	}
	e := s.entries[0]
	s.entries = s.entries[1:]
	s.bytes -= e.size
	s.dead += e.size
	if s.bytesG != nil {
		s.bytesG.Set(s.bytes)
	}
	if s.fsys != nil && s.dead >= compactSlack {
		s.compactLocked()
	}
	if len(s.entries) == 0 && s.fsys != nil && s.dead > 0 {
		s.compactLocked()
	}
}

// compactLocked rewrites the file to just the live entries (atomic
// replace, same crash-safety idiom as checkpoint files).
func (s *Spool) compactLocked() {
	var buf []byte
	for _, e := range s.entries {
		payload, err := wire.Encode(e.frame)
		if err != nil {
			continue
		}
		var h [spoolRecordHeader]byte
		binary.LittleEndian.PutUint32(h[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(h[4:8], crc32.ChecksumIEEE(payload))
		buf = append(buf, h[:]...)
		buf = append(buf, payload...)
	}
	if err := fsx.WriteFileAtomic(s.fsys, s.path, buf, 0o644); err != nil {
		return // keep dead bytes; retry at the next ack
	}
	s.dead = 0
}

// Head returns the oldest queued frame without removing it.
func (s *Spool) Head() (wire.Frame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return wire.Frame{}, false
	}
	return s.entries[0].frame, true
}

// Len returns the number of queued (unacked) frames.
func (s *Spool) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the live framed bytes queued.
func (s *Spool) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Shed returns the total lines shed at the cap since open.
func (s *Spool) Shed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shed
}
