package netbus

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"loglens/internal/bus"
	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// startBroker brings up a server on loopback and a connected client.
func startBroker(t *testing.T, opt Options) (*Server, *Client) {
	t.Helper()
	srv := NewServer(bus.New())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(srv.Close)
	c := Dial(addr, opt)
	t.Cleanup(c.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitConnected(ctx); err != nil {
		t.Fatalf("WaitConnected: %v", err)
	}
	return srv, c
}

func TestRoundTrip(t *testing.T) {
	_, c := startBroker(t, Options{})

	if err := c.CreateTopic("logs", 2); err != nil {
		t.Fatalf("CreateTopic: %v", err)
	}
	if n, err := c.Partitions("logs"); err != nil || n != 2 {
		t.Fatalf("Partitions = %d, %v; want 2", n, err)
	}
	if _, err := c.Partitions("nope"); err == nil {
		t.Fatal("Partitions(nope) should fail")
	}

	part, off, err := c.Publish("logs", "k1", []byte("hello"), map[string]string{"source": "s1"})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if off != 0 {
		t.Fatalf("first offset = %d, want 0", off)
	}

	r, err := c.Subscribe("g1", "logs")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	msgs, err := r.Poll(ctx, 10)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("Poll = %d msgs, %v; want 1", len(msgs), err)
	}
	m := msgs[0]
	if string(m.Value) != "hello" || m.Partition != part || m.Headers["source"] != "s1" {
		t.Fatalf("message = %+v", m)
	}

	if err := r.Commit("logs", m.Partition, m.Offset+1); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	offs := c.GroupOffsets("g1")
	if offs[bus.PartitionKey("logs", m.Partition)] != m.Offset+1 {
		t.Fatalf("GroupOffsets = %v", offs)
	}

	// Side-effect-free peek.
	peek, err := c.ReadFrom("logs", m.Partition, 0, 10)
	if err != nil || len(peek) != 1 || string(peek[0].Value) != "hello" {
		t.Fatalf("ReadFrom = %v, %v", peek, err)
	}

	// EndOffset after the publish.
	if end, err := c.EndOffset("logs", m.Partition); err != nil || end != 1 {
		t.Fatalf("EndOffset = %d, %v; want 1", end, err)
	}

	// Broadcast lands one copy per partition.
	if err := c.Broadcast("logs", "", []byte("ctl"), nil); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	total := int64(0)
	for p := 0; p < 2; p++ {
		end, _ := c.EndOffset("logs", p)
		total += end
	}
	if total != 3 { // 1 publish + 2 broadcast copies
		t.Fatalf("total offsets = %d, want 3", total)
	}
}

func TestSubscribeValidatesTopics(t *testing.T) {
	_, c := startBroker(t, Options{})
	if _, err := c.Subscribe("g", "missing-topic"); err == nil {
		t.Fatal("Subscribe to unknown topic should fail")
	}
	if _, err := c.Subscribe("g"); err == nil {
		t.Fatal("Subscribe with no topics should fail")
	}
}

func TestPublishDedup(t *testing.T) {
	srv, c := startBroker(t, Options{})
	if err := c.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // same (source, seq) three times
		if err := c.publishSeq("logs", "s1", []byte("line-1"), nil, "s1", 1); err != nil {
			t.Fatalf("publishSeq #%d: %v", i, err)
		}
	}
	if err := c.publishSeq("logs", "s1", []byte("line-2"), nil, "s1", 2); err != nil {
		t.Fatal(err)
	}
	if end, _ := srv.Bus().EndOffset("logs", 0); end != 2 {
		t.Fatalf("EndOffset = %d, want 2 (dedup failed)", end)
	}
}

func TestManualCommitSurvivesPollPath(t *testing.T) {
	_, c := startBroker(t, Options{})
	if err := c.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	r, err := c.Subscribe("g1", "logs")
	if err != nil {
		t.Fatal(err)
	}
	r.DisableAutoCommit()
	if _, _, err := c.Publish("logs", "k", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if msgs, err := r.Poll(ctx, 10); err != nil || len(msgs) != 1 {
		t.Fatalf("Poll = %d, %v", len(msgs), err)
	}
	// Manual mode: nothing committed until Commit is called.
	if offs := c.GroupOffsets("g1"); offs[bus.PartitionKey("logs", 0)] != 0 {
		t.Fatalf("auto-committed in manual mode: %v", offs)
	}
	if lag := r.Lag(); lag != 1 {
		t.Fatalf("Lag = %d, want 1 (committed frontier)", lag)
	}
	if rl := r.ReadLag(); rl != 0 {
		t.Fatalf("ReadLag = %d, want 0 (read frontier consumed)", rl)
	}
}

func TestBrokerRestartKeepsState(t *testing.T) {
	srv, c := startBroker(t, Options{BackoffBase: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond})
	reg := metrics.NewRegistry()
	c.SetMetrics(reg)
	if err := c.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Publish("logs", "k", []byte("before"), nil); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	srv.Stop()
	if err := c.CreateTopic("other", 1); err == nil {
		t.Fatal("publish against a dead broker should fail")
	}
	if _, err := srv.Listen(addr); err != nil {
		t.Fatalf("re-Listen: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitConnected(ctx); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	// Log written before the kill is still there: durable-log crash model.
	if end, err := c.EndOffset("logs", 0); err != nil || end != 1 {
		t.Fatalf("EndOffset after restart = %d, %v; want 1", end, err)
	}
	if got := reg.Counter("netbus_reconnect_total", "role", "worker").Value(); got < 1 {
		t.Fatalf("netbus_reconnect_total = %d, want >= 1", got)
	}
}

func TestResumeRedeliversUncommitted(t *testing.T) {
	srv, c := startBroker(t, Options{BackoffBase: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond})
	if err := c.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	r, err := c.Subscribe("g1", "logs")
	if err != nil {
		t.Fatal(err)
	}
	r.DisableAutoCommit()
	for i := 0; i < 5; i++ {
		if _, _, err := c.Publish("logs", "k", []byte(fmt.Sprintf("m%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	msgs, err := r.Poll(ctx, 10)
	if err != nil || len(msgs) != 5 {
		t.Fatalf("Poll = %d, %v; want 5", len(msgs), err)
	}
	// Commit only the first two, then bounce the broker. Resume must
	// rewind the read frontier to the committed offset; the client
	// frontier must drop the redelivered three (already handed out).
	if err := r.Commit("logs", 0, 2); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	srv.Stop()
	if _, err := srv.Listen(addr); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConnected(ctx); err != nil {
		t.Fatal(err)
	}
	// Server-side: read frontier rewound to 2 after resume, so a fresh
	// TryPoll from the BUS would re-serve 2..4. Client-side the Reader
	// already delivered those; it must stay silent.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if msgs := r.TryPoll(10); len(msgs) != 0 {
			t.Fatalf("redelivered already-delivered messages: %v", msgs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A new message still flows.
	if _, _, err := c.Publish("logs", "k", []byte("m5"), nil); err != nil {
		t.Fatal(err)
	}
	msgs, err = r.Poll(ctx, 10)
	if err != nil || len(msgs) != 1 || string(msgs[0].Value) != "m5" {
		t.Fatalf("post-restart Poll = %v, %v; want m5", msgs, err)
	}
}

func TestSeekAllowsIntentionalRedelivery(t *testing.T) {
	_, c := startBroker(t, Options{})
	if err := c.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	r, err := c.Subscribe("g1", "logs")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.Publish("logs", "k", []byte{byte('a' + i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if msgs, err := r.Poll(ctx, 10); err != nil || len(msgs) != 3 {
		t.Fatalf("Poll = %d, %v", len(msgs), err)
	}
	if err := r.Seek("logs", 0, 1); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	msgs, err := r.Poll(ctx, 10)
	if err != nil || len(msgs) != 2 || string(msgs[0].Value) != "b" {
		t.Fatalf("post-seek Poll = %v, %v; want b,c", msgs, err)
	}
}

func TestProbeTransitions(t *testing.T) {
	srv, c := startBroker(t, Options{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	if got := c.Probe(); got.Status != obs.Healthy {
		t.Fatalf("connected probe = %+v", got)
	}
	srv.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Probe().Status == obs.Unhealthy {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Probe(); got.Status == obs.Healthy {
		t.Fatalf("probe still healthy with broker down: %+v", got)
	}
	c.Close()
	if got := c.Probe(); got.Status != obs.Unhealthy {
		t.Fatalf("closed probe = %+v", got)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	srv, c := startBroker(t, Options{})
	if err := c.CreateTopic("logs", 4); err != nil {
		t.Fatal(err)
	}
	const per = 50
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, _, err := c.Publish("logs", fmt.Sprintf("w%d", w), []byte("x"), nil); err != nil {
					t.Errorf("Publish: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for p := 0; p < 4; p++ {
		end, _ := srv.Bus().EndOffset("logs", p)
		total += end
	}
	if total != 8*per {
		t.Fatalf("published %d, want %d", total, 8*per)
	}
}

// TestProtoMismatchConn proves a wrong-protocol peer is dropped at its
// first frame, not mis-parsed.
func TestProtoMismatchConn(t *testing.T) {
	srv := NewServer(bus.New())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a non-protocol peer; want connection drop")
	}
}
