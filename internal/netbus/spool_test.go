package netbus

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"loglens/internal/fsx"
	"loglens/internal/metrics"
	"loglens/internal/obs"
	"loglens/internal/wire"
)

func memSpool(t *testing.T, max int64) *Spool {
	t.Helper()
	s, err := OpenSpool(SpoolOptions{MaxBytes: max})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpoolFIFO(t *testing.T) {
	s := memSpool(t, 1<<20)
	for i := 0; i < 5; i++ {
		if err := s.Append(wire.Frame{Source: "s", Seq: uint64(i + 1), Raw: fmt.Sprintf("l%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		f, ok := s.Head()
		if !ok || f.Seq != uint64(i+1) {
			t.Fatalf("head #%d = %+v, %v", i, f, ok)
		}
		s.AckHead()
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("drained spool: len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

func TestSpoolShedsOldestFirst(t *testing.T) {
	s := memSpool(t, 200)
	rec := obs.NewFlightRecorder(nil, 16)
	s.events = rec
	reg := metrics.NewRegistry()
	s.SetMetrics(reg)

	var seqs []uint64
	for i := 1; i <= 20; i++ {
		if err := s.Append(wire.Frame{Source: "s", Seq: uint64(i), Raw: "0123456789"}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Bytes() > 200 {
		t.Fatalf("cap not enforced: %d bytes live", s.Bytes())
	}
	if s.Shed() == 0 {
		t.Fatal("nothing shed at the cap")
	}
	for {
		f, ok := s.Head()
		if !ok {
			break
		}
		seqs = append(seqs, f.Seq)
		s.AckHead()
	}
	// Survivors are the NEWEST frames, contiguous to the tail.
	if len(seqs) == 0 || seqs[len(seqs)-1] != 20 {
		t.Fatalf("tail lost: %v", seqs)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("gap inside survivors: %v", seqs)
		}
	}
	if got := reg.Counter("spool_lines_shed_total").Value(); got != s.Shed() {
		t.Fatalf("shed metric = %d, want %d", got, s.Shed())
	}
	evs := rec.Events(obs.EventQuery{Type: obs.EventSpoolShed})
	if len(evs) == 0 {
		t.Fatal("no EventSpoolShed recorded")
	}
}

func TestSpoolReplayFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spool.dat")
	s, err := OpenSpool(SpoolOptions{FS: fsx.OS{}, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.Append(wire.Frame{Source: "s", Seq: uint64(i), Raw: "line" + strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.AckHead() // ack #1; #2 and #3 remain live

	// "Crash": reopen from the same file. Acked entries may reappear
	// (dead bytes not yet compacted) — the broker's dedup absorbs that;
	// what matters is no LIVE entry is lost and order holds.
	s2, err := OpenSpool(SpoolOptions{FS: fsx.OS{}, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for {
		f, ok := s2.Head()
		if !ok {
			break
		}
		seqs = append(seqs, f.Seq)
		s2.AckHead()
	}
	if len(seqs) < 2 || seqs[len(seqs)-1] != 3 {
		t.Fatalf("replay lost live entries: %v", seqs)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("replay out of order: %v", seqs)
		}
	}
}

func TestSpoolTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spool.dat")
	s, err := OpenSpool(SpoolOptions{FS: fsx.OS{}, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.Append(wire.Frame{Source: "s", Seq: uint64(i), Raw: "intact"}); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the tail: a partial record, as a crash mid-append leaves.
	if err := (fsx.OS{}).Append(path, []byte{0xFF, 0x00, 0x00, 0x00, 0xAA, 0xBB}, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSpool(SpoolOptions{FS: fsx.OS{}, Path: path})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if s2.Len() != 3 {
		t.Fatalf("replay = %d entries, want 3 (valid prefix)", s2.Len())
	}
	// The repair rewrote the file to the valid prefix: a third open must
	// see clean framing and the same entries.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := OpenSpool(SpoolOptions{FS: fsx.OS{}, Path: path})
	if err != nil || s3.Len() != 3 {
		t.Fatalf("after repair: %d entries, %v (file %d bytes)", s3.Len(), err, len(data))
	}
}

func TestSpoolCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spool.dat")
	s, err := OpenSpool(SpoolOptions{FS: fsx.OS{}, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(wire.Frame{Source: "s", Seq: 1, Raw: "ok"}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// Flip a payload byte: CRC now fails, replay must stop at record 0.
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSpool(SpoolOptions{FS: fsx.OS{}, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("replayed %d corrupt entries", s2.Len())
	}
}

// TestPublisherDrainAcrossReconnect is the satellite drain-ordering
// proof: lines spooled during a broker outage arrive in order, exactly
// once, after the link comes back.
func TestPublisherDrainAcrossReconnect(t *testing.T) {
	srv, c := startBroker(t, Options{
		Role:           "agent",
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
		RequestTimeout: time.Second,
	})
	if err := c.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	spool := memSpool(t, 1<<20)
	pub := NewPublisher(c, "logs", spool)
	defer pub.Close()

	send := func(lo, hi int) {
		for i := lo; i <= hi; i++ {
			if err := pub.Send("src", uint64(i), fmt.Sprintf("line-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	send(1, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pub.Drain(ctx); err != nil {
		t.Fatalf("pre-outage drain: %v", err)
	}

	// Outage: lines 11..30 land in the spool only.
	addr := srv.Addr()
	srv.Stop()
	send(11, 30)
	if spool.Len() == 0 {
		t.Fatal("outage lines should be spooled")
	}

	// Heal and drain.
	if _, err := srv.Listen(addr); err != nil {
		t.Fatal(err)
	}
	if err := pub.Drain(ctx); err != nil {
		t.Fatalf("post-outage drain: %v", err)
	}

	msgs, err := srv.Bus().ReadFrom("logs", 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 30 {
		t.Fatalf("broker has %d lines, want 30 (lost or duplicated)", len(msgs))
	}
	for i, m := range msgs {
		want := fmt.Sprintf("line-%d", i+1)
		if string(m.Value) != want {
			t.Fatalf("offset %d = %q, want %q (order broken)", i, m.Value, want)
		}
	}
}

// TestPublisherDiskReplayResumes proves a restarted agent re-ships its
// on-disk backlog without duplicating what the broker already has.
func TestPublisherDiskReplayResumes(t *testing.T) {
	srv, c := startBroker(t, Options{Role: "agent", BackoffBase: 2 * time.Millisecond, BackoffMax: 10 * time.Millisecond})
	if err := c.CreateTopic("logs", 1); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "spool.dat")
	spool, err := OpenSpool(SpoolOptions{FS: fsx.OS{}, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher(c, "logs", spool)
	for i := 1; i <= 5; i++ {
		if err := pub.Send("src", uint64(i), fmt.Sprintf("l%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pub.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	pub.Close()

	// "Agent restart": reopen the spool file; acked-but-uncompacted
	// records replay as unacked and re-ship. The broker's sequence dedup
	// must keep the log at exactly 5 lines.
	spool2, err := OpenSpool(SpoolOptions{FS: fsx.OS{}, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	pub2 := NewPublisher(c, "logs", spool2)
	defer pub2.Close()
	if err := pub2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if end, _ := srv.Bus().EndOffset("logs", 0); end != 5 {
		t.Fatalf("EndOffset = %d, want 5 (replay duplicated)", end)
	}
}
