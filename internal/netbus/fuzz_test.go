package netbus

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// FuzzRPCDecode hammers the frame decoder with arbitrary bytes. The
// decoder must never panic, never allocate for an unannounced payload,
// and classify every rejection as one of its typed errors. A pinned
// malformed-frame corpus lives in testdata/fuzz/FuzzRPCDecode.
func FuzzRPCDecode(f *testing.F) {
	// Well-formed seeds across the op range.
	ping, _ := EncodeFrame(OpPing, 1, Request{})
	f.Add(ping)
	pub, _ := EncodeFrame(OpPublish, 42, Request{Topic: "logs", Key: "k", Value: []byte("x"), Source: "s", Seq: 7})
	f.Add(pub)
	poll, _ := EncodeFrame(OpPoll, 99, Request{Group: "g", Topics: []string{"logs"}, Max: 10, WaitMs: 50})
	f.Add(poll)
	two := append(append([]byte{}, ping...), pub...)
	f.Add(two)
	// Malformed seeds: wrong magic, wrong version, zero op, out-of-range
	// op, oversize length, bad CRC, truncated header and payload.
	f.Add([]byte("GET / HTTP/1.1\r\n"))
	f.Add([]byte{'L', 'B', 2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{'L', 'B', 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{'L', 'B', 1, byte(opMax), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	big := []byte{'L', 'B', 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	f.Add(big)
	badcrc := append([]byte{}, ping...)
	badcrc[len(badcrc)-1] ^= 0xFF
	f.Add(badcrc)
	f.Add(ping[:3])
	f.Add(ping[:headerSize-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		op, id, payload, rest, err := DecodeFrame(data)
		if err != nil {
			// Every rejection must be a typed protocol error, and the
			// input must be handed back untouched for the caller's error
			// path.
			if !errors.Is(err, ErrProtoMismatch) && !errors.Is(err, ErrTruncated) &&
				!errors.Is(err, ErrFrameTooBig) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrBadOp) {
				t.Fatalf("untyped decode error: %v", err)
			}
			if !bytes.Equal(rest, data) {
				t.Fatalf("error path consumed input")
			}
			return
		}
		// Accepted frame: every invariant the protocol promises.
		if op == 0 || op >= opMax {
			t.Fatalf("accepted op %d out of range", op)
		}
		if len(payload) > MaxPayloadBytes {
			t.Fatalf("accepted %d byte payload", len(payload))
		}
		if len(rest) != len(data)-headerSize-len(payload) {
			t.Fatalf("rest length wrong: %d", len(rest))
		}
		// Round-trip: re-framing the decoded parts must reproduce the
		// consumed bytes exactly.
		reframed := AppendFrame(nil, op, id, payload)
		if !bytes.Equal(reframed, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode mismatch")
		}
		// And the stream reader must agree with the pure decoder.
		sop, sid, spayload, serr := readFrame(bytes.NewReader(data))
		if serr != nil || sop != op || sid != id || !bytes.Equal(spayload, payload) {
			t.Fatalf("readFrame disagrees: op=%d id=%d err=%v", sop, sid, serr)
		}
	})
}

// TestDecodeFrameErrors pins each malformed shape to its exact error —
// the classification the fuzz target only checks membership of.
func TestDecodeFrameErrors(t *testing.T) {
	valid, _ := EncodeFrame(OpPing, 1, Request{})
	header := func(mut func(h []byte)) []byte {
		h := append([]byte{}, valid[:headerSize]...)
		mut(h)
		return h
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"one byte", []byte{'L'}, ErrTruncated},
		{"wrong magic early", []byte("HT"), ErrProtoMismatch},
		{"wrong magic full", header(func(h []byte) { h[0] = 'X' }), ErrProtoMismatch},
		{"future version", header(func(h []byte) { h[2] = Version + 1 }), ErrProtoMismatch},
		{"zero op", header(func(h []byte) { h[3] = 0 }), ErrBadOp},
		{"op out of range", header(func(h []byte) { h[3] = byte(opMax) }), ErrBadOp},
		{"short header", valid[:headerSize-1], ErrTruncated},
		{"short payload", header(func(h []byte) {
			binary.LittleEndian.PutUint32(h[12:16], 100)
		}), ErrTruncated},
		{"oversize", header(func(h []byte) {
			binary.LittleEndian.PutUint32(h[12:16], MaxPayloadBytes+1)
		}), ErrFrameTooBig},
		{"bad crc", func() []byte {
			d := append([]byte{}, valid...)
			d[len(d)-1] ^= 0xFF
			return d
		}(), ErrChecksum},
	}
	for _, tc := range cases {
		if _, _, _, _, err := DecodeFrame(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Control: the valid frame decodes.
	op, id, payload, rest, err := DecodeFrame(valid)
	if err != nil || op != OpPing || id != 1 || len(rest) != 0 {
		t.Fatalf("valid frame: op=%d id=%d payload=%q rest=%d err=%v", op, id, payload, len(rest), err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(valid[16:20]) {
		t.Fatal("payload does not match its checksum")
	}
}
