package netbus

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"loglens/internal/clock"
)

// TestBackoffSchedule pins the exact backoff computation: exponential
// doubling from base to cap, plus splitmix64(seed^attempt) jitter in
// [0, delay/2]. Same seed, same schedule — chaos runs are replayable.
func TestBackoffSchedule(t *testing.T) {
	c := &Client{opt: Options{
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  400 * time.Millisecond,
		Seed:        7,
	}}
	want := func(attempt uint64, base time.Duration) time.Duration {
		return base + time.Duration(splitmix64(7^attempt)%uint64(base/2+1))
	}
	cases := []struct {
		attempt uint64
		base    time.Duration
	}{
		{0, 50 * time.Millisecond},
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 400 * time.Millisecond}, // capped
		{9, 400 * time.Millisecond}, // stays capped
	}
	for _, tc := range cases {
		got := c.backoff(tc.attempt)
		if got != want(tc.attempt, tc.base) {
			t.Errorf("backoff(%d) = %v, want %v", tc.attempt, got, want(tc.attempt, tc.base))
		}
		if got < tc.base || got > tc.base+tc.base/2 {
			t.Errorf("backoff(%d) = %v outside [%v, %v]", tc.attempt, got, tc.base, tc.base+tc.base/2)
		}
	}
	// Determinism: identical inputs, identical delays.
	if c.backoff(3) != c.backoff(3) {
		t.Error("backoff not deterministic")
	}
	// Different seeds decorrelate the jitter.
	c2 := &Client{opt: Options{
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  400 * time.Millisecond,
		Seed:        8,
	}}
	same := 0
	for a := uint64(0); a < 6; a++ {
		if c.backoff(a) == c2.backoff(a) {
			same++
		}
	}
	if same == 6 {
		t.Error("jitter identical across seeds")
	}
}

// TestReconnectDeadlines drives the manager loop on a fake clock through
// three failed dials and asserts the exact sleep deadlines the backoff
// schedule demands — the same style of proof cmd/logreplay uses for its
// pacing.
func TestReconnectDeadlines(t *testing.T) {
	fc := clock.NewFake()
	start := fc.Now()

	var mu sync.Mutex
	dials := 0
	dialErr := errors.New("refused")
	opt := Options{
		Clock: fc,
		Dialer: func(addr string) (net.Conn, error) {
			mu.Lock()
			defer mu.Unlock()
			dials++
			return nil, dialErr
		},
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  400 * time.Millisecond,
		Seed:        42,
	}
	c := Dial("fake:1", opt)
	defer c.Close()

	expectedElapsed := time.Duration(0)
	for attempt := uint64(0); attempt < 3; attempt++ {
		fc.BlockUntil(1) // manager parked in clk.Sleep after a failed dial
		delay := c.backoff(attempt)
		wantDeadline := start.Add(expectedElapsed + delay)
		dl := fc.Deadlines()
		if len(dl) != 1 || !dl[0].Equal(wantDeadline) {
			t.Fatalf("attempt %d: deadlines = %v, want [%v]", attempt, dl, wantDeadline)
		}
		expectedElapsed += delay
		fc.Advance(delay)
	}
	fc.BlockUntil(1) // fourth dial failed and parked again
	mu.Lock()
	n := dials
	mu.Unlock()
	if n != 4 {
		t.Fatalf("dials = %d, want 4", n)
	}
	if c.Connected() {
		t.Fatal("Connected with a failing dialer")
	}
}

// TestDialerRecovery proves the loop connects as soon as the dialer
// succeeds and resets its attempt counter.
func TestDialerRecovery(t *testing.T) {
	srv, _ := startBroker(t, Options{}) // broker to actually land on
	addr := srv.Addr()

	fc := clock.NewFake()
	var mu sync.Mutex
	failures := 2
	opt := Options{
		Clock: fc,
		Dialer: func(a string) (net.Conn, error) {
			mu.Lock()
			defer mu.Unlock()
			if failures > 0 {
				failures--
				return nil, errors.New("refused")
			}
			return net.Dial("tcp", addr)
		},
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  400 * time.Millisecond,
		Seed:        1,
	}
	c := Dial(addr, opt)
	defer c.Close()
	for attempt := uint64(0); attempt < 2; attempt++ {
		fc.BlockUntil(1)
		fc.Advance(c.backoff(attempt))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitConnected(ctx); err != nil {
		t.Fatalf("WaitConnected after dialer recovery: %v", err)
	}
}
