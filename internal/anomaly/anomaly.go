// Package anomaly defines the anomaly records LogLens reports (§II
// "Anomaly Storage": each anomaly has a type, severity, reason, timestamp
// and associated logs), covering both the stateless parser anomalies and
// the four stateful log-sequence anomaly types of Table II. It also
// provides the temporal clustering used to analyze anomaly bursts in the
// SS7 case study (§VII-B, Figure 6).
package anomaly

import (
	"fmt"
	"sort"
	"time"

	"loglens/internal/logtypes"
)

// Type classifies an anomaly.
type Type int

const (
	// UnparsedLog is the stateless anomaly: a log matched no pattern
	// (§III-B).
	UnparsedLog Type = iota + 1
	// MissingBegin is Table II type 1: an event's logs appeared without
	// its begin state.
	MissingBegin
	// MissingEnd is Table II type 1: an event never reached its end
	// state (detected on heartbeat-driven expiry).
	MissingEnd
	// MissingIntermediate is Table II type 2: a required intermediate
	// state never occurred.
	MissingIntermediate
	// OccurrenceViolation is Table II type 3: an intermediate state
	// occurred fewer or more times than the learned min/max.
	OccurrenceViolation
	// DurationViolation is Table II type 4: the begin-to-end duration
	// fell outside the learned min/max.
	DurationViolation
	// VolumeSpike and VolumeDrop come from the log-volume analytics
	// application built on the parser (§I: parsed outputs are "a
	// building block for designing various log analysis features"): a
	// pattern's windowed log rate deviated far above or below its
	// learned profile.
	VolumeSpike
	VolumeDrop
)

var typeNames = map[Type]string{
	UnparsedLog:         "unparsed-log",
	MissingBegin:        "missing-begin-state",
	MissingEnd:          "missing-end-state",
	MissingIntermediate: "missing-intermediate-state",
	OccurrenceViolation: "occurrence-violation",
	DurationViolation:   "duration-violation",
	VolumeSpike:         "volume-spike",
	VolumeDrop:          "volume-drop",
}

// String returns the kebab-case name used in storage and dashboards.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("unknown(%d)", int(t))
}

// Severity grades operator attention.
type Severity int

const (
	// Info marks anomalies kept for audit only.
	Info Severity = iota + 1
	// Warning marks anomalies that merit review.
	Warning
	// Critical marks anomalies needing immediate attention.
	Critical
)

var severityNames = map[Severity]string{Info: "info", Warning: "warning", Critical: "critical"}

// String returns the lower-case severity name.
func (s Severity) String() string {
	if n, ok := severityNames[s]; ok {
		return n
	}
	return fmt.Sprintf("unknown(%d)", int(s))
}

// Record is one reported anomaly.
type Record struct {
	// Type classifies the anomaly.
	Type Type
	// Severity grades it.
	Severity Severity
	// Reason is a human-readable explanation.
	Reason string
	// Timestamp is when the anomaly happened in log time.
	Timestamp time.Time
	// Source is the log source.
	Source string
	// EventID identifies the event instance (stateful anomalies).
	EventID string
	// AutomatonID identifies the violated automaton (stateful
	// anomalies).
	AutomatonID int
	// Logs are the associated raw logs.
	Logs []logtypes.Log
}

// Cluster is a temporally tight burst of anomalies.
type Cluster struct {
	// Start and End bound the burst in log time.
	Start, End time.Time
	// Records are the member anomalies ordered by timestamp.
	Records []Record
}

// Count returns the number of anomalies in the cluster.
func (c Cluster) Count() int { return len(c.Records) }

// Clusterize groups anomaly records into temporal clusters: records whose
// timestamps are within gap of the previous record join its cluster
// (single-linkage in time). The SS7 case study uses this to surface attack
// bursts (Figure 6: "in each cluster, its anomalies are temporally close
// to each other").
func Clusterize(records []Record, gap time.Duration) []Cluster {
	if len(records) == 0 {
		return nil
	}
	sorted := make([]Record, len(records))
	copy(sorted, records)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Timestamp.Before(sorted[j].Timestamp)
	})
	var clusters []Cluster
	cur := Cluster{Start: sorted[0].Timestamp, End: sorted[0].Timestamp, Records: sorted[:1:1]}
	for _, r := range sorted[1:] {
		if r.Timestamp.Sub(cur.End) <= gap {
			cur.Records = append(cur.Records, r)
			cur.End = r.Timestamp
			continue
		}
		clusters = append(clusters, cur)
		cur = Cluster{Start: r.Timestamp, End: r.Timestamp, Records: []Record{r}}
	}
	return append(clusters, cur)
}
