package anomaly

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2016, 5, 9, 12, 0, 0, 0, time.UTC)

func rec(offset time.Duration) Record {
	return Record{Type: MissingEnd, Timestamp: t0.Add(offset)}
}

func TestTypeStrings(t *testing.T) {
	tests := map[Type]string{
		UnparsedLog:         "unparsed-log",
		MissingBegin:        "missing-begin-state",
		MissingEnd:          "missing-end-state",
		MissingIntermediate: "missing-intermediate-state",
		OccurrenceViolation: "occurrence-violation",
		DurationViolation:   "duration-violation",
	}
	for typ, want := range tests {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type must still print")
	}
	if Info.String() != "info" || Critical.String() != "critical" || Warning.String() != "warning" {
		t.Error("severity names")
	}
	if Severity(99).String() == "" {
		t.Error("unknown severity must still print")
	}
}

func TestClusterizeBasic(t *testing.T) {
	records := []Record{
		rec(0), rec(10 * time.Second), rec(20 * time.Second), // burst 1
		rec(10 * time.Minute), rec(10*time.Minute + 5*time.Second), // burst 2
		rec(30 * time.Minute), // singleton
	}
	clusters := Clusterize(records, time.Minute)
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(clusters))
	}
	if clusters[0].Count() != 3 || clusters[1].Count() != 2 || clusters[2].Count() != 1 {
		t.Errorf("counts = %d %d %d", clusters[0].Count(), clusters[1].Count(), clusters[2].Count())
	}
	if !clusters[0].Start.Equal(t0) || !clusters[0].End.Equal(t0.Add(20*time.Second)) {
		t.Errorf("bounds = %v..%v", clusters[0].Start, clusters[0].End)
	}
}

func TestClusterizeUnsortedInput(t *testing.T) {
	records := []Record{rec(30 * time.Minute), rec(0), rec(10 * time.Second)}
	clusters := Clusterize(records, time.Minute)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	if clusters[0].Count() != 2 {
		t.Errorf("first cluster = %d", clusters[0].Count())
	}
	// Input slice must not be reordered.
	if !records[0].Timestamp.Equal(t0.Add(30 * time.Minute)) {
		t.Error("Clusterize mutated its input")
	}
}

func TestClusterizeEdges(t *testing.T) {
	if Clusterize(nil, time.Minute) != nil {
		t.Error("empty input")
	}
	one := Clusterize([]Record{rec(0)}, time.Minute)
	if len(one) != 1 || one[0].Count() != 1 {
		t.Errorf("singleton: %v", one)
	}
	// Gap exactly equal to threshold joins (<=).
	two := Clusterize([]Record{rec(0), rec(time.Minute)}, time.Minute)
	if len(two) != 1 {
		t.Errorf("boundary gap must join: %d clusters", len(two))
	}
}

// Property: clusters partition the records, are time-ordered, and no
// intra-cluster gap exceeds the threshold.
func TestClusterizeInvariants(t *testing.T) {
	gap := 30 * time.Second
	f := func(offsets []uint16) bool {
		var records []Record
		for _, o := range offsets {
			records = append(records, rec(time.Duration(o)*time.Second))
		}
		clusters := Clusterize(records, gap)
		total := 0
		var prevEnd time.Time
		for i, c := range clusters {
			total += c.Count()
			if c.Count() == 0 {
				return false
			}
			if i > 0 && c.Start.Sub(prevEnd) <= gap {
				return false // adjacent clusters must be separated
			}
			prev := c.Records[0].Timestamp
			for _, r := range c.Records[1:] {
				if r.Timestamp.Before(prev) || r.Timestamp.Sub(prev) > gap {
					return false
				}
				prev = r.Timestamp
			}
			prevEnd = c.End
		}
		return total == len(records)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
