package timestamp

import (
	"strings"
	"time"
	"unsafe"
)

// Match describes an identified timestamp inside a token slice.
type Match struct {
	// Start is the index of the first token of the timestamp.
	Start int
	// Tokens is how many tokens the timestamp spans.
	Tokens int
	// Time is the parsed instant.
	Time time.Time
	// Spec is the SimpleDateFormat specification that matched.
	Spec string
}

// Unified renders the matched instant in the unified DATETIME format.
func (m Match) Unified() string { return Unify(m.Time) }

// Stats counts identifier work, used to evaluate the caching and
// filtering optimizations (§VI-A).
type Stats struct {
	// CacheHits counts identifications satisfied by a cached format.
	CacheHits uint64
	// CacheMisses counts identifications that had to scan the full
	// format table after missing the cache.
	CacheMisses uint64
	// Filtered counts token positions rejected by the keyword filter
	// without trying any format.
	Filtered uint64
	// FormatTries counts individual format parse attempts.
	FormatTries uint64
}

// Identifier recognizes timestamps in tokenized logs. It is NOT safe for
// concurrent use because the match cache mutates on every call; create one
// per goroutine with Clone.
type Identifier struct {
	formats []Format

	// cache holds (format, token position) pairs in most-recently-used
	// order: logs from one source keep the same timestamp format at the
	// same position, so a hit skips the entire position x format scan
	// (§III-A2 "Caching matched formats").
	cache    []cacheEntry
	cacheCap int

	useCache  bool
	useFilter bool

	// joinBuf is the reusable buffer multi-token format tries join into,
	// replacing a strings.Join allocation per try on the hot path.
	joinBuf []byte

	stats Stats
}

type cacheEntry struct {
	format int
	pos    int
}

// Option configures an Identifier.
type IdentifierOption func(*identifierConfig)

type identifierConfig struct {
	userFormats []Format
	noDefaults  bool
	cacheCap    int
	noCache     bool
	noFilter    bool
}

// WithFormats prepends user-specified formats, which take priority over
// the predefined table (the paper lets users specify formats that are
// checked instead of, or before, the predefined list).
func WithFormats(formats ...Format) IdentifierOption {
	return func(c *identifierConfig) { c.userFormats = append(c.userFormats, formats...) }
}

// WithoutDefaults drops the predefined format table, leaving only
// user-specified formats.
func WithoutDefaults() IdentifierOption {
	return func(c *identifierConfig) { c.noDefaults = true }
}

// WithCacheSize sets the matched-format cache capacity (default 16
// (format, position) pairs — sources use only a few formats, but the
// timestamp position varies with the log prefix).
func WithCacheSize(n int) IdentifierOption {
	return func(c *identifierConfig) { c.cacheCap = n }
}

// WithoutCache disables the matched-format cache (for ablation).
func WithoutCache() IdentifierOption {
	return func(c *identifierConfig) { c.noCache = true }
}

// WithoutFilter disables the keyword filter (for ablation).
func WithoutFilter() IdentifierOption {
	return func(c *identifierConfig) { c.noFilter = true }
}

// New constructs an Identifier with the 89 predefined formats plus any
// user formats, caching and filtering enabled.
func New(opts ...IdentifierOption) *Identifier {
	cfg := identifierConfig{cacheCap: 16}
	for _, opt := range opts {
		opt(&cfg)
	}
	var formats []Format
	formats = append(formats, cfg.userFormats...)
	if !cfg.noDefaults {
		formats = append(formats, Defaults()...)
	}
	return &Identifier{
		formats:   formats,
		cacheCap:  cfg.cacheCap,
		useCache:  !cfg.noCache,
		useFilter: !cfg.noFilter,
	}
}

// Clone returns an independent Identifier with the same format table and
// an empty cache, suitable for use on another goroutine.
func (id *Identifier) Clone() *Identifier {
	return &Identifier{
		formats:   id.formats,
		cacheCap:  id.cacheCap,
		useCache:  id.useCache,
		useFilter: id.useFilter,
	}
}

// Formats returns the format table in priority order.
func (id *Identifier) Formats() []Format {
	out := make([]Format, len(id.formats))
	copy(out, id.formats)
	return out
}

// Stats returns a snapshot of the work counters.
func (id *Identifier) Stats() Stats { return id.stats }

// ResetStats zeroes the work counters.
func (id *Identifier) ResetStats() { id.stats = Stats{} }

// Identify scans the token slice and returns the first timestamp found.
// Cached (format, position) pairs are tried first; on a miss the full
// position-by-position scan runs and the winning pair enters the cache.
func (id *Identifier) Identify(tokens []string) (Match, bool) {
	if id.useCache {
		for ci, e := range id.cache {
			if m, ok := id.tryFormat(e.format, tokens, e.pos); ok {
				id.stats.CacheHits++
				id.promote(ci)
				return m, true
			}
		}
	}
	for pos := range tokens {
		m, ok := id.IdentifyAt(tokens, pos)
		if !ok {
			continue
		}
		if id.useCache {
			id.stats.CacheMisses++
			id.insert(cacheEntry{format: id.formatIndex(m.Spec), pos: pos})
		}
		return m, true
	}
	if id.useCache {
		id.stats.CacheMisses++
	}
	return Match{}, false
}

// IdentifyAt attempts to identify a timestamp starting exactly at token
// position pos, scanning the format table in priority order (the cache is
// not consulted: position-pinned lookups are already O(k)).
func (id *Identifier) IdentifyAt(tokens []string, pos int) (Match, bool) {
	if pos < 0 || pos >= len(tokens) {
		return Match{}, false
	}
	if id.useFilter && !canStartTimestamp(tokens[pos]) {
		id.stats.Filtered++
		return Match{}, false
	}
	for fi := range id.formats {
		if m, ok := id.tryFormat(fi, tokens, pos); ok {
			return m, true
		}
	}
	return Match{}, false
}

// formatIndex locates a format by its spec (formats are few; linear is
// fine on the miss path).
func (id *Identifier) formatIndex(spec string) int {
	for i, f := range id.formats {
		if f.Spec == spec {
			return i
		}
	}
	return 0
}

func (id *Identifier) tryFormat(fi int, tokens []string, pos int) (Match, bool) {
	f := id.formats[fi]
	if pos+f.Tokens > len(tokens) {
		return Match{}, false
	}
	id.stats.FormatTries++
	text := tokens[pos]
	if f.Tokens > 1 {
		id.joinBuf = id.joinBuf[:0]
		for i := pos; i < pos+f.Tokens; i++ {
			if i > pos {
				id.joinBuf = append(id.joinBuf, ' ')
			}
			id.joinBuf = append(id.joinBuf, tokens[i]...)
		}
		// Safe: Parse never retains text past the call (time.Parse copies
		// what it needs into the Time; errors are discarded), and joinBuf
		// is only rewritten by the next tryFormat on this Identifier.
		text = unsafe.String(unsafe.SliceData(id.joinBuf), len(id.joinBuf))
	}
	t, ok := f.Parse(text)
	if !ok {
		return Match{}, false
	}
	return Match{Start: pos, Tokens: f.Tokens, Time: t, Spec: f.Spec}, true
}

// promote moves the cache entry at position ci to the front (MRU).
func (id *Identifier) promote(ci int) {
	if ci == 0 {
		return
	}
	e := id.cache[ci]
	copy(id.cache[1:ci+1], id.cache[:ci])
	id.cache[0] = e
}

// insert places a cache entry at the front, evicting the LRU entry if the
// cache is full.
func (id *Identifier) insert(e cacheEntry) {
	for ci, old := range id.cache {
		if old == e {
			id.promote(ci)
			return
		}
	}
	if id.cacheCap <= 0 {
		return
	}
	if len(id.cache) < id.cacheCap {
		id.cache = append(id.cache, cacheEntry{})
	}
	copy(id.cache[1:], id.cache)
	id.cache[0] = e
}

// canStartTimestamp is the keyword filter: a token can begin a timestamp
// only if it starts with a digit and contains a date/time separator (or is
// a plausible bare numeric field), or if it starts with a month or weekday
// name (§III-A2 "Filtering").
func canStartTimestamp(tok string) bool {
	if tok == "" {
		return false
	}
	c := tok[0]
	if c >= '0' && c <= '9' {
		if strings.ContainsAny(tok, "/-.:") {
			return true
		}
		// Bare digit runs: plausible as MM, dd, yyyy, or epoch
		// seconds/millis.
		n := 0
		for n < len(tok) && tok[n] >= '0' && tok[n] <= '9' {
			n++
		}
		if n != len(tok) && tok[n] != ',' {
			return false
		}
		switch n {
		case 1, 2, 4, 10, 13:
			return true
		}
		return false
	}
	return hasMonthOrWeekdayPrefix(tok)
}

var monthDayKeywords = []string{
	"jan", "feb", "mar", "apr", "may", "jun",
	"jul", "aug", "sep", "oct", "nov", "dec",
	"mon", "tue", "wed", "thu", "fri", "sat", "sun",
}

func hasMonthOrWeekdayPrefix(tok string) bool {
	if len(tok) < 3 {
		return false
	}
	var p [3]byte
	for i := 0; i < 3; i++ {
		c := tok[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c < 'a' || c > 'z' {
			return false
		}
		p[i] = c
	}
	prefix := string(p[:])
	for _, k := range monthDayKeywords {
		if prefix == k {
			return true
		}
	}
	return false
}
