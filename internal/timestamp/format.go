// Package timestamp implements LogLens timestamp identification (§III-A2):
// recognizing heterogeneous timestamp formats inside tokenized logs and
// unifying them into the single DATETIME format yyyy/MM/dd HH:mm:ss.SSS.
//
// Formats are specified in Java SimpleDateFormat notation, as in the
// paper, and converted internally to Go time layouts. The identifier ships
// with 89 predefined formats and accepts user-supplied ones. Two
// optimizations — caching matched formats and keyword filtering — bring
// amortized identification cost to O(1) (§III-A2, evaluated in §VI-A).
package timestamp

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// UnifiedLayout is the Go layout of the unified DATETIME format
// ("yyyy/MM/dd HH:mm:ss.SSS" in SimpleDateFormat notation).
const UnifiedLayout = "2006/01/02 15:04:05.000"

// Unify renders t in the unified DATETIME format.
func Unify(t time.Time) string {
	return t.Format(UnifiedLayout)
}

// AppendUnified appends t in the unified DATETIME format to dst and
// returns the extended buffer, letting hot-path callers render without a
// string allocation.
func AppendUnified(dst []byte, t time.Time) []byte {
	return t.AppendFormat(dst, UnifiedLayout)
}

// Format is one recognizable timestamp format. A format spans Tokens
// whitespace-separated tokens (e.g. "MMM dd, yyyy HH:mm:ss" spans four).
type Format struct {
	// Spec is the original SimpleDateFormat specification.
	Spec string

	// Layout is the converted Go time layout.
	Layout string

	// Tokens is the number of whitespace-separated tokens the format
	// consumes.
	Tokens int

	// pre, when non-nil, rewrites the joined token text before parsing
	// (used for separators Go layouts cannot express, such as
	// HH:mm:ss:SSS).
	pre func(string) string

	// parseFn, when non-nil, replaces layout-based parsing entirely
	// (used for epoch formats).
	parseFn func(string) (time.Time, bool)
}

// EpochSeconds returns a Format recognizing 10-digit Unix-second
// timestamps. It is not part of the predefined table; add it with
// WithFormats when a source logs epoch times.
func EpochSeconds() Format {
	return Format{
		Spec:    "epoch",
		Tokens:  1,
		parseFn: func(s string) (time.Time, bool) { return parseEpoch(epochSeconds, s) },
	}
}

// EpochMillis returns a Format recognizing 13-digit Unix-millisecond
// timestamps.
func EpochMillis() Format {
	return Format{
		Spec:    "epochmillis",
		Tokens:  1,
		parseFn: func(s string) (time.Time, bool) { return parseEpoch(epochMillis, s) },
	}
}

// NewFormat converts a SimpleDateFormat specification into a Format.
func NewFormat(spec string) (Format, error) {
	layout, pre, err := convertSpec(spec)
	if err != nil {
		return Format{}, err
	}
	return Format{
		Spec:   spec,
		Layout: layout,
		Tokens: 1 + strings.Count(spec, " "),
		pre:    pre,
	}, nil
}

// MustFormat is NewFormat for static tables; it panics on a bad spec.
func MustFormat(spec string) Format {
	f, err := NewFormat(spec)
	if err != nil {
		panic(err)
	}
	return f
}

// Parse attempts to parse the joined token text with this format.
func (f Format) Parse(text string) (time.Time, bool) {
	if f.parseFn != nil {
		return f.parseFn(text)
	}
	if f.pre != nil {
		text = f.pre(text)
	}
	t, err := time.Parse(f.Layout, text)
	if err != nil {
		return time.Time{}, false
	}
	return t, true
}

// convertSpec translates SimpleDateFormat notation to a Go layout. It
// supports the subset of directives that appear in real-world log
// timestamps. Quoted literals ('T') are unquoted. The second return value
// is an optional pre-processing function for patterns Go cannot express
// directly (":SSS" millisecond separators).
func convertSpec(spec string) (string, func(string) string, error) {
	var b strings.Builder
	var pre func(string) string
	i := 0
	for i < len(spec) {
		c := spec[i]
		switch c {
		case '\'':
			// Quoted literal, '' is a literal quote.
			j := i + 1
			for j < len(spec) && spec[j] != '\'' {
				j++
			}
			if j >= len(spec) {
				return "", nil, fmt.Errorf("timestamp: unterminated quote in %q", spec)
			}
			if j == i+1 {
				b.WriteByte('\'')
			} else {
				b.WriteString(spec[i+1 : j])
			}
			i = j + 1
		case 'y', 'M', 'd', 'H', 'h', 'm', 's', 'S', 'E', 'a', 'z', 'Z', 'X':
			j := i
			for j < len(spec) && spec[j] == c {
				j++
			}
			run := j - i
			verb, err := convertRun(c, run)
			if err != nil {
				return "", nil, fmt.Errorf("timestamp: %q: %w", spec, err)
			}
			if c == 'S' {
				// Go fractional seconds must follow '.' or ','.
				// If the spec separated millis with ':',
				// rewrite the value at parse time.
				if b.Len() > 0 && strings.HasSuffix(b.String(), ":") {
					s := b.String()
					b.Reset()
					b.WriteString(s[:len(s)-1] + ".")
					pre = rewriteLastColonToDot
				}
			}
			b.WriteString(verb)
			i = j
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String(), pre, nil
}

func convertRun(c byte, n int) (string, error) {
	switch c {
	case 'y':
		if n <= 2 {
			return "06", nil
		}
		return "2006", nil
	case 'M':
		switch {
		case n == 1:
			return "1", nil
		case n == 2:
			return "01", nil
		case n == 3:
			return "Jan", nil
		default:
			return "January", nil
		}
	case 'd':
		if n == 1 {
			return "2", nil
		}
		return "02", nil
	case 'H':
		return "15", nil
	case 'h':
		if n == 1 {
			return "3", nil
		}
		return "03", nil
	case 'm':
		if n == 1 {
			return "4", nil
		}
		return "04", nil
	case 's':
		if n == 1 {
			return "5", nil
		}
		return "05", nil
	case 'S':
		return strings.Repeat("0", n), nil
	case 'E':
		if n >= 4 {
			return "Monday", nil
		}
		return "Mon", nil
	case 'a':
		return "PM", nil
	case 'z':
		return "MST", nil
	case 'Z':
		return "-0700", nil
	case 'X':
		switch n {
		case 1:
			return "-07", nil
		case 2:
			return "-0700", nil
		default:
			return "-07:00", nil
		}
	}
	return "", fmt.Errorf("unsupported directive %c", c)
}

// rewriteLastColonToDot converts "...:SSS" millisecond text to "...\.SSS"
// so Go's parser accepts it: the final colon followed by exactly three
// digits at end of string becomes a dot.
func rewriteLastColonToDot(s string) string {
	if len(s) < 4 {
		return s
	}
	i := len(s) - 4
	if s[i] != ':' {
		return s
	}
	for j := i + 1; j < len(s); j++ {
		if s[j] < '0' || s[j] > '9' {
			return s
		}
	}
	return s[:i] + "." + s[i+1:]
}

// epochFormat recognizes 10-digit Unix-second and 13-digit Unix-milli
// timestamps. It is part of the predefined table.
type epochKind int

const (
	epochSeconds epochKind = iota + 1
	epochMillis
)

func parseEpoch(kind epochKind, text string) (time.Time, bool) {
	for i := 0; i < len(text); i++ {
		if text[i] < '0' || text[i] > '9' {
			return time.Time{}, false
		}
	}
	switch kind {
	case epochSeconds:
		if len(text) != 10 {
			return time.Time{}, false
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return time.Time{}, false
		}
		return time.Unix(v, 0).UTC(), true
	case epochMillis:
		if len(text) != 13 {
			return time.Time{}, false
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return time.Time{}, false
		}
		return time.Unix(v/1000, (v%1000)*int64(time.Millisecond)).UTC(), true
	}
	return time.Time{}, false
}
