package timestamp_test

import (
	"fmt"
	"strings"

	"loglens/internal/timestamp"
)

// Heterogeneous formats unify into the DATETIME form (§III-A2).
func ExampleIdentifier_Identify() {
	id := timestamp.New()
	for _, line := range []string{
		"Feb 23, 2016 09:00:31 login ok",
		"2016-02-23T09:00:31 login ok",
		"02/23/2016 09:00:31 login ok",
	} {
		m, _ := id.Identify(strings.Fields(line))
		fmt.Println(m.Unified())
	}
	// Output:
	// 2016/02/23 09:00:31.000
	// 2016/02/23 09:00:31.000
	// 2016/02/23 09:00:31.000
}

// User formats use Java SimpleDateFormat notation, as in the paper.
func ExampleNewFormat() {
	f, _ := timestamp.NewFormat("yyyy.MM.dd HH:mm:ss")
	t, ok := f.Parse("2016.02.23 09:00:31")
	fmt.Println(ok, timestamp.Unify(t))
	// Output:
	// true 2016/02/23 09:00:31.000
}
