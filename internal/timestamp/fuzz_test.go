package timestamp

import (
	"strings"
	"testing"
)

// FuzzIdentify: arbitrary input must never panic, and every reported match
// must re-parse under its reported format to the same instant.
func FuzzIdentify(f *testing.F) {
	for _, seed := range []string{
		"2016/02/23 09:00:31.000 login",
		"Feb 23, 2016 09:00:31 x",
		"23/02 09:00:31:123",
		"1456218031",
		"no timestamps here",
		"9999/99/99 99:99:99",
		"-1/-1/-1 1:1:1",
		"0000/00/00 00:00:00.000",
		"2016-02-23T09:00:31+05:00",
	} {
		f.Add(seed)
	}
	id := New()
	f.Fuzz(func(t *testing.T, line string) {
		tokens := strings.Fields(line)
		m, ok := id.Identify(tokens)
		if !ok {
			return
		}
		if m.Start < 0 || m.Start+m.Tokens > len(tokens) {
			t.Fatalf("match span [%d,%d) out of bounds for %d tokens", m.Start, m.Start+m.Tokens, len(tokens))
		}
		// Re-parse the matched text under the reported spec.
		var fmtMatch Format
		found := false
		for _, fm := range id.Formats() {
			if fm.Spec == m.Spec {
				fmtMatch = fm
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("reported spec %q not in format table", m.Spec)
		}
		text := strings.Join(tokens[m.Start:m.Start+m.Tokens], " ")
		got, ok := fmtMatch.Parse(text)
		if !ok {
			t.Fatalf("reported match %q does not re-parse under %q", text, m.Spec)
		}
		if !got.Equal(m.Time) {
			t.Fatalf("re-parse of %q gives %v, match said %v", text, got, m.Time)
		}
	})
}

// FuzzConvertSpec: arbitrary SimpleDateFormat specs must never panic.
func FuzzConvertSpec(f *testing.F) {
	for _, seed := range []string{
		"yyyy/MM/dd HH:mm:ss.SSS",
		"yyyy-MM-dd'T'HH:mm:ssXXX",
		"'unterminated",
		"''",
		"Q",
		"yyyyyyyyyy",
		"HH:mm:ss:SSS",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		fm, err := NewFormat(spec)
		if err != nil {
			return
		}
		// A valid format must be usable without panicking.
		fm.Parse("2016/02/23 09:00:31")
	})
}
