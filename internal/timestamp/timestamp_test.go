package timestamp

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultsCount(t *testing.T) {
	got := len(Defaults())
	if got != DefaultFormatCount {
		t.Fatalf("predefined format table has %d formats, want %d (paper §VI-A)", got, DefaultFormatCount)
	}
}

func TestConvertSpec(t *testing.T) {
	tests := []struct {
		spec   string
		layout string
	}{
		{"yyyy/MM/dd HH:mm:ss.SSS", "2006/01/02 15:04:05.000"},
		{"yyyy-MM-dd'T'HH:mm:ss", "2006-01-02T15:04:05"},
		{"MMM dd, yyyy HH:mm:ss", "Jan 02, 2006 15:04:05"},
		{"MM/dd HH:mm:ss", "01/02 15:04:05"},
		{"dd MMM yyyy HH:mm", "02 Jan 2006 15:04"},
		{"yyyy-MM-dd'T'HH:mm:ssXXX", "2006-01-02T15:04:05-07:00"},
		{"HH:mm:ss,SSS", "15:04:05,000"},
	}
	for _, tt := range tests {
		f, err := NewFormat(tt.spec)
		if err != nil {
			t.Fatalf("NewFormat(%q): %v", tt.spec, err)
		}
		if f.Layout != tt.layout {
			t.Errorf("NewFormat(%q).Layout = %q, want %q", tt.spec, f.Layout, tt.layout)
		}
	}
}

func TestHeterogeneousFormats(t *testing.T) {
	// The paper's §III-A2 example: the same instant expressed many ways.
	id := New()
	want := time.Date(2016, 2, 23, 9, 0, 31, 0, time.UTC)
	lines := []string{
		"2016/02/23 09:00:31",
		"2016/23/02 09:00:31",
		"2016/23/02 09:00:31.000",
		"Feb 23, 2016 09:00:31",
		"2016 Feb 23 09:00:31",
		"02/23/2016 09:00:31",
		"02-23-2016 09:00:31",
		"23/02/2016 09:00:31",
		"2016-02-23T09:00:31",
		"2016-02-23 09:00:31,000",
		"2016-02-23 09:00:31:000",
	}
	for _, line := range lines {
		tokens := strings.Fields(line)
		m, ok := id.Identify(tokens)
		if !ok {
			t.Errorf("Identify(%q): no match", line)
			continue
		}
		if !m.Time.Equal(want) {
			t.Errorf("Identify(%q) = %v, want %v", line, m.Time, want)
		}
		if got := m.Unified(); got != "2016/02/23 09:00:31.000" {
			t.Errorf("Unified(%q) = %q", line, got)
		}
	}
}

func TestIdentifyPosition(t *testing.T) {
	id := New()
	tokens := strings.Fields("ERROR 2016/02/23 09:00:31.123 disk full")
	m, ok := id.Identify(tokens)
	if !ok {
		t.Fatal("no match")
	}
	if m.Start != 1 || m.Tokens != 2 {
		t.Fatalf("match span = (%d,%d), want (1,2)", m.Start, m.Tokens)
	}
	if m.Time.Nanosecond() != 123*1e6 {
		t.Errorf("millis lost: %v", m.Time)
	}
}

func TestNoFalsePositives(t *testing.T) {
	id := New()
	for _, line := range []string{
		"Connect DB server user abc123",
		"value=42 rate 99.9 pct",
		"ip 127.0.0.1 port 8080",
	} {
		if m, ok := id.Identify(strings.Fields(line)); ok {
			t.Errorf("Identify(%q) unexpectedly matched %q at %d", line, m.Spec, m.Start)
		}
	}
}

func TestCacheBehavior(t *testing.T) {
	id := New()
	tokens := strings.Fields("2016/02/23 09:00:31.000 server up")
	if _, ok := id.Identify(tokens); !ok {
		t.Fatal("no match")
	}
	s0 := id.Stats()
	if s0.CacheHits != 0 {
		t.Fatalf("first identification must miss the cache, stats %+v", s0)
	}
	for i := 0; i < 10; i++ {
		if _, ok := id.Identify(tokens); !ok {
			t.Fatal("no match")
		}
	}
	s1 := id.Stats()
	if s1.CacheHits != 10 {
		t.Errorf("expected 10 cache hits, got %+v", s1)
	}
	if s1.CacheMisses != s0.CacheMisses {
		t.Errorf("repeat identifications must not miss: %+v", s1)
	}
}

func TestCacheFarFewerTries(t *testing.T) {
	// A format deep in the predefined table, so the uncached linear
	// scan pays for dozens of failed tries on every log.
	tokens := strings.Fields("x 23/02 09:00:31:123 up")

	cached := New()
	for i := 0; i < 100; i++ {
		cached.Identify(tokens)
	}
	uncached := New(WithoutCache())
	for i := 0; i < 100; i++ {
		uncached.Identify(tokens)
	}
	if c, u := cached.Stats().FormatTries, uncached.Stats().FormatTries; c*5 > u {
		t.Errorf("cache should cut format tries by far more: cached=%d uncached=%d", c, u)
	}
}

func TestFilterSkipsNonCandidates(t *testing.T) {
	id := New()
	tokens := strings.Fields("alpha beta gamma delta")
	id.Identify(tokens)
	s := id.Stats()
	if s.Filtered != uint64(len(tokens)) {
		t.Errorf("all %d tokens should be filtered, stats %+v", len(tokens), s)
	}
	if s.FormatTries != 0 {
		t.Errorf("filter should prevent all format tries, stats %+v", s)
	}
}

func TestFilterDoesNotChangeResults(t *testing.T) {
	lines := []string{
		"2016/02/23 09:00:31 ok",
		"Feb 23, 2016 09:00:31 warn",
		"plain words only here",
		"num 42 and ip 10.0.0.1",
		"23/02 09:00:31:123 partial",
	}
	a := New()
	b := New(WithoutFilter())
	for _, line := range lines {
		tokens := strings.Fields(line)
		ma, oka := a.Identify(tokens)
		mb, okb := b.Identify(tokens)
		if oka != okb || (oka && (ma.Start != mb.Start || !ma.Time.Equal(mb.Time))) {
			t.Errorf("filter changed result for %q: %v/%v vs %v/%v", line, ma, oka, mb, okb)
		}
	}
}

func TestUserFormatsTakePriority(t *testing.T) {
	user := MustFormat("yyyy.MM.dd.HH.mm.ss")
	id := New(WithFormats(user))
	m, ok := id.Identify([]string{"2016.02.23.09.00.31"})
	if !ok || m.Spec != user.Spec {
		t.Fatalf("user format not used: %+v ok=%v", m, ok)
	}
}

func TestWithoutDefaults(t *testing.T) {
	id := New(WithoutDefaults(), WithFormats(MustFormat("HH:mm:ss")))
	if _, ok := id.Identify([]string{"2016/02/23", "09:00:31"}); !ok {
		t.Error("user format should match the time token")
	}
	if _, ok := id.Identify([]string{"2016-02-23T09:00:31"}); ok {
		t.Error("default formats must be absent")
	}
}

func TestEpochFormats(t *testing.T) {
	id := New(WithFormats(EpochSeconds(), EpochMillis()))
	m, ok := id.Identify([]string{"1456218031"})
	if !ok {
		t.Fatal("epoch seconds not recognized")
	}
	if m.Time.Year() != 2016 {
		t.Errorf("epoch parse wrong: %v", m.Time)
	}
	m, ok = id.Identify([]string{"1456218031123"})
	if !ok {
		t.Fatal("epoch millis not recognized")
	}
	if m.Time.Nanosecond() != 123*1e6 {
		t.Errorf("epoch millis lost precision: %v", m.Time)
	}
	if _, ok := id.Identify([]string{"123456"}); ok {
		t.Error("6-digit number is not an epoch")
	}
}

func TestClone(t *testing.T) {
	id := New()
	tokens := strings.Fields("2016/02/23 09:00:31.000 up")
	id.Identify(tokens)
	c := id.Clone()
	if got := c.Stats(); got != (Stats{}) {
		t.Errorf("clone must start with empty stats: %+v", got)
	}
	if _, ok := c.Identify(tokens); !ok {
		t.Error("clone lost format table")
	}
}

func TestAmbiguousDayMonthOrder(t *testing.T) {
	id := New()
	// Day > 12 forces dd/MM interpretation.
	m, ok := id.Identify(strings.Fields("23/02/2016 09:00:31"))
	if !ok {
		t.Fatal("no match")
	}
	if m.Time.Month() != time.February || m.Time.Day() != 23 {
		t.Errorf("got %v, want Feb 23", m.Time)
	}
	// Ambiguous 02/03: MM/dd listed first wins, as documented. Use a
	// fresh identifier: the one above has cached dd/MM/yyyy, and cached
	// formats intentionally take priority for source consistency.
	m, ok = New().Identify(strings.Fields("02/03/2016 09:00:31"))
	if !ok {
		t.Fatal("no match")
	}
	if m.Time.Month() != time.February {
		t.Errorf("ambiguous date must resolve MM/dd first, got %v", m.Time)
	}
}

func TestRewriteLastColonToDot(t *testing.T) {
	tests := []struct{ in, want string }{
		{"09:00:31:123", "09:00:31.123"},
		{"09:00:31", "09:00:31"},
		{"09:00:31:12", "09:00:31:12"},
		{"09:00:31:abc", "09:00:31:abc"},
		{"abc", "abc"},
	}
	for _, tt := range tests {
		if got := rewriteLastColonToDot(tt.in); got != tt.want {
			t.Errorf("rewriteLastColonToDot(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestDefaultsAllParseTheirOwnOutput(t *testing.T) {
	// Round-trip: format a reference time with each layout, then parse
	// it back with the same format.
	ref := time.Date(2021, 11, 28, 13, 45, 59, 123e6, time.UTC)
	for _, f := range Defaults() {
		text := ref.Format(f.Layout)
		if f.pre != nil {
			// The ":SSS" formats cannot be produced by Format;
			// build the text by reversing the rewrite.
			text = strings.Replace(ref.Format(strings.Replace(f.Layout, ".000", ":000", 1)), ":000", ":123", 1)
		}
		got, ok := f.Parse(text)
		if !ok {
			t.Errorf("format %q cannot parse its own rendering %q", f.Spec, text)
			continue
		}
		if got.Hour() != 13 || got.Minute() != 45 {
			t.Errorf("format %q parsed %q to %v", f.Spec, text, got)
		}
	}
}
