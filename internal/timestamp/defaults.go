package timestamp

import "sync"

// DefaultFormatCount is the size of the predefined format knowledge base.
// The paper reports LogLens ships with 89 predefined timestamp formats
// (§VI-A); the table below is constructed to match.
const DefaultFormatCount = 89

// dateSpecs are the full-date components of the predefined table
// (13 styles, covering the heterogeneity examples of §III-A2).
var dateSpecs = []string{
	"yyyy/MM/dd",
	"yyyy-MM-dd",
	"yyyy.MM.dd",
	"MM/dd/yyyy",
	"MM-dd-yyyy",
	"dd/MM/yyyy",
	"dd-MM-yyyy",
	"dd.MM.yyyy",
	"yyyy/dd/MM",
	"MMM dd, yyyy",
	"MMM dd yyyy",
	"dd MMM yyyy",
	"yyyy MMM dd",
}

// partialDateSpecs omit the year, as in syslog-style prefixes
// (e.g. "MM/dd HH:mm:ss" from the paper's predefined examples).
var partialDateSpecs = []string{
	"MM/dd",
	"dd/MM",
	"MMM dd",
	"dd MMM",
}

// timeSpecs are the time-of-day components (5 styles, including the
// ":SSS" millisecond separator called out in the paper).
var timeSpecs = []string{
	"HH:mm:ss",
	"HH:mm:ss.SSS",
	"HH:mm:ss,SSS",
	"HH:mm:ss:SSS",
	"HH:mm",
}

// isoSpecs are single-token ISO-8601 variants.
var isoSpecs = []string{
	"yyyy-MM-dd'T'HH:mm:ss",
	"yyyy-MM-dd'T'HH:mm:ss.SSS",
	"yyyy-MM-dd'T'HH:mm:ssXXX",
	"yyyy-MM-dd'T'HH:mm:ss.SSSXXX",
}

var (
	defaultsOnce sync.Once
	defaults     []Format
)

// Defaults returns the predefined format table (89 formats). The slice is
// rebuilt per call so callers may reorder it freely.
func Defaults() []Format {
	defaultsOnce.Do(buildDefaults)
	out := make([]Format, len(defaults))
	copy(out, defaults)
	return out
}

func buildDefaults() {
	specs := make([]string, 0, DefaultFormatCount)
	for _, d := range dateSpecs {
		for _, t := range timeSpecs {
			specs = append(specs, d+" "+t)
		}
	}
	for _, d := range partialDateSpecs {
		for _, t := range timeSpecs {
			specs = append(specs, d+" "+t)
		}
	}
	specs = append(specs, isoSpecs...)

	defaults = make([]Format, 0, len(specs))
	for _, s := range specs {
		defaults = append(defaults, MustFormat(s))
	}
}
