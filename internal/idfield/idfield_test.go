package idfield

import (
	"fmt"
	"testing"

	"loglens/internal/logtypes"
)

func plog(pattern int, fields ...logtypes.Field) *logtypes.ParsedLog {
	return &logtypes.ParsedLog{PatternID: pattern, Fields: fields}
}

func f(name, value string) logtypes.Field { return logtypes.Field{Name: name, Value: value} }

func TestDiscoverSingleEventType(t *testing.T) {
	// Three patterns, all carrying the event ID in different fields;
	// other fields hold unrelated values.
	var logs []*logtypes.ParsedLog
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("evt-%d", i)
		logs = append(logs,
			plog(1, f("P1F1", id), f("P1F2", fmt.Sprintf("10.0.0.%d", i%3))),
			plog(2, f("P2F1", fmt.Sprintf("%d", i*7)), f("P2F2", id)),
			plog(3, f("P3F1", id)),
		)
	}
	d := Discover(logs, Config{})
	if len(d.FieldOf) != 3 {
		t.Fatalf("FieldOf = %v, want 3 patterns covered", d.FieldOf)
	}
	want := map[int]string{1: "P1F1", 2: "P2F2", 3: "P3F1"}
	for pid, field := range want {
		if d.FieldOf[pid] != field {
			t.Errorf("FieldOf[%d] = %q, want %q", pid, d.FieldOf[pid], field)
		}
	}
	if len(d.Groups) != 1 {
		t.Errorf("Groups = %v, want one covering list", d.Groups)
	}
	// EventID extraction.
	id, ok := d.EventID(plog(2, f("P2F1", "x"), f("P2F2", "evt-42")))
	if !ok || id != "evt-42" {
		t.Errorf("EventID = %q/%v", id, ok)
	}
	if _, ok := d.EventID(plog(9, f("a", "b"))); ok {
		t.Error("uncovered pattern must not yield an event ID")
	}
}

func TestDiscoverTwoEventTypes(t *testing.T) {
	// Two disjoint workflows: patterns {1,2} share IDs "a-*", patterns
	// {3,4} share IDs "b-*".
	var logs []*logtypes.ParsedLog
	for i := 0; i < 8; i++ {
		a := fmt.Sprintf("a-%d", i)
		b := fmt.Sprintf("b-%d", i)
		logs = append(logs,
			plog(1, f("P1F1", a)),
			plog(2, f("P2F1", a)),
			plog(3, f("P3F1", b), f("P3F2", "const")),
			plog(4, f("P4F1", b)),
		)
	}
	d := Discover(logs, Config{})
	if len(d.Groups) != 2 {
		t.Fatalf("Groups = %d, want 2 (one per workflow): %v", len(d.Groups), d.Groups)
	}
	if d.FieldOf[1] != "P1F1" || d.FieldOf[2] != "P2F1" || d.FieldOf[3] != "P3F1" || d.FieldOf[4] != "P4F1" {
		t.Errorf("FieldOf = %v", d.FieldOf)
	}
}

func TestDiscoverIgnoresConstantValues(t *testing.T) {
	// A constant value ("OK") occurs in every pattern but is a single
	// content value: it produces one list with support 1, rejected by
	// MinSupport; the real IDs have support >= 2.
	var logs []*logtypes.ParsedLog
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("evt-%d", i)
		logs = append(logs,
			plog(1, f("P1F1", id), f("P1F2", "OK")),
			plog(2, f("P2F1", id), f("P2F2", "OK")),
		)
	}
	d := Discover(logs, Config{})
	if d.FieldOf[1] != "P1F1" || d.FieldOf[2] != "P2F1" {
		t.Errorf("FieldOf = %v: constant field must not win", d.FieldOf)
	}
}

func TestDiscoverNoLinkage(t *testing.T) {
	// Every value unique to one log: nothing links patterns.
	var logs []*logtypes.ParsedLog
	for i := 0; i < 6; i++ {
		logs = append(logs,
			plog(1, f("P1F1", fmt.Sprintf("x-%d", i))),
			plog(2, f("P2F1", fmt.Sprintf("y-%d", i))),
		)
	}
	d := Discover(logs, Config{})
	if len(d.FieldOf) != 0 {
		t.Errorf("FieldOf = %v, want empty", d.FieldOf)
	}
	if d.Covers(1) {
		t.Error("Covers(1) must be false")
	}
}

func TestDiscoverEmpty(t *testing.T) {
	d := Discover(nil, Config{})
	if len(d.FieldOf) != 0 || len(d.Groups) != 0 {
		t.Errorf("empty input: %+v", d)
	}
}
