// Package idfield implements automatic event-ID-field discovery (§IV-A1):
// finding, with no domain knowledge, which parsed-log field carries the
// identifier linking the multiple heterogeneous logs of one event. The
// algorithm is the paper's Apriori-style two-step: build a reverse index
// from field content to the (log pattern, field) pairs it occurs in, then
// accept content-sharing pair lists that tie patterns together.
package idfield

import (
	"sort"
	"strconv"
	"strings"

	"loglens/internal/logtypes"
)

// PatternField names one field of one log pattern.
type PatternField struct {
	PatternID int
	Field     string
}

// Discovery is the result of ID-field discovery.
type Discovery struct {
	// FieldOf maps each covered pattern ID to the field that carries
	// the event ID in logs of that pattern.
	FieldOf map[int]string

	// Groups are the accepted (pattern, field) lists, each the ID
	// linkage of one event type; Groups[i] ties together the patterns
	// of one workflow. With a single event type spanning every pattern
	// this is one list covering all patterns, the paper's exact
	// acceptance condition.
	Groups [][]PatternField
}

// Covers reports whether discovery found an ID field for the pattern.
func (d Discovery) Covers(patternID int) bool {
	_, ok := d.FieldOf[patternID]
	return ok
}

// Config tunes discovery.
type Config struct {
	// MinPatterns is the minimum number of distinct patterns a content
	// must link before its pair list is considered (default 2: an ID
	// must tie at least two logs of different patterns together).
	MinPatterns int

	// MinSupport is the minimum number of distinct content values that
	// must share a pair list before it is accepted (default 2),
	// filtering out coincidental one-off collisions.
	MinSupport int

	// MaxLogsPerContent excludes contents occurring in more logs than
	// this (default 64). Event IDs are event-scoped — each value
	// appears in the handful of logs of one event — while server IPs,
	// status codes, and other non-identifying values repeat without
	// bound.
	MaxLogsPerContent int
}

func (c *Config) setDefaults() {
	if c.MinPatterns == 0 {
		c.MinPatterns = 2
	}
	if c.MinSupport == 0 {
		c.MinSupport = 2
	}
	if c.MaxLogsPerContent == 0 {
		c.MaxLogsPerContent = 64
	}
}

// Discover runs ID-field discovery over a training corpus of parsed logs.
func Discover(logs []*logtypes.ParsedLog, cfg Config) Discovery {
	cfg.setDefaults()

	// Step 1: reverse index — content value -> set of (pattern, field)
	// pairs in which it occurs, plus its total log count (§IV-A1
	// "Building a reverse index").
	type entry struct {
		pairs map[PatternField]struct{}
		logs  int
	}
	index := make(map[string]*entry)
	patterns := make(map[int]struct{})
	for _, l := range logs {
		patterns[l.PatternID] = struct{}{}
		for _, f := range l.Fields {
			pf := PatternField{PatternID: l.PatternID, Field: f.Name}
			e, ok := index[f.Value]
			if !ok {
				e = &entry{pairs: make(map[PatternField]struct{})}
				index[f.Value] = e
			}
			e.pairs[pf] = struct{}{}
			e.logs++
		}
	}

	// Step 2: group contents by their canonical pair list and count
	// support (§IV-A1 "ID Field discovery"). Contents occurring in too
	// many logs cannot identify a single event and are excluded.
	type candidate struct {
		pairs   []PatternField
		support int
	}
	byKey := make(map[string]*candidate)
	for _, e := range index {
		if e.logs > cfg.MaxLogsPerContent {
			continue
		}
		set := e.pairs
		pairs := make([]PatternField, 0, len(set))
		seen := make(map[int]struct{})
		for pf := range set {
			pairs = append(pairs, pf)
			seen[pf.PatternID] = struct{}{}
		}
		if len(seen) < cfg.MinPatterns {
			continue
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].PatternID != pairs[j].PatternID {
				return pairs[i].PatternID < pairs[j].PatternID
			}
			return pairs[i].Field < pairs[j].Field
		})
		key := pairKey(pairs)
		if c, ok := byKey[key]; ok {
			c.support++
			continue
		}
		byKey[key] = &candidate{pairs: pairs, support: 1}
	}

	// Rank candidates: highest support first, then wider pattern
	// coverage, then the canonical key for determinism.
	cands := make([]*candidate, 0, len(byKey))
	for _, c := range byKey {
		if c.support >= cfg.MinSupport {
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].support != cands[j].support {
			return cands[i].support > cands[j].support
		}
		if len(cands[i].pairs) != len(cands[j].pairs) {
			return len(cands[i].pairs) > len(cands[j].pairs)
		}
		return pairKey(cands[i].pairs) < pairKey(cands[j].pairs)
	})

	// Accept candidates greedily: each pattern gets at most one ID
	// field; a candidate is accepted if it claims at least one pattern
	// not yet covered and does not contradict existing assignments.
	d := Discovery{FieldOf: make(map[int]string)}
	for _, c := range cands {
		assign := make(map[int]string)
		conflict := false
		fresh := false
		for _, pf := range c.pairs {
			cur, dup := assign[pf.PatternID]
			if dup && cur != pf.Field {
				// The candidate itself is ambiguous for this
				// pattern; keep the first (canonical) field.
				continue
			}
			if prev, ok := d.FieldOf[pf.PatternID]; ok {
				if prev != pf.Field {
					conflict = true
					break
				}
				assign[pf.PatternID] = pf.Field
				continue
			}
			assign[pf.PatternID] = pf.Field
			fresh = true
		}
		if conflict || !fresh {
			continue
		}
		group := make([]PatternField, 0, len(assign))
		for pid, field := range assign {
			d.FieldOf[pid] = field
			group = append(group, PatternField{PatternID: pid, Field: field})
		}
		sort.Slice(group, func(i, j int) bool { return group[i].PatternID < group[j].PatternID })
		d.Groups = append(d.Groups, group)
	}
	return d
}

// EventID extracts the event ID of a parsed log under the discovery, and
// whether the log participates in sequence tracking at all.
func (d Discovery) EventID(l *logtypes.ParsedLog) (string, bool) {
	field, ok := d.FieldOf[l.PatternID]
	if !ok {
		return "", false
	}
	return l.FieldValue(field)
}

func pairKey(pairs []PatternField) string {
	var b strings.Builder
	for _, pf := range pairs {
		b.WriteString(pf.Field)
		b.WriteByte('@')
		b.WriteString(strconv.Itoa(pf.PatternID))
		b.WriteByte(';')
	}
	return b.String()
}
