package preprocess

import (
	"reflect"
	"testing"
	"time"

	"loglens/internal/datatype"
	"loglens/internal/timestamp"
	"loglens/internal/tokenize"
)

func TestProcessUnifiesTimestamp(t *testing.T) {
	pp := New(nil, nil)
	r := pp.Process("Feb 23, 2016 09:00:31 10.0.0.1 login user1")
	if !r.HasTime {
		t.Fatal("timestamp not identified")
	}
	want := time.Date(2016, 2, 23, 9, 0, 31, 0, time.UTC)
	if !r.Time.Equal(want) {
		t.Errorf("time = %v", r.Time)
	}
	// The 4-token "Feb 23, 2016 09:00:31" collapses into one unified
	// token.
	wantTokens := []string{"2016/02/23 09:00:31.000", "10.0.0.1", "login", "user1"}
	if !reflect.DeepEqual(r.Tokens, wantTokens) {
		t.Errorf("tokens = %v", r.Tokens)
	}
	wantTypes := []datatype.Type{datatype.DateTime, datatype.IP, datatype.Word, datatype.NotSpace}
	if !reflect.DeepEqual(r.Types, wantTypes) {
		t.Errorf("types = %v", r.Types)
	}
}

func TestProcessNoTimestamp(t *testing.T) {
	pp := New(nil, nil)
	r := pp.Process("plain words 42 here")
	if r.HasTime {
		t.Error("no timestamp expected")
	}
	if len(r.Tokens) != 4 {
		t.Errorf("tokens = %v", r.Tokens)
	}
}

func TestProcessAlreadyUnified(t *testing.T) {
	pp := New(nil, nil)
	line := "2016/02/23 09:00:31.000 x"
	r := pp.Process(line)
	if !r.HasTime {
		t.Fatal("no time")
	}
	if len(r.Tokens) != 2 || r.Tokens[0] != "2016/02/23 09:00:31.000" {
		t.Errorf("tokens = %v", r.Tokens)
	}
}

func TestSignature(t *testing.T) {
	pp := New(nil, nil)
	r := pp.Process("2016/02/23 09:00:31.000 127.0.0.1 login user1")
	if got := r.Signature(); got != "DATETIME IP WORD NOTSPACE" {
		t.Errorf("signature = %q", got)
	}
	if (Result{}).Signature() != "" {
		t.Error("empty signature")
	}
}

func TestCustomComponents(t *testing.T) {
	tok := tokenize.New(tokenize.WithRules(tokenize.MustRule(`([0-9]+)KB`, "$1 KB")))
	ts := timestamp.New(timestamp.WithoutDefaults(), timestamp.WithFormats(timestamp.MustFormat("yyyy.MM.dd.HH.mm.ss")))
	pp := New(tok, ts)
	r := pp.Process("2016.02.23.09.00.31 wrote 123KB")
	if !r.HasTime {
		t.Error("custom format not identified")
	}
	if len(r.Tokens) != 4 { // DATETIME, wrote, 123, KB
		t.Errorf("tokens = %v", r.Tokens)
	}
}

func TestCloneIndependentCache(t *testing.T) {
	pp := New(nil, nil)
	pp.Process("2016/02/23 09:00:31.000 warm the cache")
	c := pp.Clone()
	if got := c.TimestampStats(); got != (timestamp.Stats{}) {
		t.Errorf("clone stats = %+v, want zero", got)
	}
	r := c.Process("2016/02/23 09:00:32.000 still works")
	if !r.HasTime {
		t.Error("clone lost formats")
	}
}
