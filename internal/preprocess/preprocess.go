// Package preprocess chains LogLens log preprocessing (§III-A1 and
// §III-A2): tokenization, timestamp identification with unification into
// the DATETIME format, and per-token datatype detection. Both the model
// builder (LogMine clustering) and the stateless parser run logs through
// the same preprocessor so that signatures agree.
package preprocess

import (
	"time"

	"loglens/internal/datatype"
	"loglens/internal/timestamp"
	"loglens/internal/tokenize"
)

// Result is a preprocessed log: tokens with the identified timestamp span
// replaced by a single unified DATETIME token, the per-token datatypes,
// and the extracted timestamp.
type Result struct {
	// Tokens is the token sequence after timestamp unification.
	Tokens []string
	// Types holds the detected datatype of each token.
	Types []datatype.Type
	// Time is the embedded timestamp, when found.
	Time time.Time
	// HasTime reports whether a timestamp was identified.
	HasTime bool
}

// Preprocessor applies tokenization, timestamp unification, and datatype
// detection. It is NOT safe for concurrent use (the timestamp identifier
// keeps a mutable cache); Clone one per goroutine.
type Preprocessor struct {
	tok *tokenize.Tokenizer
	ts  *timestamp.Identifier
}

// New builds a Preprocessor. Nil arguments select defaults (whitespace
// tokenizer; the 89 predefined timestamp formats).
func New(tok *tokenize.Tokenizer, ts *timestamp.Identifier) *Preprocessor {
	if tok == nil {
		tok = tokenize.New()
	}
	if ts == nil {
		ts = timestamp.New()
	}
	return &Preprocessor{tok: tok, ts: ts}
}

// Clone returns an independent Preprocessor sharing the tokenizer (which
// is stateless) but with a fresh timestamp-identifier cache.
func (p *Preprocessor) Clone() *Preprocessor {
	return &Preprocessor{tok: p.tok, ts: p.ts.Clone()}
}

// TimestampStats exposes the identifier's work counters.
func (p *Preprocessor) TimestampStats() timestamp.Stats { return p.ts.Stats() }

// Process preprocesses one raw log line. The returned Result owns fresh
// slices; the hot path uses ProcessScratch to reuse buffers instead.
func (p *Preprocessor) Process(line string) Result {
	tokens := p.tok.Split(line)
	res := Result{Tokens: tokens}
	if m, ok := p.ts.Identify(tokens); ok {
		res.Time = m.Time
		res.HasTime = true
		if m.Tokens != 1 || tokens[m.Start] != m.Unified() {
			// Replace the matched span with one unified token.
			merged := make([]string, 0, len(tokens)-m.Tokens+1)
			merged = append(merged, tokens[:m.Start]...)
			merged = append(merged, m.Unified())
			merged = append(merged, tokens[m.Start+m.Tokens:]...)
			res.Tokens = merged
		}
	}
	res.Types = make([]datatype.Type, len(res.Tokens))
	for i, tok := range res.Tokens {
		res.Types[i] = datatype.Detect(tok)
	}
	return res
}

// Scratch holds reusable preprocessing buffers for ProcessScratch. The
// zero value is ready to use. A Scratch belongs to one goroutine.
type Scratch struct {
	tok    tokenize.Scratch
	merged []string
	types  []datatype.Type
	uni    []byte
}

// ProcessScratch preprocesses one raw log line into s, reusing its
// buffers. The returned Result's Tokens and Types alias s and are valid
// until the next ProcessScratch call on the same Scratch. When the line's
// timestamp is already in the unified layout (as the datagen corpus
// emits), the unified token aliases the line and the call is
// allocation-free once the buffers have warmed up.
func (p *Preprocessor) ProcessScratch(line string, s *Scratch) Result {
	tokens := p.tok.SplitScratch(line, &s.tok)
	res := Result{Tokens: tokens}
	if m, ok := p.ts.Identify(tokens); ok {
		res.Time = m.Time
		res.HasTime = true
		s.uni = timestamp.AppendUnified(s.uni[:0], m.Time)
		if m.Tokens != 1 || tokens[m.Start] != string(s.uni) {
			// Replace the matched span with one unified token. If the
			// raw span already spells the unified layout, alias the line
			// instead of allocating the rendered string.
			uniTok := ""
			last := m.Start + m.Tokens - 1
			if st, ls := s.tok.TokenStart(m.Start), s.tok.TokenStart(last); st >= 0 && ls >= 0 {
				end := ls + len(tokens[last])
				if cand := line[st:end]; cand == string(s.uni) {
					uniTok = cand
				}
			}
			if uniTok == "" {
				uniTok = string(s.uni)
			}
			s.merged = s.merged[:0]
			s.merged = append(s.merged, tokens[:m.Start]...)
			s.merged = append(s.merged, uniTok)
			s.merged = append(s.merged, tokens[m.Start+m.Tokens:]...)
			res.Tokens = s.merged
		}
	}
	s.types = s.types[:0]
	for _, tok := range res.Tokens {
		s.types = append(s.types, datatype.Detect(tok))
	}
	res.Types = s.types
	return res
}

// Signature returns the log-signature: the space-joined datatype names of
// the preprocessed tokens (§III-B step 1).
func (r Result) Signature() string {
	if len(r.Types) == 0 {
		return ""
	}
	n := 0
	for _, t := range r.Types {
		n += len(t.String()) + 1
	}
	return string(r.AppendSignature(make([]byte, 0, n)))
}

// AppendSignature appends the log-signature to dst and returns the
// extended buffer, letting hot-path callers build signatures without a
// per-line string allocation.
func (r Result) AppendSignature(dst []byte) []byte {
	for i, t := range r.Types {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = append(dst, t.String()...)
	}
	return dst
}
