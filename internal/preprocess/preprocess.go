// Package preprocess chains LogLens log preprocessing (§III-A1 and
// §III-A2): tokenization, timestamp identification with unification into
// the DATETIME format, and per-token datatype detection. Both the model
// builder (LogMine clustering) and the stateless parser run logs through
// the same preprocessor so that signatures agree.
package preprocess

import (
	"time"

	"loglens/internal/datatype"
	"loglens/internal/timestamp"
	"loglens/internal/tokenize"
)

// Result is a preprocessed log: tokens with the identified timestamp span
// replaced by a single unified DATETIME token, the per-token datatypes,
// and the extracted timestamp.
type Result struct {
	// Tokens is the token sequence after timestamp unification.
	Tokens []string
	// Types holds the detected datatype of each token.
	Types []datatype.Type
	// Time is the embedded timestamp, when found.
	Time time.Time
	// HasTime reports whether a timestamp was identified.
	HasTime bool
}

// Preprocessor applies tokenization, timestamp unification, and datatype
// detection. It is NOT safe for concurrent use (the timestamp identifier
// keeps a mutable cache); Clone one per goroutine.
type Preprocessor struct {
	tok *tokenize.Tokenizer
	ts  *timestamp.Identifier
}

// New builds a Preprocessor. Nil arguments select defaults (whitespace
// tokenizer; the 89 predefined timestamp formats).
func New(tok *tokenize.Tokenizer, ts *timestamp.Identifier) *Preprocessor {
	if tok == nil {
		tok = tokenize.New()
	}
	if ts == nil {
		ts = timestamp.New()
	}
	return &Preprocessor{tok: tok, ts: ts}
}

// Clone returns an independent Preprocessor sharing the tokenizer (which
// is stateless) but with a fresh timestamp-identifier cache.
func (p *Preprocessor) Clone() *Preprocessor {
	return &Preprocessor{tok: p.tok, ts: p.ts.Clone()}
}

// TimestampStats exposes the identifier's work counters.
func (p *Preprocessor) TimestampStats() timestamp.Stats { return p.ts.Stats() }

// Process preprocesses one raw log line.
func (p *Preprocessor) Process(line string) Result {
	tokens := p.tok.Split(line)
	res := Result{Tokens: tokens}
	if m, ok := p.ts.Identify(tokens); ok {
		res.Time = m.Time
		res.HasTime = true
		if m.Tokens != 1 || tokens[m.Start] != m.Unified() {
			// Replace the matched span with one unified token.
			merged := make([]string, 0, len(tokens)-m.Tokens+1)
			merged = append(merged, tokens[:m.Start]...)
			merged = append(merged, m.Unified())
			merged = append(merged, tokens[m.Start+m.Tokens:]...)
			res.Tokens = merged
		}
	}
	res.Types = make([]datatype.Type, len(res.Tokens))
	for i, tok := range res.Tokens {
		res.Types[i] = datatype.Detect(tok)
	}
	return res
}

// Signature returns the log-signature: the space-joined datatype names of
// the preprocessed tokens (§III-B step 1).
func (r Result) Signature() string {
	if len(r.Types) == 0 {
		return ""
	}
	n := 0
	for _, t := range r.Types {
		n += len(t.String()) + 1
	}
	buf := make([]byte, 0, n)
	for i, t := range r.Types {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, t.String()...)
	}
	return string(buf)
}
