package preprocess

import (
	"reflect"
	"testing"
)

// TestProcessScratchMatchesProcess: the scratch path must produce the
// same tokens, types, and timestamp as the allocating path.
func TestProcessScratchMatchesProcess(t *testing.T) {
	p := New(nil, nil)
	var s Scratch
	lines := []string{
		"",
		"no timestamp here at all",
		"2016/02/23 09:00:31.000 10.0.0.1 job jb-1 completed rc 0",
		"23/Feb/2016:09:00:31 GET /index.html 200",
		"Feb 23 09:00:31 host kernel: eth0 link up",
	}
	for _, line := range lines {
		want := p.Process(line)
		got := p.ProcessScratch(line, &s)
		if !reflect.DeepEqual(normalize(want), normalize(got)) {
			t.Errorf("ProcessScratch(%q) = %+v, Process = %+v", line, got, want)
		}
	}
}

// normalize maps empty slices to nil so DeepEqual ignores the
// nil-vs-empty distinction between the two paths.
func normalize(r Result) Result {
	if len(r.Tokens) == 0 {
		r.Tokens = nil
	}
	if len(r.Types) == 0 {
		r.Types = nil
	}
	return r
}

// TestProcessScratchZeroAllocs: lines whose timestamp is already in the
// unified layout — the steady-state shape after datagen or upstream
// unification — must preprocess without allocating.
func TestProcessScratchZeroAllocs(t *testing.T) {
	p := New(nil, nil)
	var s Scratch
	line := "2016/02/23 09:00:31.000 10.0.0.1 job jb-1 completed rc 0"
	p.ProcessScratch(line, &s) // warm buffers and the timestamp cache
	allocs := testing.AllocsPerRun(100, func() {
		r := p.ProcessScratch(line, &s)
		if len(r.Tokens) != 7 || !r.HasTime {
			t.Fatalf("unexpected result: %+v", r)
		}
	})
	if allocs != 0 {
		t.Fatalf("ProcessScratch allocates %v per line, want 0", allocs)
	}
}

// TestAppendSignatureMatchesSignature: the append API renders the same
// signature as the allocating one.
func TestAppendSignatureMatchesSignature(t *testing.T) {
	p := New(nil, nil)
	r := p.Process("2016/02/23 09:00:31.000 10.0.0.1 job jb-1 completed rc 0")
	if got := string(r.AppendSignature(nil)); got != r.Signature() {
		t.Fatalf("AppendSignature = %q, Signature = %q", got, r.Signature())
	}
	var empty Result
	if got := string(empty.AppendSignature(nil)); got != "" {
		t.Fatalf("empty AppendSignature = %q", got)
	}
}
