package tokenize

import (
	"reflect"
	"strings"
	"testing"
)

// TestAppendSplitMatchesSplit: the append-into-buffer API and the
// allocating API must produce identical tokens, with and without rules.
func TestAppendSplitMatchesSplit(t *testing.T) {
	lines := []string{
		"",
		"   ",
		"one",
		"  a  b\tc\r\n",
		"2016/02/23 09:00:31.000 10.0.0.1 job jb-1 completed rc 0",
		"disk full 123KB left",
	}
	plain := New()
	ruled := New(WithRules(MustRule(`(\d+)(KB|MB)`, "$1 $2")))
	for _, tok := range []*Tokenizer{plain, ruled} {
		var buf []string
		var s Scratch
		for _, line := range lines {
			want := tok.Split(line)
			buf = tok.AppendSplit(buf[:0], line)
			if !sameTokens(want, buf) {
				t.Errorf("AppendSplit(%q) = %v, Split = %v", line, buf, want)
			}
			got := tok.SplitScratch(line, &s)
			if !sameTokens(want, got) {
				t.Errorf("SplitScratch(%q) = %v, Split = %v", line, got, want)
			}
		}
	}
}

func sameTokens(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDelimiterTable: every byte of a multi-character delimiter set
// splits, including bytes of multi-byte runes (matching the previous
// IndexByte semantics).
func TestDelimiterTable(t *testing.T) {
	tok := New(WithDelimiters(" ,;"))
	got := tok.Split("a,b;c d,,e")
	want := []string{"a", "b", "c", "d", "e"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Split = %v, want %v", got, want)
	}
}

// TestSplitScratchSpans: on the no-rules path every token records its
// byte offset in the line; with rules, rewritten tokens report -1.
func TestSplitScratchSpans(t *testing.T) {
	tok := New()
	var s Scratch
	line := "  alpha beta\tgamma"
	toks := tok.SplitScratch(line, &s)
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	for i, want := range toks {
		start := s.TokenStart(i)
		if start < 0 || line[start:start+len(want)] != want {
			t.Errorf("token %d: start %d does not locate %q in %q", i, start, want, line)
		}
	}
	if s.TokenStart(3) != -1 || s.TokenStart(-1) != -1 {
		t.Errorf("out-of-range TokenStart should be -1")
	}

	ruled := New(WithRules(MustRule(`(\d+)(KB)`, "$1 $2")))
	toks = ruled.SplitScratch("disk 123KB", &s)
	if !sameTokens(toks, []string{"disk", "123", "KB"}) {
		t.Fatalf("ruled tokens = %v", toks)
	}
	for i := range toks {
		if s.TokenStart(i) != -1 {
			t.Errorf("rules path token %d: TokenStart = %d, want -1", i, s.TokenStart(i))
		}
	}
}

// TestSplitScratchZeroAllocs: the no-rules scratch path must not
// allocate once warmed up — the tokenizer half of the PR-5 hot-path
// budget, enforced in go test so a regression fails before any
// benchmark runs.
func TestSplitScratchZeroAllocs(t *testing.T) {
	tok := New()
	var s Scratch
	line := "2016/02/23 09:00:31.000 10.0.0.1 job jb-1 scheduled on host h9"
	tok.SplitScratch(line, &s) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		toks := tok.SplitScratch(line, &s)
		if len(toks) != 9 {
			t.Fatalf("tokens = %d", len(toks))
		}
	})
	if allocs != 0 {
		t.Fatalf("SplitScratch allocates %v per line on the no-rules path, want 0", allocs)
	}
}

// TestAppendSplitReusesBuffer: AppendSplit into a warmed caller buffer
// is allocation-free on the no-rules path.
func TestAppendSplitReusesBuffer(t *testing.T) {
	tok := New()
	line := strings.Repeat("tok ", 16)
	buf := tok.AppendSplit(nil, line)
	allocs := testing.AllocsPerRun(100, func() {
		buf = tok.AppendSplit(buf[:0], line)
	})
	if allocs != 0 {
		t.Fatalf("AppendSplit allocates %v with a warm buffer, want 0", allocs)
	}
}
