package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitWhitespace(t *testing.T) {
	tok := New()
	tests := []struct {
		in   string
		want []string
	}{
		{"Connect DB 127.0.0.1 user abc123", []string{"Connect", "DB", "127.0.0.1", "user", "abc123"}},
		{"  leading and   trailing  ", []string{"leading", "and", "trailing"}},
		{"", nil},
		{"   ", nil},
		{"one", []string{"one"}},
		{"tab\tseparated\tvalues", []string{"tab", "separated", "values"}},
		{"mixed \t whitespace\nnewline", []string{"mixed", "whitespace", "newline"}},
	}
	for _, tt := range tests {
		got := tok.Split(tt.in)
		if len(got) == 0 && len(tt.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Split(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestCustomDelimiters(t *testing.T) {
	tok := New(WithDelimiters(",; "))
	got := tok.Split("a,b;c d,,e")
	want := []string{"a", "b", "c", "d", "e"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSplitRule(t *testing.T) {
	// The paper's example: "123KB" -> "123 KB".
	rule := MustRule(`([0-9]+)(KB|MB|GB)`, "$1 $2")
	tok := New(WithRules(rule))
	got := tok.Split("read 123KB from disk")
	want := []string{"read", "123", "KB", "from", "disk"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSplitRuleOnlyWholeToken(t *testing.T) {
	rule := MustRule(`([0-9]+)KB`, "$1 KB")
	tok := New(WithRules(rule))
	// "x123KB" does not match the anchored rule, so it stays intact.
	got := tok.Split("x123KB 45KB")
	want := []string{"x123KB", "45", "KB"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	tok := New(WithRules(
		MustRule(`([0-9]+)ms`, "$1 ms"),
		MustRule(`([0-9]+)m`, "$1 m"),
	))
	got := tok.Split("took 15ms 3m")
	want := []string{"took", "15", "ms", "3", "m"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNewRuleInvalid(t *testing.T) {
	if _, err := NewRule("[bad", "x"); err == nil {
		t.Error("NewRule with invalid pattern should fail")
	}
	if _, err := NewRule("[0-9]+", "$0"); err != nil {
		t.Errorf("NewRule with valid pattern failed: %v", err)
	}
}

// Property: the concatenation of tokens equals the input with delimiters
// removed (when no rules are configured).
func TestSplitPreservesContent(t *testing.T) {
	tok := New()
	f := func(s string) bool {
		joined := strings.Join(tok.Split(s), "")
		stripped := strings.Map(func(r rune) rune {
			if strings.ContainsRune(DefaultDelimiters, r) {
				return -1
			}
			return r
		}, s)
		return joined == stripped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: no token contains a delimiter, and no token is empty.
func TestSplitTokensClean(t *testing.T) {
	tok := New()
	f := func(s string) bool {
		for _, tk := range tok.Split(s) {
			if tk == "" || strings.ContainsAny(tk, DefaultDelimiters) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
