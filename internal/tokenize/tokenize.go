// Package tokenize implements LogLens log preprocessing (§III-A1): a log
// line is split into tokens on a configurable delimiter set, optionally
// after user-supplied RegEx rules have split compound tokens into
// sub-tokens (e.g. "123KB" -> "123 KB").
package tokenize

import (
	"fmt"
	"regexp"
	"strings"
)

// SplitRule rewrites tokens that match Pattern by inserting separators,
// producing multiple sub-tokens. Replacement may reference capture groups
// with $1, $2, ... as in regexp.Regexp.ReplaceAllString. The rule is
// applied only when the whole token matches Pattern.
type SplitRule struct {
	Pattern     *regexp.Regexp
	Replacement string
}

// MustRule compiles a SplitRule and panics on a bad pattern. Intended for
// static rule tables.
func MustRule(pattern, replacement string) SplitRule {
	return SplitRule{
		Pattern:     regexp.MustCompile("^(?:" + pattern + ")$"),
		Replacement: replacement,
	}
}

// NewRule compiles a SplitRule, anchoring the pattern so it must match the
// entire token.
func NewRule(pattern, replacement string) (SplitRule, error) {
	re, err := regexp.Compile("^(?:" + pattern + ")$")
	if err != nil {
		return SplitRule{}, fmt.Errorf("tokenize: compile split rule %q: %w", pattern, err)
	}
	return SplitRule{Pattern: re, Replacement: replacement}, nil
}

// Tokenizer splits log lines into tokens. The zero value is not usable;
// construct one with New.
type Tokenizer struct {
	delimiters string
	rules      []SplitRule

	// isDelim is the per-byte delimiter lookup table, built once in New.
	// Delimiter sets are byte sets in practice (ASCII whitespace and
	// punctuation); multi-byte runes in the delimiter string fall back to
	// marking their constituent bytes, which matches the previous
	// IndexByte semantics exactly.
	isDelim [256]bool
}

// Option configures a Tokenizer.
type Option func(*Tokenizer)

// WithDelimiters overrides the default whitespace delimiter set. Each rune
// in the string is an individual delimiter character.
func WithDelimiters(delims string) Option {
	return func(t *Tokenizer) { t.delimiters = delims }
}

// WithRules appends user RegEx sub-token split rules, applied in order to
// every token produced by delimiter splitting.
func WithRules(rules ...SplitRule) Option {
	return func(t *Tokenizer) { t.rules = append(t.rules, rules...) }
}

// DefaultDelimiters is the default delimiter set: ASCII whitespace.
const DefaultDelimiters = " \t\r\n\v\f"

// New constructs a Tokenizer with the default whitespace delimiters,
// customized by the supplied options.
func New(opts ...Option) *Tokenizer {
	t := &Tokenizer{delimiters: DefaultDelimiters}
	for _, opt := range opts {
		opt(t)
	}
	for i := 0; i < len(t.delimiters); i++ {
		t.isDelim[t.delimiters[i]] = true
	}
	return t
}

// HasRules reports whether any sub-token split rules are installed. When
// false, every token produced by Split/AppendSplit is a substring of the
// input line.
func (t *Tokenizer) HasRules() bool { return len(t.rules) > 0 }

// Split tokenizes one log line. Empty tokens are dropped, so runs of
// delimiters collapse. The returned slice is freshly allocated; the hot
// path uses AppendSplit or SplitScratch to reuse buffers instead.
func (t *Tokenizer) Split(line string) []string {
	return t.AppendSplit(nil, line)
}

// AppendSplit tokenizes line and appends the tokens to dst, returning the
// extended slice. With no split rules installed the appended strings are
// substrings of line and the only allocations are dst growth, so a caller
// reusing dst across lines pays zero steady-state allocations.
func (t *Tokenizer) AppendSplit(dst []string, line string) []string {
	if len(t.rules) == 0 {
		dst, _ = t.appendSplitSpans(dst, nil, false, line)
		return dst
	}
	return t.appendSplitRules(dst, line)
}

// Scratch holds reusable tokenization state for SplitScratch. The zero
// value is ready to use. A Scratch belongs to one goroutine.
type Scratch struct {
	tokens []string
	// starts[i] is the byte offset of tokens[i] in the input line, or -1
	// when the token was rewritten by a split rule and is not a substring
	// of the line.
	starts []int
}

// TokenStart returns the byte offset of token i in the line last passed
// to SplitScratch, or -1 when the token was produced by a split rule and
// is not a substring of that line.
func (s *Scratch) TokenStart(i int) int {
	if i < 0 || i >= len(s.starts) {
		return -1
	}
	return s.starts[i]
}

// SplitScratch tokenizes line into s, reusing its buffers. The returned
// slice aliases s and is valid until the next SplitScratch call on the
// same Scratch. On the no-rules path the call is allocation-free once the
// buffers have warmed up.
func (t *Tokenizer) SplitScratch(line string, s *Scratch) []string {
	if len(t.rules) == 0 {
		s.tokens, s.starts = t.appendSplitSpans(s.tokens[:0], s.starts[:0], true, line)
		return s.tokens
	}
	s.tokens = t.appendSplitRules(s.tokens[:0], line)
	s.starts = s.starts[:0]
	for range s.tokens {
		s.starts = append(s.starts, -1)
	}
	return s.tokens
}

// appendSplitSpans is the delimiter-table splitter: one pass over line,
// appending each token to dst and, when wantStarts is set, its byte
// offset to starts.
func (t *Tokenizer) appendSplitSpans(dst []string, starts []int, wantStarts bool, line string) ([]string, []int) {
	start := -1
	for i := 0; i < len(line); i++ {
		if t.isDelim[line[i]] {
			if start >= 0 {
				dst = append(dst, line[start:i])
				if wantStarts {
					starts = append(starts, start)
				}
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		dst = append(dst, line[start:])
		if wantStarts {
			starts = append(starts, start)
		}
	}
	return dst, starts
}

// appendSplitRules splits on delimiters and runs each raw token through
// the rule table. Tokens no rule matches are appended as-is (substrings
// of line); rewritten tokens allocate their expansion.
func (t *Tokenizer) appendSplitRules(dst []string, line string) []string {
	start := -1
	for i := 0; i < len(line); i++ {
		if t.isDelim[line[i]] {
			if start >= 0 {
				dst = t.appendRules(dst, line[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		dst = t.appendRules(dst, line[start:])
	}
	return dst
}

// appendRules applies the first matching rule to the token and re-splits
// the replacement on spaces, appending the results to dst. Rules are not
// applied recursively to their own output to guarantee termination.
func (t *Tokenizer) appendRules(dst []string, tok string) []string {
	for i := range t.rules {
		r := &t.rules[i]
		if !r.Pattern.MatchString(tok) {
			continue
		}
		expanded := r.Pattern.ReplaceAllString(tok, r.Replacement)
		parts := strings.Fields(expanded)
		if len(parts) == 0 {
			return append(dst, tok)
		}
		return append(dst, parts...)
	}
	return append(dst, tok)
}
