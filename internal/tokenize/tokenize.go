// Package tokenize implements LogLens log preprocessing (§III-A1): a log
// line is split into tokens on a configurable delimiter set, optionally
// after user-supplied RegEx rules have split compound tokens into
// sub-tokens (e.g. "123KB" -> "123 KB").
package tokenize

import (
	"fmt"
	"regexp"
	"strings"
)

// SplitRule rewrites tokens that match Pattern by inserting separators,
// producing multiple sub-tokens. Replacement may reference capture groups
// with $1, $2, ... as in regexp.Regexp.ReplaceAllString. The rule is
// applied only when the whole token matches Pattern.
type SplitRule struct {
	Pattern     *regexp.Regexp
	Replacement string
}

// MustRule compiles a SplitRule and panics on a bad pattern. Intended for
// static rule tables.
func MustRule(pattern, replacement string) SplitRule {
	return SplitRule{
		Pattern:     regexp.MustCompile("^(?:" + pattern + ")$"),
		Replacement: replacement,
	}
}

// NewRule compiles a SplitRule, anchoring the pattern so it must match the
// entire token.
func NewRule(pattern, replacement string) (SplitRule, error) {
	re, err := regexp.Compile("^(?:" + pattern + ")$")
	if err != nil {
		return SplitRule{}, fmt.Errorf("tokenize: compile split rule %q: %w", pattern, err)
	}
	return SplitRule{Pattern: re, Replacement: replacement}, nil
}

// Tokenizer splits log lines into tokens. The zero value is not usable;
// construct one with New.
type Tokenizer struct {
	delimiters string
	rules      []SplitRule
}

// Option configures a Tokenizer.
type Option func(*Tokenizer)

// WithDelimiters overrides the default whitespace delimiter set. Each rune
// in the string is an individual delimiter character.
func WithDelimiters(delims string) Option {
	return func(t *Tokenizer) { t.delimiters = delims }
}

// WithRules appends user RegEx sub-token split rules, applied in order to
// every token produced by delimiter splitting.
func WithRules(rules ...SplitRule) Option {
	return func(t *Tokenizer) { t.rules = append(t.rules, rules...) }
}

// DefaultDelimiters is the default delimiter set: ASCII whitespace.
const DefaultDelimiters = " \t\r\n\v\f"

// New constructs a Tokenizer with the default whitespace delimiters,
// customized by the supplied options.
func New(opts ...Option) *Tokenizer {
	t := &Tokenizer{delimiters: DefaultDelimiters}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Split tokenizes one log line. Empty tokens are dropped, so runs of
// delimiters collapse. The returned slice is freshly allocated.
func (t *Tokenizer) Split(line string) []string {
	raw := splitAny(line, t.delimiters)
	if len(t.rules) == 0 {
		return raw
	}
	out := make([]string, 0, len(raw))
	for _, tok := range raw {
		out = append(out, t.applyRules(tok)...)
	}
	return out
}

// applyRules applies the first matching rule to the token and re-splits
// the replacement on spaces. Rules are not applied recursively to their
// own output to guarantee termination.
func (t *Tokenizer) applyRules(tok string) []string {
	for _, r := range t.rules {
		if r.Pattern.MatchString(tok) {
			expanded := r.Pattern.ReplaceAllString(tok, r.Replacement)
			parts := strings.Fields(expanded)
			if len(parts) > 0 {
				return parts
			}
			return []string{tok}
		}
	}
	return []string{tok}
}

// splitAny splits s on any rune contained in delims, dropping empty
// fields. It is allocation-conscious: a single pass sizes the result.
func splitAny(s, delims string) []string {
	isDelim := func(c byte) bool { return strings.IndexByte(delims, c) >= 0 }
	n := 0
	inTok := false
	for i := 0; i < len(s); i++ {
		if isDelim(s[i]) {
			inTok = false
		} else if !inTok {
			inTok = true
			n++
		}
	}
	out := make([]string, 0, n)
	start := -1
	for i := 0; i < len(s); i++ {
		if isDelim(s[i]) {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}
