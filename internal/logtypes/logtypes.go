// Package logtypes defines the core record types shared by every LogLens
// component: raw logs as collected by agents, and parsed logs as produced
// by the stateless log parser.
package logtypes

import (
	"fmt"
	"strings"
	"time"
)

// Log is a single raw log line together with its provenance metadata.
// Agents attach the source and arrival information; the content of Raw is
// exactly the line as it appeared in the origin system.
type Log struct {
	// Source identifies the log origin (host, application, or dataset).
	// The log manager groups storage and model selection by Source.
	Source string

	// Seq is a per-source monotonically increasing arrival sequence
	// number assigned by the agent. It breaks ties between logs whose
	// embedded timestamps are equal.
	Seq uint64

	// Arrival is the wall-clock time at which LogLens received the log.
	Arrival time.Time

	// Raw is the unmodified log line.
	Raw string
}

// Field is one variable field extracted from a log by a GROK pattern.
type Field struct {
	// Name is the field identifier, either the generated PxFy form or a
	// user/heuristic supplied semantic name (e.g. "logTime").
	Name string

	// Value is the token content captured from the log.
	Value string
}

// ParsedLog is the output of the stateless parser: the original log plus
// the pattern that matched it and the extracted fields.
type ParsedLog struct {
	Log

	// PatternID identifies the GROK pattern that parsed this log.
	PatternID int

	// Fields holds the extracted variable fields in pattern order.
	Fields []Field

	// Timestamp is the log's embedded timestamp unified to the
	// DATETIME format, if one was identified.
	Timestamp time.Time

	// HasTimestamp reports whether an embedded timestamp was found.
	// When false, Timestamp is the zero time and consumers should fall
	// back to Arrival.
	HasTimestamp bool
}

// EventTime returns the best available notion of when the log happened:
// the embedded timestamp when present, otherwise the arrival time.
func (p *ParsedLog) EventTime() time.Time {
	if p.HasTimestamp {
		return p.Timestamp
	}
	return p.Arrival
}

// FieldValue returns the value of the named field and whether it exists.
func (p *ParsedLog) FieldValue(name string) (string, bool) {
	for _, f := range p.Fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return "", false
}

// JSON renders the parsed fields as a compact JSON object in field order,
// mirroring the parsing output format shown in the paper
// ({"Action": "Connect", "Server": "127.0.0.1", ...}).
func (p *ParsedLog) JSON() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, f := range p.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q: %q", f.Name, f.Value)
	}
	b.WriteByte('}')
	return b.String()
}
