package logtypes

import (
	"encoding/json"
	"testing"
	"time"
)

func TestEventTime(t *testing.T) {
	arrival := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	embedded := time.Date(2016, 2, 23, 9, 0, 31, 0, time.UTC)

	withTS := &ParsedLog{Log: Log{Arrival: arrival}, Timestamp: embedded, HasTimestamp: true}
	if !withTS.EventTime().Equal(embedded) {
		t.Error("embedded timestamp must win")
	}
	withoutTS := &ParsedLog{Log: Log{Arrival: arrival}}
	if !withoutTS.EventTime().Equal(arrival) {
		t.Error("arrival time must be the fallback")
	}
}

func TestFieldValue(t *testing.T) {
	pl := &ParsedLog{Fields: []Field{{Name: "a", Value: "1"}, {Name: "b", Value: "2"}}}
	if v, ok := pl.FieldValue("b"); !ok || v != "2" {
		t.Errorf("FieldValue(b) = %q/%v", v, ok)
	}
	if _, ok := pl.FieldValue("missing"); ok {
		t.Error("missing field must not be found")
	}
}

func TestJSONOutput(t *testing.T) {
	// The paper's example output shape.
	pl := &ParsedLog{Fields: []Field{
		{Name: "Action", Value: "Connect"},
		{Name: "Server", Value: "127.0.0.1"},
		{Name: "UserName", Value: "abc123"},
	}}
	got := pl.JSON()
	want := `{"Action": "Connect", "Server": "127.0.0.1", "UserName": "abc123"}`
	if got != want {
		t.Errorf("JSON() = %s", got)
	}
	// Output must be valid JSON even with quoting-hostile values.
	pl = &ParsedLog{Fields: []Field{{Name: `k"ey`, Value: `va"lue\`}}}
	var m map[string]string
	if err := json.Unmarshal([]byte(pl.JSON()), &m); err != nil {
		t.Fatalf("invalid JSON %s: %v", pl.JSON(), err)
	}
	if m[`k"ey`] != `va"lue\` {
		t.Errorf("round trip: %v", m)
	}
	// Empty field list.
	if (&ParsedLog{}).JSON() != "{}" {
		t.Error("empty JSON")
	}
}
