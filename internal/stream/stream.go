// Package stream is the micro-batch streaming engine LogLens runs on —
// the substitution for Spark Streaming (§II, §V). It reproduces the
// execution model the paper's Section V contributions modify:
//
//   - Input records are partitioned by key across N workers; each worker
//     collects its own micro-batches and processes its partition's
//     records serially, so per-key state needs no locking.
//   - Broadcast variables live on the driver; workers keep local cached
//     copies and pull from the driver on a cache miss (the getValue()
//     protocol of §V-A).
//   - The rebroadcast extension (§V-A): a broadcast variable can be
//     updated at runtime with zero downtime. The update is queued, applied
//     between micro-batches under a serialized lock step, worker-local
//     caches are invalidated, and the next getValue() pulls the new value
//     from the driver — the job never restarts and partition state maps
//     survive.
//   - Per-partition state maps are exposed to the operator (the
//     getParentStateMap() extension of §V-B) so heartbeat messages can
//     enumerate and expire open states they have no key for.
//   - Heartbeat records are fanned to every partition by the custom
//     partitioner (§V-B), regardless of key.
//
// Execution model: every partition is a persistent worker goroutine that
// owns a bounded input queue, its own micro-batch timer on the injected
// clock, its state map and broadcast cache, and its retry queue. Records
// are routed to worker queues at enqueue time (Send/SendBatch), so a hot
// partition backs up only its own queue — other partitions keep batching
// independently instead of stalling at a global per-batch barrier. The
// cross-partition synchronization that remains is intentionally narrow: a
// barrier lock serializing sink emission and the shared commit frontier,
// and a control lock serializing rebroadcast installs and state
// inspections.
package stream

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"loglens/internal/clock"
	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// Record is one input record.
type Record struct {
	// Key selects the partition (records with equal keys are processed
	// in order by the same partition).
	Key string
	// Value is the payload.
	Value any
	// Time is the record's event time.
	Time time.Time
	// Heartbeat marks the record as a heartbeat: the partitioner
	// duplicates it to every partition.
	Heartbeat bool

	// fan is the shared countdown for a heartbeat's per-partition copies:
	// the engine accepts one heartbeat but delivers Partitions copies, and
	// only the copy that decrements the token to zero carries the record's
	// Records/Resolved/RecordsDropped count — so conservation stays exact
	// in input-record units.
	fan *hbFan
	// seq is the record's acceptance sequence number, assigned at
	// enqueue. Workers retire their records in seq order (queues are
	// FIFO, retries block the frontier), which is what lets the commit
	// frontier reported to BatchHook be computed from one watermark per
	// worker. Heartbeats are seq-less (zero): commit watermarks count
	// forwarded log records only.
	seq uint64
}

// hbFan is the fan-out token shared by a heartbeat's partition copies.
type hbFan struct {
	left atomic.Int32
	// void marks a heartbeat whose fan-out was interrupted by Close after
	// some copies were already queued. The delivered copies still run
	// (expiry sweeps are idempotent) but the record was reported rejected
	// to the sender, so no copy may count it as accepted.
	void atomic.Bool
}

// resolveCopy reports whether this copy of the record carries its
// conservation count: always for plain records, and for heartbeats only
// on the copy that retires the fan-out token.
func (rec *Record) resolveCopy() bool {
	if rec.fan == nil {
		return true
	}
	if rec.fan.left.Add(-1) != 0 {
		return false
	}
	return !rec.fan.void.Load()
}

// workerMsg is one hand-off on a worker's input queue: either a single
// record (batch nil) or a whole batch slice from the RecordBuffer pool.
// A single queue for both keeps Send and SendBatch strictly ordered
// relative to each other per partition.
type workerMsg struct {
	rec   Record
	batch []Record
}

// ProcessFunc is the per-record operator. It runs serially within a
// partition and may emit any number of outputs.
type ProcessFunc func(ctx *Context, rec Record) []any

// Config tunes the engine.
type Config struct {
	// Partitions is the worker count (default 4).
	Partitions int
	// BatchInterval is the micro-batch collection window (default
	// 10ms). Each worker runs its own window timer.
	BatchInterval time.Duration
	// MaxBatch caps records per micro-batch (default 4096), applied per
	// worker.
	MaxBatch int
	// InputBuffer is the total queued-record capacity (default 8192),
	// divided evenly across the per-worker queues.
	InputBuffer int
	// Partitioner overrides key-hash partitioning for non-heartbeat
	// records.
	Partitioner func(rec Record, partitions int) int
	// Clock is the engine's time source (default the wall clock). A fake
	// clock makes the micro-batch cadence manually drivable: batches
	// close when Advance crosses a worker's BatchInterval deadline.
	Clock clock.Clock
	// Name labels this engine's metrics (the "engine" label value);
	// default "stream". Pipelines running several engines (the staged
	// topology) give each a distinct name.
	Name string
	// Metrics is the observability registry. Nil leaves the engine
	// uninstrumented: only the built-in Metrics struct is maintained.
	Metrics *metrics.Registry
	// Ops is the ops plane: span tracing of the micro-batch hierarchy
	// (per-partition process and sink lanes) and flight-recorder events
	// for rebroadcasts, operator panics, and dropped records. Nil
	// disables both at a nil-check's cost.
	Ops *obs.Ops
	// BatchHook, when set, is called under the engine's barrier lock at
	// every micro-batch barrier — including empty ones — with the
	// engine's resolved frontier: the length of the longest prefix of
	// accepted records (in acceptance order, heartbeats counted once)
	// that are all fully resolved. The frontier is monotone across
	// calls, and a record enters it only after the micro-batch that
	// retired it has drained its outputs through the sink — so the
	// recovery layer can commit offsets for the first N accepted records
	// the moment the hook reports N, no matter how partition workers
	// interleaved. Out-of-order resolution across partitions (a fast
	// partition racing ahead of a backed-up one) holds the frontier back
	// instead of inflating it.
	BatchHook func(resolved uint64)
	// OnBarrier, when set, is called under the barrier lock at every
	// micro-batch barrier — including empty ones — after the batch (if
	// any) has fully resolved. The latency plane uses it to re-age the
	// freshness watermark gauges on the batch cadence, so a partition
	// that stops making progress shows growing lag instead of a frozen
	// gauge.
	OnBarrier func()
	// PanicHook, when set, is consulted when the operator panics on a
	// record: return true to requeue the record for another attempt in
	// the partition's next micro-batch, false to drop it (the
	// pre-recovery behavior). Heartbeat records are never requeued
	// regardless of the hook's answer — they are cheap to lose and fan
	// out to every partition. The hook must bound its retries (e.g.
	// quarantine after K strikes) or a poisonous record would cycle
	// forever.
	PanicHook func(partition int, rec Record, v any) bool
}

func (c *Config) setDefaults() {
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.BatchInterval <= 0 {
		c.BatchInterval = 10 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.InputBuffer <= 0 {
		c.InputBuffer = 8192
	}
	if c.Partitioner == nil {
		// Inline FNV-1a: hash.fnv's New32a allocates a hasher per record.
		c.Partitioner = func(rec Record, partitions int) int {
			h := uint32(2166136261)
			for i := 0; i < len(rec.Key); i++ {
				h ^= uint32(rec.Key[i])
				h *= 16777619
			}
			return int(h % uint32(partitions))
		}
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	if c.Name == "" {
		c.Name = "stream"
	}
}

// Metrics counts engine activity. Snapshot via Engine.Metrics.
type Metrics struct {
	// Batches and Records count processed micro-batches and records.
	// Batches are per-partition: each worker's closed collection window
	// counts one.
	Batches uint64
	Records uint64
	// UpdatesApplied counts rebroadcasts applied between batches.
	UpdatesApplied uint64
	// BroadcastPulls counts worker pulls from the driver (cache
	// misses); BroadcastHits counts worker-local cache hits.
	BroadcastPulls uint64
	BroadcastHits  uint64
	// UpdateBlocked accumulates the serialized lock-step time spent
	// applying updates — the only blocking cost of a model update
	// (§V-A: "the only blocking operation is the in-memory copy").
	UpdateBlocked time.Duration
	// OperatorPanics counts operator panics contained by the engine. The
	// partition survives: one poisonous record must not take down the
	// zero-downtime service. Without a PanicHook the record is dropped;
	// with one it may be requeued (counted under Retried).
	OperatorPanics uint64
	// RecordsDropped counts records the engine accepted but never ran
	// through the operator because Run was cancelled mid-batch. Together
	// with Records it makes the engine conservative: every record Send
	// accepted is eventually counted processed or dropped.
	RecordsDropped uint64
	// Retried counts records requeued by the PanicHook for another
	// attempt. Each retry attempt is counted again in Records, so
	// Records is "processing attempts", not unique records.
	Retried uint64
	// Resolved counts input records fully handled: processed to
	// completion (outputs drained through the sink), dropped by panic
	// containment, or quarantined — every outcome except "requeued for
	// retry". A record accepted by Send increments Resolved exactly
	// once, and only after the micro-batch that retired it has emitted
	// its outputs, which makes Resolved the commit-gate watermark: when
	// Resolved catches up with the sender's accepted count, nothing is
	// buffered, processing, or awaiting retry.
	Resolved uint64
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("stream: engine closed")

type update struct {
	id    string
	value any
}

// inspectReq is one queued Inspect. visited/remaining/completed are
// guarded by Engine.updMu: each worker runs fn for its own partition at
// most once, at its own barrier; whoever completes the set closes done.
type inspectReq struct {
	fn        func(partition int, states *StateMap)
	done      chan struct{}
	visited   []bool
	remaining int
	completed bool
}

// Engine is the micro-batch engine. Configure (operator, broadcasts)
// before Run; Send may be called concurrently with Run.
type Engine struct {
	cfg  Config
	proc ProcessFunc
	sink func(any)

	// batchSem bounds in-flight batch hand-offs across all worker
	// queues: without it a fast producer parks thousands of batch slices
	// in the queues, the RecordBuffer pool never sees them back, and
	// every batch becomes a fresh allocation. The shallow bound restores
	// the backpressure (and pool cycling) a dedicated small batch
	// channel used to provide.
	batchSem  chan struct{}
	recPool   sync.Pool
	partsPool sync.Pool
	closed    chan struct{}
	once      sync.Once

	driver  *driver
	workers []*worker

	// ctrlSeq versions the control plane: it is bumped whenever a
	// rebroadcast or inspection is queued. Workers compare it against a
	// local cursor at every barrier — one atomic load on the hot path —
	// and take updMu only when it moved.
	ctrlSeq  atomic.Uint64
	updMu    sync.Mutex
	pending  []update
	inspects []*inspectReq

	// barrierMu is the merged commit frontier: each worker takes it at
	// its own micro-batch barrier to drain its outputs (sink calls stay
	// serialized, in per-partition order) and advance the shared
	// Resolved watermark, so BatchHook observes monotone, post-sink
	// values no matter which partitions are active.
	barrierMu sync.Mutex
	// seqCtr assigns acceptance sequence numbers (Record.seq); the
	// sender bumps the target worker's enq counter before taking a seq,
	// so any seq visible to a frontier snapshot is already reflected in
	// its owner's pending count.
	seqCtr atomic.Uint64
	// frontierHi (guarded by barrierMu) is the high-water frontier
	// reported to BatchHook. Retirement is irreversible, so once a
	// prefix was certified resolved it stays certified even when an
	// idle worker's stale per-worker watermark would momentarily drag
	// the instantaneous minimum back down.
	frontierHi uint64

	metMu   sync.Mutex
	metrics Metrics

	// bcHits/bcPulls are the broadcast cache counters. They are the only
	// Metrics fields written per record (every record consults a
	// broadcast), so they are atomics rather than metMu-guarded —
	// per-record mutex traffic would serialize the partitions.
	bcHits  atomic.Uint64
	bcPulls atomic.Uint64

	// instr mirrors the built-in counters into the shared registry; nil
	// when Config.Metrics is unset, so uninstrumented engines pay only a
	// nil check.
	instr *engineInstr

	// spans/events are the ops-plane recorders (nil when Config.Ops is
	// unset). driverTid is the span thread for driver-side work
	// (rebroadcast installs); workers carry their own tids.
	spans     *obs.SpanRecorder
	events    *obs.FlightRecorder
	driverTid int

	// running reports whether Run is currently executing — the pipeline
	// liveness probe's signal.
	running atomic.Bool
}

// batchSizeBuckets are record-count bounds for the batch-size histogram
// (powers of four up to the default MaxBatch).
var batchSizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096}

// engineInstr holds the engine's registry handles, resolved once at
// construction so the per-batch cost is plain atomic updates.
type engineInstr struct {
	reg     *metrics.Registry
	name    string
	batches *metrics.Counter
	records *metrics.Counter
	// Dropped records carry a reason label: "abandoned" for accepted
	// records discarded at cancellation, "send-after-close" for records
	// rejected by Send with ErrClosed (never accepted, so excluded from
	// the built-in Metrics.RecordsDropped conservation count).
	droppedAbandoned *metrics.Counter
	droppedClosed    *metrics.Counter
	updates          *metrics.Counter
	panics           *metrics.Counter
	retried          *metrics.Counter
	size             *metrics.Histogram
	latency          *metrics.Histogram
	// entries[p] tracks partition p's state-map size, refreshed by each
	// worker at its own micro-batch barrier.
	entries []*metrics.Gauge
}

func newEngineInstr(reg *metrics.Registry, name string, partitions int) *engineInstr {
	in := &engineInstr{
		reg:              reg,
		name:             name,
		batches:          reg.Counter("stream_batches_total", "engine", name),
		records:          reg.Counter("stream_records_total", "engine", name),
		droppedAbandoned: reg.Counter("stream_records_dropped_total", "engine", name, "reason", "abandoned"),
		droppedClosed:    reg.Counter("stream_records_dropped_total", "engine", name, "reason", "send-after-close"),
		updates:          reg.Counter("stream_updates_applied_total", "engine", name),
		panics:           reg.Counter("stream_operator_panics_total", "engine", name),
		retried:          reg.Counter("stream_records_retried_total", "engine", name),
		size:             reg.Histogram("stream_batch_size", batchSizeBuckets, "engine", name),
		latency:          reg.Histogram("stream_batch_seconds", nil, "engine", name),
	}
	for i := 0; i < partitions; i++ {
		in.entries = append(in.entries, reg.Gauge("stream_state_entries", "engine", name, "partition", strconv.Itoa(i)))
	}
	return in
}

// driver holds the authoritative broadcast blocks (§V-A: the variable "is
// initially stored" at the driver; workers pull values over the network).
type driver struct {
	mu     sync.RWMutex
	blocks map[string]block
}

type block struct {
	value   any
	version uint64
}

// worker is one partition executor: a persistent goroutine owning its
// input queue, micro-batch timer, state map, broadcast cache, and retry
// queue.
type worker struct {
	id     int
	states *StateMap
	cache  map[string]block
	tid    int // span thread for this partition's lane

	// queue carries this partition's records; wake (capacity 1) nudges
	// the worker to close its collection window early so a queued
	// inspection is served without waiting out the batch interval.
	queue chan workerMsg
	wake  chan struct{}

	// Owned by the worker goroutine, no locking: requeued records,
	// collect scratch, output scratch, and the control-plane cursor.
	retries  []Record
	batchBuf []Record
	outBuf   []any
	seenSeq  uint64

	// Frontier bookkeeping. enq counts records assigned to this worker
	// (bumped by the sender before the seq is even taken); done counts
	// records the worker has retired post-sink (dropped ones included).
	// While they differ the worker constrains the engine frontier to
	// front — the highest seq with every lower-or-equal seq this worker
	// owns retired. front is only meaningful while the worker is
	// constrained, which sidesteps staleness when it sat idle.
	enq   atomic.Uint64
	done  atomic.Uint64
	front atomic.Uint64

	// inval lists broadcast IDs whose cached copies this worker must
	// drop: appended by whichever worker installs a rebroadcast and
	// drained by the owner at its next barrier, both under Engine.updMu,
	// so the unsynchronized cache map is only ever touched by its owner.
	inval []string

	// procLabel/sinkLabel are this partition's span labels, precomputed
	// at construction so processing a batch does not rebuild the strings.
	procLabel string
	sinkLabel string

	// pulled mirrors the versions this worker has actually fetched from
	// the driver (written only on the rare cache-miss path) so the
	// version-skew health probe can compare worker views against the
	// driver without touching the unsynchronized cache map.
	pulled sync.Map // broadcast id → uint64 version
}

// New constructs an Engine with the given operator.
func New(cfg Config, proc ProcessFunc) *Engine {
	cfg.setDefaults()
	e := &Engine{
		cfg:      cfg,
		proc:     proc,
		batchSem: make(chan struct{}, 16),
		closed:   make(chan struct{}),
		driver:   &driver{blocks: make(map[string]block)},
	}
	e.spans = obs.SpansOf(cfg.Ops)
	e.events = obs.EventsOf(cfg.Ops)
	e.driverTid = e.spans.Thread(cfg.Name + " driver")
	queueCap := cfg.InputBuffer / cfg.Partitions
	if queueCap < 64 {
		queueCap = 64
	}
	for i := 0; i < cfg.Partitions; i++ {
		label := strconv.Itoa(i)
		e.workers = append(e.workers, &worker{
			id:        i,
			states:    NewStateMap(),
			cache:     make(map[string]block),
			tid:       e.spans.Thread(cfg.Name + " p" + label),
			queue:     make(chan workerMsg, queueCap),
			wake:      make(chan struct{}, 1),
			procLabel: "p" + label + " process",
			sinkLabel: "p" + label + " sink",
		})
	}
	if cfg.Metrics != nil {
		e.instr = newEngineInstr(cfg.Metrics, cfg.Name, cfg.Partitions)
	}
	return e
}

// SetSink installs the output consumer. It is called under the engine's
// barrier lock — never concurrently, with each partition's outputs in
// processing order — but may run on any worker goroutine. Must be set
// before Run.
func (e *Engine) SetSink(sink func(any)) { e.sink = sink }

// Partitions returns the partition count.
func (e *Engine) Partitions() int { return e.cfg.Partitions }

// Broadcast registers (or replaces) a broadcast variable immediately. Use
// before Run; at runtime use Rebroadcast, which respects the micro-batch
// lock step.
func (e *Engine) Broadcast(id string, value any) {
	e.driver.mu.Lock()
	b := e.driver.blocks[id]
	e.driver.blocks[id] = block{value: value, version: b.version + 1}
	e.driver.mu.Unlock()
	if e.instr != nil {
		e.instr.reg.Gauge("stream_broadcast_version", "engine", e.instr.name, "id", id).Set(int64(b.version + 1))
	}
	// Invalidate any existing worker caches (pre-Run this is a no-op).
	for _, w := range e.workers {
		delete(w.cache, id)
	}
}

// Rebroadcast queues a runtime update of a broadcast variable. It is
// applied at the next micro-batch barrier any worker reaches: the driver
// installs the new value under the same variable ID, every worker
// invalidates its locally cached copy at its own next barrier, and
// subsequent getValue() calls pull the fresh value. The stream never
// stops and no partition state is lost (§V-A).
func (e *Engine) Rebroadcast(id string, value any) {
	e.updMu.Lock()
	e.pending = append(e.pending, update{id: id, value: value})
	e.updMu.Unlock()
	e.ctrlSeq.Add(1)
}

// Send enqueues one input record onto its partition's worker queue
// (heartbeats fan a copy to every queue). It blocks when the queue is
// full (backpressure) and returns ErrClosed after Close. Rejected records
// are counted under stream_records_dropped_total with reason
// "send-after-close" (they do not enter Metrics.RecordsDropped, which
// only balances records the engine accepted).
func (e *Engine) Send(rec Record) error {
	select {
	case <-e.closed:
		return e.rejectClosed(1)
	default:
	}
	if rec.Heartbeat {
		if err := e.fanHeartbeat(rec); err != nil {
			return e.rejectClosed(1)
		}
		return nil
	}
	w := e.workers[e.cfg.Partitioner(rec, len(e.workers))]
	w.enq.Add(1)
	rec.seq = e.seqCtr.Add(1)
	select {
	case w.queue <- workerMsg{rec: rec}:
		return nil
	case <-e.closed:
		// The seq was assigned but the record never delivered: its
		// owner stays constrained below it, so the frontier can never
		// certify a prefix containing a rejected record. The engine is
		// closed; commits correctly stop at the rejection point.
		return e.rejectClosed(1)
	}
}

// fanHeartbeat delivers one copy of a heartbeat to every worker queue
// (§V-B custom partitioner), sharing a fan-out token so the heartbeat is
// counted once no matter how many partitions process it.
func (e *Engine) fanHeartbeat(rec Record) error {
	// Heartbeats carry no frontier seq (seq 0): the commit watermarks
	// compared against the frontier count forwarded log records only, so
	// a heartbeat must neither advance nor constrain the certified
	// prefix.
	if len(e.workers) == 1 {
		select {
		case e.workers[0].queue <- workerMsg{rec: rec}:
			return nil
		case <-e.closed:
			return ErrClosed
		}
	}
	fan := &hbFan{}
	fan.left.Store(int32(len(e.workers)))
	rec.fan = fan
	for i, w := range e.workers {
		select {
		case w.queue <- workerMsg{rec: rec}:
		case <-e.closed:
			// Interrupted mid-fan: void the token so the already-queued
			// copies run without counting a record the sender was told
			// was rejected, and retire the undelivered copies' shares.
			fan.void.Store(true)
			fan.left.Add(int32(-(len(e.workers) - i)))
			return ErrClosed
		}
	}
	return nil
}

// SendBatch enqueues a micro-batch of records, split at enqueue time into
// per-partition slices handed directly to the worker queues. Ownership of
// recs transfers to the engine, which recycles the backing array into the
// RecordBuffer pool — callers must not touch recs afterwards. Like Send
// it blocks on backpressure and returns ErrClosed after Close. If Close
// lands mid-delivery the batch may be partially accepted: slices already
// queued are processed and counted, the remainder is rejected under the
// send-after-close label.
func (e *Engine) SendBatch(recs []Record) error {
	if len(recs) == 0 {
		e.putRecordBuffer(recs)
		return nil
	}
	select {
	case <-e.closed:
		return e.rejectClosed(len(recs))
	default:
	}
	if len(e.workers) == 1 {
		// Single partition: the batch slice passes straight through to
		// the worker, no splitting. Frontier seqs are reserved as one
		// range (two atomic ops per batch, not per record); heartbeats
		// inside the batch stay seq-less.
		w := e.workers[0]
		n := uint64(0)
		for i := range recs {
			if !recs[i].Heartbeat {
				n++
			}
		}
		w.enq.Add(n)
		seq := e.seqCtr.Add(n) - n
		for i := range recs {
			if !recs[i].Heartbeat {
				seq++
				recs[i].seq = seq
			}
		}
		select {
		case e.batchSem <- struct{}{}:
		case <-e.closed:
			return e.rejectClosed(len(recs))
		}
		select {
		case w.queue <- workerMsg{batch: recs}:
			return nil
		case <-e.closed:
			<-e.batchSem
			return e.rejectClosed(len(recs))
		}
	}
	parts := e.getParts()
	rejected := 0
	for i := 0; i < len(recs); i++ {
		rec := recs[i]
		if !rec.Heartbeat {
			p := e.cfg.Partitioner(rec, len(e.workers))
			e.workers[p].enq.Add(1)
			rec.seq = e.seqCtr.Add(1)
			if parts[p] == nil {
				parts[p] = e.RecordBuffer()
			}
			parts[p] = append(parts[p], rec)
			continue
		}
		// A heartbeat inside the batch: per-queue FIFO is the ordering
		// guarantee, so everything before it must land in the worker
		// queues before its copies fan out.
		if u := e.flushParts(parts); u > 0 {
			rejected = u + len(recs) - i
			break
		}
		if err := e.fanHeartbeat(rec); err != nil {
			rejected = len(recs) - i
			break
		}
	}
	if rejected == 0 {
		rejected = e.flushParts(parts)
	}
	e.putParts(parts)
	e.putRecordBuffer(recs)
	if rejected > 0 {
		return e.rejectClosed(rejected)
	}
	return nil
}

// flushParts hands the accumulated per-partition slices to their worker
// queues, returning how many records went undelivered because Close
// interrupted the hand-off (undelivered slices are recycled).
func (e *Engine) flushParts(parts [][]Record) (undelivered int) {
	for p := range parts {
		buf := parts[p]
		if buf == nil {
			continue
		}
		parts[p] = nil
		if len(buf) == 0 || undelivered > 0 {
			undelivered += len(buf)
			e.putRecordBuffer(buf)
			continue
		}
		ok := false
		select {
		case e.batchSem <- struct{}{}:
			select {
			case e.workers[p].queue <- workerMsg{batch: buf}:
				ok = true
			case <-e.closed:
				<-e.batchSem
			}
		case <-e.closed:
		}
		if !ok {
			undelivered += len(buf)
			e.putRecordBuffer(buf)
		}
	}
	return undelivered
}

// RecordBuffer returns an empty record slice from the engine's arena for
// use with SendBatch. Steady-state batches cycle through the pool, so
// batching producers allocate no slices per batch.
func (e *Engine) RecordBuffer() []Record {
	if v := e.recPool.Get(); v != nil {
		return (*v.(*[]Record))[:0]
	}
	return make([]Record, 0, 256)
}

// putRecordBuffer recycles an absorbed batch slice. Elements are zeroed
// first so pooled arrays do not pin record payloads.
func (e *Engine) putRecordBuffer(recs []Record) {
	if cap(recs) == 0 {
		return
	}
	recs = recs[:cap(recs)]
	for i := range recs {
		recs[i] = Record{}
	}
	recs = recs[:0]
	e.recPool.Put(&recs)
}

// getParts returns a per-partition split scratch (len == Partitions, all
// slots nil) from the engine's pool.
func (e *Engine) getParts() [][]Record {
	if v := e.partsPool.Get(); v != nil {
		return *(v.(*[][]Record))
	}
	return make([][]Record, len(e.workers))
}

func (e *Engine) putParts(parts [][]Record) {
	for i := range parts {
		parts[i] = nil
	}
	e.partsPool.Put(&parts)
}

// rejectClosed accounts n records refused because the engine is closed.
func (e *Engine) rejectClosed(n int) error {
	if e.instr != nil {
		e.instr.droppedClosed.Add(uint64(n))
	}
	e.events.Record(obs.EventRecordsDropped, e.cfg.Name, "send after close", int64(n))
	return ErrClosed
}

// Close stops input. Run drains everything already sent, then returns.
func (e *Engine) Close() {
	e.once.Do(func() { close(e.closed) })
}

// Accepted returns the number of frontier seqs assigned so far — every
// non-heartbeat record accepted by Send/SendBatch. This is the unit of
// the commit frontier reported to BatchHook: a commit watermark taken
// from Accepted after a batch of sends is certain to be reached once
// those records (and everything accepted before them) retire.
// Heartbeats are seq-less by design, so watermarks must come from here,
// not from a sender-side count that includes them.
func (e *Engine) Accepted() uint64 {
	return e.seqCtr.Load()
}

// Metrics returns a snapshot of the engine counters.
func (e *Engine) Metrics() Metrics {
	e.metMu.Lock()
	m := e.metrics
	e.metMu.Unlock()
	m.BroadcastHits = e.bcHits.Load()
	m.BroadcastPulls = e.bcPulls.Load()
	return m
}

// Running reports whether the worker pool is currently executing — true
// between Run's entry and return. The ops-plane liveness probe reads it.
func (e *Engine) Running() bool { return e.running.Load() }

// BroadcastVersions reports the driver's current version of a broadcast
// variable and, per worker, the version that worker last pulled (0 if it
// has never pulled). The gap between the two is the version skew the
// ops-plane probe watches after a rebroadcast.
func (e *Engine) BroadcastVersions(id string) (driver uint64, workers []uint64) {
	e.driver.mu.RLock()
	driver = e.driver.blocks[id].version
	e.driver.mu.RUnlock()
	workers = make([]uint64, len(e.workers))
	for i, w := range e.workers {
		if v, ok := w.pulled.Load(id); ok {
			workers[i] = v.(uint64)
		}
	}
	return driver, workers
}

// StateMap returns partition p's state map. Safe to use from the operator
// (same partition) or after Run returns; concurrent external mutation
// during Run is the caller's responsibility.
func (e *Engine) StateMap(p int) (*StateMap, error) {
	if p < 0 || p >= len(e.workers) {
		return nil, fmt.Errorf("stream: no partition %d", p)
	}
	return e.workers[p].states, nil
}

// Run executes the worker pool until the context is cancelled or Close
// has been called and every queue is drained. Queued rebroadcasts are
// applied at micro-batch barriers.
func (e *Engine) Run(ctx context.Context) error {
	e.running.Store(true)
	defer e.running.Store(false)
	// Flush pending updates/inspections at exit so nothing blocks
	// forever when Run stops via context cancellation.
	defer e.flushCtrl()
	var wg sync.WaitGroup
	errs := make([]error, len(e.workers))
	// A panic escaping a worker (a sink or hook blowing up — operator
	// panics are contained per record) must surface to Run's caller so a
	// restart supervisor can recover it. The first panic wins; the abort
	// channel parks the other workers with their queues and scratch
	// intact, so the restarted Run resumes where this one stopped.
	abort := make(chan struct{})
	var panicOnce sync.Once
	var panicVal any
	for i, w := range e.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicVal = r
						close(abort)
					})
				}
			}()
			errs[i] = e.runWorker(ctx, w, abort)
		}(i, w)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runWorker is one partition's persistent loop: collect a micro-batch
// from the partition's own queue, sync with the control plane, process,
// and hit the barrier — independent of every other partition's pace.
func (e *Engine) runWorker(ctx context.Context, w *worker, abort <-chan struct{}) error {
	for {
		batch, drained := e.collectWorker(ctx, w, abort)
		// Records requeued by the PanicHook go to the front of the next
		// batch, keeping redelivery close to the original attempt (and on
		// the same partition, preserving key affinity).
		if len(w.retries) > 0 {
			r := w.retries
			w.retries = nil
			batch = append(r, batch...)
		}
		select {
		case <-abort:
			// Another worker panicked and Run is unwinding toward its
			// supervisor. Park the collected records in the retry queue
			// (append to nil copies off the collect scratch) so the
			// restarted Run processes them; nothing is dropped.
			w.retries = append(w.retries, batch...)
			return nil
		default:
		}
		if err := ctx.Err(); err != nil {
			// The partially collected batch and anything still queued will
			// never run through the operator. Count them dropped so
			// conservation (accepted == processed + dropped) holds at
			// shutdown. Records Sent concurrently with the cancellation
			// may still race past this drain; orderly shutdown (Close
			// before cancel) is exact.
			e.dropWorker(w, batch)
			return err
		}

		// Model updates and inspections run at the barrier in a
		// serialized lock step (§V-A); the atomic compare keeps the
		// no-op case off the mutex.
		if e.ctrlSeq.Load() != w.seenSeq {
			e.syncWorker(w)
		}

		if len(batch) > 0 {
			e.processWorkerBatch(w, batch)
		} else {
			e.emptyBarrier()
		}
		// Zero the processed scratch so retained arrays don't pin this
		// batch's payloads until the slots happen to be overwritten.
		for i := range batch {
			batch[i] = Record{}
		}
		if drained && len(w.retries) == 0 {
			return nil
		}
	}
}

// collectWorker gathers one micro-batch from the worker's queue: up to
// MaxBatch records within BatchInterval (a batched hand-off may overshoot
// the cap by at most one producer batch). It reports drained=true when
// the engine is closed and the queue is empty. The returned slice is
// worker scratch, valid until the next collect call.
func (e *Engine) collectWorker(ctx context.Context, w *worker, abort <-chan struct{}) ([]Record, bool) {
	batch := w.batchBuf[:0]
	defer func() { w.batchBuf = batch[:0] }()
	timer := e.cfg.Clock.NewTimer(e.cfg.BatchInterval)
	defer timer.Stop()
	for len(batch) < e.cfg.MaxBatch {
		select {
		case msg := <-w.queue:
			batch = e.absorb(batch, msg)
		case <-timer.C():
			return batch, false
		case <-w.wake:
			// An inspection wants the barrier: close the window early.
			return batch, false
		case <-abort:
			return batch, false
		case <-ctx.Done():
			return batch, false
		case <-e.closed:
			// Drain whatever has been queued, then stop.
			for {
				select {
				case msg := <-w.queue:
					batch = e.absorb(batch, msg)
					if len(batch) >= e.cfg.MaxBatch {
						return batch, false
					}
				default:
					return batch, true
				}
			}
		}
	}
	return batch, false
}

// absorb appends one queue hand-off — a single record or a pooled batch
// slice — to the collection buffer, recycling batch slices.
func (e *Engine) absorb(batch []Record, msg workerMsg) []Record {
	if msg.batch == nil {
		return append(batch, msg.rec)
	}
	batch = append(batch, msg.batch...)
	e.putRecordBuffer(msg.batch)
	<-e.batchSem
	return batch
}

// dropWorker accounts a batch that will never be processed plus
// everything still buffered in the worker's queue (and any records parked
// in its retry queue) as RecordsDropped.
func (e *Engine) dropWorker(w *worker, batch []Record) {
	var dropped, copies uint64
	count := func(rec *Record) {
		if rec.seq != 0 {
			copies++
		}
		if rec.resolveCopy() {
			dropped++
		}
	}
	for i := range batch {
		count(&batch[i])
	}
	for i := range w.retries {
		count(&w.retries[i])
	}
	w.retries = nil
	for {
		select {
		case msg := <-w.queue:
			if msg.batch != nil {
				for i := range msg.batch {
					count(&msg.batch[i])
				}
				e.putRecordBuffer(msg.batch)
				<-e.batchSem
			} else {
				count(&msg.rec)
			}
			continue
		default:
		}
		break
	}
	// Dropped copies retire for frontier purposes (parity with the old
	// engine, where cancellation advanced Resolved past them): with its
	// pending count settled the worker stops constraining the frontier.
	w.done.Add(copies)
	if dropped == 0 {
		return
	}
	e.metMu.Lock()
	e.metrics.RecordsDropped += dropped
	e.metrics.Resolved += dropped
	e.metMu.Unlock()
	if e.instr != nil {
		e.instr.droppedAbandoned.Add(dropped)
	}
	e.events.Record(obs.EventRecordsDropped, e.cfg.Name, "abandoned at cancellation", int64(dropped))
}

// processWorkerBatch runs one partition's micro-batch through the
// operator serially, then takes the barrier lock to drain outputs and
// advance the shared commit frontier.
func (e *Engine) processWorkerBatch(w *worker, batch []Record) {
	start := e.cfg.Clock.Now()
	span := e.spans.Start(e.cfg.Name, w.procLabel, w.tid)
	c := &Context{engine: e, worker: w, batchStart: start}
	outs := w.outBuf[:0]
	retriesBefore := len(w.retries)
	var counted, seqCopies, lastSeq uint64
	for i := range batch {
		outs = append(outs, e.process(c, batch[i])...)
		// Heartbeat fan-out copies share one count: only the copy that
		// retires the token counts, so the subtraction below stays exact
		// in input-record units.
		if batch[i].resolveCopy() {
			counted++
		}
		// Frontier bookkeeping tracks seq-bearing records only; the
		// batch is in ascending seq order, so the running value is this
		// worker's high seq.
		if s := batch[i].seq; s != 0 {
			seqCopies++
			lastSeq = s
		}
	}
	span.End()
	requeued := uint64(len(w.retries) - retriesBefore)
	// This worker's frontier contribution: with requeued records the
	// oldest retry pins it (batches process in seq order, so everything
	// below the oldest retry is retired); otherwise the whole batch
	// retired through its last seq. An all-heartbeat batch leaves the
	// watermark untouched.
	fw := lastSeq
	if len(w.retries) > retriesBefore {
		fw = w.retries[retriesBefore].seq - 1
	}

	// The merged commit frontier: outputs drain inside the barrier lock
	// (sink calls stay serialized, each partition's outputs in order) and
	// only then do the shared Resolved count and this worker's frontier
	// watermark advance — a commit gated on this batch can never run
	// before its outputs have landed, and BatchHook frontiers are
	// monotone across partitions.
	e.barrierMu.Lock()
	retired := false
	retire := func() {
		retired = true
		e.metMu.Lock()
		e.metrics.Batches++
		e.metrics.Records += counted
		e.metrics.Resolved += counted - requeued
		e.metMu.Unlock()
		w.done.Add(seqCopies - requeued)
		if fw > 0 {
			w.front.Store(fw)
		}
	}
	func() {
		defer func() {
			// A sink or hook panic unwinds toward the restart supervisor:
			// release the barrier and retire the batch anyway (the paid
			// price is the pre-sink advance the old engine always had) so
			// conservation and the drain watermark survive the restart.
			if !retired {
				retire()
			}
			e.barrierMu.Unlock()
		}()
		if e.sink != nil && len(outs) > 0 {
			sinkSpan := e.spans.Start(e.cfg.Name, w.sinkLabel, w.tid)
			for _, o := range outs {
				e.sink(o)
			}
			sinkSpan.End()
		}
		retire()
		if e.cfg.BatchHook != nil {
			e.cfg.BatchHook(e.frontierLocked())
		}
		if e.cfg.OnBarrier != nil {
			e.cfg.OnBarrier()
		}
	}()

	if e.instr != nil {
		e.instr.batches.Inc()
		e.instr.records.Add(counted)
		e.instr.size.Observe(float64(len(batch)))
		e.instr.latency.Observe(e.cfg.Clock.Since(start).Seconds())
		// The worker is at its own barrier: its state map is quiescent.
		e.instr.entries[w.id].Set(int64(w.states.Len()))
	}
	for i := range outs {
		outs[i] = nil
	}
	w.outBuf = outs[:0]
}

// emptyBarrier fires the barrier hooks for a window that collected
// nothing, so a commit gated on a batch that resolved just before
// registration is flushed at the next barrier instead of waiting for
// traffic, and freshness gauges keep re-aging.
func (e *Engine) emptyBarrier() {
	if e.cfg.BatchHook == nil && e.cfg.OnBarrier == nil {
		return
	}
	e.barrierMu.Lock()
	if e.cfg.BatchHook != nil {
		e.cfg.BatchHook(e.frontierLocked())
	}
	if e.cfg.OnBarrier != nil {
		e.cfg.OnBarrier()
	}
	e.barrierMu.Unlock()
}

// frontierLocked (barrierMu held) certifies the resolved frontier: the
// highest seq S such that every accepted record with seq ≤ S is retired.
// A worker whose pending count is zero has retired everything it owns;
// one with pending work bounds S by its own watermark. Reading done
// before enq keeps a concurrent enqueue conservative (it can only make
// the worker look busier), and the high-water clamp keeps the reported
// value monotone when an idle worker with a stale watermark becomes busy
// again — retirement is irreversible, so an earlier certification stays
// true.
func (e *Engine) frontierLocked() uint64 {
	f := e.seqCtr.Load()
	for _, w := range e.workers {
		if w.done.Load() != w.enq.Load() {
			if wf := w.front.Load(); wf < f {
				f = wf
			}
		}
	}
	if f > e.frontierHi {
		e.frontierHi = f
	}
	return e.frontierHi
}

// process runs the operator on one record, containing panics so a
// poisonous record drops — or, when the PanicHook asks for it, retries —
// instead of killing the partition (and with it the zero-downtime
// guarantee).
func (e *Engine) process(c *Context, rec Record) (out []any) {
	defer func() {
		if r := recover(); r != nil {
			e.metMu.Lock()
			e.metrics.OperatorPanics++
			e.metMu.Unlock()
			if e.instr != nil {
				e.instr.panics.Inc()
			}
			e.events.Record(obs.EventWorkerCrash, e.cfg.Name,
				fmt.Sprintf("partition %d operator panic: %v", c.worker.id, r), 1)
			out = nil
			if !rec.Heartbeat && e.cfg.PanicHook != nil && e.cfg.PanicHook(c.worker.id, rec, r) {
				c.worker.retries = append(c.worker.retries, rec)
				e.metMu.Lock()
				e.metrics.Retried++
				e.metMu.Unlock()
				if e.instr != nil {
					e.instr.retried.Inc()
				}
			}
		}
	}()
	return e.proc(c, rec)
}

// Inspect runs fn against every partition's state map, each partition at
// its own next micro-batch barrier — the same serialized lock step model
// updates use — and blocks until all partitions have run it. It is the
// race-free way to observe partition state (open-event counts, state-map
// sizes) while the engine is live; invocations for different partitions
// are serialized but may interleave with other partitions' batches. If
// Run is not active the inspection executes immediately.
func (e *Engine) Inspect(fn func(partition int, states *StateMap)) {
	select {
	case <-e.closed:
		// Engine stopped (or never started): partitions are quiescent.
		for _, w := range e.workers {
			fn(w.id, w.states)
		}
		return
	default:
	}
	req := &inspectReq{
		fn:        fn,
		done:      make(chan struct{}),
		visited:   make([]bool, len(e.workers)),
		remaining: len(e.workers),
	}
	e.updMu.Lock()
	e.inspects = append(e.inspects, req)
	e.updMu.Unlock()
	e.ctrlSeq.Add(1)
	// Nudge parked workers so the inspection is served promptly even
	// when no traffic or timer would otherwise close their windows.
	for _, w := range e.workers {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	select {
	case <-req.done:
	case <-e.closed:
		// Run exited (or is draining) without serving the request; cover
		// the partitions no worker visited. The completed flag keeps this
		// exactly-once against a racing worker barrier.
		e.updMu.Lock()
		if !req.completed {
			req.completed = true
			for i, r := range e.inspects {
				if r == req {
					e.inspects = append(e.inspects[:i], e.inspects[i+1:]...)
					break
				}
			}
			for _, w := range e.workers {
				if !req.visited[w.id] {
					fn(w.id, w.states)
				}
			}
			close(req.done)
		}
		e.updMu.Unlock()
	}
}

// syncWorker is the control-plane barrier: under updMu the worker
// installs any queued rebroadcasts (first arriver wins), serves queued
// inspections for its own partition, and collects its cache
// invalidations; outside the lock it applies them to its own cache.
func (e *Engine) syncWorker(w *worker) {
	e.updMu.Lock()
	seq := e.ctrlSeq.Load()
	e.installLocked()
	for i := 0; i < len(e.inspects); {
		req := e.inspects[i]
		if !req.visited[w.id] {
			req.visited[w.id] = true
			req.remaining--
			req.fn(w.id, w.states)
		}
		if req.remaining == 0 {
			req.completed = true
			close(req.done)
			e.inspects = append(e.inspects[:i], e.inspects[i+1:]...)
			continue
		}
		i++
	}
	inval := w.inval
	w.inval = nil
	e.updMu.Unlock()
	w.seenSeq = seq
	for _, id := range inval {
		delete(w.cache, id)
	}
}

// installLocked (updMu held) installs queued rebroadcasts: new driver
// blocks under the same IDs, with every worker's cached copy queued for
// invalidation at that worker's own barrier. Between the install and a
// worker's next barrier that worker may still serve the previous version
// — at most one batch of skew, the §V-A eventual-pull window the
// version-skew probe tolerates.
func (e *Engine) installLocked() {
	if len(e.pending) == 0 {
		return
	}
	pending := e.pending
	e.pending = nil
	start := e.cfg.Clock.Now()
	span := e.spans.Start(e.cfg.Name, "rebroadcast", e.driverTid)
	for _, u := range pending {
		e.driver.mu.Lock()
		b := e.driver.blocks[u.id]
		e.driver.blocks[u.id] = block{value: u.value, version: b.version + 1}
		e.driver.mu.Unlock()
		if e.instr != nil {
			e.instr.reg.Gauge("stream_broadcast_version", "engine", e.instr.name, "id", u.id).Set(int64(b.version + 1))
		}
		for _, w := range e.workers {
			w.inval = append(w.inval, u.id)
		}
		e.events.Record(obs.EventRebroadcastApplied, u.id, "installed at micro-batch barrier", int64(b.version+1))
	}
	span.End()
	e.metMu.Lock()
	e.metrics.UpdatesApplied += uint64(len(pending))
	e.metrics.UpdateBlocked += e.cfg.Clock.Since(start)
	e.metMu.Unlock()
	if e.instr != nil {
		e.instr.updates.Add(uint64(len(pending)))
	}
}

// flushCtrl completes the control plane at Run exit, when every worker is
// quiescent: pending rebroadcasts install, unserved inspections run over
// the partitions no worker visited, and worker cache invalidations apply.
func (e *Engine) flushCtrl() {
	e.updMu.Lock()
	e.installLocked()
	for _, req := range e.inspects {
		if req.completed {
			continue
		}
		req.completed = true
		for _, w := range e.workers {
			if !req.visited[w.id] {
				req.visited[w.id] = true
				req.fn(w.id, w.states)
			}
		}
		close(req.done)
	}
	e.inspects = nil
	for _, w := range e.workers {
		for _, id := range w.inval {
			delete(w.cache, id)
		}
		w.inval = nil
		w.seenSeq = e.ctrlSeq.Load()
	}
	e.updMu.Unlock()
}

// Context is the operator's view of its partition.
type Context struct {
	engine *Engine
	worker *worker

	// batchStart is the worker's pickup stamp for the micro-batch this
	// context is processing — taken once per batch, so operators can
	// close delivery-latency measurements without paying a per-record
	// clock read.
	batchStart time.Time
}

// Partition returns the partition index.
func (c *Context) Partition() int { return c.worker.id }

// BatchStart returns the engine's clock stamp from the moment this
// micro-batch was picked up for processing. All records of the batch
// share it.
func (c *Context) BatchStart() time.Time { return c.batchStart }

// States returns the partition's state map — the getParentStateMap()
// analog of §V-B, letting heartbeat handling enumerate open states without
// their keys.
func (c *Context) States() *StateMap { return c.worker.states }

// Broadcast returns the current value of a broadcast variable via the
// worker's getValue() protocol: local cache first, then a pull from the
// driver on a miss.
func (c *Context) Broadcast(id string) (any, bool) {
	if b, ok := c.worker.cache[id]; ok {
		c.engine.bcHits.Add(1)
		return b.value, true
	}
	c.engine.driver.mu.RLock()
	b, ok := c.engine.driver.blocks[id]
	c.engine.driver.mu.RUnlock()
	if !ok {
		return nil, false
	}
	c.worker.cache[id] = b
	c.worker.pulled.Store(id, b.version)
	c.engine.bcPulls.Add(1)
	return b.value, true
}

// StateMap is a per-partition keyed state store. Operators access it
// without locks (partition execution is serial); the map also supports
// enumeration so heartbeats can find states whose keys they do not know.
type StateMap struct {
	m map[string]any
}

// NewStateMap returns an empty state map.
func NewStateMap() *StateMap {
	return &StateMap{m: make(map[string]any)}
}

// Get returns the state under key.
func (s *StateMap) Get(key string) (any, bool) {
	v, ok := s.m[key]
	return v, ok
}

// Put stores state under key.
func (s *StateMap) Put(key string, value any) { s.m[key] = value }

// Delete removes the state under key.
func (s *StateMap) Delete(key string) { delete(s.m, key) }

// Len returns the number of stored states.
func (s *StateMap) Len() int { return len(s.m) }

// Range calls fn for every state until fn returns false.
func (s *StateMap) Range(fn func(key string, value any) bool) {
	for k, v := range s.m {
		if !fn(k, v) {
			return
		}
	}
}
