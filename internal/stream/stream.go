// Package stream is the micro-batch streaming engine LogLens runs on —
// the substitution for Spark Streaming (§II, §V). It reproduces the
// execution model the paper's Section V contributions modify:
//
//   - Input records are collected into micro-batches and partitioned by
//     key across N workers; each partition's records are processed
//     serially by an operator, so per-key state needs no locking.
//   - Broadcast variables live on the driver; workers keep local cached
//     copies and pull from the driver on a cache miss (the getValue()
//     protocol of §V-A).
//   - The rebroadcast extension (§V-A): a broadcast variable can be
//     updated at runtime with zero downtime. The update is queued, applied
//     between micro-batches under a serialized lock step, worker-local
//     caches are invalidated, and the next getValue() pulls the new value
//     from the driver — the job never restarts and partition state maps
//     survive.
//   - Per-partition state maps are exposed to the operator (the
//     getParentStateMap() extension of §V-B) so heartbeat messages can
//     enumerate and expire open states they have no key for.
//   - Heartbeat records are fanned to every partition by the custom
//     partitioner (§V-B), regardless of key.
package stream

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"loglens/internal/clock"
	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// Record is one input record.
type Record struct {
	// Key selects the partition (records with equal keys are processed
	// in order by the same partition).
	Key string
	// Value is the payload.
	Value any
	// Time is the record's event time.
	Time time.Time
	// Heartbeat marks the record as a heartbeat: the partitioner
	// duplicates it to every partition.
	Heartbeat bool
}

// inputMsg is one hand-off on the engine's input channel: either a
// single record (batch nil) or a whole micro-batch slice from the
// RecordBuffer pool. A single channel for both keeps Send and SendBatch
// strictly ordered relative to each other.
type inputMsg struct {
	rec   Record
	batch []Record
}

// ProcessFunc is the per-record operator. It runs serially within a
// partition and may emit any number of outputs.
type ProcessFunc func(ctx *Context, rec Record) []any

// Config tunes the engine.
type Config struct {
	// Partitions is the worker count (default 4).
	Partitions int
	// BatchInterval is the micro-batch collection window (default
	// 10ms).
	BatchInterval time.Duration
	// MaxBatch caps records per micro-batch (default 4096).
	MaxBatch int
	// InputBuffer is the Send channel capacity (default 8192).
	InputBuffer int
	// Partitioner overrides key-hash partitioning for non-heartbeat
	// records.
	Partitioner func(rec Record, partitions int) int
	// Clock is the engine's time source (default the wall clock). A fake
	// clock makes the micro-batch cadence manually drivable: batches
	// close when Advance crosses the BatchInterval deadline.
	Clock clock.Clock
	// Name labels this engine's metrics (the "engine" label value);
	// default "stream". Pipelines running several engines (the staged
	// topology) give each a distinct name.
	Name string
	// Metrics is the observability registry. Nil leaves the engine
	// uninstrumented: only the built-in Metrics struct is maintained.
	Metrics *metrics.Registry
	// Ops is the ops plane: span tracing of the micro-batch hierarchy
	// (driver batch → partition → sink) and flight-recorder events for
	// rebroadcasts, operator panics, and dropped records. Nil disables
	// both at a nil-check's cost.
	Ops *obs.Ops
	// BatchHook, when set, is called from the engine loop at every
	// micro-batch barrier — including empty ones — with the cumulative
	// count of resolved input records (see Metrics.Resolved). The recovery
	// layer uses it to apply offset commits only once the records they
	// cover have been fully processed.
	BatchHook func(resolved uint64)
	// OnBarrier, when set, is called from the engine loop at every
	// micro-batch barrier — including empty ones — after the batch (if
	// any) has fully resolved. The latency plane uses it to re-age the
	// freshness watermark gauges on the batch cadence, so a partition
	// that stops making progress shows growing lag instead of a frozen
	// gauge.
	OnBarrier func()
	// PanicHook, when set, is consulted when the operator panics on a
	// record: return true to requeue the record for another attempt in
	// the next micro-batch, false to drop it (the pre-recovery behavior).
	// Heartbeat records are never requeued regardless of the hook's
	// answer — they are cheap to lose and fan out to every partition.
	// The hook must bound its retries (e.g. quarantine after K strikes)
	// or a poisonous record would cycle forever.
	PanicHook func(partition int, rec Record, v any) bool
}

func (c *Config) setDefaults() {
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.BatchInterval <= 0 {
		c.BatchInterval = 10 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.InputBuffer <= 0 {
		c.InputBuffer = 8192
	}
	if c.Partitioner == nil {
		// Inline FNV-1a: hash.fnv's New32a allocates a hasher per record.
		c.Partitioner = func(rec Record, partitions int) int {
			h := uint32(2166136261)
			for i := 0; i < len(rec.Key); i++ {
				h ^= uint32(rec.Key[i])
				h *= 16777619
			}
			return int(h % uint32(partitions))
		}
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	if c.Name == "" {
		c.Name = "stream"
	}
}

// Metrics counts engine activity. Snapshot via Engine.Metrics.
type Metrics struct {
	// Batches and Records count processed micro-batches and records.
	Batches uint64
	Records uint64
	// UpdatesApplied counts rebroadcasts applied between batches.
	UpdatesApplied uint64
	// BroadcastPulls counts worker pulls from the driver (cache
	// misses); BroadcastHits counts worker-local cache hits.
	BroadcastPulls uint64
	BroadcastHits  uint64
	// UpdateBlocked accumulates the serialized lock-step time spent
	// applying updates — the only blocking cost of a model update
	// (§V-A: "the only blocking operation is the in-memory copy").
	UpdateBlocked time.Duration
	// OperatorPanics counts operator panics contained by the engine. The
	// partition survives: one poisonous record must not take down the
	// zero-downtime service. Without a PanicHook the record is dropped;
	// with one it may be requeued (counted under Retried).
	OperatorPanics uint64
	// RecordsDropped counts records the engine accepted but never ran
	// through the operator because Run was cancelled mid-batch. Together
	// with Records it makes the engine conservative: every record Send
	// accepted is eventually counted processed or dropped.
	RecordsDropped uint64
	// Retried counts records requeued by the PanicHook for another
	// attempt. Each retry attempt is counted again in Records, so
	// Records is "processing attempts", not unique records.
	Retried uint64
	// Resolved counts input records fully handled: processed to
	// completion, dropped by panic containment, or quarantined — every
	// outcome except "requeued for retry". A record accepted by Send
	// increments Resolved exactly once, which makes Resolved the
	// commit-gate watermark: when Resolved catches up with the sender's
	// accepted count, nothing is buffered or awaiting retry.
	Resolved uint64
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("stream: engine closed")

type update struct {
	id    string
	value any
}

type inspectReq struct {
	fn   func(partition int, states *StateMap)
	done chan struct{}
}

// Engine is the micro-batch engine. Configure (operator, broadcasts)
// before Run; Send may be called concurrently with Run.
type Engine struct {
	cfg  Config
	proc ProcessFunc
	sink func(any)

	// input carries single records and whole micro-batch slices through
	// the same channel, so interleaved Send and SendBatch calls from one
	// producer are observed in call order — a heartbeat sent after a
	// batch of logs can never overtake it. Batch slices come from the
	// RecordBuffer pool and are recycled once collect has absorbed them.
	input chan inputMsg
	// batchSem bounds in-flight batch hand-offs: without it a fast
	// producer parks thousands of batch slices in the input buffer, the
	// RecordBuffer pool never sees them back, and every batch becomes a
	// fresh allocation. The shallow bound restores the backpressure (and
	// pool cycling) a dedicated small batch channel used to provide.
	batchSem chan struct{}
	recPool  sync.Pool
	closed   chan struct{}
	once     sync.Once

	// Engine-loop scratch, reused across micro-batches. The loop is
	// single-threaded (collect → processBatch → sink), so reuse is safe;
	// workers only write their own partition's slot.
	batchBuf []Record
	partsBuf [][]Record
	outsBuf  [][]any

	driver  *driver
	workers []*worker

	updMu    sync.Mutex
	pending  []update
	inspects []inspectReq

	// retries holds records requeued by the PanicHook; the engine loop
	// prepends them to the next micro-batch.
	retryMu sync.Mutex
	retries []Record

	metMu   sync.Mutex
	metrics Metrics

	// bcHits/bcPulls are the broadcast cache counters. They are the only
	// Metrics fields written from inside partition workers (every record
	// consults a broadcast), so they are atomics rather than metMu-guarded
	// — per-record mutex traffic would serialize the partitions.
	bcHits  atomic.Uint64
	bcPulls atomic.Uint64

	// instr mirrors the built-in counters into the shared registry; nil
	// when Config.Metrics is unset, so uninstrumented engines pay only a
	// nil check.
	instr *engineInstr

	// spans/events are the ops-plane recorders (nil when Config.Ops is
	// unset). driverTid is the span thread for the engine loop; workers
	// carry their own tids.
	spans     *obs.SpanRecorder
	events    *obs.FlightRecorder
	driverTid int

	// running reports whether Run is currently executing — the pipeline
	// liveness probe's signal.
	running atomic.Bool
}

// batchSizeBuckets are record-count bounds for the batch-size histogram
// (powers of four up to the default MaxBatch).
var batchSizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096}

// engineInstr holds the engine's registry handles, resolved once at
// construction so the per-batch cost is plain atomic updates.
type engineInstr struct {
	reg     *metrics.Registry
	name    string
	batches *metrics.Counter
	records *metrics.Counter
	// Dropped records carry a reason label: "abandoned" for accepted
	// records discarded at cancellation, "send-after-close" for records
	// rejected by Send with ErrClosed (never accepted, so excluded from
	// the built-in Metrics.RecordsDropped conservation count).
	droppedAbandoned *metrics.Counter
	droppedClosed    *metrics.Counter
	updates          *metrics.Counter
	panics           *metrics.Counter
	retried          *metrics.Counter
	size             *metrics.Histogram
	latency          *metrics.Histogram
	// entries[p] tracks partition p's state-map size, refreshed at each
	// micro-batch barrier.
	entries []*metrics.Gauge
}

func newEngineInstr(reg *metrics.Registry, name string, partitions int) *engineInstr {
	in := &engineInstr{
		reg:              reg,
		name:             name,
		batches:          reg.Counter("stream_batches_total", "engine", name),
		records:          reg.Counter("stream_records_total", "engine", name),
		droppedAbandoned: reg.Counter("stream_records_dropped_total", "engine", name, "reason", "abandoned"),
		droppedClosed:    reg.Counter("stream_records_dropped_total", "engine", name, "reason", "send-after-close"),
		updates:          reg.Counter("stream_updates_applied_total", "engine", name),
		panics:           reg.Counter("stream_operator_panics_total", "engine", name),
		retried:          reg.Counter("stream_records_retried_total", "engine", name),
		size:             reg.Histogram("stream_batch_size", batchSizeBuckets, "engine", name),
		latency:          reg.Histogram("stream_batch_seconds", nil, "engine", name),
	}
	for i := 0; i < partitions; i++ {
		in.entries = append(in.entries, reg.Gauge("stream_state_entries", "engine", name, "partition", strconv.Itoa(i)))
	}
	return in
}

// driver holds the authoritative broadcast blocks (§V-A: the variable "is
// initially stored" at the driver; workers pull values over the network).
type driver struct {
	mu     sync.RWMutex
	blocks map[string]block
}

type block struct {
	value   any
	version uint64
}

// worker is one partition executor: its state map and broadcast cache.
type worker struct {
	id     int
	states *StateMap
	cache  map[string]block
	tid    int // span thread for this partition's lane

	// pulled mirrors the versions this worker has actually fetched from
	// the driver (written only on the rare cache-miss path) so the
	// version-skew health probe can compare worker views against the
	// driver without touching the unsynchronized cache map.
	pulled sync.Map // broadcast id → uint64 version
}

// New constructs an Engine with the given operator.
func New(cfg Config, proc ProcessFunc) *Engine {
	cfg.setDefaults()
	e := &Engine{
		cfg:      cfg,
		proc:     proc,
		input:    make(chan inputMsg, cfg.InputBuffer),
		batchSem: make(chan struct{}, 16),
		closed:   make(chan struct{}),
		driver:   &driver{blocks: make(map[string]block)},
	}
	e.spans = obs.SpansOf(cfg.Ops)
	e.events = obs.EventsOf(cfg.Ops)
	e.driverTid = e.spans.Thread(cfg.Name + " driver")
	for i := 0; i < cfg.Partitions; i++ {
		e.workers = append(e.workers, &worker{
			id:     i,
			states: NewStateMap(),
			cache:  make(map[string]block),
			tid:    e.spans.Thread(cfg.Name + " p" + strconv.Itoa(i)),
		})
	}
	if cfg.Metrics != nil {
		e.instr = newEngineInstr(cfg.Metrics, cfg.Name, cfg.Partitions)
	}
	return e
}

// SetSink installs the output consumer, called serially from the engine
// loop after each micro-batch barrier. Must be set before Run.
func (e *Engine) SetSink(sink func(any)) { e.sink = sink }

// Partitions returns the partition count.
func (e *Engine) Partitions() int { return e.cfg.Partitions }

// Broadcast registers (or replaces) a broadcast variable immediately. Use
// before Run; at runtime use Rebroadcast, which respects the micro-batch
// lock step.
func (e *Engine) Broadcast(id string, value any) {
	e.driver.mu.Lock()
	b := e.driver.blocks[id]
	e.driver.blocks[id] = block{value: value, version: b.version + 1}
	e.driver.mu.Unlock()
	if e.instr != nil {
		e.instr.reg.Gauge("stream_broadcast_version", "engine", e.instr.name, "id", id).Set(int64(b.version + 1))
	}
	// Invalidate any existing worker caches (pre-Run this is a no-op).
	for _, w := range e.workers {
		delete(w.cache, id)
	}
}

// Rebroadcast queues a runtime update of a broadcast variable. It is
// applied between micro-batches: the driver installs the new value under
// the same variable ID, every worker's locally cached copy is invalidated,
// and subsequent getValue() calls pull the fresh value. The stream never
// stops and no partition state is lost (§V-A).
func (e *Engine) Rebroadcast(id string, value any) {
	e.updMu.Lock()
	e.pending = append(e.pending, update{id: id, value: value})
	e.updMu.Unlock()
}

// Send enqueues one input record. It blocks when the input buffer is full
// (backpressure) and returns ErrClosed after Close. Rejected records are
// counted under stream_records_dropped_total with reason
// "send-after-close" (they do not enter Metrics.RecordsDropped, which
// only balances records the engine accepted).
func (e *Engine) Send(rec Record) error {
	select {
	case <-e.closed:
		return e.rejectClosed(1)
	default:
	}
	select {
	case e.input <- inputMsg{rec: rec}:
		return nil
	case <-e.closed:
		return e.rejectClosed(1)
	}
}

// SendBatch enqueues a micro-batch of records in a single channel
// hand-off, amortizing the per-record synchronization of Send. Ownership
// of recs transfers to the engine, which recycles the backing array into
// the RecordBuffer pool — callers must not touch recs afterwards. Like
// Send it blocks on backpressure and returns ErrClosed after Close.
func (e *Engine) SendBatch(recs []Record) error {
	if len(recs) == 0 {
		e.putRecordBuffer(recs)
		return nil
	}
	select {
	case <-e.closed:
		return e.rejectClosed(len(recs))
	default:
	}
	select {
	case e.batchSem <- struct{}{}:
	case <-e.closed:
		return e.rejectClosed(len(recs))
	}
	select {
	case e.input <- inputMsg{batch: recs}:
		return nil
	case <-e.closed:
		<-e.batchSem
		return e.rejectClosed(len(recs))
	}
}

// RecordBuffer returns an empty record slice from the engine's arena for
// use with SendBatch. Steady-state batches cycle through the pool, so
// batching producers allocate no slices per batch.
func (e *Engine) RecordBuffer() []Record {
	if v := e.recPool.Get(); v != nil {
		return (*v.(*[]Record))[:0]
	}
	return make([]Record, 0, 256)
}

// putRecordBuffer recycles an absorbed batch slice. Elements are zeroed
// first so pooled arrays do not pin record payloads.
func (e *Engine) putRecordBuffer(recs []Record) {
	if cap(recs) == 0 {
		return
	}
	recs = recs[:cap(recs)]
	for i := range recs {
		recs[i] = Record{}
	}
	recs = recs[:0]
	e.recPool.Put(&recs)
}

// rejectClosed accounts n records refused because the engine is closed.
func (e *Engine) rejectClosed(n int) error {
	if e.instr != nil {
		e.instr.droppedClosed.Add(uint64(n))
	}
	e.events.Record(obs.EventRecordsDropped, e.cfg.Name, "send after close", int64(n))
	return ErrClosed
}

// Close stops input. Run drains everything already sent, then returns.
func (e *Engine) Close() {
	e.once.Do(func() { close(e.closed) })
}

// Metrics returns a snapshot of the engine counters.
func (e *Engine) Metrics() Metrics {
	e.metMu.Lock()
	m := e.metrics
	e.metMu.Unlock()
	m.BroadcastHits = e.bcHits.Load()
	m.BroadcastPulls = e.bcPulls.Load()
	return m
}

// Running reports whether the micro-batch loop is currently executing —
// true between Run's entry and return. The ops-plane liveness probe
// reads it.
func (e *Engine) Running() bool { return e.running.Load() }

// BroadcastVersions reports the driver's current version of a broadcast
// variable and, per worker, the version that worker last pulled (0 if it
// has never pulled). The gap between the two is the version skew the
// ops-plane probe watches after a rebroadcast.
func (e *Engine) BroadcastVersions(id string) (driver uint64, workers []uint64) {
	e.driver.mu.RLock()
	driver = e.driver.blocks[id].version
	e.driver.mu.RUnlock()
	workers = make([]uint64, len(e.workers))
	for i, w := range e.workers {
		if v, ok := w.pulled.Load(id); ok {
			workers[i] = v.(uint64)
		}
	}
	return driver, workers
}

// StateMap returns partition p's state map. Safe to use from the operator
// (same partition) or after Run returns; concurrent external mutation
// during Run is the caller's responsibility.
func (e *Engine) StateMap(p int) (*StateMap, error) {
	if p < 0 || p >= len(e.workers) {
		return nil, fmt.Errorf("stream: no partition %d", p)
	}
	return e.workers[p].states, nil
}

// Run executes the micro-batch loop until the context is cancelled or
// Close has been called and the input is drained. Queued rebroadcasts are
// applied between micro-batches.
func (e *Engine) Run(ctx context.Context) error {
	e.running.Store(true)
	defer e.running.Store(false)
	// Flush pending updates/inspections at exit so nothing blocks
	// forever when Run stops via context cancellation.
	defer e.applyUpdates()
	for {
		batch, drained := e.collect(ctx)
		// Records requeued by the PanicHook go to the front of the next
		// batch, keeping redelivery close to the original attempt.
		if retries := e.takeRetries(); len(retries) > 0 {
			batch = append(retries, batch...)
		}
		if err := ctx.Err(); err != nil {
			// The partially collected batch and anything still queued
			// in the input buffer will never run through the operator.
			// Count them dropped so conservation (accepted == processed
			// + dropped) holds at shutdown. Records Sent concurrently
			// with the cancellation may still race past this drain;
			// orderly shutdown (Close before cancel) is exact.
			e.dropAbandoned(batch)
			return err
		}

		// Model updates run between micro-batches in a serialized
		// lock step (§V-A).
		e.applyUpdates()

		if len(batch) > 0 {
			e.processBatch(batch)
		} else {
			if e.cfg.BatchHook != nil {
				// Empty barriers still report the watermark, so a commit
				// gated on a batch that resolved just before registration
				// is flushed at the next barrier instead of waiting for
				// traffic.
				e.metMu.Lock()
				resolved := e.metrics.Resolved
				e.metMu.Unlock()
				e.cfg.BatchHook(resolved)
			}
			if e.cfg.OnBarrier != nil {
				e.cfg.OnBarrier()
			}
		}
		if drained && !e.hasRetries() {
			return nil
		}
	}
}

// takeRetries drains the retry queue.
func (e *Engine) takeRetries() []Record {
	e.retryMu.Lock()
	out := e.retries
	e.retries = nil
	e.retryMu.Unlock()
	return out
}

func (e *Engine) hasRetries() bool {
	e.retryMu.Lock()
	defer e.retryMu.Unlock()
	return len(e.retries) > 0
}

func (e *Engine) retryLen() int {
	e.retryMu.Lock()
	defer e.retryMu.Unlock()
	return len(e.retries)
}

// dropAbandoned accounts a batch that will never be processed plus
// everything still buffered in the input channels (and any records parked
// in the retry queue) as RecordsDropped.
func (e *Engine) dropAbandoned(batch []Record) {
	dropped := uint64(len(batch)) + uint64(len(e.takeRetries()))
	for {
		select {
		case msg := <-e.input:
			if msg.batch != nil {
				dropped += uint64(len(msg.batch))
				<-e.batchSem
			} else {
				dropped++
			}
		default:
			if dropped == 0 {
				return
			}
			e.metMu.Lock()
			e.metrics.RecordsDropped += dropped
			e.metrics.Resolved += dropped
			e.metMu.Unlock()
			if e.instr != nil {
				e.instr.droppedAbandoned.Add(dropped)
			}
			e.events.Record(obs.EventRecordsDropped, e.cfg.Name, "abandoned at cancellation", int64(dropped))
			return
		}
	}
}

// collect gathers one micro-batch: up to MaxBatch records within
// BatchInterval (a batched hand-off may overshoot the cap by at most one
// producer batch). It reports drained=true when the engine is closed and
// the input is empty. The returned slice is engine-loop scratch, valid
// until the next collect call.
func (e *Engine) collect(ctx context.Context) ([]Record, bool) {
	batch := e.batchBuf[:0]
	defer func() { e.batchBuf = batch[:0] }()
	timer := e.cfg.Clock.NewTimer(e.cfg.BatchInterval)
	defer timer.Stop()
	for len(batch) < e.cfg.MaxBatch {
		select {
		case msg := <-e.input:
			batch = e.absorb(batch, msg)
		case <-timer.C():
			return batch, false
		case <-ctx.Done():
			return batch, false
		case <-e.closed:
			// Drain whatever has been sent, then stop.
			for {
				select {
				case msg := <-e.input:
					batch = e.absorb(batch, msg)
					if len(batch) >= e.cfg.MaxBatch {
						return batch, false
					}
				default:
					return batch, true
				}
			}
		}
	}
	return batch, false
}

// absorb appends one input hand-off — a single record or a pooled batch
// slice — to the collection buffer, recycling batch slices.
func (e *Engine) absorb(batch []Record, msg inputMsg) []Record {
	if msg.batch == nil {
		return append(batch, msg.rec)
	}
	batch = append(batch, msg.batch...)
	e.putRecordBuffer(msg.batch)
	<-e.batchSem
	return batch
}

// processBatch partitions the batch, runs every partition's records
// through the operator in parallel, waits for the barrier, and feeds
// outputs to the sink in partition order.
func (e *Engine) processBatch(batch []Record) {
	start := e.cfg.Clock.Now()
	batchSpan := e.spans.Start(e.cfg.Name, "batch", e.driverTid)
	if e.partsBuf == nil {
		e.partsBuf = make([][]Record, e.cfg.Partitions)
		e.outsBuf = make([][]any, e.cfg.Partitions)
	}
	parts := e.partsBuf
	for i := range parts {
		parts[i] = parts[i][:0]
	}
	for _, rec := range batch {
		if rec.Heartbeat {
			// Custom partitioner: heartbeats reach every
			// partition (§V-B).
			for i := range parts {
				parts[i] = append(parts[i], rec)
			}
			continue
		}
		p := e.cfg.Partitioner(rec, e.cfg.Partitions)
		parts[p] = append(parts[p], rec)
	}

	outputs := e.outsBuf
	for i := range outputs {
		outputs[i] = outputs[i][:0]
	}
	retriesBefore := e.retryLen()
	var wg sync.WaitGroup
	for i, w := range e.workers {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w *worker, recs []Record, out *[]any) {
			defer wg.Done()
			span := e.spans.Start(e.cfg.Name, "p"+strconv.Itoa(w.id)+" process", w.tid)
			defer span.End()
			c := &Context{engine: e, worker: w, batchStart: start}
			for _, rec := range recs {
				*out = append(*out, e.process(c, rec)...)
			}
		}(w, parts[i], &outputs[i])
	}
	wg.Wait()

	// Every input record of this batch is now resolved except the ones
	// the PanicHook requeued — those are counted when their retry attempt
	// resolves. (Heartbeat fan-out copies are per-partition expansions of
	// one input record and are never requeued, so the subtraction is
	// exact in input-record units.)
	requeued := uint64(e.retryLen() - retriesBefore)
	e.metMu.Lock()
	e.metrics.Batches++
	e.metrics.Records += uint64(len(batch))
	e.metrics.Resolved += uint64(len(batch)) - requeued
	resolved := e.metrics.Resolved
	e.metMu.Unlock()
	if e.instr != nil {
		e.instr.batches.Inc()
		e.instr.records.Add(uint64(len(batch)))
		e.instr.size.Observe(float64(len(batch)))
		e.instr.latency.Observe(e.cfg.Clock.Since(start).Seconds())
		// Workers are quiescent at the barrier: state maps are safe to
		// read from the engine loop.
		for i, w := range e.workers {
			e.instr.entries[i].Set(int64(w.states.Len()))
		}
	}

	if e.sink != nil {
		sinkSpan := e.spans.Start(e.cfg.Name, "sink", e.driverTid)
		for _, outs := range outputs {
			for _, o := range outs {
				e.sink(o)
			}
		}
		sinkSpan.End()
	}
	// Zero the reused scratch so retained arrays don't pin this batch's
	// payloads until the slots happen to be overwritten.
	for i := range parts {
		for j := range parts[i] {
			parts[i][j] = Record{}
		}
		for j := range outputs[i] {
			outputs[i][j] = nil
		}
	}
	for i := range batch {
		batch[i] = Record{}
	}
	batchSpan.End()
	// The commit gate fires after the sink: everything this batch covers
	// — state mutations and emitted outputs — has landed.
	if e.cfg.BatchHook != nil {
		e.cfg.BatchHook(resolved)
	}
	if e.cfg.OnBarrier != nil {
		e.cfg.OnBarrier()
	}
}

// process runs the operator on one record, containing panics so a
// poisonous record drops — or, when the PanicHook asks for it, retries —
// instead of killing the partition (and with it the zero-downtime
// guarantee).
func (e *Engine) process(c *Context, rec Record) (out []any) {
	defer func() {
		if r := recover(); r != nil {
			e.metMu.Lock()
			e.metrics.OperatorPanics++
			e.metMu.Unlock()
			if e.instr != nil {
				e.instr.panics.Inc()
			}
			e.events.Record(obs.EventWorkerCrash, e.cfg.Name,
				fmt.Sprintf("partition %d operator panic: %v", c.worker.id, r), 1)
			out = nil
			if !rec.Heartbeat && e.cfg.PanicHook != nil && e.cfg.PanicHook(c.worker.id, rec, r) {
				e.retryMu.Lock()
				e.retries = append(e.retries, rec)
				e.retryMu.Unlock()
				e.metMu.Lock()
				e.metrics.Retried++
				e.metMu.Unlock()
				if e.instr != nil {
					e.instr.retried.Inc()
				}
			}
		}
	}()
	return e.proc(c, rec)
}

// Inspect runs fn against every partition's state map at the next
// micro-batch barrier — the same serialized lock step model updates use —
// and blocks until it has run. It is the race-free way to observe
// partition state (open-event counts, state-map sizes) while the engine is
// live. If Run is not active the inspection executes immediately.
func (e *Engine) Inspect(fn func(partition int, states *StateMap)) {
	select {
	case <-e.closed:
		// Engine stopped (or never started): partitions are quiescent.
		for _, w := range e.workers {
			fn(w.id, w.states)
		}
		return
	default:
	}
	req := inspectReq{fn: fn, done: make(chan struct{})}
	e.updMu.Lock()
	e.inspects = append(e.inspects, req)
	e.updMu.Unlock()
	select {
	case <-req.done:
	case <-e.closed:
		// Run exited without draining the queue; partitions are
		// quiescent now.
		for _, w := range e.workers {
			fn(w.id, w.states)
		}
	}
}

// applyUpdates installs queued rebroadcasts and runs queued inspections:
// new driver blocks under the same IDs, all worker caches invalidated.
func (e *Engine) applyUpdates() {
	e.updMu.Lock()
	pending := e.pending
	inspects := e.inspects
	e.pending = nil
	e.inspects = nil
	e.updMu.Unlock()
	for _, req := range inspects {
		for _, w := range e.workers {
			req.fn(w.id, w.states)
		}
		close(req.done)
	}
	if len(pending) == 0 {
		return
	}
	start := e.cfg.Clock.Now()
	span := e.spans.Start(e.cfg.Name, "rebroadcast", e.driverTid)
	for _, u := range pending {
		e.driver.mu.Lock()
		b := e.driver.blocks[u.id]
		e.driver.blocks[u.id] = block{value: u.value, version: b.version + 1}
		e.driver.mu.Unlock()
		if e.instr != nil {
			e.instr.reg.Gauge("stream_broadcast_version", "engine", e.instr.name, "id", u.id).Set(int64(b.version + 1))
		}
		for _, w := range e.workers {
			delete(w.cache, u.id)
		}
		e.events.Record(obs.EventRebroadcastApplied, u.id, "installed at micro-batch barrier", int64(b.version+1))
	}
	span.End()
	e.metMu.Lock()
	e.metrics.UpdatesApplied += uint64(len(pending))
	e.metrics.UpdateBlocked += e.cfg.Clock.Since(start)
	e.metMu.Unlock()
	if e.instr != nil {
		e.instr.updates.Add(uint64(len(pending)))
	}
}

// Context is the operator's view of its partition.
type Context struct {
	engine *Engine
	worker *worker

	// batchStart is the engine's pickup stamp for the micro-batch this
	// context is processing — taken once per batch in processBatch, so
	// operators can close delivery-latency measurements without paying a
	// per-record clock read.
	batchStart time.Time
}

// Partition returns the partition index.
func (c *Context) Partition() int { return c.worker.id }

// BatchStart returns the engine's clock stamp from the moment this
// micro-batch was picked up for processing. All records of the batch
// share it.
func (c *Context) BatchStart() time.Time { return c.batchStart }

// States returns the partition's state map — the getParentStateMap()
// analog of §V-B, letting heartbeat handling enumerate open states without
// their keys.
func (c *Context) States() *StateMap { return c.worker.states }

// Broadcast returns the current value of a broadcast variable via the
// worker's getValue() protocol: local cache first, then a pull from the
// driver on a miss.
func (c *Context) Broadcast(id string) (any, bool) {
	if b, ok := c.worker.cache[id]; ok {
		c.engine.bcHits.Add(1)
		return b.value, true
	}
	c.engine.driver.mu.RLock()
	b, ok := c.engine.driver.blocks[id]
	c.engine.driver.mu.RUnlock()
	if !ok {
		return nil, false
	}
	c.worker.cache[id] = b
	c.worker.pulled.Store(id, b.version)
	c.engine.bcPulls.Add(1)
	return b.value, true
}

// StateMap is a per-partition keyed state store. Operators access it
// without locks (partition execution is serial); the map also supports
// enumeration so heartbeats can find states whose keys they do not know.
type StateMap struct {
	m map[string]any
}

// NewStateMap returns an empty state map.
func NewStateMap() *StateMap {
	return &StateMap{m: make(map[string]any)}
}

// Get returns the state under key.
func (s *StateMap) Get(key string) (any, bool) {
	v, ok := s.m[key]
	return v, ok
}

// Put stores state under key.
func (s *StateMap) Put(key string, value any) { s.m[key] = value }

// Delete removes the state under key.
func (s *StateMap) Delete(key string) { delete(s.m, key) }

// Len returns the number of stored states.
func (s *StateMap) Len() int { return len(s.m) }

// Range calls fn for every state until fn returns false.
func (s *StateMap) Range(fn func(key string, value any) bool) {
	for k, v := range s.m {
		if !fn(k, v) {
			return
		}
	}
}
