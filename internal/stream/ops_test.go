package stream

import (
	"context"
	"fmt"
	"testing"
	"time"

	"loglens/internal/testutil"
)

// TestRunningAndBroadcastVersions covers the two engine introspection
// hooks the ops-plane probes read: Running flips with the micro-batch
// loop's lifetime, and BroadcastVersions reports driver-vs-worker version
// skew around a rebroadcast.
func TestRunningAndBroadcastVersions(t *testing.T) {
	e := New(Config{Partitions: 2}, func(ctx *Context, rec Record) []any {
		v, _ := ctx.Broadcast("model")
		return []any{v}
	})
	if e.Running() {
		t.Fatal("Running() true before Run")
	}
	e.Broadcast("model", "v1")
	if driver, workers := e.BroadcastVersions("model"); driver != 1 || len(workers) != 2 ||
		workers[0] != 0 || workers[1] != 0 {
		t.Fatalf("pre-run versions: driver %d, workers %v", driver, workers)
	}

	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	testutil.WaitUntil(t, 5*time.Second, func() bool { return e.Running() }, "engine never reported running")

	// Route a record to every partition so each worker pulls the
	// broadcast at least once, then the skew must read zero.
	for i := 0; i < 20; i++ {
		e.Send(Record{Key: fmt.Sprintf("k%d", i)})
	}
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		driver, workers := e.BroadcastVersions("model")
		for _, v := range workers {
			if v != driver {
				return false
			}
		}
		return true
	}, "workers never caught up to the driver version")

	// Two rebroadcasts with no traffic in between: the driver runs
	// ahead; workers hold the version they last pulled.
	e.Rebroadcast("model", "v2")
	e.Rebroadcast("model", "v3")
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		driver, _ := e.BroadcastVersions("model")
		return driver == 3
	}, "rebroadcasts never applied")
	if _, workers := e.BroadcastVersions("model"); workers[0] != 1 || workers[1] != 1 {
		t.Fatalf("workers advanced without pulling: %v", workers)
	}

	e.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if e.Running() {
		t.Fatal("Running() true after Run returned")
	}
}
