package stream

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSlowPartitionDoesNotStallOthers: with persistent per-partition
// workers there is no global batch barrier, so one partition's slow (or
// wedged) operator must not block the other partitions' progress. The
// old fan-out engine joined every partition at a per-batch barrier; this
// pins the independence property the per-core sharding exists for.
func TestSlowPartitionDoesNotStallOthers(t *testing.T) {
	const parts = 4
	const perPart = 50

	// Partition 0's operator parks on the gate; the others run free with
	// small seeded jitter so their batch boundaries interleave unevenly.
	gate := make(chan struct{})
	var fastDone [parts]atomic.Uint64
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(7))
	jitter := func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		return time.Duration(rng.Intn(200)) * time.Microsecond
	}

	e := New(Config{
		Partitions:    parts,
		BatchInterval: time.Millisecond,
		Partitioner: func(rec Record, partitions int) int {
			p, _ := strconv.Atoi(rec.Key)
			return p % partitions
		},
	}, func(ctx *Context, rec Record) []any {
		if ctx.Partition() == 0 {
			<-gate
		} else {
			time.Sleep(jitter())
		}
		fastDone[ctx.Partition()].Add(1)
		return []any{rec.Value}
	})

	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()

	for i := 0; i < perPart; i++ {
		for p := 0; p < parts; p++ {
			if err := e.Send(Record{Key: strconv.Itoa(p), Value: i}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Every fast partition must finish all its records while partition 0
	// is still parked on its first one.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := fastDone[1].Load() + fastDone[2].Load() + fastDone[3].Load()
		if got == 3*perPart {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fast partitions stalled behind the slow one: %d/%d processed "+
				"(p1=%d p2=%d p3=%d, slow p0=%d)", got, 3*perPart,
				fastDone[1].Load(), fastDone[2].Load(), fastDone[3].Load(), fastDone[0].Load())
		}
		time.Sleep(time.Millisecond)
	}
	if n := fastDone[0].Load(); n != 0 {
		t.Fatalf("slow partition processed %d records with the gate held", n)
	}

	// Release the slow partition; everything drains and conservation
	// closes exactly.
	close(gate)
	e.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Records != parts*perPart || m.Resolved != parts*perPart {
		t.Fatalf("conservation broken: records=%d resolved=%d, want %d", m.Records, m.Resolved, parts*perPart)
	}
	if m.RecordsDropped != 0 {
		t.Fatalf("records dropped = %d, want 0", m.RecordsDropped)
	}
	for p := 0; p < parts; p++ {
		if n := fastDone[p].Load(); n != perPart {
			t.Errorf("partition %d processed %d, want %d", p, n, perPart)
		}
	}
}
