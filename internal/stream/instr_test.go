package stream

import (
	"context"
	"fmt"
	"testing"

	"loglens/internal/clock"
	"loglens/internal/metrics"
)

// TestCancelDropAccounting: records accepted by Send but abandoned when Run
// is cancelled mid-batch must be counted dropped, so accepted == processed
// + dropped even at a hard shutdown. Before the fix the ctx-cancel path
// silently discarded both the half-collected batch and the input buffer.
func TestCancelDropAccounting(t *testing.T) {
	clk := clock.NewFake()
	e := New(Config{Partitions: 2, Clock: clk, Metrics: metrics.NewRegistry(), Name: "main"},
		func(ctx *Context, rec Record) []any { return []any{rec.Value} })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- e.Run(ctx) }()

	const sent = 50
	for i := 0; i < sent; i++ {
		if err := e.Send(Record{Key: fmt.Sprintf("k%d", i), Value: i}); err != nil {
			t.Fatal(err)
		}
	}
	// The fake clock never advances, so no batch interval elapses and
	// nothing is processed: every record is in the half-collected batch
	// or still in the input buffer when the cancel lands.
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}

	m := e.Metrics()
	if m.Records != 0 {
		t.Fatalf("records processed = %d, want 0", m.Records)
	}
	if m.RecordsDropped != sent {
		t.Fatalf("records dropped = %d, want %d", m.RecordsDropped, sent)
	}
	if m.Records+m.RecordsDropped != sent {
		t.Fatalf("conservation broken: processed %d + dropped %d != sent %d",
			m.Records, m.RecordsDropped, sent)
	}
	snap := e.cfg.Metrics.Snapshot()
	if got := snap.Counter("stream_records_dropped_total", "engine", "main", "reason", "abandoned"); got != sent {
		t.Fatalf("registry dropped counter = %d, want %d", got, sent)
	}
}

// TestRegistryMirrors: an instrumented engine must mirror its built-in
// counters into the shared registry with the engine label, including batch
// histograms, per-partition state gauges, and broadcast versions.
func TestRegistryMirrors(t *testing.T) {
	reg := metrics.NewRegistry()
	e := New(Config{Partitions: 2, Metrics: reg, Name: "parse"},
		func(ctx *Context, rec Record) []any {
			ctx.States().Put(rec.Key, rec.Value)
			return nil
		})
	e.Broadcast("model", "v1")
	e.Rebroadcast("model", "v2") // queued; Run applies it between batches

	var recs []Record
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{Key: fmt.Sprintf("k%d", i), Value: i})
	}
	run(t, e, recs)

	snap := reg.Snapshot()
	if got := snap.Counter("stream_records_total", "engine", "parse"); got != 10 {
		t.Fatalf("stream_records_total = %d, want 10", got)
	}
	if got := snap.Counter("stream_batches_total", "engine", "parse"); got == 0 {
		t.Fatal("stream_batches_total = 0, want > 0")
	}
	if hv, ok := snap.Histogram("stream_batch_size", "engine", "parse"); !ok || hv.Count == 0 {
		t.Fatalf("stream_batch_size histogram missing or empty: %+v ok=%v", hv, ok)
	}
	if hv, ok := snap.Histogram("stream_batch_seconds", "engine", "parse"); !ok || hv.Count == 0 {
		t.Fatalf("stream_batch_seconds histogram missing or empty: %+v ok=%v", hv, ok)
	}
	var entries int64
	for p := 0; p < 2; p++ {
		entries += snap.Gauge("stream_state_entries", "engine", "parse", "partition", fmt.Sprint(p))
	}
	if entries != 10 {
		t.Fatalf("state entries across partitions = %d, want 10", entries)
	}
	if got := snap.Gauge("stream_broadcast_version", "engine", "parse", "id", "model"); got != 2 {
		t.Fatalf("stream_broadcast_version = %d, want 2", got)
	}
	if got := snap.Counter("stream_updates_applied_total", "engine", "parse"); got != 1 {
		t.Fatalf("stream_updates_applied_total = %d, want 1", got)
	}
}
