package stream

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"loglens/internal/clock"
)

// advanceUntil drives a fake-clock engine until cond holds, one batch
// interval per step. The real-time deadline is a failsafe, not a
// synchronization mechanism.
func advanceUntil(t *testing.T, clk *clock.Fake, step time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("engine did not reach expected state under fake clock")
		}
		clk.BlockUntil(1)
		clk.Advance(step)
	}
}

// run starts the engine, feeds records, closes, and returns collected
// outputs.
func run(t *testing.T, e *Engine, recs []Record) []any {
	t.Helper()
	var mu sync.Mutex
	var outs []any
	e.SetSink(func(o any) {
		mu.Lock()
		outs = append(outs, o)
		mu.Unlock()
	})
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	for _, r := range recs {
		if err := e.Send(r); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestEchoPipeline(t *testing.T) {
	e := New(Config{Partitions: 3}, func(ctx *Context, rec Record) []any {
		return []any{rec.Value}
	})
	var recs []Record
	for i := 0; i < 100; i++ {
		recs = append(recs, Record{Key: fmt.Sprintf("k%d", i), Value: i})
	}
	outs := run(t, e, recs)
	if len(outs) != 100 {
		t.Fatalf("outputs = %d, want 100", len(outs))
	}
	m := e.Metrics()
	if m.Records != 100 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestKeyAffinityAndOrder(t *testing.T) {
	// Records with the same key must be processed serially in order by
	// one partition.
	type seen struct {
		partition int
		values    []int
	}
	var mu sync.Mutex
	perKey := map[string]*seen{}
	e := New(Config{Partitions: 4}, func(ctx *Context, rec Record) []any {
		mu.Lock()
		s := perKey[rec.Key]
		if s == nil {
			s = &seen{partition: ctx.Partition()}
			perKey[rec.Key] = s
		}
		if s.partition != ctx.Partition() {
			t.Errorf("key %q moved partitions", rec.Key)
		}
		s.values = append(s.values, rec.Value.(int))
		mu.Unlock()
		return nil
	})
	var recs []Record
	for i := 0; i < 50; i++ {
		for k := 0; k < 5; k++ {
			recs = append(recs, Record{Key: fmt.Sprintf("k%d", k), Value: i})
		}
	}
	run(t, e, recs)
	for k, s := range perKey {
		if len(s.values) != 50 {
			t.Fatalf("key %s saw %d records", k, len(s.values))
		}
		for i, v := range s.values {
			if v != i {
				t.Fatalf("key %s order violated at %d: %d", k, i, v)
			}
		}
	}
}

func TestStatePersistsAcrossBatches(t *testing.T) {
	e := New(Config{Partitions: 2, BatchInterval: time.Millisecond, MaxBatch: 1},
		func(ctx *Context, rec Record) []any {
			v, _ := ctx.States().Get(rec.Key)
			n, _ := v.(int)
			n++
			ctx.States().Put(rec.Key, n)
			return []any{n}
		})
	var recs []Record
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{Key: "counter", Value: i})
	}
	outs := run(t, e, recs)
	// MaxBatch 1 forces one batch per record; the counter must still
	// reach 10.
	last := outs[len(outs)-1].(int)
	if last != 10 {
		t.Fatalf("final counter = %d, want 10 (state lost between batches?)", last)
	}
	if e.Metrics().Batches < 10 {
		t.Errorf("batches = %d, expected one per record", e.Metrics().Batches)
	}
}

func TestHeartbeatReachesAllPartitions(t *testing.T) {
	var mu sync.Mutex
	hbParts := map[int]int{}
	e := New(Config{Partitions: 4}, func(ctx *Context, rec Record) []any {
		if rec.Heartbeat {
			mu.Lock()
			hbParts[ctx.Partition()]++
			mu.Unlock()
		}
		return nil
	})
	run(t, e, []Record{
		{Key: "a", Value: 1},
		{Heartbeat: true, Time: time.Now()},
	})
	if len(hbParts) != 4 {
		t.Fatalf("heartbeat reached %d partitions, want 4: %v", len(hbParts), hbParts)
	}
}

func TestBroadcastPullProtocol(t *testing.T) {
	e := New(Config{Partitions: 2}, func(ctx *Context, rec Record) []any {
		v, ok := ctx.Broadcast("model")
		if !ok {
			t.Error("broadcast missing")
		}
		return []any{v}
	})
	e.Broadcast("model", "v1")
	var recs []Record
	for i := 0; i < 20; i++ {
		recs = append(recs, Record{Key: fmt.Sprintf("k%d", i)})
	}
	outs := run(t, e, recs)
	for _, o := range outs {
		if o != "v1" {
			t.Fatalf("output %v", o)
		}
	}
	m := e.Metrics()
	// Each worker pulls at most once; the rest are cache hits.
	if m.BroadcastPulls > 2 {
		t.Errorf("pulls = %d, want <= 2", m.BroadcastPulls)
	}
	if m.BroadcastHits < 18 {
		t.Errorf("hits = %d", m.BroadcastHits)
	}
}

func TestRebroadcastZeroDowntime(t *testing.T) {
	// Stream 1000 records; update the model mid-stream. Every record
	// must be processed (zero downtime), early records under v1, late
	// records under v2, and per-key state must survive the update.
	type out struct {
		model string
		count int
	}
	clk := clock.NewFake()
	const interval = time.Millisecond
	e := New(Config{Partitions: 2, BatchInterval: interval, MaxBatch: 64, Clock: clk},
		func(ctx *Context, rec Record) []any {
			v, _ := ctx.Broadcast("model")
			n, _ := ctx.States().Get("n")
			c, _ := n.(int)
			c++
			ctx.States().Put("n", c)
			return []any{out{model: v.(string), count: c}}
		})
	e.Broadcast("model", "v1")

	var mu sync.Mutex
	var outs []out
	e.SetSink(func(o any) {
		mu.Lock()
		outs = append(outs, o.(out))
		mu.Unlock()
	})
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()

	for i := 0; i < 500; i++ {
		e.Send(Record{Key: fmt.Sprintf("k%d", i%7)})
	}
	// Drive the fake clock until the v1 records have actually flowed
	// through before updating, so both versions are exercised.
	advanceUntil(t, clk, interval, func() bool { return e.Metrics().Records >= 500 })
	e.Rebroadcast("model", "v2")
	for i := 0; i < 500; i++ {
		e.Send(Record{Key: fmt.Sprintf("k%d", i%7)})
	}
	e.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if len(outs) != 1000 {
		t.Fatalf("processed %d records, want 1000 (downtime?)", len(outs))
	}
	sawV1, sawV2 := false, false
	switched := false
	for _, o := range outs {
		switch o.model {
		case "v1":
			sawV1 = true
			if switched {
				// v1 after v2 within a partition's output order
				// is possible across partitions; tolerate.
			}
		case "v2":
			sawV2 = true
			switched = true
		default:
			t.Fatalf("unexpected model %q", o.model)
		}
	}
	if !sawV1 || !sawV2 {
		t.Errorf("model versions seen: v1=%v v2=%v", sawV1, sawV2)
	}
	// State survived: total processed count across partitions is 1000.
	total := 0
	for p := 0; p < e.Partitions(); p++ {
		sm, err := e.StateMap(p)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := sm.Get("n"); ok {
			total += v.(int)
		}
	}
	if total != 1000 {
		t.Errorf("state count = %d, want 1000 (state lost on update?)", total)
	}
	if e.Metrics().UpdatesApplied != 1 {
		t.Errorf("updates applied = %d", e.Metrics().UpdatesApplied)
	}
}

func TestSendAfterClose(t *testing.T) {
	e := New(Config{}, func(ctx *Context, rec Record) []any { return nil })
	e.Close()
	if err := e.Send(Record{}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestContextCancel(t *testing.T) {
	e := New(Config{}, func(ctx *Context, rec Record) []any { return nil })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- e.Run(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled Run must return an error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestStateMapBasics(t *testing.T) {
	sm := NewStateMap()
	sm.Put("a", 1)
	sm.Put("b", 2)
	if v, ok := sm.Get("a"); !ok || v != 1 {
		t.Error("Get failed")
	}
	if sm.Len() != 2 {
		t.Error("Len failed")
	}
	seen := 0
	sm.Range(func(k string, v any) bool {
		seen++
		return true
	})
	if seen != 2 {
		t.Error("Range failed")
	}
	// Early stop.
	seen = 0
	sm.Range(func(k string, v any) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Error("Range early stop failed")
	}
	sm.Delete("a")
	if _, ok := sm.Get("a"); ok {
		t.Error("Delete failed")
	}
}

func TestCustomPartitioner(t *testing.T) {
	var mu sync.Mutex
	parts := map[int]int{}
	e := New(Config{
		Partitions:  4,
		Partitioner: func(rec Record, n int) int { return 1 }, // everything to partition 1
	}, func(ctx *Context, rec Record) []any {
		mu.Lock()
		parts[ctx.Partition()]++
		mu.Unlock()
		return nil
	})
	var recs []Record
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{Key: fmt.Sprintf("k%d", i)})
	}
	run(t, e, recs)
	if parts[1] != 10 || len(parts) != 1 {
		t.Fatalf("partition spread = %v", parts)
	}
}

func TestInspectAtBarrier(t *testing.T) {
	clk := clock.NewFake()
	const interval = time.Millisecond
	e := New(Config{Partitions: 2, BatchInterval: interval, Clock: clk},
		func(ctx *Context, rec Record) []any {
			ctx.States().Put(rec.Key, rec.Value)
			return nil
		})
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	for i := 0; i < 20; i++ {
		e.Send(Record{Key: fmt.Sprintf("k%d", i), Value: i})
	}
	advanceUntil(t, clk, interval, func() bool { return e.Metrics().Records >= 20 })
	// Inspect blocks until the next micro-batch barrier, so keep the
	// fake clock moving while it waits.
	total := 0
	parts := map[int]bool{}
	inspected := make(chan struct{})
	go func() {
		defer close(inspected)
		e.Inspect(func(p int, sm *StateMap) {
			parts[p] = true
			total += sm.Len()
		})
	}()
	advanceUntil(t, clk, interval, func() bool {
		select {
		case <-inspected:
			return true
		default:
			return false
		}
	})
	if total != 20 {
		t.Errorf("inspected %d states, want 20", total)
	}
	if len(parts) != 2 {
		t.Errorf("partitions visited = %v", parts)
	}
	e.Close()
	<-done
	// Inspect after shutdown still works (quiescent path).
	total = 0
	e.Inspect(func(p int, sm *StateMap) { total += sm.Len() })
	if total != 20 {
		t.Errorf("post-shutdown inspect = %d", total)
	}
}

// A chain of rebroadcasts must be applied exactly once each, in order:
// no update is lost, none is applied twice, and every record observes a
// version that was genuinely installed, never regressing within a
// partition. Runs entirely on the fake clock.
func TestRebroadcastNeverLosesOrDoubleAppliesModels(t *testing.T) {
	clk := clock.NewFake()
	const interval = time.Millisecond
	type obs struct {
		partition int
		version   int
	}
	var mu sync.Mutex
	var seen []obs
	e := New(Config{Partitions: 3, BatchInterval: interval, Clock: clk},
		func(ctx *Context, rec Record) []any {
			v, ok := ctx.Broadcast("model")
			if !ok {
				t.Error("model broadcast missing")
				return nil
			}
			mu.Lock()
			seen = append(seen, obs{ctx.Partition(), v.(int)})
			mu.Unlock()
			return nil
		})
	e.Broadcast("model", 1)
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()

	const versions, perVersion = 5, 40
	sent := 0
	for v := 1; v <= versions; v++ {
		if v > 1 {
			e.Rebroadcast("model", v)
		}
		for i := 0; i < perVersion; i++ {
			if err := e.Send(Record{Key: fmt.Sprintf("k%d", sent)}); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		// Wave v fully processed before the next update is queued, so
		// every record's expected version is exact.
		advanceUntil(t, clk, interval, func() bool {
			return e.Metrics().Records >= uint64(sent)
		})
	}
	e.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if got := e.Metrics().UpdatesApplied; got != versions-1 {
		t.Errorf("UpdatesApplied = %d, want %d (lost or double-applied update)", got, versions-1)
	}
	counts := map[int]int{}
	last := map[int]int{}
	for _, o := range seen {
		if o.version < 1 || o.version > versions {
			t.Fatalf("observed version %d was never installed", o.version)
		}
		if o.version < last[o.partition] {
			t.Fatalf("partition %d saw version regress %d -> %d", o.partition, last[o.partition], o.version)
		}
		last[o.partition] = o.version
		counts[o.version]++
	}
	for v := 1; v <= versions; v++ {
		if counts[v] != perVersion {
			t.Errorf("version %d observed by %d records, want %d", v, counts[v], perVersion)
		}
	}
}

func TestInspectBeforeRun(t *testing.T) {
	e := New(Config{Partitions: 2}, func(ctx *Context, rec Record) []any { return nil })
	e.Close() // never ran
	ran := false
	e.Inspect(func(p int, sm *StateMap) { ran = true })
	if !ran {
		t.Error("inspect on closed engine must still run")
	}
}
