package stream

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"loglens/internal/metrics"
)

func TestSendAfterCloseCountsReasonLabel(t *testing.T) {
	reg := metrics.NewRegistry()
	e := New(Config{Name: "main", Metrics: reg}, func(ctx *Context, rec Record) []any { return nil })
	run(t, e, []Record{{Key: "a", Value: 1}})

	for i := 0; i < 3; i++ {
		if err := e.Send(Record{Key: "late"}); !errors.Is(err, ErrClosed) {
			t.Fatalf("Send after Close = %v, want ErrClosed", err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter("stream_records_dropped_total", "engine", "main", "reason", "send-after-close"); got != 3 {
		t.Errorf("send-after-close dropped = %d, want 3", got)
	}
	if got := snap.Counter("stream_records_dropped_total", "engine", "main", "reason", "abandoned"); got != 0 {
		t.Errorf("abandoned dropped = %d, want 0 (orderly close)", got)
	}
	// Rejected sends were never accepted, so the built-in conservation
	// count stays clean.
	if m := e.Metrics(); m.RecordsDropped != 0 {
		t.Errorf("Metrics.RecordsDropped = %d, want 0", m.RecordsDropped)
	}
}

func TestPanicHookRetriesUntilSuccess(t *testing.T) {
	var attempts atomic.Uint64
	e := New(Config{Partitions: 1}, func(ctx *Context, rec Record) []any {
		if rec.Key == "poison" && attempts.Add(1) < 3 {
			panic("boom")
		}
		return []any{rec.Value}
	})
	var strikes atomic.Uint64
	e.cfg.PanicHook = func(partition int, rec Record, v any) bool {
		return strikes.Add(1) < 5 // bounded retry budget
	}
	outs := run(t, e, []Record{
		{Key: "ok", Value: "a"},
		{Key: "poison", Value: "b"},
	})
	if len(outs) != 2 {
		t.Fatalf("outputs = %v, want both records to land after retries", outs)
	}
	m := e.Metrics()
	if m.OperatorPanics != 2 || m.Retried != 2 {
		t.Errorf("panics = %d retried = %d, want 2/2", m.OperatorPanics, m.Retried)
	}
	if m.Resolved != 2 {
		t.Errorf("Resolved = %d, want 2 (each input resolved once)", m.Resolved)
	}
	if m.RecordsDropped != 0 {
		t.Errorf("RecordsDropped = %d, want 0", m.RecordsDropped)
	}
}

func TestPanicHookGivesUpDropsRecord(t *testing.T) {
	e := New(Config{Partitions: 1}, func(ctx *Context, rec Record) []any {
		panic("always")
	})
	var strikes atomic.Uint64
	e.cfg.PanicHook = func(partition int, rec Record, v any) bool {
		return strikes.Add(1) < 3
	}
	outs := run(t, e, []Record{{Key: "poison", Value: 1}})
	if len(outs) != 0 {
		t.Fatalf("outputs = %v, want none", outs)
	}
	m := e.Metrics()
	if m.OperatorPanics != 3 {
		t.Errorf("OperatorPanics = %d, want 3 (K strikes)", m.OperatorPanics)
	}
	if m.Resolved != 1 {
		t.Errorf("Resolved = %d, want 1 (record resolved when the hook gave up)", m.Resolved)
	}
}

func TestHeartbeatsNeverRetried(t *testing.T) {
	e := New(Config{Partitions: 2}, func(ctx *Context, rec Record) []any {
		if rec.Heartbeat {
			panic("hb panic")
		}
		return nil
	})
	e.cfg.PanicHook = func(partition int, rec Record, v any) bool { return true }
	run(t, e, []Record{{Key: "hb", Heartbeat: true}})
	m := e.Metrics()
	if m.Retried != 0 {
		t.Errorf("Retried = %d, want 0 (heartbeats are never requeued)", m.Retried)
	}
	if m.OperatorPanics != 2 {
		t.Errorf("OperatorPanics = %d, want 2 (one per partition copy)", m.OperatorPanics)
	}
	if m.Resolved != 1 {
		t.Errorf("Resolved = %d, want 1 input record", m.Resolved)
	}
}

func TestBatchHookReportsResolvedWatermark(t *testing.T) {
	var mu sync.Mutex
	var marks []uint64
	e := New(Config{Partitions: 2, BatchHook: func(resolved uint64) {
		mu.Lock()
		marks = append(marks, resolved)
		mu.Unlock()
	}}, func(ctx *Context, rec Record) []any { return []any{rec.Value} })
	var recs []Record
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{Key: "k", Value: i})
	}
	run(t, e, recs)
	mu.Lock()
	defer mu.Unlock()
	if len(marks) == 0 {
		t.Fatal("BatchHook never fired")
	}
	for i := 1; i < len(marks); i++ {
		if marks[i] < marks[i-1] {
			t.Fatalf("watermark regressed: %v", marks)
		}
	}
	if final := marks[len(marks)-1]; final != 10 {
		t.Fatalf("final watermark = %d, want 10", final)
	}
}
