package stream

import (
	"fmt"
	"sync"
	"testing"
)

// runBatched mirrors run but feeds records through SendBatch in chunks,
// using pooled RecordBuffer slices like a batching producer would.
func runBatched(t *testing.T, e *Engine, recs []Record, chunk int) []any {
	t.Helper()
	var mu sync.Mutex
	var outs []any
	e.SetSink(func(o any) {
		mu.Lock()
		outs = append(outs, o)
		mu.Unlock()
	})
	done := make(chan error, 1)
	go func() { done <- e.Run(t.Context()) }()
	for len(recs) > 0 {
		n := chunk
		if n > len(recs) {
			n = len(recs)
		}
		buf := e.RecordBuffer()
		buf = append(buf, recs[:n]...)
		if err := e.SendBatch(buf); err != nil {
			t.Fatal(err)
		}
		recs = recs[n:]
	}
	e.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return outs
}

// TestSendBatchDelivers: batched hand-offs process every record exactly
// once and count them in the engine metrics, same as per-record Send.
func TestSendBatchDelivers(t *testing.T) {
	e := New(Config{Partitions: 3}, func(ctx *Context, rec Record) []any {
		return []any{rec.Value}
	})
	var recs []Record
	for i := 0; i < 200; i++ {
		recs = append(recs, Record{Key: fmt.Sprintf("k%d", i%7), Value: i})
	}
	outs := runBatched(t, e, recs, 32)
	if len(outs) != 200 {
		t.Fatalf("outputs = %d, want 200", len(outs))
	}
	m := e.Metrics()
	if m.Records != 200 || m.Resolved != 200 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestSendBatchKeyOrder: per-key ordering survives batched hand-offs —
// chunks land in send order and partitions process serially.
func TestSendBatchKeyOrder(t *testing.T) {
	var mu sync.Mutex
	perKey := map[string][]int{}
	e := New(Config{Partitions: 4}, func(ctx *Context, rec Record) []any {
		mu.Lock()
		perKey[rec.Key] = append(perKey[rec.Key], rec.Value.(int))
		mu.Unlock()
		return nil
	})
	var recs []Record
	for i := 0; i < 60; i++ {
		for k := 0; k < 4; k++ {
			recs = append(recs, Record{Key: fmt.Sprintf("k%d", k), Value: i})
		}
	}
	runBatched(t, e, recs, 17) // chunk size coprime to the key cycle
	for k, vals := range perKey {
		if len(vals) != 60 {
			t.Fatalf("key %s saw %d records", k, len(vals))
		}
		for i, v := range vals {
			if v != i {
				t.Fatalf("key %s order violated at %d: %d", k, i, v)
			}
		}
	}
}

// TestSendBatchAfterClose: a batch rejected after Close reports ErrClosed
// and counts every record under the send-after-close reason.
func TestSendBatchAfterClose(t *testing.T) {
	e := New(Config{Partitions: 1}, func(ctx *Context, rec Record) []any { return nil })
	e.Close()
	buf := e.RecordBuffer()
	buf = append(buf, Record{Key: "a"}, Record{Key: "b"})
	if err := e.SendBatch(buf); err != ErrClosed {
		t.Fatalf("SendBatch after Close = %v, want ErrClosed", err)
	}
}

// TestRecordBufferRecycles: buffers absorbed by the engine return to the
// pool zeroed, so a producer cycling RecordBuffer does not leak payloads
// through pooled arrays.
func TestRecordBufferRecycles(t *testing.T) {
	e := New(Config{Partitions: 1}, func(ctx *Context, rec Record) []any { return nil })
	buf := e.RecordBuffer()
	buf = append(buf, Record{Key: "x", Value: "payload"})
	e.putRecordBuffer(buf)
	got := e.RecordBuffer()
	if len(got) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(got))
	}
	full := got[:cap(got)]
	for i := range full {
		if full[i] != (Record{}) {
			t.Fatalf("recycled buffer retains record at %d: %+v", i, full[i])
		}
	}
}

// TestSendAfterSendBatchOrdered: a record sent with Send immediately
// after a SendBatch from the same goroutine is processed after the
// batch's records — the ordering the log manager relies on when a
// heartbeat follows a flushed batch of logs. Regression test for the
// separate-batch-channel design, where a heartbeat could overtake logs.
func TestSendAfterSendBatchOrdered(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	e := New(Config{Partitions: 2}, func(ctx *Context, rec Record) []any {
		mu.Lock()
		seen = append(seen, rec.Value.(int))
		mu.Unlock()
		return nil
	})
	done := make(chan error, 1)
	go func() { done <- e.Run(t.Context()) }()
	next := 0
	for round := 0; round < 50; round++ {
		buf := e.RecordBuffer()
		for i := 0; i < 9; i++ {
			buf = append(buf, Record{Key: "src", Value: next})
			next++
		}
		if err := e.SendBatch(buf); err != nil {
			t.Fatal(err)
		}
		// The follower record (a heartbeat in the log-manager analogy)
		// must land after the batch it chases.
		if err := e.Send(Record{Key: "src", Value: next}); err != nil {
			t.Fatal(err)
		}
		next++
	}
	e.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(seen) != next {
		t.Fatalf("processed %d records, want %d", len(seen), next)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("order violated at %d: got %d", i, v)
		}
	}
}
