package stream

import (
	"context"
	"fmt"
	"testing"
)

// TestOperatorPanicContained: a poisonous record must not kill its
// partition or the engine — the zero-downtime property extends to operator
// bugs.
func TestOperatorPanicContained(t *testing.T) {
	e := New(Config{Partitions: 2}, func(ctx *Context, rec Record) []any {
		if rec.Value == "poison" {
			panic("operator bug")
		}
		return []any{rec.Value}
	})
	var outs []any
	e.SetSink(func(o any) { outs = append(outs, o) })
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	for i := 0; i < 10; i++ {
		v := any(i)
		if i == 5 {
			v = "poison"
		}
		e.Send(Record{Key: fmt.Sprintf("k%d", i), Value: v})
	}
	e.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(outs) != 9 {
		t.Errorf("outputs = %d, want 9 (poison dropped, rest survive)", len(outs))
	}
	if got := e.Metrics().OperatorPanics; got != 1 {
		t.Errorf("panics = %d", got)
	}
}
