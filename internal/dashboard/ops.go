package dashboard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"loglens/internal/obs"
	"loglens/internal/recovery"
)

// registerOps mounts the ops-plane endpoints: health probes, the flight
// recorder, trace export, the live metrics stream, and pprof. They are
// always mounted; with the ops plane disabled the handlers degrade to
// empty-but-valid responses rather than 404s, so probes and dashboards
// can be configured identically everywhere.
func (s *Server) registerOps() {
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/api/events", s.handleEvents)
	s.mux.HandleFunc("/api/deadletter", s.handleDeadLetter)
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	s.mux.HandleFunc("/api/metrics/stream", s.handleMetricsStream)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// health returns the ops-plane health registry (nil when disabled).
func (s *Server) health() *obs.Health {
	if o := s.pipeline.Ops(); o != nil {
		return o.Health
	}
	return nil
}

// handleHealthz reports liveness: 200 while the service can do its job
// (healthy or merely degraded), 503 once any probe is unhealthy. The
// body always carries the per-probe detail.
//
//	GET /healthz
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	overall, probes := s.health().Check()
	w.Header().Set("Content-Type", "application/json")
	if overall == obs.Unhealthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSONBody(w, map[string]any{"status": overall, "probes": probes})
}

// handleReadyz reports readiness: 200 only when every probe is fully
// healthy, 503 otherwise — degraded is enough to stop routing new load.
//
//	GET /readyz
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	overall, probes := s.health().Check()
	w.Header().Set("Content-Type", "application/json")
	if overall != obs.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSONBody(w, map[string]any{"status": overall, "probes": probes})
}

// handleEvents queries the flight recorder, newest first.
//
//	GET /api/events?type=heartbeat-expiry&since=RFC3339&limit=50
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var q obs.EventQuery
	q.Type = obs.EventType(r.URL.Query().Get("type"))
	if v := r.URL.Query().Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad since: %v", err)
			return
		}
		q.Since = t
	}
	q.Limit = 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		q.Limit = n
	}
	events := obs.EventsOf(s.pipeline.Ops()).Events(q)
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, map[string]any{"total": len(events), "events": events})
}

// handleDeadLetter lists quarantined poison records from the deadletter
// topic, oldest first, with the error context captured at quarantine
// time. Empty (but valid) when recovery is disabled.
//
//	GET /api/deadletter?limit=100
func (s *Server) handleDeadLetter(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	msgs := s.pipeline.DeadLetters(limit)
	type dlEntry struct {
		Source  string    `json:"source"`
		Seq     string    `json:"seq"`
		Raw     string    `json:"raw"`
		Error   string    `json:"error"`
		Strikes string    `json:"strikes"`
		Time    time.Time `json:"time"`
	}
	entries := make([]dlEntry, 0, len(msgs))
	for _, m := range msgs {
		entries = append(entries, dlEntry{
			Source:  m.Headers[recovery.HeaderDLSource],
			Seq:     m.Headers[recovery.HeaderDLSeq],
			Raw:     string(m.Value),
			Error:   m.Headers[recovery.HeaderDLError],
			Strikes: m.Headers[recovery.HeaderDLStrikes],
			Time:    m.Time,
		})
	}
	writeJSON(w, map[string]any{
		"total":      s.pipeline.QuarantinedCount(),
		"returned":   len(entries),
		"deadletter": entries,
	})
}

// handleTrace exports the spans of the trailing window as Chrome
// trace-event JSON — load it in chrome://tracing or Perfetto.
//
//	GET /debug/trace?sec=30
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sec := 60
	if v := r.URL.Query().Get("sec"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "bad sec %q", v)
			return
		}
		sec = n
	}
	since := s.clk.Now().Add(-time.Duration(sec) * time.Second)
	w.Header().Set("Content-Type", "application/json")
	obs.SpansOf(s.pipeline.Ops()).WriteChromeTrace(w, since)
}

// handleMetricsStream pushes metrics snapshots as Server-Sent Events:
// one immediately, then one per interval — the dashboard front page
// subscribes with EventSource for live updates.
//
//	GET /api/metrics/stream?interval=1s
func (s *Server) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	interval := time.Second
	if v := r.URL.Query().Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad interval %q", v)
			return
		}
		interval = d
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	send := func() error {
		data, err := json.Marshal(s.pipeline.Metrics().Snapshot())
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	}
	if err := send(); err != nil {
		return
	}
	ticker := s.clk.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C():
			if err := send(); err != nil {
				return
			}
		}
	}
}
