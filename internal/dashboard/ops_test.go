package dashboard

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"loglens/internal/agent"
	"loglens/internal/chaos"
	"loglens/internal/clock"
	"loglens/internal/core"
	"loglens/internal/experiments"
	"loglens/internal/heartbeat"
	"loglens/internal/obs"
	"loglens/internal/testutil"
)

// probeOf extracts one probe's status and detail from a health body.
func probeOf(t *testing.T, body map[string]any, name string) (string, string) {
	t.Helper()
	probes, ok := body["probes"].(map[string]any)
	if !ok {
		t.Fatalf("health body has no probes: %v", body)
	}
	p, ok := probes[name].(map[string]any)
	if !ok {
		t.Fatalf("health body has no probe %q: %v", name, probes)
	}
	status, _ := p["status"].(string)
	detail, _ := p["detail"].(string)
	return status, detail
}

// trainedOpsPipeline builds an un-started fake-clock pipeline with the ops
// plane enabled, a trained model, and an agent (declaring the logs topic
// so a chaos producer can pile up a backlog before Start).
func trainedOpsPipeline(t *testing.T, fc *clock.Fake, cfg core.Config) (*core.Pipeline, *agent.Agent) {
	t.Helper()
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	var train []string
	for i := 0; i < 50; i++ {
		id := "ev-" + strconv.Itoa(i)
		t0 := base.Add(time.Duration(i*10) * time.Second)
		train = append(train,
			t0.Format("2006/01/02 15:04:05.000")+" task "+id+" start prio 1",
			t0.Add(2*time.Second).Format("2006/01/02 15:04:05.000")+" task "+id+" done code 0",
		)
	}
	if _, _, err := p.Train("m1", experiments.ToLogs("tasks", train)); err != nil {
		t.Fatal(err)
	}
	ag, err := p.Agent("tasks", 0)
	if err != nil {
		t.Fatal(err)
	}
	return p, ag
}

// TestHealthzFlipsUnderChaos drives /healthz and /readyz through their
// golden states on a fake clock: degraded before start, unhealthy under a
// seeded chaos backlog, healthy once the pipeline drains it, degraded
// again when the tracked source goes stale, and healthy after the
// activity-window sweep forgets the source. Every flip is deterministic:
// the backlog is seeded, and staleness moves only when the test advances
// the clock.
func TestHealthzFlipsUnderChaos(t *testing.T) {
	fc := clock.NewFake()
	ops := obs.New(fc)
	p, ag := trainedOpsPipeline(t, fc, core.Config{
		Clock:           fc,
		Ops:             ops,
		BusLagDegraded:  8,
		BusLagUnhealthy: 32,
		HeartbeatStale:  2 * time.Minute,
		Heartbeat:       heartbeat.Config{Interval: time.Second, ActivityWindow: 4 * time.Minute},
	})
	srv := New(p)
	srv.SetClock(fc)

	// Golden state 1: fresh and un-started — alive but not ready.
	code, body := get(t, srv, "/healthz")
	if code != 200 || body["status"] != "degraded" {
		t.Fatalf("fresh healthz = %d %v, want 200 degraded", code, body["status"])
	}
	if st, detail := probeOf(t, body, "pipeline"); st != "degraded" || !strings.Contains(detail, "not started") {
		t.Fatalf("pipeline probe = %s %q", st, detail)
	}
	for _, name := range []string{"bus", "heartbeat", "broadcast"} {
		if st, detail := probeOf(t, body, name); st != "healthy" {
			t.Fatalf("%s probe = %s %q, want healthy", name, st, detail)
		}
	}
	if code, _ := get(t, srv, "/readyz"); code != 503 {
		t.Fatalf("fresh readyz = %d, want 503", code)
	}

	// Golden state 2: seeded chaos piles a backlog past the degraded
	// threshold while nothing consumes.
	cp := chaos.NewProducer(p.Bus(), agent.LogsTopic, fc, chaos.Config{
		Seed:          42,
		Drop:          0.2,
		Duplicate:     0.1,
		ReorderWindow: 4,
	})
	junk := func(from, n int) {
		for i := from; i < from+n; i++ {
			err := cp.Publish("tasks", []byte("garbage line "+strconv.Itoa(i)), map[string]string{
				agent.HeaderSource: "tasks",
				agent.HeaderSeq:    strconv.Itoa(i + 1),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := cp.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	junk(0, 20)
	if st := cp.Stats(); st.Delivered < 8 || st.Delivered >= 32 {
		t.Fatalf("seed delivered %d messages, want in [8,32) — adjust burst", st.Delivered)
	}
	code, body = get(t, srv, "/healthz")
	if code != 200 || body["status"] != "degraded" {
		t.Fatalf("backlogged healthz = %d %v, want 200 degraded", code, body["status"])
	}
	if st, detail := probeOf(t, body, "bus"); st != "degraded" || !strings.Contains(detail, "lag") {
		t.Fatalf("bus probe = %s %q, want degraded with lag detail", st, detail)
	}

	// Golden state 3: the backlog crosses the unhealthy threshold and
	// liveness itself fails.
	junk(20, 40)
	if st := cp.Stats(); st.Delivered < 32 {
		t.Fatalf("seed delivered %d messages total, want >= 32 — adjust burst", st.Delivered)
	}
	code, body = get(t, srv, "/healthz")
	if code != 503 || body["status"] != "unhealthy" {
		t.Fatalf("overloaded healthz = %d %v, want 503 unhealthy", code, body["status"])
	}
	if st, _ := probeOf(t, body, "bus"); st != "unhealthy" {
		t.Fatalf("bus probe = %s, want unhealthy", st)
	}

	// Golden state 4: start the pipeline. The pump drains the backlog
	// and one parseable line marks the source active; advancing the fake
	// clock closes micro-batches so the operator runs.
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	base := time.Date(2016, 2, 23, 10, 0, 0, 0, time.UTC)
	if err := ag.Send(base.Format("2006/01/02 15:04:05.000") + " task live-1 start prio 1"); err != nil {
		t.Fatal(err)
	}
	if err := ag.Send(base.Add(time.Second).Format("2006/01/02 15:04:05.000") + " task live-1 done code 0"); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		fc.Advance(20 * time.Millisecond)
		_, body := get(t, srv, "/healthz")
		_, hbDetail := probeOf(t, body, "heartbeat")
		return body["status"] == "healthy" && strings.Contains(hbDetail, "1 tracked")
	}, "pipeline did not become healthy after start")
	if code, _ := get(t, srv, "/readyz"); code != 200 {
		t.Fatalf("running readyz = %d, want 200", code)
	}

	// Golden state 5: past the staleness threshold the tracked source
	// has been silent too long. The probe reads staleness directly, so
	// one clock advance flips it.
	fc.Advance(2*time.Minute + time.Second)
	code, body = get(t, srv, "/healthz")
	if code != 200 || body["status"] != "degraded" {
		t.Fatalf("stale healthz = %d %v, want 200 degraded", code, body["status"])
	}
	if st, detail := probeOf(t, body, "heartbeat"); st != "degraded" || !strings.Contains(detail, "silent") {
		t.Fatalf("heartbeat probe = %s %q, want degraded/silent", st, detail)
	}

	// Golden state 6: past the activity window the sweep forgets the
	// source and the probe recovers. The sweep runs on the controller's
	// ticker, so keep advancing until it fires.
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		fc.Advance(time.Minute)
		_, body := get(t, srv, "/healthz")
		return body["status"] == "healthy"
	}, "heartbeat probe did not recover after the source was forgotten")
	code, body = get(t, srv, "/healthz")
	if st, detail := probeOf(t, body, "heartbeat"); st != "healthy" || !strings.Contains(detail, "0 tracked") {
		t.Fatalf("recovered heartbeat probe = %s %q, want healthy with 0 tracked", st, detail)
	}
}

func TestEventsEndpointFiltering(t *testing.T) {
	fc := clock.NewFake()
	ops := obs.New(fc)
	p, err := core.New(core.Config{Clock: fc, Ops: ops, DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(p)
	srv.SetClock(fc)

	ops.Events.Record(obs.EventAnomaly, "web", "missing-end", 1)
	fc.Advance(time.Minute)
	cut := fc.Now()
	ops.Events.Record(obs.EventHeartbeatExpiry, "db", "event e1 expired", 7)
	fc.Advance(time.Minute)
	ops.Events.Record(obs.EventAnomaly, "web", "missing-begin", 1)

	code, body := get(t, srv, "/api/events")
	if code != 200 || body["total"].(float64) != 3 {
		t.Fatalf("all events = %d %v, want 200 total 3", code, body["total"])
	}
	// Newest first.
	first := body["events"].([]any)[0].(map[string]any)
	if first["detail"] != "missing-begin" {
		t.Errorf("events[0].detail = %v, want missing-begin (newest first)", first["detail"])
	}

	code, body = get(t, srv, "/api/events?type=heartbeat-expiry")
	if code != 200 || body["total"].(float64) != 1 {
		t.Fatalf("type filter = %d %v, want 1", code, body["total"])
	}
	ev := body["events"].([]any)[0].(map[string]any)
	if ev["source"] != "db" || ev["value"].(float64) != 7 {
		t.Errorf("filtered event = %v", ev)
	}

	code, body = get(t, srv, "/api/events?since="+cut.Format(time.RFC3339))
	if code != 200 || body["total"].(float64) != 2 {
		t.Fatalf("since filter = %d %v, want 2", code, body["total"])
	}

	code, body = get(t, srv, "/api/events?limit=1")
	if code != 200 || body["total"].(float64) != 1 {
		t.Fatalf("limit = %d %v, want 1", code, body["total"])
	}

	if code, _ := get(t, srv, "/api/events?since=yesterday"); code != 400 {
		t.Errorf("bad since = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/api/events?limit=-1"); code != 400 {
		t.Errorf("bad limit = %d, want 400", code)
	}
}

func TestTraceEndpointChromeJSON(t *testing.T) {
	fc := clock.NewFake()
	ops := obs.New(fc)
	p, err := core.New(core.Config{Clock: fc, Ops: ops, DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(p)
	srv.SetClock(fc)

	tid := ops.Spans.Thread("worker-1")
	old := ops.Spans.Start("stage", "old-span", tid)
	fc.Advance(5 * time.Millisecond)
	old.End()
	fc.Advance(2 * time.Minute) // push old-span out of the 60s window
	sp := ops.Spans.Start("stage", "parse", tid)
	fc.Advance(3 * time.Millisecond)
	sp.End()

	code, body := get(t, srv, "/debug/trace?sec=60")
	if code != 200 {
		t.Fatalf("trace status %d", code)
	}
	events, ok := body["traceEvents"].([]any)
	if !ok {
		t.Fatalf("trace body is not Chrome trace JSON: %v", body)
	}
	var sawThread, sawSpan, sawOld bool
	for _, raw := range events {
		ev := raw.(map[string]any)
		switch ev["ph"] {
		case "M":
			if ev["name"] != "thread_name" {
				t.Errorf("metadata event name = %v", ev["name"])
			}
			if args, ok := ev["args"].(map[string]any); ok && args["name"] == "worker-1" {
				sawThread = true
			}
		case "X":
			switch ev["name"] {
			case "parse":
				sawSpan = true
				if ev["dur"].(float64) != 3000 {
					t.Errorf("parse span dur = %v µs, want 3000", ev["dur"])
				}
				if ev["cat"] != "stage" || ev["pid"].(float64) != 1 {
					t.Errorf("parse span fields = %v", ev)
				}
			case "old-span":
				sawOld = true
			}
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if !sawThread || !sawSpan {
		t.Errorf("sawThread=%v sawSpan=%v, want both", sawThread, sawSpan)
	}
	if sawOld {
		t.Errorf("old-span leaked into the 60s window")
	}

	if code, _ := get(t, srv, "/debug/trace?sec=0"); code != 400 {
		t.Errorf("sec=0 status = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/debug/trace?sec=x"); code != 400 {
		t.Errorf("sec=x status = %d, want 400", code)
	}
}

// TestMetricsStreamSSE subscribes over a real HTTP connection and expects
// at least two data frames, each a full metrics snapshot.
func TestMetricsStreamSSE(t *testing.T) {
	p, err := core.New(core.Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/metrics/stream?interval=5ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	snapshots := 0
	for snapshots < 2 && sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var snap map[string]any
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
			t.Fatalf("bad snapshot JSON: %v", err)
		}
		if _, ok := snap["counters"]; !ok {
			t.Fatalf("snapshot missing counters: %v", snap)
		}
		snapshots++
	}
	if snapshots < 2 {
		t.Fatalf("got %d snapshots, want >= 2 (scan err %v)", snapshots, sc.Err())
	}
}

func TestMetricsStreamBadInterval(t *testing.T) {
	p, err := core.New(core.Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(p)
	if code, _ := get(t, srv, "/api/metrics/stream?interval=abc"); code != 400 {
		t.Errorf("bad interval status = %d, want 400", code)
	}
}

// TestOpsEndpointsWithoutOpsPlane: with Config.Ops unset every ops
// endpoint still answers with an empty-but-valid body, so probes can be
// configured identically on instrumented and bare deployments.
func TestOpsEndpointsWithoutOpsPlane(t *testing.T) {
	srv := New(buildPipeline(t))

	code, body := get(t, srv, "/healthz")
	if code != 200 || body["status"] != "healthy" {
		t.Fatalf("healthz = %d %v, want 200 healthy", code, body["status"])
	}
	if code, _ := get(t, srv, "/readyz"); code != 200 {
		t.Fatalf("readyz = %d, want 200", code)
	}
	code, body = get(t, srv, "/api/events")
	if code != 200 || body["total"].(float64) != 0 {
		t.Fatalf("events = %d %v, want 200 total 0", code, body["total"])
	}
	code, body = get(t, srv, "/debug/trace")
	if code != 200 {
		t.Fatalf("trace = %d, want 200", code)
	}
	if events, ok := body["traceEvents"].([]any); !ok || len(events) != 0 {
		t.Fatalf("trace body = %v, want empty traceEvents", body)
	}

	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index = %d", rec.Code)
	}
}
