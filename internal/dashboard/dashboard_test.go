package dashboard

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loglens/internal/core"
	"loglens/internal/experiments"
)

// buildPipeline trains and runs a small pipeline with a few anomalies.
func buildPipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	p, err := core.New(core.Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	var train []string
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("ev-%04d", i)
		t0 := base.Add(time.Duration(i*10) * time.Second)
		train = append(train,
			fmt.Sprintf("%s task %s start prio %d", t0.Format("2006/01/02 15:04:05.000"), id, i%5),
			fmt.Sprintf("%s task %s done code %d", t0.Add(2*time.Second).Format("2006/01/02 15:04:05.000"), id, i%3),
		)
	}
	if _, _, err := p.Train("m1", experiments.ToLogs("tasks", train)); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, _ := p.Agent("tasks", 0)
	// Two missing-begin anomalies and one unparsed log.
	tt := base.Add(time.Hour)
	ag.Send(fmt.Sprintf("%s task bad-1 done code 1", tt.Format("2006/01/02 15:04:05.000")))
	ag.Send(fmt.Sprintf("%s task bad-2 done code 1", tt.Add(time.Minute).Format("2006/01/02 15:04:05.000")))
	ag.Send("garbage that matches nothing")
	if err := p.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	return p
}

func get(t *testing.T, srv *Server, path string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var body map[string]any
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	return rec.Code, body
}

func TestAnomaliesEndpoint(t *testing.T) {
	srv := New(buildPipeline(t))
	code, body := get(t, srv, "/api/anomalies")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if body["total"].(float64) != 3 {
		t.Errorf("total = %v, want 3", body["total"])
	}
	// Filter by type.
	code, body = get(t, srv, "/api/anomalies?type=unparsed-log")
	if code != 200 || body["total"].(float64) != 1 {
		t.Errorf("unparsed filter: %d %v", code, body["total"])
	}
	// Limit.
	_, body = get(t, srv, "/api/anomalies?limit=1")
	if body["total"].(float64) != 1 {
		t.Errorf("limit: %v", body["total"])
	}
	// Bad input.
	code, _ = get(t, srv, "/api/anomalies?since=notatime")
	if code != 400 {
		t.Errorf("bad since: status %d", code)
	}
	code, _ = get(t, srv, "/api/anomalies?limit=x")
	if code != 400 {
		t.Errorf("bad limit: status %d", code)
	}
}

func TestHistogramEndpoint(t *testing.T) {
	srv := New(buildPipeline(t))
	code, body := get(t, srv, "/api/anomalies/histogram?interval=1m")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	buckets := body["buckets"].([]any)
	if len(buckets) == 0 {
		t.Error("no buckets")
	}
	code, _ = get(t, srv, "/api/anomalies/histogram?interval=bogus")
	if code != 400 {
		t.Errorf("bad interval: status %d", code)
	}
}

func TestModelsEndpoint(t *testing.T) {
	srv := New(buildPipeline(t))
	code, body := get(t, srv, "/api/models")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	models := body["models"].([]any)
	if len(models) != 1 {
		t.Fatalf("models = %d", len(models))
	}
	m := models[0].(map[string]any)
	if m["id"] != "m1" {
		t.Errorf("model id = %v", m["id"])
	}
}

func TestStatsAndIndex(t *testing.T) {
	srv := New(buildPipeline(t))
	code, body := get(t, srv, "/api/stats")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if body["anomalies"].(float64) != 3 {
		t.Errorf("anomalies = %v", body["anomalies"])
	}
	req := httptest.NewRequest("GET", "/", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "LogLens") {
		t.Errorf("index page: %d", rec.Code)
	}
	// Unknown path 404s.
	req = httptest.NewRequest("GET", "/nope", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 404 {
		t.Errorf("unknown path: %d", rec.Code)
	}
}

func TestByTypeEndpoint(t *testing.T) {
	srv := New(buildPipeline(t))
	code, body := get(t, srv, "/api/anomalies/by-type")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	types := body["types"].([]any)
	if len(types) != 2 { // missing-begin-state x2, unparsed-log x1
		t.Fatalf("types = %v", types)
	}
	top := types[0].(map[string]any)
	if top["type"] != "missing-begin-state" || top["count"].(float64) != 2 {
		t.Errorf("top = %v", top)
	}
}

func TestModelDOTEndpoint(t *testing.T) {
	srv := New(buildPipeline(t))
	req := httptest.NewRequest("GET", "/api/models/dot?id=m1", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "digraph automaton_") {
		t.Errorf("not a DOT document: %s", rec.Body.String())
	}
	// Missing / unknown model.
	code, _ := get(t, srv, "/api/models/dot")
	if code != 400 {
		t.Errorf("missing id: %d", code)
	}
	code, _ = get(t, srv, "/api/models/dot?id=nope")
	if code != 404 {
		t.Errorf("unknown model: %d", code)
	}
}

func TestPatternsEndpoint(t *testing.T) {
	srv := New(buildPipeline(t))
	code, body := get(t, srv, "/api/patterns")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	patterns := body["patterns"].([]any)
	if len(patterns) != 2 {
		t.Fatalf("patterns = %v", patterns)
	}
	totalParsed := 0.0
	for _, p := range patterns {
		m := p.(map[string]any)
		if m["grok"] == "" {
			t.Error("empty grok text")
		}
		totalParsed += m["parsed"].(float64)
	}
	// buildPipeline streams 2 parsed logs (the third is unparsed).
	if totalParsed != 2 {
		t.Errorf("total parsed = %v, want 2", totalParsed)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := New(buildPipeline(t))
	code, body := get(t, srv, "/api/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	counters := body["counters"].(map[string]any)
	// buildPipeline streams 3 lines: 2 parsed, 1 unparsed.
	if counters["core_lines_total"].(float64) != 3 {
		t.Errorf("core_lines_total = %v, want 3", counters["core_lines_total"])
	}
	if counters["core_parsed_total"].(float64) != 2 {
		t.Errorf("core_parsed_total = %v, want 2", counters["core_parsed_total"])
	}
	if counters["core_unparsed_total"].(float64) != 1 {
		t.Errorf("core_unparsed_total = %v, want 1", counters["core_unparsed_total"])
	}
	if _, ok := body["histograms"].(map[string]any)["core_line_seconds"]; !ok {
		t.Error("core_line_seconds histogram missing from snapshot")
	}

	// Text format: one "name value" line per metric.
	req := httptest.NewRequest("GET", "/api/metrics?format=text", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("text status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("text content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "core_lines_total 3") {
		t.Errorf("text listing missing core_lines_total:\n%s", rec.Body.String())
	}
}

func TestSourcesEndpoint(t *testing.T) {
	srv := New(buildPipeline(t))
	code, body := get(t, srv, "/api/sources")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	sources := body["sources"].([]any)
	if len(sources) != 1 {
		t.Fatalf("sources = %v", sources)
	}
	s0 := sources[0].(map[string]any)
	if s0["source"] != "tasks" || s0["model"] != "m1" {
		t.Errorf("source entry = %v", s0)
	}
	if s0["anomalies"].(float64) != 3 {
		t.Errorf("anomalies = %v", s0["anomalies"])
	}
}

// TestStorageEndpoint serves /api/storage for both engines: the
// in-memory pipeline reports persistent=false with per-index counts, and
// a persistent pipeline reports the segment engine's generation and
// flush accounting.
func TestStorageEndpoint(t *testing.T) {
	p := buildPipeline(t)
	srv := New(p)
	code, body := get(t, srv, "/api/storage")
	if code != 200 {
		t.Fatalf("GET /api/storage = %d", code)
	}
	if body["persistent"] != false {
		t.Fatalf("in-memory pipeline reported persistent=%v", body["persistent"])
	}

	pp, err := core.New(core.Config{
		DisableHeartbeat: true,
		Storage:          core.StorageConfig{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pp.Store().Close() })
	pp.Store().Index("anomalies").Put("a1", map[string]any{"type": "x"})
	if err := pp.Store().Flush(); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, New(pp), "/api/storage")
	if code != 200 {
		t.Fatalf("GET /api/storage (persistent) = %d", code)
	}
	if body["persistent"] != true {
		t.Fatalf("persistent pipeline reported persistent=%v", body["persistent"])
	}
	if gen, ok := body["generation"].(float64); !ok || gen < 2 {
		t.Fatalf("generation = %v, want >= 2 after a flush", body["generation"])
	}
	indices, ok := body["indices"].([]any)
	if !ok || len(indices) == 0 {
		t.Fatalf("indices = %v", body["indices"])
	}
	first := indices[0].(map[string]any)
	if first["name"] != "anomalies" || first["segments"] != float64(1) {
		t.Fatalf("index entry = %v", first)
	}
}
