package dashboard

import (
	"fmt"
	"net"
	"testing"
	"time"

	"loglens/internal/core"
	"loglens/internal/intake"
	"loglens/internal/testutil"
)

// TestIntakeEndpoint serves /api/intake both ways: a pipeline without
// listeners reports enabled=false, and one with the front door up
// reports totals plus the per-tenant breakdown.
func TestIntakeEndpoint(t *testing.T) {
	code, body := get(t, New(buildPipeline(t)), "/api/intake")
	if code != 200 {
		t.Fatalf("GET /api/intake = %d", code)
	}
	if body["enabled"] != false {
		t.Fatalf("pipeline without listeners reported enabled=%v", body["enabled"])
	}

	p, err := core.New(core.Config{
		DisableHeartbeat: true,
		Intake:           intake.Config{SyslogTCP: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	svc := p.Intake()
	conn, err := net.Dial("tcp", svc.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "<13>Feb  5 17:32:18 web01 app: one line\n")
	conn.Close()
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return svc.Stats().Published == 1
	}, "line not published")

	code, body = get(t, New(p), "/api/intake")
	if code != 200 {
		t.Fatalf("GET /api/intake (enabled) = %d", code)
	}
	if body["enabled"] != true {
		t.Fatalf("enabled = %v", body["enabled"])
	}
	stats := body["stats"].(map[string]any)
	if stats["accepted"].(float64) != 1 || stats["published"].(float64) != 1 {
		t.Errorf("stats = %v", stats)
	}
	tenants := stats["tenants"].([]any)
	if len(tenants) != 1 || tenants[0].(map[string]any)["tenant"] != "web01" {
		t.Errorf("tenants = %v", tenants)
	}
}
