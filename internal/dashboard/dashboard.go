// Package dashboard is the visualization component of §II: an HTTP server
// over the log, model, and anomaly storages. It serves a JSON API for
// ad-hoc queries (anomaly listings, histograms, model inventory — the
// queries the paper runs through Elasticsearch/Kibana) and a minimal HTML
// front page summarizing system health.
package dashboard

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
	"time"

	"loglens/internal/clock"
	"loglens/internal/core"
	"loglens/internal/modelmgr"
	"loglens/internal/store"
)

// Server serves the dashboard over a pipeline's storage.
type Server struct {
	pipeline *core.Pipeline
	mux      *http.ServeMux
	clk      clock.Clock
}

// New builds a dashboard server for the pipeline.
func New(p *core.Pipeline) *Server {
	s := &Server{pipeline: p, mux: http.NewServeMux(), clk: clock.New()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/anomalies", s.handleAnomalies)
	s.mux.HandleFunc("/api/anomalies/histogram", s.handleHistogram)
	s.mux.HandleFunc("/api/anomalies/by-type", s.handleByType)
	s.mux.HandleFunc("/api/models", s.handleModels)
	s.mux.HandleFunc("/api/models/dot", s.handleModelDOT)
	s.mux.HandleFunc("/api/patterns", s.handlePatterns)
	s.mux.HandleFunc("/api/sources", s.handleSources)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/intake", s.handleIntake)
	s.mux.HandleFunc("/api/storage", s.handleStorage)
	s.mux.HandleFunc("/api/metrics", s.handleMetrics)
	s.mux.HandleFunc("/api/latency", s.handleLatency)
	s.registerOps()
	return s
}

// SetClock injects the server's time source (trace-window cuts, the SSE
// cadence). Default the wall clock; tests inject a fake.
func (s *Server) SetClock(clk clock.Clock) { s.clk = clk }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handleAnomalies lists anomalies, filterable by type, source, severity,
// and time range, newest first.
//
//	GET /api/anomalies?type=missing-end-state&source=d1&since=RFC3339&limit=100
func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	q := store.Query{Term: map[string]any{}, SortBy: "ts", Desc: true}
	for _, f := range []string{"type", "source", "severity"} {
		if v := r.URL.Query().Get(f); v != "" {
			q.Term[f] = v
		}
	}
	if v := r.URL.Query().Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad since: %v", err)
			return
		}
		q.RangeField, q.RangeMin = "ts", t
	}
	if v := r.URL.Query().Get("until"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad until: %v", err)
			return
		}
		if q.RangeField == "" {
			q.RangeField = "ts"
		}
		q.RangeMax = t
	}
	q.Limit = 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		q.Limit = n
	}
	hits := s.pipeline.Store().Index(core.AnomaliesIndex).Search(q)
	docs := make([]store.Document, 0, len(hits))
	for _, h := range hits {
		docs = append(docs, h.Doc)
	}
	writeJSON(w, map[string]any{"total": len(docs), "anomalies": docs})
}

// handleHistogram buckets anomalies over time.
//
//	GET /api/anomalies/histogram?interval=10m&type=missing-end-state
func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	interval := 10 * time.Minute
	if v := r.URL.Query().Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad interval %q", v)
			return
		}
		interval = d
	}
	q := store.Query{Term: map[string]any{}}
	if v := r.URL.Query().Get("type"); v != "" {
		q.Term["type"] = v
	}
	times, counts := s.pipeline.Store().Index(core.AnomaliesIndex).Histogram(q, "ts", interval)
	buckets := make([]map[string]any, len(times))
	for i := range times {
		buckets[i] = map[string]any{"start": times[i], "count": counts[i]}
	}
	writeJSON(w, map[string]any{"interval": interval.String(), "buckets": buckets})
}

// handleByType aggregates anomalies by type (optionally within a source).
//
//	GET /api/anomalies/by-type?source=d1
func (s *Server) handleByType(w http.ResponseWriter, r *http.Request) {
	q := store.Query{Term: map[string]any{}}
	if v := r.URL.Query().Get("source"); v != "" {
		q.Term["source"] = v
	}
	buckets := s.pipeline.Store().Index(core.AnomaliesIndex).Terms(q, "type", 0)
	out := make([]map[string]any, len(buckets))
	for i, b := range buckets {
		out[i] = map[string]any{"type": b.Value, "count": b.Count}
	}
	writeJSON(w, map[string]any{"types": out})
}

// handleModels lists stored models.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	hits := s.pipeline.Store().Index(modelmgr.ModelsIndex).Search(store.Query{SortBy: "createdAt", Desc: true})
	models := make([]map[string]any, 0, len(hits))
	for _, h := range hits {
		models = append(models, map[string]any{
			"id":        h.Doc["id"],
			"createdAt": h.Doc["createdAt"],
			"patterns":  h.Doc["patterns"],
			"automata":  h.Doc["automata"],
		})
	}
	writeJSON(w, map[string]any{"models": models})
}

// handleModelDOT renders a stored model's automata as Graphviz (the
// Figure 3 view).
//
//	GET /api/models/dot?id=my-model
func (s *Server) handleModelDOT(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, "id is required")
		return
	}
	m, err := s.pipeline.Manager().Load(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "model %q: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	fmt.Fprint(w, m.Sequence.DOT())
}

// handlePatterns lists the default model's patterns with live per-pattern
// parse counts — which patterns carry traffic and which are dead.
func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	m := s.pipeline.Model()
	if m == nil {
		writeJSON(w, map[string]any{"patterns": []any{}})
		return
	}
	counts := s.pipeline.PatternCounts()
	out := make([]map[string]any, 0, m.Patterns.Len())
	for _, pat := range m.Patterns.Patterns() {
		out = append(out, map[string]any{
			"id":     pat.ID,
			"grok":   pat.String(),
			"parsed": counts[pat.ID],
		})
	}
	writeJSON(w, map[string]any{"patterns": out})
}

// handleSources lists known log sources with archived-log and anomaly
// counts and the model serving each (archived counts require ArchiveLogs).
func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	var out []map[string]any
	seen := map[string]bool{}
	for _, name := range s.pipeline.Store().Indices() {
		const prefix = "logs-"
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		source := name[len(prefix):]
		seen[source] = true
		entry := map[string]any{
			"source":    source,
			"logs":      s.pipeline.Store().Index(name).Count(),
			"anomalies": s.pipeline.Store().Index(core.AnomaliesIndex).CountWhere(store.Query{Term: map[string]any{"source": source}}),
		}
		if m := s.pipeline.ModelFor(source); m != nil {
			entry["model"] = m.ID
		}
		out = append(out, entry)
	}
	// Sources seen only through anomalies (archiving off).
	for _, b := range s.pipeline.Store().Index(core.AnomaliesIndex).Terms(store.Query{}, "source", 0) {
		if seen[b.Value] {
			continue
		}
		entry := map[string]any{"source": b.Value, "logs": 0, "anomalies": b.Count}
		if m := s.pipeline.ModelFor(b.Value); m != nil {
			entry["model"] = m.ID
		}
		out = append(out, entry)
	}
	writeJSON(w, map[string]any{"sources": out})
}

// handleStats summarizes pipeline activity.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m := s.pipeline.Engine().Metrics()
	det := s.pipeline.DetectorStats()
	writeJSON(w, map[string]any{
		"anomalies":      s.pipeline.AnomalyCount(),
		"unparsed":       s.pipeline.UnparsedCount(),
		"batches":        m.Batches,
		"records":        m.Records,
		"modelUpdates":   m.UpdatesApplied,
		"updateBlocked":  m.UpdateBlocked.String(),
		"broadcastPulls": m.BroadcastPulls,
		"openStates":     s.pipeline.OpenStates(),
		"eventsClosed":   det.EventsClosed,
		"eventsExpired":  det.EventsExpired,
	})
}

// handleIntake reports the intake front door's admission accounting:
// totals, queue occupancy, connection counts, and the per-tenant
// accepted/published/shed breakdown — the first place to look when a
// tenant complains about missing lines.
//
//	GET /api/intake
func (s *Server) handleIntake(w http.ResponseWriter, r *http.Request) {
	svc := s.pipeline.Intake()
	if svc == nil {
		writeJSON(w, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, map[string]any{"enabled": true, "stats": svc.Stats()})
}

// handleStorage reports storage health: the segment engine's generation,
// WAL/segment accounting, error state, and per-index breakdown — or just
// the per-index document counts when storage is in memory.
//
//	GET /api/storage
func (s *Server) handleStorage(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.pipeline.Store().Stats())
}

// handleMetrics exposes the pipeline's metrics registry: a JSON snapshot
// by default, the expvar-style text listing with ?format=text, or the
// Prometheus text exposition format with ?format=prometheus (counters,
// gauges, and cumulative histogram _bucket/_sum/_count series).
//
//	GET /api/metrics
//	GET /api/metrics?format=text
//	GET /api/metrics?format=prometheus
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.pipeline.Metrics().Snapshot()
	switch r.URL.Query().Get("format") {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w)
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w)
	default:
		writeJSON(w, snap)
	}
}

var indexTmpl = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>LogLens</title></head><body>
<h1>LogLens</h1>
<p id="summary">{{.Anomalies}} anomalies reported ({{.Unparsed}} unparsed logs), {{.Records}} records over {{.Batches}} micro-batches.</p>
<ul>
<li><a href="/api/anomalies">anomalies</a></li>
<li><a href="/api/anomalies/histogram">anomaly histogram</a></li>
<li><a href="/api/models">models</a></li>
<li><a href="/api/stats">stats</a></li>
<li><a href="/api/events">recent events</a></li>
<li><a href="/healthz">health</a></li>
<li><a href="/debug/trace?sec=60">trace (Chrome trace JSON)</a></li>
</ul>
<script>
// Live updates: re-render the summary from the SSE metrics stream.
const es = new EventSource("/api/metrics/stream");
es.onmessage = (ev) => {
  const counters = (JSON.parse(ev.data).counters || {});
  // Keys are canonical "name{labels}" identities; sum across labels.
  const get = (name) => {
    let total = 0;
    for (const [k, v] of Object.entries(counters))
      if (k === name || k.startsWith(name + "{")) total += v;
    return total;
  };
  document.getElementById("summary").textContent =
    get("core_anomalies_total") + " anomalies reported (" +
    get("core_unparsed_total") + " unparsed logs), " +
    get("stream_records_total") + " records over " +
    get("stream_batches_total") + " micro-batches.";
};
</script>
</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	m := s.pipeline.Engine().Metrics()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	indexTmpl.Execute(w, map[string]any{
		"Anomalies": s.pipeline.AnomalyCount(),
		"Unparsed":  s.pipeline.UnparsedCount(),
		"Records":   m.Records,
		"Batches":   m.Batches,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeJSONBody encodes v without touching headers — for handlers that
// have already committed a status code.
func writeJSONBody(w http.ResponseWriter, v any) {
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
