package dashboard

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/core"
	"loglens/internal/testutil"
)

// sseClient reads data frames off a metrics-stream connection in a
// background goroutine, delivering each decoded snapshot on Frames.
type sseClient struct {
	resp   *http.Response
	Frames chan map[string]any
}

// dialStream subscribes to /api/metrics/stream on a live test server.
func dialStream(t *testing.T, url, query string) *sseClient {
	t.Helper()
	resp, err := http.Get(url + "/api/metrics/stream" + query)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	c := &sseClient{resp: resp, Frames: make(chan map[string]any, 256)}
	go func() {
		defer close(c.Frames)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var snap map[string]any
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
				return
			}
			c.Frames <- snap
		}
	}()
	t.Cleanup(func() { resp.Body.Close() })
	return c
}

// next waits for one frame with a wall-clock timeout.
func (c *sseClient) next(t *testing.T) map[string]any {
	t.Helper()
	select {
	case snap, ok := <-c.Frames:
		if !ok {
			t.Fatal("stream closed before expected frame")
		}
		return snap
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for SSE frame")
		return nil
	}
}

// counterOf reads one counter value out of a decoded snapshot frame.
func counterOf(snap map[string]any, name string) float64 {
	counters, _ := snap["counters"].(map[string]any)
	v, _ := counters[name].(float64)
	return v
}

// TestMetricsStreamFakeClockTicks pins the stream's cadence to the
// injected clock: the first frame arrives with no time advance at all,
// then exactly one frame per interval tick, each a fresh snapshot
// carrying counter increments made since the previous tick.
func TestMetricsStreamFakeClockTicks(t *testing.T) {
	fc := clock.NewFake()
	p, err := core.New(core.Config{Clock: fc, DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(p)
	srv.SetClock(fc)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	marker := p.Metrics().Counter("stream_test_marker_total")
	marker.Inc()
	c := dialStream(t, ts.URL, "?interval=1s")

	// Frame 1 is immediate — no tick needed.
	if got := counterOf(c.next(t), "stream_test_marker_total"); got != 1 {
		t.Fatalf("first frame marker = %v, want 1", got)
	}

	// The handler's ticker is the only waiter on this clock (the
	// pipeline is not started). Each advance of one interval yields
	// exactly one fresh snapshot.
	fc.BlockUntil(1)
	for i := 2; i <= 4; i++ {
		marker.Inc()
		fc.Advance(time.Second)
		if got := counterOf(c.next(t), "stream_test_marker_total"); got != float64(i) {
			t.Fatalf("tick %d frame marker = %v, want %d", i-1, got, i)
		}
	}

	// No frame without a tick: time stands still, nothing arrives.
	select {
	case snap := <-c.Frames:
		t.Fatalf("unexpected frame with clock parked: %v", snap)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestMetricsStreamSlowSubscriberDrops: a burst of ticks against a
// subscriber that is not keeping up coalesces — the ticker channel
// holds one pending tick (time.Ticker semantics), so the stream skips
// to fresh snapshots instead of queueing a frame per missed tick.
func TestMetricsStreamSlowSubscriberDrops(t *testing.T) {
	fc := clock.NewFake()
	p, err := core.New(core.Config{Clock: fc, DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(p)
	srv.SetClock(fc)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	marker := p.Metrics().Counter("stream_test_marker_total")
	c := dialStream(t, ts.URL, "?interval=1s")
	c.next(t) // initial frame
	fc.BlockUntil(1)

	// Fire 50 ticks in one Advance while the handler is between reads.
	// Advance runs the whole firing loop under the clock's lock with
	// non-blocking sends, so at most a tick or two land in the buffered
	// channel; the rest drop, exactly like a lagging time.Ticker reader.
	marker.Inc()
	fc.Advance(50 * time.Second)
	// A sentinel tick after the burst bounds the count: every burst
	// frame was delivered (and counted) before the sentinel frame.
	marker.Inc()
	fc.BlockUntil(1)
	fc.Advance(time.Second)

	burstFrames := 0
	for {
		snap := c.next(t)
		if counterOf(snap, "stream_test_marker_total") == 2 {
			break
		}
		burstFrames++
		if burstFrames > 50 {
			t.Fatal("sentinel frame never arrived")
		}
	}
	if burstFrames >= 25 {
		t.Fatalf("burst of 50 ticks produced %d frames, want far fewer (drops)", burstFrames)
	}
}

// TestMetricsStreamUnsubscribeStopsTicker: closing the client
// connection tears the handler down — its ticker is removed from the
// clock, leaving no leaked waiters behind.
func TestMetricsStreamUnsubscribeStopsTicker(t *testing.T) {
	fc := clock.NewFake()
	p, err := core.New(core.Config{Clock: fc, DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(p)
	srv.SetClock(fc)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	c := dialStream(t, ts.URL, "?interval=1s")
	c.next(t)
	fc.BlockUntil(1)
	if n := fc.Waiters(); n != 1 {
		t.Fatalf("waiters after subscribe = %d, want 1 (the stream ticker)", n)
	}

	c.resp.Body.Close()
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return fc.Waiters() == 0
	}, "stream ticker still pending after client disconnect")
}
