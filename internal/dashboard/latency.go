package dashboard

import (
	"net/http"
	"time"

	"loglens/internal/latency"
	"loglens/internal/metrics"
)

// stageSummary is one row of the /api/latency stage table: observation
// count plus interpolated percentiles in milliseconds.
type stageSummary struct {
	Stage string  `json:"stage"`
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
}

// latencyResponse is the /api/latency payload.
type latencyResponse struct {
	Enabled         bool                         `json:"enabled"`
	SLO             sloSummary                   `json:"slo"`
	IngestWatermark *time.Time                   `json:"ingestWatermark"`
	Stages          []stageSummary               `json:"stages"`
	Partitions      []latency.PartitionWatermark `json:"partitions"`
	Tenants         []latency.TenantWatermark    `json:"tenants"`
}

// sloSummary reports the configured end-to-end objective and how often
// it has been missed. E2eMs is 0 when no SLO is configured (the breach
// counter then never moves).
type sloSummary struct {
	E2eMs       int64  `json:"e2eMs"`
	BreachTotal uint64 `json:"breachTotal"`
}

// stageRow summarizes one latency histogram. Percentiles come from
// HistogramValue.Quantile; an empty histogram reports zeros rather than
// NaN (which encoding/json cannot emit).
func stageRow(name string, hv metrics.HistogramValue) stageSummary {
	row := stageSummary{Stage: name, Count: hv.Count}
	if hv.Count == 0 {
		return row
	}
	row.P50Ms = hv.Quantile(0.50) * 1000
	row.P95Ms = hv.Quantile(0.95) * 1000
	row.P99Ms = hv.Quantile(0.99) * 1000
	return row
}

// handleLatency reports the latency & freshness plane: per-stage and
// end-to-end percentiles, the configured SLO with its breach count, the
// ingest watermark, and the per-partition / per-tenant freshness
// watermark tables with live lag ages.
//
//	GET /api/latency
func (s *Server) handleLatency(w http.ResponseWriter, r *http.Request) {
	lat := s.pipeline.Latency()
	if lat == nil {
		writeJSON(w, latencyResponse{
			Stages:     []stageSummary{},
			Partitions: []latency.PartitionWatermark{},
			Tenants:    []latency.TenantWatermark{},
		})
		return
	}
	snap := s.pipeline.Metrics().Snapshot()
	resp := latencyResponse{
		Enabled: true,
		SLO: sloSummary{
			E2eMs:       lat.SLO().Milliseconds(),
			BreachTotal: lat.Breaches(),
		},
	}
	if wm := lat.IngestWatermark(); !wm.IsZero() {
		resp.IngestWatermark = &wm
	}
	for _, name := range latency.Stages() {
		hv, _ := snap.Histogram("latency_stage_seconds", "stage", name)
		resp.Stages = append(resp.Stages, stageRow(name, hv))
	}
	e2e, _ := snap.Histogram("core_line_seconds")
	resp.Stages = append(resp.Stages, stageRow("e2e", e2e))
	resp.Partitions, resp.Tenants = lat.Watermarks()
	if resp.Partitions == nil {
		resp.Partitions = []latency.PartitionWatermark{}
	}
	if resp.Tenants == nil {
		resp.Tenants = []latency.TenantWatermark{}
	}
	writeJSON(w, resp)
}
