package dashboard

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/core"
	"loglens/internal/latency"
)

// latencyGet fetches /api/latency and decodes the response body.
func latencyGet(t *testing.T, srv *Server) (int, map[string]any) {
	t.Helper()
	return get(t, srv, "/api/latency")
}

// TestLatencyEndpoint drives the tracker directly and checks the
// /api/latency payload: SLO accounting, the stage table with
// interpolated percentiles, and the partition/tenant watermark tables
// with lag ages measured against the fake clock.
func TestLatencyEndpoint(t *testing.T) {
	fc := clock.NewFake()
	base := fc.Now()
	p, err := core.New(core.Config{
		Clock:            fc,
		DisableHeartbeat: true,
		Partitions:       2,
		SLOE2E:           50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(p)
	srv.SetClock(fc)

	lat := p.Latency()
	if lat == nil {
		t.Fatal("latency tracker not enabled by default")
	}
	// 4 parse observations at 10ms: all land in the (0.005, 0.01]
	// StageBuckets bucket, so every quantile interpolates inside it.
	for i := 0; i < 4; i++ {
		lat.Observe(latency.StageParse, 10*time.Millisecond)
	}
	lat.CheckSLO(60 * time.Millisecond) // breach
	lat.CheckSLO(40 * time.Millisecond) // within SLO
	lat.NoteIngest(base)
	lat.Partition(0).Note(base.UnixNano(), base.UnixNano())
	lat.Tenant("alpha").Note(base.UnixNano(), base.UnixNano())
	fc.Advance(25 * time.Millisecond)

	code, body := latencyGet(t, srv)
	if code != 200 || body["enabled"] != true {
		t.Fatalf("latency = %d %v, want 200 enabled", code, body["enabled"])
	}
	slo := body["slo"].(map[string]any)
	if slo["e2eMs"].(float64) != 50 || slo["breachTotal"].(float64) != 1 {
		t.Fatalf("slo = %v, want e2eMs 50 breachTotal 1", slo)
	}
	if body["ingestWatermark"] == nil {
		t.Fatalf("ingestWatermark missing after NoteIngest")
	}

	stages := body["stages"].([]any)
	want := append(latency.Stages(), "e2e")
	if len(stages) != len(want) {
		t.Fatalf("got %d stage rows, want %d", len(stages), len(want))
	}
	var parse map[string]any
	for i, raw := range stages {
		row := raw.(map[string]any)
		if row["stage"] != want[i] {
			t.Fatalf("stages[%d] = %v, want %s", i, row["stage"], want[i])
		}
		if row["stage"] == "parse" {
			parse = row
		}
	}
	if parse["count"].(float64) != 4 {
		t.Fatalf("parse count = %v, want 4", parse["count"])
	}
	// All 4 observations sit in one bucket: p50 interpolates halfway
	// through it, p95 at 95% of it.
	bounds := latency.StageBuckets
	var lo, hi float64
	for i, b := range bounds {
		if b >= 0.01 {
			hi = b
			if i > 0 {
				lo = bounds[i-1]
			}
			break
		}
	}
	wantP50 := (lo + (hi-lo)*0.5) * 1000
	if got := parse["p50Ms"].(float64); math.Abs(got-wantP50) > 1e-9 {
		t.Fatalf("parse p50Ms = %v, want %v", got, wantP50)
	}
	wantP95 := (lo + (hi-lo)*0.95) * 1000
	if got := parse["p95Ms"].(float64); math.Abs(got-wantP95) > 1e-9 {
		t.Fatalf("parse p95Ms = %v, want %v", got, wantP95)
	}

	// Empty stages report zero percentiles, not NaN (JSON-encodable).
	intake := stages[0].(map[string]any)
	if intake["count"].(float64) != 0 || intake["p99Ms"].(float64) != 0 {
		t.Fatalf("empty intake row = %v, want zeros", intake)
	}

	parts := body["partitions"].([]any)
	if len(parts) != 2 {
		t.Fatalf("got %d partitions, want 2", len(parts))
	}
	p0 := parts[0].(map[string]any)
	if p0["partition"].(float64) != 0 || p0["eventLagMs"].(float64) != 25 {
		t.Fatalf("partition 0 = %v, want eventLagMs 25", p0)
	}
	p1 := parts[1].(map[string]any)
	if p1["eventLagMs"].(float64) != -1 {
		t.Fatalf("idle partition 1 = %v, want eventLagMs -1", p1)
	}
	tenants := body["tenants"].([]any)
	if len(tenants) != 1 {
		t.Fatalf("got %d tenants, want 1", len(tenants))
	}
	al := tenants[0].(map[string]any)
	if al["tenant"] != "alpha" || al["procLagMs"].(float64) != 25 {
		t.Fatalf("tenant row = %v, want alpha procLagMs 25", al)
	}
}

// TestLatencyEndpointDisabled: with DisableLatency the endpoint answers
// an empty-but-valid body rather than a 404.
func TestLatencyEndpointDisabled(t *testing.T) {
	p, err := core.New(core.Config{DisableHeartbeat: true, DisableLatency: true})
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, New(p), "/api/latency")
	if code != 200 || body["enabled"] != false {
		t.Fatalf("latency = %d %v, want 200 disabled", code, body["enabled"])
	}
	if len(body["stages"].([]any)) != 0 || len(body["partitions"].([]any)) != 0 {
		t.Fatalf("disabled body not empty: %v", body)
	}
}

// TestMetricsPrometheusFormat: ?format=prometheus serves the text
// exposition — TYPE headers, cumulative buckets ending at +Inf, and
// _sum/_count series.
func TestMetricsPrometheusFormat(t *testing.T) {
	p, err := core.New(core.Config{DisableHeartbeat: true, SLOE2E: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p.Latency().Observe(latency.StageParse, 10*time.Millisecond)
	p.Latency().CheckSLO(5 * time.Millisecond)
	srv := New(p)

	req := httptest.NewRequest("GET", "/api/metrics?format=prometheus", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE latency_stage_seconds histogram",
		"# TYPE latency_slo_breach_total counter",
		"latency_slo_breach_total 1",
		`latency_stage_seconds_bucket{stage="parse",le="+Inf"} 1`,
		`latency_stage_seconds_count{stage="parse"} 1`,
		`latency_stage_seconds_sum{stage="parse"} 0.01`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// Buckets must be cumulative and in bound order: the +Inf bucket is
	// the last parse bucket line.
	lines := strings.Split(out, "\n")
	var parseBuckets []string
	for _, l := range lines {
		if strings.HasPrefix(l, `latency_stage_seconds_bucket{stage="parse"`) {
			parseBuckets = append(parseBuckets, l)
		}
	}
	if len(parseBuckets) != len(latency.StageBuckets)+1 {
		t.Fatalf("got %d parse bucket lines, want %d", len(parseBuckets), len(latency.StageBuckets)+1)
	}
	if last := parseBuckets[len(parseBuckets)-1]; !strings.Contains(last, `le="+Inf"`) {
		t.Errorf("last bucket line = %q, want +Inf", last)
	}
}
