package heartbeat

import (
	"strings"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/obs"
)

// TestStalenessTracksWallClock: Staleness is computed live from the wall
// clock, so a probe sees silence grow without any Tick in between.
func TestStalenessTracksWallClock(t *testing.T) {
	c, clk := newTestController()
	c.Observe("a", log0)
	clk.Advance(30 * time.Second)
	c.Observe("b", log0)
	clk.Advance(10 * time.Second)

	st := c.Staleness()
	if len(st) != 2 {
		t.Fatalf("staleness = %v", st)
	}
	if st["a"] != 40*time.Second || st["b"] != 10*time.Second {
		t.Fatalf("staleness = %v, want a=40s b=10s", st)
	}
}

// TestSetOpsRecordsSweepsAndForgottenSources: with the ops plane
// attached, every Tick sweep leaves a span on the sweep thread and a
// source deleted for silence leaves a flight-recorder event.
func TestSetOpsRecordsSweepsAndForgottenSources(t *testing.T) {
	fake := clock.NewFakeAt(wall0)
	c := New(Config{ActivityWindow: time.Minute})
	c.SetClock(fake)
	ops := obs.New(fake)
	c.SetOps(ops)

	c.Observe("src", log0)
	fake.Advance(2 * time.Minute) // past the activity window
	if hbs := c.Tick(); len(hbs) != 0 {
		t.Fatalf("heartbeats for a forgotten source: %v", hbs)
	}

	evs := ops.Events.Events(obs.EventQuery{Type: obs.EventSourceForgotten})
	if len(evs) != 1 || evs[0].Source != "src" || evs[0].Value != 120 {
		t.Fatalf("forgotten events = %+v", evs)
	}
	names := ops.Spans.ThreadNames()
	found := false
	for _, n := range names {
		if n == "heartbeat sweep" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no sweep thread registered: %v", names)
	}
	spans := ops.Spans.Spans(time.Time{})
	if len(spans) == 0 || !strings.Contains(spans[0].Name, "sweep") {
		t.Fatalf("sweep span missing: %+v", spans)
	}
}
