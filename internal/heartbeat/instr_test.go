package heartbeat

import (
	"testing"
	"time"

	"loglens/internal/metrics"
)

// TestInstrumentCounts: observations, synthesized heartbeats, and the
// tracked-source gauge are mirrored into the registry.
func TestInstrumentCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	c, clk := newTestController()
	c.Instrument(reg)

	c.Observe("a", log0)
	clk.Advance(time.Second)
	c.Observe("a", log0.Add(time.Second))
	c.Observe("b", log0)

	clk.Advance(5 * time.Second)
	hbs := c.Tick()
	if len(hbs) != 2 {
		t.Fatalf("heartbeats = %v, want 2", hbs)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("heartbeat_observations_total"); got != 3 {
		t.Errorf("observations = %d, want 3", got)
	}
	if got := snap.Counter("heartbeat_emitted_total"); got != 2 {
		t.Errorf("emitted = %d, want 2", got)
	}
	if got := snap.Gauge("heartbeat_sources"); got != 2 {
		t.Errorf("sources = %d, want 2", got)
	}
}
