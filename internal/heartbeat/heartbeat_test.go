package heartbeat

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a controllable wall clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

var wall0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
var log0 = time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)

func newTestController() (*Controller, *fakeClock) {
	clock := &fakeClock{now: wall0}
	c := New(Config{ActivityWindow: time.Hour})
	c.SetClock(clock.Now)
	return c, clock
}

func TestSynthesizedTimeTracksLogRate(t *testing.T) {
	c, clock := newTestController()

	// Log time advances 2 seconds per wall second (replay at 2x).
	c.Observe("src", log0)
	clock.Advance(time.Second)
	c.Observe("src", log0.Add(2*time.Second))
	clock.Advance(time.Second)
	c.Observe("src", log0.Add(4*time.Second))

	// Silence for 10 wall seconds: synthesized log time should advance
	// by about 20 log seconds.
	clock.Advance(10 * time.Second)
	hbs := c.Tick()
	if len(hbs) != 1 {
		t.Fatalf("heartbeats = %v", hbs)
	}
	got := hbs[0].Time.Sub(log0.Add(4 * time.Second)).Seconds()
	if got < 15 || got > 25 {
		t.Errorf("synthesized advance = %.1fs, want ~20s (2x rate)", got)
	}
	if hbs[0].Source != "src" {
		t.Errorf("source = %q", hbs[0].Source)
	}
}

func TestSingleObservationAssumesRealTime(t *testing.T) {
	c, clock := newTestController()
	c.Observe("src", log0)
	clock.Advance(5 * time.Second)
	hbs := c.Tick()
	if len(hbs) != 1 {
		t.Fatal("no heartbeat")
	}
	got := hbs[0].Time.Sub(log0).Seconds()
	if got < 4.9 || got > 5.1 {
		t.Errorf("advance = %.1fs, want ~5s at assumed 1x", got)
	}
}

func TestInactiveSourceDropped(t *testing.T) {
	clock := &fakeClock{now: wall0}
	c := New(Config{ActivityWindow: time.Minute})
	c.SetClock(clock.Now)
	c.Observe("src", log0)
	clock.Advance(2 * time.Minute)
	if hbs := c.Tick(); len(hbs) != 0 {
		t.Fatalf("inactive source still heartbeating: %v", hbs)
	}
	if len(c.Sources()) != 0 {
		t.Error("inactive source not forgotten")
	}
}

func TestMultipleSources(t *testing.T) {
	c, clock := newTestController()
	c.Observe("a", log0)
	c.Observe("b", log0.Add(time.Hour))
	clock.Advance(time.Second)
	hbs := c.Tick()
	if len(hbs) != 2 {
		t.Fatalf("heartbeats = %v", hbs)
	}
}

func TestOutOfOrderLogTimeIgnoredForRegression(t *testing.T) {
	c, clock := newTestController()
	c.Observe("src", log0.Add(10*time.Second))
	clock.Advance(time.Second)
	// A late-arriving older log must not move last log time backwards.
	c.Observe("src", log0)
	clock.Advance(time.Second)
	hbs := c.Tick()
	if len(hbs) != 1 {
		t.Fatal("no heartbeat")
	}
	if hbs[0].Time.Before(log0.Add(10 * time.Second)) {
		t.Errorf("synthesized time went backwards: %v", hbs[0].Time)
	}
}

func TestRunEmitsPeriodically(t *testing.T) {
	c := New(Config{Interval: 5 * time.Millisecond})
	c.Observe("src", log0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	var mu sync.Mutex
	count := 0
	c.Run(ctx, func(hb Heartbeat) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	mu.Lock()
	defer mu.Unlock()
	if count < 2 {
		t.Errorf("emitted %d heartbeats, want several", count)
	}
}
