package heartbeat

import (
	"context"
	"sync"
	"testing"
	"time"

	"loglens/internal/clock"
)

var wall0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
var log0 = time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)

func newTestController() (*Controller, *clock.Fake) {
	fake := clock.NewFakeAt(wall0)
	c := New(Config{ActivityWindow: time.Hour})
	c.SetClock(fake)
	return c, fake
}

func TestSynthesizedTimeTracksLogRate(t *testing.T) {
	c, clk := newTestController()

	// Log time advances 2 seconds per wall second (replay at 2x).
	c.Observe("src", log0)
	clk.Advance(time.Second)
	c.Observe("src", log0.Add(2*time.Second))
	clk.Advance(time.Second)
	c.Observe("src", log0.Add(4*time.Second))

	// Silence for 10 wall seconds: synthesized log time should advance
	// by about 20 log seconds.
	clk.Advance(10 * time.Second)
	hbs := c.Tick()
	if len(hbs) != 1 {
		t.Fatalf("heartbeats = %v", hbs)
	}
	got := hbs[0].Time.Sub(log0.Add(4 * time.Second)).Seconds()
	if got < 15 || got > 25 {
		t.Errorf("synthesized advance = %.1fs, want ~20s (2x rate)", got)
	}
	if hbs[0].Source != "src" {
		t.Errorf("source = %q", hbs[0].Source)
	}
}

func TestSingleObservationAssumesRealTime(t *testing.T) {
	c, clk := newTestController()
	c.Observe("src", log0)
	clk.Advance(5 * time.Second)
	hbs := c.Tick()
	if len(hbs) != 1 {
		t.Fatal("no heartbeat")
	}
	got := hbs[0].Time.Sub(log0).Seconds()
	if got < 4.9 || got > 5.1 {
		t.Errorf("advance = %.1fs, want ~5s at assumed 1x", got)
	}
}

func TestInactiveSourceDropped(t *testing.T) {
	clk := clock.NewFakeAt(wall0)
	c := New(Config{ActivityWindow: time.Minute})
	c.SetClock(clk)
	c.Observe("src", log0)
	clk.Advance(2 * time.Minute)
	if hbs := c.Tick(); len(hbs) != 0 {
		t.Fatalf("inactive source still heartbeating: %v", hbs)
	}
	if len(c.Sources()) != 0 {
		t.Error("inactive source not forgotten")
	}
}

func TestMultipleSources(t *testing.T) {
	c, clk := newTestController()
	c.Observe("a", log0)
	c.Observe("b", log0.Add(time.Hour))
	clk.Advance(time.Second)
	hbs := c.Tick()
	if len(hbs) != 2 {
		t.Fatalf("heartbeats = %v", hbs)
	}
}

func TestOutOfOrderLogTimeIgnoredForRegression(t *testing.T) {
	c, clk := newTestController()
	c.Observe("src", log0.Add(10*time.Second))
	clk.Advance(time.Second)
	// A late-arriving older log must not move last log time backwards.
	c.Observe("src", log0)
	clk.Advance(time.Second)
	hbs := c.Tick()
	if len(hbs) != 1 {
		t.Fatal("no heartbeat")
	}
	if hbs[0].Time.Before(log0.Add(10 * time.Second)) {
		t.Errorf("synthesized time went backwards: %v", hbs[0].Time)
	}
}

// An expiry decision driven by synthesized heartbeats can lag a log-time
// boundary by at most one emission interval: consecutive ticks advance
// synthesized log time by exactly Interval x rate, so the first tick past
// any boundary D arrives within one interval of D. This is the
// controller-side half of the chaos suite's expiry scenario
// (internal/chaos/scenarios_test.go adds the detector).
func TestExpiryBoundaryCrossedWithinOneInterval(t *testing.T) {
	c, clk := newTestController()
	// Establish a 2x log-time rate.
	c.Observe("src", log0)
	clk.Advance(time.Second)
	c.Observe("src", log0.Add(2*time.Second))

	const boundary = 9 * time.Second // log-time expiry boundary past log0
	lastWall := wall0.Add(time.Second)
	var prev time.Time
	for tick := 1; tick <= 10; tick++ {
		clk.Advance(time.Second)
		hbs := c.Tick()
		if len(hbs) != 1 {
			t.Fatalf("tick %d: heartbeats = %v", tick, hbs)
		}
		synth := hbs[0].Time
		if tick > 1 {
			if step := synth.Sub(prev); step != 2*time.Second {
				t.Fatalf("tick %d advanced synthesized time by %v, want exactly 2s", tick, step)
			}
		}
		prev = synth
		if synth.Sub(log0) > boundary {
			// First tick past the boundary: at 2 log-seconds per tick
			// the overshoot is below one tick's worth of log time.
			if over := synth.Sub(log0) - boundary; over > 2*time.Second {
				t.Errorf("boundary overshot by %v, more than one interval of log time", over)
			}
			wall := clk.Now()
			if wall.Sub(lastWall) > time.Duration(tick)*time.Second {
				t.Errorf("boundary signal after %v of wall time, want within tick %d", wall.Sub(lastWall), tick)
			}
			return
		}
	}
	t.Fatal("synthesized time never crossed the expiry boundary")
}

// TestRunEmitsPeriodically drives the Run loop entirely on the fake clock:
// every advanced interval yields exactly one emission round, with no wall
// time spent.
func TestRunEmitsPeriodically(t *testing.T) {
	clk := clock.NewFakeAt(wall0)
	c := New(Config{Interval: time.Second, ActivityWindow: time.Hour})
	c.SetClock(clk)
	c.Observe("src", log0)

	ctx, cancel := context.WithCancel(context.Background())
	emitted := make(chan Heartbeat, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Run(ctx, func(hb Heartbeat) { emitted <- hb })
	}()

	// Wait until Run's ticker is registered, then drive five intervals.
	clk.BlockUntil(1)
	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
		select {
		case <-emitted:
		case <-time.After(5 * time.Second):
			t.Fatalf("interval %d emitted nothing", i)
		}
	}
	cancel()
	wg.Wait()
}
