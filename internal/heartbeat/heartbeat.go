// Package heartbeat implements the external heartbeat controller (§V-B).
// Stateful anomaly detection is event-driven: if a source goes quiet, open
// states can never be expired by log arrival alone — and wall-clock
// timeouts are wrong because "log time" may run faster or slower than real
// time. The controller therefore tracks, per source, the last embedded log
// timestamp and the observed log-time rate, and periodically emits
// heartbeat messages carrying a synthesized current log time. Detectors
// treat heartbeats as a time signal to enumerate and expire open states.
package heartbeat

import (
	"context"
	"sync"
	"time"

	"loglens/internal/clock"
	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// Heartbeat is one synthesized time signal for a source.
type Heartbeat struct {
	// Source is the log source the heartbeat speaks for.
	Source string
	// Time is the synthesized current log time of that source.
	Time time.Time
}

// Config tunes the controller.
type Config struct {
	// Interval is how often heartbeats are emitted (default 1s).
	Interval time.Duration

	// ActivityWindow is how long after its last observed log a source
	// is still considered active and worth heartbeating ("if the
	// corresponding log agent is still active"). Default 10 minutes of
	// wall time.
	ActivityWindow time.Duration

	// RateSmoothing is the EWMA coefficient (0..1) applied to new
	// log-time-rate observations. Default 0.3.
	RateSmoothing float64
}

func (c *Config) setDefaults() {
	if c.Interval == 0 {
		c.Interval = time.Second
	}
	if c.ActivityWindow == 0 {
		c.ActivityWindow = 10 * time.Minute
	}
	if c.RateSmoothing == 0 {
		c.RateSmoothing = 0.3
	}
}

type sourceState struct {
	lastLogTime  time.Time // embedded timestamp of the last observed log
	lastWallTime time.Time // wall clock when it was observed
	rate         float64   // log-seconds per wall-second (EWMA)
	hasRate      bool
}

// Controller synthesizes per-source heartbeats. It is safe for concurrent
// use.
type Controller struct {
	cfg     Config
	mu      sync.Mutex
	sources map[string]*sourceState
	clk     clock.Clock // injectable clock for tests, chaos, log replay

	observations *metrics.Counter
	emitted      *metrics.Counter
	tracked      *metrics.Gauge

	spans    *obs.SpanRecorder
	events   *obs.FlightRecorder
	sweepTid int
}

// New constructs a Controller.
func New(cfg Config) *Controller {
	cfg.setDefaults()
	return &Controller{
		cfg:     cfg,
		sources: make(map[string]*sourceState),
		clk:     clock.New(),
	}
}

// SetClock injects a wall clock, for deterministic tests and log replay.
// Set it before Run.
func (c *Controller) SetClock(clk clock.Clock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clk = clk
}

func (c *Controller) clock() clock.Clock {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clk
}

// Instrument mirrors controller activity into reg: observations fed in,
// heartbeats synthesized, and the tracked-source gauge. Call before Run.
func (c *Controller) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observations = reg.Counter("heartbeat_observations_total")
	c.emitted = reg.Counter("heartbeat_emitted_total")
	c.tracked = reg.Gauge("heartbeat_sources")
}

// SetOps attaches the ops plane: each Tick sweep becomes a span on its
// own logical thread, and forgetting a silent source records a
// flight-recorder event. Call before Run; nil disables.
func (c *Controller) SetOps(o *obs.Ops) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = obs.SpansOf(o)
	c.events = obs.EventsOf(o)
	c.sweepTid = c.spans.Thread("heartbeat sweep")
}

// Staleness reports, per tracked source, how long it has been since the
// last observation on the controller's wall clock — the signal the
// heartbeat-staleness health probe thresholds against.
func (c *Controller) Staleness() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration, len(c.sources))
	wall := c.clk.Now()
	for source, st := range c.sources {
		out[source] = wall.Sub(st.lastWallTime)
	}
	return out
}

// Observe records one log's embedded timestamp for a source. Call it as
// logs flow through the log manager; it keeps the rate estimate fresh.
func (c *Controller) Observe(source string, logTime time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wall := c.clk.Now()
	if c.observations != nil {
		c.observations.Inc()
	}
	st, ok := c.sources[source]
	if !ok {
		c.sources[source] = &sourceState{lastLogTime: logTime, lastWallTime: wall}
		if c.tracked != nil {
			c.tracked.Set(int64(len(c.sources)))
		}
		return
	}
	wallDelta := wall.Sub(st.lastWallTime).Seconds()
	logDelta := logTime.Sub(st.lastLogTime).Seconds()
	if wallDelta > 0 && logDelta >= 0 {
		obs := logDelta / wallDelta
		if st.hasRate {
			a := c.cfg.RateSmoothing
			st.rate = a*obs + (1-a)*st.rate
		} else {
			st.rate = obs
			st.hasRate = true
		}
	}
	if logTime.After(st.lastLogTime) {
		st.lastLogTime = logTime
	}
	st.lastWallTime = wall
}

// Sources returns the currently tracked source names.
func (c *Controller) Sources() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.sources))
	for s := range c.sources {
		out = append(out, s)
	}
	return out
}

// Tick synthesizes one heartbeat per active source: the source's last log
// time advanced by its observed rate times the wall time elapsed since.
// Sources silent past the activity window are skipped (their agents are
// gone) and eventually forgotten.
func (c *Controller) Tick() []Heartbeat {
	c.mu.Lock()
	defer c.mu.Unlock()
	sweep := c.spans.Start("heartbeat", "sweep", c.sweepTid)
	defer sweep.End()
	wall := c.clk.Now()
	var out []Heartbeat
	for source, st := range c.sources {
		idle := wall.Sub(st.lastWallTime)
		if idle > c.cfg.ActivityWindow {
			delete(c.sources, source)
			c.events.Record(obs.EventSourceForgotten, source,
				"silent past activity window", int64(idle/time.Second))
			continue
		}
		rate := st.rate
		if !st.hasRate {
			// A single observation gives no rate; assume log time
			// tracks wall time.
			rate = 1.0
		}
		synth := st.lastLogTime.Add(time.Duration(idle.Seconds() * rate * float64(time.Second)))
		out = append(out, Heartbeat{Source: source, Time: synth})
	}
	if c.emitted != nil {
		c.emitted.Add(uint64(len(out)))
	}
	if c.tracked != nil {
		c.tracked.Set(int64(len(c.sources)))
	}
	return out
}

// Run emits heartbeats on the configured interval until the context is
// done, calling emit for every synthesized heartbeat. It blocks; run it in
// its own goroutine.
func (c *Controller) Run(ctx context.Context, emit func(Heartbeat)) {
	ticker := c.clock().NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C():
			for _, hb := range c.Tick() {
				emit(hb)
			}
		}
	}
}
