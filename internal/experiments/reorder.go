package experiments

import (
	"math/rand"
	"sort"
	"time"

	"loglens/internal/datagen"
	"loglens/internal/logtypes"
	"loglens/internal/modelmgr"
	"loglens/internal/seqdetect"
)

// ReorderResult probes a real-world hazard the paper's evaluation does not
// cover: logs arriving out of order. The detector consumes logs in arrival
// order (the paper sorts within a micro-batch only), so jitter beyond a
// batch can split an event's trace. This experiment quantifies the
// degradation — how detection counts drift as delivery jitter grows —
// documenting the system's operating envelope.
type ReorderResult struct {
	// Jitter is the maximum delivery displacement applied (log time).
	Jitter time.Duration
	// GroundTruth is the injected anomaly count.
	GroundTruth int
	// Detected is the reported anomaly count under jitter (spurious
	// reports make it exceed GroundTruth; lost events lower it).
	Detected int
}

// RunReorder shuffles the test stream under bounded jitter and measures
// detection counts. Jitter 0 must reproduce the exact ground truth.
func RunReorder(c datagen.Corpus, jitters []time.Duration, seed int64) ([]ReorderResult, error) {
	builder := modelmgr.NewBuilder(modelmgr.BuilderConfig{})
	model, _, err := builder.Build(c.Name, ToLogs(c.Name, c.Train))
	if err != nil {
		return nil, err
	}
	p := model.NewParser(nil)
	parsed := make([]*logtypes.ParsedLog, 0, len(c.Test))
	for i, line := range c.Test {
		pl, err := p.Parse(logtypes.Log{Source: c.Name, Seq: uint64(i + 1), Raw: line})
		if err == nil {
			parsed = append(parsed, pl)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	var out []ReorderResult
	for _, jitter := range jitters {
		stream := parsed
		if jitter > 0 {
			// Displace each log by a random delivery delay in
			// [0, jitter] and re-sort by perturbed time: bounded
			// out-of-order delivery.
			type delayed struct {
				pl *logtypes.ParsedLog
				at time.Time
			}
			ds := make([]delayed, len(parsed))
			for i, pl := range parsed {
				ds[i] = delayed{pl: pl, at: pl.EventTime().Add(time.Duration(rng.Int63n(int64(jitter))))}
			}
			sort.SliceStable(ds, func(i, j int) bool { return ds[i].at.Before(ds[j].at) })
			stream = make([]*logtypes.ParsedLog, len(ds))
			for i, d := range ds {
				stream[i] = d.pl
			}
		}

		det := seqdetect.New(model.Sequence.Clone(), seqdetect.Config{})
		detected := 0
		for _, pl := range stream {
			detected += len(det.Process(pl))
		}
		detected += len(det.HeartbeatFor(c.Name, c.Truth.LastLogTime.Add(24*time.Hour)))
		out = append(out, ReorderResult{
			Jitter:      jitter,
			GroundTruth: c.Truth.TotalAnomalies,
			Detected:    detected,
		})
	}
	return out, nil
}
