package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"loglens/internal/timestamp"
	"loglens/internal/tokenize"
)

// TimestampResult is the §VI-A timestamp-identification experiment: the
// speedup of the caching and filtering optimizations over a linear scan of
// the 89-format knowledge base.
type TimestampResult struct {
	// Lines is the workload size.
	Lines int
	// LinearNs, CacheNs, FilterNs, FullNs are per-line costs
	// (nanoseconds) of the four configurations.
	LinearNs, CacheNs, FilterNs, FullNs float64
	// SpeedupFull is linear/full — the paper reports up to 22x.
	SpeedupFull float64
	// SpeedupCache is linear/cache-only — the paper attributes 19.4x of
	// the 22x to caching.
	SpeedupCache float64
	// Agree reports that all configurations identified identical
	// timestamps.
	Agree bool
}

// timestampWorkload builds a log stream in the style of the Table III
// datasets: each "source" uses a few fixed formats from deep in the
// knowledge base, with the timestamp at varying token positions.
func timestampWorkload(lines int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	formats := timestamp.Defaults()
	// Real sources keep using the same handful of formats — pick 3.
	chosen := []timestamp.Format{formats[27], formats[52], formats[70]}
	tok := tokenize.New()
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	prefixes := []string{"", "WARN", "app7 pid 4421", "node x9 svc auth"}
	suffixes := []string{"request served bytes 5120", "disk sda1 ok", "retry scheduled"}

	out := make([][]string, lines)
	for i := range out {
		f := chosen[i%len(chosen)]
		t := base.Add(time.Duration(i) * time.Second)
		stamp := t.Format(f.Layout)
		line := prefixes[rng.Intn(len(prefixes))] + " " + stamp + " " + suffixes[rng.Intn(len(suffixes))]
		out[i] = tok.Split(line)
	}
	return out
}

// RunTimestamp measures the four identifier configurations on the same
// workload.
func RunTimestamp(lines int, seed int64) *TimestampResult {
	workload := timestampWorkload(lines, seed)

	type cfg struct {
		name string
		id   *timestamp.Identifier
	}
	configs := []cfg{
		{"linear", timestamp.New(timestamp.WithoutCache(), timestamp.WithoutFilter())},
		{"cache", timestamp.New(timestamp.WithoutFilter())},
		{"filter", timestamp.New(timestamp.WithoutCache())},
		{"full", timestamp.New()},
	}

	times := make([]float64, len(configs))
	var first []time.Time
	agree := true
	for ci, c := range configs {
		var stamps []time.Time
		start := expClock.Now()
		for _, tokens := range workload {
			if m, ok := c.id.Identify(tokens); ok {
				stamps = append(stamps, m.Time)
			}
		}
		times[ci] = float64(expClock.Since(start).Nanoseconds()) / float64(len(workload))
		if ci == 0 {
			first = stamps
			continue
		}
		if len(stamps) != len(first) {
			agree = false
			continue
		}
		for i := range stamps {
			if !stamps[i].Equal(first[i]) {
				agree = false
				break
			}
		}
	}

	res := &TimestampResult{
		Lines:    lines,
		LinearNs: times[0], CacheNs: times[1], FilterNs: times[2], FullNs: times[3],
		Agree: agree,
	}
	if res.FullNs > 0 {
		res.SpeedupFull = res.LinearNs / res.FullNs
	}
	if res.CacheNs > 0 {
		res.SpeedupCache = res.LinearNs / res.CacheNs
	}
	return res
}

// Format renders the result for the console.
func (r *TimestampResult) Format() string {
	return fmt.Sprintf(
		"timestamp identification over %d lines (89 predefined formats)\n"+
			"  linear scan : %8.0f ns/line\n"+
			"  cache only  : %8.0f ns/line (%.1fx)\n"+
			"  filter only : %8.0f ns/line (%.1fx)\n"+
			"  cache+filter: %8.0f ns/line (%.1fx total; paper: up to 22x, 19.4x from caching)\n"+
			"  results agree across configurations: %v\n",
		r.Lines, r.LinearNs,
		r.CacheNs, r.SpeedupCache,
		r.FilterNs, r.LinearNs/r.FilterNs,
		r.FullNs, r.SpeedupFull, r.Agree)
}
