package experiments

import (
	"testing"
	"time"

	"loglens/internal/datagen"
	"loglens/internal/seqdetect"
)

// TestFigure4D1 reproduces Figure 4 on D1: 21 ground-truth anomalous
// sequences, all detected (100% recall), no spurious detections.
func TestFigure4D1(t *testing.T) {
	c := datagen.D1(11)
	res, err := RunSequence(c, SeqOptions{WithHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unparsed != 0 {
		t.Errorf("unparsed test logs = %d, want 0", res.Unparsed)
	}
	if res.Detected != c.Truth.TotalAnomalies {
		for _, r := range res.Records {
			t.Logf("%s %s event=%s automaton=%d: %s", r.Timestamp.Format("15:04:05"), r.Type, r.EventID, r.AutomatonID, r.Reason)
		}
		t.Fatalf("detected %d anomalies, ground truth %d", res.Detected, c.Truth.TotalAnomalies)
	}
	if res.FalsePositives != 0 {
		t.Errorf("false positives = %d", res.FalsePositives)
	}
	if res.TruePositives != c.Truth.TotalAnomalies {
		t.Errorf("true positives = %d, want %d (every injected event found)", res.TruePositives, c.Truth.TotalAnomalies)
	}
}

// TestFigure4D2 reproduces Figure 4 on D2: 13/13.
func TestFigure4D2(t *testing.T) {
	c := datagen.D2(11)
	res, err := RunSequence(c, SeqOptions{WithHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unparsed != 0 {
		t.Errorf("unparsed test logs = %d, want 0", res.Unparsed)
	}
	if res.Detected != c.Truth.TotalAnomalies {
		for _, r := range res.Records {
			t.Logf("%s %s event=%s automaton=%d: %s", r.Timestamp.Format("15:04:05"), r.Type, r.EventID, r.AutomatonID, r.Reason)
		}
		t.Fatalf("detected %d anomalies, ground truth %d", res.Detected, c.Truth.TotalAnomalies)
	}
	if res.FalsePositives != 0 {
		t.Errorf("false positives = %d", res.FalsePositives)
	}
	if res.TruePositives != c.Truth.TotalAnomalies {
		t.Errorf("true positives = %d, want %d (every injected event found)", res.TruePositives, c.Truth.TotalAnomalies)
	}
}

// TestFigure5 reproduces the heartbeat ablation: without heartbeats the
// missing-end anomalies are lost (D1: 20 of 21, D2: 10 of 13); with
// heartbeats everything is found.
func TestFigure5(t *testing.T) {
	for _, tc := range []struct {
		corpus      datagen.Corpus
		with        int
		wantWithout int
	}{
		{datagen.D1(13), 21, 20},
		{datagen.D2(13), 13, 10},
	} {
		without, err := RunSequence(tc.corpus, SeqOptions{WithHeartbeat: false})
		if err != nil {
			t.Fatal(err)
		}
		if without.Detected != tc.wantWithout {
			t.Errorf("%s without HB: detected %d, want %d", tc.corpus.Name, without.Detected, tc.wantWithout)
		}
		with, err := RunSequence(tc.corpus, SeqOptions{WithHeartbeat: true})
		if err != nil {
			t.Fatal(err)
		}
		if with.Detected != tc.with {
			t.Errorf("%s with HB: detected %d, want %d", tc.corpus.Name, with.Detected, tc.with)
		}
		if diff := with.Detected - without.Detected; diff != tc.corpus.Truth.MissingEnd {
			t.Errorf("%s: HB recovered %d anomalies, want %d missing-end", tc.corpus.Name, diff, tc.corpus.Truth.MissingEnd)
		}
		if with.MissingEnd != tc.corpus.Truth.MissingEnd {
			t.Errorf("%s: missing-end typed = %d, want %d", tc.corpus.Name, with.MissingEnd, tc.corpus.Truth.MissingEnd)
		}
	}
}

// TestTableV reproduces the model-update experiment: deleting one
// automaton reduces the anomaly count exactly by that automaton's share
// (D1: 2 automata, 21 -> 13; D2: 3 automata, 13 -> 9).
func TestTableV(t *testing.T) {
	for _, tc := range []struct {
		corpus      datagen.Corpus
		deleteType  string
		autosBefore int
		before      int
		after       int
	}{
		{datagen.D1(17), "volume", 2, 21, 13},
		{datagen.D2(17), "backup", 3, 13, 9},
	} {
		full, err := RunSequence(tc.corpus, SeqOptions{WithHeartbeat: true})
		if err != nil {
			t.Fatal(err)
		}
		if full.AutomataBefore != tc.autosBefore {
			t.Errorf("%s: automata = %d, want %d", tc.corpus.Name, full.AutomataBefore, tc.autosBefore)
		}
		if full.Detected != tc.before {
			t.Errorf("%s: full model detected %d, want %d", tc.corpus.Name, full.Detected, tc.before)
		}
		deleted, err := RunSequence(tc.corpus, SeqOptions{WithHeartbeat: true, DeleteType: tc.deleteType})
		if err != nil {
			t.Fatal(err)
		}
		if deleted.AutomataAfter != tc.autosBefore-1 {
			t.Errorf("%s: automata after delete = %d", tc.corpus.Name, deleted.AutomataAfter)
		}
		if deleted.Detected != tc.after {
			t.Errorf("%s: after deleting %s automaton detected %d, want %d",
				tc.corpus.Name, tc.deleteType, deleted.Detected, tc.after)
		}
	}
}

// TestSS7CaseStudy reproduces §VII-B at reduced background-traffic scale:
// exactly 994 spoofing anomalies, all missing-end (the Figure 7
// signature), grouped into 4 temporally tight clusters (Figure 6).
func TestSS7CaseStudy(t *testing.T) {
	c := datagen.SS7(0.01, 3)
	res, err := RunSS7(c, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalies != 994 {
		t.Fatalf("anomalies = %d, want 994", res.Anomalies)
	}
	if res.SpoofingSignature != 994 {
		t.Errorf("missing-end (spoofing signature) = %d, want 994", res.SpoofingSignature)
	}
	if len(res.Clusters) != 4 {
		for _, cl := range res.Clusters {
			t.Logf("cluster %v..%v count %d", cl.Start, cl.End, cl.Count())
		}
		t.Fatalf("clusters = %d, want 4 (Figure 6)", len(res.Clusters))
	}
	total := 0
	for _, cl := range res.Clusters {
		total += cl.Count()
	}
	if total != 994 {
		t.Errorf("clustered anomalies = %d", total)
	}
}

// TestTableIVMini runs the Table IV comparison on a scaled-down corpus:
// the shape must hold — LogLens parses everything, produces zero
// anomalies, agrees with the baseline, and is faster.
func TestTableIVMini(t *testing.T) {
	spec := datagen.TableIVSpec{Name: "mini", Patterns: 150, Logs: 8000}
	c := datagen.TableIVCorpus(spec, 1, 21)
	res, err := RunTableIV(c, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns != 150 {
		t.Fatalf("patterns = %d, want 150", res.Patterns)
	}
	if res.LogLensAnomalies != 0 {
		t.Errorf("LogLens anomalies = %d, want 0 (train==test sanity)", res.LogLensAnomalies)
	}
	if !res.LogstashDNF && res.LogstashUnmatched != 0 {
		t.Errorf("Logstash unmatched = %d, want 0", res.LogstashUnmatched)
	}
	if res.Speedup < 2 {
		t.Errorf("speedup = %.1fx; the signature index must beat the linear regex scan", res.Speedup)
	}
}

// TestTimestampExperiment checks the §VI-A optimization shape: caching
// dominates, and cache+filter beats the linear scan substantially.
func TestTimestampExperiment(t *testing.T) {
	res := RunTimestamp(20000, 5)
	if !res.Agree {
		t.Fatal("configurations disagree on identified timestamps")
	}
	if res.SpeedupFull < 3 {
		t.Errorf("cache+filter speedup = %.1fx, want clearly >1 (paper: up to 22x)", res.SpeedupFull)
	}
	if res.SpeedupCache < 2 {
		t.Errorf("cache speedup = %.1fx, want the dominant share (paper: 19.4x)", res.SpeedupCache)
	}
}

// TestRebroadcastExperiment checks the §V-A zero-downtime claim: all
// records processed across updates, every model version observed.
func TestRebroadcastExperiment(t *testing.T) {
	res, err := RunRebroadcast(20000, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != uint64(res.Records) {
		t.Errorf("processed %d of %d records", res.Processed, res.Records)
	}
	if res.Updates != 5 {
		t.Errorf("updates applied = %d, want 5", res.Updates)
	}
	if res.VersionsSeen < 5 {
		t.Errorf("versions seen = %d, want >= 5", res.VersionsSeen)
	}
}

// TestCaseA checks the §VII-A shape: exactly 367 patterns discovered, in
// far less time than the one-week manual baseline.
func TestCaseA(t *testing.T) {
	c := datagen.CustomApp(7340, 9)
	res, err := RunCaseA(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns != 367 {
		t.Fatalf("patterns = %d, want 367", res.Patterns)
	}
	if res.Reduction < 1000 {
		t.Errorf("reduction = %.0fx, expected orders of magnitude", res.Reduction)
	}
}

// TestHeartbeatLatency verifies the §V-B sensitivity shape: every
// heartbeat cadence finds all ground-truth anomalies (no double counting
// from in-stream heartbeats), and detection latency grows with the
// interval.
func TestHeartbeatLatency(t *testing.T) {
	c := datagen.D1(19)
	intervals := []time.Duration{time.Second, 10 * time.Second, 60 * time.Second}
	rows, err := RunHeartbeatLatency(c, intervals, seqdetect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Detected != c.Truth.TotalAnomalies {
			t.Errorf("interval %v: detected %d, want %d", r.Interval, r.Detected, c.Truth.TotalAnomalies)
		}
		if r.MissingEnd != c.Truth.MissingEnd {
			t.Errorf("interval %v: missing-end %d, want %d", r.Interval, r.MissingEnd, c.Truth.MissingEnd)
		}
		if r.MaxLatency > r.Interval {
			t.Errorf("interval %v: max latency %v exceeds the cadence", r.Interval, r.MaxLatency)
		}
	}
	// Latency ordering: a 60s cadence cannot beat a 1s cadence.
	if rows[2].AvgLatency < rows[0].AvgLatency {
		t.Errorf("latency did not grow with interval: %v vs %v", rows[0].AvgLatency, rows[2].AvgLatency)
	}
}

// TestReorderSensitivity documents the operating envelope under
// out-of-order delivery: zero jitter reproduces the exact ground truth;
// sub-second jitter (within an event's inter-log gaps) stays exact;
// heavy jitter degrades, which is the expected and documented limitation.
func TestReorderSensitivity(t *testing.T) {
	c := datagen.D1(23)
	rows, err := RunReorder(c, []time.Duration{0, 200 * time.Millisecond, 10 * time.Second}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Detected != c.Truth.TotalAnomalies {
		t.Errorf("zero jitter: detected %d, want %d", rows[0].Detected, c.Truth.TotalAnomalies)
	}
	if rows[1].Detected != c.Truth.TotalAnomalies {
		t.Errorf("200ms jitter: detected %d, want %d (sub-gap jitter must be harmless)", rows[1].Detected, c.Truth.TotalAnomalies)
	}
	// 10s jitter scrambles events whose steps are 1-3s apart: counts
	// must drift (documenting the limitation), typically upward with
	// spurious missing-begin reports.
	if rows[2].Detected == c.Truth.TotalAnomalies {
		t.Logf("note: heavy jitter coincidentally preserved the count")
	}
}
