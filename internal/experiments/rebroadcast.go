package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"loglens/internal/stream"
)

// RebroadcastResult quantifies the §V-A claim: model updates at runtime
// block only for an in-memory copy, with zero downtime and zero record
// loss.
type RebroadcastResult struct {
	// Records is the number of records streamed.
	Records int
	// Updates is the number of runtime model updates applied.
	Updates int
	// Processed is how many records the operator actually handled
	// (must equal Records: zero loss).
	Processed uint64
	// BlockedTotal is the cumulative serialized lock-step time across
	// all updates; BlockedPerUpdate is the average.
	BlockedTotal     time.Duration
	BlockedPerUpdate time.Duration
	// VersionsSeen counts distinct model versions observed by the
	// operator (updates must actually take effect).
	VersionsSeen int
	// Elapsed is the total run time.
	Elapsed time.Duration
}

// RunRebroadcast streams records through an engine while issuing model
// updates, and measures the blocking cost of the update path.
func RunRebroadcast(records, updates, partitions int) (*RebroadcastResult, error) {
	var processed atomic.Uint64
	versionSet := make([]atomic.Bool, updates+1)

	e := stream.New(stream.Config{Partitions: partitions, BatchInterval: time.Millisecond},
		func(ctx *stream.Context, rec stream.Record) []any {
			v, ok := ctx.Broadcast("model")
			if ok {
				versionSet[v.(int)].Store(true)
			}
			processed.Add(1)
			return nil
		})
	e.Broadcast("model", 0)

	done := make(chan error, 1)
	start := expClock.Now()
	go func() { done <- e.Run(context.Background()) }()

	perUpdate := records / (updates + 1)
	for i := 0; i < records; i++ {
		if err := e.Send(stream.Record{Key: fmt.Sprintf("k%d", i%64)}); err != nil {
			return nil, err
		}
		if updates > 0 && i > 0 && i%perUpdate == 0 && i/perUpdate <= updates {
			// Let the sent records flow before the swap, so every
			// model version actually serves traffic (otherwise
			// back-to-back updates coalesce into one batch gap).
			for processed.Load() < uint64(i)*9/10 {
				time.Sleep(time.Millisecond)
			}
			e.Rebroadcast("model", i/perUpdate)
		}
	}
	e.Close()
	if err := <-done; err != nil {
		return nil, err
	}
	elapsed := expClock.Since(start)

	m := e.Metrics()
	res := &RebroadcastResult{
		Records:      records,
		Updates:      int(m.UpdatesApplied),
		Processed:    processed.Load(),
		BlockedTotal: m.UpdateBlocked,
		Elapsed:      elapsed,
	}
	if m.UpdatesApplied > 0 {
		res.BlockedPerUpdate = m.UpdateBlocked / time.Duration(m.UpdatesApplied)
	}
	for i := range versionSet {
		if versionSet[i].Load() {
			res.VersionsSeen++
		}
	}
	return res, nil
}

// Format renders the result for the console.
func (r *RebroadcastResult) Format() string {
	return fmt.Sprintf(
		"rebroadcast under load: %d records, %d runtime model updates\n"+
			"  records processed : %d (zero loss: %v)\n"+
			"  model versions hit: %d\n"+
			"  update lock-step  : %v total, %v per update (zero downtime: stream never restarted)\n"+
			"  total run         : %v\n",
		r.Records, r.Updates, r.Processed, uint64(r.Records) == r.Processed,
		r.VersionsSeen, r.BlockedTotal, r.BlockedPerUpdate, r.Elapsed)
}
