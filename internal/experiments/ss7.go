package experiments

import (
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/datagen"
	"loglens/internal/logtypes"
	"loglens/internal/modelmgr"
	"loglens/internal/seqdetect"
)

// SS7Result is the §VII-B case-study outcome.
type SS7Result struct {
	// Report is the training report over the 2-hour window.
	Report *modelmgr.BuildReport
	// Anomalies is the total anomalous sequences found in the final
	// hour (paper: 994).
	Anomalies int
	// Clusters are the temporal anomaly bursts (paper: 4, Figure 6).
	Clusters []anomaly.Cluster
	// SpoofingSignature counts anomalies matching the Figure 7 attack
	// shape: missing the terminating InvokeUpdateLocation.
	SpoofingSignature int
	// TrainTime and DetectTime are phase wall-clock times (the paper
	// contrasts 5 minutes of LogLens against 2 days of manual work).
	TrainTime, DetectTime time.Duration
}

// RunSS7 trains on the first two hours of SS7 traffic and detects over the
// final hour, clustering the resulting anomalies by temporal proximity.
func RunSS7(c datagen.SS7Corpus, clusterGap time.Duration) (*SS7Result, error) {
	builder := modelmgr.NewBuilder(modelmgr.BuilderConfig{})
	start := expClock.Now()
	model, report, err := builder.Build("ss7", ToLogs("ss7", c.Train))
	if err != nil {
		return nil, err
	}
	res := &SS7Result{Report: report, TrainTime: expClock.Since(start)}

	p := model.NewParser(nil)
	det := model.NewDetector(seqdetect.Config{})
	var records []anomaly.Record
	start = expClock.Now()
	for i, line := range c.Test {
		pl, err := p.Parse(logtypes.Log{Source: "ss7", Seq: uint64(i + 1), Raw: line})
		if err != nil {
			continue
		}
		records = append(records, det.Process(pl)...)
	}
	records = append(records, det.HeartbeatFor("ss7", c.Truth.LastLogTime.Add(time.Hour))...)
	res.DetectTime = expClock.Since(start)

	res.Anomalies = len(records)
	for _, r := range records {
		if r.Type == anomaly.MissingEnd {
			res.SpoofingSignature++
		}
	}
	res.Clusters = anomaly.Clusterize(records, clusterGap)
	return res, nil
}
