package experiments

import (
	"fmt"
	"runtime"
	"time"

	"loglens/internal/datagen"
	"loglens/internal/logstash"
	"loglens/internal/logtypes"
	"loglens/internal/modelmgr"
	"loglens/internal/parser"
)

// ParserComparison is one Table IV row: LogLens vs Logstash parsing time
// on one dataset.
type ParserComparison struct {
	// Dataset is the corpus name.
	Dataset string
	// Patterns is the discovered pattern count (must equal the spec).
	Patterns int
	// ExpectedPatterns is the published pattern count.
	ExpectedPatterns int
	// Logs is the parsed corpus size.
	Logs int
	// LogLensTime and LogstashTime are the parsing wall-clock times.
	LogLensTime  time.Duration
	LogstashTime time.Duration
	// LogstashDNF is true when the baseline exceeded its budget (the
	// paper stopped Logstash after 48 hours on D4 and D6);
	// LogstashProjected then extrapolates the full-run time from the
	// observed rate.
	LogstashDNF       bool
	LogstashProjected time.Duration
	// Speedup is Logstash/LogLens time (projected when DNF).
	Speedup float64
	// LogLensAnomalies and LogstashUnmatched must be zero: train==test
	// sanity checking ("a correct parser does not produce any
	// anomalies for these datasets").
	LogLensAnomalies  int
	LogstashUnmatched int
	// TrainTime is the pattern-discovery time (reported separately, as
	// in §VII-A).
	TrainTime time.Duration
}

// RunTableIV compares the LogLens parser against the Logstash baseline on
// one dataset, giving the baseline at most budget of wall-clock time
// before declaring DNF.
func RunTableIV(c datagen.Corpus, budget time.Duration) (*ParserComparison, error) {
	res := &ParserComparison{
		Dataset:          c.Name,
		ExpectedPatterns: c.ExpectedPatterns,
		Logs:             len(c.Test),
	}

	// Phase 1: discover patterns from a training sample that covers the
	// full template population (templates are emitted round-robin, so a
	// prefix of 3x the population size sees each at least thrice).
	sample := c.Train
	if max := c.ExpectedPatterns * 3; len(sample) > max {
		sample = sample[:max]
	}
	builder := modelmgr.NewBuilder(modelmgr.BuilderConfig{SkipSequence: true})
	start := expClock.Now()
	model, report, err := builder.Build(c.Name, ToLogs(c.Name, sample))
	if err != nil {
		return nil, err
	}
	res.TrainTime = expClock.Since(start)
	res.Patterns = report.Patterns

	// Phase 2: LogLens parses the full test corpus. A GC barrier keeps
	// garbage from the previous phase (or a previous dataset's regex
	// churn) out of this measurement.
	p := model.NewParser(nil)
	runtime.GC()
	start = expClock.Now()
	for i, line := range c.Test {
		if _, err := p.Parse(logtypes.Log{Source: c.Name, Seq: uint64(i), Raw: line}); err == parser.ErrNoMatch {
			res.LogLensAnomalies++
		}
	}
	res.LogLensTime = expClock.Since(start)

	// Phase 3: the Logstash baseline parses the same corpus under a
	// budget.
	pipe, err := logstash.New(model.Patterns)
	if err != nil {
		return nil, err
	}
	runtime.GC()
	start = expClock.Now()
	parsed := 0
	for i, line := range c.Test {
		if _, err := pipe.Parse(logtypes.Log{Source: c.Name, Seq: uint64(i), Raw: line}); err == logstash.ErrNoMatch {
			res.LogstashUnmatched++
		}
		parsed++
		if i%1024 == 0 && expClock.Since(start) > budget {
			res.LogstashDNF = true
			break
		}
	}
	res.LogstashTime = expClock.Since(start)
	if res.LogstashDNF && parsed > 0 {
		res.LogstashProjected = time.Duration(float64(res.LogstashTime) / float64(parsed) * float64(len(c.Test)))
	} else {
		res.LogstashProjected = res.LogstashTime
	}
	if res.LogLensTime > 0 {
		res.Speedup = float64(res.LogstashProjected) / float64(res.LogLensTime)
	}
	return res, nil
}

// FormatTableIV renders comparison rows in the paper's Table IV layout.
func FormatTableIV(rows []*ParserComparison) string {
	out := fmt.Sprintf("%-8s %-10s %-14s %-16s %-12s\n", "Dataset", "Patterns", "LogLens", "Logstash", "Improvement")
	for _, r := range rows {
		logstashCell := r.LogstashTime.Round(time.Millisecond).String()
		improvement := fmt.Sprintf("%.1fx", r.Speedup)
		if r.LogstashDNF {
			logstashCell = fmt.Sprintf("DNF (proj %s)", r.LogstashProjected.Round(time.Second))
			improvement = fmt.Sprintf(">%.0fx (proj)", r.Speedup)
		}
		out += fmt.Sprintf("%-8s %-10d %-14s %-16s %-12s\n",
			r.Dataset, r.Patterns, r.LogLensTime.Round(time.Millisecond), logstashCell, improvement)
	}
	return out
}
