// Package experiments implements the reproduction harnesses for every
// table and figure of the paper's evaluation (§VI) and the case studies
// (§VII). cmd/benchtables, the integration tests, and the benchmark suite
// all drive these harnesses, so printed tables and asserted counts come
// from one code path.
package experiments

import (
	"fmt"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/datagen"
	"loglens/internal/logtypes"
	"loglens/internal/modelmgr"
	"loglens/internal/seqdetect"
)

// SeqOptions configures a sequence-detection run.
type SeqOptions struct {
	// WithHeartbeat injects a final heartbeat so open states expire
	// (Figure 5's "with HB" configuration).
	WithHeartbeat bool
	// DeleteType names an event type whose learned automaton is deleted
	// before detection (Table V's model-edit experiment).
	DeleteType string
	// Seq tunes the detector.
	Seq seqdetect.Config
}

// SeqResult is the outcome of one sequence-detection run.
type SeqResult struct {
	// Model is the trained model (after any deletion).
	Model *modelmgr.Model
	// Report is the training report.
	Report *modelmgr.BuildReport
	// Detected is the number of anomalous sequences reported.
	Detected int
	// TruePositives and FalsePositives verify detections event by
	// event against the injected ground-truth IDs (Figure 4 reports
	// recall; we assert precision too).
	TruePositives, FalsePositives int
	// MissingEnd is how many were missing-end anomalies.
	MissingEnd int
	// Unparsed counts stateless anomalies (expected 0 on D1/D2).
	Unparsed int
	// AutomataBefore/After document the Table V deletion.
	AutomataBefore, AutomataAfter int
	// Records are the raw anomaly records.
	Records []anomaly.Record
	// TrainTime and DetectTime are wall-clock phase times.
	TrainTime, DetectTime time.Duration
}

// ToLogs converts raw lines into logtypes.Log records with sequential
// arrival numbering.
func ToLogs(source string, lines []string) []logtypes.Log {
	out := make([]logtypes.Log, len(lines))
	for i, line := range lines {
		out[i] = logtypes.Log{Source: source, Seq: uint64(i + 1), Raw: line}
	}
	return out
}

// RunSequence trains on the corpus and detects over its test stream —
// the harness behind Figure 4, Figure 5, and Table V.
func RunSequence(c datagen.Corpus, opts SeqOptions) (*SeqResult, error) {
	if c.Truth == nil {
		return nil, fmt.Errorf("experiments: corpus %s has no sequence ground truth", c.Name)
	}
	builder := modelmgr.NewBuilder(modelmgr.BuilderConfig{})

	start := expClock.Now()
	model, report, err := builder.Build(c.Name, ToLogs(c.Name, c.Train))
	if err != nil {
		return nil, err
	}
	res := &SeqResult{
		Model:          model,
		Report:         report,
		TrainTime:      expClock.Since(start),
		AutomataBefore: len(model.Sequence.Automata),
	}

	p := model.NewParser(nil)

	// Table V: locate the automaton of the named event type via its
	// probe line and delete it from the model.
	if opts.DeleteType != "" {
		tt, ok := c.Truth.ByType[opts.DeleteType]
		if !ok {
			return nil, fmt.Errorf("experiments: corpus %s has no type %q", c.Name, opts.DeleteType)
		}
		probe, err := p.Parse(logtypes.Log{Source: c.Name, Raw: tt.ProbeLine})
		if err != nil {
			return nil, fmt.Errorf("experiments: probe line for %q does not parse: %w", opts.DeleteType, err)
		}
		autos := model.Sequence.AutomataFor(probe.PatternID)
		if len(autos) != 1 {
			return nil, fmt.Errorf("experiments: probe pattern %d is in %d automata, want 1", probe.PatternID, len(autos))
		}
		model.Sequence.Delete(autos[0].ID)
	}
	res.AutomataAfter = len(model.Sequence.Automata)

	det := model.NewDetector(opts.Seq)
	start = expClock.Now()
	for i, line := range c.Test {
		pl, err := p.Parse(logtypes.Log{Source: c.Name, Seq: uint64(i + 1), Raw: line})
		if err != nil {
			res.Unparsed++
			continue
		}
		res.Records = append(res.Records, det.Process(pl)...)
	}
	if opts.WithHeartbeat {
		// The final heartbeat: in the live service the heartbeat
		// controller synthesizes these continuously; in replay a
		// trailing heartbeat past every expiry window reports the
		// still-open states.
		res.Records = append(res.Records, det.HeartbeatFor(c.Name, c.Truth.LastLogTime.Add(24*time.Hour))...)
	}
	res.DetectTime = expClock.Since(start)

	res.Detected = len(res.Records)
	seen := make(map[string]bool)
	for _, r := range res.Records {
		if r.Type == anomaly.MissingEnd {
			res.MissingEnd++
		}
		if c.Truth.AnomalousEvents[r.EventID] {
			if !seen[r.EventID] {
				res.TruePositives++
			}
			seen[r.EventID] = true
		} else {
			res.FalsePositives++
		}
	}
	return res, nil
}
