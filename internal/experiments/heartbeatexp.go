package experiments

import (
	"fmt"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/datagen"
	"loglens/internal/logtypes"
	"loglens/internal/modelmgr"
	"loglens/internal/seqdetect"
)

// HeartbeatLatencyResult measures §V-B's "expedited anomaly detection":
// how quickly missing-end anomalies surface as a function of the heartbeat
// interval. Latency is log time from the moment an open state becomes
// expired (its end can no longer arrive) to the heartbeat that reports it;
// without heartbeats the anomaly is only found at end of stream, if ever.
type HeartbeatLatencyResult struct {
	// Interval is the heartbeat cadence (log time).
	Interval time.Duration
	// Detected is the total anomaly count (must stay at ground truth —
	// in-stream heartbeats must not double-report).
	Detected int
	// MissingEnd is how many missing-end anomalies were found.
	MissingEnd int
	// MaxLatency and AvgLatency bound the report delay of the
	// missing-end anomalies.
	MaxLatency, AvgLatency time.Duration
}

// RunHeartbeatLatency replays the corpus with periodic in-stream
// heartbeats at each interval and measures missing-end report latency.
func RunHeartbeatLatency(c datagen.Corpus, intervals []time.Duration, cfg seqdetect.Config) ([]HeartbeatLatencyResult, error) {
	if c.Truth == nil {
		return nil, fmt.Errorf("experiments: corpus %s has no ground truth", c.Name)
	}
	builder := modelmgr.NewBuilder(modelmgr.BuilderConfig{})
	model, _, err := builder.Build(c.Name, ToLogs(c.Name, c.Train))
	if err != nil {
		return nil, err
	}

	// Pre-parse the test stream once.
	p := model.NewParser(nil)
	parsed := make([]*logtypes.ParsedLog, 0, len(c.Test))
	for i, line := range c.Test {
		pl, err := p.Parse(logtypes.Log{Source: c.Name, Seq: uint64(i + 1), Raw: line})
		if err != nil {
			continue
		}
		parsed = append(parsed, pl)
	}

	// The expiry window per automaton: age at which an open state is
	// reportable. Used to compute the "ideal" report time per event.
	expiryWindow := func(autoID int) time.Duration {
		a, ok := model.Sequence.Get(autoID)
		if !ok {
			return 0
		}
		factor := cfg.ExpiryFactor
		if factor == 0 {
			factor = 2.0
		}
		w := time.Duration(float64(a.MaxDuration) * factor)
		if w < time.Second {
			w = time.Second
		}
		return w
	}

	var results []HeartbeatLatencyResult
	for _, interval := range intervals {
		det := seqdetect.New(model.Sequence.Clone(), cfg)
		// Track each event's begin time so report latency can be
		// computed at expiry.
		begins := map[string]time.Time{}
		var recs []anomaly.Record
		var latencies []time.Duration

		record := func(rs []anomaly.Record, now time.Time) {
			for _, r := range rs {
				recs = append(recs, r)
				if r.Type != anomaly.MissingEnd {
					continue
				}
				ideal := begins[r.EventID].Add(expiryWindow(r.AutomatonID))
				if lat := now.Sub(ideal); lat > 0 {
					latencies = append(latencies, lat)
				} else {
					latencies = append(latencies, 0)
				}
			}
		}

		var nextHB time.Time
		for _, pl := range parsed {
			t := pl.EventTime()
			if nextHB.IsZero() {
				nextHB = t.Add(interval)
			}
			for !nextHB.After(t) {
				record(det.HeartbeatFor(c.Name, nextHB), nextHB)
				nextHB = nextHB.Add(interval)
			}
			if id, ok := model.Sequence.EventID(pl); ok {
				if _, seen := begins[id]; !seen {
					begins[id] = t
				}
			}
			record(det.Process(pl), t)
		}
		// Trailing heartbeats cover states opened near stream end:
		// keep ticking until every open state has expired.
		horizon := c.Truth.LastLogTime.Add(time.Hour)
		for hb := nextHB; det.OpenStates() > 0 && hb.Before(horizon); hb = hb.Add(interval) {
			record(det.HeartbeatFor(c.Name, hb), hb)
		}

		res := HeartbeatLatencyResult{Interval: interval, Detected: len(recs)}
		var sum time.Duration
		for _, l := range latencies {
			res.MissingEnd++
			sum += l
			if l > res.MaxLatency {
				res.MaxLatency = l
			}
		}
		if res.MissingEnd > 0 {
			res.AvgLatency = sum / time.Duration(res.MissingEnd)
		}
		results = append(results, res)
	}
	return results, nil
}

// FormatHeartbeatLatency renders the sweep.
func FormatHeartbeatLatency(truth int, rows []HeartbeatLatencyResult) string {
	out := fmt.Sprintf("%-12s %-10s %-12s %-14s %-14s\n", "HB interval", "detected", "missing-end", "avg latency", "max latency")
	for _, r := range rows {
		out += fmt.Sprintf("%-12v %-10d %-12d %-14v %-14v\n",
			r.Interval, r.Detected, r.MissingEnd, r.AvgLatency.Round(time.Millisecond), r.MaxLatency.Round(time.Millisecond))
	}
	out += fmt.Sprintf("(ground truth %d; detection latency scales with the heartbeat interval — §V-B)\n", truth)
	return out
}
