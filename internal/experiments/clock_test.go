package experiments

import (
	"testing"

	"loglens/internal/clock"
	"loglens/internal/datagen"
)

// TestSetClockMakesTimingDeterministic: with a fake clock injected, no
// experiment phase reads the wall clock, so the timing fields come out
// exactly zero — the proof that no raw time.Now() is left in the
// measurement paths.
func TestSetClockMakesTimingDeterministic(t *testing.T) {
	fc := clock.NewFake()
	SetClock(fc)
	defer SetClock(clock.New())

	c := datagen.D1(11)
	res, err := RunSequence(c, SeqOptions{WithHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainTime != 0 || res.DetectTime != 0 {
		t.Errorf("fake-clock timings = train %v, detect %v, want 0 (raw wall-clock read in the path)",
			res.TrainTime, res.DetectTime)
	}

	ca, err := RunCaseA(datagen.CustomApp(800, 9))
	if err != nil {
		t.Fatal(err)
	}
	if ca.Elapsed != 0 {
		t.Errorf("fake-clock case-A elapsed = %v, want 0", ca.Elapsed)
	}
}
