package experiments

import (
	"fmt"
	"time"

	"loglens/internal/datagen"
	"loglens/internal/modelmgr"
)

// CaseAResult is the §VII-A case study: unsupervised pattern discovery on
// the custom application's SQL logs (the paper: 367 patterns in 50
// seconds vs one week of manual pattern writing — a 12096x reduction).
type CaseAResult struct {
	// Logs is the corpus size.
	Logs int
	// Patterns is the discovered pattern count (expected 367).
	Patterns int
	// Expected is the published pattern count.
	Expected int
	// Elapsed is the discovery wall-clock time.
	Elapsed time.Duration
	// ManualEquivalent is the paper's manual effort baseline (1 week).
	ManualEquivalent time.Duration
	// Reduction is ManualEquivalent / Elapsed.
	Reduction float64
}

// RunCaseA runs pattern discovery over the custom-application corpus.
func RunCaseA(c datagen.Corpus) (*CaseAResult, error) {
	builder := modelmgr.NewBuilder(modelmgr.BuilderConfig{SkipSequence: true})
	start := expClock.Now()
	_, report, err := builder.Build(c.Name, ToLogs(c.Name, c.Train))
	if err != nil {
		return nil, err
	}
	elapsed := expClock.Since(start)
	const week = 7 * 24 * time.Hour
	res := &CaseAResult{
		Logs:             len(c.Train),
		Patterns:         report.Patterns,
		Expected:         c.ExpectedPatterns,
		Elapsed:          elapsed,
		ManualEquivalent: week,
	}
	if elapsed > 0 {
		res.Reduction = float64(week) / float64(elapsed)
	}
	return res, nil
}

// Format renders the result for the console.
func (r *CaseAResult) Format() string {
	return fmt.Sprintf(
		"case study A: custom application SQL logs\n"+
			"  corpus              : %d logs\n"+
			"  patterns discovered : %d (expected %d)\n"+
			"  discovery time      : %v (paper: 50s)\n"+
			"  manual equivalent   : %v (one expert-week, as reported)\n"+
			"  effort reduction    : %.0fx (paper: 12096x)\n",
		r.Logs, r.Patterns, r.Expected, r.Elapsed.Round(time.Millisecond),
		r.ManualEquivalent, r.Reduction)
}
