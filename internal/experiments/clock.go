package experiments

import "loglens/internal/clock"

// expClock times the experiment phases (TrainTime, DetectTime, the Table
// IV budget). The wall clock by default; SetClock injects a fake so the
// timing fields are deterministic in tests.
var expClock clock.Clock = clock.New()

// SetClock injects the experiments' time source. Pass clock.New() to
// restore the wall clock.
func SetClock(clk clock.Clock) { expClock = clk }
