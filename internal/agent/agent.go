// Package agent implements the log collection agent of §II: a daemon that
// collects logs from a source and ships them to the log manager over the
// bus. It also provides the replay agent used throughout the evaluation
// ("for replaying log data, we have developed an agent, which emulates the
// log streaming behavior", §VI).
package agent

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"time"

	"loglens/internal/bus"
	"loglens/internal/clock"
	"loglens/internal/metrics"
	"loglens/internal/preprocess"
)

// LogsTopic is the bus topic agents publish raw logs to.
const LogsTopic = "logs"

// HeaderSource and HeaderSeq are the message headers agents attach.
// HeaderHeartbeat tags heartbeat messages, which travel on the same data
// channel as logs ("this external message is sent to the same data channel
// (where logs arrive) with a specific tag", §V-B); its value is the
// synthesized log time in RFC3339Nano.
const (
	HeaderSource    = "source"
	HeaderSeq       = "seq"
	HeaderHeartbeat = "heartbeat"
)

// Config tunes an Agent.
type Config struct {
	// Source identifies the log origin; the log manager routes and
	// stores by it.
	Source string

	// RatePerSec throttles emission (0 = unthrottled). The replay
	// agent uses this to emulate a live stream's arrival rate.
	RatePerSec int

	// TopicPartitions is the partition count used when declaring the
	// logs topic (default 4).
	TopicPartitions int

	// Clock paces rate limiting and timestamp-paced replay (default the
	// wall clock). A fake clock replays hours of log time in
	// milliseconds, deterministically.
	Clock clock.Clock

	// Tracer, when set, stamps StageAgent for every shipped line — the
	// first stop of a traced line's journey.
	Tracer metrics.Tracer
}

// Agent ships logs from a reader (file, pipe, generator) to the bus.
type Agent struct {
	cfg  Config
	bus  bus.Broker
	seq  uint64
	sent uint64
}

// New constructs an Agent and declares the logs topic.
func New(b bus.Broker, cfg Config) (*Agent, error) {
	if cfg.Source == "" {
		return nil, fmt.Errorf("agent: source must be set")
	}
	parts := cfg.TopicPartitions
	if parts <= 0 {
		parts = 4
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	if err := b.CreateTopic(LogsTopic, parts); err != nil {
		return nil, err
	}
	return &Agent{cfg: cfg, bus: b}, nil
}

// Sent returns the number of log lines shipped.
func (a *Agent) Sent() uint64 { return a.sent }

// Send ships one raw log line.
func (a *Agent) Send(line string) error {
	a.seq++
	pi, _, err := a.bus.Publish(LogsTopic, a.cfg.Source, []byte(line), map[string]string{
		HeaderSource: a.cfg.Source,
		HeaderSeq:    strconv.FormatUint(a.seq, 10),
	})
	if err != nil {
		return err
	}
	a.sent++
	if a.cfg.Tracer != nil {
		a.cfg.Tracer.Stamp(a.cfg.Source, a.seq, metrics.StageAgent,
			"topic="+LogsTopic+" p="+strconv.Itoa(pi))
	}
	return nil
}

// Run streams every line of r to the bus, honouring the configured rate,
// until EOF or context cancellation. It returns the number of lines
// shipped.
func (a *Agent) Run(ctx context.Context, r io.Reader) (uint64, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var limiter clock.Ticker
	if a.cfg.RatePerSec > 0 {
		limiter = a.cfg.Clock.NewTicker(time.Second / time.Duration(a.cfg.RatePerSec))
		defer limiter.Stop()
	}

	var n uint64
	for scanner.Scan() {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		if limiter != nil {
			select {
			case <-limiter.C():
			case <-ctx.Done():
				return n, ctx.Err()
			}
		}
		line := scanner.Text()
		if line == "" {
			continue
		}
		if err := a.Send(line); err != nil {
			return n, err
		}
		n++
	}
	if err := scanner.Err(); err != nil {
		return n, fmt.Errorf("agent: scan: %w", err)
	}
	return n, nil
}

// ReplayTimed ships lines pacing them by their embedded timestamps scaled
// by speedup (2.0 = twice real time; the paper's replay agent "emulates
// the log streaming behavior", §VI, including the log-time rate the
// heartbeat controller estimates). Lines without a recognizable timestamp
// ship immediately after their predecessor. It returns the number of
// lines shipped.
func (a *Agent) ReplayTimed(ctx context.Context, lines []string, speedup float64, pp *preprocess.Preprocessor) (uint64, error) {
	if speedup <= 0 {
		speedup = 1
	}
	if pp == nil {
		pp = preprocess.New(nil, nil)
	}
	var n uint64
	var lastLog time.Time
	for _, line := range lines {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		if line == "" {
			continue
		}
		if r := pp.Process(line); r.HasTime {
			if !lastLog.IsZero() && r.Time.After(lastLog) {
				delay := time.Duration(float64(r.Time.Sub(lastLog)) / speedup)
				select {
				case <-a.cfg.Clock.After(delay):
				case <-ctx.Done():
					return n, ctx.Err()
				}
			}
			if r.Time.After(lastLog) {
				lastLog = r.Time
			}
		}
		if err := a.Send(line); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Replay ships a pre-materialized line slice (the dataset replay used in
// the evaluation harness).
func (a *Agent) Replay(ctx context.Context, lines []string) (uint64, error) {
	var limiter clock.Ticker
	if a.cfg.RatePerSec > 0 {
		limiter = a.cfg.Clock.NewTicker(time.Second / time.Duration(a.cfg.RatePerSec))
		defer limiter.Stop()
	}
	var n uint64
	for _, line := range lines {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		if limiter != nil {
			select {
			case <-limiter.C():
			case <-ctx.Done():
				return n, ctx.Err()
			}
		}
		if line == "" {
			continue
		}
		if err := a.Send(line); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
