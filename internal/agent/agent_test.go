package agent

import (
	"context"
	"strings"
	"testing"
	"time"

	"loglens/internal/bus"
)

func TestSend(t *testing.T) {
	b := bus.New()
	a, err := New(b, Config{Source: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("hello world"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("second line"); err != nil {
		t.Fatal(err)
	}
	c, _ := b.NewConsumer("g", LogsTopic)
	msgs := c.TryPoll(0)
	if len(msgs) != 2 {
		t.Fatalf("messages = %d", len(msgs))
	}
	m := msgs[0]
	if m.Headers[HeaderSource] != "s1" {
		t.Errorf("source header = %q", m.Headers[HeaderSource])
	}
	if m.Headers[HeaderSeq] != "1" || msgs[1].Headers[HeaderSeq] != "2" {
		t.Errorf("seq headers = %q %q", m.Headers[HeaderSeq], msgs[1].Headers[HeaderSeq])
	}
	if m.Key != "s1" {
		t.Errorf("key = %q (source keys keep per-source ordering)", m.Key)
	}
	if string(m.Value) != "hello world" {
		t.Errorf("value = %q", m.Value)
	}
	if a.Sent() != 2 {
		t.Errorf("Sent = %d", a.Sent())
	}
}

func TestRunFromReader(t *testing.T) {
	b := bus.New()
	a, err := New(b, Config{Source: "file"})
	if err != nil {
		t.Fatal(err)
	}
	input := "line one\n\nline two\nline three"
	n, err := a.Run(context.Background(), strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("lines = %d, want 3 (empty line skipped)", n)
	}
	c, _ := b.NewConsumer("g", LogsTopic)
	if got := len(c.TryPoll(0)); got != 3 {
		t.Errorf("published = %d", got)
	}
}

func TestReplayRateLimited(t *testing.T) {
	b := bus.New()
	a, err := New(b, Config{Source: "r", RatePerSec: 100})
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 10)
	for i := range lines {
		lines[i] = "x"
	}
	start := time.Now()
	n, err := a.Replay(context.Background(), lines)
	if err != nil || n != 10 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// 10 lines at 100/sec needs >= ~90ms.
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("rate limit ignored: %v", elapsed)
	}
}

func TestReplayCancel(t *testing.T) {
	b := bus.New()
	a, _ := New(b, Config{Source: "r", RatePerSec: 10})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	lines := make([]string, 100)
	for i := range lines {
		lines[i] = "x"
	}
	n, err := a.Replay(ctx, lines)
	if err == nil {
		t.Error("cancelled replay must fail")
	}
	if n >= 100 {
		t.Errorf("replayed %d lines despite cancel", n)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(bus.New(), Config{}); err == nil {
		t.Error("empty source must fail")
	}
}

func TestMultipleAgentsShareTopic(t *testing.T) {
	b := bus.New()
	a1, err := New(b, Config{Source: "a"})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := New(b, Config{Source: "b"})
	if err != nil {
		t.Fatalf("second agent must reuse the topic: %v", err)
	}
	a1.Send("from a")
	a2.Send("from b")
	c, _ := b.NewConsumer("g", LogsTopic)
	sources := map[string]bool{}
	for _, m := range c.TryPoll(0) {
		sources[m.Headers[HeaderSource]] = true
	}
	if !sources["a"] || !sources["b"] {
		t.Errorf("sources = %v", sources)
	}
}

func TestReplayTimed(t *testing.T) {
	b := bus.New()
	a, err := New(b, Config{Source: "r"})
	if err != nil {
		t.Fatal(err)
	}
	// Three logs spanning 2 log-seconds, replayed at 20x: ~100ms wall.
	lines := []string{
		"2016/02/23 09:00:00.000 step one",
		"2016/02/23 09:00:01.000 step two",
		"2016/02/23 09:00:02.000 step three",
		"no timestamp here",
	}
	start := time.Now()
	n, err := a.ReplayTimed(context.Background(), lines, 20, nil)
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Errorf("timed replay too fast: %v (pacing ignored)", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("timed replay too slow: %v", elapsed)
	}
}

func TestReplayTimedCancel(t *testing.T) {
	b := bus.New()
	a, _ := New(b, Config{Source: "r"})
	lines := []string{
		"2016/02/23 09:00:00.000 a",
		"2016/02/23 10:00:00.000 b", // an hour later: would block
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.ReplayTimed(ctx, lines, 1, nil); err == nil {
		t.Error("cancelled timed replay must fail")
	}
}
