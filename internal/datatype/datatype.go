// Package datatype implements the LogLens datatype lattice used to classify
// log tokens (Table I of the paper): WORD, NUMBER, IP, NOTSPACE, DATETIME
// and the ANYDATA wildcard. Datatypes underpin both log-signatures and
// pattern-signatures, and the isCovered generality relation drives the
// dynamic-programming signature matcher.
package datatype

import (
	"fmt"
	"strings"
)

// Type is a LogLens datatype.
type Type uint8

// The datatype universe. Order matters only for readability; generality is
// defined by Covers, not by ordinal value.
const (
	// Unknown is the zero value and never appears in a well-formed
	// signature.
	Unknown Type = iota
	// Word matches [a-zA-Z]+.
	Word
	// Number matches an optionally signed decimal with optional
	// fractional part.
	Number
	// IP matches a dotted-quad IPv4 address.
	IP
	// DateTime matches the unified timestamp format
	// yyyy/MM/dd HH:mm:ss.SSS.
	DateTime
	// NotSpace matches any run of non-whitespace characters. It covers
	// Word, Number, IP and DateTime.
	NotSpace
	// AnyData is the wildcard datatype: it matches any number of tokens
	// (including zero) and is introduced only through user edits.
	AnyData
)

var names = map[Type]string{
	Word:     "WORD",
	Number:   "NUMBER",
	IP:       "IP",
	DateTime: "DATETIME",
	NotSpace: "NOTSPACE",
	AnyData:  "ANYDATA",
}

var byName = map[string]Type{
	"WORD":     Word,
	"NUMBER":   Number,
	"IP":       IP,
	"DATETIME": DateTime,
	"NOTSPACE": NotSpace,
	"ANYDATA":  AnyData,
}

// String returns the canonical upper-case name used in GROK expressions
// and signatures.
func (t Type) String() string {
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("UNKNOWN(%d)", uint8(t))
}

// Parse maps a canonical name ("WORD", "IP", ...) back to its Type.
func Parse(s string) (Type, error) {
	if t, ok := byName[strings.ToUpper(s)]; ok {
		return t, nil
	}
	return Unknown, fmt.Errorf("datatype: unknown type %q", s)
}

// Known reports whether s names a built-in datatype.
func Known(s string) bool {
	_, ok := byName[strings.ToUpper(s)]
	return ok
}

// Detect returns the most specific datatype matching the token. A token
// that matches none of the specific rules is NOTSPACE (tokens are produced
// by whitespace splitting, so they contain no spaces by construction).
// DATETIME is detected against the unified format only; raw heterogeneous
// timestamp formats are recognized earlier by the timestamp identifier.
func Detect(token string) Type {
	switch {
	case token == "":
		return NotSpace
	case isDateTime(token):
		return DateTime
	case isIP(token):
		return IP
	case isNumber(token):
		return Number
	case isWord(token):
		return Word
	default:
		return NotSpace
	}
}

// Matches reports whether the token conforms to datatype t. AnyData
// matches everything, including the empty string.
func Matches(t Type, token string) bool {
	switch t {
	case Word:
		return isWord(token)
	case Number:
		return isNumber(token)
	case IP:
		return isIP(token)
	case DateTime:
		return isDateTime(token)
	case NotSpace:
		return token != "" && !strings.ContainsAny(token, " \t")
	case AnyData:
		return true
	default:
		return false
	}
}

// Covers reports whether the RegEx language of datatype outer is a
// superset of datatype inner: isCovered(inner, outer) in the paper's
// notation. Every type covers itself. NOTSPACE covers all single-token
// types; ANYDATA covers everything.
func Covers(outer, inner Type) bool {
	if outer == inner {
		return true
	}
	switch outer {
	case AnyData:
		return true
	case NotSpace:
		return inner == Word || inner == Number || inner == IP || inner == DateTime
	default:
		return false
	}
}

// Generality returns a rank used to order candidate patterns from most
// specific to most general (candidate-pattern-groups are scanned in
// ascending generality so the most specific pattern wins).
func (t Type) Generality() int {
	switch t {
	case Word, Number, IP, DateTime:
		return 1
	case NotSpace:
		return 2
	case AnyData:
		return 3
	default:
		return 0
	}
}

// Regexp returns the defining regular expression of the datatype using
// Go's regexp syntax, as listed in Table I of the paper.
func (t Type) Regexp() string {
	switch t {
	case Word:
		return `[a-zA-Z]+`
	case Number:
		return `-?[0-9]+(\.[0-9]+)?`
	case IP:
		return `[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}`
	case DateTime:
		return `[0-9]{4}/[0-9]{2}/[0-9]{2} [0-9]{2}:[0-9]{2}:[0-9]{2}\.[0-9]{3}`
	case NotSpace:
		return `\S+`
	case AnyData:
		return `.*`
	default:
		return ``
	}
}

// Join returns the most specific datatype covering both a and b. It is
// used when merging cluster members into one pattern: two aligned tokens
// of different datatypes generalize to their least upper bound.
func Join(a, b Type) Type {
	if a == b {
		return a
	}
	if a == Unknown {
		return b
	}
	if b == Unknown {
		return a
	}
	if a == AnyData || b == AnyData {
		return AnyData
	}
	// All distinct single-token types join at NOTSPACE.
	return NotSpace
}

func isWord(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < 'A' || c > 'Z') {
			return false
		}
	}
	return true
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '-' {
		i = 1
		if len(s) == 1 {
			return false
		}
	}
	digits := 0
	for ; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			digits++
			continue
		}
		if c == '.' {
			// Fractional part: all remaining must be digits, at
			// least one.
			frac := s[i+1:]
			if frac == "" {
				return false
			}
			for j := 0; j < len(frac); j++ {
				if frac[j] < '0' || frac[j] > '9' {
					return false
				}
			}
			return digits > 0
		}
		return false
	}
	return digits > 0
}

func isIP(s string) bool {
	part := 0
	digits := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
			if digits > 3 {
				return false
			}
		case c == '.':
			if digits == 0 {
				return false
			}
			part++
			if part > 3 {
				return false
			}
			digits = 0
		default:
			return false
		}
	}
	return part == 3 && digits >= 1
}

// isDateTime checks the unified format yyyy/MM/dd HH:mm:ss.SSS. The token
// contains a space because the timestamp identifier merges the date and
// time tokens into a single unified token.
func isDateTime(s string) bool {
	const layout = "dddd/dd/dd dd:dd:dd.ddd"
	if len(s) != len(layout) {
		return false
	}
	for i := 0; i < len(layout); i++ {
		switch layout[i] {
		case 'd':
			if s[i] < '0' || s[i] > '9' {
				return false
			}
		default:
			if s[i] != layout[i] {
				return false
			}
		}
	}
	return true
}
