package datatype

import (
	"regexp"
	"testing"
	"testing/quick"
)

func TestDetect(t *testing.T) {
	tests := []struct {
		token string
		want  Type
	}{
		{"login", Word},
		{"LOGIN", Word},
		{"MixedCase", Word},
		{"123", Number},
		{"-42", Number},
		{"3.14", Number},
		{"-0.5", Number},
		{"127.0.0.1", IP},
		{"10.0.255.254", IP},
		{"2016/02/23 09:00:31.000", DateTime},
		{"user1", NotSpace},
		{"abc-def", NotSpace},
		{"1.2.3", NotSpace},     // three parts, not an IP
		{"1.2.3.4.5", NotSpace}, // five parts
		{"", NotSpace},
		{"-", NotSpace},
		{"3.", NotSpace},
		{".5", NotSpace},
		{"1234.5.6.7", NotSpace}, // octet too long
		{"--3", NotSpace},
	}
	for _, tt := range tests {
		if got := Detect(tt.token); got != tt.want {
			t.Errorf("Detect(%q) = %v, want %v", tt.token, got, tt.want)
		}
	}
}

func TestCovers(t *testing.T) {
	tests := []struct {
		outer, inner Type
		want         bool
	}{
		{NotSpace, Word, true},
		{NotSpace, Number, true},
		{NotSpace, IP, true},
		{NotSpace, DateTime, true},
		{NotSpace, NotSpace, true},
		{Word, NotSpace, false},
		{Word, Word, true},
		{AnyData, Word, true},
		{AnyData, NotSpace, true},
		{AnyData, AnyData, true},
		{Number, Word, false},
		{IP, Number, false},
		{NotSpace, AnyData, false},
	}
	for _, tt := range tests {
		if got := Covers(tt.outer, tt.inner); got != tt.want {
			t.Errorf("Covers(%v, %v) = %v, want %v", tt.outer, tt.inner, got, tt.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, typ := range []Type{Word, Number, IP, DateTime, NotSpace, AnyData} {
		got, err := Parse(typ.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", typ.String(), err)
		}
		if got != typ {
			t.Errorf("Parse(%q) = %v, want %v", typ.String(), got, typ)
		}
	}
	if _, err := Parse("BOGUS"); err == nil {
		t.Error("Parse(BOGUS) should fail")
	}
	if Known("BOGUS") {
		t.Error("Known(BOGUS) should be false")
	}
	if !Known("word") {
		t.Error("Known should be case-insensitive")
	}
}

func TestJoin(t *testing.T) {
	tests := []struct {
		a, b, want Type
	}{
		{Word, Word, Word},
		{Word, Number, NotSpace},
		{IP, Number, NotSpace},
		{Word, AnyData, AnyData},
		{Unknown, IP, IP},
		{Number, Unknown, Number},
		{NotSpace, Word, NotSpace},
	}
	for _, tt := range tests {
		if got := Join(tt.a, tt.b); got != tt.want {
			t.Errorf("Join(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// TestDetectMatchesItself checks the property that every token matches the
// datatype detected for it.
func TestDetectMatchesItself(t *testing.T) {
	f := func(s string) bool {
		// Tokens never contain whitespace; simulate tokenizer output.
		tok := ""
		for _, r := range s {
			if r != ' ' && r != '\t' && r != '\n' {
				tok += string(r)
			}
		}
		if tok == "" {
			return true
		}
		return Matches(Detect(tok), tok)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDetectAgainstRegexp cross-validates the hand-rolled matchers against
// the defining regular expressions from Table I.
func TestDetectAgainstRegexp(t *testing.T) {
	res := map[Type]*regexp.Regexp{}
	for _, typ := range []Type{Word, Number, IP, DateTime} {
		res[typ] = regexp.MustCompile("^(?:" + typ.Regexp() + ")$")
	}
	tokens := []string{
		"login", "123", "-42", "3.14", "127.0.0.1", "1.2.3", "a1",
		"2016/02/23 09:00:31.000", "abc", "-", "", "999.999.999.999",
		"0.0.0.0", "00", "-1.5", "1..2", "word", "WORDword",
	}
	for _, tok := range tokens {
		for typ, re := range res {
			if got, want := Matches(typ, tok), re.MatchString(tok); got != want {
				t.Errorf("Matches(%v, %q) = %v, regexp says %v", typ, tok, got, want)
			}
		}
	}
}

func TestGenerality(t *testing.T) {
	if !(Word.Generality() < NotSpace.Generality() && NotSpace.Generality() < AnyData.Generality()) {
		t.Error("generality order must be specific < NOTSPACE < ANYDATA")
	}
}

func TestCoversImpliesLanguageSubset(t *testing.T) {
	// If Covers(outer, inner), every token matching inner must match
	// outer.
	tokens := []string{"login", "123", "-4.5", "127.0.0.1", "2016/02/23 09:00:31.000", "x_y", "a-b"}
	types := []Type{Word, Number, IP, DateTime, NotSpace, AnyData}
	for _, outer := range types {
		for _, inner := range types {
			if !Covers(outer, inner) {
				continue
			}
			for _, tok := range tokens {
				if Matches(inner, tok) && !Matches(outer, tok) {
					// DateTime tokens contain a space and do
					// not match NOTSPACE literally; the
					// identifier merges them into a single
					// logical token, so NOTSPACE coverage of
					// DATETIME is structural, not lexical.
					if inner == DateTime && outer == NotSpace {
						continue
					}
					t.Errorf("Covers(%v,%v) but %q matches inner and not outer", outer, inner, tok)
				}
			}
		}
	}
}
