package seqdetect

import (
	"strings"
	"testing"

	"loglens/internal/logtypes"
	"loglens/internal/metrics"
)

// TestInstrumentMirrorsStats: the registry counters track the detector's
// internal stats, the open-states gauge follows event lifecycle by delta,
// and skipped logs (no automaton for the pattern) are counted.
func TestInstrumentMirrorsStats(t *testing.T) {
	reg := metrics.NewRegistry()
	d := New(learnedModel(), Config{})
	d.Instrument(reg)
	if d.Model() == nil {
		t.Fatal("Model() returned nil")
	}

	// One clean trace: 1 -> 2 -> 3 closes the event.
	if recs := feed(d, trace("e1", 0, 1, 2, 3)); len(recs) != 0 {
		t.Fatalf("normal trace flagged: %+v", recs)
	}
	// One anomalous trace: begin missing.
	if recs := feed(d, trace("e2", 10, 3)); len(recs) == 0 {
		t.Fatal("missing-begin not flagged")
	}
	// A pattern no automaton knows: skipped.
	d.Process(&logtypes.ParsedLog{
		Log:       logtypes.Log{Source: "s", Seq: 999, Raw: "raw"},
		PatternID: 42,
		Fields:    []logtypes.Field{{Name: "id", Value: "e3"}},
	})

	snap := reg.Snapshot()
	s := d.Stats()
	if got := snap.Counter("seqdetect_transitions_total"); got != s.LogsProcessed {
		t.Errorf("transitions = %d, stats say %d", got, s.LogsProcessed)
	}
	if got := snap.Counter("seqdetect_skipped_total"); got != s.LogsSkipped {
		t.Errorf("skipped = %d, stats say %d", got, s.LogsSkipped)
	}
	if got := snap.Counter("seqdetect_events_closed_total"); got != s.EventsClosed {
		t.Errorf("closed = %d, stats say %d", got, s.EventsClosed)
	}
	if got := snap.Counter("seqdetect_anomalies_total"); got != s.Anomalies {
		t.Errorf("anomalies = %d, stats say %d", got, s.Anomalies)
	}
	if got := snap.Counter("seqdetect_skipped_total"); got == 0 {
		t.Error("skipped = 0, want > 0")
	}
	if got := snap.Gauge("seqdetect_open_states"); got != int64(d.OpenStates()) {
		t.Errorf("open gauge = %d, detector says %d", got, d.OpenStates())
	}
}

// TestTracerStamps: a tracer installed on the detector stamps every
// processed log's verdict (open or close) and the skip reasons.
func TestTracerStamps(t *testing.T) {
	tr := metrics.NewRecordingTracer(nil)
	d := New(learnedModel(), Config{})
	d.SetTracer(tr)
	feed(d, trace("e1", 0, 1, 2, 3))

	lines := tr.Lines()
	if len(lines) != 3 {
		t.Fatalf("stamps = %v, want 3", lines)
	}
	for _, l := range lines[:2] {
		if !strings.Contains(l, "seqdetect event=e1 open") {
			t.Errorf("stamp %q, want open verdict", l)
		}
	}
	if !strings.Contains(lines[2], "event=e1 close anomalies=0") {
		t.Errorf("final stamp %q, want clean close", lines[2])
	}
}
