package seqdetect

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"loglens/internal/automata"
	"loglens/internal/idfield"
	"loglens/internal/logtypes"
)

// genTrace renders an event trace from the learned workflow shape:
// begin, 1..maxRepeats intermediates, end, with gaps in [minGap, maxGap].
func genTrace(rng *rand.Rand, eventID string, start time.Time, repeats, minGap, maxGap int) []*logtypes.ParsedLog {
	var patterns []int
	patterns = append(patterns, 1)
	for r := 0; r < repeats; r++ {
		patterns = append(patterns, 2)
	}
	patterns = append(patterns, 3)
	out := make([]*logtypes.ParsedLog, len(patterns))
	t := start
	for i, pid := range patterns {
		if i > 0 {
			t = t.Add(time.Duration(minGap+rng.Intn(maxGap-minGap+1)) * time.Second)
		}
		out[i] = &logtypes.ParsedLog{
			Log:          logtypes.Log{Source: "s", Seq: uint64(i)},
			PatternID:    pid,
			Fields:       []logtypes.Field{{Name: "id", Value: eventID}},
			Timestamp:    t,
			HasTimestamp: true,
		}
	}
	return out
}

// TestNormalTracesNeverFlagged: any trace drawn from the training
// distribution is clean — no false positives, across thousands of random
// interleavings.
func TestNormalTracesNeverFlagged(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)

	// Train over the full parameter envelope so learned bounds cover
	// every generatable trace.
	var train []*logtypes.ParsedLog
	for i := 0; i < 100; i++ {
		repeats := 1 + i%2
		train = append(train, genTrace(rng, fmt.Sprintf("t-%d", i), base.Add(time.Duration(i*60)*time.Second), repeats, 1, 3)...)
	}
	// Boundary traces pin min/max deterministically.
	train = append(train, genTrace(rng, "t-min", base.Add(time.Hour), 1, 1, 1)...)
	train = append(train, genTrace(rng, "t-max", base.Add(2*time.Hour), 2, 3, 3)...)

	disc := discFor("id", 1, 2, 3)
	model := automata.Learn(train, disc)
	det := New(model, Config{})

	// Thousands of random normal traces, interleaved.
	testBase := base.Add(24 * time.Hour)
	var logs []*logtypes.ParsedLog
	for i := 0; i < 2000; i++ {
		repeats := 1 + rng.Intn(2)
		start := testBase.Add(time.Duration(rng.Intn(100000)) * time.Second)
		logs = append(logs, genTrace(rng, fmt.Sprintf("e-%d", i), start, repeats, 1, 3)...)
	}
	// Global time order.
	sortByTime(logs)

	for _, l := range logs {
		if recs := det.Process(l); len(recs) != 0 {
			t.Fatalf("false positive: %+v", recs[0])
		}
	}
	if det.OpenStates() != 0 {
		t.Fatalf("open states = %d after all traces closed", det.OpenStates())
	}
	recs := det.Flush()
	if len(recs) != 0 {
		t.Fatalf("flush found %d leftovers", len(recs))
	}
}

// TestCorruptedTracesAlwaysFlagged: every corrupted trace produces exactly
// one anomaly.
func TestCorruptedTracesAlwaysFlagged(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	var train []*logtypes.ParsedLog
	for i := 0; i < 50; i++ {
		train = append(train, genTrace(rng, fmt.Sprintf("t-%d", i), base.Add(time.Duration(i*60)*time.Second), 1+i%2, 1, 3)...)
	}
	model := automata.Learn(train, discFor("id", 1, 2, 3))

	for trial := 0; trial < 500; trial++ {
		det := New(model, Config{})
		tr := genTrace(rng, fmt.Sprintf("bad-%d", trial), base.Add(48*time.Hour), 1, 2, 2)
		switch trial % 4 {
		case 0: // drop intermediate
			tr = append(tr[:1], tr[2:]...)
		case 1: // drop begin
			tr = tr[1:]
		case 2: // stretch duration far past the learned max
			for i := 1; i < len(tr); i++ {
				tr[i].Timestamp = tr[i-1].Timestamp.Add(time.Duration(10+rng.Intn(5)) * time.Second)
			}
		case 3: // repeat the intermediate far past the learned max
			mid := tr[1]
			for k := 0; k < 5; k++ {
				extra := *mid
				extra.Timestamp = mid.Timestamp.Add(time.Duration(k) * time.Millisecond)
				tr = append(tr[:2], append([]*logtypes.ParsedLog{&extra}, tr[2:]...)...)
			}
		}
		var got int
		for _, l := range tr {
			got += len(det.Process(l))
		}
		got += len(det.Flush())
		if got != 1 {
			t.Fatalf("trial %d (kind %d): %d anomalies, want exactly 1", trial, trial%4, got)
		}
	}
}

func discFor(field string, patterns ...int) idfield.Discovery {
	d := idfield.Discovery{FieldOf: map[int]string{}}
	for _, p := range patterns {
		d.FieldOf[p] = field
	}
	return d
}

func sortByTime(logs []*logtypes.ParsedLog) {
	sort.SliceStable(logs, func(i, j int) bool {
		return logs[i].Timestamp.Before(logs[j].Timestamp)
	})
}
