package seqdetect

import (
	"strings"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/obs"
)

// TestHeartbeatExpiryRecorded: an open event expired by a heartbeat
// leaves a flight-recorder event naming the source and the automaton.
func TestHeartbeatExpiryRecorded(t *testing.T) {
	d := New(learnedModel(), Config{})
	f := obs.NewFlightRecorder(clock.NewFake(), 8)
	d.SetRecorder(f)

	feed(d, trace("e1", 0, 1, 2)) // starts, never ends
	recs := d.Heartbeat(t0.Add(time.Hour))
	if len(recs) != 1 {
		t.Fatalf("expiry records = %+v", recs)
	}
	evs := f.Events(obs.EventQuery{Type: obs.EventHeartbeatExpiry})
	if len(evs) != 1 || evs[0].Source != "s" ||
		!strings.Contains(evs[0].Detail, "e1") {
		t.Fatalf("expiry events = %+v", evs)
	}
}
