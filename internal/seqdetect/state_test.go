package seqdetect

import (
	"encoding/json"
	"reflect"
	"testing"

	"loglens/internal/automata"
)

// TestSaveRestoreRoundTrip: a detector restored from a snapshot must
// produce exactly the anomalies the original would have — the
// checkpoint/restore equivalence the recovery subsystem depends on.
func TestSaveRestoreRoundTrip(t *testing.T) {
	model := learnedModel()
	d1 := New(model, Config{})
	// Open a state mid-workflow: begin seen, end pending.
	feed(d1, trace("open1", 0, 1, 2))
	feed(d1, trace("open2", 5, 1))

	saved := d1.SaveState()
	data, err := json.Marshal(saved)
	if err != nil {
		t.Fatal(err)
	}
	var loaded SavedState
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}

	d2 := New(model, Config{})
	d2.RestoreState(loaded)
	if d2.OpenStates() != d1.OpenStates() {
		t.Fatalf("open states = %d, want %d", d2.OpenStates(), d1.OpenStates())
	}
	if d2.Stats() != d1.Stats() {
		t.Fatalf("stats = %+v, want %+v", d2.Stats(), d1.Stats())
	}

	// Both detectors must now close open1 identically.
	r1 := feed(d1, trace("open1", 0, 3))
	r2 := feed(d2, trace("open1", 0, 3))
	if len(r1) != len(r2) {
		t.Fatalf("anomalies diverge: original %d, restored %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Type != r2[i].Type || r1[i].Reason != r2[i].Reason || r1[i].EventID != r2[i].EventID {
			t.Errorf("anomaly %d diverges:\n%+v\n%+v", i, r1[i], r2[i])
		}
	}

	// And heartbeat expiry of open2 must agree too.
	h1 := d1.HeartbeatFor("s", t0.Add(1000*1e9))
	h2 := d2.HeartbeatFor("s", t0.Add(1000*1e9))
	if len(h1) != len(h2) {
		t.Fatalf("expiry diverges: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i].Reason != h2[i].Reason {
			t.Errorf("expiry %d diverges:\n%q\n%q", i, h1[i].Reason, h2[i].Reason)
		}
	}
}

func TestSaveStateDeterministicOrder(t *testing.T) {
	d := New(learnedModel(), Config{})
	feed(d, trace("b", 0, 1))
	feed(d, trace("a", 2, 1, 2))
	s1 := d.SaveState()
	s2 := d.SaveState()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("consecutive snapshots differ")
	}
	for i := 1; i < len(s1.Events); i++ {
		prev, cur := s1.Events[i-1], s1.Events[i]
		if prev.AutoID > cur.AutoID || (prev.AutoID == cur.AutoID && prev.EventID >= cur.EventID) {
			t.Fatalf("events not sorted: %+v", s1.Events)
		}
	}
}

func TestRestoreDropsUnknownAutomata(t *testing.T) {
	d1 := New(learnedModel(), Config{})
	feed(d1, trace("e", 0, 1, 2))
	saved := d1.SaveState()
	if len(saved.Events) == 0 {
		t.Fatal("no open events to save")
	}

	// Restore against an empty model: every automaton is unknown.
	d2 := New(automata.Learn(nil, disc()), Config{})
	d2.RestoreState(saved)
	if d2.OpenStates() != 0 {
		t.Fatalf("open states = %d, want 0 (unknown automata dropped)", d2.OpenStates())
	}
}
