package seqdetect

import (
	"sort"
	"time"

	"loglens/internal/logtypes"
)

// Checkpoint serialization of the detector's open states (§V-B windows).
// A SavedState references automata by ID only; RestoreState re-resolves
// them against the live model, mirroring SetModel's swap semantics —
// states whose automaton no longer exists are dropped.

// SavedEvent is the serializable form of one open (automaton, event)
// state.
type SavedEvent struct {
	AutoID       int            `json:"auto_id"`
	EventID      string         `json:"event_id"`
	Source       string         `json:"source"`
	Begin        time.Time      `json:"begin"`
	Last         time.Time      `json:"last"`
	Counts       map[int]int    `json:"counts,omitempty"`
	Logs         []logtypes.Log `json:"logs,omitempty"`
	FirstPattern int            `json:"first_pattern"`
	MissingBegin bool           `json:"missing_begin,omitempty"`
}

// SavedState is the serializable form of a detector's mutable state.
type SavedState struct {
	Stats  Stats        `json:"stats"`
	Events []SavedEvent `json:"events,omitempty"`
}

// SaveState snapshots the open states and counters in a deterministic
// order (automaton ID, then event ID) — equal detector states serialize
// to equal bytes.
func (d *Detector) SaveState() SavedState {
	out := SavedState{Stats: d.stats}
	for key, st := range d.states {
		counts := make(map[int]int, len(st.counts))
		for k, v := range st.counts {
			counts[k] = v
		}
		out.Events = append(out.Events, SavedEvent{
			AutoID:       key.autoID,
			EventID:      key.eventID,
			Source:       st.source,
			Begin:        st.begin,
			Last:         st.last,
			Counts:       counts,
			Logs:         append([]logtypes.Log(nil), st.logs...),
			FirstPattern: st.firstPattern,
			MissingBegin: st.missingBegin,
		})
	}
	sort.Slice(out.Events, func(i, j int) bool {
		if out.Events[i].AutoID != out.Events[j].AutoID {
			return out.Events[i].AutoID < out.Events[j].AutoID
		}
		return out.Events[i].EventID < out.Events[j].EventID
	})
	return out
}

// RestoreState replaces the detector's mutable state with a saved
// snapshot, resolving automata by ID against the active model. Saved
// events whose automaton is gone (the model moved on since the
// checkpoint) are dropped, exactly as SetModel would have dropped them.
func (d *Detector) RestoreState(s SavedState) {
	if d.instr != nil {
		d.instr.open.Add(int64(-len(d.states)))
	}
	d.states = make(map[stateKey]*openEvent)
	d.byEvent = make(map[string]map[int]*openEvent)
	d.stats = s.Stats
	for _, ev := range s.Events {
		a, ok := d.model.Get(ev.AutoID)
		if !ok {
			continue
		}
		st := &openEvent{
			auto:         a,
			eventID:      ev.EventID,
			source:       ev.Source,
			begin:        ev.Begin,
			last:         ev.Last,
			counts:       make(map[int]int, len(ev.Counts)),
			logs:         append([]logtypes.Log(nil), ev.Logs...),
			firstPattern: ev.FirstPattern,
			missingBegin: ev.MissingBegin,
		}
		for k, v := range ev.Counts {
			st.counts[k] = v
		}
		key := stateKey{autoID: ev.AutoID, eventID: ev.EventID}
		d.states[key] = st
		m := d.byEvent[ev.EventID]
		if m == nil {
			m = make(map[int]*openEvent)
			d.byEvent[ev.EventID] = m
		}
		m[ev.AutoID] = st
	}
	if d.instr != nil {
		d.instr.open.Add(int64(len(d.states)))
	}
}
