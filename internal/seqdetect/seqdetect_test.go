package seqdetect

import (
	"testing"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/automata"
	"loglens/internal/idfield"
	"loglens/internal/logtypes"
)

var t0 = time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)

func trace(eventID string, offset int, patterns ...int) []*logtypes.ParsedLog {
	out := make([]*logtypes.ParsedLog, len(patterns))
	for i, pid := range patterns {
		out[i] = &logtypes.ParsedLog{
			Log:          logtypes.Log{Source: "s", Seq: uint64(offset*100 + i), Raw: "raw"},
			PatternID:    pid,
			Fields:       []logtypes.Field{{Name: "id", Value: eventID}},
			Timestamp:    t0.Add(time.Duration(offset+i) * time.Second),
			HasTimestamp: true,
		}
	}
	return out
}

func disc(patterns ...int) idfield.Discovery {
	d := idfield.Discovery{FieldOf: map[int]string{}}
	for _, p := range patterns {
		d.FieldOf[p] = "id"
	}
	return d
}

// learnedModel trains the 1->2->3 automaton with durations 2s..4s and
// state-2 occurrence bounds [1,2].
func learnedModel() *automata.Model {
	var logs []*logtypes.ParsedLog
	logs = append(logs, trace("t1", 0, 1, 2, 3)...)
	logs = append(logs, trace("t2", 10, 1, 2, 2, 3)...)
	logs = append(logs, trace("t3", 20, 1, 2, 2, 3)...)
	logs = append(logs, trace("t4", 30, 1, 2, 2, 2, 3)...)
	return automata.Learn(logs, disc(1, 2, 3))
}

func feed(d *Detector, logs []*logtypes.ParsedLog) []anomaly.Record {
	var out []anomaly.Record
	for _, l := range logs {
		out = append(out, d.Process(l)...)
	}
	return out
}

func TestNormalTraceNoAnomaly(t *testing.T) {
	d := New(learnedModel(), Config{})
	if recs := feed(d, trace("e1", 0, 1, 2, 3)); len(recs) != 0 {
		t.Fatalf("normal trace flagged: %+v", recs)
	}
	if d.OpenStates() != 0 {
		t.Errorf("open states = %d after clean close", d.OpenStates())
	}
	if s := d.Stats(); s.EventsClosed != 1 || s.Anomalies != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMissingIntermediate(t *testing.T) {
	d := New(learnedModel(), Config{})
	recs := feed(d, trace("e1", 0, 1, 3))
	if len(recs) != 1 {
		t.Fatalf("records = %+v, want 1", recs)
	}
	r := recs[0]
	if r.Type != anomaly.MissingIntermediate {
		t.Errorf("type = %v", r.Type)
	}
	if r.EventID != "e1" || r.AutomatonID == 0 || len(r.Logs) != 2 {
		t.Errorf("record = %+v", r)
	}
}

func TestOccurrenceViolation(t *testing.T) {
	d := New(learnedModel(), Config{})
	// State 2 occurs 5 times; learned max is 3 (from t4: 2,2,2).
	recs := feed(d, trace("e1", 0, 1, 2, 2, 2, 2, 2, 3))
	if len(recs) != 1 || recs[0].Type != anomaly.OccurrenceViolation {
		t.Fatalf("records = %+v", recs)
	}
}

func TestDurationViolation(t *testing.T) {
	d := New(learnedModel(), Config{})
	// Event spans 60s, far above the 4s learned max (10% slack).
	logs := trace("e1", 0, 1, 2)
	end := trace("e1", 60, 3)
	recs := feed(d, append(logs, end...))
	if len(recs) != 1 || recs[0].Type != anomaly.DurationViolation {
		t.Fatalf("records = %+v", recs)
	}
}

func TestDurationSlackAbsorbsNoise(t *testing.T) {
	d := New(learnedModel(), Config{DurationSlack: 0.5})
	// 5s duration with max 4s: within 50% slack.
	logs := []*logtypes.ParsedLog{
		trace("e1", 0, 1)[0],
		trace("e1", 2, 2)[0],
		trace("e1", 5, 3)[0],
	}
	if recs := feed(d, logs); len(recs) != 0 {
		t.Fatalf("slack must absorb 5s: %+v", recs)
	}
}

func TestMissingBegin(t *testing.T) {
	d := New(learnedModel(), Config{})
	recs := feed(d, trace("e1", 0, 2, 2, 3))
	if len(recs) != 1 || recs[0].Type != anomaly.MissingBegin {
		t.Fatalf("records = %+v", recs)
	}
}

func TestMissingEndRequiresHeartbeat(t *testing.T) {
	d := New(learnedModel(), Config{})
	// Event starts but never ends.
	recs := feed(d, trace("e1", 0, 1, 2))
	if len(recs) != 0 {
		t.Fatalf("no anomaly should fire without the end or a heartbeat: %+v", recs)
	}
	if d.OpenStates() != 1 {
		t.Fatalf("open states = %d", d.OpenStates())
	}

	// A heartbeat shortly after: not yet expired (max duration 4s,
	// expiry factor 2 -> 8s window).
	recs = d.Heartbeat(t0.Add(5 * time.Second))
	if len(recs) != 0 {
		t.Fatalf("premature expiry: %+v", recs)
	}

	// A heartbeat past the expiry window reports the missing end.
	recs = d.Heartbeat(t0.Add(30 * time.Second))
	if len(recs) != 1 || recs[0].Type != anomaly.MissingEnd {
		t.Fatalf("records = %+v", recs)
	}
	if d.OpenStates() != 0 {
		t.Errorf("expired state not cleaned up: %d", d.OpenStates())
	}
	if s := d.Stats(); s.EventsExpired != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFlushReportsOpenStates(t *testing.T) {
	d := New(learnedModel(), Config{})
	feed(d, trace("e1", 0, 1, 2))
	feed(d, trace("e2", 3, 1))
	recs := d.Flush()
	if len(recs) != 2 {
		t.Fatalf("flush records = %+v", recs)
	}
	for _, r := range recs {
		if r.Type != anomaly.MissingEnd {
			t.Errorf("type = %v", r.Type)
		}
	}
	if d.OpenStates() != 0 {
		t.Errorf("open states = %d", d.OpenStates())
	}
}

func TestInterleavedEvents(t *testing.T) {
	d := New(learnedModel(), Config{})
	a := trace("eA", 0, 1, 2, 3)
	b := trace("eB", 1, 1, 3) // anomalous: missing state 2
	// Interleave: A1 B1 A2 B3 A3.
	var recs []anomaly.Record
	for _, l := range []*logtypes.ParsedLog{a[0], b[0], a[1], b[1], a[2]} {
		recs = append(recs, d.Process(l)...)
	}
	if len(recs) != 1 || recs[0].EventID != "eB" || recs[0].Type != anomaly.MissingIntermediate {
		t.Fatalf("records = %+v", recs)
	}
}

func TestTwoAutomataIndependent(t *testing.T) {
	var logs []*logtypes.ParsedLog
	logs = append(logs, trace("a1", 0, 1, 2, 3)...)
	logs = append(logs, trace("b1", 10, 4, 5)...)
	logs = append(logs, trace("a2", 20, 1, 2, 3)...)
	logs = append(logs, trace("b2", 30, 4, 5)...)
	m := automata.Learn(logs, disc(1, 2, 3, 4, 5))
	d := New(m, Config{})

	if recs := feed(d, trace("x1", 0, 4, 5)); len(recs) != 0 {
		t.Fatalf("normal type-B trace flagged: %+v", recs)
	}
	recs := feed(d, trace("x2", 5, 4)) // never ends
	recs = append(recs, d.Heartbeat(t0.Add(time.Hour))...)
	if len(recs) != 1 || recs[0].Type != anomaly.MissingEnd {
		t.Fatalf("records = %+v", recs)
	}
}

func TestSetModelDropsDeletedAutomaton(t *testing.T) {
	var logs []*logtypes.ParsedLog
	logs = append(logs, trace("a1", 0, 1, 2, 3)...)
	logs = append(logs, trace("b1", 10, 4, 5)...)
	m := automata.Learn(logs, disc(1, 2, 3, 4, 5))
	d := New(m, Config{})

	// Open one event per automaton.
	feed(d, trace("x1", 0, 1, 2))
	feed(d, trace("y1", 0, 4))
	if d.OpenStates() != 2 {
		t.Fatalf("open states = %d", d.OpenStates())
	}

	// Delete the 4->5 automaton via a model update.
	m2 := m.Clone()
	var delID int
	for _, a := range m2.Automata {
		if a.Key == "4>5" {
			delID = a.ID
		}
	}
	m2.Delete(delID)
	d.SetModel(m2)
	if d.OpenStates() != 1 {
		t.Fatalf("open states after delete = %d, want 1", d.OpenStates())
	}

	// The y1 event can no longer produce anomalies.
	recs := d.Flush()
	if len(recs) != 1 || recs[0].EventID != "x1" {
		t.Fatalf("flush after delete = %+v", recs)
	}
}

func TestUntrackedLogsSkipped(t *testing.T) {
	d := New(learnedModel(), Config{})
	l := &logtypes.ParsedLog{PatternID: 99, Fields: []logtypes.Field{{Name: "id", Value: "e"}}}
	if recs := d.Process(l); recs != nil {
		t.Fatalf("untracked pattern produced records: %+v", recs)
	}
	if s := d.Stats(); s.LogsSkipped != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestEventIDReuseAfterClose(t *testing.T) {
	d := New(learnedModel(), Config{})
	if recs := feed(d, trace("e1", 0, 1, 2, 3)); len(recs) != 0 {
		t.Fatal("first use flagged")
	}
	// Same ID reused later: a fresh event, fresh state.
	if recs := feed(d, trace("e1", 100, 1, 2, 3)); len(recs) != 0 {
		t.Fatal("reused ID flagged")
	}
	if s := d.Stats(); s.EventsClosed != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestAnomalyRecordContents(t *testing.T) {
	d := New(learnedModel(), Config{})
	recs := feed(d, trace("e1", 0, 1, 3))
	if len(recs) != 1 {
		t.Fatal("want 1 record")
	}
	r := recs[0]
	if r.Severity != anomaly.Warning {
		t.Errorf("severity = %v", r.Severity)
	}
	if r.Source != "s" {
		t.Errorf("source = %q", r.Source)
	}
	if r.Reason == "" {
		t.Error("reason must be populated")
	}
	if r.Timestamp.IsZero() {
		t.Error("timestamp must be populated")
	}
}
